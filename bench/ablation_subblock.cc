/**
 * @file
 * Section III-G ablation: Compute CRC unit sub-block size trade-off.
 * Smaller sub-blocks need more cycles per signed block; larger ones
 * need more LUT storage (1 KB per byte of sub-block width). The paper
 * settles on 8-byte sub-blocks with eight 1 KB LUTs.
 *
 * This bench sweeps the sub-block width over the paper's block-size
 * distribution (constants: 16 values = 64 B; primitives: 3 attributes
 * x 48 B = 144 B) and prints cycles-per-block and storage cost.
 */

#include <cstdio>
#include <vector>

#include "common/types.hh"

using namespace regpu;

int
main()
{
    struct BlockClass
    {
        const char *name;
        u32 bytes;
        double sharePerPrim; //!< occurrences per signed primitive
    };
    // Per-primitive workload: one attribute block; constants are
    // signed once per drawcall (~1 per 12 primitives, a typical
    // drawcall size in the suite).
    const BlockClass classes[] = {
        {"constants (16 values, 64 B)", 64, 1.0 / 12.0},
        {"primitive (3 attrs, 144 B)", 144, 1.0},
    };

    std::printf("== Sub-block size ablation (Section III-G) ==\n");
    std::printf("%-10s %14s %16s %18s %14s\n", "subblock",
                "LUT storage", "constCycles", "primCycles",
                "cyc/primAvg");
    for (u32 sub : {1u, 2u, 4u, 8u, 16u, 32u}) {
        u64 storage = (sub + sub / 2) * 1024ull; // sign + shift LUTs
        double weighted = 0;
        u32 cyc[2];
        for (int i = 0; i < 2; i++) {
            cyc[i] = (classes[i].bytes + sub - 1) / sub;
            weighted += cyc[i] * classes[i].sharePerPrim;
        }
        std::printf("%7u B %11.1f KB %16u %18u %14.2f %s\n", sub,
                    storage / 1024.0, cyc[0], cyc[1], weighted,
                    sub == 8 ? "<- paper's design point" : "");
    }
    std::printf("\n8-byte sub-blocks: 8 cycles per average constants "
                "command, 18 per average primitive\n"
                "(matches the paper's quoted latencies) at 12 KB of "
                "LUTs.\n");
    return 0;
}
