/**
 * @file
 * Reproduces Fig. 14: (a) execution cycles of RE normalized to the
 * baseline, split into Geometry and Raster pipeline cycles, and
 * (b) energy normalized to the baseline, split into GPU and main
 * memory.
 *
 * Paper shape: average ~0.58 normalized cycles (1.74x speedup) and
 * ~0.57 normalized energy; huge wins on ccs..hop, ~1.0 on mst.
 */

#include <cstdio>

#include "sim/experiment.hh"

using namespace regpu;

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    ExperimentScale scale = ExperimentScale::fromArgs(argc, argv);

    auto results = runSuite(allAliases(),
                            {Technique::Baseline,
                             Technique::RenderingElimination},
                            scale);

    printTableHeader("Fig. 14a: normalized execution cycles (RE / Base)",
                     {"geomNorm", "rasterNorm", "totalNorm", "speedup"});
    std::vector<double> speedups, totals;
    for (const WorkloadResults &wr : results) {
        const SimResult &base = wr.byTechnique.at(Technique::Baseline);
        const SimResult &re =
            wr.byTechnique.at(Technique::RenderingElimination);
        double baseTotal = static_cast<double>(base.totalCycles());
        double geomN = re.geometryCycles / baseTotal;
        double rastN = re.rasterCycles / baseTotal;
        double totalN = re.totalCycles() / baseTotal;
        printTableRow(wr.alias,
                      {geomN, rastN, totalN, 1.0 / totalN});
        speedups.push_back(1.0 / totalN);
        totals.push_back(totalN);
    }
    printTableRow("AVG", {0, 0, mean(totals), geomean(speedups)});

    printTableHeader("Fig. 14b: normalized energy (RE / Base)",
                     {"gpuNorm", "memNorm", "totalNorm", "saving%"});
    std::vector<double> savings;
    for (const WorkloadResults &wr : results) {
        const SimResult &base = wr.byTechnique.at(Technique::Baseline);
        const SimResult &re =
            wr.byTechnique.at(Technique::RenderingElimination);
        double baseTotal = base.energy.total();
        double gpuN = re.energy.gpu() / baseTotal;
        double memN = re.energy.memory() / baseTotal;
        double totalN = re.energy.total() / baseTotal;
        printTableRow(wr.alias,
                      {gpuN, memN, totalN, 100.0 * (1.0 - totalN)});
        savings.push_back(100.0 * (1.0 - totalN));
    }
    printTableRow("AVG", {0, 0, 0, mean(savings)});

    // GPU-only and memory-only savings (paper: 38% / 48%).
    std::vector<double> gpuSave, memSave;
    for (const WorkloadResults &wr : results) {
        const SimResult &base = wr.byTechnique.at(Technique::Baseline);
        const SimResult &re =
            wr.byTechnique.at(Technique::RenderingElimination);
        gpuSave.push_back(100.0 * (1.0 - re.energy.gpu()
                                   / base.energy.gpu()));
        memSave.push_back(100.0 * (1.0 - re.energy.memory()
                                   / base.energy.memory()));
    }
    std::printf("\nGPU energy saving AVG: %.1f%%   "
                "Main-memory energy saving AVG: %.1f%%\n",
                mean(gpuSave), mean(memSave));
    return 0;
}
