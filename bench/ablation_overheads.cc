/**
 * @file
 * Section V overhead accounting for Rendering Elimination:
 *  - geometry-stall cycles from OT-queue overflow (paper: 0.64% avg);
 *  - RE hardware energy overhead (paper: <0.5% of GPU energy);
 *  - area overhead of the added structures (paper: <1%);
 *  - worst-case check on the redundancy-free workload (mst: <1% slowdown).
 */

#include <cstdio>

#include "power/energy_model.hh"
#include "sim/experiment.hh"

using namespace regpu;

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    ExperimentScale scale = ExperimentScale::fromArgs(argc, argv);

    auto results = runSuite(allAliases(),
                            {Technique::Baseline,
                             Technique::RenderingElimination},
                            scale);

    printTableHeader("RE overheads per workload",
                     {"geomStall%", "reEnergy%", "mstSlowdown%"});
    std::vector<double> stallPct, energyPct;
    double mstSlowdown = 0;
    for (const WorkloadResults &wr : results) {
        const SimResult &base = wr.byTechnique.at(Technique::Baseline);
        const SimResult &re =
            wr.byTechnique.at(Technique::RenderingElimination);

        double stall = 100.0 * re.signatureStallCycles
            / std::max<Cycles>(1, re.geometryCycles);

        // RE hardware energy: LUTs + Signature Buffer + OT + bitmap.
        EnergyParams p;
        double reHw = re.stats.counter("re.lutAccesses") * p.crcLutAccess
            + re.stats.counter("re.sigBufferAccesses")
              * p.signatureBufferAccess
            + re.stats.counter("re.otPushes") * p.otQueuePush
            + re.stats.counter("re.bitmapAccesses") * p.bitmapAccess;
        double ePct = 100.0 * reHw / base.energy.total();

        double slow = 0;
        if (wr.alias == "mst") {
            slow = 100.0 * (static_cast<double>(re.totalCycles())
                            / base.totalCycles() - 1.0);
            mstSlowdown = slow;
        }
        printTableRow(wr.alias, {stall, ePct, slow});
        stallPct.push_back(stall);
        energyPct.push_back(ePct);
    }
    printTableRow("AVG", {mean(stallPct), mean(energyPct), 0.0});

    GpuConfig fullConfig; // area is quoted for the Table I chip
    AreaReport area = AreaReport::forConfig(fullConfig);
    std::printf("\nArea: RE adds %.1f KB SRAM (LUTs %.0f KB + SigBuf "
                "%.1f KB + OT/bitmap %.2f KB) = %.2f%% of the baseline "
                "SRAM proxy (paper: <1%%)\n",
                (area.crcLutBytes + area.signatureBufferBytes
                 + area.otQueueBytes + area.bitmapBytes) / 1024.0,
                area.crcLutBytes / 1024.0,
                area.signatureBufferBytes / 1024.0,
                (area.otQueueBytes + area.bitmapBytes) / 1024.0,
                100.0 * area.overheadFraction());
    std::printf("mst slowdown: %.2f%% (paper: <1%%)\n", mstSlowdown);
    return 0;
}
