/**
 * @file
 * micro_pipeline: end-to-end simulated frames per wall-clock second.
 *
 * Runs the full Simulator (geometry, binning, raster, technique
 * hooks, memory hierarchy, energy model) for each requested
 * (workload x technique) cell and reports host-side throughput —
 * the single number every "make the simulator faster" PR moves. The
 * per-cell split shows where the time goes (3D scenes dominate);
 * `pipeline.total` is the headline.
 *
 * Usage:
 *   micro_pipeline [--workload ALIAS|all] [--tech base,re,te,memo]
 *                  [--frames N] [--width W --height H]
 *                  [--seed N] [--tile-jobs N] [--json FILE]
 *                  [--obs-dir DIR]
 *
 * --tile-jobs N rasterizes each frame's tiles on N intra-frame
 * workers (results are bit-identical for any N; the flag only moves
 * wall-clock). With N > 1 the headline pipeline.total number measures
 * the tile-pool speedup directly.
 *
 * --json writes the single-run machine-readable document
 * (sim/bench_json.hh) that scripts/bench.py aggregates into
 * BENCH_e2e.json.
 * --obs-dir enables the observability layer (timeline tracing plus
 * per-frame artifacts, src/obs/) so the reported throughput measures
 * the tracing-enabled path — scripts/bench.py records this as
 * pipelineObs.* next to the default-off pipeline.* numbers.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "obs/obs.hh"
#include "sim/bench_json.hh"
#include "sim/parallel_runner.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace regpu;

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

struct Options
{
    std::vector<std::string> workloads;
    std::vector<Technique> techniques{Technique::Baseline,
                                      Technique::RenderingElimination};
    u64 frames = 8;
    u32 width = 256, height = 160;
    u64 seed = 1;
    unsigned tileJobs = 1;
    std::string jsonPath;
    std::string obsDir;
};

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (const auto &b : benchmarkSuite())
        opts.workloads.push_back(b.alias);
    auto next = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            fatal("usage: micro_pipeline [--workload ALIAS|all] "
                  "[--tech base,re,te,memo] [--frames N] "
                  "[--width W --height H] [--seed N] [--tile-jobs N] "
                  "[--json FILE] [--obs-dir DIR]");
        return argv[++i];
    };
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        if (arg == "--workload") {
            std::string w = next(i);
            if (w != "all")
                opts.workloads = {w};
        } else if (arg == "--tech") {
            opts.techniques.clear();
            std::stringstream ss(next(i));
            std::string item;
            while (std::getline(ss, item, ','))
                opts.techniques.push_back(parseTechniqueArg(item));
        } else if (arg == "--frames") {
            opts.frames = parseCountArg("--frames", next(i));
        } else if (arg == "--width") {
            opts.width = static_cast<u32>(
                parseCountArg("--width", next(i)));
        } else if (arg == "--height") {
            opts.height = static_cast<u32>(
                parseCountArg("--height", next(i)));
        } else if (arg == "--seed") {
            opts.seed = parseCountArg("--seed", next(i));
        } else if (arg == "--tile-jobs") {
            opts.tileJobs = parseTileJobsArg(next(i));
        } else if (arg == "--json") {
            opts.jsonPath = next(i);
        } else if (arg == "--obs-dir") {
            opts.obsDir = next(i);
        } else {
            fatal("micro_pipeline: unknown flag '", arg, "'");
        }
    }
    if (opts.frames == 0)
        fatal("--frames must be >= 1");
    return opts;
}

} // namespace

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    Options opts = parseArgs(argc, argv);

    std::printf("== micro_pipeline: end-to-end frames/s, %llu frames, "
                "%ux%u ==\n",
                static_cast<unsigned long long>(opts.frames),
                opts.width, opts.height);
    std::printf("%-10s %-8s %12s %10s\n", "workload", "technique",
                "frames/s", "seconds");

    std::vector<SimJob> jobs =
        buildSweepJobs(opts.workloads, opts.techniques, opts.width,
                       opts.height, opts.frames, HashKind::Crc32,
                       opts.seed);
    for (SimJob &job : jobs)
        job.options.tileJobs = opts.tileJobs;
    if (!opts.obsDir.empty()) {
        ObsSink::instance().enable();
        for (SimJob &job : jobs) {
            job.options.obsDir = opts.obsDir;
            job.options.obsTag = job.workload + "."
                + techniqueName(job.config.technique);
        }
    }

    BenchJsonWriter bench;
    double totalSeconds = 0;
    u64 totalFrames = 0;
    for (const SimJob &job : jobs) {
        auto scene = makeBenchmark(job.workload, job.config,
                                   job.sceneSeed);
        auto t0 = std::chrono::steady_clock::now();
        Simulator sim(*scene, job.config, job.options);
        SimResult r = sim.run();
        const double seconds = secondsSince(t0);
        if (r.frames != opts.frames)
            fatal("run dropped frames: ", r.frames, " of ",
                  opts.frames);
        const double fps =
            seconds > 0 ? static_cast<double>(r.frames) / seconds : 0;
        totalSeconds += seconds;
        totalFrames += r.frames;

        const char *tech = techniqueName(job.config.technique);
        std::printf("%-10s %-8s %12.2f %10.3f\n", job.workload.c_str(),
                    tech, fps, seconds);
        bench.add("pipeline." + job.workload + "." + tech
                      + ".framesPerSecond",
                  "frames/s", /*higherIsBetter=*/true, fps);
    }

    const double totalFps = totalSeconds > 0
        ? static_cast<double>(totalFrames) / totalSeconds
        : 0;
    std::printf("%-10s %-8s %12.2f %10.3f\n", "total", "-", totalFps,
                totalSeconds);
    bench.add("pipeline.total.framesPerSecond", "frames/s",
              /*higherIsBetter=*/true, totalFps);

    if (!opts.obsDir.empty()) {
        const std::string timelinePath =
            opts.obsDir + "/timeline.trace.json";
        if (ObsSink::instance().flushToFile(timelinePath))
            std::fprintf(stderr, "obs: wrote %s\n",
                         timelinePath.c_str());
        else
            warn("obs: cannot write timeline: ", timelinePath);
    }

    if (!opts.jsonPath.empty()) {
        bench.writeFile(opts.jsonPath);
        std::printf("wrote %s\n", opts.jsonPath.c_str());
    }
    return 0;
}
