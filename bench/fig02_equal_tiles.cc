/**
 * @file
 * Reproduces Fig. 2: percentage of tiles producing the same color as
 * the preceding frame, per benchmark, plus the Table II suite listing.
 *
 * Paper shape: >90% for the static-camera games (ccs..hop), near zero
 * for mst, intermediate for abi..tib.
 */

#include <cstdio>

#include "sim/experiment.hh"

using namespace regpu;

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    ExperimentScale scale = ExperimentScale::fromArgs(argc, argv);

    std::printf("Table II: benchmark suite\n");
    std::printf("%-6s %-28s %-16s %s\n", "alias", "scenario", "genre",
                "type");
    for (const BenchmarkInfo &b : benchmarkSuite())
        std::printf("%-6s %-28s %-16s %s\n", b.alias.c_str(),
                    b.title.c_str(), b.genre.c_str(),
                    b.is3D ? "3D" : "2D");

    auto results = runSuite(allAliases(), {Technique::Baseline}, scale);

    printTableHeader("Fig. 2: equal tiles between consecutive frames (%)",
                     {"equalTiles%"});
    std::vector<double> all;
    for (const WorkloadResults &wr : results) {
        double pct = wr.byTechnique.at(Technique::Baseline)
            .equalTilesConsecutivePct;
        printTableRow(wr.alias, {pct}, 1);
        all.push_back(pct);
    }
    printTableRow("AVG", {mean(all)}, 1);
    return 0;
}
