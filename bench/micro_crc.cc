/**
 * @file
 * Host-side microbenchmarks (google-benchmark) of the signature
 * datapath models: Sign/Shift subunits, Compute and Accumulate CRC
 * units, full-message tabular CRC, and the weak-hash alternatives.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hh"
#include "crc/hashes.hh"
#include "crc/units.hh"

using namespace regpu;

namespace
{

std::vector<u8>
randomBytes(std::size_t n)
{
    Rng rng(n * 7919 + 1);
    std::vector<u8> v(n);
    for (auto &b : v)
        b = static_cast<u8>(rng.nextBounded(256));
    return v;
}

} // namespace

static void
BM_SignSubunit64(benchmark::State &state)
{
    const CrcTables &t = CrcTables::instance();
    u64 block = 0x0123456789abcdefull;
    for (auto _ : state) {
        benchmark::DoNotOptimize(t.signBlock64(block));
        block += 0x9e3779b97f4a7c15ull;
    }
}
BENCHMARK(BM_SignSubunit64);

static void
BM_ShiftSubunit(benchmark::State &state)
{
    const CrcTables &t = CrcTables::instance();
    u32 crc = 0xdeadbeef;
    for (auto _ : state) {
        crc = t.shift64(crc);
        benchmark::DoNotOptimize(crc);
    }
}
BENCHMARK(BM_ShiftSubunit);

static void
BM_ComputeCrcUnit(benchmark::State &state)
{
    auto msg = randomBytes(static_cast<std::size_t>(state.range(0)));
    ComputeCrcUnit unit;
    for (auto _ : state)
        benchmark::DoNotOptimize(unit.sign(msg).crc);
    state.SetBytesProcessed(
        static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_ComputeCrcUnit)->Arg(64)->Arg(144)->Arg(1024);

static void
BM_AccumulateCrcUnit(benchmark::State &state)
{
    AccumulateCrcUnit unit;
    u32 crc = 0x12345678;
    for (auto _ : state) {
        crc = unit.accumulate(crc, static_cast<u32>(state.range(0)));
        benchmark::DoNotOptimize(crc);
    }
}
BENCHMARK(BM_AccumulateCrcUnit)->Arg(8)->Arg(18);

static void
BM_Crc32Reference(benchmark::State &state)
{
    auto msg = randomBytes(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(crc32Reference(msg));
    state.SetBytesProcessed(
        static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32Reference)->Arg(144);

static void
BM_HashBlock(benchmark::State &state)
{
    auto msg = randomBytes(144);
    HashKind kind = static_cast<HashKind>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(hashBlock(kind, msg));
    state.SetLabel(hashKindName(kind));
    state.SetBytesProcessed(
        static_cast<i64>(state.iterations()) * 144);
}
BENCHMARK(BM_HashBlock)
    ->Arg(static_cast<int>(HashKind::Crc32))
    ->Arg(static_cast<int>(HashKind::XorFold))
    ->Arg(static_cast<int>(HashKind::AddFold))
    ->Arg(static_cast<int>(HashKind::Fnv1a));

BENCHMARK_MAIN();
