/**
 * @file
 * Host-side microbenchmarks (google-benchmark) of the signature
 * datapath models: Sign/Shift subunits, Compute and Accumulate CRC
 * units, full-message tabular CRC, and the weak-hash alternatives.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/rng.hh"
#include "crc/crc32_backend.hh"
#include "crc/hashes.hh"
#include "crc/units.hh"

using namespace regpu;

namespace
{

std::vector<u8>
randomBytes(std::size_t n)
{
    Rng rng(n * 7919 + 1);
    std::vector<u8> v(n);
    for (auto &b : v)
        b = static_cast<u8>(rng.nextBounded(256));
    return v;
}

} // namespace

static void
BM_SignSubunit64(benchmark::State &state)
{
    const CrcTables &t = CrcTables::instance();
    u64 block = 0x0123456789abcdefull;
    for (auto _ : state) {
        benchmark::DoNotOptimize(t.signBlock64(block));
        block += 0x9e3779b97f4a7c15ull;
    }
}
BENCHMARK(BM_SignSubunit64);

static void
BM_ShiftSubunit(benchmark::State &state)
{
    const CrcTables &t = CrcTables::instance();
    u32 crc = 0xdeadbeef;
    for (auto _ : state) {
        crc = t.shift64(crc);
        benchmark::DoNotOptimize(crc);
    }
}
BENCHMARK(BM_ShiftSubunit);

static void
BM_ComputeCrcUnit(benchmark::State &state)
{
    auto msg = randomBytes(static_cast<std::size_t>(state.range(0)));
    ComputeCrcUnit unit;
    for (auto _ : state)
        benchmark::DoNotOptimize(unit.sign(msg).crc);
    state.SetBytesProcessed(
        static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_ComputeCrcUnit)->Arg(64)->Arg(144)->Arg(1024);

static void
BM_AccumulateCrcUnit(benchmark::State &state)
{
    AccumulateCrcUnit unit;
    u32 crc = 0x12345678;
    for (auto _ : state) {
        crc = unit.accumulate(crc, static_cast<u32>(state.range(0)));
        benchmark::DoNotOptimize(crc);
    }
}
BENCHMARK(BM_AccumulateCrcUnit)->Arg(8)->Arg(18);

static void
BM_Crc32Reference(benchmark::State &state)
{
    auto msg = randomBytes(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(crc32Reference(msg));
    state.SetBytesProcessed(
        static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32Reference)->Arg(144);

// One-shot tabular CRC through the slice-by-8 streaming core. The
// aligned sizes are directly comparable with the retired
// zero-padding implementation (same message, same block count); the
// unaligned sizes additionally exercise the byte-serial tail.
static void
BM_Crc32Tabular(benchmark::State &state)
{
    auto msg = randomBytes(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(crc32Tabular(msg));
    state.SetBytesProcessed(
        static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32Tabular)
    ->Arg(64)->Arg(144)->Arg(1024)        // 8-byte-multiple inputs
    ->Arg(20)->Arg(28)->Arg(70)->Arg(1001); // unaligned tails

// The fragment-signature shape: serialise ~28 bytes of shader inputs
// into a fixed stack buffer and hash once. This is the per-fragment
// hot path of the memoization comparison point.
static void
BM_Crc32FragmentShapeStackBuffer(benchmark::State &state)
{
    Rng rng(7);
    u32 words[7];
    for (auto &w : words)
        w = static_cast<u32>(rng.next());
    for (auto _ : state) {
        u8 buf[28];
        for (int i = 0; i < 7; i++) {
            std::memcpy(buf + 4 * i, &words[i], 4);
            words[i] += 0x9e3779b9u;
        }
        benchmark::DoNotOptimize(crc32Tabular({buf, 28}));
    }
    state.SetBytesProcessed(static_cast<i64>(state.iterations()) * 28);
}
BENCHMARK(BM_Crc32FragmentShapeStackBuffer);

// The retired shape of the same computation: build a throwaway
// std::vector<u8> message per signature. The delta against the
// stack-buffer variant is the per-signature allocation cost the
// streaming subsystem removed.
static void
BM_Crc32FragmentShapeHeapVector(benchmark::State &state)
{
    Rng rng(7);
    u32 words[7];
    for (auto &w : words)
        w = static_cast<u32>(rng.next());
    for (auto _ : state) {
        std::vector<u8> buf(28);
        for (int i = 0; i < 7; i++) {
            std::memcpy(buf.data() + 4 * i, &words[i], 4);
            words[i] += 0x9e3779b9u;
        }
        benchmark::DoNotOptimize(crc32Tabular(buf));
    }
    state.SetBytesProcessed(static_cast<i64>(state.iterations()) * 28);
}
BENCHMARK(BM_Crc32FragmentShapeHeapVector);

// Incremental streaming in small chunks (the TE tile-color path
// feeds 64-byte stack chunks).
static void
BM_Crc32StreamChunked(benchmark::State &state)
{
    auto msg = randomBytes(1024);
    const std::size_t chunk = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        Crc32Stream stream;
        std::size_t pos = 0;
        while (pos < msg.size()) {
            std::size_t take = std::min(chunk, msg.size() - pos);
            stream.update({msg.data() + pos, take});
            pos += take;
        }
        benchmark::DoNotOptimize(stream.value());
    }
    state.SetBytesProcessed(
        static_cast<i64>(state.iterations()) * 1024);
}
BENCHMARK(BM_Crc32StreamChunked)->Arg(64)->Arg(20);

// Byte-exact combine (Algorithm 1) at the Signature Unit's real block
// lengths: 70-byte constants, 144-byte primitive attributes.
static void
BM_Crc32CombineBytes(benchmark::State &state)
{
    u32 a = 0x12345678, b = 0x9abcdef0;
    const u64 lenB = static_cast<u64>(state.range(0));
    for (auto _ : state) {
        a = crc32Combine(a, b, lenB);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_Crc32CombineBytes)->Arg(70)->Arg(144);

// Bulk-append throughput per CRC backend (crc/crc32_backend.hh). Arg0
// selects the backend, Arg1 the message length; backends the build or
// CPU lacks are skipped, so the suite runs everywhere and reports
// exactly the paths this machine can take. The portable row is the
// slice-by-8 baseline every hardware path must beat for the runtime
// dispatch to be worth its branch.
static void
BM_Crc32BackendBulk(benchmark::State &state)
{
    const CrcBackend backend =
        static_cast<CrcBackend>(state.range(0));
    if (!crcBackendAvailable(backend)) {
        state.SkipWithError("backend not available on this machine");
        return;
    }
    auto msg = randomBytes(static_cast<std::size_t>(state.range(1)));
    u32 crc = 0;
    for (auto _ : state) {
        crc = crc32AppendWith(backend, crc, msg.data(), msg.size());
        benchmark::DoNotOptimize(crc);
    }
    state.SetLabel(crcBackendName(backend));
    state.SetBytesProcessed(
        static_cast<i64>(state.iterations()) * state.range(1));
}
BENCHMARK(BM_Crc32BackendBulk)
    ->ArgsProduct({{static_cast<int>(CrcBackend::Portable),
                    static_cast<int>(CrcBackend::Clmul),
                    static_cast<int>(CrcBackend::ArmCrc)},
                   {64, 1024, 65536}});

// The dispatched path end-to-end: Crc32Stream::update() as the TE
// tile-signature loop calls it, which hands chunks of >= 64 bytes to
// the active backend (REGPU_CRC_BACKEND=portable pins the baseline
// for comparison).
static void
BM_Crc32StreamBulkDispatch(benchmark::State &state)
{
    auto msg = randomBytes(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        Crc32Stream stream;
        stream.update(msg);
        benchmark::DoNotOptimize(stream.value());
    }
    state.SetLabel(crcBackendName(crcActiveBackend()));
    state.SetBytesProcessed(
        static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32StreamBulkDispatch)->Arg(1024)->Arg(65536);

static void
BM_HashBlock(benchmark::State &state)
{
    auto msg = randomBytes(144);
    HashKind kind = static_cast<HashKind>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(hashBlock(kind, msg));
    state.SetLabel(hashKindName(kind));
    state.SetBytesProcessed(
        static_cast<i64>(state.iterations()) * 144);
}
BENCHMARK(BM_HashBlock)
    ->Arg(static_cast<int>(HashKind::Crc32))
    ->Arg(static_cast<int>(HashKind::XorFold))
    ->Arg(static_cast<int>(HashKind::AddFold))
    ->Arg(static_cast<int>(HashKind::Fnv1a));

BENCHMARK_MAIN();
