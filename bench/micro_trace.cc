/**
 * @file
 * micro_trace: replay-vs-generate throughput of the trace subsystem.
 *
 * Measures, per workload alias, the cost of producing one frame's
 * FrameCommands (a) live, through Scene::emitFrame (mesh copies,
 * animators, matrix math), versus (b) replayed, through
 * TraceScene::emitFrame (one indexed seek + CRC check + parse). Also
 * reports the trace's on-disk bytes/frame, pinning the I/O cost the
 * replay path trades for the generation cost it skips.
 *
 * Usage: micro_trace [--fast|--full] [--frames N] [--jobs N]
 *        [--record-dir DIR] [--replay-dir DIR] [--json FILE]
 *        (ExperimentScale flags; resolution scales scene content.
 *        --record-dir keeps the captures there instead of a deleted
 *        temp file; --replay-dir times existing traces, skipping the
 *        capture step — the trace must match the requested frames.
 *        --json writes the single-run machine-readable document
 *        scripts/bench.py aggregates into BENCH_trace.json.)
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "sim/bench_json.hh"
#include "sim/experiment.hh"
#include "trace/trace_scene.hh"
#include "trace/trace_writer.hh"
#include "workloads/workloads.hh"

using namespace regpu;

namespace
{

/** Consume a command stream so the compiler cannot drop the work. */
u64
sinkFrame(const FrameCommands &cmds)
{
    u64 sum = cmds.draws.size();
    for (const DrawCall &d : cmds.draws)
        sum += d.vertices.size();
    return sum;
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    // Strip --json FILE before the strict ExperimentScale parse; the
    // remaining flags keep their fatal-on-typo contract.
    std::string jsonPath;
    std::vector<char *> scaleArgs;
    for (int i = 0; i < argc; i++) {
        if (i > 0 && !std::strcmp(argv[i], "--json")) {
            if (i + 1 >= argc)
                fatal("--json needs a file argument");
            jsonPath = argv[++i];
            continue;
        }
        scaleArgs.push_back(argv[i]);
    }
    ExperimentScale scale = ExperimentScale::fromArgs(
        static_cast<int>(scaleArgs.size()), scaleArgs.data());
    GpuConfig config;
    config.scaleResolution(scale.screenWidth, scale.screenHeight);
    const u64 frames = scale.frames;
    const int reps = 3;  //!< passes over the frame range per side

    std::printf("== micro_trace: generate vs replay, %llu frames x %d "
                "passes, %ux%u ==\n",
                static_cast<unsigned long long>(frames), reps,
                config.screenWidth, config.screenHeight);
    std::printf("%-10s %14s %14s %9s %12s\n", "workload",
                "generate f/s", "replay f/s", "speedup", "bytes/frame");

    u64 sink = 0;
    BenchJsonWriter bench;
    for (const auto &info : benchmarkSuite()) {
        auto scene = makeBenchmark(info.alias, config, 1);
        std::string path;
        bool keepTrace = false;
        if (!scale.replayDir.empty()) {
            path = traceFilePath(scale.replayDir, info.alias);
            keepTrace = true;
        } else if (!scale.recordDir.empty()) {
            path = traceFilePath(scale.recordDir, info.alias);
            keepTrace = true;
            captureTrace(*scene, config, frames, 1, path);
        } else {
            path = "/tmp/micro_trace_" + info.alias + ".rgputrace";
            captureTrace(*scene, config, frames, 1, path);
        }
        TraceScene replay(path);
        if (replay.replayFrames() < frames)
            fatal("trace ", path, " holds only ", replay.replayFrames(),
                  " frames, bench needs ", frames);

        auto t0 = std::chrono::steady_clock::now();
        for (int r = 0; r < reps; r++)
            for (u64 f = 0; f < frames; f++)
                sink += sinkFrame(scene->emitFrame(f));
        const double genSec = secondsSince(t0);

        t0 = std::chrono::steady_clock::now();
        for (int r = 0; r < reps; r++)
            for (u64 f = 0; f < frames; f++)
                sink += sinkFrame(replay.emitFrame(f));
        const double repSec = secondsSince(t0);

        const double n = static_cast<double>(reps)
            * static_cast<double>(frames);
        // Frame-payload bytes only: from the first FRAM chunk to the
        // end of file (textures amortise across the whole run).
        TraceReader reader(path);
        const double bytesPerFrame = frames
            ? static_cast<double>(reader.fileBytes()
                                  - reader.frameOffset(0))
                / static_cast<double>(frames)
            : 0.0;
        std::printf("%-10s %14.0f %14.0f %8.2fx %12.0f\n",
                    info.alias.c_str(), n / genSec, n / repSec,
                    genSec / repSec, bytesPerFrame);
        bench.add("trace." + info.alias + ".generateFramesPerSecond",
                  "frames/s", /*higherIsBetter=*/true, n / genSec);
        bench.add("trace." + info.alias + ".replayFramesPerSecond",
                  "frames/s", /*higherIsBetter=*/true, n / repSec);
        bench.add("trace." + info.alias + ".bytesPerFrame", "bytes",
                  /*higherIsBetter=*/false, bytesPerFrame);
        if (!keepTrace)
            std::remove(path.c_str());
    }
    std::printf("(sink %llu)\n", static_cast<unsigned long long>(sink));
    if (!jsonPath.empty()) {
        bench.writeFile(jsonPath);
        std::printf("wrote %s\n", jsonPath.c_str());
    }
    return 0;
}
