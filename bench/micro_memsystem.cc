/**
 * @file
 * micro_memsystem: accesses/sec of the level-linked memory hierarchy.
 *
 * Drives the MemSystem's MemTraceSink entry points directly with
 * synthetic streams - a sequential vertex stream, a tiled texel
 * pattern with spatial locality, Parameter Buffer write/read phases
 * and Color Buffer flush/read-back traffic - and reports the
 * hierarchy-walk cost per access for each stream plus a mixed
 * workload. Future PRs touching src/timing/ can eyeball whether a
 * change made the walk slower.
 *
 * Usage: micro_memsystem [--accesses N] [--mix-frames N]
 *        [--json FILE]
 *
 * --json writes the single-run machine-readable document
 * (sim/bench_json.hh) that scripts/bench.py aggregates into
 * BENCH_memsystem.json.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/logging.hh"
#include "common/rng.hh"
#include "sim/bench_json.hh"
#include "sim/parallel_runner.hh"
#include "timing/memsystem.hh"

using namespace regpu;

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

struct BenchResult
{
    double seconds = 0;
    u64 accesses = 0;
    u64 dramBytes = 0;
};

void
report(const char *name, const BenchResult &r)
{
    std::printf("%-18s %10.1f Maccesses/s  (%9llu accesses, "
                "%8.2f MB DRAM, %.3f s)\n",
                name, r.accesses / r.seconds / 1e6,
                static_cast<unsigned long long>(r.accesses),
                r.dramBytes / (1024.0 * 1024.0), r.seconds);
}

template <typename Fn>
BenchResult
run(u64 accesses, Fn &&body)
{
    GpuConfig config;
    config.validate();
    MemSystem mem(config);
    auto t0 = std::chrono::steady_clock::now();
    body(mem, accesses);
    BenchResult r;
    r.seconds = secondsSince(t0);
    r.accesses = accesses;
    r.dramBytes = mem.dram().traffic().total();
    ConservationReport cons = mem.checkConservation();
    if (!cons.ok())
        fatal("conservation violated in bench:\n", cons.detail);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    u64 accesses = 2'000'000;
    u64 mixFrames = 8;
    std::string jsonPath;
    for (int i = 1; i < argc; i++) {
        if (!std::strcmp(argv[i], "--accesses") && i + 1 < argc)
            accesses = parseCountArg("--accesses", argv[++i]);
        else if (!std::strcmp(argv[i], "--mix-frames") && i + 1 < argc)
            mixFrames = parseCountArg("--mix-frames", argv[++i]);
        else if (!std::strcmp(argv[i], "--json") && i + 1 < argc)
            jsonPath = argv[++i];
        else
            fatal("usage: micro_memsystem [--accesses N] "
                  "[--mix-frames N] [--json FILE]");
    }
    if (mixFrames == 0)
        fatal("--mix-frames must be >= 1 (got 0)");

    std::printf("== micro_memsystem: hierarchy-walk cost ==\n");

    BenchJsonWriter bench;
    auto record = [&](const char *display, const char *key,
                      const BenchResult &r) {
        report(display, r);
        bench.add(std::string("mem.") + key + ".accessesPerSecond",
                  "accesses/s", /*higherIsBetter=*/true,
                  r.seconds > 0 ? r.accesses / r.seconds : 0.0);
    };

    record("vertex stream", "vertexStream",
           run(accesses, [](MemSystem &m, u64 n) {
        for (u64 i = 0; i < n; i++)
            m.vertexFetch(0x1'0000'0000ull + (i % (1 << 22)) * 28, 28);
    }));

    record("texel tiled", "texelTiled",
           run(accesses, [](MemSystem &m, u64 n) {
        Rng rng(7);
        for (u64 i = 0; i < n; i++) {
            // 2D locality: a random walk within a 256x256 texel tile.
            const Addr base = 0x3'0000'0000ull
                + (i / 4096) * 256 * 256 * 4;
            const Addr off = rng.nextBounded(256 * 256) * 4;
            m.texelFetch(static_cast<u32>(i & 3), base + off);
        }
    }));

    record("pb write+read", "pbWriteRead",
           run(accesses, [](MemSystem &m, u64 n) {
        for (u64 i = 0; i < n / 2; i++)
            m.parameterWrite(0x2'0000'0000ull + (i % (1 << 16)) * 176,
                             176);
        for (u64 i = 0; i < n / 2; i++)
            m.parameterRead(0x2'0000'0000ull + (i % (1 << 16)) * 176,
                            176);
    }));

    record("color flush+read", "colorFlushRead",
           run(accesses, [](MemSystem &m, u64 n) {
        for (u64 i = 0; i < n / 2; i++)
            m.colorFlush(0x4'0000'0000ull + (i % 3600) * 1024, 1024);
        for (u64 i = 0; i < n / 2; i++)
            m.colorRead(0x4'0000'0000ull + (i % 3600) * 1024, 1024);
    }));

    // Mixed per-frame workload shaped like a real run: PB writes,
    // then per-tile PB reads + texels + flushes, with frame ends.
    record("mixed frames", "mixedFrames",
           run(accesses, [&](MemSystem &m, u64 n) {
        Rng rng(11);
        const u64 perFrame = n / mixFrames;
        for (u64 f = 0; f < mixFrames; f++) {
            for (u64 i = 0; i < perFrame; i++) {
                switch (i % 8) {
                  case 0:
                    m.parameterWrite(0x2'0000'0000ull
                                         + rng.nextBounded(1 << 24),
                                     176);
                    break;
                  case 1:
                    m.parameterRead(0x2'0000'0000ull
                                        + rng.nextBounded(1 << 24),
                                    176);
                    break;
                  case 7:
                    m.colorFlush(0x4'0000'0000ull
                                     + rng.nextBounded(3600) * 1024,
                                 1024);
                    break;
                  default:
                    m.texelFetch(static_cast<u32>(i & 3),
                                 0x3'0000'0000ull
                                     + rng.nextBounded(1 << 22));
                    break;
                }
            }
            m.endFrame();
        }
    }));

    if (!jsonPath.empty()) {
        bench.writeFile(jsonPath);
        std::printf("wrote %s\n", jsonPath.c_str());
    }
    return 0;
}
