/**
 * @file
 * Reproduces Fig. 17: RE vs Transaction Elimination, execution cycles
 * (a) and energy (b), both normalized to the baseline GPU.
 *
 * Paper shape: TE saves ~9% energy on average (flush elision only,
 * zero cycle benefit modelled); RE saves ~43% and is much faster.
 */

#include <cstdio>

#include "sim/experiment.hh"

using namespace regpu;

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    ExperimentScale scale = ExperimentScale::fromArgs(argc, argv);

    auto results = runSuite(allAliases(),
                            {Technique::Baseline,
                             Technique::TransactionElimination,
                             Technique::RenderingElimination},
                            scale);

    printTableHeader("Fig. 17a: normalized execution cycles",
                     {"TE", "RE"});
    std::vector<double> teC, reC;
    for (const WorkloadResults &wr : results) {
        const SimResult &base = wr.byTechnique.at(Technique::Baseline);
        const SimResult &te =
            wr.byTechnique.at(Technique::TransactionElimination);
        const SimResult &re =
            wr.byTechnique.at(Technique::RenderingElimination);
        double b = static_cast<double>(base.totalCycles());
        printTableRow(wr.alias,
                      {te.totalCycles() / b, re.totalCycles() / b});
        teC.push_back(te.totalCycles() / b);
        reC.push_back(re.totalCycles() / b);
    }
    printTableRow("AVG", {mean(teC), mean(reC)});

    printTableHeader("Fig. 17b: normalized energy", {"TE", "RE"});
    std::vector<double> teE, reE;
    for (const WorkloadResults &wr : results) {
        const SimResult &base = wr.byTechnique.at(Technique::Baseline);
        const SimResult &te =
            wr.byTechnique.at(Technique::TransactionElimination);
        const SimResult &re =
            wr.byTechnique.at(Technique::RenderingElimination);
        double b = base.energy.total();
        printTableRow(wr.alias,
                      {te.energy.total() / b, re.energy.total() / b});
        teE.push_back(te.energy.total() / b);
        reE.push_back(re.energy.total() / b);
    }
    printTableRow("AVG", {mean(teE), mean(reE)});
    std::printf("\nTE energy saving AVG: %.1f%% | RE energy saving AVG:"
                " %.1f%% (paper: ~9%% vs ~43%%)\n",
                100.0 * (1.0 - mean(teE)), 100.0 * (1.0 - mean(reE)));
    return 0;
}
