/**
 * @file
 * Substitute for Fig. 1: average power of the desktop scene vs the
 * game workloads, from the simulator's energy model (the paper used a
 * Trepn/Snapdragon measurement we cannot perform).
 *
 * Expected shape: every game draws far more power than the mostly-idle
 * desktop; simple-looking 2D games (ccs) sit in the same league as 3D
 * ones - the paper's motivation for attacking redundant rendering.
 */

#include <cstdio>

#include "sim/experiment.hh"

using namespace regpu;

namespace
{

double
averagePowerMw(const std::string &alias, const ExperimentScale &scale)
{
    GpuConfig config;
    config.scaleResolution(scale.screenWidth, scale.screenHeight);
    config.technique = Technique::Baseline;
    std::unique_ptr<Scene> scene = alias == "desktop"
        ? makeDesktopScene(config)
        : makeBenchmark(alias, config);
    SimOptions opts;
    opts.frames = scale.frames;
    Simulator sim(*scene, config, opts);
    SimResult r = sim.run();
    // Wall-clock window: the display refreshes at 60 fps regardless of
    // how fast the GPU finished each frame; idle cycles draw only the
    // rail/display background power.
    Cycles activeCycles = r.totalCycles();
    // The Android desktop (no animations) invalidates nothing: the
    // compositor re-renders only the first frame of the window, then
    // the GPU sits idle while the display re-scans the same buffer.
    if (alias == "desktop")
        activeCycles /= std::max<u64>(1, r.frames);
    Cycles wallCycles = std::max<Cycles>(
        activeCycles,
        static_cast<Cycles>(r.frames * config.frequencyHz / 60));
    double idleMw = 18.0; // display-pipeline / rail background draw
    double activeMw = EnergyModel::averagePowerMw(
        r.energy, activeCycles, config.frequencyHz);
    if (alias == "desktop")
        activeMw /= std::max<u64>(1, r.frames);
    return activeMw * activeCycles / wallCycles + idleMw;
}

} // namespace

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    ExperimentScale scale = ExperimentScale::fromArgs(argc, argv);

    printTableHeader("Fig. 1 (simulated): average GPU+memory power",
                     {"power_mW"});
    double desktop = averagePowerMw("desktop", scale);
    printTableRow("desktop", {desktop}, 1);
    std::vector<double> games;
    for (const std::string &alias : allAliases()) {
        double p = averagePowerMw(alias, scale);
        printTableRow(alias, {p}, 1);
        games.push_back(p);
    }
    printTableRow("gamesAVG", {mean(games)}, 1);
    std::printf("\ngames draw %.1fx the desktop's power "
                "(paper shape: games >> desktop)\n",
                mean(games) / desktop);
    return 0;
}
