/**
 * @file
 * Substitute for Fig. 1: average power of the desktop scene vs the
 * game workloads, from the simulator's energy model (the paper used a
 * Trepn/Snapdragon measurement we cannot perform).
 *
 * Expected shape: every game draws far more power than the mostly-idle
 * desktop; simple-looking 2D games (ccs) sit in the same league as 3D
 * ones - the paper's motivation for attacking redundant rendering.
 */

#include <cstdio>

#include "sim/experiment.hh"
#include "sim/parallel_runner.hh"

using namespace regpu;

namespace
{

/** Power post-processing over a finished run (pure, no simulation). */
double
powerFromResult(const std::string &alias, const SimResult &r,
                const GpuConfig &config)
{
    // Wall-clock window: the display refreshes at 60 fps regardless of
    // how fast the GPU finished each frame; idle cycles draw only the
    // rail/display background power.
    Cycles activeCycles = r.totalCycles();
    // The Android desktop (no animations) invalidates nothing: the
    // compositor re-renders only the first frame of the window, then
    // the GPU sits idle while the display re-scans the same buffer.
    if (alias == "desktop")
        activeCycles /= std::max<u64>(1, r.frames);
    Cycles wallCycles = std::max<Cycles>(
        activeCycles,
        static_cast<Cycles>(r.frames * config.frequencyHz / 60));
    double idleMw = 18.0; // display-pipeline / rail background draw
    double activeMw = EnergyModel::averagePowerMw(
        r.energy, activeCycles, config.frequencyHz);
    if (alias == "desktop")
        activeMw /= std::max<u64>(1, r.frames);
    return activeMw * activeCycles / wallCycles + idleMw;
}

} // namespace

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    ExperimentScale scale = ExperimentScale::fromArgs(argc, argv);

    printTableHeader("Fig. 1 (simulated): average GPU+memory power",
                     {"power_mW"});

    // The desktop scene is not a suite alias, so it runs outside the
    // worker pool (one cheap run).
    GpuConfig desktopConfig;
    desktopConfig.scaleResolution(scale.screenWidth, scale.screenHeight);
    auto desktopScene = makeDesktopScene(desktopConfig);
    SimOptions desktopOpts;
    desktopOpts.frames = scale.frames;
    Simulator desktopSim(*desktopScene, desktopConfig, desktopOpts);
    double desktop =
        powerFromResult("desktop", desktopSim.run(), desktopConfig);
    printTableRow("desktop", {desktop}, 1);

    std::vector<SimJob> jobs =
        buildSweepJobs(allAliases(), {Technique::Baseline},
                       scale.screenWidth, scale.screenHeight,
                       scale.frames);
    // Honor the ExperimentScale trace flags like runSuite does (the
    // desktop scene is not a suite alias and always runs live).
    applyTraceFlags(jobs, scale.recordDir, scale.replayDir);
    const std::vector<SimResult> results =
        ParallelRunner(scale.jobs).run(jobs);

    std::vector<double> games;
    for (std::size_t i = 0; i < jobs.size(); i++) {
        double p = powerFromResult(jobs[i].workload, results[i],
                                   jobs[i].config);
        printTableRow(jobs[i].workload, {p}, 1);
        games.push_back(p);
    }
    printTableRow("gamesAVG", {mean(games)}, 1);
    std::printf("\ngames draw %.1fx the desktop's power "
                "(paper shape: games >> desktop)\n",
                mean(games) / desktop);
    return 0;
}
