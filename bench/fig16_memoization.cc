/**
 * @file
 * Reproduces Fig. 16: fragments shaded under RE and under PFR-aided
 * Fragment Memoization (2048-entry 4-way LUT, 32-bit hash without
 * screen coordinates), both normalized to the baseline.
 *
 * Paper shape: RE shades fewer fragments than memoization on most
 * workloads (it catches all redundant-input tiles, not just the
 * fraction a space-limited LUT retains across the even/odd frame
 * pairing), with hop as the notable exception (large plain-black
 * regions keep LUT pressure low).
 */

#include <cstdio>

#include "sim/experiment.hh"

using namespace regpu;

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    ExperimentScale scale = ExperimentScale::fromArgs(argc, argv);

    auto results = runSuite(allAliases(),
                            {Technique::Baseline,
                             Technique::RenderingElimination,
                             Technique::FragmentMemoization},
                            scale);

    printTableHeader(
        "Fig. 16: fragments shaded, normalized to Baseline",
        {"RE", "Memo", "memoReuse%"});
    std::vector<double> reN, memoN;
    for (const WorkloadResults &wr : results) {
        const SimResult &base = wr.byTechnique.at(Technique::Baseline);
        const SimResult &re =
            wr.byTechnique.at(Technique::RenderingElimination);
        const SimResult &memo =
            wr.byTechnique.at(Technique::FragmentMemoization);
        double b = static_cast<double>(base.fragmentsShaded);
        double reNorm = re.fragmentsShaded / b;
        double memoNorm = memo.fragmentsShaded / b;
        double reusePct = 100.0 * memo.fragmentsMemoReused
            / (memo.fragmentsShaded + memo.fragmentsMemoReused);
        printTableRow(wr.alias, {reNorm, memoNorm, reusePct});
        reN.push_back(reNorm);
        memoN.push_back(memoNorm);
    }
    printTableRow("AVG", {mean(reN), mean(memoN), 0.0});
    std::printf("\n(lower is better; paper: RE below Memo on most "
                "workloads)\n");
    return 0;
}
