/**
 * @file
 * Reproduces Fig. 15: (a) tile classification - equal colors & equal
 * inputs (RE-eliminated), equal colors & different inputs (false
 * negatives), different colors & inputs - and (b) raster-pipeline
 * main-memory traffic of RE normalized to the baseline, split into
 * Colors / Texels / Primitives.
 *
 * Paper shape: on average ~50% of tiles eliminated (81% of all
 * redundant tiles), ~12% false negatives, ~38% changed; 48% average
 * traffic reduction; zero diff-colors-equal-inputs tiles.
 */

#include <cstdio>

#include "sim/experiment.hh"

using namespace regpu;

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    ExperimentScale scale = ExperimentScale::fromArgs(argc, argv);

    auto results = runSuite(allAliases(),
                            {Technique::Baseline,
                             Technique::RenderingElimination},
                            scale);

    printTableHeader(
        "Fig. 15a: tile classes (% of compared tiles)",
        {"eqC&eqI", "eqC&diffI", "diffC&I", "eqI&diffC"});
    std::vector<double> elim, fneg, diff;
    for (const WorkloadResults &wr : results) {
        const TileClassCounts &tc =
            wr.byTechnique.at(Technique::RenderingElimination)
            .tileClasses;
        double n = static_cast<double>(tc.comparedTiles);
        double a = 100.0 * tc.equalColorsEqualInputs / n;
        double b = 100.0 * tc.equalColorsDiffInputs / n;
        double c = 100.0 * tc.diffColorsDiffInputs / n;
        double d = 100.0 * tc.diffColorsEqualInputs / n;
        printTableRow(wr.alias, {a, b, c, d}, 1);
        elim.push_back(a);
        fneg.push_back(b);
        diff.push_back(c);
    }
    printTableRow("AVG", {mean(elim), mean(fneg), mean(diff), 0.0}, 1);

    printTableHeader(
        "Fig. 15b: RE raster-pipeline DRAM traffic normalized to Base",
        {"colors", "texels", "prims", "total"});
    std::vector<double> totalN;
    for (const WorkloadResults &wr : results) {
        const SimResult &base = wr.byTechnique.at(Technique::Baseline);
        const SimResult &re =
            wr.byTechnique.at(Technique::RenderingElimination);
        auto norm = [&](TrafficClass c) {
            u64 b = base.traffic[c];
            return b ? static_cast<double>(re.traffic[c]) / b : 1.0;
        };
        u64 baseRaster = base.traffic[TrafficClass::Colors]
            + base.traffic[TrafficClass::Texels]
            + base.traffic[TrafficClass::Primitives];
        u64 reRaster = re.traffic[TrafficClass::Colors]
            + re.traffic[TrafficClass::Texels]
            + re.traffic[TrafficClass::Primitives];
        double t = baseRaster
            ? static_cast<double>(reRaster) / baseRaster : 1.0;
        printTableRow(wr.alias,
                      {norm(TrafficClass::Colors),
                       norm(TrafficClass::Texels),
                       norm(TrafficClass::Primitives), t});
        totalN.push_back(t);
    }
    printTableRow("AVG", {0, 0, 0, mean(totalN)});

    // The paper's premise: ~75% of all GPU memory accesses come from
    // the raster stages (textures + colors + primitives).
    std::vector<double> rasterShare;
    for (const WorkloadResults &wr : results) {
        const SimResult &base = wr.byTechnique.at(Technique::Baseline);
        u64 raster = base.traffic[TrafficClass::Colors]
            + base.traffic[TrafficClass::Texels]
            + base.traffic[TrafficClass::Primitives];
        rasterShare.push_back(100.0 * raster / base.traffic.total());
    }
    std::printf("\nRaster-stage share of baseline DRAM traffic AVG: "
                "%.1f%% (paper: ~75%%)\n", mean(rasterShare));
    return 0;
}
