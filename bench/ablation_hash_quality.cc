/**
 * @file
 * Section III-B / V ablation: signature-function quality. The paper
 * states CRC32 outperforms XOR-based schemes and that no CRC32
 * collision was ever observed. This bench measures, per hash kind:
 *
 *  - false positives on the workload suite (tiles wrongly skipped);
 *  - collisions on an adversarial stress: block permutations and
 *    duplicate-block streams, which defeat order/count-insensitive
 *    folds by construction.
 */

#include <cstdio>
#include <set>
#include <vector>

#include "common/rng.hh"
#include "crc/hashes.hh"
#include "sim/experiment.hh"
#include "sim/parallel_runner.hh"

using namespace regpu;

namespace
{

/** Tile-signature of a block sequence under a hash kind, mimicking
 *  the Signature Unit's fold order (byte-exact lengths). */
u32
streamSignature(HashKind kind, const std::vector<std::vector<u8>> &blocks)
{
    u32 running = 0;
    for (const auto &blk : blocks) {
        u32 sig = hashBlock(kind, blk);
        running = hashCombine(kind, running, sig, blk.size());
    }
    return running;
}

/** Count collisions among structurally-different streams. Block
 *  lengths are deliberately not 64-bit aligned so the byte-granular
 *  tail path is part of what is being graded. */
u64
adversarialCollisions(HashKind kind, u64 trials)
{
    Rng rng(99);
    u64 collisions = 0;
    for (u64 t = 0; t < trials; t++) {
        // Build two distinct blocks of unaligned length.
        std::vector<u8> a(13), b(13);
        for (auto &byte : a)
            byte = static_cast<u8>(rng.nextBounded(256));
        do {
            for (auto &byte : b)
                byte = static_cast<u8>(rng.nextBounded(256));
        } while (b == a);

        // Case 1: order swap (A,B) vs (B,A).
        if (streamSignature(kind, {a, b}) == streamSignature(kind, {b, a}))
            collisions++;
        // Case 2: duplicate pair (A,A,B) vs (B) - XOR self-cancels.
        if (streamSignature(kind, {a, a, b}) == streamSignature(kind, {b}))
            collisions++;
        // Case 3: single-bit complement pair inside one stream.
        auto a2 = a;
        a2[3] ^= 0x40;
        if (streamSignature(kind, {a, a2}) == streamSignature(kind, {a2, a}))
            collisions++;
        // Case 4: trailing-zero alias - the exact defect of the old
        // zero-padded datapath. A and A||{0,0,0} must not collide;
        // length-oblivious folds (and a padding CRC) cannot tell them
        // apart.
        auto aPadded = a;
        aPadded.insert(aPadded.end(), {0, 0, 0});
        if (streamSignature(kind, {a}) == streamSignature(kind, {aPadded}))
            collisions++;
    }
    return collisions;
}

/** False positives across a subset of the suite under a hash kind. */
u64
suiteFalsePositives(HashKind kind, const ExperimentScale &scale)
{
    std::vector<SimJob> jobs = buildSweepJobs(
        allAliases(), {Technique::RenderingElimination},
        scale.screenWidth, scale.screenHeight, scale.frames, kind);
    // Replay only: the command stream is hash-independent, so main()
    // records the trace set once up front rather than per hash kind.
    applyTraceFlags(jobs, "", scale.replayDir);
    const std::vector<SimResult> results =
        ParallelRunner(scale.jobs).run(jobs);
    return mergeResults(results).reFalsePositives;
}

} // namespace

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    ExperimentScale scale = ExperimentScale::fromArgs(argc, argv);
    // Hash ablation does not need the full resolution.
    if (scale.screenWidth > 400) {
        scale.screenWidth = 400;
        scale.screenHeight = 256;
    }
    if (!scale.recordDir.empty()) {
        // Record once: every hash kind sees the identical stream.
        std::vector<SimJob> recordJobs = buildSweepJobs(
            allAliases(), {Technique::RenderingElimination},
            scale.screenWidth, scale.screenHeight, scale.frames);
        recordSweepTraces(recordJobs, scale.recordDir);
    }

    const u64 trials = 20000;
    std::printf("== Hash-quality ablation (Section V claim: CRC32 over"
                " XOR schemes) ==\n");
    std::printf("%-8s %22s %20s\n", "hash",
                "adversarialCollisions", "suiteFalsePositives");
    for (HashKind kind : {HashKind::Crc32, HashKind::Fnv1a,
                          HashKind::XorFold, HashKind::AddFold}) {
        u64 adv = adversarialCollisions(kind, trials);
        u64 fp = suiteFalsePositives(kind, scale);
        std::printf("%-8s %22llu %20llu\n", hashKindName(kind),
                    static_cast<unsigned long long>(adv),
                    static_cast<unsigned long long>(fp));
    }
    std::printf("\n(adversarial trials: %llu x4 structural cases incl."
                " trailing-zero aliasing; paper observed zero CRC32"
                " collisions)\n",
                static_cast<unsigned long long>(trials));
    return 0;
}
