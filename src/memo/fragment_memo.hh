/**
 * @file
 * Fragment Memoization over Parallel Frame Rendering (Arnau et al.,
 * ISCA'14), modelled with the configuration the paper compares against
 * in §V-A: two frames rendered in parallel with tiles synchronised, a
 * 32-bit input hash that excludes screen coordinates, and a 2048-entry
 * 4-way LRU lookup table holding hash -> color.
 *
 * The PFR asymmetry the paper highlights is captured directly: the LUT
 * is cleared at the start of every frame *pair*, so the second (odd)
 * frame of a pair reuses fragments cached by the first (even) frame,
 * but the next pair starts cold - "odd frames cannot [reuse] because
 * their previous-frame values are already evicted from the LUT".
 */

#ifndef REGPU_MEMO_FRAGMENT_MEMO_HH
#define REGPU_MEMO_FRAGMENT_MEMO_HH

#include <vector>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "gpu/pipeline.hh"
#include "gpu/raster.hh"

namespace regpu
{

/**
 * The memoization LUT: set-associative, LRU, tagged by the 32-bit
 * fragment signature, holding the memoized output color.
 */
class MemoLut
{
  public:
    /**
     * @param entries total LUT entries; must be a positive multiple of
     *        @p ways (otherwise `sig % numSets` below would divide by
     *        zero / silently drop capacity)
     * @param ways set associativity; must be >= 1
     */
    MemoLut(u32 entries, u32 ways)
    {
        validateMemoLutGeometry(entries, ways, "MemoLut");
        numSets = entries / ways;
        sets.resize(numSets);
        for (auto &s : sets)
            s.ways.resize(ways);
    }

    /** Look up a signature. @return true and fill color on hit. */
    bool
    lookup(u32 sig, Color &color)
    {
        stamp++;
        Set &set = sets[sig % numSets];
        for (Way &w : set.ways) {
            if (w.valid && w.tag == sig) {
                color = w.color;
                w.lastUse = stamp;
                hits_++;
                return true;
            }
        }
        misses_++;
        return false;
    }

    /** Insert (LRU-replace) a signature/color pair. */
    void
    insert(u32 sig, Color color)
    {
        stamp++;
        Set &set = sets[sig % numSets];
        Way *victim = &set.ways[0];
        for (Way &w : set.ways) {
            if (!w.valid) {
                victim = &w;
                break;
            }
            if (w.lastUse < victim->lastUse)
                victim = &w;
        }
        victim->valid = true;
        victim->tag = sig;
        victim->color = color;
        victim->lastUse = stamp;
    }

    /** Clear all entries (frame-pair boundary). */
    void
    clear()
    {
        for (auto &s : sets)
            for (auto &w : s.ways)
                w = Way{};
    }

    u64 hits() const { return hits_; }
    u64 misses() const { return misses_; }
    void resetStats() { hits_ = misses_ = 0; }

    /** Storage: tag (4 B) + color (4 B) per entry. */
    u64
    sizeBytes() const
    {
        u64 entries = 0;
        for (const auto &s : sets)
            entries += s.ways.size();
        return entries * 8;
    }

  private:
    struct Way
    {
        bool valid = false;
        u32 tag = 0;
        Color color;
        u64 lastUse = 0;
    };
    struct Set
    {
        std::vector<Way> ways;
    };

    u64 numSets = 0;
    std::vector<Set> sets;
    u64 stamp = 0;
    u64 hits_ = 0;
    u64 misses_ = 0;
};

/**
 * PipelineHooks + FragmentMemoClient implementation of PFR-aided
 * Fragment Memoization.
 *
 * PFR renders two consecutive frames in parallel with their tiles
 * synchronised, so when tile t of the pair's second frame reaches the
 * fragment stage, the LUT's live contents are tile t of the first
 * frame (plus the second frame's own earlier fragments of the tile).
 * Our simulator renders frames sequentially, so we reconstruct that
 * live set exactly: the first frame of each pair records its per-tile
 * (signature, color) streams; at tileBegin of the second frame, the
 * LUT is rebuilt by replaying the recorded stream (capacity and LRU
 * replacement apply, so an over-large stream thrashes just as the
 * real LUT would - the paper's "space-limited LUT only captures ~60%
 * of the potential").
 *
 * The cross-pair asymmetry the paper highlights falls out naturally:
 * the first frame of a pair cannot reuse the previous pair's values -
 * they are gone by the time it renders.
 */
class FragmentMemoization : public PipelineHooks,
                            public FragmentMemoClient
{
  public:
    FragmentMemoization(const GpuConfig &_config, StatRegistry &_stats)
        : config(_config), stats(_stats),
          lut(_config.memoLutEntries, _config.memoLutWays),
          tileStreams(_config.numTiles())
    {}

    // ---- PipelineHooks -----------------------------------------------

    void
    frameBegin(u64 frameIndex, bool reSafe) override
    {
        firstOfPair = frameIndex % 2 == 0;
        // Memoization is disabled while the user interacts (the
        // paper's input-response-lag rule); reSafe approximates it.
        active = reSafe;
    }

    void
    tileBegin(TileId tile) override
    {
        currentTile = tile;
        lut.clear();
        if (!active)
            return;
        if (firstOfPair) {
            // This frame populates the stream its pair partner reuses.
            tileStreams[tile].clear();
        } else {
            // Replay the partner frame's fragments through the LUT.
            for (const auto &[sig, color] : tileStreams[tile])
                lut.insert(sig, color);
        }
    }

    FragmentMemoClient *memoClient() override { return this; }

    // ---- FragmentMemoClient --------------------------------------------

    bool
    lookup(u32 signature, Color &reused) override
    {
        if (!active)
            return false;
        stats.inc("memo.lookups");
        if (lut.lookup(signature, reused)) {
            stats.inc("memo.hits");
            return true;
        }
        return false;
    }

    void
    insert(u32 signature, Color color) override
    {
        if (!active)
            return;
        lut.insert(signature, color);
        if (firstOfPair) {
            auto &stream = tileStreams[currentTile];
            // Bound the recorded stream: beyond ~2x the LUT capacity
            // the replay would have evicted everything older anyway.
            if (stream.size() < 2ull * config.memoLutEntries)
                stream.emplace_back(signature, color);
        }
    }

    MemoLut &lutRef() { return lut; }

  private:
    const GpuConfig &config;
    StatRegistry &stats;
    MemoLut lut;
    std::vector<std::vector<std::pair<u32, Color>>> tileStreams;
    TileId currentTile = 0;
    bool firstOfPair = true;
    bool active = true;
};

} // namespace regpu

#endif // REGPU_MEMO_FRAGMENT_MEMO_HH
