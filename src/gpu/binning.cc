#include "gpu/binning.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "gpu/memiface.hh"

namespace regpu
{

namespace
{

constexpr Addr parameterBufferBase = 0x2'0000'0000ull;

/**
 * Conservative triangle-vs-rectangle overlap: true when the rectangle
 * is not strictly outside any triangle edge and the boxes intersect.
 * Degenerate (zero-area) triangles never got here (culled earlier).
 */
bool
triangleOverlapsRect(const Primitive &p, float rx0, float ry0,
                     float rx1, float ry1)
{
    // The bbox pre-test is done by the caller; here run the three
    // edge tests. A point q is inside edge (a -> b) when the edge
    // function f(q) = (b-a) x (q-a), multiplied by the triangle's
    // winding sign, is >= 0. The rectangle is entirely outside the
    // edge iff even its most-inside corner (the one maximising
    // sign * f) is outside.
    float area2 = p.signedArea2();
    float sign = area2 >= 0 ? 1.0f : -1.0f;
    for (int e = 0; e < 3; e++) {
        const ShadedVertex &a = p.v[e];
        const ShadedVertex &b = p.v[(e + 1) % 3];
        float ex = b.x - a.x, ey = b.y - a.y;
        // f(q) = (b-a) x (q-a) = ex*(qy-ay) - ey*(qx-ax); the third
        // vertex gives f = area2, so inside means sign*f >= 0.
        // d(sign*f)/dqx = -sign*ey and d(sign*f)/dqy = sign*ex pick
        // the corner maximising sign*f.
        float cx = (sign * ey > 0) ? rx0 : rx1;
        float cy = (sign * ex > 0) ? ry1 : ry0;
        float f = ex * (cy - a.y) - ey * (cx - a.x);
        if (sign * f < 0)
            return false; // whole rectangle outside this edge
    }
    return true;
}

} // namespace

void
PolygonListBuilder::beginFrame(BinnedFrame &frame)
{
    frame.primitives.clear();
    frame.tileLists.assign(config.numTiles(), {});
    frame.parameterBytes = 0;
    pbCursor = parameterBufferBase;
}

std::vector<TileId>
PolygonListBuilder::overlappedTiles(const Primitive &prim) const
{
    std::vector<TileId> tiles;
    float minX, minY, maxX, maxY;
    prim.bounds(minX, minY, maxX, maxY);

    // Clamp to the screen.
    if (maxX < 0 || maxY < 0 || minX >= config.screenWidth
        || minY >= config.screenHeight)
        return tiles;

    const i32 tx0 = std::max<i32>(0,
        static_cast<i32>(std::floor(minX)) / static_cast<i32>(config.tileWidth));
    const i32 ty0 = std::max<i32>(0,
        static_cast<i32>(std::floor(minY)) / static_cast<i32>(config.tileHeight));
    const i32 tx1 = std::min<i32>(config.tilesX() - 1,
        static_cast<i32>(std::floor(maxX)) / static_cast<i32>(config.tileWidth));
    const i32 ty1 = std::min<i32>(config.tilesY() - 1,
        static_cast<i32>(std::floor(maxY)) / static_cast<i32>(config.tileHeight));

    for (i32 ty = ty0; ty <= ty1; ty++) {
        for (i32 tx = tx0; tx <= tx1; tx++) {
            float rx0 = tx * static_cast<float>(config.tileWidth);
            float ry0 = ty * static_cast<float>(config.tileHeight);
            float rx1 = rx0 + config.tileWidth;
            float ry1 = ry0 + config.tileHeight;
            if (triangleOverlapsRect(prim, rx0, ry0, rx1, ry1))
                tiles.push_back(ty * config.tilesX() + tx);
        }
    }
    return tiles;
}

void
PolygonListBuilder::binDrawcall(const DrawCall &draw,
                                const std::vector<Primitive> &prims,
                                BinnedFrame &frame)
{
    for (const Primitive &prim : prims) {
        std::vector<TileId> tiles = overlappedTiles(prim);
        if (tiles.empty()) {
            stats.inc("binning.primitivesOffscreen");
            continue;
        }

        // Store the primitive's attributes in the Parameter Buffer:
        // shaded vertices (position+varyings) in a raster-friendly
        // layout, plus a per-tile list entry (8 B pointer each).
        const u32 attrBytes = draw.layout.attributeCount() * 3 * 16;
        const u32 payload = attrBytes + 16; // header: state + edge eqns
        const Addr addr = pbCursor;
        pbCursor += payload;
        frame.parameterBytes += payload + 8ull * tiles.size();
        if (mem) {
            mem->parameterWrite(addr, payload);
            for (TileId t : tiles)
                mem->parameterWrite(addr + payload + t % 64, 8);
        }

        const u32 primIndex = static_cast<u32>(frame.primitives.size());
        frame.primitives.push_back(prim);
        for (TileId t : tiles)
            frame.tileLists[t].push_back({primIndex, addr, payload});

        stats.inc("binning.primitivesBinned");
        stats.inc("binning.tileOverlaps", tiles.size());

        if (observer)
            observer(prim, draw, tiles);
    }
}

} // namespace regpu
