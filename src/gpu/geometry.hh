/**
 * @file
 * The Geometry Pipeline: Vertex Fetcher, Vertex Processors and
 * Primitive Assembly (clipping, culling, viewport transform).
 */

#ifndef REGPU_GPU_GEOMETRY_HH
#define REGPU_GPU_GEOMETRY_HH

#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "gpu/primitive.hh"
#include "gpu/vertex.hh"

namespace regpu
{

class MemTraceSink;

/** Per-drawcall output of the Geometry Pipeline. */
struct GeometryOutput
{
    std::vector<Primitive> primitives;
    u64 verticesFetched = 0;
    u64 verticesShaded = 0;
    u64 trianglesIn = 0;
    u64 trianglesCulled = 0;
    u64 trianglesClipped = 0;  //!< triangles that needed near-plane clip
};

/**
 * Functional model of the Geometry Pipeline for one drawcall.
 */
class GeometryPipeline
{
  public:
    GeometryPipeline(const GpuConfig &_config, StatRegistry &_stats,
                     MemTraceSink *_mem)
        : config(_config), stats(_stats), mem(_mem)
    {}

    /**
     * Run fetch + shade + assemble for a drawcall.
     *
     * Clipping: triangles fully outside the frustum are rejected;
     * triangles crossing the near plane are clipped (Sutherland-
     * Hodgman) into a small fan. Back-face culling follows the
     * drawcall state (2D sprite draws disable it via degenerate
     * winding being allowed).
     */
    GeometryOutput process(const DrawCall &draw);

  private:
    /** Apply the vertex shader: transform + varying setup. */
    ShadedVertex shadeVertex(const DrawCall &draw, const Vertex &in) const;

    const GpuConfig &config;
    StatRegistry &stats;
    MemTraceSink *mem;
};

} // namespace regpu

#endif // REGPU_GPU_GEOMETRY_HH
