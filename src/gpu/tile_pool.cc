#include "gpu/tile_pool.hh"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <thread>

#include "common/logging.hh"
#include "common/thread_annotations.hh"
#include "obs/obs.hh"

namespace regpu
{

namespace
{

/** Shared pool state for one frame's tile batch: per-tile done flags
 *  published by workers, consumed in order by the merging caller, and
 *  first-exception capture (ParallelRunner's ErrorState discipline).
 *  The condition variable pairs with the annotated mutex; it needs no
 *  capability annotation of its own (waiting releases/reacquires the
 *  mutex internally, invisible to — and safe under — the analysis). */
struct BatchState
{
    Mutex mutex;
    std::condition_variable_any ready;
    std::vector<u8> done REGPU_GUARDED_BY(mutex);
    std::exception_ptr firstError REGPU_GUARDED_BY(mutex);
};

} // namespace

void
runTilesOrdered(u32 numTiles, unsigned jobs,
                const std::function<void(TileId)> &phase1,
                const std::function<void(TileId)> &merge)
{
    if (jobs > numTiles)
        jobs = numTiles;
    if (jobs <= 1) {
        // The serial pipeline, definitionally: phase 1 and its merge
        // back-to-back per tile, ascending.
        for (TileId tile = 0; tile < numTiles; tile++) {
            phase1(tile);
            merge(tile);
        }
        return;
    }

    BatchState state;
    {
        MutexLock lock(state.mutex);
        state.done.assign(numTiles, 0);
    }
    // Tile-claim counter: the sanctioned lone-atomic pattern (same as
    // ParallelRunner's job counter) — claim order is a race by design,
    // and nothing downstream depends on it because the merge below is
    // order-fixed.
    std::atomic<u32> nextTile{0};

    auto workerLoop = [&](unsigned workerIndex) {
        ObsScope span("gpu", "tileWorker", "worker",
                      static_cast<i64>(workerIndex), "tiles",
                      static_cast<i64>(numTiles));
        while (true) {
            const TileId tile =
                nextTile.fetch_add(1, std::memory_order_relaxed);
            if (tile >= numTiles)
                return;
            bool failed = false;
            try {
                phase1(tile);
            } catch (...) {
                failed = true;
                MutexLock lock(state.mutex);
                if (!state.firstError)
                    state.firstError = std::current_exception();
            }
            {
                MutexLock lock(state.mutex);
                // A failed tile still publishes "done" so the merging
                // caller wakes up and sees the error instead of
                // blocking on a result that will never come.
                state.done[tile] = failed ? 2 : 1;
            }
            state.ready.notify_all();
        }
    };

    std::vector<std::thread> workers;
    workers.reserve(jobs);
    for (unsigned w = 0; w < jobs; w++)
        workers.emplace_back(workerLoop, w);

    // Eager in-order merge: wait for tile t, fold it, move on. A merge
    // callback that throws must still join the pool before the
    // exception propagates, so the loop records rather than throws.
    std::exception_ptr mergeError;
    for (TileId tile = 0; tile < numTiles && !mergeError; tile++) {
        bool tileFailed = false;
        {
            MutexLock lock(state.mutex);
            while (state.done[tile] == 0 && !state.firstError)
                state.ready.wait(state.mutex);
            tileFailed = state.done[tile] != 1
                || static_cast<bool>(state.firstError);
        }
        if (tileFailed)
            break;
        try {
            merge(tile);
        } catch (...) {
            mergeError = std::current_exception();
        }
    }

    for (auto &worker : workers)
        worker.join();

    if (mergeError)
        std::rethrow_exception(mergeError);
    MutexLock lock(state.mutex);
    if (state.firstError)
        std::rethrow_exception(state.firstError);
}

} // namespace regpu
