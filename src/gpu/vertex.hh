/**
 * @file
 * Vertex formats and drawcall / command-stream definitions.
 */

#ifndef REGPU_GPU_VERTEX_HH
#define REGPU_GPU_VERTEX_HH

#include <cstring>
#include <span>
#include <vector>

#include "common/types.hh"
#include "common/vecmath.hh"
#include "gpu/shader.hh"

namespace regpu
{

/**
 * An input vertex as submitted by the application.
 *
 * Attribute presence is fixed per drawcall (see VertexLayout); unused
 * attributes hold zeros so serialisation stays byte-stable.
 */
struct Vertex
{
    Vec3 position;       //!< object-space position
    Vec4 color{1, 1, 1, 1};
    Vec2 texcoord;
    Vec3 normal{0, 0, 1};

    bool operator==(const Vertex &) const = default;
};

/** Which attributes a drawcall's vertices carry. */
struct VertexLayout
{
    bool hasColor = false;
    bool hasTexcoord = false;
    bool hasNormal = false;

    /**
     * Per-vertex size in bytes as fetched by the Vertex Fetcher.
     * Position is a vec4 in memory (w=1 pad), matching the paper's
     * "four 4-byte components" accounting.
     */
    u32
    strideBytes() const
    {
        u32 s = 16;
        if (hasColor) s += 16;
        if (hasTexcoord) s += 16;  // padded to vec4
        if (hasNormal) s += 16;
        return s;
    }

    /** Number of vec4 attributes per vertex (incl. position). */
    u32
    attributeCount() const
    {
        return 1 + (hasColor ? 1 : 0) + (hasTexcoord ? 1 : 0)
            + (hasNormal ? 1 : 0);
    }

    bool operator==(const VertexLayout &) const = default;
};

/**
 * One drawcall: pipeline state + a triangle-list vertex stream.
 */
struct DrawCall
{
    PipelineState state;
    VertexLayout layout;
    std::vector<Vertex> vertices;  //!< triangle list (3N vertices)
    /** Stable id of the vertex buffer backing this draw (address map +
     *  vertex-cache behaviour). */
    u32 vertexBufferId = 0;

    u32 triangleCount() const
    { return static_cast<u32>(vertices.size() / 3); }

    /** Simulated address of vertex @p i in its vertex buffer. */
    Addr
    vertexAddr(u32 i) const
    {
        return 0x1'0000'0000ull
            + (static_cast<Addr>(vertexBufferId) << 20)
            + static_cast<Addr>(i) * layout.strideBytes();
    }
};

/**
 * Everything the application submits for one frame: an ordered list of
 * drawcalls (state changes are implicit in each drawcall's state, as
 * the Command Processor would have resolved them) plus frame-global
 * flags the driver tracks for Rendering Elimination.
 */
struct FrameCommands
{
    std::vector<DrawCall> draws;

    /**
     * True when the application loaded new shaders/textures this frame
     * (glShaderSource / glTexImage2D): the driver disables RE for the
     * frame (paper §III-E).
     */
    bool globalStateChanged = false;

    /** Clear color for the frame (tiles start cleared to this). */
    Color clearColor{0, 0, 0, 255};
};

/**
 * Serialise the vertex attributes of one assembled triangle for the
 * Signature Unit: 3 vertices x vec4 per present attribute, in a fixed
 * attribute order. A 3-attribute triangle serialises to 3x3x16 = 144
 * bytes = 18 sub-blocks of 64 bits, matching the paper's "signing the
 * average primitive requires 18 cycles".
 */
std::vector<u8> serializeTriangleAttributes(const DrawCall &draw,
                                            u32 firstVertexIndex);

/** Upper bound of serializeTriangleAttributes output: 3 vertices x
 *  4 vec4 attributes x 16 bytes. Sizes fixed stack buffers on the
 *  per-primitive signature hot path. */
constexpr std::size_t maxTriangleAttributeBytes = 3 * 4 * 16;

/**
 * Allocation-free variant: serialise into @p out (at least
 * maxTriangleAttributeBytes long, asserted) and return the number of
 * bytes written. Byte-identical to serializeTriangleAttributes.
 */
std::size_t serializeTriangleAttributesInto(const DrawCall &draw,
                                            u32 firstVertexIndex,
                                            std::span<u8> out);

} // namespace regpu

#endif // REGPU_GPU_VERTEX_HH
