/**
 * @file
 * Double-buffered Frame Buffer in simulated main memory.
 *
 * The display scans out the Front Buffer while the GPU renders into
 * the Back Buffer; buffers swap at frame end (paper §IV-C). Tile
 * contents therefore persist for two frames, which is why RE and TE
 * compare a tile against the frame *before* the displayed one.
 */

#ifndef REGPU_GPU_FRAMEBUFFER_HH
#define REGPU_GPU_FRAMEBUFFER_HH

#include <vector>

#include "common/config.hh"
#include "gpu/color.hh"

namespace regpu
{

/**
 * Two full-screen color surfaces plus tile-granularity access helpers.
 */
class FrameBuffer
{
  public:
    explicit FrameBuffer(const GpuConfig &_config)
        : config(_config),
          surfaces{std::vector<Color>(pixelCount()),
                   std::vector<Color>(pixelCount())}
    {}

    /** Pixels per surface. */
    std::size_t
    pixelCount() const
    {
        return static_cast<std::size_t>(config.screenWidth)
            * config.screenHeight;
    }

    /** Index of the surface the GPU currently renders into. */
    u32 backIndex() const { return back; }

    /** Swap front and back (end of frame). */
    void swap() { back ^= 1; }

    /** Simulated base address of the back buffer. */
    Addr
    backAddr() const
    {
        return 0x4'0000'0000ull + (static_cast<Addr>(back) << 31);
    }

    /** Simulated address of a tile's first pixel in the back buffer. */
    Addr
    tileAddr(TileId tile) const
    {
        const u32 tx = tile % config.tilesX();
        const u32 ty = tile / config.tilesX();
        const Addr pixel = static_cast<Addr>(ty) * config.tileHeight
            * config.screenWidth + static_cast<Addr>(tx) * config.tileWidth;
        return backAddr() + pixel * 4;
    }

    /** Bytes one tile occupies (clipped tiles at screen edges count
     *  their real pixel footprint). */
    u32
    tileBytes(TileId tile) const
    {
        const u32 tx = tile % config.tilesX();
        const u32 ty = tile / config.tilesX();
        const u32 w = std::min(config.tileWidth,
                               config.screenWidth - tx * config.tileWidth);
        const u32 h = std::min(config.tileHeight,
                               config.screenHeight - ty * config.tileHeight);
        return w * h * 4;
    }

    /**
     * Write a rendered tile (tileWidth x tileHeight colors, row-major;
     * off-screen pixels of edge tiles are ignored) into the back buffer.
     */
    void writeTile(TileId tile, const std::vector<Color> &colors);

    /** Read a tile from the back buffer (row-major, edge pixels of
     *  off-screen regions returned as clear black). */
    std::vector<Color> readTile(TileId tile) const;

    /** Compare a rendered tile against the back buffer's current
     *  content (ground truth for redundancy classification). */
    bool tileEquals(TileId tile, const std::vector<Color> &colors) const;

    /** Direct pixel access to the back buffer (tests, image dumps). */
    Color
    pixel(u32 x, u32 y) const
    {
        return surfaces[back][static_cast<std::size_t>(y)
                              * config.screenWidth + x];
    }

    /** Direct pixel access to the front buffer. */
    Color
    frontPixel(u32 x, u32 y) const
    {
        return surfaces[back ^ 1][static_cast<std::size_t>(y)
                                  * config.screenWidth + x];
    }

    /** Whole back-buffer snapshot (row-major). */
    const std::vector<Color> &backSurface() const
    { return surfaces[back]; }

  private:
    const GpuConfig &config;
    std::vector<Color> surfaces[2];
    u32 back = 0;
};

} // namespace regpu

#endif // REGPU_GPU_FRAMEBUFFER_HH
