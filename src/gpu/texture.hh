/**
 * @file
 * Procedural textures and the texture sampler.
 *
 * Real traces ship compressed texture assets; we substitute
 * deterministic procedural images (checkerboards, noise, gradients,
 * sprite atlases, plain fills). What matters for the experiments is
 * (a) texel values feeding the fragment shader and (b) the texel
 * address stream feeding the texture caches; both are preserved.
 */

#ifndef REGPU_GPU_TEXTURE_HH
#define REGPU_GPU_TEXTURE_HH

#include <memory>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "gpu/color.hh"

namespace regpu
{

/** Procedural content classes for texture synthesis. */
enum class TexturePattern
{
    Solid,      //!< single plain color (background skies, fills)
    Checker,    //!< two-color checkerboard
    Gradient,   //!< smooth two-color gradient
    Noise,      //!< value-noise blotches (grass, rock)
    Atlas,      //!< grid of distinct colored "sprites" with borders
};

/**
 * A 2D RGBA8 texture with power-of-two dimensions.
 */
class Texture
{
  public:
    /**
     * Synthesise a texture.
     * @param id stable identifier (drives the address map and hashing)
     * @param w,h dimensions (powers of two)
     * @param pattern content class
     * @param seed content seed
     */
    Texture(u32 id, u32 w, u32 h, TexturePattern pattern, u64 seed);

    /**
     * Wrap existing texel data (trace replay, imported assets).
     * @param texels row-major RGBA data, exactly w*h texels (asserted)
     */
    Texture(u32 id, u32 w, u32 h, std::vector<Color> texels);

    u32 id() const { return id_; }
    u32 width() const { return width_; }
    u32 height() const { return height_; }

    /** Raw texel (u, v wrapped). */
    Color
    texel(i32 u, i32 v) const
    {
        u32 uu = static_cast<u32>(u) & (width_ - 1);
        u32 vv = static_cast<u32>(v) & (height_ - 1);
        return texels[vv * width_ + uu];
    }

    /** Simulated main-memory address of texel (u, v). */
    Addr
    texelAddr(i32 u, i32 v) const
    {
        u32 uu = static_cast<u32>(u) & (width_ - 1);
        u32 vv = static_cast<u32>(v) & (height_ - 1);
        return baseAddr() + (static_cast<Addr>(vv) * width_ + uu) * 4;
    }

    /** Base of this texture's simulated address range. */
    Addr
    baseAddr() const
    {
        return 0x3'0000'0000ull + (static_cast<Addr>(id_) << 24);
    }

    /** Footprint in bytes. */
    u64 sizeBytes() const { return u64(width_) * height_ * 4; }

    /** Raw row-major texel storage (trace capture serialises this). */
    const std::vector<Color> &texelData() const { return texels; }

    /** Overwrite a texel (tests / dynamic-texture experiments). */
    void
    setTexel(u32 u, u32 v, Color c)
    {
        texels[(v & (height_ - 1)) * width_ + (u & (width_ - 1))] = c;
    }

  private:
    u32 id_;
    u32 width_;
    u32 height_;
    std::vector<Color> texels;
};

/**
 * Nearest / bilinear sampler. Also reports the texel addresses it
 * touched so the caller can drive the texture-cache model.
 */
class Sampler
{
  public:
    enum class Filter { Nearest, Bilinear };

    /**
     * Sample @p tex at normalized coordinates (s, t) with wrapping.
     * @param touched if non-null, filled with the texel addresses read
     * @return filtered color
     */
    static Color sample(const Texture &tex, float s, float t,
                        Filter filter, std::vector<Addr> *touched);
};

} // namespace regpu

#endif // REGPU_GPU_TEXTURE_HH
