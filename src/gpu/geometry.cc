#include "gpu/geometry.hh"

#include <array>
#include <cmath>

#include "common/logging.hh"
#include "gpu/memiface.hh"

namespace regpu
{

namespace
{

/** A vertex in clip space carrying its varyings, used during clipping. */
struct ClipVertex
{
    Vec4 clip;
    Vec4 color;
    Vec2 texcoord;
    float diffuse = 1;
};

ClipVertex
lerpClip(const ClipVertex &a, const ClipVertex &b, float t)
{
    ClipVertex r;
    r.clip = lerp(a.clip, b.clip, t);
    r.color = lerp(a.color, b.color, t);
    r.texcoord = lerp(a.texcoord, b.texcoord, t);
    r.diffuse = lerp(a.diffuse, b.diffuse, t);
    return r;
}

/**
 * Clip a polygon against the near plane (w >= epsilon, which in clip
 * space also bounds z >= -w for our projection matrices well enough
 * for the synthetic scenes; full-frustum rejection is done separately
 * with a conservative outcode test).
 */
std::vector<ClipVertex>
clipNear(const std::vector<ClipVertex> &poly)
{
    constexpr float wEps = 1e-5f;
    std::vector<ClipVertex> out;
    const std::size_t n = poly.size();
    for (std::size_t i = 0; i < n; i++) {
        const ClipVertex &cur = poly[i];
        const ClipVertex &nxt = poly[(i + 1) % n];
        bool curIn = cur.clip.w >= wEps;
        bool nxtIn = nxt.clip.w >= wEps;
        if (curIn)
            out.push_back(cur);
        if (curIn != nxtIn) {
            float t = (wEps - cur.clip.w) / (nxt.clip.w - cur.clip.w);
            out.push_back(lerpClip(cur, nxt, t));
        }
    }
    return out;
}

/** Conservative all-outside test against one frustum plane. */
bool
allOutside(const std::array<ClipVertex, 3> &tri, int axis, float sign)
{
    for (const auto &v : tri) {
        float coord = axis == 0 ? v.clip.x : axis == 1 ? v.clip.y
                                                       : v.clip.z;
        if (sign * coord <= v.clip.w)
            return false;
    }
    return true;
}

} // namespace

ShadedVertex
GeometryPipeline::shadeVertex(const DrawCall &draw, const Vertex &in) const
{
    // This functional step mirrors what GeometryOutput-level code does;
    // the real transform happens in process() where clipping needs clip
    // space. Kept for API completeness (used by tests).
    const UniformSet &u = draw.state.uniforms;
    Vec4 clip = u.mvp * Vec4(in.position, 1.0f);
    ShadedVertex sv;
    float invW = clip.w != 0 ? 1.0f / clip.w : 0.0f;
    sv.x = (clip.x * invW * 0.5f + 0.5f) * config.screenWidth;
    sv.y = (clip.y * invW * 0.5f + 0.5f) * config.screenHeight;
    sv.z = clip.z * invW * 0.5f + 0.5f;
    sv.invW = invW;
    sv.color = in.color;
    sv.texcoord = in.texcoord;
    return sv;
}

GeometryOutput
GeometryPipeline::process(const DrawCall &draw)
{
    GeometryOutput out;
    const UniformSet &u = draw.state.uniforms;
    const u32 triangles = draw.triangleCount();
    out.trianglesIn = triangles;

    const float halfW = config.screenWidth * 0.5f;
    const float halfH = config.screenHeight * 0.5f;

    for (u32 t = 0; t < triangles; t++) {
        std::array<ClipVertex, 3> tri;
        for (u32 k = 0; k < 3; k++) {
            const u32 idx = t * 3 + k;
            const Vertex &vin = draw.vertices[idx];
            // Vertex Fetcher: read the attribute bytes through the
            // vertex cache.
            if (mem) {
                mem->vertexFetch(draw.vertexAddr(idx),
                                 draw.layout.strideBytes());
            }
            out.verticesFetched++;
            // Vertex Processor: transform + varying setup.
            ClipVertex cv;
            cv.clip = u.mvp * Vec4(vin.position, 1.0f);
            cv.color = vin.color;
            cv.texcoord = {vin.texcoord.x + u.uvOffsetS,
                           vin.texcoord.y + u.uvOffsetT};
            if (draw.state.shader == ShaderKind::TexLit) {
                Vec3 n = vin.normal.normalized();
                float d = std::max(0.0f, n.dot(u.lightDir.normalized()));
                cv.diffuse = 0.25f + 0.75f * d;
            }
            tri[k] = cv;
            out.verticesShaded++;
            stats.inc("geometry.vertexShaderInstrs",
                      vertexShaderInstructions(draw.state.shader));
        }

        // Trivial frustum rejection (x, y, z outcodes).
        bool rejected = false;
        for (int axis = 0; axis < 3 && !rejected; axis++) {
            if (allOutside(tri, axis, 1.0f) || allOutside(tri, axis, -1.0f))
                rejected = true;
        }
        if (rejected) {
            out.trianglesCulled++;
            continue;
        }

        // Near-plane clip when any vertex has w below threshold.
        std::vector<ClipVertex> poly{tri[0], tri[1], tri[2]};
        bool needsClip = tri[0].clip.w < 1e-5f || tri[1].clip.w < 1e-5f
            || tri[2].clip.w < 1e-5f;
        if (needsClip) {
            poly = clipNear(poly);
            out.trianglesClipped++;
            if (poly.size() < 3) {
                out.trianglesCulled++;
                continue;
            }
        }

        // Viewport transform + fan triangulation of the clipped poly.
        auto toShaded = [&](const ClipVertex &cv) {
            ShadedVertex sv;
            float invW = 1.0f / cv.clip.w;
            sv.x = (cv.clip.x * invW + 1.0f) * halfW;
            sv.y = (cv.clip.y * invW + 1.0f) * halfH;
            sv.z = clampf(cv.clip.z * invW * 0.5f + 0.5f, 0.0f, 1.0f);
            sv.invW = invW;
            sv.color = cv.color;
            sv.texcoord = cv.texcoord;
            sv.diffuse = cv.diffuse;
            return sv;
        };

        for (std::size_t f = 1; f + 1 < poly.size(); f++) {
            Primitive prim;
            prim.v[0] = toShaded(poly[0]);
            prim.v[1] = toShaded(poly[f]);
            prim.v[2] = toShaded(poly[f + 1]);
            prim.drawIndex = 0; // caller fills in
            prim.firstVertex = t * 3;

            // Back-face culling (counter-clockwise front faces). 2D
            // workloads disable depth testing and draw CCW quads, so
            // this only removes genuinely back-facing 3D geometry.
            float area2 = prim.signedArea2();
            if (area2 == 0 || (draw.state.depthTest && area2 < 0)) {
                out.trianglesCulled++;
                continue;
            }
            out.primitives.push_back(prim);
        }
    }

    stats.inc("geometry.verticesFetched", out.verticesFetched);
    stats.inc("geometry.verticesShaded", out.verticesShaded);
    stats.inc("geometry.trianglesIn", out.trianglesIn);
    stats.inc("geometry.trianglesCulled", out.trianglesCulled);
    stats.inc("geometry.primitivesOut", out.primitives.size());
    return out;
}

} // namespace regpu
