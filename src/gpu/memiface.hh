/**
 * @file
 * Interface through which the functional pipeline reports its memory
 * accesses to the timing model (caches + DRAM). A null implementation
 * lets the functional pipeline run standalone in unit tests.
 */

#ifndef REGPU_GPU_MEMIFACE_HH
#define REGPU_GPU_MEMIFACE_HH

#include <span>

#include "common/types.hh"

namespace regpu
{

/** Traffic classes reported to DRAM (Fig. 15b split). */
enum class TrafficClass : u8
{
    Geometry,   //!< vertex fetches + parameter-buffer writes
    Primitives, //!< parameter-buffer reads by the Tile Scheduler
    Texels,     //!< texture fetches
    Colors,     //!< Color Buffer flushes to the Frame Buffer
};

/**
 * Sink for simulated memory accesses.
 */
class MemTraceSink
{
  public:
    virtual ~MemTraceSink() = default;

    /** Vertex Fetcher read through the Vertex Cache. */
    virtual void vertexFetch(Addr addr, u32 bytes) = 0;

    /** Polygon List Builder write to the Parameter Buffer (via L2). */
    virtual void parameterWrite(Addr addr, u32 bytes) = 0;

    /** Tile Scheduler read of a tile's primitives (via Tile Cache). */
    virtual void parameterRead(Addr addr, u32 bytes) = 0;

    /** Fragment-shader texel fetch (via a Texture Cache). */
    virtual void texelFetch(u32 textureCacheIndex, Addr addr) = 0;

    /** Color Buffer flush of one tile to the Frame Buffer. */
    virtual void colorFlush(Addr addr, u32 bytes) = 0;

    /** Frame Buffer read-back (blending against preserved contents). */
    virtual void colorRead(Addr addr, u32 bytes) = 0;
};

/** No-op sink for functional-only runs. */
class NullMemSink : public MemTraceSink
{
  public:
    void vertexFetch(Addr, u32) override {}
    void parameterWrite(Addr, u32) override {}
    void parameterRead(Addr, u32) override {}
    void texelFetch(u32, Addr) override {}
    void colorFlush(Addr, u32) override {}
    void colorRead(Addr, u32) override {}
};

} // namespace regpu

#endif // REGPU_GPU_MEMIFACE_HH
