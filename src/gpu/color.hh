/**
 * @file
 * Packed RGBA8 color type and blending, as produced by the Raster
 * Pipeline's Blend unit and stored in the Color Buffer / Frame Buffer.
 */

#ifndef REGPU_GPU_COLOR_HH
#define REGPU_GPU_COLOR_HH

#include <algorithm>

#include "common/types.hh"
#include "common/vecmath.hh"

namespace regpu
{

/** Packed 8-bit-per-channel RGBA color. */
struct Color
{
    u8 r = 0, g = 0, b = 0, a = 255;

    constexpr Color() = default;
    constexpr Color(u8 r_, u8 g_, u8 b_, u8 a_ = 255)
        : r(r_), g(g_), b(b_), a(a_) {}

    constexpr bool operator==(const Color &) const = default;

    /** Pack to a little-endian u32 (R in the low byte). */
    constexpr u32
    packed() const
    {
        return u32(r) | (u32(g) << 8) | (u32(b) << 16) | (u32(a) << 24);
    }

    /** Unpack from u32. */
    static constexpr Color
    fromPacked(u32 v)
    {
        return {u8(v), u8(v >> 8), u8(v >> 16), u8(v >> 24)};
    }

    /** Convert a float RGBA vector in [0,1] to packed 8-bit. */
    static Color
    fromVec4(Vec4 v)
    {
        auto q = [](float f) {
            return static_cast<u8>(clampf(f, 0.0f, 1.0f) * 255.0f + 0.5f);
        };
        return {q(v.x), q(v.y), q(v.z), q(v.w)};
    }

    /** Convert back to float RGBA in [0,1]. */
    Vec4
    toVec4() const
    {
        return {r / 255.0f, g / 255.0f, b / 255.0f, a / 255.0f};
    }
};

/** Blend modes supported by the Blend unit. */
enum class BlendMode
{
    Replace,    //!< dst = src
    AlphaBlend, //!< dst = src*a + dst*(1-a), standard transparency
    Additive,   //!< dst = min(src + dst, 255)
};

/** Apply the Blend unit function. */
inline Color
blend(BlendMode mode, Color src, Color dst)
{
    switch (mode) {
      case BlendMode::Replace:
        return src;
      case BlendMode::AlphaBlend: {
        // Integer blend with rounding, as fixed-function hardware does.
        u32 a = src.a;
        u32 ia = 255 - a;
        auto mix = [&](u32 s, u32 d) {
            return static_cast<u8>((s * a + d * ia + 127) / 255);
        };
        return {mix(src.r, dst.r), mix(src.g, dst.g), mix(src.b, dst.b),
                static_cast<u8>(std::max<u32>(src.a, dst.a))};
      }
      case BlendMode::Additive: {
        auto sat = [](u32 s, u32 d) {
            return static_cast<u8>(std::min<u32>(s + d, 255));
        };
        return {sat(src.r, dst.r), sat(src.g, dst.g), sat(src.b, dst.b),
                static_cast<u8>(std::max<u32>(src.a, dst.a))};
      }
    }
    return src;
}

} // namespace regpu

#endif // REGPU_GPU_COLOR_HH
