#include "gpu/shader.hh"

#include <cstring>

#include "common/logging.hh"

namespace regpu
{

u32
fragmentShaderInstructions(ShaderKind kind)
{
    switch (kind) {
      case ShaderKind::Flat:
        return 4;
      case ShaderKind::VertexColor:
        return 6;
      case ShaderKind::Textured:
        return 12;
      case ShaderKind::TexModulate:
        return 16;
      case ShaderKind::TexLit:
        return 22;
    }
    return 4;
}

u32
vertexShaderInstructions(ShaderKind kind)
{
    // 16 MADs for the MVP transform plus varying moves.
    switch (kind) {
      case ShaderKind::Flat:
        return 18;
      case ShaderKind::VertexColor:
        return 20;
      case ShaderKind::Textured:
        return 20;
      case ShaderKind::TexModulate:
        return 24;
      case ShaderKind::TexLit:
        return 30;
    }
    return 18;
}

bool
shaderSamplesTexture(ShaderKind kind)
{
    return kind == ShaderKind::Textured || kind == ShaderKind::TexModulate
        || kind == ShaderKind::TexLit;
}

std::size_t
UniformSet::serializeInto(std::span<u8> out) const
{
    // The driver only uploads the uniforms a drawcall actually sets.
    // The common command updates just the MVP (the paper's "average
    // command that updates constants modifies 16 values"); the extra
    // section is appended only when any non-default value is present.
    // The serialisation stays a pure function of the values, and the
    // two layouts can never collide: they have different lengths and
    // CRC-32 combining is length-aware.
    REGPU_ASSERT(out.size() >= maxSerializedBytes);
    u8 *p = out.data();
    std::size_t off = 0;
    auto put = [&](float f) {
        u32 bits;
        std::memcpy(&bits, &f, 4);
        p[off++] = static_cast<u8>(bits);
        p[off++] = static_cast<u8>(bits >> 8);
        p[off++] = static_cast<u8>(bits >> 16);
        p[off++] = static_cast<u8>(bits >> 24);
    };
    for (int c = 0; c < 4; c++)
        for (int r = 0; r < 4; r++)
            put(mvp.m[c][r]);
    const UniformSet defaults;
    const bool extras = !(tint == defaults.tint)
        || !(lightDir == defaults.lightDir)
        || uvOffsetS != defaults.uvOffsetS
        || uvOffsetT != defaults.uvOffsetT;
    if (extras) {
        put(tint.x); put(tint.y); put(tint.z); put(tint.w);
        put(lightDir.x); put(lightDir.y); put(lightDir.z);
        put(uvOffsetS); put(uvOffsetT);
    }
    return off;
}

std::vector<u8>
UniformSet::serialize() const
{
    std::vector<u8> out(maxSerializedBytes);
    out.resize(serializeInto(out));
    return out;
}

} // namespace regpu
