#include "gpu/shader.hh"

#include <cstring>

namespace regpu
{

u32
fragmentShaderInstructions(ShaderKind kind)
{
    switch (kind) {
      case ShaderKind::Flat:
        return 4;
      case ShaderKind::VertexColor:
        return 6;
      case ShaderKind::Textured:
        return 12;
      case ShaderKind::TexModulate:
        return 16;
      case ShaderKind::TexLit:
        return 22;
    }
    return 4;
}

u32
vertexShaderInstructions(ShaderKind kind)
{
    // 16 MADs for the MVP transform plus varying moves.
    switch (kind) {
      case ShaderKind::Flat:
        return 18;
      case ShaderKind::VertexColor:
        return 20;
      case ShaderKind::Textured:
        return 20;
      case ShaderKind::TexModulate:
        return 24;
      case ShaderKind::TexLit:
        return 30;
    }
    return 18;
}

bool
shaderSamplesTexture(ShaderKind kind)
{
    return kind == ShaderKind::Textured || kind == ShaderKind::TexModulate
        || kind == ShaderKind::TexLit;
}

std::vector<u8>
UniformSet::serialize() const
{
    // The driver only uploads the uniforms a drawcall actually sets.
    // The common command updates just the MVP (the paper's "average
    // command that updates constants modifies 16 values"); the extra
    // section is appended only when any non-default value is present.
    // The serialisation stays a pure function of the values, and the
    // two layouts can never collide: they have different lengths and
    // CRC-32 combining is length-aware.
    std::vector<u8> out;
    out.reserve(valueCount * 4);
    auto put = [&out](float f) {
        u32 bits;
        std::memcpy(&bits, &f, 4);
        out.push_back(static_cast<u8>(bits));
        out.push_back(static_cast<u8>(bits >> 8));
        out.push_back(static_cast<u8>(bits >> 16));
        out.push_back(static_cast<u8>(bits >> 24));
    };
    for (int c = 0; c < 4; c++)
        for (int r = 0; r < 4; r++)
            put(mvp.m[c][r]);
    const UniformSet defaults;
    const bool extras = !(tint == defaults.tint)
        || !(lightDir == defaults.lightDir)
        || uvOffsetS != defaults.uvOffsetS
        || uvOffsetT != defaults.uvOffsetT;
    if (extras) {
        put(tint.x); put(tint.y); put(tint.z); put(tint.w);
        put(lightDir.x); put(lightDir.y); put(lightDir.z);
        put(uvOffsetS); put(uvOffsetT);
    }
    return out;
}

} // namespace regpu
