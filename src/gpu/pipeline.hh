/**
 * @file
 * Top-level per-frame orchestration of the TBR graphics pipeline
 * (Fig. 4 of the paper), with the hook points Rendering Elimination,
 * Transaction Elimination and Fragment Memoization attach to.
 */

#ifndef REGPU_GPU_PIPELINE_HH
#define REGPU_GPU_PIPELINE_HH

#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "gpu/binning.hh"
#include "gpu/framebuffer.hh"
#include "gpu/geometry.hh"
#include "gpu/raster.hh"

namespace regpu
{

class MemTraceSink;

/**
 * Hook points a redundancy-elimination technique implements. Default
 * implementations reproduce the baseline pipeline (render everything,
 * flush everything).
 */
class PipelineHooks
{
  public:
    virtual ~PipelineHooks() = default;

    /** Frame is starting. @param reSafe false when the driver saw
     *  global-state uploads and techniques must disable themselves. */
    virtual void frameBegin(u64 /*frameIndex*/, bool /*reSafe*/) {}

    /** The Command Processor resolved a drawcall's constants. */
    virtual void
    onDrawcallConstants(u32 /*drawIndex*/, const DrawCall & /*draw*/)
    {}

    /** The Polygon List Builder sorted one primitive. */
    virtual void
    onPrimitiveBinned(const Primitive & /*prim*/, const DrawCall & /*draw*/,
                      const std::vector<TileId> & /*tiles*/)
    {}

    /** Geometry done; Raster Pipeline about to start visiting tiles. */
    virtual void geometryDone() {}

    /** Should this tile's Raster Pipeline execution run at all?
     *  (Rendering Elimination answers false for redundant tiles.) */
    virtual bool shouldRenderTile(TileId /*tile*/) { return true; }

    /** Tile rendered; should its colors be flushed to the Frame
     *  Buffer? (Transaction Elimination answers false on signature
     *  match.) */
    virtual bool
    shouldFlushTile(TileId /*tile*/, const std::vector<Color> & /*colors*/)
    {
        return true;
    }

    /** Frame fully processed (before buffer swap). */
    virtual void frameEnd() {}

    /** Memoization hook, if the technique provides one. */
    virtual FragmentMemoClient *memoClient() { return nullptr; }

    // ---- Tile worker pool contract (docs/ARCHITECTURE.md) --------------
    //
    // When tileWorkersSafe() returns true, the pipeline splits the
    // raster loop into a parallel phase-1 (per tile, on pool workers)
    // and a serial in-tile-order merge, and calls the three hooks
    // below instead of weaving everything through shouldRenderTile /
    // shouldFlushTile alone. The split is used for EVERY --tile-jobs
    // value including 1, so a technique's output cannot depend on the
    // job count. Techniques that keep mutable per-tile state across
    // renderTile (Fragment Memoization's LUT) or that cannot separate
    // a pure query from their counted decision stay on the default
    // (false) and run the legacy serial loop untouched.

    /** Opt into the phase-1/merge split. Implementations returning
     *  true guarantee: queryRenderTile is pure and thread-safe,
     *  prepareFlushTile is pure and thread-safe, and memoClient() is
     *  nullptr. */
    virtual bool tileWorkersSafe() const { return false; }

    /**
     * Phase-1 prediction of shouldRenderTile: same answer, no side
     * effects (no stats, no signature-buffer access counting), safe to
     * call concurrently for distinct tiles. The merge phase asserts it
     * agrees with shouldRenderTile for every tile.
     */
    virtual bool queryRenderTile(TileId /*tile*/) { return true; }

    /**
     * Phase-1 half of the flush decision: any pure per-tile
     * computation over the rendered colors (Transaction Elimination
     * hashes them here, on the worker that rendered them). The value
     * is handed back verbatim to shouldFlushTilePre in the merge
     * phase. Pure and thread-safe for distinct tiles.
     */
    virtual u32
    prepareFlushTile(TileId /*tile*/, const std::vector<Color> & /*colors*/)
    {
        return 0;
    }

    /**
     * Merge-phase flush decision, given prepareFlushTile's result:
     * this is where counted buffer accesses, stats and energy charges
     * belong. Default forwards to shouldFlushTile so techniques
     * without a precomputable part need not know the split exists.
     */
    virtual bool
    shouldFlushTilePre(TileId tile, const std::vector<Color> &colors,
                       u32 /*prepared*/)
    {
        return shouldFlushTile(tile, colors);
    }
};

/** Outcome of one tile in one frame (classification + accounting). */
struct TileOutcome
{
    bool rendered = true;       //!< raster pipeline executed
    bool flushed = true;        //!< colors written to the Frame Buffer
    bool equalColors = false;   //!< ground truth: same colors as the
                                //!< comparison frame in the Back Buffer
    bool equalInputs = false;   //!< signature matched (RE's view)
    TileRenderStats stats;      //!< zeros when skipped
};

/** Per-frame simulation products. */
struct FrameResult
{
    u64 frameIndex = 0;
    BinnedFrame binned;
    std::vector<TileOutcome> tiles;
    u64 verticesShaded = 0;
    u64 trianglesAssembled = 0;
    bool techniqueActive = true;  //!< false when RE was disabled
};

/**
 * The full GPU: owns the Frame Buffer and runs frames through
 * geometry, binning and per-tile rasterisation, consulting the
 * attached hooks.
 */
class GraphicsPipeline
{
  public:
    GraphicsPipeline(const GpuConfig &config, StatRegistry &stats,
                     MemTraceSink *mem,
                     const std::vector<Texture> &textures);

    /** Attach technique hooks (nullptr = baseline). */
    void setHooks(PipelineHooks *hooks_) { hooks = hooks_; }

    /**
     * Intra-frame tile worker count (default 1 = serial). Purely an
     * execution knob: output is bit-identical for every value, which
     * is why it lives here and not in GpuConfig. Takes effect only
     * for hooks that declare tileWorkersSafe() (baseline included);
     * others keep the legacy serial loop.
     */
    void setTileJobs(unsigned jobs);
    unsigned tileJobCount() const { return tileJobs; }

    /**
     * Render one frame.
     * @param commands  the frame's drawcalls
     * @param groundTruth when true, skipped tiles are shadow-rendered
     *        (no cost charged) so TileOutcome::equalColors is exact
     *        for every tile - needed by Fig. 15a and correctness tests
     */
    FrameResult renderFrame(const FrameCommands &commands,
                            bool groundTruth = true);

    FrameBuffer &frameBuffer() { return fb; }
    const GpuConfig &gpuConfig() const { return config; }

  private:
    const GpuConfig &config;
    StatRegistry &stats;
    MemTraceSink *mem;
    const std::vector<Texture> &textures;
    PipelineHooks *hooks = nullptr;

    GeometryPipeline geometry;
    PolygonListBuilder plb;
    TileRenderer renderer;
    FrameBuffer fb;
    u64 frameCounter = 0;
    unsigned tileJobs = 1;
};

} // namespace regpu

#endif // REGPU_GPU_PIPELINE_HH
