/**
 * @file
 * Screen-space primitives produced by the Geometry Pipeline and
 * consumed by the Tiling Engine and Raster Pipeline.
 */

#ifndef REGPU_GPU_PRIMITIVE_HH
#define REGPU_GPU_PRIMITIVE_HH

#include <algorithm>
#include <vector>

#include "common/types.hh"
#include "common/vecmath.hh"

namespace regpu
{

/** One shaded, viewport-transformed vertex of a primitive. */
struct ShadedVertex
{
    float x = 0;        //!< window-space x (pixels)
    float y = 0;        //!< window-space y (pixels)
    float z = 0;        //!< depth in [0,1]
    float invW = 1;     //!< 1/w_clip for perspective-correct interp
    Vec4 color{1, 1, 1, 1};
    Vec2 texcoord;
    float diffuse = 1;  //!< precomputed N.L term (TexLit)
};

/**
 * An assembled triangle in window space, tagged with the drawcall it
 * came from so the Raster Pipeline can recover pipeline state.
 */
struct Primitive
{
    ShadedVertex v[3];
    u32 drawIndex = 0;      //!< index into FrameCommands::draws
    u32 firstVertex = 0;    //!< first input-vertex index (signature path)

    /** Conservative window-space bounding box. */
    void
    bounds(float &minX, float &minY, float &maxX, float &maxY) const
    {
        minX = std::min({v[0].x, v[1].x, v[2].x});
        minY = std::min({v[0].y, v[1].y, v[2].y});
        maxX = std::max({v[0].x, v[1].x, v[2].x});
        maxY = std::max({v[0].y, v[1].y, v[2].y});
    }

    /** Twice the signed area (negative: clockwise in our convention). */
    float
    signedArea2() const
    {
        return (v[1].x - v[0].x) * (v[2].y - v[0].y)
             - (v[2].x - v[0].x) * (v[1].y - v[0].y);
    }
};

} // namespace regpu

#endif // REGPU_GPU_PRIMITIVE_HH
