#include "gpu/vertex.hh"

#include "common/logging.hh"

namespace regpu
{

namespace
{

/** Append a float's bits to @p out at @p off, little-endian. */
inline void
putFloat(u8 *out, std::size_t &off, float f)
{
    u32 bits;
    std::memcpy(&bits, &f, 4);
    out[off++] = static_cast<u8>(bits);
    out[off++] = static_cast<u8>(bits >> 8);
    out[off++] = static_cast<u8>(bits >> 16);
    out[off++] = static_cast<u8>(bits >> 24);
}

inline void
putVec4(u8 *out, std::size_t &off, Vec4 v)
{
    putFloat(out, off, v.x);
    putFloat(out, off, v.y);
    putFloat(out, off, v.z);
    putFloat(out, off, v.w);
}

} // namespace

std::size_t
serializeTriangleAttributesInto(const DrawCall &draw, u32 firstVertexIndex,
                                std::span<u8> out)
{
    REGPU_ASSERT(firstVertexIndex + 3 <= draw.vertices.size());
    REGPU_ASSERT(out.size() >= maxTriangleAttributeBytes);
    u8 *p = out.data();
    std::size_t off = 0;
    for (u32 v = 0; v < 3; v++) {
        const Vertex &vert = draw.vertices[firstVertexIndex + v];
        putVec4(p, off, Vec4(vert.position, 1.0f));
        if (draw.layout.hasColor)
            putVec4(p, off, vert.color);
        if (draw.layout.hasTexcoord)
            putVec4(p, off, Vec4(vert.texcoord.x, vert.texcoord.y, 0, 0));
        if (draw.layout.hasNormal)
            putVec4(p, off, Vec4(vert.normal, 0.0f));
    }
    return off;
}

std::vector<u8>
serializeTriangleAttributes(const DrawCall &draw, u32 firstVertexIndex)
{
    std::vector<u8> out(maxTriangleAttributeBytes);
    out.resize(serializeTriangleAttributesInto(draw, firstVertexIndex,
                                               out));
    return out;
}

} // namespace regpu
