#include "gpu/vertex.hh"

#include "common/logging.hh"

namespace regpu
{

namespace
{

void
putFloat(std::vector<u8> &out, float f)
{
    u32 bits;
    std::memcpy(&bits, &f, 4);
    out.push_back(static_cast<u8>(bits));
    out.push_back(static_cast<u8>(bits >> 8));
    out.push_back(static_cast<u8>(bits >> 16));
    out.push_back(static_cast<u8>(bits >> 24));
}

void
putVec4(std::vector<u8> &out, Vec4 v)
{
    putFloat(out, v.x);
    putFloat(out, v.y);
    putFloat(out, v.z);
    putFloat(out, v.w);
}

} // namespace

std::vector<u8>
serializeTriangleAttributes(const DrawCall &draw, u32 firstVertexIndex)
{
    REGPU_ASSERT(firstVertexIndex + 3 <= draw.vertices.size());
    std::vector<u8> out;
    out.reserve(draw.layout.attributeCount() * 3 * 16);
    for (u32 v = 0; v < 3; v++) {
        const Vertex &vert = draw.vertices[firstVertexIndex + v];
        putVec4(out, Vec4(vert.position, 1.0f));
        if (draw.layout.hasColor)
            putVec4(out, vert.color);
        if (draw.layout.hasTexcoord)
            putVec4(out, Vec4(vert.texcoord.x, vert.texcoord.y, 0, 0));
        if (draw.layout.hasNormal)
            putVec4(out, Vec4(vert.normal, 0.0f));
    }
    return out;
}

} // namespace regpu
