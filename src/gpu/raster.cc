#include "gpu/raster.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.hh"
#include "crc/crc32.hh"
#include "gpu/memiface.hh"

namespace regpu
{

namespace
{

/** Edge function: twice the signed area of (a, b, p). */
inline float
edge(float ax, float ay, float bx, float by, float px, float py)
{
    return (bx - ax) * (py - ay) - (by - ay) * (px - ax);
}

} // namespace

u32
TileRenderer::fragmentSignature(const DrawCall &draw, Vec4 color,
                                Vec2 texcoord, float diffuse)
{
    // Hash the exact bits of the inputs this shader consumes: the
    // pipeline state, the uniforms it reads and the varyings feeding
    // it. Frame-to-frame redundant fragments (same primitive, same
    // pixel, nothing moved) interpolate to bit-identical varyings, so
    // exact hashing finds the reuse the paper targets while never
    // reusing an only-approximately-equal color. Varyings the shader
    // ignores are excluded: a flat-shaded fragment's color does not
    // depend on them, so including them would only destroy reuse.
    // Streamed through a fixed stack buffer: the whole serialisation
    // is at most 4 + 16 + 16 + 12 + 4 bytes, and one crc pass over a
    // contiguous buffer keeps the slice-by-8 path hot.
    u8 buf[4 + 4 * 4 + 4 * 4 + 2 * 4 + 4 + 4];
    u32 off = 0;
    auto put32 = [&](u32 v) {
        std::memcpy(buf + off, &v, 4);
        off += 4;
    };
    auto putf = [&](float f) {
        u32 bits;
        std::memcpy(&bits, &f, 4);
        put32(bits);
    };
    const ShaderKind kind = draw.state.shader;
    put32(static_cast<u32>(kind) |
          (static_cast<u32>(draw.state.blendMode) << 8));
    const Vec4 tint = draw.state.uniforms.tint;
    putf(tint.x);
    putf(tint.y);
    putf(tint.z);
    putf(tint.w);
    if (kind == ShaderKind::VertexColor || kind == ShaderKind::TexModulate) {
        putf(color.x);
        putf(color.y);
        putf(color.z);
        putf(color.w);
    }
    if (shaderSamplesTexture(kind)) {
        putf(texcoord.x);
        putf(texcoord.y);
        put32(static_cast<u32>(draw.state.textureId + 1));
    }
    if (kind == ShaderKind::TexLit)
        putf(diffuse);
    return crc32Tabular({buf, off});
}

TileRenderStats
TileRenderer::renderTile(TileId tile, const BinnedFrame &frame,
                         const std::vector<DrawCall> &draws,
                         Color clearColor, std::vector<Color> &outColors,
                         bool chargeCost)
{
    TileRenderStats ts;
    const u32 tw = config.tileWidth;
    const u32 th = config.tileHeight;
    const u32 tx0 = (tile % config.tilesX()) * tw;
    const u32 ty0 = (tile / config.tilesX()) * th;

    // On-chip Color and Depth buffers, cleared at tile start.
    outColors.assign(static_cast<std::size_t>(tw) * th, clearColor);
    std::vector<float> depth(static_cast<std::size_t>(tw) * th, 1.0f);

    if (memo)
        memo->tileBegin(tile);

    std::vector<Addr> touchedTexels;

    for (const PrimRef &ref : frame.tileLists[tile]) {
        const Primitive &prim = frame.primitives[ref.primIndex];
        const DrawCall &draw = draws[prim.drawIndex];
        const Texture *tex = nullptr;
        if (shaderSamplesTexture(draw.state.shader)
            && draw.state.textureId >= 0) {
            REGPU_ASSERT(static_cast<u32>(draw.state.textureId)
                         < textures.size(), "texture id out of range");
            tex = &textures[draw.state.textureId];
        }

        // Tile Scheduler: fetch the primitive's attribute data from
        // the Parameter Buffer through the Tile Cache.
        ts.primitivesFetched++;
        ts.parameterBytesRead += ref.pbBytes;
        if (chargeCost && mem)
            mem->parameterRead(ref.pbAddr, ref.pbBytes);

        // Rasterizer setup: edge functions from the vertices.
        const ShadedVertex &a = prim.v[0];
        const ShadedVertex &b = prim.v[1];
        const ShadedVertex &c = prim.v[2];
        float area2 = prim.signedArea2();
        if (area2 == 0)
            continue;
        float invArea = 1.0f / area2;

        // Restrict to the intersection of the bbox and this tile.
        float minX, minY, maxX, maxY;
        prim.bounds(minX, minY, maxX, maxY);
        u32 px0 = std::max<i32>(tx0, static_cast<i32>(std::floor(minX)));
        u32 py0 = std::max<i32>(ty0, static_cast<i32>(std::floor(minY)));
        u32 px1 = std::min<i32>(tx0 + tw - 1,
                                static_cast<i32>(std::ceil(maxX)));
        u32 py1 = std::min<i32>(ty0 + th - 1,
                                static_cast<i32>(std::ceil(maxY)));

        for (u32 py = py0; py <= py1; py++) {
            for (u32 px = px0; px <= px1; px++) {
                // Sample at the pixel centre.
                float sx = px + 0.5f;
                float sy = py + 0.5f;
                float w0 = edge(b.x, b.y, c.x, c.y, sx, sy) * invArea;
                float w1 = edge(c.x, c.y, a.x, a.y, sx, sy) * invArea;
                float w2 = 1.0f - w0 - w1;
                // Top-left-agnostic inclusive test: consistent for
                // shared edges because weights are exact complements.
                if (w0 < 0 || w1 < 0 || w2 < 0)
                    continue;

                ts.fragmentsGenerated++;

                // Interpolate depth (affine: z is already projected).
                float z = w0 * a.z + w1 * b.z + w2 * c.z;
                const std::size_t idx =
                    static_cast<std::size_t>(py - ty0) * tw + (px - tx0);

                // Early Depth Test.
                if (draw.state.depthTest && z > depth[idx]) {
                    ts.fragmentsEarlyZKilled++;
                    continue;
                }
                if (draw.state.depthTest && draw.state.depthWrite)
                    depth[idx] = z;

                // Perspective-correct varying interpolation.
                float iw = w0 * a.invW + w1 * b.invW + w2 * c.invW;
                float pc0 = w0 * a.invW / iw;
                float pc1 = w1 * b.invW / iw;
                float pc2 = 1.0f - pc0 - pc1;
                Vec4 vcolor = a.color * pc0 + b.color * pc1
                    + c.color * pc2;
                Vec2 uv = a.texcoord * pc0 + b.texcoord * pc1
                    + c.texcoord * pc2;
                float diffuse = a.diffuse * pc0 + b.diffuse * pc1
                    + c.diffuse * pc2;

                // Fragment Memoization hook: reuse before shading.
                Color src;
                u32 sig = 0;
                if (memo) {
                    sig = fragmentSignature(draw, vcolor, uv, diffuse);
                    Color reused;
                    if (memo->lookup(sig, reused)) {
                        ts.fragmentsMemoReused++;
                        src = reused;
                        outColors[idx] =
                            blend(draw.state.blendMode, src,
                                  outColors[idx]);
                        ts.blendOps++;
                        continue;
                    }
                }

                // Fragment Processor: execute the shader.
                const UniformSet &u = draw.state.uniforms;
                Vec4 fcolor;
                switch (draw.state.shader) {
                  case ShaderKind::Flat:
                    fcolor = u.tint;
                    break;
                  case ShaderKind::VertexColor:
                    fcolor = {vcolor.x * u.tint.x, vcolor.y * u.tint.y,
                              vcolor.z * u.tint.z, vcolor.w * u.tint.w};
                    break;
                  case ShaderKind::Textured:
                  case ShaderKind::TexModulate:
                  case ShaderKind::TexLit: {
                    touchedTexels.clear();
                    Color texel = tex
                        ? Sampler::sample(*tex, uv.x, uv.y,
                                          Sampler::Filter::Bilinear,
                                          &touchedTexels)
                        : Color(255, 0, 255);
                    if (chargeCost && mem) {
                        // Round-robin texel streams over the 4 texture
                        // caches by fragment-quad position.
                        u32 cacheIdx = ((px >> 1) + (py >> 1))
                            % config.numTextureCaches;
                        for (Addr ta : touchedTexels)
                            mem->texelFetch(cacheIdx, ta);
                    }
                    ts.texelFetches +=
                        static_cast<u32>(touchedTexels.size());
                    Vec4 t4 = texel.toVec4();
                    if (draw.state.shader == ShaderKind::Textured) {
                        fcolor = {t4.x * u.tint.x, t4.y * u.tint.y,
                                  t4.z * u.tint.z, t4.w * u.tint.w};
                    } else if (draw.state.shader
                               == ShaderKind::TexModulate) {
                        fcolor = {t4.x * vcolor.x * u.tint.x,
                                  t4.y * vcolor.y * u.tint.y,
                                  t4.z * vcolor.z * u.tint.z,
                                  t4.w * vcolor.w * u.tint.w};
                    } else {
                        fcolor = {t4.x * diffuse * u.tint.x,
                                  t4.y * diffuse * u.tint.y,
                                  t4.z * diffuse * u.tint.z,
                                  t4.w * u.tint.w};
                    }
                    break;
                  }
                }
                src = Color::fromVec4(fcolor);
                ts.fragmentsShaded++;
                ts.shaderInstructions +=
                    fragmentShaderInstructions(draw.state.shader);

                if (memo)
                    memo->insert(sig, src);

                // Blend unit.
                outColors[idx] =
                    blend(draw.state.blendMode, src, outColors[idx]);
                ts.blendOps++;
            }
        }
    }

    if (chargeCost) {
        stats.inc("raster.fragmentsGenerated", ts.fragmentsGenerated);
        stats.inc("raster.fragmentsEarlyZKilled", ts.fragmentsEarlyZKilled);
        stats.inc("raster.fragmentsShaded", ts.fragmentsShaded);
        stats.inc("raster.fragmentsMemoReused", ts.fragmentsMemoReused);
        stats.inc("raster.shaderInstructions", ts.shaderInstructions);
        stats.inc("raster.texelFetches", ts.texelFetches);
        stats.inc("raster.blendOps", ts.blendOps);
        stats.inc("raster.primitivesFetched", ts.primitivesFetched);
    }
    return ts;
}

} // namespace regpu
