/**
 * @file
 * Shader programs and scene constants ("uniforms").
 *
 * The pipeline-state model follows the paper's OpenGL ES framing: the
 * application binds a shader program and a set of scene constants, then
 * issues drawcalls. Shaders here are parameterised fixed programs (the
 * benchmark suite's games use small ES 1.x/2.0-class shaders); each
 * carries an instruction cost used by the timing model.
 */

#ifndef REGPU_GPU_SHADER_HH
#define REGPU_GPU_SHADER_HH

#include <span>
#include <vector>

#include "common/types.hh"
#include "common/vecmath.hh"
#include "gpu/color.hh"

namespace regpu
{

/** Fragment shader kinds available to workloads. */
enum class ShaderKind : u8
{
    Flat,          //!< uniform tint color only
    VertexColor,   //!< interpolated vertex color
    Textured,      //!< texture sample
    TexModulate,   //!< texture sample * vertex color * tint
    TexLit,        //!< texture * simple N.L diffuse lighting
};

/** Number of fragment-shader instructions per kind (timing model). */
u32 fragmentShaderInstructions(ShaderKind kind);

/** Vertex-shader instruction count (MVP transform + varying moves). */
u32 vertexShaderInstructions(ShaderKind kind);

/** Whether the kind samples a texture. */
bool shaderSamplesTexture(ShaderKind kind);

/**
 * Scene constants for one drawcall: the data the Command Processor
 * sends to the Signature Unit when the application updates state.
 *
 * Serialisation is stable and byte-exact: two UniformSets serialise
 * identically iff all their values are bit-identical, which is the
 * property the tile-input signature relies on.
 */
struct UniformSet
{
    Mat4 mvp = Mat4::identity();  //!< model-view-projection
    Vec4 tint{1, 1, 1, 1};        //!< global modulation color
    Vec3 lightDir{0, 0, 1};       //!< directional light (TexLit)
    float uvOffsetS = 0;          //!< texture-coordinate scroll
    float uvOffsetT = 0;

    bool operator==(const UniformSet &) const = default;

    /** Serialise to the byte stream the Signature Unit signs. */
    std::vector<u8> serialize() const;

    /**
     * Allocation-free variant: serialise into @p out (at least
     * maxSerializedBytes long, asserted) and return the number of
     * bytes written. Byte-identical to serialize().
     */
    std::size_t serializeInto(std::span<u8> out) const;

    /** Number of 4-byte values (the paper's "average command updates
     *  16 values" corresponds to one Mat4). */
    static constexpr u32 valueCount = 16 + 4 + 3 + 2;

    /** Upper bound of the serialisation: every value present. Sizes
     *  fixed stack buffers on the per-drawcall signature hot path. */
    static constexpr std::size_t maxSerializedBytes = valueCount * 4;
};

/**
 * Pipeline state bound at drawcall time.
 */
struct PipelineState
{
    ShaderKind shader = ShaderKind::Flat;
    i32 textureId = -1;               //!< -1: no texture bound
    BlendMode blendMode = BlendMode::Replace;
    bool depthTest = true;
    bool depthWrite = true;
    UniformSet uniforms;
};

} // namespace regpu

#endif // REGPU_GPU_SHADER_HH
