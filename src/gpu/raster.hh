/**
 * @file
 * The Raster Pipeline: Tile Scheduler fetch, rasterization, Early
 * Depth Test, Fragment Processors, Blending and the on-chip Color /
 * Depth buffers, operating one tile at a time.
 */

#ifndef REGPU_GPU_RASTER_HH
#define REGPU_GPU_RASTER_HH

#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "gpu/binning.hh"
#include "gpu/color.hh"
#include "gpu/texture.hh"
#include "gpu/vertex.hh"

namespace regpu
{

class MemTraceSink;

/**
 * Hook through which Fragment Memoization intercepts fragment shading.
 * Returns true (and fills @p reused) when the fragment's color can be
 * reused from the memoization LUT, bypassing shader execution and
 * texture fetches.
 */
class FragmentMemoClient
{
  public:
    virtual ~FragmentMemoClient() = default;

    /**
     * The Raster Pipeline is about to process @p tile. PFR keeps the
     * two in-flight frames tile-synchronised, so the memoization LUT's
     * live contents at this point are the paired frame's fragments of
     * the same tile; implementations reload their LUT model here.
     */
    virtual void tileBegin(TileId /*tile*/) {}

    /**
     * @param signature 32-bit hash of the fragment's shader inputs
     *                  (screen coordinates excluded, paper §V-A)
     * @param reused    filled with the memoized color on a hit
     * @return true on LUT hit
     */
    virtual bool lookup(u32 signature, Color &reused) = 0;

    /** Record a freshly computed fragment for later reuse. */
    virtual void insert(u32 signature, Color color) = 0;
};

/** Per-tile rendering statistics (feed the timing model). */
struct TileRenderStats
{
    u32 primitivesFetched = 0;
    u32 fragmentsGenerated = 0;   //!< rasterised, pre-depth-test
    u32 fragmentsEarlyZKilled = 0;
    u32 fragmentsShaded = 0;      //!< executed the fragment shader
    u32 fragmentsMemoReused = 0;  //!< served by the memoization LUT
    u64 shaderInstructions = 0;
    u32 texelFetches = 0;
    u32 blendOps = 0;
    u64 parameterBytesRead = 0;
};

/**
 * Renders one tile: the functional model of everything between the
 * Tile Scheduler and the Tile Flush.
 */
class TileRenderer
{
  public:
    TileRenderer(const GpuConfig &_config, StatRegistry &_stats,
                 MemTraceSink *_mem,
                 const std::vector<Texture> &_textures)
        : config(_config), stats(_stats), mem(_mem), textures(_textures)
    {}

    /** Optional memoization hook (Fragment Memoization technique). */
    void setMemoClient(FragmentMemoClient *client) { memo = client; }

    /**
     * Render all primitives binned to @p tile.
     *
     * @param tile       tile id
     * @param frame      binned frame (primitive data)
     * @param draws      the frame's drawcalls (pipeline state lookup)
     * @param clearColor tile background
     * @param outColors  tileWidth*tileHeight colors, row-major
     * @param chargeCost when false the render is a "shadow" pass used
     *                   only for ground-truth statistics: no memory
     *                   traffic or stats are recorded
     * @return per-tile statistics
     */
    TileRenderStats renderTile(TileId tile, const BinnedFrame &frame,
                               const std::vector<DrawCall> &draws,
                               Color clearColor,
                               std::vector<Color> &outColors,
                               bool chargeCost = true);

    /**
     * Compute the memoization signature of a fragment: hash of shader
     * kind, uniforms, texture id and quantised varyings - but not the
     * screen coordinates (paper §V-A).
     */
    static u32 fragmentSignature(const DrawCall &draw, Vec4 color,
                                 Vec2 texcoord, float diffuse);

  private:
    const GpuConfig &config;
    StatRegistry &stats;
    MemTraceSink *mem;
    const std::vector<Texture> &textures;
    FragmentMemoClient *memo = nullptr;
};

} // namespace regpu

#endif // REGPU_GPU_RASTER_HH
