/**
 * @file
 * Intra-frame tile worker pool: runs per-tile phase-1 work (raster +
 * shade + signature, side-effect-free against shared state) on worker
 * threads, while the calling thread folds results back in strict
 * ascending tile order — the same bit-identical-for-any-job-count
 * merge discipline ParallelRunner established for sweep cells, one
 * level down (docs/ARCHITECTURE.md spells out the model).
 *
 * The split the pipeline feeds this with:
 *
 *  - phase1(tile): touches only that tile's private TileTask slot plus
 *    state that is read-only during the raster phase (binned frame,
 *    draws, textures, signature buffers) or per-tile-disjoint (the
 *    Frame Buffer's tile regions). Any claim order is sound.
 *  - merge(tile): everything order-sensitive — MemSystem replay,
 *    StatRegistry folds, signature-buffer writes, Frame Buffer tile
 *    flushes — executed by the caller, eagerly, for tile 0..N-1 as
 *    each phase-1 result becomes ready.
 *
 * With jobs <= 1 no threads are spawned and the pair is executed
 * inline per tile, which is *definitionally* the serial pipeline; the
 * parallel schedule is equivalent because phase-1 writes are disjoint
 * and merge order is fixed.
 */

#ifndef REGPU_GPU_TILE_POOL_HH
#define REGPU_GPU_TILE_POOL_HH

#include <functional>
#include <vector>

#include "common/types.hh"
#include "gpu/memiface.hh"

namespace regpu
{

/**
 * MemTraceSink that records every access instead of forwarding it, so
 * a worker can render a tile without touching the shared (cache-state-
 * order-sensitive) MemSystem; the merge phase then replays the events
 * into the real sink in exact renderTile emission order. Reused across
 * tiles via clear() (capacity is retained).
 */
class MemEventRecorder : public MemTraceSink
{
  public:
    void vertexFetch(Addr addr, u32 bytes) override
    {
        events.push_back({Kind::VertexFetch, addr, bytes});
    }
    void parameterWrite(Addr addr, u32 bytes) override
    {
        events.push_back({Kind::ParameterWrite, addr, bytes});
    }
    void parameterRead(Addr addr, u32 bytes) override
    {
        events.push_back({Kind::ParameterRead, addr, bytes});
    }
    void texelFetch(u32 textureCacheIndex, Addr addr) override
    {
        events.push_back({Kind::TexelFetch, addr, textureCacheIndex});
    }
    void colorFlush(Addr addr, u32 bytes) override
    {
        events.push_back({Kind::ColorFlush, addr, bytes});
    }
    void colorRead(Addr addr, u32 bytes) override
    {
        events.push_back({Kind::ColorRead, addr, bytes});
    }

    /** Forward every recorded access to @p sink, in recorded order. */
    void
    replay(MemTraceSink &sink) const
    {
        for (const Event &e : events) {
            switch (e.kind) {
              case Kind::VertexFetch:
                sink.vertexFetch(e.addr, e.arg);
                break;
              case Kind::ParameterWrite:
                sink.parameterWrite(e.addr, e.arg);
                break;
              case Kind::ParameterRead:
                sink.parameterRead(e.addr, e.arg);
                break;
              case Kind::TexelFetch:
                sink.texelFetch(e.arg, e.addr);
                break;
              case Kind::ColorFlush:
                sink.colorFlush(e.addr, e.arg);
                break;
              case Kind::ColorRead:
                sink.colorRead(e.addr, e.arg);
                break;
            }
        }
    }

    void clear() { events.clear(); }
    std::size_t size() const { return events.size(); }

  private:
    enum class Kind : u8
    {
        VertexFetch,
        ParameterWrite,
        ParameterRead,
        TexelFetch,
        ColorFlush,
        ColorRead,
    };
    struct Event
    {
        Kind kind;
        Addr addr;
        u32 arg; //!< bytes, or the texture-cache index for TexelFetch
    };
    std::vector<Event> events;
};

/**
 * Execute @p phase1 for every tile in [0, numTiles) on up to @p jobs
 * worker threads (any completion order), and @p merge on the calling
 * thread in strict ascending tile order; merge(t) runs only after
 * phase1(t) returned, eagerly as results arrive (the caller never
 * waits for the whole frame before folding).
 *
 * jobs <= 1 executes both inline per tile with no thread spawned.
 * Worker exceptions are captured first-wins and rethrown on the
 * calling thread after all workers joined. Each worker's frame
 * participation is wrapped in an ungated "gpu/tileWorker" ObsScope so
 * Perfetto timelines show pool occupancy.
 */
void runTilesOrdered(u32 numTiles, unsigned jobs,
                     const std::function<void(TileId)> &phase1,
                     const std::function<void(TileId)> &merge);

} // namespace regpu

#endif // REGPU_GPU_TILE_POOL_HH
