#include "gpu/pipeline.hh"

#include <optional>
#include <thread>

#include "common/logging.hh"
#include "gpu/memiface.hh"
#include "gpu/tile_pool.hh"
#include "obs/obs.hh"

namespace regpu
{

GraphicsPipeline::GraphicsPipeline(const GpuConfig &_config,
                                   StatRegistry &_stats, MemTraceSink *_mem,
                                   const std::vector<Texture> &_textures)
    : config(_config), stats(_stats), mem(_mem), textures(_textures),
      geometry(_config, _stats, _mem), plb(_config, _stats, _mem),
      renderer(_config, _stats, _mem, _textures), fb(_config)
{
}

void
GraphicsPipeline::setTileJobs(unsigned jobs)
{
    REGPU_ASSERT(jobs >= 1, "tile-jobs must be >= 1 (CLI parsers "
                            "reject 0 before reaching here)");
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw && jobs > hw)
        warnOnce("--tile-jobs ", jobs, " exceeds hardware concurrency (",
                 hw, "); output is identical but the extra workers "
                 "only add scheduling overhead");
    tileJobs = jobs;
}

FrameResult
GraphicsPipeline::renderFrame(const FrameCommands &commands,
                              bool groundTruth)
{
    FrameResult result;
    result.frameIndex = frameCounter;

    const bool reSafe = !commands.globalStateChanged;
    if (hooks)
        hooks->frameBegin(frameCounter, reSafe);
    renderer.setMemoClient(hooks ? hooks->memoClient() : nullptr);

    // ---- Geometry Pipeline + Tiling Engine -----------------------------
    plb.beginFrame(result.binned);
    if (hooks) {
        plb.setObserver([this](const Primitive &p, const DrawCall &d,
                               const std::vector<TileId> &tiles) {
            hooks->onPrimitiveBinned(p, d, tiles);
        });
    } else {
        plb.setObserver({});
    }

    {
        ObsScope geometrySpan("gpu", "geometry", "frame",
                              static_cast<i64>(frameCounter), "draws",
                              static_cast<i64>(commands.draws.size()));
        for (u32 d = 0; d < commands.draws.size(); d++) {
            const DrawCall &draw = commands.draws[d];
            if (hooks)
                hooks->onDrawcallConstants(d, draw);
            GeometryOutput geo = [&] {
                ObsScope vertexSpan("gpu", "vertex", "draw",
                                    static_cast<i64>(d));
                return geometry.process(draw);
            }();
            for (Primitive &p : geo.primitives)
                p.drawIndex = d;
            result.verticesShaded += geo.verticesShaded;
            result.trianglesAssembled += geo.primitives.size();
            ObsScope binningSpan("gpu", "binning", "draw",
                                 static_cast<i64>(d));
            plb.binDrawcall(draw, geo.primitives, result.binned);
        }
    }

    if (hooks)
        hooks->geometryDone();

    // ---- Raster Pipeline, tile by tile ---------------------------------
    const u32 numTiles = config.numTiles();
    result.tiles.resize(numTiles);

    std::optional<ObsScope> rasterSpan;
    rasterSpan.emplace("gpu", "raster", "frame",
                       static_cast<i64>(frameCounter), "tiles",
                       static_cast<i64>(numTiles));

    const bool split =
        !hooks || (hooks->tileWorkersSafe() && !hooks->memoClient());
    if (split) {
        // Phase-1/merge split (docs/ARCHITECTURE.md): workers render
        // and signature tiles into private slots, the caller folds
        // everything order-sensitive back in strict tile order. Used
        // for every tile-jobs value including 1, so technique output
        // cannot depend on the worker count.
        struct TileTask
        {
            std::vector<Color> colors;
            MemEventRecorder memEvents;
            StatRegistry localStats;
            TileRenderStats renderStats;
            u32 preparedFlush = 0;
            bool render = true;
            bool equalColors = false;
        };
        // Direct mode: with one worker, phase1(t) and merge(t) run
        // inline back to back on this thread, so the tile-private
        // record/replay indirection buys nothing - render straight
        // into the shared MemSystem/StatRegistry (same accesses, same
        // order), make the counted render decision once instead of
        // peek-then-confirm, and reuse a single task slot so the
        // color vector's capacity survives across tiles, like the
        // serial loop always did. The observable access/stat stream
        // per tile is [counted decision][render traffic][flush] in
        // both modes, which is what keeps output bit-identical across
        // --tile-jobs values (the check.sh 3-way cmp proves it).
        const bool direct = tileJobs <= 1;
        std::vector<TileTask> tasks(direct ? 1u : numTiles);
        auto taskFor = [&](TileId tile) -> TileTask & {
            return tasks[direct ? 0 : tile];
        };

        auto phase1 = [&](TileId tile) {
            // Tile spans (raster + shade fused per tile) are per-tile
            // detail: numTiles events per frame, gated separately.
            std::optional<ObsScope> tileSpan;
            if (obsTileDetail())
                tileSpan.emplace("gpu", "tile", "tile",
                                 static_cast<i64>(tile));
            TileTask &task = taskFor(tile);
            // Direct mode makes the authoritative (counted) decision
            // right here: phase1/merge run inline back to back, so
            // the counted reads land in the same place in the access
            // stream as the merge-side call would put them, and the
            // phase-1 peek prediction would only duplicate the
            // signature compare.
            task.render = hooks
                ? (direct ? hooks->shouldRenderTile(tile)
                          : hooks->queryRenderTile(tile))
                : true;
            if (task.render) {
                // Private renderer: stats land in the task-local
                // registry, memory accesses in the task-local
                // recorder; shared state stays untouched until merge.
                TileRenderer worker(
                    config, direct ? stats : task.localStats,
                    direct ? mem
                           : static_cast<MemTraceSink *>(
                                 &task.memEvents),
                    textures);
                task.renderStats = worker.renderTile(
                    tile, result.binned, commands.draws,
                    commands.clearColor, task.colors, true);
                // Per-tile-disjoint Back Buffer regions, written only
                // by this tile's own (strictly later) merge: safe.
                task.equalColors = fb.tileEquals(tile, task.colors);
                if (hooks)
                    task.preparedFlush =
                        hooks->prepareFlushTile(tile, task.colors);
            } else if (groundTruth) {
                // Shadow render for ground truth - no cost charged
                // (chargeCost=false records no stats and no memory
                // traffic, so the local registry/recorder stay empty).
                TileRenderer worker(config, task.localStats, nullptr,
                                    textures);
                worker.renderTile(tile, result.binned, commands.draws,
                                  commands.clearColor, task.colors,
                                  false);
                task.equalColors = fb.tileEquals(tile, task.colors);
            }
        };

        auto merge = [&](TileId tile) {
            TileTask &task = taskFor(tile);
            TileOutcome &out = result.tiles[tile];
            // Authoritative decision, with its counted buffer reads
            // and stats - then cross-checked against the phase-1
            // prediction the tile was rendered under. Direct mode
            // already made the counted call in phase1.
            const bool render = (hooks && !direct)
                ? hooks->shouldRenderTile(tile)
                : task.render;
            REGPU_ASSERT(render == task.render,
                         "queryRenderTile diverged from "
                         "shouldRenderTile for tile ", tile,
                         " - the hooks violate the tileWorkersSafe "
                         "contract");
            out.rendered = render;

            if (render) {
                // Order-sensitive folds, in exact emission order: the
                // MemSystem's cache state depends on the access
                // sequence, which is why replay happens here and not
                // on the worker. Direct mode already rendered into
                // the shared sinks, so there is nothing to fold.
                if (!direct) {
                    if (mem)
                        task.memEvents.replay(*mem);
                    task.localStats.forEachCounter(
                        [this](std::string_view name, u64 val) {
                            stats.inc(name, val);
                        });
                }
                out.stats = task.renderStats;
                out.equalColors = task.equalColors;

                bool flush = hooks
                    ? hooks->shouldFlushTilePre(tile, task.colors,
                                                task.preparedFlush)
                    : true;
                out.flushed = flush;
                if (flush) {
                    fb.writeTile(tile, task.colors);
                    if (mem)
                        mem->colorFlush(fb.tileAddr(tile),
                                        fb.tileBytes(tile));
                    stats.inc("raster.tilesFlushed");
                } else {
                    stats.inc("raster.tileFlushesEliminated");
                }
                stats.inc("raster.tilesRendered");
            } else {
                // Rendering Elimination bypass: the Back Buffer
                // already holds the (believed-identical) colors.
                out.flushed = false;
                stats.inc("raster.tilesEliminated");
                if (groundTruth) {
                    out.stats = TileRenderStats{}; // skipped: zero cost
                    out.equalColors = task.equalColors;
                    if (!out.equalColors)
                        stats.inc("re.falsePositives");
                }
            }
        };

        runTilesOrdered(numTiles, tileJobs, phase1, merge);
    } else {
        // Legacy serial loop for techniques holding mutable per-tile
        // state across renderTile (Fragment Memoization) or custom
        // hooks that never opted into the split contract.
        if (tileJobs > 1)
            warnOnce("--tile-jobs ", tileJobs, " requested but the "
                     "attached technique is not tile-parallel-safe; "
                     "rendering tiles serially");
        std::vector<Color> tileColors;
        for (TileId tile = 0; tile < numTiles; tile++) {
            std::optional<ObsScope> tileSpan;
            if (obsTileDetail())
                tileSpan.emplace("gpu", "tile", "tile",
                                 static_cast<i64>(tile));
            TileOutcome &out = result.tiles[tile];
            const bool render =
                hooks ? hooks->shouldRenderTile(tile) : true;
            out.rendered = render;

            if (render) {
                out.stats = renderer.renderTile(tile, result.binned,
                                                commands.draws,
                                                commands.clearColor,
                                                tileColors, true);
                out.equalColors = fb.tileEquals(tile, tileColors);

                bool flush = hooks
                    ? hooks->shouldFlushTile(tile, tileColors) : true;
                out.flushed = flush;
                if (flush) {
                    fb.writeTile(tile, tileColors);
                    if (mem)
                        mem->colorFlush(fb.tileAddr(tile),
                                        fb.tileBytes(tile));
                    stats.inc("raster.tilesFlushed");
                } else {
                    stats.inc("raster.tileFlushesEliminated");
                }
                stats.inc("raster.tilesRendered");
            } else {
                out.flushed = false;
                stats.inc("raster.tilesEliminated");
                if (groundTruth) {
                    out.stats = TileRenderStats{}; // skipped: zero cost
                    std::vector<Color> shadow;
                    renderer.renderTile(tile, result.binned,
                                        commands.draws,
                                        commands.clearColor, shadow,
                                        false);
                    out.equalColors = fb.tileEquals(tile, shadow);
                    if (!out.equalColors)
                        stats.inc("re.falsePositives");
                }
            }
        }
    }
    rasterSpan.reset();

    if (hooks)
        hooks->frameEnd();

    fb.swap();
    frameCounter++;
    stats.inc("frames");
    return result;
}

} // namespace regpu
