#include "gpu/pipeline.hh"

#include <optional>

#include "common/logging.hh"
#include "gpu/memiface.hh"
#include "obs/obs.hh"

namespace regpu
{

GraphicsPipeline::GraphicsPipeline(const GpuConfig &_config,
                                   StatRegistry &_stats, MemTraceSink *_mem,
                                   const std::vector<Texture> &_textures)
    : config(_config), stats(_stats), mem(_mem), textures(_textures),
      geometry(_config, _stats, _mem), plb(_config, _stats, _mem),
      renderer(_config, _stats, _mem, _textures), fb(_config)
{
}

FrameResult
GraphicsPipeline::renderFrame(const FrameCommands &commands,
                              bool groundTruth)
{
    FrameResult result;
    result.frameIndex = frameCounter;

    const bool reSafe = !commands.globalStateChanged;
    if (hooks)
        hooks->frameBegin(frameCounter, reSafe);
    renderer.setMemoClient(hooks ? hooks->memoClient() : nullptr);

    // ---- Geometry Pipeline + Tiling Engine -----------------------------
    plb.beginFrame(result.binned);
    if (hooks) {
        plb.setObserver([this](const Primitive &p, const DrawCall &d,
                               const std::vector<TileId> &tiles) {
            hooks->onPrimitiveBinned(p, d, tiles);
        });
    } else {
        plb.setObserver({});
    }

    {
        ObsScope geometrySpan("gpu", "geometry", "frame",
                              static_cast<i64>(frameCounter), "draws",
                              static_cast<i64>(commands.draws.size()));
        for (u32 d = 0; d < commands.draws.size(); d++) {
            const DrawCall &draw = commands.draws[d];
            if (hooks)
                hooks->onDrawcallConstants(d, draw);
            GeometryOutput geo = [&] {
                ObsScope vertexSpan("gpu", "vertex", "draw",
                                    static_cast<i64>(d));
                return geometry.process(draw);
            }();
            for (Primitive &p : geo.primitives)
                p.drawIndex = d;
            result.verticesShaded += geo.verticesShaded;
            result.trianglesAssembled += geo.primitives.size();
            ObsScope binningSpan("gpu", "binning", "draw",
                                 static_cast<i64>(d));
            plb.binDrawcall(draw, geo.primitives, result.binned);
        }
    }

    if (hooks)
        hooks->geometryDone();

    // ---- Raster Pipeline, tile by tile ---------------------------------
    const u32 numTiles = config.numTiles();
    result.tiles.resize(numTiles);
    std::vector<Color> tileColors;

    std::optional<ObsScope> rasterSpan;
    rasterSpan.emplace("gpu", "raster", "frame",
                       static_cast<i64>(frameCounter), "tiles",
                       static_cast<i64>(numTiles));
    for (TileId tile = 0; tile < numTiles; tile++) {
        // Tile spans (raster + shade fused per tile) are per-tile
        // detail: numTiles events per frame, gated separately.
        std::optional<ObsScope> tileSpan;
        if (obsTileDetail())
            tileSpan.emplace("gpu", "tile", "tile",
                             static_cast<i64>(tile));
        TileOutcome &out = result.tiles[tile];
        const bool render = hooks ? hooks->shouldRenderTile(tile) : true;
        out.rendered = render;

        if (render) {
            out.stats = renderer.renderTile(tile, result.binned,
                                            commands.draws,
                                            commands.clearColor,
                                            tileColors, true);
            out.equalColors = fb.tileEquals(tile, tileColors);

            bool flush = hooks
                ? hooks->shouldFlushTile(tile, tileColors) : true;
            out.flushed = flush;
            if (flush) {
                fb.writeTile(tile, tileColors);
                if (mem)
                    mem->colorFlush(fb.tileAddr(tile), fb.tileBytes(tile));
                stats.inc("raster.tilesFlushed");
            } else {
                stats.inc("raster.tileFlushesEliminated");
            }
            stats.inc("raster.tilesRendered");
        } else {
            // Rendering Elimination bypass: the Back Buffer already
            // holds the (believed-identical) colors.
            out.flushed = false;
            stats.inc("raster.tilesEliminated");
            if (groundTruth) {
                // Shadow render for ground truth - no cost charged.
                out.stats = TileRenderStats{}; // skipped: zero cost
                std::vector<Color> shadow;
                renderer.renderTile(tile, result.binned, commands.draws,
                                    commands.clearColor, shadow, false);
                out.equalColors = fb.tileEquals(tile, shadow);
                if (!out.equalColors)
                    stats.inc("re.falsePositives");
            }
        }
    }
    rasterSpan.reset();

    if (hooks)
        hooks->frameEnd();

    fb.swap();
    frameCounter++;
    stats.inc("frames");
    return result;
}

} // namespace regpu
