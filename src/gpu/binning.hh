/**
 * @file
 * The Tiling Engine: Polygon List Builder + Parameter Buffer.
 *
 * Sorts each assembled primitive into the screen tiles it overlaps and
 * records, per tile, the ordered list of primitive references the Tile
 * Scheduler will later fetch. Also accounts the Parameter Buffer
 * footprint and write traffic, and reports each primitive's overlapped
 * tiles so the Signature Unit can update tile signatures on the fly.
 */

#ifndef REGPU_GPU_BINNING_HH
#define REGPU_GPU_BINNING_HH

#include <functional>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "gpu/primitive.hh"
#include "gpu/vertex.hh"

namespace regpu
{

class MemTraceSink;

/** Reference to a primitive stored in the Parameter Buffer. */
struct PrimRef
{
    u32 primIndex;  //!< index into the frame's primitive array
    Addr pbAddr;    //!< Parameter Buffer address of its attribute data
    u32 pbBytes;    //!< attribute payload size
};

/** Per-frame binning result. */
struct BinnedFrame
{
    /** All assembled primitives of the frame, in submission order. */
    std::vector<Primitive> primitives;
    /** Per-tile primitive lists (index = TileId). */
    std::vector<std::vector<PrimRef>> tileLists;
    /** Total Parameter Buffer bytes written this frame. */
    u64 parameterBytes = 0;
};

/**
 * Polygon List Builder.
 *
 * Overlap tests are exact: the conservative bounding-box tile range is
 * refined with an edge-function test against each tile's rectangle, so
 * a tile is only listed (and only contributes to signatures) when the
 * triangle genuinely intersects it.
 */
class PolygonListBuilder
{
  public:
    /**
     * Callback invoked for every primitive as it is sorted, carrying
     * the overlapped tile ids. The Signature Unit subscribes here.
     */
    using PrimitiveObserver =
        std::function<void(const Primitive &, const DrawCall &,
                           const std::vector<TileId> &)>;

    PolygonListBuilder(const GpuConfig &_config, StatRegistry &_stats,
                       MemTraceSink *_mem)
        : config(_config), stats(_stats), mem(_mem)
    {}

    /** Register the per-primitive observer (may be empty). */
    void setObserver(PrimitiveObserver obs) { observer = std::move(obs); }

    /** Begin a new frame (resets the Parameter Buffer allocator). */
    void beginFrame(BinnedFrame &frame);

    /**
     * Sort one drawcall's primitives into @p frame.
     * @param draw the originating drawcall (for attribute sizes)
     * @param prims geometry output, drawIndex already assigned
     */
    void binDrawcall(const DrawCall &draw,
                     const std::vector<Primitive> &prims,
                     BinnedFrame &frame);

    /**
     * Exact triangle/tile-grid overlap: returns the ids of all tiles
     * the triangle intersects, in row-major order.
     */
    std::vector<TileId> overlappedTiles(const Primitive &prim) const;

  private:
    const GpuConfig &config;
    StatRegistry &stats;
    MemTraceSink *mem;
    PrimitiveObserver observer;
    Addr pbCursor = 0;
};

} // namespace regpu

#endif // REGPU_GPU_BINNING_HH
