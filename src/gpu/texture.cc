#include "gpu/texture.hh"

#include <cmath>

#include "common/logging.hh"

namespace regpu
{

namespace
{

/** Smooth value noise on an 8x8 lattice. */
float
valueNoise(Rng &rng, std::vector<float> &lattice, u32 lattN,
           float fx, float fy)
{
    if (lattice.empty()) {
        lattice.resize(lattN * lattN);
        for (auto &v : lattice)
            v = rng.nextFloat();
    }
    auto latt = [&](u32 ix, u32 iy) {
        return lattice[(iy % lattN) * lattN + (ix % lattN)];
    };
    float gx = fx * lattN, gy = fy * lattN;
    u32 ix = static_cast<u32>(gx), iy = static_cast<u32>(gy);
    float tx = gx - ix, ty = gy - iy;
    // Smoothstep interpolation between lattice corners.
    tx = tx * tx * (3 - 2 * tx);
    ty = ty * ty * (3 - 2 * ty);
    float a = lerp(latt(ix, iy), latt(ix + 1, iy), tx);
    float b = lerp(latt(ix, iy + 1), latt(ix + 1, iy + 1), tx);
    return lerp(a, b, ty);
}

} // namespace

Texture::Texture(u32 id, u32 w, u32 h, std::vector<Color> texels_)
    : id_(id), width_(w), height_(h), texels(std::move(texels_))
{
    // w == 0 would pass the power-of-two check (0 & ~0 == 0) and turn
    // the texel() wrap mask into 0xFFFFFFFF - reject it explicitly.
    REGPU_ASSERT(w > 0 && h > 0 && (w & (w - 1)) == 0
                     && (h & (h - 1)) == 0,
                 "texture dimensions must be non-zero powers of two");
    REGPU_ASSERT(texels.size() == static_cast<std::size_t>(w) * h,
                 "texel data size must match dimensions");
}

Texture::Texture(u32 id, u32 w, u32 h, TexturePattern pattern, u64 seed)
    : id_(id), width_(w), height_(h)
{
    REGPU_ASSERT(w > 0 && h > 0 && (w & (w - 1)) == 0
                     && (h & (h - 1)) == 0,
                 "texture dimensions must be non-zero powers of two");
    texels.resize(static_cast<std::size_t>(w) * h);

    Rng rng(seed ^ (static_cast<u64>(id) << 32));
    Color c0(static_cast<u8>(rng.nextBounded(256)),
             static_cast<u8>(rng.nextBounded(256)),
             static_cast<u8>(rng.nextBounded(256)));
    Color c1(static_cast<u8>(rng.nextBounded(256)),
             static_cast<u8>(rng.nextBounded(256)),
             static_cast<u8>(rng.nextBounded(256)));

    std::vector<float> lattice;
    const u32 lattN = 8;

    for (u32 y = 0; y < h; y++) {
        for (u32 x = 0; x < w; x++) {
            Color out;
            switch (pattern) {
              case TexturePattern::Solid:
                out = c0;
                break;
              case TexturePattern::Checker: {
                bool odd = ((x / 16) ^ (y / 16)) & 1;
                out = odd ? c0 : c1;
                break;
              }
              case TexturePattern::Gradient: {
                float t = static_cast<float>(x + y) / (w + h - 2);
                out = Color::fromVec4(lerp(c0.toVec4(), c1.toVec4(), t));
                break;
              }
              case TexturePattern::Noise: {
                float n = valueNoise(rng, lattice, lattN,
                                     static_cast<float>(x) / w,
                                     static_cast<float>(y) / h);
                out = Color::fromVec4(lerp(c0.toVec4(), c1.toVec4(), n));
                break;
              }
              case TexturePattern::Atlas: {
                // 4x4 grid of sprites, each a distinct hue with a dark
                // 2-texel border, against a transparent background disc.
                u32 cell = (y / (h / 4)) * 4 + (x / (w / 4));
                u32 cx = x % (w / 4), cy = y % (h / 4);
                float dx = (static_cast<float>(cx) / (w / 4)) - 0.5f;
                float dy = (static_cast<float>(cy) / (h / 4)) - 0.5f;
                bool inside = dx * dx + dy * dy < 0.20f;
                if (!inside) {
                    out = Color(0, 0, 0, 0);
                } else {
                    u8 rr = static_cast<u8>(40 + 13 * cell);
                    u8 gg = static_cast<u8>(200 - 11 * cell);
                    u8 bb = static_cast<u8>(90 + 9 * cell);
                    out = Color(rr, gg, bb, 255);
                    if (dx * dx + dy * dy > 0.16f)
                        out = Color(20, 20, 30, 255);
                }
                break;
              }
            }
            texels[static_cast<std::size_t>(y) * w + x] = out;
        }
    }
}

Color
Sampler::sample(const Texture &tex, float s, float t, Filter filter,
                std::vector<Addr> *touched)
{
    float u = s * tex.width() - 0.5f;
    float v = t * tex.height() - 0.5f;
    if (filter == Filter::Nearest) {
        i32 iu = static_cast<i32>(std::floor(u + 0.5f));
        i32 iv = static_cast<i32>(std::floor(v + 0.5f));
        if (touched)
            touched->push_back(tex.texelAddr(iu, iv));
        return tex.texel(iu, iv);
    }
    i32 u0 = static_cast<i32>(std::floor(u));
    i32 v0 = static_cast<i32>(std::floor(v));
    float fu = u - u0, fv = v - v0;
    if (touched) {
        touched->push_back(tex.texelAddr(u0, v0));
        touched->push_back(tex.texelAddr(u0 + 1, v0));
        touched->push_back(tex.texelAddr(u0, v0 + 1));
        touched->push_back(tex.texelAddr(u0 + 1, v0 + 1));
    }
    Vec4 a = lerp(tex.texel(u0, v0).toVec4(),
                  tex.texel(u0 + 1, v0).toVec4(), fu);
    Vec4 b = lerp(tex.texel(u0, v0 + 1).toVec4(),
                  tex.texel(u0 + 1, v0 + 1).toVec4(), fu);
    return Color::fromVec4(lerp(a, b, fv));
}

} // namespace regpu
