#include "gpu/framebuffer.hh"

namespace regpu
{

void
FrameBuffer::writeTile(TileId tile, const std::vector<Color> &colors)
{
    const u32 tx = tile % config.tilesX();
    const u32 ty = tile / config.tilesX();
    const u32 x0 = tx * config.tileWidth;
    const u32 y0 = ty * config.tileHeight;
    auto &surf = surfaces[back];
    for (u32 dy = 0; dy < config.tileHeight; dy++) {
        const u32 y = y0 + dy;
        if (y >= config.screenHeight)
            break;
        for (u32 dx = 0; dx < config.tileWidth; dx++) {
            const u32 x = x0 + dx;
            if (x >= config.screenWidth)
                break;
            surf[static_cast<std::size_t>(y) * config.screenWidth + x] =
                colors[static_cast<std::size_t>(dy) * config.tileWidth + dx];
        }
    }
}

std::vector<Color>
FrameBuffer::readTile(TileId tile) const
{
    std::vector<Color> out(static_cast<std::size_t>(config.tileWidth)
                           * config.tileHeight, Color(0, 0, 0, 0));
    const u32 tx = tile % config.tilesX();
    const u32 ty = tile / config.tilesX();
    const u32 x0 = tx * config.tileWidth;
    const u32 y0 = ty * config.tileHeight;
    const auto &surf = surfaces[back];
    for (u32 dy = 0; dy < config.tileHeight; dy++) {
        const u32 y = y0 + dy;
        if (y >= config.screenHeight)
            break;
        for (u32 dx = 0; dx < config.tileWidth; dx++) {
            const u32 x = x0 + dx;
            if (x >= config.screenWidth)
                break;
            out[static_cast<std::size_t>(dy) * config.tileWidth + dx] =
                surf[static_cast<std::size_t>(y) * config.screenWidth + x];
        }
    }
    return out;
}

bool
FrameBuffer::tileEquals(TileId tile, const std::vector<Color> &colors) const
{
    const u32 tx = tile % config.tilesX();
    const u32 ty = tile / config.tilesX();
    const u32 x0 = tx * config.tileWidth;
    const u32 y0 = ty * config.tileHeight;
    const auto &surf = surfaces[back];
    for (u32 dy = 0; dy < config.tileHeight; dy++) {
        const u32 y = y0 + dy;
        if (y >= config.screenHeight)
            break;
        for (u32 dx = 0; dx < config.tileWidth; dx++) {
            const u32 x = x0 + dx;
            if (x >= config.screenWidth)
                break;
            if (!(surf[static_cast<std::size_t>(y) * config.screenWidth + x]
                  == colors[static_cast<std::size_t>(dy)
                            * config.tileWidth + dx]))
                return false;
        }
    }
    return true;
}

} // namespace regpu
