/**
 * @file
 * TraceReader: random-access reader for the trace_format.hh files.
 *
 * open() reads the magic, footer, frame index table and META chunk up
 * front — O(trace header), not O(frames) — after which any frame is
 * one seek away via the index table. Every chunk consumed is CRC
 * checked before its payload is parsed; a mismatch is fatal() on the
 * load path.
 *
 * verifyTraceFile() is the diagnostic sibling: it never fatal()s,
 * walking the whole file (structure, every chunk CRC, index
 * cross-check against observed FRAM offsets, footer) and returning a
 * report — this is what `trace_cli verify` prints.
 */

#ifndef REGPU_TRACE_TRACE_READER_HH
#define REGPU_TRACE_TRACE_READER_HH

#include <fstream>
#include <string>
#include <vector>

#include "trace/trace_format.hh"

namespace regpu
{

/** Seekable, CRC-checking reader over one trace file. */
class TraceReader
{
  public:
    /** Open @p path and load footer, index and META. fatal() on any
     *  structural or CRC problem in those. */
    explicit TraceReader(const std::string &path);

    const TraceMeta &meta() const { return meta_; }
    const std::string &path() const { return path_; }
    u64 frameCount() const { return static_cast<u64>(frameOffsets.size()); }
    u64 fileBytes() const { return fileBytes_; }

    /** File offset of frame @p index's FRAM chunk (the index table). */
    u64
    frameOffset(u64 index) const
    {
        REGPU_ASSERT(index < frameOffsets.size(), "frame out of range");
        return frameOffsets[index];
    }

    /** Parse all TEXT chunks, in trace order. */
    std::vector<Texture> readTextures() const;

    /** Seek to and parse frame @p index (O(1) via the index table). */
    FrameCommands readFrame(u64 index) const;

  private:
    /** Read one chunk at @p offset, demand @p expectType, CRC check,
     *  return the payload. */
    std::vector<u8> readChunk(u64 offset, u32 expectType) const;

    mutable std::ifstream in;
    std::string path_;
    TraceMeta meta_;
    std::vector<u64> frameOffsets;
    u64 firstTextureOffset = 0;  //!< offset of the chunk after META
    u64 fileBytes_ = 0;
};

/** Outcome of a full-file integrity walk. */
struct TraceVerifyReport
{
    bool ok = false;
    std::vector<std::string> errors;  //!< empty iff ok
    u64 fileBytes = 0;
    u64 chunks = 0;     //!< chunks whose CRC was checked
    u64 textures = 0;
    u64 frames = 0;
    TraceMeta meta;     //!< valid when the META chunk parsed
};

/**
 * Walk @p path end to end without ever fatal()ing: magic, every chunk
 * header and CRC, chunk ordering, META consistency, index-table
 * agreement with the observed FRAM offsets, and the footer. Any
 * single flipped byte in the file surfaces as at least one error.
 */
TraceVerifyReport verifyTraceFile(const std::string &path);

} // namespace regpu

#endif // REGPU_TRACE_TRACE_READER_HH
