#include "trace/trace_scene.hh"

namespace regpu
{

TraceScene::TraceScene(const std::string &path, u64 firstFrame,
                       u64 frameCount)
    : reader(path), firstFrame_(firstFrame)
{
    const u64 total = reader.frameCount();
    if (firstFrame_ > total)
        fatal("trace: replay window starts at frame ", firstFrame_,
              " but trace has only ", total, " frames: ", path);
    frames_ = frameCount == 0 ? total - firstFrame_ : frameCount;
    if (firstFrame_ + frames_ > total)
        fatal("trace: replay window [", firstFrame_, ", ",
              firstFrame_ + frames_, ") exceeds the ", total,
              " frames of ", path);
    textures_ = reader.readTextures();
}

FrameCommands
TraceScene::emitFrame(u64 frame) const
{
    if (frame >= frames_)
        fatal("trace: frame ", frame, " past the replay window (",
              frames_, " frames): ", reader.path());
    return reader.readFrame(firstFrame_ + frame);
}

} // namespace regpu
