/**
 * @file
 * Process-wide cache of fully verified trace files.
 *
 * ParallelRunner pre-flights every replay job by verifying its trace
 * end-to-end (every chunk CRC, not just the header/index an open
 * checks) on the caller thread, so TEXT/FRAM corruption can never
 * fatal() on a worker mid-pool. Verification walks the whole file, so
 * the result is cached per path for the life of the process: streaming
 * frontends (one run() call per sweep cell) and per-technique replay
 * loops verify each file once, not once per cell. Trace files are
 * assumed immutable while the process lives.
 *
 * The cache is hammered concurrently — several ParallelRunner::run()
 * calls on distinct threads race their first lookups (pinned by
 * tests/test_parallel_stress.cc under TSan) — so its lock discipline
 * is compile-enforced: the map is REGPU_GUARDED_BY the cache mutex
 * and the public API is REGPU_EXCLUDES of it.
 */

#ifndef REGPU_TRACE_VERIFIED_CACHE_HH
#define REGPU_TRACE_VERIFIED_CACHE_HH

#include <map>
#include <string>

#include "common/thread_annotations.hh"
#include "common/types.hh"

namespace regpu
{

/** Singleton path -> verified-frame-count cache. */
class VerifiedTraceCache
{
  public:
    static VerifiedTraceCache &instance();

    /**
     * Frame count of @p path, verifying the file end-to-end on first
     * sight; fatal() (on the calling thread) when verification fails.
     * First-time verification holds the cache lock, deliberately
     * serializing concurrent cold lookups — two threads must never
     * walk the same file twice, and cache hits are O(log paths).
     */
    u64 verifiedFrameCount(const std::string &path)
        REGPU_EXCLUDES(mutex);

  private:
    VerifiedTraceCache() = default;

    Mutex mutex;
    std::map<std::string, u64> frames REGPU_GUARDED_BY(mutex);
};

} // namespace regpu

#endif // REGPU_TRACE_VERIFIED_CACHE_HH
