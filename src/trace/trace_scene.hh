/**
 * @file
 * TraceScene: a FrameSource that replays a recorded trace.
 *
 * Drop-in replacement for a live Scene anywhere the Simulator (or
 * runSuite) consumes one: textures come from the trace's TEXT chunks,
 * emitFrame() seeks the requested FRAM chunk through the index table.
 * Replaying the full trace yields a SimResult bit-identical to the
 * live-scene run it was captured from.
 *
 * A TraceScene can also expose a *window* [firstFrame, firstFrame +
 * frameCount) of the trace, re-based so emitFrame(0) returns the
 * window's first frame: this is how the parallel runner shards one
 * replay across workers by frame range (each shard seeks directly to
 * its window — O(1) via the index table — never touching the frames
 * of other shards).
 *
 * Not thread-safe: each worker opens its own TraceScene (the reader
 * owns a seeking ifstream).
 */

#ifndef REGPU_TRACE_TRACE_SCENE_HH
#define REGPU_TRACE_TRACE_SCENE_HH

#include <string>
#include <vector>

#include "scene/frame_source.hh"
#include "trace/trace_reader.hh"

namespace regpu
{

/** Replays a trace file as a FrameSource. */
class TraceScene : public FrameSource
{
  public:
    /**
     * Open @p path and load the texture set.
     * @param firstFrame  first trace frame of the replay window
     * @param frameCount  window length; 0 means "to the end of trace"
     */
    explicit TraceScene(const std::string &path, u64 firstFrame = 0,
                        u64 frameCount = 0);

    const std::string &name() const override { return reader.meta().name; }
    const std::vector<Texture> &textures() const override
    { return textures_; }

    /** Window-relative frame fetch: reads trace frame
     *  firstFrame + @p frame. fatal() past the window end. */
    FrameCommands emitFrame(u64 frame) const override;

    const TraceMeta &meta() const { return reader.meta(); }

    /** Frames available in this replay window. */
    u64 replayFrames() const { return frames_; }

    /** First trace frame of the window. */
    u64 firstFrame() const { return firstFrame_; }

  private:
    TraceReader reader;
    std::vector<Texture> textures_;
    u64 firstFrame_;
    u64 frames_;
};

} // namespace regpu

#endif // REGPU_TRACE_TRACE_SCENE_HH
