/**
 * @file
 * The regpu frame-trace binary format (version 1).
 *
 * A trace is the simulator's equivalent of a gem5 trace-driven
 * frontend input: the fully-resolved per-frame command streams of one
 * workload, recorded once and replayed without paying scene/mesh
 * generation. Replaying a trace through the Simulator yields a
 * SimResult bit-identical to the live-scene run it was captured from.
 *
 * File layout (all integers little-endian, floats as IEEE-754 bit
 * patterns):
 *
 *     [magic "RGPUTRC1"]                            8 bytes
 *     [META chunk]                                  workload metadata
 *     [TEXT chunk] x textureCount                   texture images
 *     [FRAM chunk] x frameCount                     one per frame
 *     [INDX chunk]                                  frame index table
 *     [footer]                                      20 bytes
 *
 * Chunk wire format:
 *
 *     u32 type        fourcc ('META' | 'TEXT' | 'FRAM' | 'INDX')
 *     u64 length      payload bytes
 *     u32 crc         CRC-32 over type || length || payload
 *     u8  payload[length]
 *
 * The CRC uses the repository-wide convention F(M) = M * x^32 mod G
 * (crc/crc32.hh; generator 0x04C11DB7, zero init, no final XOR) and
 * covers the header fields as well as the payload, so a single flipped
 * byte anywhere in a chunk — including its type, length or the stored
 * CRC itself — is detectable.
 *
 * Footer wire format (fixed 20 bytes at end of file):
 *
 *     u64 indexOffset  file offset of the INDX chunk
 *     u32 crc          CRC-32 over the 8 indexOffset bytes
 *     u8  endMagic[8]  "RGPUEND1"
 *
 * The INDX chunk holds `u64 frameCount` followed by one u64 file
 * offset per FRAM chunk, enabling O(1) seek to any frame — this is
 * what lets the parallel runner shard a replay by frame range.
 */

#ifndef REGPU_TRACE_TRACE_FORMAT_HH
#define REGPU_TRACE_TRACE_FORMAT_HH

#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "gpu/texture.hh"
#include "gpu/vertex.hh"

namespace regpu
{

/** Leading file magic: "RGPUTRC1" (the trailing 1 is the version). */
constexpr u8 traceMagic[8] = {'R', 'G', 'P', 'U', 'T', 'R', 'C', '1'};

/** Trailing file magic: "RGPUEND1". */
constexpr u8 traceEndMagic[8] = {'R', 'G', 'P', 'U', 'E', 'N', 'D', '1'};

/** Chunk fourcc codes (stored little-endian, first char in low byte). */
constexpr u32
traceFourcc(char a, char b, char c, char d)
{
    return static_cast<u32>(static_cast<u8>(a))
        | (static_cast<u32>(static_cast<u8>(b)) << 8)
        | (static_cast<u32>(static_cast<u8>(c)) << 16)
        | (static_cast<u32>(static_cast<u8>(d)) << 24);
}

constexpr u32 traceChunkMeta = traceFourcc('M', 'E', 'T', 'A');
constexpr u32 traceChunkTexture = traceFourcc('T', 'E', 'X', 'T');
constexpr u32 traceChunkFrame = traceFourcc('F', 'R', 'A', 'M');
constexpr u32 traceChunkIndex = traceFourcc('I', 'N', 'D', 'X');

/** Chunk header bytes on the wire: type(4) + length(8) + crc(4). */
constexpr u64 traceChunkHeaderBytes = 16;

/** Footer bytes on the wire: indexOffset(8) + crc(4) + endMagic(8). */
constexpr u64 traceFooterBytes = 20;

/** Workload metadata carried by the META chunk. */
struct TraceMeta
{
    std::string name;      //!< workload alias / scene name
    u64 seed = 1;          //!< content seed the capture used
    u64 frames = 0;        //!< FRAM chunk count
    u32 screenWidth = 0;   //!< resolution the capture targeted
    u32 screenHeight = 0;
    u32 tileWidth = 0;     //!< tile grid of the capture config
    u32 tileHeight = 0;
    u32 textureCount = 0;  //!< TEXT chunk count
};

/**
 * Growable little-endian byte sink for chunk payload assembly.
 */
class ByteBuffer
{
  public:
    void putU8(u8 v) { bytes_.push_back(v); }

    void
    putU32(u32 v)
    {
        for (int i = 0; i < 4; i++)
            bytes_.push_back(static_cast<u8>(v >> (8 * i)));
    }

    void
    putU64(u64 v)
    {
        for (int i = 0; i < 8; i++)
            bytes_.push_back(static_cast<u8>(v >> (8 * i)));
    }

    void putI32(i32 v) { putU32(static_cast<u32>(v)); }

    void
    putF32(float f)
    {
        u32 bits;
        std::memcpy(&bits, &f, 4);
        putU32(bits);
    }

    /** Length-prefixed string (u32 length + raw bytes). */
    void
    putString(const std::string &s)
    {
        putU32(static_cast<u32>(s.size()));
        bytes_.insert(bytes_.end(), s.begin(), s.end());
    }

    void
    putBytes(std::span<const u8> b)
    {
        bytes_.insert(bytes_.end(), b.begin(), b.end());
    }

    const std::vector<u8> &data() const { return bytes_; }

  private:
    std::vector<u8> bytes_;
};

/**
 * Bounds-checked little-endian reader over a chunk payload. Payloads
 * are CRC-verified before parsing, so an overrun here means the file
 * was produced by a broken writer — fatal(), not silent garbage.
 */
class ByteCursor
{
  public:
    explicit ByteCursor(std::span<const u8> bytes) : buf(bytes) {}

    u8
    getU8()
    {
        need(1);
        return buf[pos_++];
    }

    u32
    getU32()
    {
        need(4);
        u32 v = 0;
        for (int i = 0; i < 4; i++)
            v |= static_cast<u32>(buf[pos_ + i]) << (8 * i);
        pos_ += 4;
        return v;
    }

    u64
    getU64()
    {
        need(8);
        u64 v = 0;
        for (int i = 0; i < 8; i++)
            v |= static_cast<u64>(buf[pos_ + i]) << (8 * i);
        pos_ += 8;
        return v;
    }

    i32 getI32() { return static_cast<i32>(getU32()); }

    float
    getF32()
    {
        u32 bits = getU32();
        float f;
        std::memcpy(&f, &bits, 4);
        return f;
    }

    std::string
    getString()
    {
        u32 len = getU32();
        need(len);
        std::string s(reinterpret_cast<const char *>(buf.data() + pos_),
                      len);
        pos_ += len;
        return s;
    }

    std::span<const u8>
    getBytes(std::size_t n)
    {
        need(n);
        std::span<const u8> s = buf.subspan(pos_, n);
        pos_ += n;
        return s;
    }

    std::size_t remaining() const { return buf.size() - pos_; }

  private:
    void
    need(std::size_t n)
    {
        if (buf.size() - pos_ < n)
            fatal("trace: truncated chunk payload (need ", n,
                  " bytes, have ", buf.size() - pos_, ")");
    }

    std::span<const u8> buf;
    std::size_t pos_ = 0;
};

/** CRC-32 of a chunk as stored on the wire (header fields + payload). */
u32 traceChunkCrc(u32 type, std::span<const u8> payload);

// --- Payload (de)serializers -----------------------------------------------
// Shared by TraceWriter and TraceReader so the two directions cannot
// diverge. All of these round-trip bit-exactly (floats travel as raw
// IEEE-754 bit patterns).

void serializeMeta(ByteBuffer &out, const TraceMeta &meta);
TraceMeta deserializeMeta(ByteCursor &in);

void serializeTexture(ByteBuffer &out, const Texture &tex);
Texture deserializeTexture(ByteCursor &in);

void serializeFrame(ByteBuffer &out, u64 frameIndex,
                    const FrameCommands &cmds);
FrameCommands deserializeFrame(ByteCursor &in, u64 *frameIndexOut);

} // namespace regpu

#endif // REGPU_TRACE_TRACE_FORMAT_HH
