#include "trace/verified_cache.hh"

#include "common/logging.hh"
#include "trace/trace_reader.hh"

namespace regpu
{

VerifiedTraceCache &
VerifiedTraceCache::instance()
{
    static VerifiedTraceCache cache;
    return cache;
}

u64
VerifiedTraceCache::verifiedFrameCount(const std::string &path)
{
    MutexLock lock(mutex);
    auto it = frames.find(path);
    if (it == frames.end()) {
        const TraceVerifyReport report = verifyTraceFile(path);
        if (!report.ok)
            fatal("trace: ", path, " failed verification: ",
                  report.errors.front());
        it = frames.emplace(path, report.frames).first;
    }
    return it->second;
}

} // namespace regpu
