/**
 * @file
 * TraceWriter: records frame traces in the format of trace_format.hh.
 *
 * Usage (what captureTrace() does):
 *
 *     TraceWriter w(path, meta);          // magic + META chunk
 *     for each texture: w.addTexture(t);  // TEXT chunks
 *     for each frame:   w.addFrame(c);    // FRAM chunks
 *     w.finish();                         // INDX chunk + footer
 *
 * The writer is strict: texture and frame counts must match the META
 * declaration, and finish() must be called exactly once — anything
 * else is a programming error and fatal()s rather than producing a
 * silently unreadable file.
 */

#ifndef REGPU_TRACE_TRACE_WRITER_HH
#define REGPU_TRACE_TRACE_WRITER_HH

#include <fstream>
#include <string>
#include <vector>

#include "trace/trace_format.hh"

namespace regpu
{

class FrameSource;
struct GpuConfig;

/** Streams one trace file chunk by chunk. */
class TraceWriter
{
  public:
    /** Open @p path and write magic + META. fatal() on I/O failure. */
    TraceWriter(const std::string &path, const TraceMeta &meta);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one TEXT chunk (call meta.textureCount times, before
     *  any frame). */
    void addTexture(const Texture &tex);

    /** Append one FRAM chunk; frames are indexed in call order. */
    void addFrame(const FrameCommands &cmds);

    /** Write the INDX chunk and footer, then close the file. */
    void finish();

    /** Bytes written so far (after finish(): the final file size). */
    u64 bytesWritten() const { return offset_; }

  private:
    u64 writeChunk(u32 type, const std::vector<u8> &payload);

    std::ofstream out;
    std::string path_;
    TraceMeta meta_;
    std::vector<u64> frameOffsets;
    u64 texturesWritten = 0;
    u64 offset_ = 0;
    bool finished = false;
};

/**
 * Capture a full trace from any FrameSource: textures first, then
 * @p frames frames emitted in order. @p config supplies the target
 * resolution and tile grid recorded into META; @p seed is provenance
 * metadata (the content seed the source was built from).
 */
void captureTrace(const FrameSource &source, const GpuConfig &config,
                  u64 frames, u64 seed, const std::string &path);

/** Canonical trace file name for a workload alias inside @p dir. */
std::string traceFilePath(const std::string &dir,
                          const std::string &alias);

} // namespace regpu

#endif // REGPU_TRACE_TRACE_WRITER_HH
