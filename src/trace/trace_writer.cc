#include "trace/trace_writer.hh"

#include "common/config.hh"
#include "crc/crc32.hh"
#include "scene/frame_source.hh"

namespace regpu
{

TraceWriter::TraceWriter(const std::string &path, const TraceMeta &meta)
    : out(path, std::ios::binary | std::ios::trunc), path_(path),
      meta_(meta)
{
    if (!out)
        fatal("trace: cannot open for writing: ", path);
    out.write(reinterpret_cast<const char *>(traceMagic),
              sizeof(traceMagic));
    offset_ = sizeof(traceMagic);

    ByteBuffer payload;
    serializeMeta(payload, meta_);
    writeChunk(traceChunkMeta, payload.data());
}

TraceWriter::~TraceWriter()
{
    // warnOnce: a sweep abandoning a whole directory of writers (e.g.
    // when unwinding from an error) would otherwise repeat this line
    // per trace; the first path is enough to locate the bug.
    if (!finished)
        warnOnce("trace: writer for ", path_,
                 " destroyed without finish(); file is incomplete");
}

u64
TraceWriter::writeChunk(u32 type, const std::vector<u8> &payload)
{
    const u64 chunkOffset = offset_;
    const u32 crc = traceChunkCrc(type, payload);

    ByteBuffer header;
    header.putU32(type);
    header.putU64(payload.size());
    header.putU32(crc);
    out.write(reinterpret_cast<const char *>(header.data().data()),
              static_cast<std::streamsize>(header.data().size()));
    out.write(reinterpret_cast<const char *>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    if (!out)
        fatal("trace: write failed: ", path_);
    offset_ += traceChunkHeaderBytes + payload.size();
    return chunkOffset;
}

void
TraceWriter::addTexture(const Texture &tex)
{
    REGPU_ASSERT(!finished, "trace writer already finished");
    if (!frameOffsets.empty())
        fatal("trace: textures must precede frames in ", path_);
    if (texturesWritten >= meta_.textureCount)
        fatal("trace: more textures than META declared (",
              meta_.textureCount, ") in ", path_);
    ByteBuffer payload;
    serializeTexture(payload, tex);
    writeChunk(traceChunkTexture, payload.data());
    texturesWritten++;
}

void
TraceWriter::addFrame(const FrameCommands &cmds)
{
    REGPU_ASSERT(!finished, "trace writer already finished");
    if (texturesWritten != meta_.textureCount)
        fatal("trace: ", texturesWritten, " of ", meta_.textureCount,
              " textures written before first frame in ", path_);
    if (frameOffsets.size() >= meta_.frames)
        fatal("trace: more frames than META declared (", meta_.frames,
              ") in ", path_);
    ByteBuffer payload;
    serializeFrame(payload, frameOffsets.size(), cmds);
    frameOffsets.push_back(writeChunk(traceChunkFrame, payload.data()));
}

void
TraceWriter::finish()
{
    REGPU_ASSERT(!finished, "trace writer already finished");
    if (texturesWritten != meta_.textureCount
        || frameOffsets.size() != meta_.frames)
        fatal("trace: wrote ", texturesWritten, "/", meta_.textureCount,
              " textures and ", frameOffsets.size(), "/", meta_.frames,
              " frames declared by META in ", path_);

    ByteBuffer payload;
    payload.putU64(frameOffsets.size());
    for (u64 off : frameOffsets)
        payload.putU64(off);
    const u64 indexOffset = writeChunk(traceChunkIndex, payload.data());

    ByteBuffer footer;
    footer.putU64(indexOffset);
    Crc32Stream crc;
    crc.putU32(static_cast<u32>(indexOffset));
    crc.putU32(static_cast<u32>(indexOffset >> 32));
    footer.putU32(crc.value());
    footer.putBytes({traceEndMagic, sizeof(traceEndMagic)});
    out.write(reinterpret_cast<const char *>(footer.data().data()),
              static_cast<std::streamsize>(footer.data().size()));
    offset_ += footer.data().size();
    out.close();
    if (!out)
        fatal("trace: close failed: ", path_);
    finished = true;
}

void
captureTrace(const FrameSource &source, const GpuConfig &config,
             u64 frames, u64 seed, const std::string &path)
{
    TraceMeta meta;
    meta.name = source.name();
    meta.seed = seed;
    meta.frames = frames;
    meta.screenWidth = config.screenWidth;
    meta.screenHeight = config.screenHeight;
    meta.tileWidth = config.tileWidth;
    meta.tileHeight = config.tileHeight;
    meta.textureCount = static_cast<u32>(source.textures().size());

    TraceWriter writer(path, meta);
    for (const Texture &tex : source.textures())
        writer.addTexture(tex);
    for (u64 f = 0; f < frames; f++)
        writer.addFrame(source.emitFrame(f));
    writer.finish();
}

std::string
traceFilePath(const std::string &dir, const std::string &alias)
{
    if (dir.empty() || dir.back() == '/')
        return dir + alias + ".rgputrace";
    return dir + "/" + alias + ".rgputrace";
}

} // namespace regpu
