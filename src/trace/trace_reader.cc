#include "trace/trace_reader.hh"

#include <cstring>

#include "crc/crc32.hh"

namespace regpu
{

namespace
{

/** Printable fourcc for error messages. */
std::string
fourccName(u32 type)
{
    std::string s;
    for (int i = 0; i < 4; i++) {
        char c = static_cast<char>(type >> (8 * i));
        s += (c >= 0x20 && c < 0x7f) ? c : '?';
    }
    return s;
}

} // namespace

TraceReader::TraceReader(const std::string &path)
    : in(path, std::ios::binary), path_(path)
{
    if (!in)
        fatal("trace: cannot open: ", path);

    in.seekg(0, std::ios::end);
    fileBytes_ = static_cast<u64>(in.tellg());
    if (fileBytes_ < sizeof(traceMagic) + traceFooterBytes)
        fatal("trace: file too small to be a trace: ", path);

    u8 magic[sizeof(traceMagic)];
    in.seekg(0);
    in.read(reinterpret_cast<char *>(magic), sizeof(magic));
    if (!in || std::memcmp(magic, traceMagic, sizeof(magic)) != 0)
        fatal("trace: bad magic (not a regpu trace?): ", path);

    // Footer: index offset + its CRC + end magic.
    u8 footer[traceFooterBytes];
    in.seekg(static_cast<std::streamoff>(fileBytes_ - traceFooterBytes));
    in.read(reinterpret_cast<char *>(footer), sizeof(footer));
    if (!in)
        fatal("trace: cannot read footer: ", path);
    if (std::memcmp(footer + 12, traceEndMagic, sizeof(traceEndMagic))
        != 0)
        fatal("trace: bad end magic (truncated capture?): ", path);
    ByteCursor fc({footer, traceFooterBytes});
    const u64 indexOffset = fc.getU64();
    const u32 footerCrc = fc.getU32();
    Crc32Stream crc;
    crc.putU32(static_cast<u32>(indexOffset));
    crc.putU32(static_cast<u32>(indexOffset >> 32));
    if (crc.value() != footerCrc)
        fatal("trace: footer CRC mismatch: ", path);

    // Index table. Validate the count against the payload size before
    // reserving: a CRC-valid but malformed count must fatal() with a
    // diagnostic, not abort via std::length_error.
    std::vector<u8> index = readChunk(indexOffset, traceChunkIndex);
    ByteCursor ic(index);
    const u64 frames = ic.getU64();
    // Wrap-safe form (8 * frames could overflow for a hostile count).
    if ((index.size() - 8) % 8 != 0 || frames != (index.size() - 8) / 8)
        fatal("trace: INDX declares ", frames,
              " frames but its payload holds ", ic.remaining() / 8,
              ": ", path);
    frameOffsets.reserve(frames);
    for (u64 i = 0; i < frames; i++)
        frameOffsets.push_back(ic.getU64());

    // META is always the first chunk, right after the magic.
    std::vector<u8> metaPayload =
        readChunk(sizeof(traceMagic), traceChunkMeta);
    ByteCursor mc(metaPayload);
    meta_ = deserializeMeta(mc);
    firstTextureOffset =
        sizeof(traceMagic) + traceChunkHeaderBytes + metaPayload.size();

    if (meta_.frames != frames)
        fatal("trace: META declares ", meta_.frames,
              " frames but index has ", frames, ": ", path);
}

std::vector<u8>
TraceReader::readChunk(u64 offset, u32 expectType) const
{
    if (offset + traceChunkHeaderBytes > fileBytes_)
        fatal("trace: chunk offset ", offset, " beyond end of ", path_);
    u8 header[traceChunkHeaderBytes];
    in.clear();
    in.seekg(static_cast<std::streamoff>(offset));
    in.read(reinterpret_cast<char *>(header), sizeof(header));
    if (!in)
        fatal("trace: cannot read chunk header at ", offset, " in ",
              path_);
    ByteCursor hc({header, traceChunkHeaderBytes});
    const u32 type = hc.getU32();
    const u64 length = hc.getU64();
    const u32 storedCrc = hc.getU32();
    if (type != expectType)
        fatal("trace: expected ", fourccName(expectType), " chunk at ",
              offset, ", found ", fourccName(type), " in ", path_);
    // Compare against the remaining bytes, not offset + length: a
    // corrupted length near 2^64 would wrap the sum past the check.
    if (length > fileBytes_ - offset - traceChunkHeaderBytes)
        fatal("trace: chunk at ", offset, " overruns end of ", path_);

    std::vector<u8> payload(length);
    in.read(reinterpret_cast<char *>(payload.data()),
            static_cast<std::streamsize>(length));
    if (!in)
        fatal("trace: cannot read chunk payload at ", offset, " in ",
              path_);
    if (traceChunkCrc(type, payload) != storedCrc)
        fatal("trace: CRC mismatch in ", fourccName(type),
              " chunk at offset ", offset, " in ", path_,
              " (file corrupted?)");
    return payload;
}

std::vector<Texture>
TraceReader::readTextures() const
{
    // No reserve: textureCount is file-controlled and an absurd value
    // should fail at the first bad chunk read, not in the allocator.
    std::vector<Texture> textures;
    u64 offset = firstTextureOffset;
    for (u32 t = 0; t < meta_.textureCount; t++) {
        std::vector<u8> payload = readChunk(offset, traceChunkTexture);
        ByteCursor pc(payload);
        textures.push_back(deserializeTexture(pc));
        offset += traceChunkHeaderBytes + payload.size();
    }
    return textures;
}

FrameCommands
TraceReader::readFrame(u64 index) const
{
    if (index >= frameOffsets.size())
        fatal("trace: frame ", index, " out of range (trace has ",
              frameOffsets.size(), " frames): ", path_);
    std::vector<u8> payload =
        readChunk(frameOffsets[index], traceChunkFrame);
    ByteCursor pc(payload);
    u64 storedIndex = 0;
    FrameCommands cmds = deserializeFrame(pc, &storedIndex);
    if (storedIndex != index)
        fatal("trace: index table points frame ", index,
              " at a chunk recording frame ", storedIndex, ": ", path_);
    return cmds;
}

TraceVerifyReport
verifyTraceFile(const std::string &path)
{
    TraceVerifyReport report;
    auto fail = [&](std::string msg) {
        report.errors.push_back(std::move(msg));
    };

    std::ifstream f(path, std::ios::binary);
    if (!f) {
        fail("cannot open file");
        return report;
    }
    f.seekg(0, std::ios::end);
    const u64 fileBytes = static_cast<u64>(f.tellg());
    report.fileBytes = fileBytes;
    if (fileBytes < sizeof(traceMagic) + traceFooterBytes) {
        fail("file too small to be a trace");
        return report;
    }

    u8 magic[sizeof(traceMagic)];
    f.seekg(0);
    f.read(reinterpret_cast<char *>(magic), sizeof(magic));
    if (std::memcmp(magic, traceMagic, sizeof(magic)) != 0)
        fail("bad leading magic");

    // Walk every chunk from the magic to the footer.
    const u64 chunkRegionEnd = fileBytes - traceFooterBytes;
    u64 offset = sizeof(traceMagic);
    u64 observedIndexOffset = 0;
    std::vector<u64> observedFrameOffsets;
    std::vector<u8> metaPayload;
    bool metaCrcOk = false;
    bool orderOk = true;
    u64 chunkNo = 0;
    while (offset < chunkRegionEnd) {
        if (offset + traceChunkHeaderBytes > chunkRegionEnd) {
            fail("trailing garbage between last chunk and footer");
            break;
        }
        u8 header[traceChunkHeaderBytes];
        f.clear();
        f.seekg(static_cast<std::streamoff>(offset));
        f.read(reinterpret_cast<char *>(header), sizeof(header));
        ByteCursor hc({header, traceChunkHeaderBytes});
        const u32 type = hc.getU32();
        const u64 length = hc.getU64();
        const u32 storedCrc = hc.getU32();

        if (type != traceChunkMeta && type != traceChunkTexture
            && type != traceChunkFrame && type != traceChunkIndex) {
            fail("unknown chunk type '" + fourccName(type)
                 + "' at offset " + std::to_string(offset));
            break;
        }
        // Wrap-safe: a corrupted length near 2^64 must not slip past
        // the check and reach the payload allocation.
        if (length > chunkRegionEnd - offset - traceChunkHeaderBytes) {
            fail("chunk '" + fourccName(type) + "' at offset "
                 + std::to_string(offset) + " overruns the file");
            break;
        }
        std::vector<u8> payload(length);
        f.read(reinterpret_cast<char *>(payload.data()),
               static_cast<std::streamsize>(length));
        if (!f) {
            fail("short read in chunk at offset "
                 + std::to_string(offset));
            break;
        }
        const bool crcOk = traceChunkCrc(type, payload) == storedCrc;
        if (!crcOk)
            fail("CRC mismatch in '" + fourccName(type)
                 + "' chunk at offset " + std::to_string(offset));
        report.chunks++;

        if (type == traceChunkMeta) {
            if (chunkNo != 0) {
                fail("META chunk is not first");
                orderOk = false;
            }
            metaPayload = payload;
            metaCrcOk = crcOk;
        } else if (type == traceChunkTexture) {
            report.textures++;
            if (!observedFrameOffsets.empty())
                fail("TEXT chunk after the first FRAM chunk");
        } else if (type == traceChunkFrame) {
            observedFrameOffsets.push_back(offset);
            report.frames++;
        } else {
            observedIndexOffset = offset;
            if (offset + traceChunkHeaderBytes + length
                != chunkRegionEnd)
                fail("INDX chunk is not the last chunk");
            // Cross-check the table against the FRAM chunks actually
            // seen on the walk.
            ByteCursor ic(payload);
            if (payload.size() < 8) {
                fail("INDX payload truncated");
            } else {
                const u64 count = ic.getU64();
                if (count != observedFrameOffsets.size()
                    || payload.size() != 8 + 8 * count) {
                    fail("INDX frame count disagrees with FRAM chunks");
                } else {
                    for (u64 i = 0; i < count; i++)
                        if (ic.getU64() != observedFrameOffsets[i]) {
                            fail("INDX entry " + std::to_string(i)
                                 + " points at the wrong offset");
                            break;
                        }
                }
            }
        }
        offset += traceChunkHeaderBytes + length;
        chunkNo++;
    }

    if (metaPayload.empty()) {
        if (orderOk)
            fail("no META chunk found");
    } else if (metaCrcOk) {
        // Parse defensively even though the CRC matched: a hostile
        // writer can CRC a malformed payload correctly, and ByteCursor
        // bounds failures fatal() - which verify must never do. Check
        // every length before consuming: name(4+len) + seed(8) +
        // frames(8) + five u32 fields.
        ByteCursor mc(metaPayload);
        bool metaOk = false;
        if (mc.remaining() >= 4) {
            const u32 nameLen = mc.getU32();
            if (mc.remaining() >= nameLen) {
                std::span<const u8> name = mc.getBytes(nameLen);
                report.meta.name.assign(
                    reinterpret_cast<const char *>(name.data()),
                    name.size());
                if (mc.remaining() >= 8 + 8 + 4 * 5) {
                    report.meta.seed = mc.getU64();
                    report.meta.frames = mc.getU64();
                    report.meta.screenWidth = mc.getU32();
                    report.meta.screenHeight = mc.getU32();
                    report.meta.tileWidth = mc.getU32();
                    report.meta.tileHeight = mc.getU32();
                    report.meta.textureCount = mc.getU32();
                    metaOk = true;
                    if (report.meta.frames != report.frames)
                        fail("META declares "
                             + std::to_string(report.meta.frames)
                             + " frames, file has "
                             + std::to_string(report.frames));
                    if (report.meta.textureCount != report.textures)
                        fail("META declares "
                             + std::to_string(report.meta.textureCount)
                             + " textures, file has "
                             + std::to_string(report.textures));
                }
            }
        }
        if (!metaOk)
            fail("META payload truncated");
    }

    // Footer.
    u8 footer[traceFooterBytes];
    f.clear();
    f.seekg(static_cast<std::streamoff>(fileBytes - traceFooterBytes));
    f.read(reinterpret_cast<char *>(footer), sizeof(footer));
    if (!f) {
        fail("cannot read footer");
    } else {
        ByteCursor fc({footer, traceFooterBytes});
        const u64 indexOffset = fc.getU64();
        const u32 footerCrc = fc.getU32();
        Crc32Stream crc;
        crc.putU32(static_cast<u32>(indexOffset));
        crc.putU32(static_cast<u32>(indexOffset >> 32));
        if (crc.value() != footerCrc)
            fail("footer CRC mismatch");
        else if (indexOffset != observedIndexOffset)
            fail("footer does not point at the INDX chunk");
        if (std::memcmp(footer + 12, traceEndMagic,
                        sizeof(traceEndMagic)) != 0)
            fail("bad end magic");
    }

    report.ok = report.errors.empty();
    return report;
}

} // namespace regpu
