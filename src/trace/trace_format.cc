#include "trace/trace_format.hh"

#include "crc/crc32.hh"
#include "gpu/shader.hh"

namespace regpu
{

u32
traceChunkCrc(u32 type, std::span<const u8> payload)
{
    Crc32Stream crc;
    crc.putU32(type);
    crc.putU32(static_cast<u32>(payload.size()));
    crc.putU32(static_cast<u32>(payload.size() >> 32));
    crc.update(payload);
    return crc.value();
}

void
serializeMeta(ByteBuffer &out, const TraceMeta &meta)
{
    out.putString(meta.name);
    out.putU64(meta.seed);
    out.putU64(meta.frames);
    out.putU32(meta.screenWidth);
    out.putU32(meta.screenHeight);
    out.putU32(meta.tileWidth);
    out.putU32(meta.tileHeight);
    out.putU32(meta.textureCount);
}

TraceMeta
deserializeMeta(ByteCursor &in)
{
    TraceMeta meta;
    meta.name = in.getString();
    meta.seed = in.getU64();
    meta.frames = in.getU64();
    meta.screenWidth = in.getU32();
    meta.screenHeight = in.getU32();
    meta.tileWidth = in.getU32();
    meta.tileHeight = in.getU32();
    meta.textureCount = in.getU32();
    return meta;
}

void
serializeTexture(ByteBuffer &out, const Texture &tex)
{
    out.putU32(tex.id());
    out.putU32(tex.width());
    out.putU32(tex.height());
    for (const Color &c : tex.texelData())
        out.putU32(c.packed());
}

Texture
deserializeTexture(ByteCursor &in)
{
    const u32 id = in.getU32();
    const u32 w = in.getU32();
    const u32 h = in.getU32();
    if (w == 0 || h == 0 || (w & (w - 1)) != 0 || (h & (h - 1)) != 0)
        fatal("trace: texture ", id, " has invalid dimensions ", w, "x",
              h);
    // Bound the count by the bytes actually present before reserving:
    // malformed counts must fatal() with a diagnostic, not abort in
    // the allocator.
    if (static_cast<u64>(w) * h > in.remaining() / 4)
        fatal("trace: texture ", id, " declares ", w, "x", h,
              " texels but only ", in.remaining(),
              " payload bytes remain");
    std::vector<Color> texels;
    texels.reserve(static_cast<std::size_t>(w) * h);
    for (std::size_t i = 0; i < static_cast<std::size_t>(w) * h; i++)
        texels.push_back(Color::fromPacked(in.getU32()));
    return Texture(id, w, h, std::move(texels));
}

namespace
{

void
serializeDraw(ByteBuffer &out, const DrawCall &draw)
{
    out.putU8(static_cast<u8>(draw.state.shader));
    out.putU8(static_cast<u8>(draw.state.blendMode));
    out.putU8(draw.state.depthTest ? 1 : 0);
    out.putU8(draw.state.depthWrite ? 1 : 0);
    out.putI32(draw.state.textureId);
    out.putU32(draw.vertexBufferId);

    out.putU8(draw.layout.hasColor ? 1 : 0);
    out.putU8(draw.layout.hasTexcoord ? 1 : 0);
    out.putU8(draw.layout.hasNormal ? 1 : 0);
    out.putU8(0);  // pad to keep the uniform block 4-byte aligned

    const UniformSet &u = draw.state.uniforms;
    for (int r = 0; r < 4; r++)
        for (int c = 0; c < 4; c++)
            out.putF32(u.mvp.m[r][c]);
    out.putF32(u.tint.x);
    out.putF32(u.tint.y);
    out.putF32(u.tint.z);
    out.putF32(u.tint.w);
    out.putF32(u.lightDir.x);
    out.putF32(u.lightDir.y);
    out.putF32(u.lightDir.z);
    out.putF32(u.uvOffsetS);
    out.putF32(u.uvOffsetT);

    out.putU32(static_cast<u32>(draw.vertices.size()));
    for (const Vertex &v : draw.vertices) {
        out.putF32(v.position.x);
        out.putF32(v.position.y);
        out.putF32(v.position.z);
        out.putF32(v.color.x);
        out.putF32(v.color.y);
        out.putF32(v.color.z);
        out.putF32(v.color.w);
        out.putF32(v.texcoord.x);
        out.putF32(v.texcoord.y);
        out.putF32(v.normal.x);
        out.putF32(v.normal.y);
        out.putF32(v.normal.z);
    }
}

DrawCall
deserializeDraw(ByteCursor &in)
{
    DrawCall draw;
    const u8 shader = in.getU8();
    if (shader > static_cast<u8>(ShaderKind::TexLit))
        fatal("trace: unknown shader kind ", unsigned(shader));
    draw.state.shader = static_cast<ShaderKind>(shader);
    const u8 blend = in.getU8();
    if (blend > static_cast<u8>(BlendMode::Additive))
        fatal("trace: unknown blend mode ", unsigned(blend));
    draw.state.blendMode = static_cast<BlendMode>(blend);
    draw.state.depthTest = in.getU8() != 0;
    draw.state.depthWrite = in.getU8() != 0;
    draw.state.textureId = in.getI32();
    draw.vertexBufferId = in.getU32();

    draw.layout.hasColor = in.getU8() != 0;
    draw.layout.hasTexcoord = in.getU8() != 0;
    draw.layout.hasNormal = in.getU8() != 0;
    in.getU8();  // pad

    UniformSet &u = draw.state.uniforms;
    for (int r = 0; r < 4; r++)
        for (int c = 0; c < 4; c++)
            u.mvp.m[r][c] = in.getF32();
    u.tint.x = in.getF32();
    u.tint.y = in.getF32();
    u.tint.z = in.getF32();
    u.tint.w = in.getF32();
    u.lightDir.x = in.getF32();
    u.lightDir.y = in.getF32();
    u.lightDir.z = in.getF32();
    u.uvOffsetS = in.getF32();
    u.uvOffsetT = in.getF32();

    const u32 vertexCount = in.getU32();
    if (vertexCount > in.remaining() / (12 * 4))
        fatal("trace: draw declares ", vertexCount,
              " vertices but only ", in.remaining(),
              " payload bytes remain");
    draw.vertices.reserve(vertexCount);
    for (u32 i = 0; i < vertexCount; i++) {
        Vertex v;
        v.position.x = in.getF32();
        v.position.y = in.getF32();
        v.position.z = in.getF32();
        v.color.x = in.getF32();
        v.color.y = in.getF32();
        v.color.z = in.getF32();
        v.color.w = in.getF32();
        v.texcoord.x = in.getF32();
        v.texcoord.y = in.getF32();
        v.normal.x = in.getF32();
        v.normal.y = in.getF32();
        v.normal.z = in.getF32();
        draw.vertices.push_back(v);
    }
    return draw;
}

} // namespace

void
serializeFrame(ByteBuffer &out, u64 frameIndex, const FrameCommands &cmds)
{
    out.putU64(frameIndex);
    out.putU8(cmds.globalStateChanged ? 1 : 0);
    out.putU8(cmds.clearColor.r);
    out.putU8(cmds.clearColor.g);
    out.putU8(cmds.clearColor.b);
    out.putU8(cmds.clearColor.a);
    out.putU32(static_cast<u32>(cmds.draws.size()));
    for (const DrawCall &draw : cmds.draws)
        serializeDraw(out, draw);
}

FrameCommands
deserializeFrame(ByteCursor &in, u64 *frameIndexOut)
{
    const u64 frameIndex = in.getU64();
    if (frameIndexOut)
        *frameIndexOut = frameIndex;
    FrameCommands cmds;
    cmds.globalStateChanged = in.getU8() != 0;
    cmds.clearColor.r = in.getU8();
    cmds.clearColor.g = in.getU8();
    cmds.clearColor.b = in.getU8();
    cmds.clearColor.a = in.getU8();
    // A draw's wire minimum: 4 state bytes + textureId + bufferId +
    // 4 layout bytes + 25 uniform floats + vertex count = 120 bytes.
    const u32 drawCount = in.getU32();
    if (drawCount > in.remaining() / 120)
        fatal("trace: frame declares ", drawCount,
              " draws but only ", in.remaining(),
              " payload bytes remain");
    cmds.draws.reserve(drawCount);
    for (u32 i = 0; i < drawCount; i++)
        cmds.draws.push_back(deserializeDraw(in));
    return cmds;
}

} // namespace regpu
