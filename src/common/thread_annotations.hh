/**
 * @file
 * Compile-time thread-safety annotations + the annotated Mutex types.
 *
 * Clang's `-Wthread-safety` analysis turns lock discipline into a
 * compile-time property: every piece of shared state declares the
 * capability (mutex) guarding it, every function declares what it
 * acquires/releases/requires, and a mismatched access is a build
 * error (`scripts/check.sh --tsa` runs the tree with
 * `-Werror=thread-safety`; the REGPU_THREAD_SAFETY CMake option).
 * Under gcc every macro expands to nothing and regpu::Mutex is a
 * plain std::mutex wrapper, so the annotations cost nothing where the
 * analysis is unavailable.
 *
 * Which annotation goes where:
 *
 *  - `REGPU_GUARDED_BY(m)` on the *data member or global* a mutex
 *    protects (reads and writes then require holding `m`);
 *  - `REGPU_REQUIRES(m)` on a *function* that must be called with `m`
 *    already held (private helpers of a locking class);
 *  - `REGPU_EXCLUDES(m)` on a *function* that takes `m` itself and
 *    must therefore not be entered with it held (the public API of a
 *    locking class — documents and enforces non-reentrancy);
 *  - `REGPU_ACQUIRE(m)` / `REGPU_RELEASE(m)` on functions that lock/
 *    unlock and leave that state behind (the Mutex/MutexLock members
 *    below; rarely needed elsewhere);
 *  - atomics (`std::atomic`) need no annotation — they are the other
 *    sanctioned shared-state pattern (the obs enable gate, warnOnce
 *    call-site flags). Everything shared must be one or the other.
 *
 * std::mutex itself carries no capability attribute under libstdc++,
 * so the analysis cannot track it; regpu code uses regpu::Mutex and
 * regpu::MutexLock instead (scripts/analyze.py's `raw-mutex` rule
 * keeps new std::mutex uses out of src/).
 */

#ifndef REGPU_COMMON_THREAD_ANNOTATIONS_HH
#define REGPU_COMMON_THREAD_ANNOTATIONS_HH

#include <mutex>

#if defined(__clang__)
#define REGPU_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define REGPU_THREAD_ANNOTATION__(x)  // no-op under gcc/others
#endif

/** Declares a class to be a lockable capability (mutexes). */
#define REGPU_CAPABILITY(x) REGPU_THREAD_ANNOTATION__(capability(x))

/** Declares an RAII class whose lifetime equals a critical section. */
#define REGPU_SCOPED_CAPABILITY REGPU_THREAD_ANNOTATION__(scoped_lockable)

/** Data member/global readable+writable only with @p x held. */
#define REGPU_GUARDED_BY(x) REGPU_THREAD_ANNOTATION__(guarded_by(x))

/** Pointer member whose *pointee* is protected by @p x. */
#define REGPU_PT_GUARDED_BY(x) REGPU_THREAD_ANNOTATION__(pt_guarded_by(x))

/** Function callable only with the given capabilities already held. */
#define REGPU_REQUIRES(...) \
    REGPU_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/** Function that acquires the given capabilities and keeps them. */
#define REGPU_ACQUIRE(...) \
    REGPU_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/** Function that releases the given capabilities. */
#define REGPU_RELEASE(...) \
    REGPU_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/** Function that acquires the capability only when returning @p ret. */
#define REGPU_TRY_ACQUIRE(...) \
    REGPU_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/** Function callable only with the given capabilities NOT held (the
 *  public entry points of self-locking classes). */
#define REGPU_EXCLUDES(...) \
    REGPU_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/** Return value is a reference to a @p x -guarded object. */
#define REGPU_RETURN_CAPABILITY(x) \
    REGPU_THREAD_ANNOTATION__(lock_returned(x))

/** Escape hatch: disables the analysis for one function. Every use
 *  needs a comment explaining why the discipline cannot be expressed. */
#define REGPU_NO_THREAD_SAFETY_ANALYSIS \
    REGPU_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace regpu
{

/**
 * std::mutex with the capability attribute the analysis needs.
 * Same semantics and cost; never copyable/movable (std::mutex is not).
 */
class REGPU_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;

    void lock() REGPU_ACQUIRE() { m.lock(); }
    void unlock() REGPU_RELEASE() { m.unlock(); }
    bool tryLock() REGPU_TRY_ACQUIRE(true) { return m.try_lock(); }

  private:
    std::mutex m;
};

/**
 * RAII critical section over a regpu::Mutex (the std::lock_guard
 * shape, visible to the analysis). Non-copyable; the guarded region
 * is the guard's lexical scope.
 */
class REGPU_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &_mutex) REGPU_ACQUIRE(_mutex)
        : mutex(_mutex)
    {
        mutex.lock();
    }

    ~MutexLock() REGPU_RELEASE() { mutex.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mutex;
};

} // namespace regpu

#endif // REGPU_COMMON_THREAD_ANNOTATIONS_HH
