#include "common/logging.hh"

#include "common/thread_annotations.hh"

namespace regpu
{

namespace
{

/**
 * Serializes every emitted line (and guards the inform gate): workers
 * of a ParallelRunner pool — and soon the intra-run tile pool — warn()
 * concurrently, and interleaved partial lines would corrupt CI logs.
 * The discipline is compile-enforced under clang -Wthread-safety.
 */
Mutex logMutex;
bool informEnabled REGPU_GUARDED_BY(logMutex) = true;

} // namespace

void
setInformEnabled(bool enabled)
{
    MutexLock lock(logMutex);
    informEnabled = enabled;
}

namespace log_detail
{

void
emit(const char *level, const std::string &msg)
{
    MutexLock lock(logMutex);
    if (std::string(level) == "info" && !informEnabled)
        return;
    std::fprintf(stderr, "[%s] %s\n", level, msg.c_str());
}

} // namespace log_detail

} // namespace regpu
