#include "common/logging.hh"

#include <atomic>

namespace regpu
{

namespace
{
std::atomic<bool> informEnabled{true};
} // namespace

void
setInformEnabled(bool enabled)
{
    informEnabled.store(enabled);
}

namespace log_detail
{

void
emit(const char *level, const std::string &msg)
{
    if (std::string(level) == "info" && !informEnabled.load())
        return;
    std::fprintf(stderr, "[%s] %s\n", level, msg.c_str());
}

} // namespace log_detail

} // namespace regpu
