/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All scene/texture/mesh generation draws from this generator so that
 * every experiment is bit-reproducible across runs and machines
 * (std::mt19937 distributions are not portable across standard
 * libraries; we implement our own).
 */

#ifndef REGPU_COMMON_RNG_HH
#define REGPU_COMMON_RNG_HH

#include "common/types.hh"

namespace regpu
{

/**
 * xoshiro256** deterministic generator with portable helper
 * distributions.
 */
class Rng
{
  public:
    /** Seed via splitmix64 expansion so any u64 seed is acceptable. */
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull)
    {
        u64 x = seed;
        for (auto &word : state) {
            x += 0x9e3779b97f4a7c15ull;
            u64 z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit draw. */
    u64
    next()
    {
        const u64 result = rotl(state[1] * 5, 7) * 9;
        const u64 t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform in [0, bound). bound == 0 returns 0. */
    u64
    nextBounded(u64 bound)
    {
        if (bound == 0)
            return 0;
        // Rejection sampling to avoid modulo bias.
        const u64 threshold = (~bound + 1) % bound;
        while (true) {
            u64 r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    i64
    nextRange(i64 lo, i64 hi)
    {
        if (hi <= lo)
            return lo;
        return lo + static_cast<i64>(
            nextBounded(static_cast<u64>(hi - lo) + 1));
    }

    /** Uniform float in [0, 1). */
    float
    nextFloat()
    {
        return static_cast<float>(next() >> 40) * (1.0f / 16777216.0f);
    }

    /** Uniform float in [lo, hi). */
    float
    nextFloatRange(float lo, float hi)
    {
        return lo + (hi - lo) * nextFloat();
    }

    /** Bernoulli draw with probability p. */
    bool
    nextBool(float p = 0.5f)
    {
        return nextFloat() < p;
    }

  private:
    static u64
    rotl(u64 x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    u64 state[4];
};

} // namespace regpu

#endif // REGPU_COMMON_RNG_HH
