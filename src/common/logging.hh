/**
 * @file
 * gem5-style status/error reporting: panic(), fatal(), warn(), inform().
 *
 * panic() flags a simulator bug (aborts); fatal() flags a user error
 * (clean exit); warn()/inform() report conditions without stopping.
 */

#ifndef REGPU_COMMON_LOGGING_HH
#define REGPU_COMMON_LOGGING_HH

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace regpu
{

namespace log_detail
{

/** Assemble a message from streamable parts. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

void emit(const char *level, const std::string &msg);

/** warnOnce() backend: fire only on the first exchange of the
 *  call-site flag (thread-safe; later racers see true and skip even
 *  the message assembly). */
template <typename... Args>
void
warnOnceFire(std::atomic<bool> &fired, Args &&...args)
{
    if (!fired.exchange(true, std::memory_order_relaxed))
        emit("warn", concat(args...));
}

} // namespace log_detail

/** Report an internal simulator bug and abort. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    log_detail::emit("panic", log_detail::concat(args...));
    std::abort();
}

/** Report an unrecoverable user/configuration error and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    log_detail::emit("fatal", log_detail::concat(args...));
    std::exit(1);
}

/** Report a suspicious-but-survivable condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    log_detail::emit("warn", log_detail::concat(args...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args &&...args)
{
    log_detail::emit("info", log_detail::concat(args...));
}

/** Enable/disable inform() output (benches silence it). Thread-safe:
 *  the gate is guarded by the same annotated mutex that serializes
 *  emit(), so toggling races no in-flight line (logging.cc). */
void setInformEnabled(bool enabled);

/**
 * warn() that fires at most once per call site for the process
 * lifetime (keyed by the call site's static flag, thread-safe). Use
 * for per-frame/per-tile diagnostics that would otherwise repeat
 * thousands of identical lines across a sweep or replay.
 *
 * Concurrency: the call-site flag is a std::atomic exchanged outside
 * any lock — the sanctioned annotation-free shared-state pattern
 * (common/thread_annotations.hh); losers of the race skip even the
 * message assembly. The eventual emit() serializes on the annotated
 * logging mutex like every other line.
 */
#define warnOnce(...)                                                       \
    do {                                                                    \
        static std::atomic<bool> regpuWarnOnceFired{false};                 \
        ::regpu::log_detail::warnOnceFire(regpuWarnOnceFired,               \
                                          __VA_ARGS__);                     \
    } while (0)

/** panic() unless the invariant holds. */
#define REGPU_ASSERT(cond, ...)                                             \
    do {                                                                    \
        if (!(cond))                                                        \
            ::regpu::panic("assertion failed: ", #cond, " ", ##__VA_ARGS__);\
    } while (0)

} // namespace regpu

#endif // REGPU_COMMON_LOGGING_HH
