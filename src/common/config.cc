#include "common/config.hh"

namespace regpu
{

const char *
techniqueName(Technique t)
{
    switch (t) {
      case Technique::Baseline:
        return "Baseline";
      case Technique::RenderingElimination:
        return "RE";
      case Technique::TransactionElimination:
        return "TE";
      case Technique::FragmentMemoization:
        return "Memo";
    }
    return "?";
}

void
GpuConfig::print(std::ostream &os) const
{
    os << "GPU configuration (Table I)\n"
       << "  clock           : " << frequencyHz / 1e6 << " MHz, "
       << voltage << " V, " << technologyNm << " nm\n"
       << "  screen          : " << screenWidth << "x" << screenHeight
       << " (" << tilesX() << "x" << tilesY() << " tiles of "
       << tileWidth << "x" << tileHeight << ")\n"
       << "  dram            : " << dramMinLatency << "-" << dramMaxLatency
       << " cycles, " << dramBytesPerCycle << " B/cycle\n"
       << "  vertex cache    : " << vertexCache.sizeBytes / KiB << " KB\n"
       << "  texture caches  : " << numTextureCaches << " x "
       << textureCache.sizeBytes / KiB << " KB\n"
       << "  tile cache      : " << tileCache.sizeBytes / KiB << " KB\n"
       << "  L2 cache        : " << l2Cache.sizeBytes / KiB << " KB\n"
       << "  processors      : " << numVertexProcessors << " vertex, "
       << numFragmentProcessors << " fragment\n"
       << "  technique       : " << techniqueName(technique) << "\n"
       << "  signature buffer: " << signatureBufferBytes() / 1024.0
       << " KB\n";
}

} // namespace regpu
