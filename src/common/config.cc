#include "common/config.hh"

#include "common/logging.hh"

namespace regpu
{

const char *
techniqueName(Technique t)
{
    switch (t) {
      case Technique::Baseline:
        return "Baseline";
      case Technique::RenderingElimination:
        return "RE";
      case Technique::TransactionElimination:
        return "TE";
      case Technique::FragmentMemoization:
        return "Memo";
    }
    return "?";
}

void
validateMemoLutGeometry(u32 entries, u32 ways, const char *context)
{
    if (ways == 0)
        fatal(context, ": memo LUT ways must be >= 1 (got 0)");
    if (entries < ways)
        fatal(context, ": memo LUT entries (", entries,
              ") must be >= ways (", ways, ")");
    if (entries % ways != 0)
        fatal(context, ": memo LUT entries (", entries,
              ") must be a multiple of ways (", ways, ")");
}

u64
validateCacheGeometry(const CacheParams &p)
{
    if (p.lineBytes == 0)
        fatal("cache '", p.name, "': lineBytes must be >= 1 (got 0)");
    if (p.ways == 0)
        fatal("cache '", p.name, "': ways must be >= 1 (got 0)");
    const u64 setBytes = static_cast<u64>(p.lineBytes) * p.ways;
    const u64 numSets = p.sizeBytes / setBytes;
    if (numSets == 0)
        fatal("cache '", p.name, "': sizeBytes (", p.sizeBytes,
              ") smaller than one set (", setBytes, " B)");
    if ((numSets & (numSets - 1)) != 0)
        fatal("cache '", p.name, "': set count must be a power of two "
              "(got ", numSets, " sets from ", p.sizeBytes, " B / ",
              p.ways, " ways x ", p.lineBytes, " B lines)");
    return numSets;
}

void
GpuConfig::validate() const
{
    if (tileWidth == 0 || tileHeight == 0)
        fatal("GpuConfig: tile dimensions must be non-zero (got ",
              tileWidth, "x", tileHeight, ")");
    if (screenWidth == 0 || screenHeight == 0)
        fatal("GpuConfig: screen dimensions must be non-zero (got ",
              screenWidth, "x", screenHeight, ")");
    validateMemoLutGeometry(memoLutEntries, memoLutWays, "GpuConfig");
    for (const CacheParams *p :
         {&vertexCache, &textureCache, &tileCache, &l2Cache,
          &colorBuffer, &depthBuffer})
        validateCacheGeometry(*p);
    if (numTextureCaches == 0)
        fatal("GpuConfig: numTextureCaches must be >= 1 (got 0)");
    if (dramBytesPerCycle == 0)
        fatal("GpuConfig: dramBytesPerCycle must be >= 1 (got 0)");
    if (dramQueueEntries == 0)
        fatal("GpuConfig: dramQueueEntries must be >= 1 (got 0)");
    if (texelMissesInFlight == 0)
        fatal("GpuConfig: texelMissesInFlight must be >= 1 (got 0)");
}

void
GpuConfig::print(std::ostream &os) const
{
    os << "GPU configuration (Table I)\n"
       << "  clock           : " << frequencyHz / 1e6 << " MHz, "
       << voltage << " V, " << technologyNm << " nm\n"
       << "  screen          : " << screenWidth << "x" << screenHeight
       << " (" << tilesX() << "x" << tilesY() << " tiles of "
       << tileWidth << "x" << tileHeight << ")\n"
       << "  dram            : " << dramMinLatency << "-" << dramMaxLatency
       << " cycles, " << dramBytesPerCycle << " B/cycle, "
       << dramQueueEntries << "-entry queue\n"
       << "  texel MLP       : " << texelMissesInFlight
       << " misses in flight\n"
       << "  vertex cache    : " << vertexCache.sizeBytes / KiB << " KB\n"
       << "  texture caches  : " << numTextureCaches << " x "
       << textureCache.sizeBytes / KiB << " KB\n"
       << "  tile cache      : " << tileCache.sizeBytes / KiB << " KB\n"
       << "  L2 cache        : " << l2Cache.sizeBytes / KiB << " KB\n"
       << "  processors      : " << numVertexProcessors << " vertex, "
       << numFragmentProcessors << " fragment\n"
       << "  technique       : " << techniqueName(technique) << "\n"
       << "  signature buffer: " << signatureBufferBytes() / 1024.0
       << " KB\n";
}

} // namespace regpu
