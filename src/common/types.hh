/**
 * @file
 * Fundamental fixed-width types and units used across the simulator.
 */

#ifndef REGPU_COMMON_TYPES_HH
#define REGPU_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace regpu
{

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** Simulated memory address (byte granularity). */
using Addr = u64;

/** Simulated clock cycles. */
using Cycles = u64;

/** Simulated energy in picojoules. */
using PicoJoules = double;

/** Convenience literals for structure sizes. */
constexpr u64 KiB = 1024;
constexpr u64 MiB = 1024 * KiB;

/** Identifier of a screen tile (row-major index into the tile grid). */
using TileId = u32;

/** Sentinel for "no tile". */
constexpr TileId invalidTile = ~TileId{0};

} // namespace regpu

#endif // REGPU_COMMON_TYPES_HH
