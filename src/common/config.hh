/**
 * @file
 * GPU configuration mirroring Table I of the paper (ARM Mali-450-like
 * baseline) plus switches for the redundancy-elimination techniques.
 */

#ifndef REGPU_COMMON_CONFIG_HH
#define REGPU_COMMON_CONFIG_HH

#include <ostream>
#include <string>

#include "common/types.hh"

namespace regpu
{

/** Geometry of one cache (see Table I). */
struct CacheParams
{
    std::string name;
    u32 lineBytes = 64;
    u32 ways = 2;
    u32 sizeBytes = 4 * KiB;
    u32 banks = 1;
    Cycles hitLatency = 1;
};

/** Which redundancy-elimination technique drives a simulation. */
enum class Technique
{
    Baseline,              //!< plain TBR pipeline
    RenderingElimination,  //!< this paper: tile-input signatures
    TransactionElimination,//!< ARM TE: color signatures at flush
    FragmentMemoization,   //!< ISCA'14 PFR + fragment memoization
};

/** Printable name of a technique. */
const char *techniqueName(Technique t);

/**
 * Shared guard for memoization-LUT geometry: fatal() when @p ways is
 * zero, @p entries < @p ways, or @p entries is not a multiple of
 * @p ways (any of which would make the LUT's set-index arithmetic
 * undefined or silently lossy). @p context prefixes the error
 * message. Used by GpuConfig::validate and the MemoLut constructor.
 */
void validateMemoLutGeometry(u32 entries, u32 ways,
                             const char *context);

/**
 * Shared guard for cache geometry: fatal() when @p p has zero
 * lineBytes, zero ways, fewer bytes than one full set, or a
 * non-power-of-two set count (the set-index mask arithmetic would be
 * undefined or silently alias). Used by GpuConfig::validate and the
 * CacheModel constructor.
 * @return the (validated, power-of-two) number of sets
 */
u64 validateCacheGeometry(const CacheParams &p);

/**
 * Full simulation configuration. Defaults reproduce Table I.
 */
struct GpuConfig
{
    // --- Tech specs -----------------------------------------------------
    u64 frequencyHz = 400'000'000;  //!< 400 MHz
    double voltage = 1.0;           //!< 1 V
    u32 technologyNm = 32;          //!< 32 nm

    // --- Screen ---------------------------------------------------------
    u32 screenWidth = 1196;
    u32 screenHeight = 768;
    u32 tileWidth = 16;
    u32 tileHeight = 16;

    // --- Main memory ----------------------------------------------------
    Cycles dramMinLatency = 50;
    Cycles dramMaxLatency = 100;
    u32 dramBytesPerCycle = 4;      //!< dual-channel LPDDR3
    u64 dramSizeBytes = 1 * MiB * 1024; //!< 1 GB
    /** Memory-controller request queue depth: bounds how far the DRAM
     *  backlog can grow before the producer throttles (contention
     *  model in timing/dram.hh). */
    u32 dramQueueEntries = 16;

    /** Texture misses the fragment processors keep in flight (MLP):
     *  only 1/N of a texel miss's latency is exposed as stall. */
    u32 texelMissesInFlight = 4;

    // --- Queues (entries) -------------------------------------------------
    u32 vertexQueueEntries = 16;    //!< x2, 136 B/entry
    u32 triangleQueueEntries = 16;  //!< 388 B/entry
    u32 tileQueueEntries = 16;      //!< 388 B/entry
    u32 fragmentQueueEntries = 64;  //!< 233 B/entry

    // --- Caches -----------------------------------------------------------
    CacheParams vertexCache{"vertexCache", 64, 2, 4 * KiB, 1, 1};
    CacheParams textureCache{"textureCache", 64, 2, 8 * KiB, 1, 1};
    u32 numTextureCaches = 4;
    CacheParams tileCache{"tileCache", 64, 8, 128 * KiB, 8, 1};
    CacheParams l2Cache{"l2Cache", 64, 8, 256 * KiB, 8, 2};
    CacheParams colorBuffer{"colorBuffer", 64, 1, 1 * KiB, 1, 1};
    CacheParams depthBuffer{"depthBuffer", 64, 1, 1 * KiB, 1, 1};

    // --- Non-programmable stage throughputs -------------------------------
    u32 trianglesPerCycle = 1;      //!< primitive assembly
    u32 rasterAttrsPerCycle = 16;   //!< rasterizer
    u32 earlyZInFlightQuads = 32;

    // --- Programmable stages ----------------------------------------------
    u32 numVertexProcessors = 1;
    u32 numFragmentProcessors = 4;

    // --- Technique under evaluation ---------------------------------------
    Technique technique = Technique::Baseline;

    /**
     * Double buffering (paper §IV-C): when true the comparison frame is
     * the one occupying the Back Buffer (N vs N-2); when false, N vs N-1.
     */
    bool doubleBuffered = true;

    // --- Rendering Elimination parameters ---------------------------------
    u32 otQueueEntries = 16;        //!< Overlapped Tiles Queue depth
    u32 crcSubblockBytes = 8;       //!< Compute CRC unit sub-block size
    /** Periodically force-render every tile to refresh the Frame Buffer
     *  (0 disables the refresh). */
    u32 refreshPeriodFrames = 0;

    // --- Fragment Memoization parameters (paper §V-A) ---------------------
    u32 memoLutEntries = 2048;
    u32 memoLutWays = 4;

    // --- Derived helpers ---------------------------------------------------
    u32
    tilesX() const
    {
        return (screenWidth + tileWidth - 1) / tileWidth;
    }

    u32
    tilesY() const
    {
        return (screenHeight + tileHeight - 1) / tileHeight;
    }

    u32 numTiles() const { return tilesX() * tilesY(); }

    /** Tile id covering pixel (x, y). */
    TileId
    tileAt(u32 x, u32 y) const
    {
        return (y / tileHeight) * tilesX() + (x / tileWidth);
    }

    /** Signature Buffer footprint: 2 frames x numTiles x 4 B. */
    u64 signatureBufferBytes() const { return 2ull * numTiles() * 4; }

    /** Scale screen (and thus tile grid) keeping everything else. */
    void
    scaleResolution(u32 w, u32 h)
    {
        screenWidth = w;
        screenHeight = h;
    }

    /**
     * Fail fast (fatal) on configurations that would be undefined
     * behaviour downstream: zero tile/screen dimensions, memoization
     * LUT geometry with zero ways / fewer entries than ways / a
     * non-multiple entry count (MemoLut would compute `sig % 0`),
     * cache geometries with zero lineBytes / zero ways / a
     * non-power-of-two set count, a zero-bandwidth DRAM
     * (dramBytesPerCycle == 0 divides by zero in the transfer-cycle
     * math), a zero-depth DRAM queue, or zero texel MLP.
     */
    void validate() const;

    /** Print a Table I-style summary. */
    void print(std::ostream &os) const;
};

} // namespace regpu

#endif // REGPU_COMMON_CONFIG_HH
