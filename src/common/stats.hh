/**
 * @file
 * Lightweight named-statistics registry.
 *
 * Components register counters under hierarchical names
 * ("raster.fragmentsShaded"); experiments snapshot and diff them.
 */

#ifndef REGPU_COMMON_STATS_HH
#define REGPU_COMMON_STATS_HH

#include <map>
#include <ostream>
#include <string>

#include "common/types.hh"

namespace regpu
{

/**
 * A registry of named 64-bit counters and double-valued scalars.
 * Not a singleton: each simulator instance owns one so that parallel
 * experiments do not interfere.
 */
class StatRegistry
{
  public:
    /** Add to (creating if absent) a counter. */
    void
    inc(const std::string &name, u64 delta = 1)
    {
        counters[name] += delta;
    }

    /** Add to (creating if absent) a floating-point scalar. */
    void
    add(const std::string &name, double delta)
    {
        scalars[name] += delta;
    }

    /** Read a counter (0 if absent). */
    u64
    counter(const std::string &name) const
    {
        auto it = counters.find(name);
        return it == counters.end() ? 0 : it->second;
    }

    /** Read a scalar (0.0 if absent). */
    double
    scalar(const std::string &name) const
    {
        auto it = scalars.find(name);
        return it == scalars.end() ? 0.0 : it->second;
    }

    /** Reset everything to zero. */
    void
    reset()
    {
        counters.clear();
        scalars.clear();
    }

    /** Dump all stats, sorted by name. */
    void
    dump(std::ostream &os) const
    {
        for (const auto &[name, val] : counters)
            os << name << " " << val << "\n";
        for (const auto &[name, val] : scalars)
            os << name << " " << val << "\n";
    }

    const std::map<std::string, u64> &allCounters() const
    { return counters; }
    const std::map<std::string, double> &allScalars() const
    { return scalars; }

  private:
    std::map<std::string, u64> counters;
    std::map<std::string, double> scalars;
};

} // namespace regpu

#endif // REGPU_COMMON_STATS_HH
