/**
 * @file
 * Lightweight named-statistics registry.
 *
 * Components register counters under hierarchical names
 * ("raster.fragmentsShaded"); experiments snapshot and diff them.
 */

#ifndef REGPU_COMMON_STATS_HH
#define REGPU_COMMON_STATS_HH

#include <map>
#include <ostream>
#include <string>
#include <string_view>

#include "common/types.hh"

namespace regpu
{

/**
 * A registry of named 64-bit counters and double-valued scalars.
 * Not a singleton: each simulator instance owns one so that parallel
 * experiments do not interfere.
 *
 * Lookups are heterogeneous (string_view against the transparent
 * std::less<> comparator), so updating an existing counter from a
 * string literal never materialises a temporary std::string: inc() on
 * the per-tile/per-primitive hot paths is allocation-free once a
 * counter exists.
 */
class StatRegistry
{
  public:
    /** Add to (creating if absent) a counter. */
    void
    inc(std::string_view name, u64 delta = 1)
    {
        auto it = counters.find(name);
        if (it == counters.end())
            counters.emplace(std::string(name), delta);
        else
            it->second += delta;
    }

    /** Add to (creating if absent) a floating-point scalar. */
    void
    add(std::string_view name, double delta)
    {
        auto it = scalars.find(name);
        if (it == scalars.end())
            scalars.emplace(std::string(name), delta);
        else
            it->second += delta;
    }

    /** Read a counter (0 if absent). */
    u64
    counter(std::string_view name) const
    {
        auto it = counters.find(name);
        return it == counters.end() ? 0 : it->second;
    }

    /** Read a scalar (0.0 if absent). */
    double
    scalar(std::string_view name) const
    {
        auto it = scalars.find(name);
        return it == scalars.end() ? 0.0 : it->second;
    }

    /** Reset everything to zero. */
    void
    reset()
    {
        counters.clear();
        scalars.clear();
    }

    /**
     * Visit every counter in name order: fn(std::string_view, u64).
     * The read-only iteration surface exporters build on (the obs
     * frame time-series, result merging, dumping) — no friend access,
     * no full-map copies.
     */
    template <typename Fn>
    void
    forEachCounter(Fn &&fn) const
    {
        for (const auto &[name, val] : counters)
            fn(std::string_view(name), val);
    }

    /** Visit every scalar in name order: fn(std::string_view, double). */
    template <typename Fn>
    void
    forEachScalar(Fn &&fn) const
    {
        for (const auto &[name, val] : scalars)
            fn(std::string_view(name), val);
    }

    /** Visit counters whose name starts with @p prefix (name order;
     *  O(log n) seek to the first match, then contiguous). */
    template <typename Fn>
    void
    forEachCounterPrefixed(std::string_view prefix, Fn &&fn) const
    {
        for (auto it = counters.lower_bound(prefix);
             it != counters.end()
             && std::string_view(it->first)
                        .substr(0, prefix.size()) == prefix;
             ++it)
            fn(std::string_view(it->first), it->second);
    }

    /** Visit scalars whose name starts with @p prefix. */
    template <typename Fn>
    void
    forEachScalarPrefixed(std::string_view prefix, Fn &&fn) const
    {
        for (auto it = scalars.lower_bound(prefix);
             it != scalars.end()
             && std::string_view(it->first)
                        .substr(0, prefix.size()) == prefix;
             ++it)
            fn(std::string_view(it->first), it->second);
    }

    /** Dump all stats, sorted by name. */
    void
    dump(std::ostream &os) const
    {
        forEachCounter([&os](std::string_view name, u64 val) {
            os << name << " " << val << "\n";
        });
        forEachScalar([&os](std::string_view name, double val) {
            os << name << " " << val << "\n";
        });
    }

    const std::map<std::string, u64, std::less<>> &allCounters() const
    { return counters; }
    const std::map<std::string, double, std::less<>> &allScalars() const
    { return scalars; }

  private:
    std::map<std::string, u64, std::less<>> counters;
    std::map<std::string, double, std::less<>> scalars;
};

} // namespace regpu

#endif // REGPU_COMMON_STATS_HH
