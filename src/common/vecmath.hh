/**
 * @file
 * Small fixed-size vector/matrix math used by the functional pipeline.
 */

#ifndef REGPU_COMMON_VECMATH_HH
#define REGPU_COMMON_VECMATH_HH

#include <cmath>

#include "common/logging.hh"
#include "common/types.hh"

namespace regpu
{

/** 2-component float vector. */
struct Vec2
{
    float x = 0, y = 0;

    constexpr Vec2() = default;
    constexpr Vec2(float x_, float y_) : x(x_), y(y_) {}

    constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
    constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
    constexpr Vec2 operator*(float s) const { return {x * s, y * s}; }
    constexpr bool operator==(const Vec2 &) const = default;
};

/** 3-component float vector. */
struct Vec3
{
    float x = 0, y = 0, z = 0;

    constexpr Vec3() = default;
    constexpr Vec3(float x_, float y_, float z_) : x(x_), y(y_), z(z_) {}

    constexpr Vec3 operator+(Vec3 o) const
    { return {x + o.x, y + o.y, z + o.z}; }
    constexpr Vec3 operator-(Vec3 o) const
    { return {x - o.x, y - o.y, z - o.z}; }
    constexpr Vec3 operator*(float s) const { return {x * s, y * s, z * s}; }
    constexpr bool operator==(const Vec3 &) const = default;

    constexpr float dot(Vec3 o) const { return x*o.x + y*o.y + z*o.z; }

    constexpr Vec3
    cross(Vec3 o) const
    {
        return {y*o.z - z*o.y, z*o.x - x*o.z, x*o.y - y*o.x};
    }

    float length() const { return std::sqrt(dot(*this)); }

    Vec3
    normalized() const
    {
        float len = length();
        return len > 0 ? *this * (1.0f / len) : Vec3{};
    }
};

/** 4-component float vector (homogeneous position / RGBA color). */
struct Vec4
{
    float x = 0, y = 0, z = 0, w = 0;

    constexpr Vec4() = default;
    constexpr Vec4(float x_, float y_, float z_, float w_)
        : x(x_), y(y_), z(z_), w(w_) {}
    constexpr Vec4(Vec3 v, float w_) : x(v.x), y(v.y), z(v.z), w(w_) {}

    constexpr Vec4 operator+(Vec4 o) const
    { return {x + o.x, y + o.y, z + o.z, w + o.w}; }
    constexpr Vec4 operator-(Vec4 o) const
    { return {x - o.x, y - o.y, z - o.z, w - o.w}; }
    constexpr Vec4 operator*(float s) const
    { return {x * s, y * s, z * s, w * s}; }
    constexpr bool operator==(const Vec4 &) const = default;

    constexpr float dot(Vec4 o) const
    { return x*o.x + y*o.y + z*o.z + w*o.w; }

    constexpr Vec3 xyz() const { return {x, y, z}; }

    constexpr float
    operator[](int i) const
    {
        return i == 0 ? x : i == 1 ? y : i == 2 ? z : w;
    }
};

/** Linear interpolation. */
constexpr float lerp(float a, float b, float t) { return a + (b - a) * t; }
constexpr Vec2 lerp(Vec2 a, Vec2 b, float t) { return a + (b - a) * t; }
constexpr Vec3 lerp(Vec3 a, Vec3 b, float t) { return a + (b - a) * t; }
constexpr Vec4 lerp(Vec4 a, Vec4 b, float t) { return a + (b - a) * t; }

/** Clamp helper. */
constexpr float
clampf(float v, float lo, float hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

/**
 * Column-major 4x4 matrix (OpenGL convention): m[col][row].
 */
struct Mat4
{
    float m[4][4] = {};

    /** Identity matrix. */
    static constexpr Mat4
    identity()
    {
        Mat4 r;
        for (int i = 0; i < 4; i++)
            r.m[i][i] = 1.0f;
        return r;
    }

    /** Uniform/non-uniform scale. */
    static constexpr Mat4
    scale(float sx, float sy, float sz)
    {
        Mat4 r;
        r.m[0][0] = sx;
        r.m[1][1] = sy;
        r.m[2][2] = sz;
        r.m[3][3] = 1.0f;
        return r;
    }

    /** Translation. */
    static constexpr Mat4
    translate(float tx, float ty, float tz)
    {
        Mat4 r = identity();
        r.m[3][0] = tx;
        r.m[3][1] = ty;
        r.m[3][2] = tz;
        return r;
    }

    /** Rotation about Z (radians). */
    static Mat4
    rotateZ(float rad)
    {
        Mat4 r = identity();
        float c = std::cos(rad), s = std::sin(rad);
        r.m[0][0] = c; r.m[0][1] = s;
        r.m[1][0] = -s; r.m[1][1] = c;
        return r;
    }

    /** Rotation about Y (radians). */
    static Mat4
    rotateY(float rad)
    {
        Mat4 r = identity();
        float c = std::cos(rad), s = std::sin(rad);
        r.m[0][0] = c; r.m[0][2] = -s;
        r.m[2][0] = s; r.m[2][2] = c;
        return r;
    }

    /** Rotation about X (radians). */
    static Mat4
    rotateX(float rad)
    {
        Mat4 r = identity();
        float c = std::cos(rad), s = std::sin(rad);
        r.m[1][1] = c; r.m[1][2] = s;
        r.m[2][1] = -s; r.m[2][2] = c;
        return r;
    }

    /** Right-handed perspective projection (like gluPerspective). */
    static Mat4
    perspective(float fovyRad, float aspect, float zNear, float zFar)
    {
        REGPU_ASSERT(zFar > zNear && zNear > 0);
        Mat4 r;
        float f = 1.0f / std::tan(fovyRad / 2.0f);
        r.m[0][0] = f / aspect;
        r.m[1][1] = f;
        r.m[2][2] = (zFar + zNear) / (zNear - zFar);
        r.m[2][3] = -1.0f;
        r.m[3][2] = 2.0f * zFar * zNear / (zNear - zFar);
        return r;
    }

    /** Orthographic projection (like glOrtho). */
    static Mat4
    ortho(float l, float r_, float b, float t, float n, float f)
    {
        Mat4 r;
        r.m[0][0] = 2.0f / (r_ - l);
        r.m[1][1] = 2.0f / (t - b);
        r.m[2][2] = -2.0f / (f - n);
        r.m[3][0] = -(r_ + l) / (r_ - l);
        r.m[3][1] = -(t + b) / (t - b);
        r.m[3][2] = -(f + n) / (f - n);
        r.m[3][3] = 1.0f;
        return r;
    }

    /** Camera look-at view matrix. */
    static Mat4
    lookAt(Vec3 eye, Vec3 center, Vec3 up)
    {
        Vec3 fwd = (center - eye).normalized();
        Vec3 side = fwd.cross(up).normalized();
        Vec3 u = side.cross(fwd);
        Mat4 r = identity();
        r.m[0][0] = side.x; r.m[1][0] = side.y; r.m[2][0] = side.z;
        r.m[0][1] = u.x;    r.m[1][1] = u.y;    r.m[2][1] = u.z;
        r.m[0][2] = -fwd.x; r.m[1][2] = -fwd.y; r.m[2][2] = -fwd.z;
        r.m[3][0] = -side.dot(eye);
        r.m[3][1] = -u.dot(eye);
        r.m[3][2] = fwd.dot(eye);
        return r;
    }

    /** Matrix product: this * o. */
    Mat4
    operator*(const Mat4 &o) const
    {
        Mat4 r;
        for (int c = 0; c < 4; c++) {
            for (int row = 0; row < 4; row++) {
                float acc = 0;
                for (int k = 0; k < 4; k++)
                    acc += m[k][row] * o.m[c][k];
                r.m[c][row] = acc;
            }
        }
        return r;
    }

    /** Matrix-vector product. */
    Vec4
    operator*(Vec4 v) const
    {
        Vec4 r;
        r.x = m[0][0]*v.x + m[1][0]*v.y + m[2][0]*v.z + m[3][0]*v.w;
        r.y = m[0][1]*v.x + m[1][1]*v.y + m[2][1]*v.z + m[3][1]*v.w;
        r.z = m[0][2]*v.x + m[1][2]*v.y + m[2][2]*v.z + m[3][2]*v.w;
        r.w = m[0][3]*v.x + m[1][3]*v.y + m[2][3]*v.z + m[3][3]*v.w;
        return r;
    }

    bool operator==(const Mat4 &) const = default;
};

} // namespace regpu

#endif // REGPU_COMMON_VECMATH_HH
