#include "timing/memsystem.hh"

#include <sstream>

#include "obs/obs.hh"

namespace regpu
{

MemSystem::MemSystem(const GpuConfig &_config)
    : config(_config), dram_(_config), l2(_config.l2Cache),
      vertex_(_config.vertexCache, TrafficClass::Geometry),
      tile_(_config.tileCache, TrafficClass::Primitives)
{
    for (u32 i = 0; i < config.numTextureCaches; i++)
        texels_.emplace_back(config.textureCache, TrafficClass::Texels);

    // Level links (Fig. 4): vertex and texture caches miss into the
    // shared L2; the Tile Cache streams the Parameter Buffer straight
    // from DRAM; the L2 backs everything else.
    l2.linkDram(&dram_);
    tile_.cache.linkDram(&dram_);
    vertex_.cache.linkNextLevel(&l2);
    for (auto &fe : texels_)
        fe.cache.linkNextLevel(&l2);
}

void
MemSystem::vertexFetch(Addr addr, u32 bytes)
{
    CacheModel::RangeOutcome r = vertex_.read(addr, bytes);
    frame.vertexMisses += r.missLines;
}

void
MemSystem::parameterWrite(Addr addr, u32 bytes)
{
    if (bytes == 0)
        return;
    // The PLB write-combines into full lines through the L2:
    // write-allocate without a refill fetch. The bytes reach DRAM as
    // dirty writebacks when the lines are evicted - charging DRAM
    // here as well would double-count every Parameter Buffer byte.
    pbWriteBytes_ += bytes;
    l2.accessRange(addr, bytes, true, TrafficClass::Geometry);
}

void
MemSystem::parameterRead(Addr addr, u32 bytes)
{
    tile_.read(addr, bytes);
}

void
MemSystem::texelFetch(u32 textureCacheIndex, Addr addr)
{
    StreamFrontEnd &fe = texels_[textureCacheIndex % texels_.size()];
    CacheAccessResult r = fe.touch(addr);
    if (!r.hit) {
        frame.texelMisses++;
        // The fragment processors keep several misses in flight
        // (config.texelMissesInFlight); charge only the exposed
        // fraction of the miss latency. The latency deliberately
        // includes DRAM queueing delay: texel stalls compete inside
        // the same per-tile max(compute, bandwidth) that models the
        // contended bus, so this stays a single charge - unlike the
        // geometry stage, which has no bandwidth term and is charged
        // uncontended row latency instead (see averageRowLatency).
        frame.texelStallCycles += r.latency / config.texelMissesInFlight;
    }
}

void
MemSystem::colorFlush(Addr addr, u32 bytes)
{
    if (bytes == 0)
        return;
    // Non-allocating streaming write: a whole tile heads straight to
    // the Frame Buffer; caching it would only pollute the L2.
    colorFlushBytes_ += bytes;
    dram_.access(addr, bytes, TrafficClass::Colors, DramDir::Write);
}

void
MemSystem::colorRead(Addr addr, u32 bytes)
{
    if (bytes == 0)
        return;
    // Frame Buffer read-back is a demand read through the shared L2
    // (Fig. 4), not a streaming write like the flush path.
    colorReadBytes_ += bytes;
    l2.accessRange(addr, bytes, false, TrafficClass::Colors);
}

MemFrameSummary
MemSystem::endFrame()
{
    ObsScope span("mem", "endFrame");
    frame.dramDelta = dram_.traffic().since(lastFrameTraffic_);
    lastFrameTraffic_ = dram_.traffic();

    MemFrameSummary s = frame;
    frame = MemFrameSummary{};
    // The Parameter Buffer is rebuilt from scratch every frame.
    tile_.cache.invalidateAll();
    // The request queue empties across the frame boundary.
    dram_.drain();
    return s;
}

void
MemSystem::flushResident()
{
    ObsScope span("mem", "flushResident");
    // Only the L2 and Tile Cache can hold dirty lines (the L1 vertex
    // and texture caches are read-only streams); invalidateAll
    // writes dirty victims downstream before clearing.
    l2.invalidateAll();
    tile_.cache.invalidateAll();
    dram_.drain();
}

ConservationReport
MemSystem::checkConservation() const
{
    ConservationReport report;
    std::ostringstream detail;
    auto check = [&](const char *what, TrafficClass cls, u64 actual,
                     u64 expected) {
        if (actual != expected) {
            report.violations++;
            detail << what << "[" << static_cast<int>(cls)
                   << "]: " << actual << " != expected " << expected
                   << "\n";
        }
    };

    for (int i = 0; i < 4; i++) {
        const TrafficClass cls = static_cast<TrafficClass>(i);

        // L2 boundary: demand placed on the L2 equals what the L1
        // front-ends forwarded (fills + writebacks) plus the direct
        // streams routed through it.
        u64 l1Forwarded = vertex_.cache.fillBytes(cls)
            + vertex_.cache.writebackBytes(cls);
        for (const auto &fe : texels_)
            l1Forwarded += fe.cache.fillBytes(cls)
                + fe.cache.writebackBytes(cls);
        if (cls == TrafficClass::Geometry)
            l1Forwarded += pbWriteBytes_;
        if (cls == TrafficClass::Colors)
            l1Forwarded += colorReadBytes_;
        check("l2.demandBytes", cls, l2.demandBytes(cls), l1Forwarded);

        // DRAM boundary, reads: every read byte is an L2 or Tile
        // Cache refill.
        check("dram.reads", cls, dram_.traffic().reads(cls),
              l2.fillBytes(cls) + tile_.cache.fillBytes(cls));

        // DRAM boundary, writebacks: every writeback byte left a
        // dirty line in the L2 or Tile Cache.
        check("dram.writebacks", cls, dram_.traffic().writebacks(cls),
              l2.writebackBytes(cls) + tile_.cache.writebackBytes(cls));

        // DRAM boundary, streaming writes: color flushes only.
        check("dram.writes", cls, dram_.traffic().writes(cls),
              cls == TrafficClass::Colors ? colorFlushBytes_ : 0);
    }

    report.detail = detail.str();
    return report;
}

} // namespace regpu
