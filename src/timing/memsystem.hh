/**
 * @file
 * The full memory hierarchy of the baseline GPU (Fig. 4): vertex
 * cache, four texture caches, tile cache and L2, all backed by the
 * DRAM model. Implements the MemTraceSink interface the functional
 * pipeline drives.
 */

#ifndef REGPU_TIMING_MEMSYSTEM_HH
#define REGPU_TIMING_MEMSYSTEM_HH

#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "gpu/memiface.hh"
#include "timing/cache.hh"
#include "timing/dram.hh"

namespace regpu
{

/** Aggregate miss/stall summary for one frame (timing model input). */
struct MemFrameSummary
{
    u64 vertexMisses = 0;
    u64 texelMisses = 0;
    u64 tileCacheMisses = 0;
    u64 l2Misses = 0;
    Cycles texelStallCycles = 0; //!< latency-weighted, MLP-adjusted
};

/**
 * Memory hierarchy: per-stream L1s -> shared L2 -> DRAM.
 *
 * Color flushes stream through the L2 as non-allocating writes (a
 * whole tile per flush; the write path is bandwidth-bound). The
 * Parameter Buffer streams through the Tile Cache on reads and the L2
 * on writes, matching Fig. 4's port layout.
 */
class MemSystem : public MemTraceSink
{
  public:
    explicit MemSystem(const GpuConfig &config)
        : config(config), dram_(config),
          vertexCache(config.vertexCache), tileCache(config.tileCache),
          l2(config.l2Cache)
    {
        for (u32 i = 0; i < config.numTextureCaches; i++)
            textureCaches.emplace_back(config.textureCache);
    }

    // ---- MemTraceSink interface ----------------------------------------

    void
    vertexFetch(Addr addr, u32 bytes) override
    {
        u32 misses = vertexCache.accessRange(addr, bytes, false);
        frame.vertexMisses += misses;
        refill(addr, misses, TrafficClass::Geometry);
    }

    void
    parameterWrite(Addr addr, u32 bytes) override
    {
        // PLB write-combines into full lines through the L2.
        u32 wb = 0;
        u32 misses = l2.accessRange(addr, bytes, true, &wb);
        // Dirty PB lines eventually reach DRAM; charge them now.
        (void)misses;
        dram_.access(addr, bytes, TrafficClass::Geometry);
    }

    void
    parameterRead(Addr addr, u32 bytes) override
    {
        u32 misses = tileCache.accessRange(addr, bytes, false);
        frame.tileCacheMisses += misses;
        for (u32 m = 0; m < misses; m++) {
            // Tile Cache misses go to DRAM (Parameter Buffer region).
            dram_.access(addr + m * tileCache.params().lineBytes,
                         tileCache.params().lineBytes,
                         TrafficClass::Primitives);
        }
    }

    void
    texelFetch(u32 textureCacheIndex, Addr addr) override
    {
        CacheModel &tc = textureCaches[textureCacheIndex
                                       % textureCaches.size()];
        CacheAccessResult r = tc.access(addr, false);
        if (!r.hit) {
            frame.texelMisses++;
            // L1 miss -> L2; L2 miss -> DRAM.
            CacheAccessResult l2r = l2.access(addr, false);
            if (!l2r.hit) {
                frame.l2Misses++;
                Cycles lat = dram_.access(addr, l2.params().lineBytes,
                                          TrafficClass::Texels);
                // Four fragment processors keep ~4 misses in flight;
                // charge the exposed fraction of the latency.
                frame.texelStallCycles += lat / 4;
            } else {
                frame.texelStallCycles += l2.params().hitLatency;
            }
        }
    }

    void
    colorFlush(Addr addr, u32 bytes) override
    {
        dram_.access(addr, bytes, TrafficClass::Colors);
    }

    void
    colorRead(Addr addr, u32 bytes) override
    {
        dram_.access(addr, bytes, TrafficClass::Colors);
    }

    // ---- Frame bookkeeping ---------------------------------------------

    /** Snapshot and clear the per-frame summary. */
    MemFrameSummary
    endFrame()
    {
        MemFrameSummary s = frame;
        frame = MemFrameSummary{};
        // The Parameter Buffer is rebuilt from scratch every frame.
        tileCache.invalidateAll();
        return s;
    }

    DramModel &dram() { return dram_; }
    const DramModel &dram() const { return dram_; }
    CacheModel &vertexCacheRef() { return vertexCache; }
    CacheModel &tileCacheRef() { return tileCache; }
    CacheModel &l2Ref() { return l2; }
    std::vector<CacheModel> &textureCachesRef() { return textureCaches; }

    /** Total accesses across all on-chip caches (energy model). */
    u64
    totalCacheAccesses() const
    {
        u64 n = vertexCache.accesses() + tileCache.accesses()
            + l2.accesses();
        for (const auto &tc : textureCaches)
            n += tc.accesses();
        return n;
    }

  private:
    /** Refill @p misses lines from DRAM via the L2. */
    void
    refill(Addr addr, u32 misses, TrafficClass cls)
    {
        for (u32 m = 0; m < misses; m++) {
            Addr lineAddr = addr + m * 64;
            CacheAccessResult l2r = l2.access(lineAddr, false);
            if (!l2r.hit) {
                frame.l2Misses++;
                dram_.access(lineAddr, 64, cls);
            }
        }
    }

    const GpuConfig &config;
    DramModel dram_;
    CacheModel vertexCache;
    std::vector<CacheModel> textureCaches;
    CacheModel tileCache;
    CacheModel l2;
    MemFrameSummary frame;
};

} // namespace regpu

#endif // REGPU_TIMING_MEMSYSTEM_HH
