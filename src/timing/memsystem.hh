/**
 * @file
 * The full memory hierarchy of the baseline GPU (Fig. 4): vertex
 * cache, four texture caches, tile cache and L2, all backed by the
 * DRAM model. Implements the MemTraceSink interface the functional
 * pipeline drives.
 *
 * Structure: per-stream *front-ends* (one L1 + its traffic class +
 * its demand counters) over a shared L2 -> DRAM *back-end*. The
 * caches are level-linked (timing/cache.hh), so misses and dirty
 * writebacks propagate line-by-line at their actual addresses with
 * each level's own lineBytes; MemSystem itself only routes streams
 * and keeps the boundary byte counters the conservation check
 * compares:
 *
 *   vertex fetches   -> Vertex Cache  -> L2 -> DRAM   (Geometry)
 *   texel fetches    -> Texture Cache -> L2 -> DRAM   (Texels)
 *   PB reads         -> Tile Cache    ------> DRAM    (Primitives)
 *   PB writes        ------------------> L2 -> DRAM   (Geometry)
 *   color flushes    --------------- streaming writes (Colors)
 *   color read-backs ------------------> L2 -> DRAM   (Colors)
 *
 * Color flushes bypass the caches as non-allocating streaming writes
 * (a whole tile per flush; the write path is bandwidth-bound), which
 * is why they charge DRAM directly. Color read-backs are demand
 * reads and go through the L2 like every other read. Parameter
 * Buffer writes write-allocate into the L2 without a refill fetch
 * (the PLB write-combines full lines); their bytes reach DRAM as
 * dirty writebacks when the lines are evicted - not as an up-front
 * unconditional charge.
 */

#ifndef REGPU_TIMING_MEMSYSTEM_HH
#define REGPU_TIMING_MEMSYSTEM_HH

#include <string>
#include <vector>

#include "common/config.hh"
#include "gpu/memiface.hh"
#include "timing/cache.hh"
#include "timing/dram.hh"

namespace regpu
{

/** Aggregate miss/stall summary for one frame (timing model input). */
struct MemFrameSummary
{
    u64 vertexMisses = 0;
    u64 texelMisses = 0;
    Cycles texelStallCycles = 0; //!< latency-weighted, MLP-adjusted
    DramTraffic dramDelta;       //!< DRAM bytes this frame, by class/dir
};

/**
 * Result of MemSystem::checkConservation(): every byte the pipeline
 * pushed into the hierarchy must be accounted for exactly once at
 * each level boundary - no double-charging, no drops.
 */
struct ConservationReport
{
    u64 violations = 0;
    std::string detail; //!< human-readable description of mismatches

    bool ok() const { return violations == 0; }
};

/**
 * One per-stream L1 front-end: the cache plus the traffic class its
 * accesses are charged under. All byte accounting lives in the
 * CacheModel's own per-class counters - one source of truth for the
 * conservation check.
 */
class StreamFrontEnd
{
  public:
    StreamFrontEnd(const CacheParams &params, TrafficClass cls)
        : cache(params), cls_(cls)
    {}

    CacheModel::RangeOutcome
    read(Addr addr, u32 bytes)
    {
        return cache.accessRange(addr, bytes, false, cls_);
    }

    /** Single-line demand read (texel granularity). */
    CacheAccessResult
    touch(Addr addr)
    {
        return cache.access(addr, false, cls_);
    }

    CacheModel cache;

  private:
    TrafficClass cls_;
};

/**
 * Memory hierarchy: per-stream L1 front-ends -> shared L2 -> DRAM.
 */
class MemSystem : public MemTraceSink
{
  public:
    explicit MemSystem(const GpuConfig &config);

    // ---- MemTraceSink interface ----------------------------------------

    void vertexFetch(Addr addr, u32 bytes) override;
    void parameterWrite(Addr addr, u32 bytes) override;
    void parameterRead(Addr addr, u32 bytes) override;
    void texelFetch(u32 textureCacheIndex, Addr addr) override;
    void colorFlush(Addr addr, u32 bytes) override;
    void colorRead(Addr addr, u32 bytes) override;

    // ---- Frame bookkeeping ---------------------------------------------

    /** Snapshot and clear the per-frame summary. */
    MemFrameSummary endFrame();

    /**
     * End-of-run flush: write every resident dirty line back to DRAM
     * (the L2 can hold up to its full capacity in not-yet-evicted
     * Parameter Buffer bytes, which would otherwise vanish from the
     * writeback totals a short run reports).
     */
    void flushResident();

    /**
     * Verify byte conservation at every level boundary: the demand
     * each level received equals what its upstream levels forwarded,
     * and every DRAM byte traces back to exactly one fill, writeback
     * or stream. Violations mean a routing path charges twice or
     * drops bytes.
     */
    ConservationReport checkConservation() const;

    DramModel &dram() { return dram_; }
    const DramModel &dram() const { return dram_; }
    CacheModel &vertexCacheRef() { return vertex_.cache; }
    CacheModel &tileCacheRef() { return tile_.cache; }
    CacheModel &l2Ref() { return l2; }
    const CacheModel &l2Ref() const { return l2; }
    u32 numTextureCaches() const
    { return static_cast<u32>(texels_.size()); }
    CacheModel &textureCacheRef(u32 i) { return texels_[i].cache; }

    /** Total texture-cache accesses (energy model). */
    u64
    textureCacheAccesses() const
    {
        u64 n = 0;
        for (const auto &fe : texels_)
            n += fe.cache.accesses();
        return n;
    }

    /** Total accesses across all on-chip caches (energy model). */
    u64
    totalCacheAccesses() const
    {
        return vertex_.cache.accesses() + tile_.cache.accesses()
            + l2.accesses() + textureCacheAccesses();
    }

  private:
    const GpuConfig &config;
    DramModel dram_;
    CacheModel l2;
    StreamFrontEnd vertex_;
    std::vector<StreamFrontEnd> texels_;
    StreamFrontEnd tile_;
    // Direct-stream byte counters (conservation inputs).
    u64 pbWriteBytes_ = 0;    //!< parameterWrite bytes into the L2
    u64 colorReadBytes_ = 0;  //!< colorRead bytes into the L2
    u64 colorFlushBytes_ = 0; //!< colorFlush bytes streamed to DRAM
    MemFrameSummary frame;
    DramTraffic lastFrameTraffic_;
};

} // namespace regpu

#endif // REGPU_TIMING_MEMSYSTEM_HH
