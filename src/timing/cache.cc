#include "timing/cache.hh"

#include "common/logging.hh"

namespace regpu
{

CacheModel::CacheModel(const CacheParams &params)
    : params_(params), numSets(validateCacheGeometry(params)),
      sets(numSets)
{
    for (auto &set : sets)
        set.ways.resize(params.ways);
}

void
CacheModel::linkNextLevel(CacheModel *next)
{
    REGPU_ASSERT(dram_ == nullptr,
                 "cache already linked to DRAM: ", params_.name);
    next_ = next;
}

void
CacheModel::linkDram(DramModel *dram)
{
    REGPU_ASSERT(next_ == nullptr,
                 "cache already linked to a next level: ", params_.name);
    dram_ = dram;
}

void
CacheModel::propagateWriteback(Addr lineAddr, TrafficClass cls)
{
    writebackBytes_[static_cast<u8>(cls)] += params_.lineBytes;
    if (next_)
        next_->accessRange(lineAddr, params_.lineBytes, true, cls);
    else if (dram_)
        dram_->access(lineAddr, params_.lineBytes, cls,
                      DramDir::Writeback);
}

Cycles
CacheModel::propagateFill(Addr lineAddr, TrafficClass cls)
{
    fills_++;
    fillBytes_[static_cast<u8>(cls)] += params_.lineBytes;
    if (next_)
        return next_->accessRange(lineAddr, params_.lineBytes, false,
                                  cls).latency;
    if (dram_)
        return dram_->access(lineAddr, params_.lineBytes, cls,
                             DramDir::Read);
    return 0;
}

CacheAccessResult
CacheModel::access(Addr addr, bool write, TrafficClass cls)
{
    demandBytes_[static_cast<u8>(cls)] += params_.lineBytes;
    return accessLine(addr, write, cls);
}

CacheAccessResult
CacheModel::accessLine(Addr addr, bool write, TrafficClass cls)
{
    const Addr line = addr / params_.lineBytes;
    const u64 setIdx = line & (numSets - 1);
    const Addr tag = line >> __builtin_ctzll(numSets);
    Set &set = sets[setIdx];
    accesses_++;
    stamp++;

    CacheAccessResult result;
    result.latency = params_.hitLatency;

    for (Way &w : set.ways) {
        if (w.valid && w.tag == tag) {
            hits_++;
            w.lastUse = stamp;
            w.dirty |= write;
            result.hit = true;
            return result;
        }
    }

    // Miss: allocate over the LRU way.
    misses_++;
    Way *victim = &set.ways[0];
    for (Way &w : set.ways) {
        if (!w.valid) {
            victim = &w;
            break;
        }
        if (w.lastUse < victim->lastUse)
            victim = &w;
    }
    if (victim->valid && victim->dirty) {
        writebacks_++;
        result.writeback = true;
        // Reconstruct the victim's byte address from its tag: the
        // dirty data leaves at *its* address, not the requester's.
        const Addr victimLine =
            (victim->tag << __builtin_ctzll(numSets)) | setIdx;
        result.writebackAddr = victimLine * params_.lineBytes;
        propagateWriteback(result.writebackAddr, victim->cls);
    }
    // Read misses fetch the line from the next level; write misses
    // allocate without a fetch (full-line write-combining - see the
    // file comment). Writes are posted, so only the fill adds
    // latency.
    if (!write)
        result.latency += propagateFill(line * params_.lineBytes, cls);
    victim->valid = true;
    victim->tag = tag;
    victim->dirty = write;
    victim->lastUse = stamp;
    victim->cls = cls;
    return result;
}

CacheModel::RangeOutcome
CacheModel::accessRange(Addr addr, u32 bytes, bool write,
                        TrafficClass cls)
{
    RangeOutcome out;
    if (bytes == 0)
        return out; // zero-byte ranges touch nothing
    demandBytes_[static_cast<u8>(cls)] += bytes;
    const Addr first = addr / params_.lineBytes;
    const Addr last = (addr + bytes - 1) / params_.lineBytes;
    for (Addr line = first; line <= last; line++) {
        CacheAccessResult r =
            accessLine(line * params_.lineBytes, write, cls);
        if (!r.hit)
            out.missLines++;
        if (r.writeback)
            out.writebacks++;
        // Hits contribute their hit latency too: a downstream level
        // that absorbs a fill still charges its access time.
        out.latency += r.latency;
    }
    return out;
}

void
CacheModel::invalidateAll()
{
    for (u64 s = 0; s < numSets; s++) {
        for (Way &w : sets[s].ways) {
            if (w.valid && w.dirty) {
                writebacks_++;
                const Addr victimLine =
                    (w.tag << __builtin_ctzll(numSets)) | s;
                propagateWriteback(victimLine * params_.lineBytes,
                                   w.cls);
            }
            w = Way{};
        }
    }
}

} // namespace regpu
