#include "timing/cycle_model.hh"

#include <algorithm>

namespace regpu
{

Cycles
CycleModel::geometryCycles(const FrameResult &result, u64 vertexMisses,
                           double avgDramLatency) const
{
    // Pipelined stages: fetch, shade, assembly, binning.
    const u64 verts = result.verticesShaded;
    const u64 tris = result.trianglesAssembled;
    u64 overlaps = 0;
    for (const auto &list : result.binned.tileLists)
        overlaps += list.size();

    // Vertex Fetcher: 1 vertex/cycle plus exposed miss latency
    // (prefetch-friendly stream: 1/4 of the latency exposed).
    Cycles fetch = verts + static_cast<Cycles>(
        vertexMisses * avgDramLatency / 4.0);
    // Vertex Processors: instructions / processors.
    Cycles shade = 0;
    shade = verts * 22 / config.numVertexProcessors;
    // Primitive Assembly: 1 triangle/cycle.
    Cycles assembly = tris / config.trianglesPerCycle;
    // Polygon List Builder: ~2 cycles per tile-overlap entry plus
    // Parameter Buffer write bandwidth (16 B/cycle on-chip port).
    Cycles binning = overlaps * 2
        + result.binned.parameterBytes / 16;

    Cycles stage = std::max({fetch, shade, assembly, binning});
    // Pipeline fill/drain per drawcall batch: small constant.
    return stage + 64;
}

Cycles
CycleModel::tileCycles(const TileRenderStats &ts, u64 tileDramBytes,
                       Cycles texelStalls) const
{
    // Tile Scheduler: stream the tile's primitives from the
    // Parameter Buffer (64 B/cycle from the Tile Cache).
    Cycles sched = ts.parameterBytesRead / 64 + ts.primitivesFetched;
    // Rasterizer: 16 interpolated attributes per cycle; each
    // fragment carries ~4 attributes (z + varyings), plus 2 setup
    // cycles per primitive.
    Cycles rasterize = ts.fragmentsGenerated * 4 / 16
        + ts.primitivesFetched * 2;
    // Early depth: quad-based, 4 fragments/cycle.
    Cycles earlyZ = ts.fragmentsGenerated / 4;
    // Fragment Processors: instructions over 4 cores + exposed
    // texture stalls.
    Cycles shadeC = ts.shaderInstructions
        / config.numFragmentProcessors + texelStalls;
    // Blend + Color Buffer write: 4 fragments/cycle.
    Cycles blendC = ts.blendOps / 4;

    Cycles compute = std::max({sched, rasterize, earlyZ, shadeC,
                               blendC});
    // DRAM bandwidth bound for this tile's traffic.
    Cycles mem = tileDramBytes / config.dramBytesPerCycle;
    // 8-cycle tile setup (clear Color/Depth buffers, bookkeeping).
    return std::max(compute, mem) + 8;
}

} // namespace regpu
