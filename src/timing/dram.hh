/**
 * @file
 * Main-memory model: dual-channel LPDDR3 abstraction with the Table I
 * envelope (4 B/cycle sustained bandwidth, 50-100-cycle latency).
 *
 * A full DRAMSim2 replacement is not needed for the paper's effects:
 * RE's memory-side saving is bandwidth-dominated. The model tracks
 * per-class byte traffic split by direction (demand reads, streaming
 * writes, dirty writebacks - the Fig. 15b byte split plus the
 * writeback bytes the old flat model dropped), charges
 * row-locality-dependent latency, and queues requests on the data
 * bus: a request arriving while earlier transfers still occupy the
 * bus waits for its turn (bounded by the finite request queue), so
 * bursty miss streams see contention instead of a constant min/max
 * latency.
 */

#ifndef REGPU_TIMING_DRAM_HH
#define REGPU_TIMING_DRAM_HH

#include <cstddef>
#include <vector>

#include "common/config.hh"
#include "gpu/memiface.hh"

namespace regpu
{

/** Direction of a DRAM access (second axis of the traffic split). */
enum class DramDir : u8
{
    Read,      //!< demand fill (cache refill, streaming read)
    Write,     //!< streaming store (Color Buffer flush)
    Writeback, //!< dirty line evicted from an on-chip cache
};

/**
 * Per-traffic-class, per-direction byte counters (Fig. 15b split).
 * operator[] keeps the historical "total bytes of this class" view
 * the reports and benches consume.
 */
struct DramTraffic
{
    u64 read[4] = {0, 0, 0, 0};
    u64 write[4] = {0, 0, 0, 0};
    u64 writeback[4] = {0, 0, 0, 0};

    /** All bytes of one class, regardless of direction. */
    u64
    operator[](TrafficClass c) const
    {
        const auto i = static_cast<u8>(c);
        return read[i] + write[i] + writeback[i];
    }

    u64 reads(TrafficClass c) const { return read[static_cast<u8>(c)]; }
    u64 writes(TrafficClass c) const { return write[static_cast<u8>(c)]; }
    u64 writebacks(TrafficClass c) const
    { return writeback[static_cast<u8>(c)]; }

    u64
    totalReads() const
    {
        return read[0] + read[1] + read[2] + read[3];
    }

    u64
    totalWrites() const
    {
        return write[0] + write[1] + write[2] + write[3];
    }

    u64
    totalWritebacks() const
    {
        return writeback[0] + writeback[1] + writeback[2] + writeback[3];
    }

    u64 total() const
    { return totalReads() + totalWrites() + totalWritebacks(); }

    /** Accumulate another run's traffic (sweep aggregation). */
    void
    merge(const DramTraffic &other)
    {
        for (int i = 0; i < 4; i++) {
            read[i] += other.read[i];
            write[i] += other.write[i];
            writeback[i] += other.writeback[i];
        }
    }

    /** Subtract an earlier snapshot (per-frame deltas). */
    DramTraffic
    since(const DramTraffic &snapshot) const
    {
        DramTraffic d;
        for (int i = 0; i < 4; i++) {
            d.read[i] = read[i] - snapshot.read[i];
            d.write[i] = write[i] - snapshot.write[i];
            d.writeback[i] = writeback[i] - snapshot.writeback[i];
        }
        return d;
    }
};

/**
 * Bandwidth/latency DRAM model with a bounded request queue.
 *
 * Time advances with the request stream: each access arrives one GPU
 * cycle after the previous one (a saturating producer), and the data
 * bus frees at the rate of config.dramBytesPerCycle. A request that
 * finds the bus busy queues behind the outstanding transfers; the
 * queue holds config.dramQueueEntries in-flight requests, and when it
 * is full the producer itself stalls until the oldest transfer
 * completes - so a small read arriving behind large streaming writes
 * waits for the *actual* backlog, whatever the size mix. drain()
 * empties the queue at a natural quiesce point (frame boundary).
 */
class DramModel
{
  public:
    explicit DramModel(const GpuConfig &_config) : config(_config) {}

    /**
     * One burst of @p bytes at @p addr for traffic class @p cls in
     * direction @p dir. Zero-byte bursts are no-ops.
     * @return the access latency in cycles (queueing + row access)
     */
    Cycles access(Addr addr, u32 bytes, TrafficClass cls,
                  DramDir dir = DramDir::Read);

    /** Let the request queue empty (frame boundary / quiesce). */
    void drain() { if (busFreeAt > now) now = busFreeAt; }

    /** Total cycles the data bus was occupied. */
    Cycles busyCycles() const { return busy_; }
    const DramTraffic &traffic() const { return traffic_; }
    u64 accesses() const { return accesses_; }
    u64 rowMisses() const { return rowMisses_; }

    /** Average access latency so far (includes queueing delay). */
    double
    averageLatency() const
    {
        return accesses_ ? static_cast<double>(latencySum_) / accesses_
                         : 0.0;
    }

    /**
     * Average uncontended (row-only) latency so far. The cycle model
     * charges the prefetch-friendly vertex stream at this rate:
     * queueing delay is bandwidth contention, which the per-tile
     * compute-vs-bandwidth max already accounts for - charging it
     * into geometry stalls as well would double-count it.
     */
    double
    averageRowLatency() const
    {
        return accesses_
                   ? static_cast<double>(rowLatencySum_) / accesses_
                   : 0.0;
    }

    void
    resetStats()
    {
        traffic_ = DramTraffic{};
        busy_ = 0;
        accesses_ = 0;
        rowMisses_ = 0;
        latencySum_ = 0;
        rowLatencySum_ = 0;
        // The contention clock restarts too: a measurement phase
        // begun after a reset must not inherit the discarded phase's
        // bus backlog (open-row state persists - rows stay open in
        // the device regardless of what we measure).
        now = 0;
        busFreeAt = 0;
        inflight.clear();
        inflightHead = 0;
    }

  private:
    const GpuConfig &config;
    DramTraffic traffic_;
    Cycles busy_ = 0;
    u64 accesses_ = 0;
    u64 rowMisses_ = 0;
    u64 latencySum_ = 0;
    u64 rowLatencySum_ = 0;
    Addr openRow[2] = {~0ull, ~0ull};
    // Contention clock: `now` is the arrival time of the latest
    // request, `busFreeAt` the cycle the bus finishes all transfers
    // accepted so far. `inflight` is a ring of the completion times
    // of the last dramQueueEntries transfers (lazily sized on first
    // access); its head is the oldest - the slot a full queue waits
    // on.
    Cycles now = 0;
    Cycles busFreeAt = 0;
    std::vector<Cycles> inflight;
    std::size_t inflightHead = 0;
};

} // namespace regpu

#endif // REGPU_TIMING_DRAM_HH
