/**
 * @file
 * Main-memory model: dual-channel LPDDR3 abstraction with the Table I
 * envelope (4 B/cycle sustained bandwidth, 50-100-cycle latency).
 *
 * A full DRAMSim2 replacement is not needed for the paper's effects:
 * RE's memory-side saving is bandwidth-dominated. The model tracks
 * per-class byte traffic, charges row-locality-dependent latency
 * (sequential bursts within an open row pay the minimum latency,
 * row-switching accesses pay the maximum) and exposes the busy-cycle
 * count used to bound raster throughput.
 */

#ifndef REGPU_TIMING_DRAM_HH
#define REGPU_TIMING_DRAM_HH

#include <array>

#include "common/config.hh"
#include "gpu/memiface.hh"

namespace regpu
{

/** Per-traffic-class byte counters (Fig. 15b split). */
struct DramTraffic
{
    u64 bytes[4] = {0, 0, 0, 0};

    u64 &operator[](TrafficClass c) { return bytes[static_cast<u8>(c)]; }
    u64 operator[](TrafficClass c) const
    { return bytes[static_cast<u8>(c)]; }

    u64
    total() const
    {
        return bytes[0] + bytes[1] + bytes[2] + bytes[3];
    }
};

/**
 * Bandwidth/latency DRAM model.
 */
class DramModel
{
  public:
    explicit DramModel(const GpuConfig &config) : config(config) {}

    /**
     * One burst of @p bytes at @p addr for traffic class @p cls.
     * @return the access latency in cycles (for stall accounting)
     */
    Cycles
    access(Addr addr, u32 bytes, TrafficClass cls)
    {
        traffic_[cls] += bytes;
        accesses_++;
        busy_ += (bytes + config.dramBytesPerCycle - 1)
            / config.dramBytesPerCycle;

        // Row-locality: same 2 KB row as the last access on this
        // channel hits the open row.
        const u32 channel = (addr >> 6) & 1;
        const Addr row = addr >> 11;
        Cycles lat;
        if (openRow[channel] == row) {
            lat = config.dramMinLatency;
        } else {
            lat = config.dramMaxLatency;
            openRow[channel] = row;
            rowMisses_++;
        }
        latencySum_ += lat;
        return lat;
    }

    /** Total cycles the data bus was occupied. */
    Cycles busyCycles() const { return busy_; }
    const DramTraffic &traffic() const { return traffic_; }
    u64 accesses() const { return accesses_; }
    u64 rowMisses() const { return rowMisses_; }

    /** Average access latency so far. */
    double
    averageLatency() const
    {
        return accesses_ ? static_cast<double>(latencySum_) / accesses_
                         : 0.0;
    }

    void
    resetStats()
    {
        traffic_ = DramTraffic{};
        busy_ = 0;
        accesses_ = 0;
        rowMisses_ = 0;
        latencySum_ = 0;
    }

  private:
    const GpuConfig &config;
    DramTraffic traffic_;
    Cycles busy_ = 0;
    u64 accesses_ = 0;
    u64 rowMisses_ = 0;
    u64 latencySum_ = 0;
    Addr openRow[2] = {~0ull, ~0ull};
};

} // namespace regpu

#endif // REGPU_TIMING_DRAM_HH
