#include "timing/dram.hh"

#include <algorithm>

namespace regpu
{

Cycles
DramModel::access(Addr addr, u32 bytes, TrafficClass cls, DramDir dir)
{
    if (bytes == 0)
        return 0;

    const auto c = static_cast<u8>(cls);
    switch (dir) {
      case DramDir::Read:
        traffic_.read[c] += bytes;
        break;
      case DramDir::Write:
        traffic_.write[c] += bytes;
        break;
      case DramDir::Writeback:
        traffic_.writeback[c] += bytes;
        break;
    }
    accesses_++;

    const Cycles transfer = (bytes + config.dramBytesPerCycle - 1)
        / config.dramBytesPerCycle;
    busy_ += transfer;

    // Queue on the bus: requests arrive at most one per GPU cycle; a
    // request issued while earlier transfers still occupy the bus
    // waits its turn. The request queue holds dramQueueEntries
    // outstanding transfers: when it is full, the *producer* stalls
    // (arrival delayed - `now` advances) until the oldest in-flight
    // transfer completes. busFreeAt never shrinks: accepted transfers
    // occupy the bus whatever the requester mix.
    now++;
    if (inflight.empty())
        inflight.resize(config.dramQueueEntries, 0);
    if (inflight[inflightHead] > now)
        now = inflight[inflightHead]; // queue full: wait for a slot
    const Cycles start = std::max(now, busFreeAt);
    const Cycles queueDelay = start - now;
    busFreeAt = start + transfer;
    inflight[inflightHead] = busFreeAt;
    inflightHead = (inflightHead + 1) % inflight.size();

    // Row-locality: same 2 KB row as the last access on this channel
    // hits the open row.
    const u32 channel = (addr >> 6) & 1;
    const Addr row = addr >> 11;
    Cycles rowLat;
    if (openRow[channel] == row) {
        rowLat = config.dramMinLatency;
    } else {
        rowLat = config.dramMaxLatency;
        openRow[channel] = row;
        rowMisses_++;
    }

    const Cycles lat = queueDelay + rowLat;
    latencySum_ += lat;
    rowLatencySum_ += rowLat;
    return lat;
}

} // namespace regpu
