/**
 * @file
 * Set-associative cache model with LRU replacement, used for every
 * on-chip cache in Table I (vertex, texture x4, tile, L2).
 *
 * The model is functional-tagged only (no data payload), but it is
 * *level-linked*: each cache knows its downstream level (another
 * CacheModel, or the DramModel at the bottom) and propagates demand
 * misses and dirty writebacks itself, line by line, at the lines'
 * actual addresses and in its own lineBytes granularity. Each line
 * remembers the TrafficClass that allocated it, so a dirty eviction
 * is charged to the stream that produced the data, not to whichever
 * stream happened to trigger the eviction.
 *
 * Policy: read misses refill from the next level (full line, charged
 * downstream as a demand read); write misses allocate without a
 * refill fetch (the producers that write through caches here - the
 * Polygon List Builder - write-combine full lines, so no merge read
 * is needed); dirty evictions write the victim line downstream
 * (DramDir::Writeback when the next level is DRAM). Writes are
 * posted: only read misses contribute latency.
 */

#ifndef REGPU_TIMING_CACHE_HH
#define REGPU_TIMING_CACHE_HH

#include <vector>

#include "common/config.hh"
#include "gpu/memiface.hh"
#include "timing/dram.hh"

namespace regpu
{

/** Result of one cache access. */
struct CacheAccessResult
{
    bool hit = false;
    bool writeback = false; //!< a dirty line was evicted
    Addr writebackAddr = 0; //!< byte address of the evicted dirty line
    Cycles latency = 0;     //!< hit latency + downstream fill latency
};

/**
 * Tag-only set-associative cache with true-LRU replacement,
 * write-back/write-allocate policy and a link to the next memory
 * level.
 */
class CacheModel
{
  public:
    explicit CacheModel(const CacheParams &params);

    /** Link to the next cache level (e.g. an L1 over the L2). At most
     *  one of next level / DRAM may be set; unlinked caches simply
     *  absorb their misses (standalone unit tests). */
    void linkNextLevel(CacheModel *next);

    /** Link to main memory (the bottom of the hierarchy). */
    void linkDram(DramModel *dram);

    /**
     * Access one line.
     * @param addr  byte address (the whole access is assumed to fit
     *              the line; multi-line accesses are split by
     *              accessRange)
     * @param write true for stores
     * @param cls   traffic class charged for downstream fills and for
     *              this line's eventual writeback
     */
    CacheAccessResult access(Addr addr, bool write,
                             TrafficClass cls = TrafficClass::Geometry);

    /** Aggregate outcome of a multi-line access. */
    struct RangeOutcome
    {
        u32 missLines = 0;
        u32 writebacks = 0;
        Cycles latency = 0; //!< summed per-line latency (hits included)
    };

    /**
     * Split an arbitrary [addr, addr+bytes) access into line accesses.
     * Zero-byte ranges are no-ops: they touch no line, count no
     * access and generate no downstream traffic.
     */
    RangeOutcome accessRange(Addr addr, u32 bytes, bool write,
                             TrafficClass cls = TrafficClass::Geometry);

    /**
     * Drop all contents (frame-boundary invalidation for the Tile
     * Cache whose Parameter Buffer is rebuilt each frame). Dirty
     * lines are written back downstream first so their bytes are
     * never silently dropped from the traffic accounting.
     */
    void invalidateAll();

    const CacheParams &params() const { return params_; }
    u64 accesses() const { return accesses_; }
    u64 hits() const { return hits_; }
    u64 misses() const { return misses_; }
    u64 writebacks() const { return writebacks_; }
    u64 fills() const { return fills_; }

    /** Bytes requested of this cache (sum of accessRange byte counts
     *  plus one lineBytes per single-line access), per class. */
    u64 demandBytes(TrafficClass c) const
    { return demandBytes_[static_cast<u8>(c)]; }

    /** Bytes this cache fetched from its next level, per class. */
    u64 fillBytes(TrafficClass c) const
    { return fillBytes_[static_cast<u8>(c)]; }

    /** Bytes this cache wrote back to its next level, per class. */
    u64 writebackBytes(TrafficClass c) const
    { return writebackBytes_[static_cast<u8>(c)]; }

    u64
    totalFillBytes() const
    {
        return fillBytes_[0] + fillBytes_[1] + fillBytes_[2]
            + fillBytes_[3];
    }

    u64
    totalWritebackBytes() const
    {
        return writebackBytes_[0] + writebackBytes_[1]
            + writebackBytes_[2] + writebackBytes_[3];
    }

    void
    resetStats()
    {
        accesses_ = hits_ = misses_ = writebacks_ = fills_ = 0;
        for (int i = 0; i < 4; i++)
            demandBytes_[i] = fillBytes_[i] = writebackBytes_[i] = 0;
    }

  private:
    /** One-line access without demand accounting (range splitting
     *  counts the caller's exact byte demand once, at the entry
     *  point, so conservation stays exact across differing line
     *  sizes). */
    CacheAccessResult accessLine(Addr addr, bool write,
                                 TrafficClass cls);

    /** Send a victim line downstream. */
    void propagateWriteback(Addr lineAddr, TrafficClass cls);

    /** Fetch a missing line from downstream; returns fill latency. */
    Cycles propagateFill(Addr lineAddr, TrafficClass cls);

    struct Way
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        u64 lastUse = 0;
        TrafficClass cls = TrafficClass::Geometry;
    };
    struct Set
    {
        std::vector<Way> ways;
    };

    CacheParams params_;
    u64 numSets;
    std::vector<Set> sets;
    CacheModel *next_ = nullptr;
    DramModel *dram_ = nullptr;
    u64 stamp = 0;
    u64 accesses_ = 0;
    u64 hits_ = 0;
    u64 misses_ = 0;
    u64 writebacks_ = 0;
    u64 fills_ = 0;
    u64 demandBytes_[4] = {0, 0, 0, 0};
    u64 fillBytes_[4] = {0, 0, 0, 0};
    u64 writebackBytes_[4] = {0, 0, 0, 0};
};

} // namespace regpu

#endif // REGPU_TIMING_CACHE_HH
