/**
 * @file
 * Set-associative cache model with LRU replacement, used for every
 * on-chip cache in Table I (vertex, texture x4, tile, L2).
 *
 * The model is functional-tagged only (no data payload): it tracks
 * hits, misses, evictions and the byte traffic handed to the next
 * level, which is what the timing and energy models consume.
 */

#ifndef REGPU_TIMING_CACHE_HH
#define REGPU_TIMING_CACHE_HH

#include <vector>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace regpu
{

/** Result of one cache access. */
struct CacheAccessResult
{
    bool hit = false;
    bool writeback = false; //!< a dirty line was evicted
};

/**
 * Tag-only set-associative cache with true-LRU replacement and
 * write-back, write-allocate policy.
 */
class CacheModel
{
  public:
    explicit CacheModel(const CacheParams &params)
        : params_(params),
          numSets(params.sizeBytes / (params.lineBytes * params.ways)),
          sets(numSets)
    {
        REGPU_ASSERT(numSets > 0, "cache too small: ", params.name);
        REGPU_ASSERT((numSets & (numSets - 1)) == 0,
                     "set count must be a power of two: ", params.name);
        for (auto &set : sets)
            set.ways.resize(params.ways);
    }

    /**
     * Access one address.
     * @param addr byte address (the whole access is assumed to fit the
     *             line; multi-line accesses are split by the caller)
     * @param write true for stores
     */
    CacheAccessResult
    access(Addr addr, bool write)
    {
        const Addr line = addr / params_.lineBytes;
        const u64 setIdx = line & (numSets - 1);
        const Addr tag = line >> __builtin_ctzll(numSets);
        Set &set = sets[setIdx];
        accesses_++;
        stamp++;

        for (Way &w : set.ways) {
            if (w.valid && w.tag == tag) {
                hits_++;
                w.lastUse = stamp;
                w.dirty |= write;
                return {true, false};
            }
        }

        // Miss: allocate over the LRU way.
        misses_++;
        Way *victim = &set.ways[0];
        for (Way &w : set.ways) {
            if (!w.valid) {
                victim = &w;
                break;
            }
            if (w.lastUse < victim->lastUse)
                victim = &w;
        }
        bool writeback = victim->valid && victim->dirty;
        if (writeback)
            writebacks_++;
        victim->valid = true;
        victim->tag = tag;
        victim->dirty = write;
        victim->lastUse = stamp;
        return {false, writeback};
    }

    /** Split an arbitrary [addr, addr+bytes) access into line accesses.
     *  @return number of missing lines. */
    u32
    accessRange(Addr addr, u32 bytes, bool write, u32 *writebacks = nullptr)
    {
        u32 missLines = 0;
        Addr first = addr / params_.lineBytes;
        Addr last = (addr + (bytes ? bytes - 1 : 0)) / params_.lineBytes;
        for (Addr line = first; line <= last; line++) {
            CacheAccessResult r = access(line * params_.lineBytes, write);
            if (!r.hit)
                missLines++;
            if (r.writeback && writebacks)
                (*writebacks)++;
        }
        return missLines;
    }

    /** Drop all contents (frame-boundary invalidation for the Tile
     *  Cache whose Parameter Buffer is rebuilt each frame). */
    void
    invalidateAll()
    {
        for (auto &set : sets)
            for (auto &w : set.ways)
                w = Way{};
    }

    const CacheParams &params() const { return params_; }
    u64 accesses() const { return accesses_; }
    u64 hits() const { return hits_; }
    u64 misses() const { return misses_; }
    u64 writebacks() const { return writebacks_; }

    void
    resetStats()
    {
        accesses_ = hits_ = misses_ = writebacks_ = 0;
    }

  private:
    struct Way
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        u64 lastUse = 0;
    };
    struct Set
    {
        std::vector<Way> ways;
    };

    CacheParams params_;
    u64 numSets;
    std::vector<Set> sets;
    u64 stamp = 0;
    u64 accesses_ = 0;
    u64 hits_ = 0;
    u64 misses_ = 0;
    u64 writebacks_ = 0;
};

} // namespace regpu

#endif // REGPU_TIMING_CACHE_HH
