/**
 * @file
 * Cycle-approximate timing model of the TBR pipeline.
 *
 * Stage throughputs come from Table I. Within the Geometry Pipeline
 * and within each tile of the Raster Pipeline, stages are pipelined:
 * the stage time is the max of the per-stage busy times rather than
 * their sum. Per tile, compute competes with the DRAM bandwidth the
 * tile's misses and flushes consume; the tile's time is the max of
 * both (compute-bound vs bandwidth-bound).
 *
 * The Signature Unit's overhead model follows Section V: its work is
 * overlapped with the Polygon List Builder behind the 16-entry
 * Overlapped-Tiles Queue and only stalls geometry when a primitive
 * covers so many tiles that the queue overflows.
 */

#ifndef REGPU_TIMING_CYCLE_MODEL_HH
#define REGPU_TIMING_CYCLE_MODEL_HH

#include "common/config.hh"
#include "gpu/pipeline.hh"
#include "timing/memsystem.hh"

namespace regpu
{

/** Cycle totals for one frame, split as in Fig. 14a. */
struct FrameCycles
{
    Cycles geometry = 0;        //!< Geometry Pipeline + Tiling Engine
    Cycles geometryStall = 0;   //!< added by Signature Unit overflow
    Cycles raster = 0;          //!< Raster Pipeline over all tiles
    Cycles rasterSkipOverhead = 0; //!< signature compares of skipped tiles

    Cycles total() const
    { return geometry + geometryStall + raster + rasterSkipOverhead; }
};

/**
 * Computes frame cycle counts from functional-run products.
 */
class CycleModel
{
  public:
    explicit CycleModel(const GpuConfig &config) : config(config) {}

    /**
     * Geometry Pipeline time for a frame.
     * @param result    the functional frame result
     * @param vertexMisses vertex-cache misses this frame
     * @param avgDramLatency average DRAM latency observed
     */
    Cycles
    geometryCycles(const FrameResult &result, u64 vertexMisses,
                   double avgDramLatency) const
    {
        // Pipelined stages: fetch, shade, assembly, binning.
        const u64 verts = result.verticesShaded;
        const u64 tris = result.trianglesAssembled;
        u64 overlaps = 0;
        for (const auto &list : result.binned.tileLists)
            overlaps += list.size();

        // Vertex Fetcher: 1 vertex/cycle plus exposed miss latency
        // (prefetch-friendly stream: 1/4 of the latency exposed).
        Cycles fetch = verts + static_cast<Cycles>(
            vertexMisses * avgDramLatency / 4.0);
        // Vertex Processors: instructions / processors.
        Cycles shade = 0;
        shade = verts * 22 / config.numVertexProcessors;
        // Primitive Assembly: 1 triangle/cycle.
        Cycles assembly = tris / config.trianglesPerCycle;
        // Polygon List Builder: ~2 cycles per tile-overlap entry plus
        // Parameter Buffer write bandwidth (16 B/cycle on-chip port).
        Cycles binning = overlaps * 2
            + result.binned.parameterBytes / 16;

        Cycles stage = std::max({fetch, shade, assembly, binning});
        // Pipeline fill/drain per drawcall batch: small constant.
        return stage + 64;
    }

    /**
     * Raster Pipeline time for one rendered tile.
     * @param ts       per-tile functional stats
     * @param tileDramBytes DRAM bytes the tile's activity generated
     * @param texelStalls exposed texture-miss stall cycles for the tile
     */
    Cycles
    tileCycles(const TileRenderStats &ts, u64 tileDramBytes,
               Cycles texelStalls) const
    {
        // Tile Scheduler: stream the tile's primitives from the
        // Parameter Buffer (64 B/cycle from the Tile Cache).
        Cycles sched = ts.parameterBytesRead / 64 + ts.primitivesFetched;
        // Rasterizer: 16 interpolated attributes per cycle; each
        // fragment carries ~4 attributes (z + varyings), plus 2 setup
        // cycles per primitive.
        Cycles rasterize = ts.fragmentsGenerated * 4 / 16
            + ts.primitivesFetched * 2;
        // Early depth: quad-based, 4 fragments/cycle.
        Cycles earlyZ = ts.fragmentsGenerated / 4;
        // Fragment Processors: instructions over 4 cores + exposed
        // texture stalls.
        Cycles shadeC = ts.shaderInstructions
            / config.numFragmentProcessors + texelStalls;
        // Blend + Color Buffer write: 4 fragments/cycle.
        Cycles blendC = ts.blendOps / 4;

        Cycles compute = std::max({sched, rasterize, earlyZ, shadeC,
                                   blendC});
        // DRAM bandwidth bound for this tile's traffic.
        Cycles mem = tileDramBytes / config.dramBytesPerCycle;
        // 8-cycle tile setup (clear Color/Depth buffers, bookkeeping).
        return std::max(compute, mem) + 8;
    }

    /** Per-skipped-tile overhead: Signature Buffer read + compare. */
    Cycles skippedTileCycles() const { return 2; }

  private:
    const GpuConfig &config;
};

} // namespace regpu

#endif // REGPU_TIMING_CYCLE_MODEL_HH
