/**
 * @file
 * Cycle-approximate timing model of the TBR pipeline.
 *
 * Stage throughputs come from Table I. Within the Geometry Pipeline
 * and within each tile of the Raster Pipeline, stages are pipelined:
 * the stage time is the max of the per-stage busy times rather than
 * their sum. Per tile, compute competes with the DRAM bandwidth the
 * tile's misses and flushes consume; the tile's time is the max of
 * both (compute-bound vs bandwidth-bound).
 *
 * The Signature Unit's overhead model follows Section V: its work is
 * overlapped with the Polygon List Builder behind the 16-entry
 * Overlapped-Tiles Queue and only stalls geometry when a primitive
 * covers so many tiles that the queue overflows.
 */

#ifndef REGPU_TIMING_CYCLE_MODEL_HH
#define REGPU_TIMING_CYCLE_MODEL_HH

#include "common/config.hh"
#include "gpu/pipeline.hh"
#include "timing/memsystem.hh"

namespace regpu
{

/** Cycle totals for one frame, split as in Fig. 14a. */
struct FrameCycles
{
    Cycles geometry = 0;        //!< Geometry Pipeline + Tiling Engine
    Cycles geometryStall = 0;   //!< added by Signature Unit overflow
    Cycles raster = 0;          //!< Raster Pipeline over all tiles
    Cycles rasterSkipOverhead = 0; //!< signature compares of skipped tiles

    Cycles total() const
    { return geometry + geometryStall + raster + rasterSkipOverhead; }
};

/**
 * Computes frame cycle counts from functional-run products.
 */
class CycleModel
{
  public:
    explicit CycleModel(const GpuConfig &_config) : config(_config) {}

    /**
     * Geometry Pipeline time for a frame.
     * @param result    the functional frame result
     * @param vertexMisses vertex-cache misses this frame
     * @param avgDramLatency average DRAM latency observed
     */
    Cycles geometryCycles(const FrameResult &result, u64 vertexMisses,
                          double avgDramLatency) const;

    /**
     * Raster Pipeline time for one rendered tile.
     * @param ts       per-tile functional stats
     * @param tileDramBytes DRAM bytes the tile's activity generated
     * @param texelStalls exposed texture-miss stall cycles for the tile
     */
    Cycles tileCycles(const TileRenderStats &ts, u64 tileDramBytes,
                      Cycles texelStalls) const;

    /** Per-skipped-tile overhead: Signature Buffer read + compare. */
    Cycles skippedTileCycles() const { return 2; }

  private:
    const GpuConfig &config;
};

} // namespace regpu

#endif // REGPU_TIMING_CYCLE_MODEL_HH
