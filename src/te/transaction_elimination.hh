/**
 * @file
 * Transaction Elimination (ARM Mali, modelled per paper §IV-C): after
 * a tile finishes rendering, its Color Buffer contents are hashed; if
 * the signature equals the one recorded for the same tile in the
 * comparison frame (the Back Buffer frame under double buffering), the
 * flush to the Frame Buffer is elided.
 *
 * Per the paper's evaluation methodology, the energy of the Signature
 * Buffer and Compute CRC unit is charged but the signature computation
 * is assumed to take zero execution cycles (an idealised TE).
 */

#ifndef REGPU_TE_TRANSACTION_ELIMINATION_HH
#define REGPU_TE_TRANSACTION_ELIMINATION_HH

#include <optional>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "crc/crc32.hh"
#include "gpu/pipeline.hh"
#include "obs/obs.hh"
#include "re/signature_buffer.hh"

namespace regpu
{

/**
 * PipelineHooks implementation for Transaction Elimination.
 */
class TransactionElimination : public PipelineHooks
{
  public:
    TransactionElimination(const GpuConfig &_config, StatRegistry &_stats)
        : config(_config), stats(_stats),
          buffer(_config.numTiles(), _config.doubleBuffered ? 3 : 2)
    {}

    void
    frameBegin(u64 /*frameIndex*/, bool /*reSafe*/) override
    {
        buffer.rotate();
        // TE hashes *output* colors, so global-state changes do not
        // need to disable it; signatures stay valid.
        buffer.setAllValid(true);
        lutAccessesThisFrame = 0;
    }

    /**
     * Tile-pool opt-in: the color hash (the expensive part) is pure,
     * so it runs on the worker that rendered the tile; the counted
     * Signature Buffer traffic and energy charges stay in the serial
     * merge phase below. No memo client, no raster-phase mutation
     * outside shouldFlushTilePre.
     */
    bool tileWorkersSafe() const override { return true; }

    /** Phase-1 (worker-side, thread-safe): hash the tile's colors.
     *  CRC32 streamed straight over the Color Buffer's storage (no
     *  per-tile heap message, no staging copy). Color is four u8s
     *  {r,g,b,a}, identical to the packed little-endian RGBA byte
     *  order the signature is defined over. */
    u32
    prepareFlushTile(TileId tile, const std::vector<Color> &colors) override
    {
        // Per-tile detail: one signature-hash span per rendered tile.
        std::optional<ObsScope> span;
        if (obsTileDetail())
            span.emplace("te", "signature", "tile",
                         static_cast<i64>(tile));
        static_assert(sizeof(Color) == 4);
        Crc32Stream stream;
        stream.update({reinterpret_cast<const u8 *>(colors.data()),
                       colors.size() * 4});
        return stream.value();
    }

    /** Merge phase (serial, in tile order): charge the Compute CRC
     *  unit for the hash the worker did, then the counted compare +
     *  single signature write - identical accounting, in identical
     *  order, to the serial pipeline. */
    bool
    shouldFlushTilePre(TileId tile, const std::vector<Color> &colors,
                       u32 sig) override
    {
        // Compute CRC unit energy: 12 LUT reads per 64-bit sub-block
        // (message length is exactly the tile's color bytes).
        lutAccessesThisFrame += 12ull * ((colors.size() * 4 + 7) / 8);

        // Compare against the recorded signature, then store exactly
        // one signature write for this tile.
        u32 prevSig = 0;
        const bool comparable = buffer.readComparison(tile, prevSig);
        buffer.write(tile, sig);

        stats.inc("te.signatureCompares");
        if (comparable && prevSig == sig) {
            stats.inc("te.flushesEliminated");
            return false;
        }
        return true;
    }

    bool
    shouldFlushTile(TileId tile, const std::vector<Color> &colors) override
    {
        // Legacy single-call form: hash + decide in one step (direct
        // callers and tests; the pipeline's split path calls the two
        // halves separately).
        return shouldFlushTilePre(tile, colors,
                                  prepareFlushTile(tile, colors));
    }

    void
    frameEnd() override
    {
        stats.inc("te.lutAccesses", lutAccessesThisFrame);
        // Charge only this frame's Signature Buffer activity;
        // buffer.accesses() is a cumulative lifetime counter.
        const u64 total = buffer.accesses();
        stats.inc("te.sigBufferAccesses", total - accessesCharged);
        accessesCharged = total;
    }

    SignatureBuffer &signatureBuffer() { return buffer; }

  private:
    const GpuConfig &config;
    StatRegistry &stats;
    SignatureBuffer buffer;
    u64 lutAccessesThisFrame = 0;
    u64 accessesCharged = 0;
};

} // namespace regpu

#endif // REGPU_TE_TRANSACTION_ELIMINATION_HH
