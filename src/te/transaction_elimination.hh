/**
 * @file
 * Transaction Elimination (ARM Mali, modelled per paper §IV-C): after
 * a tile finishes rendering, its Color Buffer contents are hashed; if
 * the signature equals the one recorded for the same tile in the
 * comparison frame (the Back Buffer frame under double buffering), the
 * flush to the Frame Buffer is elided.
 *
 * Per the paper's evaluation methodology, the energy of the Signature
 * Buffer and Compute CRC unit is charged but the signature computation
 * is assumed to take zero execution cycles (an idealised TE).
 */

#ifndef REGPU_TE_TRANSACTION_ELIMINATION_HH
#define REGPU_TE_TRANSACTION_ELIMINATION_HH

#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "crc/crc32.hh"
#include "gpu/pipeline.hh"
#include "re/signature_buffer.hh"

namespace regpu
{

/**
 * PipelineHooks implementation for Transaction Elimination.
 */
class TransactionElimination : public PipelineHooks
{
  public:
    TransactionElimination(const GpuConfig &config, StatRegistry &stats)
        : config(config), stats(stats),
          buffer(config.numTiles(), config.doubleBuffered ? 3 : 2)
    {}

    void
    frameBegin(u64 /*frameIndex*/, bool /*reSafe*/) override
    {
        buffer.rotate();
        // TE hashes *output* colors, so global-state changes do not
        // need to disable it; signatures stay valid.
        buffer.setAllValid(true);
        lutAccessesThisFrame = 0;
    }

    bool
    shouldFlushTile(TileId tile, const std::vector<Color> &colors) override
    {
        // Hash the tile's colors (CRC32 over the packed RGBA bytes).
        std::vector<u8> bytes;
        bytes.reserve(colors.size() * 4);
        for (Color c : colors) {
            u32 p = c.packed();
            bytes.push_back(static_cast<u8>(p));
            bytes.push_back(static_cast<u8>(p >> 8));
            bytes.push_back(static_cast<u8>(p >> 16));
            bytes.push_back(static_cast<u8>(p >> 24));
        }
        u32 sig = crc32Tabular(bytes);
        // Compute CRC unit energy: 12 LUT reads per 64-bit sub-block.
        lutAccessesThisFrame += 12ull * ((bytes.size() + 7) / 8);

        // Compare against the recorded signature before overwriting.
        bool matched = false;
        bool prevSig = peekComparison(tile, sig, matched);
        buffer.write(tile, sig);

        stats.inc("te.signatureCompares");
        if (prevSig && matched) {
            stats.inc("te.flushesEliminated");
            return false;
        }
        return true;
    }

    void
    frameEnd() override
    {
        stats.inc("te.lutAccesses", lutAccessesThisFrame);
        stats.inc("te.sigBufferAccesses", buffer.accesses());
    }

    SignatureBuffer &signatureBuffer() { return buffer; }

  private:
    /** Read the comparison slot's signature for @p tile. */
    bool
    peekComparison(TileId tile, u32 currentSig, bool &matched)
    {
        // SignatureBuffer::compare uses the stored current slot, so
        // stage the current signature first, then compare.
        buffer.write(tile, currentSig);
        return buffer.compare(tile, matched);
    }

    const GpuConfig &config;
    StatRegistry &stats;
    SignatureBuffer buffer;
    u64 lutAccessesThisFrame = 0;
};

} // namespace regpu

#endif // REGPU_TE_TRANSACTION_ELIMINATION_HH
