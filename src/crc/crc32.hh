/**
 * @file
 * CRC-32 polynomial arithmetic over GF(2).
 *
 * Convention used throughout the Rendering Elimination signature path:
 *
 *     F(M) = M(x) * x^32 mod G(x)
 *
 * with the non-reflected CRC-32 generator G = 0x04C11DB7, zero initial
 * value and no final XOR. Under this convention concatenation obeys
 *
 *     F(A || B) = F(A) * x^|B|  xor  F(B)        (paper Algorithm 1)
 *
 * so a message can be signed incrementally from sub-messages of a priori
 * unknown count, which is exactly what the Signature Unit requires: the
 * primitives overlapping a tile only become known as the Polygon List
 * Builder sorts the frame's geometry.
 *
 * Multiplication by x^k (k a multiple of 64 here) is implemented with
 * small per-byte LUTs, mirroring the parallel table-based hardware of
 * Sun & Kim that the paper adopts (Figs. 10 and 11).
 */

#ifndef REGPU_CRC_CRC32_HH
#define REGPU_CRC_CRC32_HH

#include <array>
#include <cstddef>
#include <span>

#include "common/types.hh"

namespace regpu
{

/** The CRC-32 generator polynomial (x^32 implied leading term). */
constexpr u32 crcPolynomial = 0x04C11DB7u;

/**
 * Multiply two polynomials modulo G (carry-less multiply + reduce).
 * Operands are degree-<32 polynomials represented MSB-first.
 */
u32 gf2MulMod(u32 a, u32 b);

/**
 * Compute x^n mod G by square-and-multiply. Used to build shift LUTs
 * and by tests as an independent reference for the shift units.
 */
u32 gf2PowXMod(u64 n);

/**
 * Bitwise (slow, obviously-correct) reference implementation of
 * F(M) = M * x^32 mod G for an arbitrary byte message.
 */
u32 crc32Reference(std::span<const u8> message);

/** Bitwise reference for a 64-bit block (big-endian byte order). */
u32 crc32ReferenceBlock64(u64 block);

/**
 * Shared, lazily-built LUT set for the table-based units.
 *
 * signLut[i][b]  = F(b placed as byte i of an 8-byte message)
 *                = b(x) * x^(8*(7-i)) * x^32 mod G
 * shiftLut[i][b] = (b placed as byte i of a 32-bit CRC) * x^64 mod G
 *                = b(x) * x^(8*(3-i)) * x^64 mod G
 *
 * Eight 1 KB sign LUTs and four 1 KB shift LUTs: the storage the paper
 * budgets in Section III-G.
 */
class CrcTables
{
  public:
    /** Access the process-wide table set (built on first use). */
    static const CrcTables &instance();

    std::array<std::array<u32, 256>, 8> signLut{};
    std::array<std::array<u32, 256>, 4> shiftLut{};

    /**
     * F of one 64-bit block: eight parallel LUT reads XOR-combined
     * (the Sign subunit, Fig. 10).
     */
    u32
    signBlock64(u64 block) const
    {
        u32 crc = 0;
        for (int i = 0; i < 8; i++) {
            u8 byte = static_cast<u8>(block >> (8 * (7 - i)));
            crc ^= signLut[i][byte];
        }
        return crc;
    }

    /**
     * crc * x^64 mod G: four parallel LUT reads XOR-combined
     * (the Shift subunit, Fig. 11).
     */
    u32
    shift64(u32 crc) const
    {
        u32 out = 0;
        for (int i = 0; i < 4; i++) {
            u8 byte = static_cast<u8>(crc >> (8 * (3 - i)));
            out ^= shiftLut[i][byte];
        }
        return out;
    }

    /** Total LUT storage in bytes (area accounting). */
    static constexpr u64
    storageBytes()
    {
        return (8 + 4) * 256 * sizeof(u32);
    }

  private:
    CrcTables();
};

/**
 * Convenience: F over an arbitrary-length byte message using the
 * table-based units, zero-padding the tail to a 64-bit boundary the
 * same way the Signature Unit datapath does.
 */
u32 crc32Tabular(std::span<const u8> message);

/**
 * Combine per Algorithm 1: signature of (A || B) given F(A), F(B) and
 * |B| expressed in 64-bit blocks.
 */
u32 crc32Combine(u32 crcA, u32 crcB, u32 blocks64OfB);

} // namespace regpu

#endif // REGPU_CRC_CRC32_HH
