/**
 * @file
 * CRC-32 polynomial arithmetic over GF(2).
 *
 * Convention used throughout the Rendering Elimination signature path:
 *
 *     F(M) = M(x) * x^32 mod G(x)
 *
 * with the non-reflected CRC-32 generator G = 0x04C11DB7, zero initial
 * value and no final XOR. Under this convention concatenation obeys
 *
 *     F(A || B) = F(A) * x^(8*|B|)  xor  F(B)      (paper Algorithm 1)
 *
 * with |B| in bytes, so a message can be signed incrementally from
 * sub-messages of a priori unknown count, which is exactly what the
 * Signature Unit requires: the primitives overlapping a tile only
 * become known as the Polygon List Builder sorts the frame's geometry.
 *
 * Every function here is length-exact: F of a 3-byte message is the
 * CRC of those 3 bytes, not of the message zero-padded to a 64-bit
 * boundary. (An earlier revision padded the tail, which made messages
 * differing only in trailing zero bytes alias; the contract now is
 * bitwise equality with crc32Reference for every byte length.)
 *
 * Multiplication by x^k is implemented with small per-byte LUTs,
 * mirroring the parallel table-based hardware of Sun & Kim that the
 * paper adopts (Figs. 10 and 11); the sub-64-bit tail factors reuse
 * the same sign LUTs one byte at a time.
 */

#ifndef REGPU_CRC_CRC32_HH
#define REGPU_CRC_CRC32_HH

#include <array>
#include <cstddef>
#include <cstring>
#include <span>

#include "common/types.hh"

namespace regpu
{

/** The CRC-32 generator polynomial (x^32 implied leading term). */
constexpr u32 crcPolynomial = 0x04C11DB7u;

/**
 * Append a 32-bit value to any byte stream (anything with
 * update(span<const u8>)) in little-endian order - the layout every
 * serializer in the pipeline uses. Single definition shared by
 * Crc32Stream and HashStream so their wire formats cannot diverge.
 */
template <typename Stream>
inline void
streamPutU32(Stream &stream, u32 v)
{
    u8 b[4] = {static_cast<u8>(v), static_cast<u8>(v >> 8),
               static_cast<u8>(v >> 16), static_cast<u8>(v >> 24)};
    stream.update({b, 4});
}

/** Append a float's exact bit pattern (little-endian). */
template <typename Stream>
inline void
streamPutF32(Stream &stream, float f)
{
    u32 bits;
    std::memcpy(&bits, &f, 4);
    streamPutU32(stream, bits);
}

/**
 * Multiply two polynomials modulo G (carry-less multiply + reduce).
 * Operands are degree-<32 polynomials represented MSB-first.
 */
u32 gf2MulMod(u32 a, u32 b);

/**
 * Compute x^n mod G by square-and-multiply. Used to build shift LUTs
 * and by tests as an independent reference for the shift units.
 */
u32 gf2PowXMod(u64 n);

/**
 * Bitwise (slow, obviously-correct) reference implementation of
 * F(M) = M * x^32 mod G for an arbitrary byte message.
 */
u32 crc32Reference(std::span<const u8> message);

/** Bitwise reference for a 64-bit block (big-endian byte order). */
u32 crc32ReferenceBlock64(u64 block);

/**
 * Shared, lazily-built LUT set for the table-based units.
 *
 * signLut[i][b]  = F(b placed as byte i of an 8-byte message)
 *                = b(x) * x^(8*(7-i)) * x^32 mod G
 * shiftLut[i][b] = (b placed as byte i of a 32-bit CRC) * x^64 mod G
 *                = b(x) * x^(8*(3-i)) * x^64 mod G
 *
 * Eight 1 KB sign LUTs and four 1 KB shift LUTs: the storage the paper
 * budgets in Section III-G.
 */
class CrcTables
{
  public:
    /** Access the process-wide table set (built on first use). */
    static const CrcTables &instance();

    std::array<std::array<u32, 256>, 8> signLut{};
    std::array<std::array<u32, 256>, 4> shiftLut{};

    /**
     * F of one 64-bit block: eight parallel LUT reads XOR-combined
     * (the Sign subunit, Fig. 10).
     */
    u32
    signBlock64(u64 block) const
    {
        u32 crc = 0;
        for (int i = 0; i < 8; i++) {
            u8 byte = static_cast<u8>(block >> (8 * (7 - i)));
            crc ^= signLut[i][byte];
        }
        return crc;
    }

    /**
     * Slice-by-8 fast path: one step of appending a full 64-bit block
     * to a running CRC. Because the sign LUTs are linear over XOR and
     * crc * x^64 equals F(crc placed in the block's leading 4 bytes),
     *
     *     shift64(crc) ^ signBlock64(block)
     *         == signBlock64(block ^ (crc << 32))
     *
     * which folds the running CRC into the sign lookups for free:
     * 8 LUT reads per 8 bytes instead of 12.
     */
    u32
    appendBlock64(u32 crc, u64 block) const
    {
        return signBlock64(block ^ (static_cast<u64>(crc) << 32));
    }

    /**
     * Append one byte to a running CRC (the standard MSB-first
     * table-driven step): crc * x^8 ^ b * x^32, both factors served by
     * signLut[7] (whose entries are exactly t(x) * x^32 mod G).
     */
    u32
    appendByte(u32 crc, u8 byte) const
    {
        return (crc << 8)
            ^ signLut[7][static_cast<u8>((crc >> 24) ^ byte)];
    }

    /**
     * crc * x^64 mod G: four parallel LUT reads XOR-combined
     * (the Shift subunit, Fig. 11).
     */
    u32
    shift64(u32 crc) const
    {
        u32 out = 0;
        for (int i = 0; i < 4; i++) {
            u8 byte = static_cast<u8>(crc >> (8 * (3 - i)));
            out ^= shiftLut[i][byte];
        }
        return out;
    }

    /**
     * crc * x^(8*bytes) mod G for an arbitrary byte count: whole
     * 64-bit shifts through the Shift subunit, then per-byte position
     * factors for the sub-block tail (appendByte with a zero byte is
     * exactly multiplication by x^8).
     */
    u32
    shiftBytes(u32 crc, u64 bytes) const
    {
        for (u64 k = 0; k < bytes / 8; k++)
            crc = shift64(crc);
        for (u64 k = 0; k < bytes % 8; k++)
            crc = appendByte(crc, 0);
        return crc;
    }

    /** Total LUT storage in bytes (area accounting). */
    static constexpr u64
    storageBytes()
    {
        return (8 + 4) * 256 * sizeof(u32);
    }

  private:
    CrcTables();
};

/**
 * Append @p n message bytes to a running CRC through the fastest
 * hashing engine available on this machine: PCLMULQDQ folding on x86,
 * the CRC32 extension on ARMv8, the slice-by-8 tables everywhere else
 * (runtime-dispatched once per process, overridable with
 * REGPU_CRC_BACKEND - see crc32_backend.hh). Bit-identical to the
 * portable path for every byte length and every seed; Crc32Stream
 * routes large update() calls here.
 */
u32 crc32AppendBulk(u32 crc, const u8 *data, std::size_t n);

/**
 * Incremental CRC-32 over a byte stream: init / update / value, no
 * heap allocation, no internal buffering. Any segmentation of the
 * message into update() calls yields the same CRC as one shot, and
 * the result is bitwise equal to crc32Reference for every length.
 *
 * Full 64-bit groups go through the slice-by-8 fast path (8 LUT reads
 * per 8 bytes); sub-block tails fall back to the byte-serial step.
 */
class Crc32Stream
{
  public:
    Crc32Stream() : tables(CrcTables::instance()) {}

    void
    reset()
    {
        crc_ = 0;
        length_ = 0;
    }

    /** Messages at least this long go through the runtime-dispatched
     *  hardware bulk path; shorter ones stay on the inline LUT steps
     *  (the Signature Unit's putU32-sized appends would only pay the
     *  dispatch call for no folding benefit). */
    static constexpr std::size_t bulkDispatchBytes = 64;

    /** Append @p bytes to the message. */
    void
    update(std::span<const u8> bytes)
    {
        const u8 *p = bytes.data();
        std::size_t n = bytes.size();
        length_ += n;
        if (n >= bulkDispatchBytes) {
            crc_ = crc32AppendBulk(crc_, p, n);
            return;
        }
        while (n >= 8) {
            u64 block = 0;
            for (int i = 0; i < 8; i++)
                block = (block << 8) | p[i];
            crc_ = tables.appendBlock64(crc_, block);
            p += 8;
            n -= 8;
        }
        while (n > 0) {
            crc_ = tables.appendByte(crc_, *p++);
            n--;
        }
    }

    /** Append a 32-bit value, little-endian byte order. */
    void putU32(u32 v) { streamPutU32(*this, v); }

    /** Append a float's exact bit pattern. */
    void putF32(float f) { streamPutF32(*this, f); }

    /** The CRC of everything streamed so far (== crc32Reference). */
    u32 value() const { return crc_; }

    /** Message length streamed so far, in bytes. */
    u64 lengthBytes() const { return length_; }

  private:
    const CrcTables &tables;
    u32 crc_ = 0;
    u64 length_ = 0;
};

/**
 * One-shot F over an arbitrary-length byte message using the
 * table-based units. Length-exact: equals crc32Reference for every
 * byte length (no tail padding).
 */
u32 crc32Tabular(std::span<const u8> message);

/**
 * Combine per Algorithm 1: signature of (A || B) given F(A), F(B) and
 * |B| in **bytes** (byte-exact; B need not be 64-bit aligned).
 */
u32 crc32Combine(u32 crcA, u32 crcB, u64 bytesOfB);

} // namespace regpu

#endif // REGPU_CRC_CRC32_HH
