/**
 * @file
 * Alternative (weaker) signature functions for the Section V ablation:
 * the paper states CRC32 outperforms XOR-based schemes; these are the
 * straw-man schemes used to quantify that claim.
 *
 * Each hash supports the same incremental interface the Signature Unit
 * needs: sign a block, then fold it into a tile's running signature.
 */

#ifndef REGPU_CRC_HASHES_HH
#define REGPU_CRC_HASHES_HH

#include <span>
#include <string>

#include "crc/crc32.hh"

namespace regpu
{

/** Kinds of signature function available to the Signature Unit. */
enum class HashKind
{
    Crc32,    //!< paper's choice
    XorFold,  //!< XOR of 32-bit words (order- and position-insensitive)
    AddFold,  //!< 32-bit additive checksum
    Fnv1a,    //!< byte-serial FNV-1a (strong-ish, but serial in hardware)
    /**
     * Degenerate truncation: only the first 4 bytes of a block
     * participate. Collides constantly by construction - used for
     * failure injection, verifying that the simulator's ground-truth
     * machinery detects (rather than masks) wrong tile skips.
     */
    Trunc4,
};

/** Printable name. */
const char *hashKindName(HashKind kind);

/**
 * Sign a standalone block with the chosen function.
 */
u32 hashBlock(HashKind kind, std::span<const u8> block);

/**
 * Fold a block signature into a running tile signature.
 * For CRC32 this is the Algorithm 1 combine (needs the block length in
 * 64-bit units); the weak schemes ignore the length.
 */
u32 hashCombine(HashKind kind, u32 tileSig, u32 blockSig,
                u32 blocks64OfBlock);

} // namespace regpu

#endif // REGPU_CRC_HASHES_HH
