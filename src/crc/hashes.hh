/**
 * @file
 * Alternative (weaker) signature functions for the Section V ablation:
 * the paper states CRC32 outperforms XOR-based schemes; these are the
 * straw-man schemes used to quantify that claim.
 *
 * Each hash supports the same incremental interface the Signature Unit
 * needs: stream a block (HashStream), then fold it into a tile's
 * running signature (hashCombine). All schemes are byte-serial with
 * message-global positions, so streaming in any segmentation equals
 * the one-shot hash.
 */

#ifndef REGPU_CRC_HASHES_HH
#define REGPU_CRC_HASHES_HH

#include <span>
#include <string>

#include "crc/crc32.hh"

namespace regpu
{

/** Kinds of signature function available to the Signature Unit. */
enum class HashKind
{
    Crc32,    //!< paper's choice
    XorFold,  //!< XOR of 32-bit words (order- and position-insensitive)
    AddFold,  //!< 32-bit additive checksum
    Fnv1a,    //!< byte-serial FNV-1a (strong-ish, but serial in hardware)
    /**
     * Degenerate truncation: only the first 4 bytes of a block
     * participate. Collides constantly by construction - used for
     * failure injection, verifying that the simulator's ground-truth
     * machinery detects (rather than masks) wrong tile skips.
     */
    Trunc4,
};

/** Printable name. */
const char *hashKindName(HashKind kind);

/** One-line list of the CLI-parseable kind names (Trunc4 is a
 *  deliberately-weak ablation baseline, bench-only and unlisted), for
 *  usage/error text. Single source of truth for parseHashArg()
 *  diagnostics. */
const char *hashKindUsage();

/**
 * Incremental signature over a byte stream for any HashKind:
 * init (constructor/reset), update, finalize. Allocation-free; any
 * segmentation of the message into update() calls yields the same
 * value as hashBlock over the concatenation.
 */
class HashStream
{
  public:
    explicit HashStream(HashKind kind = HashKind::Crc32) : kind_(kind)
    {
        reset();
    }

    /** Restart as an empty message. */
    void reset();

    /** Append @p bytes to the message. */
    void update(std::span<const u8> bytes);

    /** Append a 32-bit value, little-endian byte order. */
    void putU32(u32 v) { streamPutU32(*this, v); }

    /** Append a float's exact bit pattern. */
    void putF32(float f) { streamPutF32(*this, f); }

    /** The signature of everything streamed so far. */
    u32 finalize() const;

    /** Message length streamed so far, in bytes. */
    u64
    lengthBytes() const
    {
        return kind_ == HashKind::Crc32 ? crc_.lengthBytes() : length_;
    }

    HashKind kind() const { return kind_; }

  private:
    HashKind kind_;
    Crc32Stream crc_; //!< state for HashKind::Crc32
    u32 acc_ = 0;     //!< state for the weak schemes
    u64 length_ = 0;  //!< message position for the weak schemes
};

/**
 * One-shot signature of a standalone block with the chosen function
 * (HashStream init + update + finalize).
 */
u32 hashBlock(HashKind kind, std::span<const u8> block);

/**
 * Fold a block signature into a running tile signature.
 * For CRC32 this is the Algorithm 1 combine and needs the block
 * length in **bytes** (byte-exact); the weak schemes ignore the
 * length.
 */
u32 hashCombine(HashKind kind, u32 tileSig, u32 blockSig,
                u64 blockLengthBytes);

} // namespace regpu

#endif // REGPU_CRC_HASHES_HH
