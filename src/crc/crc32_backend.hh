/**
 * @file
 * Runtime-dispatched hardware backends for the bulk CRC append path.
 *
 * The repo-wide CRC convention (crc32.hh) is the paper's *non-
 * reflected* CRC-32: F(M) = M(x) * x^32 mod G, G = 0x04C11DB7, zero
 * init, no final XOR, MSB-first bit order. That rules the x86 `crc32`
 * instruction out entirely - it hardwires the *reflected* Castagnoli
 * polynomial and no pre/post bit-shuffle can map it onto a different
 * generator. The hardware paths that *can* produce our F bit-exactly:
 *
 *  - x86: PCLMULQDQ folding. 16-byte blocks are carry-less-multiplied
 *    against x^192 mod G and x^128 mod G (derived at runtime from
 *    gf2PowXMod - no magic constants) and XOR-folded, exactly the
 *    Intel "CRC computation using PCLMULQDQ" scheme instantiated for
 *    our non-reflected generator.
 *  - ARMv8: the `crc32x` instruction implements the *reflection* of
 *    our generator (0xEDB88320 = rev32(0x04C11DB7)), so the standard
 *    reflection isomorphism applies: rev the state and the data bits,
 *    run the reflected engine, rev the result back.
 *
 * Both are validated against crc32Reference / the slice-by-8 portable
 * path by property tests for every byte length; the dispatcher is
 * resolved once per process (thread-safe magic static, the same
 * pattern as CrcTables::instance()) and can be overridden with the
 * environment variable REGPU_CRC_BACKEND=portable|clmul|arm|auto.
 */

#ifndef REGPU_CRC_CRC32_BACKEND_HH
#define REGPU_CRC_CRC32_BACKEND_HH

#include <cstddef>

#include "common/types.hh"

namespace regpu
{

/** The bulk-append engines the dispatcher can select. */
enum class CrcBackend : u8
{
    Portable, //!< slice-by-8 LUT path (CrcTables), always available
    Clmul,    //!< x86 PCLMULQDQ 128-bit folding
    ArmCrc,   //!< ARMv8 CRC32 extension via the reflection isomorphism
};

/** Human-readable backend name ("portable", "clmul", "arm"). */
const char *crcBackendName(CrcBackend backend);

/** Whether @p backend is usable on this machine (compiled in AND the
 *  CPU advertises the ISA). Portable is always true. */
bool crcBackendAvailable(CrcBackend backend);

/** The backend the dispatcher resolved for this process: the env
 *  override if set and available, else the fastest available. */
CrcBackend crcActiveBackend();

/**
 * Append @p n message bytes to a running CRC on a *specific* backend
 * (tests and micro_crc pin each engine individually; production code
 * calls crc32AppendBulk from crc32.hh instead). Requesting an
 * unavailable backend is a fatal error.
 */
u32 crc32AppendWith(CrcBackend backend, u32 crc, const u8 *data,
                    std::size_t n);

} // namespace regpu

#endif // REGPU_CRC_CRC32_BACKEND_HH
