/**
 * @file
 * Hardware-faithful models of the Compute CRC and Accumulate CRC units
 * (paper Figs. 8-9, Algorithms 2-3), including cycle accounting.
 *
 * The Compute CRC unit signs a variable-length data block (a primitive's
 * vertex attributes or a drawcall's constants) by folding fixed 64-bit
 * sub-blocks, one per cycle. The Accumulate CRC unit re-aligns a tile's
 * running signature by multiplying it by x^64 once per sub-block of the
 * newly signed block, also one step per cycle.
 */

#ifndef REGPU_CRC_UNITS_HH
#define REGPU_CRC_UNITS_HH

#include <span>

#include "crc/crc32.hh"

namespace regpu
{

/** Result of signing one data block. */
struct BlockSignature
{
    u32 crc = 0;         //!< F(block)
    u32 shiftAmount = 0; //!< number of 64-bit sub-blocks folded
};

/**
 * Compute CRC unit (Fig. 8): incrementally signs a byte stream in
 * 64-bit sub-blocks using the Sign and Shift subunits.
 */
class ComputeCrcUnit
{
  public:
    ComputeCrcUnit() : tables(CrcTables::instance()) {}

    /**
     * Sign a whole data block (zero-padded to a 64-bit boundary).
     * @return the block's CRC and its length in sub-blocks.
     */
    BlockSignature
    sign(std::span<const u8> block)
    {
        u32 crcOut = 0;
        u32 shiftAmount = 0;
        std::size_t i = 0;
        while (i < block.size()) {
            u64 sub = 0;
            for (int b = 0; b < 8; b++) {
                u8 byte = (i + b < block.size()) ? block[i + b] : 0;
                sub = (sub << 8) | byte;
            }
            // One iteration of Algorithm 2: Sign subunit on the new
            // sub-block in parallel with the Shift subunit on crcOut.
            crcOut = tables.signBlock64(sub) ^ tables.shift64(crcOut);
            shiftAmount++;
            i += 8;
            cycles++;
        }
        return {crcOut, shiftAmount};
    }

    /** Cycles consumed so far (1 per 64-bit sub-block). */
    Cycles busyCycles() const { return cycles; }

    /** Number of LUT lookups performed (12 per cycle: 8 sign + 4 shift).*/
    u64 lutAccesses() const { return cycles * 12; }

    void resetStats() { cycles = 0; }

  private:
    const CrcTables &tables;
    Cycles cycles = 0;
};

/**
 * Accumulate CRC unit (Fig. 9): multiplies a tile's stored CRC by
 * x^(64 * shiftAmount), one Shift-subunit step per cycle.
 */
class AccumulateCrcUnit
{
  public:
    AccumulateCrcUnit() : tables(CrcTables::instance()) {}

    /** Algorithm 3: re-align tileCrc past a block of given length. */
    u32
    accumulate(u32 tileCrc, u32 shiftAmount)
    {
        u32 crc = tileCrc;
        for (u32 k = 0; k < shiftAmount; k++) {
            crc = tables.shift64(crc);
            cycles++;
        }
        return crc;
    }

    Cycles busyCycles() const { return cycles; }

    /** LUT lookups (4 shift-LUT reads per cycle). */
    u64 lutAccesses() const { return cycles * 4; }

    void resetStats() { cycles = 0; }

  private:
    const CrcTables &tables;
    Cycles cycles = 0;
};

} // namespace regpu

#endif // REGPU_CRC_UNITS_HH
