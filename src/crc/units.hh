/**
 * @file
 * Hardware-faithful models of the Compute CRC and Accumulate CRC units
 * (paper Figs. 8-9, Algorithms 2-3), including cycle accounting.
 *
 * The Compute CRC unit signs a variable-length data block (a primitive's
 * vertex attributes or a drawcall's constants) by folding fixed 64-bit
 * sub-blocks, one per cycle; a final partial sub-block is folded with
 * per-byte position factors so the signature is byte-exact (no zero
 * padding). The Accumulate CRC unit re-aligns a tile's running
 * signature by multiplying it by x^(8*length), one 64-bit step per
 * cycle plus one cycle for the sub-block tail factor.
 */

#ifndef REGPU_CRC_UNITS_HH
#define REGPU_CRC_UNITS_HH

#include <span>

#include "crc/crc32.hh"

namespace regpu
{

/** Result of signing one data block. */
struct BlockSignature
{
    u32 crc = 0;        //!< F(block), byte-exact
    u64 lengthBytes = 0; //!< block length in bytes

    /** Datapath occupancy: 64-bit sub-blocks, tail included. */
    u32
    subBlocks() const
    {
        return static_cast<u32>((lengthBytes + 7) / 8);
    }
};

/**
 * Compute CRC unit (Fig. 8): incrementally signs a byte stream in
 * 64-bit sub-blocks using the Sign and Shift subunits.
 */
class ComputeCrcUnit
{
  public:
    /**
     * Sign a whole data block, byte-exact. The datapath is the shared
     * Crc32Stream core (slice-by-8 full sub-blocks, per-byte position
     * factors on the tail - one iteration of Algorithm 2 per
     * sub-block); this model only adds the cycle accounting.
     * @return the block's CRC and its length in bytes.
     */
    BlockSignature
    sign(std::span<const u8> block)
    {
        Crc32Stream stream;
        stream.update(block);
        BlockSignature sig{stream.value(), block.size()};
        cycles += sig.subBlocks();
        return sig;
    }

    /** Cycles consumed so far (1 per 64-bit sub-block, tail included). */
    Cycles busyCycles() const { return cycles; }

    /** Number of LUT lookups performed (12 per cycle: 8 sign + 4 shift).*/
    u64 lutAccesses() const { return cycles * 12; }

    void resetStats() { cycles = 0; }

  private:
    Cycles cycles = 0;
};

/**
 * Accumulate CRC unit (Fig. 9): multiplies a tile's stored CRC by
 * x^(8 * lengthBytes), one Shift-subunit step per 64-bit sub-block
 * plus one step for the sub-block tail's byte-granular factor.
 */
class AccumulateCrcUnit
{
  public:
    AccumulateCrcUnit() : tables(CrcTables::instance()) {}

    /** Algorithm 3: re-align tileCrc past a block of @p lengthBytes. */
    u32
    accumulate(u32 tileCrc, u64 lengthBytes)
    {
        u32 crc = tileCrc;
        for (u64 k = 0; k < lengthBytes / 8; k++) {
            crc = tables.shift64(crc);
            cycles++;
        }
        const u64 tail = lengthBytes % 8;
        if (tail) {
            for (u64 k = 0; k < tail; k++)
                crc = tables.appendByte(crc, 0);
            cycles++;
        }
        return crc;
    }

    Cycles busyCycles() const { return cycles; }

    /** LUT lookups (4 shift-LUT reads per cycle). */
    u64 lutAccesses() const { return cycles * 4; }

    void resetStats() { cycles = 0; }

  private:
    const CrcTables &tables;
    Cycles cycles = 0;
};

} // namespace regpu

#endif // REGPU_CRC_UNITS_HH
