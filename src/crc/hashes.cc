#include "crc/hashes.hh"

namespace regpu
{

const char *
hashKindName(HashKind kind)
{
    switch (kind) {
      case HashKind::Crc32:
        return "CRC32";
      case HashKind::XorFold:
        return "XOR";
      case HashKind::AddFold:
        return "ADD";
      case HashKind::Fnv1a:
        return "FNV1a";
      case HashKind::Trunc4:
        return "TRUNC4";
    }
    return "?";
}

u32
hashBlock(HashKind kind, std::span<const u8> block)
{
    switch (kind) {
      case HashKind::Crc32:
        return crc32Tabular(block);
      case HashKind::XorFold: {
        u32 acc = 0;
        for (std::size_t i = 0; i < block.size(); i++)
            acc ^= static_cast<u32>(block[i]) << (8 * (i % 4));
        return acc;
      }
      case HashKind::AddFold: {
        u32 acc = 0;
        for (std::size_t i = 0; i < block.size(); i++)
            acc += static_cast<u32>(block[i]) << (8 * (i % 4));
        return acc;
      }
      case HashKind::Fnv1a: {
        u32 acc = 2166136261u;
        for (u8 byte : block) {
            acc ^= byte;
            acc *= 16777619u;
        }
        return acc;
      }
      case HashKind::Trunc4: {
        u32 acc = 0;
        for (std::size_t i = 0; i < block.size() && i < 4; i++)
            acc |= static_cast<u32>(block[i]) << (8 * i);
        return acc;
      }
    }
    return 0;
}

u32
hashCombine(HashKind kind, u32 tileSig, u32 blockSig, u32 blocks64OfBlock)
{
    switch (kind) {
      case HashKind::Crc32:
        return crc32Combine(tileSig, blockSig, blocks64OfBlock);
      case HashKind::XorFold:
        return tileSig ^ blockSig;
      case HashKind::AddFold:
        return tileSig + blockSig;
      case HashKind::Fnv1a:
        // Serial re-mix: order-sensitive but far weaker diffusion than
        // a true byte-serial FNV over the concatenated message.
        return (tileSig ^ blockSig) * 16777619u;
      case HashKind::Trunc4:
        // Keeps only the latest block's prefix: any two streams ending
        // in blocks with equal first-4-bytes collide.
        return blockSig;
    }
    return 0;
}

} // namespace regpu
