#include "crc/hashes.hh"

namespace regpu
{

const char *
hashKindName(HashKind kind)
{
    switch (kind) {
      case HashKind::Crc32:
        return "CRC32";
      case HashKind::XorFold:
        return "XOR";
      case HashKind::AddFold:
        return "ADD";
      case HashKind::Fnv1a:
        return "FNV1a";
      case HashKind::Trunc4:
        return "TRUNC4";
    }
    return "?";
}

const char *
hashKindUsage()
{
    // Raw string: the quoted kind names read as written in the
    // diagnostics that embed this text.
    return R"(valid hash kinds: "crc32", "xor", "add", "fnv")";
}

void
HashStream::reset()
{
    crc_.reset();
    acc_ = kind_ == HashKind::Fnv1a ? 2166136261u : 0u;
    length_ = 0;
}

void
HashStream::update(std::span<const u8> bytes)
{
    switch (kind_) {
      case HashKind::Crc32:
        crc_.update(bytes);
        return;
      case HashKind::XorFold:
        for (u8 byte : bytes) {
            acc_ ^= static_cast<u32>(byte) << (8 * (length_ % 4));
            length_++;
        }
        return;
      case HashKind::AddFold:
        for (u8 byte : bytes) {
            acc_ += static_cast<u32>(byte) << (8 * (length_ % 4));
            length_++;
        }
        return;
      case HashKind::Fnv1a:
        for (u8 byte : bytes) {
            acc_ ^= byte;
            acc_ *= 16777619u;
            length_++;
        }
        return;
      case HashKind::Trunc4:
        for (u8 byte : bytes) {
            if (length_ < 4)
                acc_ |= static_cast<u32>(byte) << (8 * length_);
            length_++;
        }
        return;
    }
}

u32
HashStream::finalize() const
{
    return kind_ == HashKind::Crc32 ? crc_.value() : acc_;
}

u32
hashBlock(HashKind kind, std::span<const u8> block)
{
    HashStream stream(kind);
    stream.update(block);
    return stream.finalize();
}

u32
hashCombine(HashKind kind, u32 tileSig, u32 blockSig, u64 blockLengthBytes)
{
    switch (kind) {
      case HashKind::Crc32:
        return crc32Combine(tileSig, blockSig, blockLengthBytes);
      case HashKind::XorFold:
        return tileSig ^ blockSig;
      case HashKind::AddFold:
        return tileSig + blockSig;
      case HashKind::Fnv1a:
        // Serial re-mix: order-sensitive but far weaker diffusion than
        // a true byte-serial FNV over the concatenated message.
        return (tileSig ^ blockSig) * 16777619u;
      case HashKind::Trunc4:
        // Keeps only the latest block's prefix: any two streams ending
        // in blocks with equal first-4-bytes collide.
        return blockSig;
    }
    return 0;
}

} // namespace regpu
