#include "crc/crc32_backend.hh"

#include <cstdlib>
#include <cstring>

#include "common/logging.hh"
#include "crc/crc32.hh"

#if defined(REGPU_HAVE_CLMUL)
#include <immintrin.h>
#endif
#if defined(REGPU_HAVE_ARM_CRC)
#include <arm_acle.h>
#if defined(__linux__)
#include <sys/auxv.h>
#endif
#endif

namespace regpu
{

namespace
{

/** Portable bulk append: the same slice-by-8 + byte-tail stepping as
 *  Crc32Stream's inline small-message path, shared by every hardware
 *  backend for sub-block tails and final reduction. */
u32
appendPortable(u32 crc, const u8 *p, std::size_t n)
{
    const CrcTables &tables = CrcTables::instance();
    while (n >= 8) {
        u64 block = 0;
        for (int i = 0; i < 8; i++)
            block = (block << 8) | p[i];
        crc = tables.appendBlock64(crc, block);
        p += 8;
        n -= 8;
    }
    while (n > 0) {
        crc = tables.appendByte(crc, *p++);
        n--;
    }
    return crc;
}

#if defined(REGPU_HAVE_CLMUL)

/**
 * PCLMULQDQ 128-bit folding for the non-reflected generator.
 *
 * State register S holds a polynomial with bit i = coefficient of x^i;
 * blocks are loaded with a full 16-byte reversal (PSHUFB) so the first
 * message byte's MSB lands at bit 127 = x^127, matching the MSB-first
 * message polynomial. The invariant after each fold is
 *
 *     S == (bytes consumed so far)(x)  mod G
 *
 * maintained by S' = S_hi*(x^192 mod G) ^ S_lo*(x^128 mod G) ^ D,
 * since S*x^128 = S_hi*x^192 + S_lo*x^128. The incoming running CRC
 * (which is prefix*x^32 mod G) is folded into the first block as
 * crc*x^96: after k blocks it has accumulated the factor x^(128k-32),
 * so the final *x^32 reduction turns it into crc*x^(8*16k) - exactly
 * the Algorithm-1 shift for the consumed byte count. The reduction
 * S*x^32 mod G itself is 16 bytes through the table engine, as is the
 * sub-block tail.
 */
__attribute__((target("pclmul,sse4.1"))) u32
appendClmul(u32 crc, const u8 *p, std::size_t n)
{
    if (n < 16)
        return appendPortable(crc, p, n);

    // Fold constants, derived (not hardcoded) from the generator.
    static const u32 k1 = gf2PowXMod(192);
    static const u32 k2 = gf2PowXMod(128);
    const __m128i fold = _mm_set_epi64x(static_cast<i64>(k2),
                                        static_cast<i64>(k1));
    const __m128i byteReverse =
        _mm_set_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14,
                     15);

    __m128i s = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(p)),
        byteReverse);
    s = _mm_xor_si128(s, _mm_set_epi32(static_cast<int>(crc), 0, 0, 0));
    p += 16;
    n -= 16;

    while (n >= 16) {
        const __m128i d = _mm_shuffle_epi8(
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(p)),
            byteReverse);
        const __m128i hi = _mm_clmulepi64_si128(s, fold, 0x01); // S_hi*k1
        const __m128i lo = _mm_clmulepi64_si128(s, fold, 0x10); // S_lo*k2
        s = _mm_xor_si128(_mm_xor_si128(hi, lo), d);
        p += 16;
        n -= 16;
    }

    u8 residue[16];
    _mm_storeu_si128(reinterpret_cast<__m128i *>(residue),
                     _mm_shuffle_epi8(s, byteReverse));
    return appendPortable(appendPortable(0, residue, 16), p, n);
}

bool
clmulSupported()
{
    return __builtin_cpu_supports("pclmul")
        && __builtin_cpu_supports("sse4.1");
}

#endif // REGPU_HAVE_CLMUL

#if defined(REGPU_HAVE_ARM_CRC)

/**
 * ARMv8 CRC32 extension via the reflection isomorphism: crc32x/crc32b
 * implement the reflected engine for rev32(G) = 0xEDB88320, and
 *
 *     rev32(F_nonrefl(crc, bytes))
 *         == F_refl(rev32(crc), rev8-each-byte(bytes))
 *
 * with the reflected engine consuming its 64-bit operand LSByte-first
 * (message order preserved). From a little-endian load, per-byte bit
 * reversal without reordering is rbit64(bswap64(x)).
 */
__attribute__((target("+crc"))) u32
appendArm(u32 crc, const u8 *p, std::size_t n)
{
    u32 state = __rbit(crc);
    while (n >= 8) {
        u64 x;
        std::memcpy(&x, p, 8);
        state = __crc32d(state, __rbitll(__builtin_bswap64(x)));
        p += 8;
        n -= 8;
    }
    while (n > 0) {
        state = __crc32b(state,
                         static_cast<u8>(__rbit(static_cast<u32>(*p))
                                         >> 24));
        p++;
        n--;
    }
    return __rbit(state);
}

bool
armCrcSupported()
{
#if defined(__linux__) && defined(HWCAP_CRC32)
    return (getauxval(AT_HWCAP) & HWCAP_CRC32) != 0;
#elif defined(__ARM_FEATURE_CRC32)
    return true;
#else
    return false;
#endif
}

#endif // REGPU_HAVE_ARM_CRC

CrcBackend
resolveBackend()
{
    const char *env = std::getenv("REGPU_CRC_BACKEND");
    if (env && *env && std::strcmp(env, "auto") != 0) {
        if (std::strcmp(env, "portable") == 0)
            return CrcBackend::Portable;
        CrcBackend forced;
        if (std::strcmp(env, "clmul") == 0) {
            forced = CrcBackend::Clmul;
        } else if (std::strcmp(env, "arm") == 0) {
            forced = CrcBackend::ArmCrc;
        } else {
            warn("REGPU_CRC_BACKEND=", env,
                 " not recognised (portable|clmul|arm|auto); using auto");
            forced = CrcBackend::Portable;
            env = nullptr;
        }
        if (env) {
            if (crcBackendAvailable(forced))
                return forced;
            warn("REGPU_CRC_BACKEND=", env,
                 " unavailable on this CPU/build; falling back to "
                 "portable");
            return CrcBackend::Portable;
        }
    }
#if defined(REGPU_HAVE_CLMUL)
    if (clmulSupported())
        return CrcBackend::Clmul;
#endif
#if defined(REGPU_HAVE_ARM_CRC)
    if (armCrcSupported())
        return CrcBackend::ArmCrc;
#endif
    return CrcBackend::Portable;
}

} // namespace

const char *
crcBackendName(CrcBackend backend)
{
    switch (backend) {
      case CrcBackend::Portable:
        return "portable";
      case CrcBackend::Clmul:
        return "clmul";
      case CrcBackend::ArmCrc:
        return "arm";
    }
    return "?";
}

bool
crcBackendAvailable(CrcBackend backend)
{
    switch (backend) {
      case CrcBackend::Portable:
        return true;
      case CrcBackend::Clmul:
#if defined(REGPU_HAVE_CLMUL)
        return clmulSupported();
#else
        return false;
#endif
      case CrcBackend::ArmCrc:
#if defined(REGPU_HAVE_ARM_CRC)
        return armCrcSupported();
#else
        return false;
#endif
    }
    return false;
}

CrcBackend
crcActiveBackend()
{
    // Resolved exactly once per process; thread-safe magic static,
    // same idiom as CrcTables::instance().
    static const CrcBackend backend = resolveBackend();
    return backend;
}

u32
crc32AppendWith(CrcBackend backend, u32 crc, const u8 *data,
                std::size_t n)
{
    switch (backend) {
      case CrcBackend::Portable:
        return appendPortable(crc, data, n);
      case CrcBackend::Clmul:
#if defined(REGPU_HAVE_CLMUL)
        REGPU_ASSERT(clmulSupported());
        return appendClmul(crc, data, n);
#else
        break;
#endif
      case CrcBackend::ArmCrc:
#if defined(REGPU_HAVE_ARM_CRC)
        REGPU_ASSERT(armCrcSupported());
        return appendArm(crc, data, n);
#else
        break;
#endif
    }
    fatal("CRC backend ", crcBackendName(backend),
          " not available in this build");
}

u32
crc32AppendBulk(u32 crc, const u8 *data, std::size_t n)
{
    return crc32AppendWith(crcActiveBackend(), crc, data, n);
}

} // namespace regpu
