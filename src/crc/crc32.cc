#include "crc/crc32.hh"

#include "common/logging.hh"

namespace regpu
{

u32
gf2MulMod(u32 a, u32 b)
{
    // Carry-less multiply-accumulate with modular reduction folded in:
    // process b MSB-first; at each step acc = acc*x mod G, and add a
    // when the current bit of b is set.
    u32 acc = 0;
    for (int i = 31; i >= 0; i--) {
        u32 top = acc & 0x80000000u;
        acc <<= 1;
        if (top)
            acc ^= crcPolynomial;
        if (b & (1u << i))
            acc ^= a;
    }
    return acc;
}

u32
gf2PowXMod(u64 n)
{
    // Square-and-multiply on the exponent of x.
    u32 result = 0x80000000u >> 31; // the polynomial "1"
    result = 1u;                    // x^0
    u32 base = 2u;                  // x^1
    while (n > 0) {
        if (n & 1)
            result = gf2MulMod(result, base);
        base = gf2MulMod(base, base);
        n >>= 1;
    }
    return result;
}

u32
crc32Reference(std::span<const u8> message)
{
    // F(M) = M * x^32 mod G: shift each message bit in MSB-first, then
    // the x^32 factor is realised by the standard "inject at bit 31"
    // formulation.
    u32 crc = 0;
    for (u8 byte : message) {
        crc ^= static_cast<u32>(byte) << 24;
        for (int bit = 0; bit < 8; bit++) {
            if (crc & 0x80000000u)
                crc = (crc << 1) ^ crcPolynomial;
            else
                crc <<= 1;
        }
    }
    return crc;
}

u32
crc32ReferenceBlock64(u64 block)
{
    u8 bytes[8];
    for (int i = 0; i < 8; i++)
        bytes[i] = static_cast<u8>(block >> (8 * (7 - i)));
    return crc32Reference({bytes, 8});
}

CrcTables::CrcTables()
{
    // signLut[i][b]: byte b contributes b(x) * x^(8*(7-i)) to the 64-bit
    // block polynomial; the whole block is then multiplied by x^32.
    for (int i = 0; i < 8; i++) {
        u32 positionFactor = gf2PowXMod(8ull * (7 - i) + 32);
        for (u32 b = 0; b < 256; b++)
            signLut[i][b] = gf2MulMod(b, positionFactor);
    }
    // shiftLut[i][b]: byte b of a 32-bit residue contributes
    // b(x) * x^(8*(3-i)); the residue is then multiplied by x^64.
    for (int i = 0; i < 4; i++) {
        u32 positionFactor = gf2PowXMod(8ull * (3 - i) + 64);
        for (u32 b = 0; b < 256; b++)
            shiftLut[i][b] = gf2MulMod(b, positionFactor);
    }
}

const CrcTables &
CrcTables::instance()
{
    static CrcTables tables;
    return tables;
}

u32
crc32Tabular(std::span<const u8> message)
{
    Crc32Stream stream;
    stream.update(message);
    return stream.value();
}

u32
crc32Combine(u32 crcA, u32 crcB, u64 bytesOfB)
{
    return CrcTables::instance().shiftBytes(crcA, bytesOfB) ^ crcB;
}

} // namespace regpu
