#include "power/energy_model.hh"

namespace regpu
{

AreaReport
AreaReport::forConfig(const GpuConfig &config)
{
    AreaReport r;
    r.signatureBufferBytes = config.signatureBufferBytes();
    r.otQueueBytes = config.otQueueEntries * 4;
    r.bitmapBytes = (config.numTiles() + 7) / 8;
    // Baseline SRAM inventory: caches + on-chip buffers + queues
    // (Table I) as the area proxy. Real GPUs add datapath area, which
    // makes the RE fraction only smaller.
    r.baselineSramBytes = config.vertexCache.sizeBytes
        + static_cast<u64>(config.numTextureCaches)
          * config.textureCache.sizeBytes
        + config.tileCache.sizeBytes + config.l2Cache.sizeBytes
        + config.colorBuffer.sizeBytes + config.depthBuffer.sizeBytes
        + 2ull * config.vertexQueueEntries * 136
        + config.triangleQueueEntries * 388ull
        + config.tileQueueEntries * 388ull
        + config.fragmentQueueEntries * 233ull
        // Datapath proxy: each programmable core (register files,
        // ALUs, schedulers, fixed-function helpers) plus the shared
        // front-end, expressed as SRAM-equivalent bytes. A Mali-450
        // MP4-class GPU is ~10 mm^2 at 32 nm; per-core area dwarfs
        // the caches, which is why the paper reports the added RE
        // structures as <1% of the chip.
        + (config.numFragmentProcessors + config.numVertexProcessors)
          * 768ull * KiB;
    return r;
}

} // namespace regpu
