/**
 * @file
 * Event-based energy model (McPAT/CACTI substitute).
 *
 * Each microarchitectural event carries a per-access energy whose
 * magnitude follows published 32 nm CACTI/McPAT figures for structures
 * of the Table I sizes; leakage is charged per busy cycle. Constants
 * are calibrated so the baseline's aggregate splits match the paper's
 * premises: roughly 75% of GPU memory accesses originate in the Raster
 * Pipeline (textures + colors + primitives) and main memory accounts
 * for about half the GPU/memory system energy.
 */

#ifndef REGPU_POWER_ENERGY_MODEL_HH
#define REGPU_POWER_ENERGY_MODEL_HH

#include "common/config.hh"
#include "common/types.hh"

namespace regpu
{

/** Per-event energies in picojoules (32 nm, 1 V). */
struct EnergyParams
{
    // DRAM: LPDDR3 ~ tens of pJ per byte transferred, a fixed
    // per-burst command/IO cost, and a row-activation cost charged
    // only when a burst misses the open row (the DramModel counts
    // those, so sequential streams are cheaper than scattered ones).
    double dramPerByte = 25.0;
    double dramPerAccess = 400.0;
    double dramPerActivation = 900.0;

    // On-chip SRAM reads, scaled by structure size.
    double vertexCacheAccess = 6.0;   // 4 KB
    double textureCacheAccess = 9.0;  // 8 KB
    double tileCacheAccess = 30.0;    // 128 KB
    double l2CacheAccess = 45.0;      // 256 KB
    double colorDepthBufferAccess = 3.0; // 1 KB on-chip buffers

    // Datapath.
    double shaderInstruction = 8.0;    // ALU + regfile + fetch
    double rasterizedFragment = 6.0;   // rasterizer + interpolators
    double earlyZTest = 2.5;
    double blendOp = 3.0;
    double vertexFetched = 4.0;
    double triangleSetup = 20.0;
    double binnedOverlap = 5.0;        // PLB sort step per tile overlap

    // Rendering Elimination hardware (Section V: <0.5% energy).
    double crcLutAccess = 0.8;         // one 1 KB LUT read
    double signatureBufferAccess = 2.5;// 28.8 KB SRAM
    double otQueuePush = 0.5;
    double bitmapAccess = 0.2;

    // Leakage, per cycle at 400 MHz / 32 nm: ~45 mW GPU static.
    double gpuLeakagePerCycle = 112.0;  // pJ/cycle ~= 45 mW
    double dramBackgroundPerCycle = 38.0; // pJ/cycle ~= 15 mW
};

/** Energy totals split as in Fig. 14b. */
struct EnergyBreakdown
{
    PicoJoules gpuDynamic = 0;
    PicoJoules gpuStatic = 0;
    PicoJoules memDynamic = 0;
    PicoJoules memStatic = 0;

    PicoJoules gpu() const { return gpuDynamic + gpuStatic; }
    PicoJoules memory() const { return memDynamic + memStatic; }
    PicoJoules total() const { return gpu() + memory(); }
};

/**
 * Accumulates energy from event counts.
 */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyParams &params = {})
        : p(params)
    {}

    const EnergyParams &params() const { return p; }

    /** Charge DRAM traffic (@p rowActivations = open-row misses). */
    void
    chargeDram(u64 accesses, u64 bytes, u64 rowActivations = 0)
    {
        acc.memDynamic += accesses * p.dramPerAccess
            + bytes * p.dramPerByte
            + rowActivations * p.dramPerActivation;
    }

    /** Charge on-chip cache activity. */
    void
    chargeCaches(u64 vertexAcc, u64 textureAcc, u64 tileAcc, u64 l2Acc)
    {
        acc.gpuDynamic += vertexAcc * p.vertexCacheAccess
            + textureAcc * p.textureCacheAccess
            + tileAcc * p.tileCacheAccess
            + l2Acc * p.l2CacheAccess;
    }

    /** Charge shading/raster datapath activity. */
    void
    chargeDatapath(u64 vertsFetched, u64 vertexInstrs, u64 triangles,
                   u64 overlaps, u64 fragments, u64 zTests,
                   u64 fragInstrs, u64 blends, u64 cbAccesses)
    {
        acc.gpuDynamic += vertsFetched * p.vertexFetched
            + vertexInstrs * p.shaderInstruction
            + triangles * p.triangleSetup
            + overlaps * p.binnedOverlap
            + fragments * p.rasterizedFragment
            + zTests * p.earlyZTest
            + fragInstrs * p.shaderInstruction
            + blends * p.blendOp
            + cbAccesses * p.colorDepthBufferAccess;
    }

    /** Charge Rendering Elimination / Transaction Elimination HW. */
    void
    chargeSignatureHw(u64 lutAccesses, u64 sigBufAccesses,
                      u64 otPushes, u64 bitmapAccesses)
    {
        acc.gpuDynamic += lutAccesses * p.crcLutAccess
            + sigBufAccesses * p.signatureBufferAccess
            + otPushes * p.otQueuePush
            + bitmapAccesses * p.bitmapAccess;
    }

    /** Charge leakage for the frame's cycle count. */
    void
    chargeStatic(Cycles gpuCycles)
    {
        acc.gpuStatic += gpuCycles * p.gpuLeakagePerCycle;
        acc.memStatic += gpuCycles * p.dramBackgroundPerCycle;
    }

    const EnergyBreakdown &breakdown() const { return acc; }
    void reset() { acc = EnergyBreakdown{}; }

    /**
     * Average power in milliwatts given total cycles at the configured
     * frequency (Fig. 1 substitute).
     */
    static double
    averagePowerMw(const EnergyBreakdown &e, Cycles cycles,
                   u64 frequencyHz)
    {
        if (cycles == 0)
            return 0.0;
        double seconds = static_cast<double>(cycles) / frequencyHz;
        return e.total() * 1e-12 / seconds * 1e3;
    }

  private:
    EnergyParams p;
    EnergyBreakdown acc;
};

/**
 * Area accounting for the added RE hardware (paper: <1% of GPU area).
 * Returns structure sizes in bytes; the GPU baseline area proxy is the
 * sum of its SRAM structures.
 */
struct AreaReport
{
    u64 crcLutBytes = 12 * 1024;       //!< 8 sign + 4 shift LUTs
    u64 signatureBufferBytes = 0;      //!< 2 x numTiles x 4 B
    u64 otQueueBytes = 16 * 4;
    u64 bitmapBytes = 0;               //!< numTiles / 8

    u64 baselineSramBytes = 0;

    double
    overheadFraction() const
    {
        u64 added = crcLutBytes + signatureBufferBytes + otQueueBytes
            + bitmapBytes;
        return baselineSramBytes
            ? static_cast<double>(added) / baselineSramBytes : 0.0;
    }

    static AreaReport forConfig(const GpuConfig &config);
};

} // namespace regpu

#endif // REGPU_POWER_ENERGY_MODEL_HH
