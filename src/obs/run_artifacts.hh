/**
 * @file
 * Per-run observability artifacts: frame-by-frame stat time-series
 * (JSON-Lines) and per-tile heatmaps (CSV + PPM) for one Simulator
 * run.
 *
 * The writer is pure output — it only *reads* simulator state at
 * frame boundaries, so producing artifacts cannot perturb results:
 * a run with an --obs-dir emits CSV/stdout bit-identical to one
 * without.
 *
 * Artifacts under <dir>, all prefixed with <tag> (typically
 * "<workload>.<technique>"):
 *   <tag>.frames.jsonl        one JSON object per frame with the
 *                             frame's cycle split, DRAM bytes and the
 *                             per-frame *delta* of every StatRegistry
 *                             counter/scalar (Fig. 1-style
 *                             trajectories instead of run totals)
 *   <tag>.heat.re.csv         long-format tile map, one row per
 *                             (frame, tile): 1 = skipped by RE
 *   <tag>.heat.te.csv         1 = rendered but flush elided by TE
 *   <tag>.heat.dram.csv       per-tile DRAM bytes (same attribution
 *                             the cycle model charges)
 *   <tag>.<m>.f####.ppm       per-frame P6 grayscale maps of metric
 *                             m in {re, te, dram}, one pixel per tile
 *                             (extends Fig. 2 from a fraction to a
 *                             picture)
 *   <tag>.<m>.total.ppm       whole-run accumulation of metric m
 */

#ifndef REGPU_OBS_RUN_ARTIFACTS_HH
#define REGPU_OBS_RUN_ARTIFACTS_HH

#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace regpu
{

class RunObsWriter
{
  public:
    /** Opens the artifact streams; fatal() when @p dir cannot be
     *  created or a file cannot be opened. */
    RunObsWriter(const std::string &dir, const std::string &tag,
                 const GpuConfig &config);
    ~RunObsWriter();

    RunObsWriter(const RunObsWriter &) = delete;
    RunObsWriter &operator=(const RunObsWriter &) = delete;

    /** Reset the per-tile maps for frame @p frame. */
    void beginFrame(u64 frame);

    /** Record one tile's outcome (call once per tile per frame).
     *  @p dramBytes is the tile's attributed share of the frame's
     *  raster-class DRAM traffic. */
    void tileOutcome(TileId tile, bool rendered, bool flushed,
                     u64 dramBytes);

    /** Emit the frame's JSONL line, heat CSV rows and PPM maps.
     *  @p stats is snapshotted; deltas against the previous frame's
     *  snapshot are what the JSONL line carries. */
    void endFrame(u64 frame, const StatRegistry &stats,
                  Cycles geometryCycles, Cycles rasterCycles,
                  u64 dramBytes);

    /** Write the whole-run total PPMs and close every stream (also
     *  run by the destructor). */
    void finish();

  private:
    void writeHeatRows(std::ofstream &os, u64 frame,
                       const std::vector<u64> &vals);
    void writePpm(const std::string &path,
                  const std::vector<u64> &vals) const;
    std::string ppmPath(const char *metric, u64 frame) const;

    std::string dir_;
    std::string tag_;
    u32 tilesX_;
    u32 tilesY_;

    std::ofstream framesJsonl;
    std::ofstream heatRe;
    std::ofstream heatTe;
    std::ofstream heatDram;

    std::vector<u64> curRe, curTe, curDram;
    std::vector<u64> totRe, totTe, totDram;

    std::map<std::string, u64> prevCounters;
    std::map<std::string, double> prevScalars;

    bool finished = false;
};

} // namespace regpu

#endif // REGPU_OBS_RUN_ARTIFACTS_HH
