#include "obs/run_artifacts.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "common/logging.hh"
#include "obs/obs.hh"

namespace regpu
{

namespace
{

std::ofstream
openArtifact(const std::string &path)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        fatal("obs: cannot open artifact file for writing: ", path);
    return out;
}

} // namespace

RunObsWriter::RunObsWriter(const std::string &dir, const std::string &tag,
                           const GpuConfig &config)
    : dir_(dir), tag_(tag), tilesX_(config.tilesX()),
      tilesY_(config.tilesY())
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec)
        fatal("obs: cannot create artifact directory ", dir_, ": ",
              ec.message());

    const std::string base = dir_ + "/" + tag_;
    framesJsonl = openArtifact(base + ".frames.jsonl");
    heatRe = openArtifact(base + ".heat.re.csv");
    heatTe = openArtifact(base + ".heat.te.csv");
    heatDram = openArtifact(base + ".heat.dram.csv");
    for (std::ofstream *os : {&heatRe, &heatTe, &heatDram})
        *os << "frame,tileX,tileY,value\n";

    const std::size_t n = config.numTiles();
    for (std::vector<u64> *v :
         {&curRe, &curTe, &curDram, &totRe, &totTe, &totDram})
        v->assign(n, 0);
}

RunObsWriter::~RunObsWriter()
{
    finish();
}

void
RunObsWriter::beginFrame(u64 frame)
{
    (void)frame;
    std::fill(curRe.begin(), curRe.end(), 0);
    std::fill(curTe.begin(), curTe.end(), 0);
    std::fill(curDram.begin(), curDram.end(), 0);
}

void
RunObsWriter::tileOutcome(TileId tile, bool rendered, bool flushed,
                          u64 dramBytes)
{
    if (tile >= curRe.size())
        return;
    curRe[tile] = rendered ? 0 : 1;
    curTe[tile] = (rendered && !flushed) ? 1 : 0;
    curDram[tile] = dramBytes;
    totRe[tile] += curRe[tile];
    totTe[tile] += curTe[tile];
    totDram[tile] += dramBytes;
}

void
RunObsWriter::writeHeatRows(std::ofstream &os, u64 frame,
                            const std::vector<u64> &vals)
{
    for (std::size_t t = 0; t < vals.size(); t++) {
        os << frame << "," << (t % tilesX_) << "," << (t / tilesX_)
           << "," << vals[t] << "\n";
    }
}

std::string
RunObsWriter::ppmPath(const char *metric, u64 frame) const
{
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), ".f%04llu.ppm",
                  static_cast<unsigned long long>(frame));
    return dir_ + "/" + tag_ + "." + metric + suffix;
}

void
RunObsWriter::writePpm(const std::string &path,
                       const std::vector<u64> &vals) const
{
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    if (!out)
        fatal("obs: cannot open artifact file for writing: ", path);
    out << "P6\n" << tilesX_ << " " << tilesY_ << "\n255\n";
    const u64 maxVal = vals.empty()
        ? 0 : *std::max_element(vals.begin(), vals.end());
    for (u64 v : vals) {
        const u8 g = maxVal
            ? static_cast<u8>((v * 255) / maxVal) : 0;
        const char px[3] = {static_cast<char>(g), static_cast<char>(g),
                            static_cast<char>(g)};
        out.write(px, 3);
    }
}

void
RunObsWriter::endFrame(u64 frame, const StatRegistry &stats,
                       Cycles geometryCycles, Cycles rasterCycles,
                       u64 dramBytes)
{
    writeHeatRows(heatRe, frame, curRe);
    writeHeatRows(heatTe, frame, curTe);
    writeHeatRows(heatDram, frame, curDram);
    writePpm(ppmPath("re", frame), curRe);
    writePpm(ppmPath("te", frame), curTe);
    writePpm(ppmPath("dram", frame), curDram);

    std::ostream &os = framesJsonl;
    os << "{\"frame\":" << frame << ",\"tag\":";
    obs_detail::writeJsonString(os, tag_);
    os << ",\"geometryCycles\":" << geometryCycles
       << ",\"rasterCycles\":" << rasterCycles
       << ",\"dramBytes\":" << dramBytes << ",\"counters\":{";
    bool first = true;
    stats.forEachCounter([&](std::string_view name, u64 val) {
        auto it = prevCounters.find(std::string(name));
        const u64 prev = it == prevCounters.end() ? 0 : it->second;
        if (!first)
            os << ",";
        first = false;
        obs_detail::writeJsonString(os, name);
        os << ":" << (val >= prev ? val - prev : 0);
    });
    os << "},\"scalars\":{";
    first = true;
    stats.forEachScalar([&](std::string_view name, double val) {
        auto it = prevScalars.find(std::string(name));
        const double prev = it == prevScalars.end() ? 0.0 : it->second;
        if (!first)
            os << ",";
        first = false;
        obs_detail::writeJsonString(os, name);
        os << ":";
        obs_detail::writeJsonDouble(os, val - prev);
    });
    os << "}}\n";

    prevCounters.clear();
    prevScalars.clear();
    stats.forEachCounter([&](std::string_view name, u64 val) {
        prevCounters.emplace(std::string(name), val);
    });
    stats.forEachScalar([&](std::string_view name, double val) {
        prevScalars.emplace(std::string(name), val);
    });
}

void
RunObsWriter::finish()
{
    if (finished)
        return;
    finished = true;
    writePpm(dir_ + "/" + tag_ + ".re.total.ppm", totRe);
    writePpm(dir_ + "/" + tag_ + ".te.total.ppm", totTe);
    writePpm(dir_ + "/" + tag_ + ".dram.total.ppm", totDram);
    framesJsonl.close();
    heatRe.close();
    heatTe.close();
    heatDram.close();
}

} // namespace regpu
