/**
 * @file
 * Observability core: timeline tracing for the whole simulator.
 *
 * A process-wide ObsSink collects trace events — RAII ObsScope spans,
 * counter samples and instants — into preallocated per-thread rings
 * and flushes them as Chrome trace-event JSON (loadable in
 * chrome://tracing and Perfetto). The layer is always compiled and
 * near-free when disabled: every emit site starts with one relaxed
 * atomic load, and the recording path performs no allocations and
 * takes no locks (a thread locks the sink exactly once to attach its
 * ring, consistent with the PR 2 zero-alloc discipline).
 *
 * Observability never feeds back into simulation: events carry copies
 * of simulator state, so enabling the sink cannot perturb results —
 * CSV/JSON outputs stay bit-identical with tracing on or off, for any
 * worker count.
 *
 * Threading contract: enable(), disable() and flush members may only
 * be called while no instrumented work is running (worker pools
 * joined). Recording itself is thread-safe: each thread writes only
 * its own ring.
 */

#ifndef REGPU_OBS_OBS_HH
#define REGPU_OBS_OBS_HH

#include <atomic>
#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.hh"
#include "common/types.hh"

namespace regpu
{

namespace obs_detail
{
/** Process-wide recording gate; read with one relaxed load per emit
 *  site, written only by ObsSink::enable()/disable(). */
extern std::atomic<bool> enabledFlag;
/** Per-tile detail gate (tile spans / RE-skip instants): orders of
 *  magnitude more events than the coarse spans, so opt-in. */
extern std::atomic<bool> tileDetailFlag;

/** Minimal JSON string/number writers shared by the obs emitters.
 *  Deliberately local to this layer: sim/report.hh's helpers sit
 *  above obs and must not be depended on downward. */
void writeJsonString(std::ostream &os, std::string_view s);
void writeJsonDouble(std::ostream &os, double v);
} // namespace obs_detail

/** True when the timeline sink is recording (the only cost every
 *  instrumented hot path pays when observability is off). */
inline bool
obsEnabled()
{
    return obs_detail::enabledFlag.load(std::memory_order_relaxed);
}

/** True when per-tile detail events (tile spans, RE skip instants)
 *  should be recorded; implies obsEnabled(). */
inline bool
obsTileDetail()
{
    return obs_detail::tileDetailFlag.load(std::memory_order_relaxed);
}

/** Monotonic wall-clock in nanoseconds (the one sanctioned clock
 *  read: scripts/lint.py's obs-scope rule keeps hand-rolled
 *  std::chrono pairs out of src/). Also used for host-side pacing
 *  such as ProgressTracker. */
u64 obsNowNs();

/** One recorded trace event (fixed-size POD; name/cat must be string
 *  literals or ObsSink::intern() results — the ring stores pointers,
 *  not copies). */
struct ObsEvent
{
    enum class Kind : u8 {
        Span,     //!< ph "X": tsNs..tsNs+durNs
        Counter,  //!< ph "C": value sampled at tsNs
        Instant,  //!< ph "i": thread-scoped point event
    };

    const char *cat = "";
    const char *name = "";
    u64 tsNs = 0;
    u64 durNs = 0;
    Kind kind = Kind::Span;
    double value = 0.0;           //!< Counter payload
    const char *argName0 = nullptr;
    const char *argName1 = nullptr;
    i64 argVal0 = 0;
    i64 argVal1 = 0;
};

/**
 * Preallocated single-producer event ring of one thread. Push is a
 * bounds check + copy; overflow drops the event and counts it.
 * Readers (flush) run only after the owning thread has quiesced — see
 * the file-top threading contract.
 */
class ObsThreadRing
{
  public:
    ObsThreadRing(u32 tid_, std::size_t capacity)
        : tid(tid_)
    {
        events.resize(capacity);
    }

    bool
    push(const ObsEvent &e)
    {
        if (count >= events.size()) {
            dropped++;
            return false;
        }
        events[count++] = e;
        return true;
    }

    u32 tid;
    std::vector<ObsEvent> events;
    std::size_t count = 0;
    u64 dropped = 0;
    bool parked = false;  //!< owning thread exited; reusable
};

/**
 * The process-wide timeline sink. Owns every thread ring, the interned
 * strings events may point at, and the trace-event JSON writer.
 *
 * Lock discipline (compile-enforced under clang -Wthread-safety): the
 * ring registry, intern pool and epoch are REGPU_GUARDED_BY(mutex);
 * every public member that touches them takes the lock itself and is
 * REGPU_EXCLUDES(mutex). The record path stays lock-free: it only
 * dereferences the thread-local cached ring pointer, and each ring is
 * single-producer (written by its owning thread alone).
 */
class ObsSink
{
  public:
    static ObsSink &instance();

    /**
     * Start recording. @p eventsPerThread sizes each thread's ring
     * (overflowing events are dropped and counted, never allocated);
     * @p tileDetail additionally records per-tile spans/instants.
     * Discards anything recorded by a previous enable() that was
     * never flushed.
     */
    void enable(std::size_t eventsPerThread = defaultRingEvents,
                bool tileDetail = false) REGPU_EXCLUDES(mutex);

    /** Stop recording (buffered events stay available for flush). */
    void disable();

    /** Record one event into the calling thread's ring. */
    void
    record(const ObsEvent &e) REGPU_EXCLUDES(mutex)
    {
        // ring() locks only on this thread's first visit per
        // generation; steady-state recording is lock-free.
        ring()->push(e);
    }

    /**
     * Copy @p s into sink-owned storage and return a stable pointer
     * usable as an event name/cat. Deduplicated; takes the sink lock,
     * so intern per chunky unit of work (e.g. once per job), not per
     * event.
     */
    const char *intern(std::string_view s) REGPU_EXCLUDES(mutex);

    /** Write everything recorded since enable() as trace-event JSON
     *  ("traceEvents" object form, one event per line). Clears the
     *  rings so a second flush does not duplicate events. */
    void writeTraceJson(std::ostream &os) REGPU_EXCLUDES(mutex);

    /** writeTraceJson into @p path (directories created); returns
     *  false when the file cannot be opened. */
    bool flushToFile(const std::string &path) REGPU_EXCLUDES(mutex);

    /** Events dropped on ring overflow since enable(). */
    u64 droppedEvents() const REGPU_EXCLUDES(mutex);

    /** Rings ever attached since enable() (== peak thread count). */
    std::size_t threadCount() const REGPU_EXCLUDES(mutex);

    static constexpr std::size_t defaultRingEvents = 1u << 15;

  private:
    ObsSink() = default;

    ObsThreadRing *ring() REGPU_EXCLUDES(mutex);
    void releaseRing(ObsThreadRing *r) REGPU_EXCLUDES(mutex);

    struct ThreadCache
    {
        ObsSink *owner = nullptr;
        ObsThreadRing *buf = nullptr;
        u64 gen = 0;
        ~ThreadCache()
        {
            if (owner && buf)
                owner->releaseRing(buf);
        }
    };

    mutable Mutex mutex;
    std::vector<std::unique_ptr<ObsThreadRing>> rings
        REGPU_GUARDED_BY(mutex);
    std::deque<std::string> internPool REGPU_GUARDED_BY(mutex);
    std::map<std::string, const char *, std::less<>> internIndex
        REGPU_GUARDED_BY(mutex);
    std::size_t ringEvents REGPU_GUARDED_BY(mutex) = defaultRingEvents;
    u64 epochNs REGPU_GUARDED_BY(mutex) = 0;
    std::atomic<u64> generation{0};
};

/**
 * RAII span: records one complete ("X") trace event covering its
 * lifetime. Near-free when the sink is disabled (one relaxed load in
 * the constructor; destructor checks a member bool). @p cat and
 * @p name must outlive the flush: string literals or intern() results.
 * Up to two integer args are attached (jobId / frame / technique...).
 */
class ObsScope
{
  public:
    ObsScope(const char *cat, const char *name,
             const char *argName0 = nullptr, i64 argVal0 = 0,
             const char *argName1 = nullptr, i64 argVal1 = 0)
    {
        if (!obsEnabled())
            return;
        armed = true;
        ev.cat = cat;
        ev.name = name;
        ev.argName0 = argName0;
        ev.argVal0 = argVal0;
        ev.argName1 = argName1;
        ev.argVal1 = argVal1;
        ev.tsNs = obsNowNs();
    }

    ObsScope(const ObsScope &) = delete;
    ObsScope &operator=(const ObsScope &) = delete;

    ~ObsScope()
    {
        if (!armed)
            return;
        ev.durNs = obsNowNs() - ev.tsNs;
        ObsSink::instance().record(ev);
    }

  private:
    ObsEvent ev;
    bool armed = false;
};

/** Record a counter sample (ph "C": Perfetto draws a counter track). */
inline void
obsCounter(const char *cat, const char *name, double value)
{
    if (!obsEnabled())
        return;
    ObsEvent ev;
    ev.kind = ObsEvent::Kind::Counter;
    ev.cat = cat;
    ev.name = name;
    ev.tsNs = obsNowNs();
    ev.value = value;
    ObsSink::instance().record(ev);
}

/** Record a thread-scoped instant event. */
inline void
obsInstant(const char *cat, const char *name,
           const char *argName0 = nullptr, i64 argVal0 = 0)
{
    if (!obsEnabled())
        return;
    ObsEvent ev;
    ev.kind = ObsEvent::Kind::Instant;
    ev.cat = cat;
    ev.name = name;
    ev.tsNs = obsNowNs();
    ev.argName0 = argName0;
    ev.argVal0 = argVal0;
    ObsSink::instance().record(ev);
}

} // namespace regpu

#endif // REGPU_OBS_OBS_HH
