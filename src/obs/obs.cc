#include "obs/obs.hh"

#include <charconv>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>

#include "common/logging.hh"

namespace regpu
{

namespace obs_detail
{

std::atomic<bool> enabledFlag{false};
std::atomic<bool> tileDetailFlag{false};

void
writeJsonString(std::ostream &os, std::string_view s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
writeJsonDouble(std::ostream &os, double v)
{
    if (!std::isfinite(v))
        v = 0.0;
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    os.write(buf, res.ptr - buf);
}

} // namespace obs_detail

u64
obsNowNs()
{
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

ObsSink &
ObsSink::instance()
{
    // Meyers singleton: thread-local ThreadCache destructors (any
    // thread, main included) are sequenced before static-duration
    // destruction, so releaseRing() never runs on a dead sink.
    static ObsSink sink;
    return sink;
}

void
ObsSink::enable(std::size_t eventsPerThread, bool tileDetail)
{
    MutexLock lock(mutex);
    ringEvents = eventsPerThread == 0 ? 1 : eventsPerThread;
    // Old rings are discarded wholesale; live ThreadCaches notice the
    // generation bump and re-attach, and releaseRing() ignores
    // pointers it no longer owns.
    rings.clear();
    internPool.clear();
    internIndex.clear();
    epochNs = obsNowNs();
    generation.fetch_add(1, std::memory_order_release);
    obs_detail::tileDetailFlag.store(tileDetail,
                                     std::memory_order_relaxed);
    obs_detail::enabledFlag.store(true, std::memory_order_relaxed);
}

void
ObsSink::disable()
{
    obs_detail::enabledFlag.store(false, std::memory_order_relaxed);
    obs_detail::tileDetailFlag.store(false, std::memory_order_relaxed);
}

ObsThreadRing *
ObsSink::ring()
{
    thread_local ThreadCache cache;
    if (cache.buf && cache.owner == this
        && cache.gen == generation.load(std::memory_order_acquire))
        return cache.buf;

    MutexLock lock(mutex);
    // Prefer a parked ring (its owner thread exited): worker pools
    // that come and go across a sweep reuse a bounded set of rings —
    // and of tids — instead of growing one ring per short-lived
    // thread. The successor appends after the predecessor's events
    // under the predecessor's tid, which is exactly OS-tid-reuse
    // semantics and keeps tids dense.
    ObsThreadRing *r = nullptr;
    for (auto &owned : rings) {
        if (owned->parked) {
            r = owned.get();
            break;
        }
    }
    if (r) {
        r->parked = false;
        if (r->events.size() != ringEvents)
            r->events.resize(ringEvents);
    } else {
        rings.push_back(std::make_unique<ObsThreadRing>(
            static_cast<u32>(rings.size()), ringEvents));
        r = rings.back().get();
    }
    cache.owner = this;
    cache.buf = r;
    cache.gen = generation.load(std::memory_order_relaxed);
    return r;
}

void
ObsSink::releaseRing(ObsThreadRing *r)
{
    MutexLock lock(mutex);
    // The cache may be stale: enable() rebuilds the ring set, so only
    // park pointers the sink still owns.
    for (auto &owned : rings) {
        if (owned.get() == r) {
            r->parked = true;
            return;
        }
    }
}

const char *
ObsSink::intern(std::string_view s)
{
    MutexLock lock(mutex);
    auto it = internIndex.find(s);
    if (it != internIndex.end())
        return it->second;
    internPool.emplace_back(s);
    const char *stable = internPool.back().c_str();
    internIndex.emplace(std::string(s), stable);
    return stable;
}

u64
ObsSink::droppedEvents() const
{
    MutexLock lock(mutex);
    u64 total = 0;
    for (const auto &r : rings)
        total += r->dropped;
    return total;
}

std::size_t
ObsSink::threadCount() const
{
    MutexLock lock(mutex);
    return rings.size();
}

namespace
{

using obs_detail::writeJsonDouble;
using obs_detail::writeJsonString;

/** Trace-event timestamps are microseconds (double). */
double
toMicros(u64 ns)
{
    return static_cast<double>(ns) / 1000.0;
}

void
writeEventLine(std::ostream &os, const ObsEvent &e, u32 tid, u64 epochNs,
               bool &first)
{
    if (!first)
        os << ",\n";
    first = false;
    const u64 rel = e.tsNs >= epochNs ? e.tsNs - epochNs : 0;

    os << "{\"name\":";
    writeJsonString(os, e.name);
    os << ",\"cat\":";
    writeJsonString(os, e.cat);
    os << ",\"ph\":\"";
    switch (e.kind) {
      case ObsEvent::Kind::Span: os << 'X'; break;
      case ObsEvent::Kind::Counter: os << 'C'; break;
      case ObsEvent::Kind::Instant: os << 'i'; break;
    }
    os << "\",\"pid\":1,\"tid\":" << tid << ",\"ts\":";
    writeJsonDouble(os, toMicros(rel));
    if (e.kind == ObsEvent::Kind::Span) {
        os << ",\"dur\":";
        writeJsonDouble(os, toMicros(e.durNs));
    }
    if (e.kind == ObsEvent::Kind::Instant)
        os << ",\"s\":\"t\"";

    os << ",\"args\":{";
    if (e.kind == ObsEvent::Kind::Counter) {
        os << "\"value\":";
        writeJsonDouble(os, e.value);
    } else {
        bool firstArg = true;
        if (e.argName0) {
            writeJsonString(os, e.argName0);
            os << ":" << e.argVal0;
            firstArg = false;
        }
        if (e.argName1) {
            if (!firstArg)
                os << ",";
            writeJsonString(os, e.argName1);
            os << ":" << e.argVal1;
        }
    }
    os << "}}";
}

void
writeThreadMeta(std::ostream &os, u32 tid, bool &first)
{
    if (!first)
        os << ",\n";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
       << tid << ",\"ts\":0,\"args\":{\"name\":\"obs-thread-" << tid
       << "\"}}";
}

} // namespace

void
ObsSink::writeTraceJson(std::ostream &os)
{
    MutexLock lock(mutex);

    u64 droppedTotal = 0;
    for (const auto &r : rings)
        droppedTotal += r->dropped;
    if (droppedTotal > 0)
        warn("obs: ", droppedTotal, " timeline events dropped on ring "
             "overflow; enable the sink with a larger per-thread "
             "capacity to capture everything");

    os << "{\n\"displayTimeUnit\":\"ms\",\n"
       << "\"otherData\":{\"tool\":\"regpu-obs\",\"droppedEvents\":\""
       << droppedTotal << "\",\"threads\":\"" << rings.size()
       << "\"},\n\"traceEvents\":[\n";

    bool first = true;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
          "\"tid\":0,\"ts\":0,\"args\":{\"name\":\"regpu\"}}";
    first = false;
    for (const auto &r : rings)
        writeThreadMeta(os, r->tid, first);
    for (const auto &r : rings) {
        for (std::size_t i = 0; i < r->count; i++)
            writeEventLine(os, r->events[i], r->tid, epochNs, first);
        r->count = 0;  // a second flush must not duplicate events
    }
    os << "\n]}\n";
}

bool
ObsSink::flushToFile(const std::string &path)
{
    const std::filesystem::path p(path);
    std::error_code ec;
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path(), ec);
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    writeTraceJson(out);
    return static_cast<bool>(out);
}

} // namespace regpu
