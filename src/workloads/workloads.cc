#include "workloads/workloads.hh"

#include <cmath>

#include "common/logging.hh"
#include "scene/mesh_gen.hh"

namespace regpu
{

namespace
{

constexpr float pi = 3.14159265f;

/** Static pose at a fixed position. */
Pose
staticPose(Vec3 pos, float scale = 1.0f)
{
    Pose p;
    p.position = pos;
    p.scale = scale;
    return p;
}

/** Helper: add a full-screen static background quad. */
void
addBackground(Scene &scene, u32 texId, ShaderKind shader,
              float depth = 0.9f)
{
    const GpuConfig &cfg = scene.gpuConfig();
    SceneObject bg;
    bg.name = "background";
    bg.mesh = makeSubdividedQuad(static_cast<float>(cfg.screenWidth),
                                 static_cast<float>(cfg.screenHeight),
                                 10, 8, 1.0f);
    bg.shader = shader;
    bg.textureId = static_cast<i32>(texId);
    bg.depthTest = false;
    bg.depthWrite = false;
    float cx = cfg.screenWidth / 2.0f;
    float cy = cfg.screenHeight / 2.0f;
    bg.animate = [cx, cy, depth](u64) {
        return staticPose({cx, cy, depth});
    };
    scene.addObject(std::move(bg));
}

/** Helper: pixel-space ortho camera (2D games). */
void
useOrthoCamera(Scene &scene)
{
    const GpuConfig &cfg = scene.gpuConfig();
    float w = static_cast<float>(cfg.screenWidth);
    float h = static_cast<float>(cfg.screenHeight);
    Camera cam;
    cam.viewProj = [w, h](u64) {
        return Mat4::ortho(0, w, 0, h, -1, 1);
    };
    scene.setCamera(cam);
}

// ---------------------------------------------------------------------------
// 2D, mostly-static-camera class (ccs, cde, ctr, hop): a static board /
// backdrop fills most of the screen; a few small animated objects touch
// a minority of tiles.
// ---------------------------------------------------------------------------

/** Match-3 puzzle: static board grid, few pieces animate in place. */
std::unique_ptr<Scene>
makeMatch3(const GpuConfig &config, u64 seed)
{
    auto scene = std::make_unique<Scene>("ccs", config);
    useOrthoCamera(*scene);
    Rng rng(seed * 0x9e37 + 11);

    u32 bgTex = scene->addTexture(
        Texture(0, 256, 256, TexturePattern::Gradient, seed));
    u32 atlasTex = scene->addTexture(
        Texture(1, 256, 256, TexturePattern::Atlas, seed + 1));

    addBackground(*scene, bgTex, ShaderKind::Textured);

    // Static 8x8 board occupying the screen centre.
    const float cell = config.screenHeight / 10.0f;
    SceneObject board;
    board.name = "board";
    board.mesh = makeGrid(8, 8, cell, cell, 16, rng);
    board.shader = ShaderKind::Textured;
    board.textureId = static_cast<i32>(atlasTex);
    board.blendMode = BlendMode::AlphaBlend;
    board.depthTest = false;
    board.depthWrite = false;
    float bx = config.screenWidth / 2.0f - 4 * cell;
    float by = config.screenHeight / 2.0f - 4 * cell;
    board.animate = [bx, by](u64) { return staticPose({bx, by, 0.5f}); };
    scene->addObject(std::move(board));

    // Three "selected candy" pieces pulse in place: the only animated
    // tiles of the frame.
    for (u32 i = 0; i < 3; i++) {
        SceneObject piece;
        piece.name = "piece" + std::to_string(i);
        piece.mesh = makeQuad(cell, cell, 0.25f);
        piece.shader = ShaderKind::Textured;
        piece.textureId = static_cast<i32>(atlasTex);
        piece.blendMode = BlendMode::AlphaBlend;
        piece.depthTest = false;
        piece.depthWrite = false;
        float px = bx + (1.5f + 2.0f * i) * cell;
        float py = by + (2.5f + i) * cell;
        piece.animate = [px, py](u64 frame) {
            Pose p;
            p.position = {px, py, 0.2f};
            p.scale = 1.0f + 0.15f * std::sin(frame * 0.4f);
            return p;
        };
        scene->addObject(std::move(piece));
    }
    return scene;
}

/** Tower defense: static map, a short column of creeps marches. */
std::unique_ptr<Scene>
makeTowerDefense(const GpuConfig &config, u64 seed)
{
    auto scene = std::make_unique<Scene>("cde", config);
    useOrthoCamera(*scene);
    Rng rng(seed * 0x51ab + 5);

    u32 mapTex = scene->addTexture(
        Texture(0, 256, 256, TexturePattern::Noise, seed + 2));
    u32 unitTex = scene->addTexture(
        Texture(1, 128, 128, TexturePattern::Atlas, seed + 3));

    addBackground(*scene, mapTex, ShaderKind::Textured);

    // Static towers.
    for (u32 i = 0; i < 6; i++) {
        SceneObject tower;
        tower.name = "tower" + std::to_string(i);
        tower.mesh = makeQuad(48, 48, 0.25f);
        tower.shader = ShaderKind::Textured;
        tower.textureId = static_cast<i32>(unitTex);
        tower.blendMode = BlendMode::AlphaBlend;
        tower.depthTest = false;
        float tx = config.screenWidth * (0.15f + 0.14f * i);
        float ty = config.screenHeight * (i % 2 ? 0.3f : 0.7f);
        tower.animate = [tx, ty](u64) {
            return staticPose({tx, ty, 0.3f});
        };
        scene->addObject(std::move(tower));
    }

    // Two creeps walking along a fixed lane: a thin animated band.
    for (u32 i = 0; i < 2; i++) {
        SceneObject creep;
        creep.name = "creep" + std::to_string(i);
        creep.mesh = makeQuad(32, 32, 0.25f);
        creep.shader = ShaderKind::Textured;
        creep.textureId = static_cast<i32>(unitTex);
        creep.blendMode = BlendMode::AlphaBlend;
        creep.depthTest = false;
        float lane = config.screenHeight * 0.5f;
        float speed = 6.0f + 2.0f * i;
        float w = static_cast<float>(config.screenWidth);
        creep.animate = [lane, speed, w, i](u64 frame) {
            Pose p;
            p.position = {std::fmod(60.0f + frame * speed + i * 200.0f,
                                    w * 0.8f) + w * 0.1f,
                          lane, 0.2f};
            return p;
        };
        scene->addObject(std::move(creep));
    }
    return scene;
}

/** Physics puzzle (rope-cutting class): static playfield, one swinging
 *  object, plus geometry animating *behind* an opaque foreground panel
 *  (a false-negative source: inputs change, colors do not). */
std::unique_ptr<Scene>
makeRopePuzzle(const GpuConfig &config, u64 seed)
{
    auto scene = std::make_unique<Scene>("ctr", config);
    useOrthoCamera(*scene);

    u32 bgTex = scene->addTexture(
        Texture(0, 256, 256, TexturePattern::Checker, seed + 4));
    u32 spriteTex = scene->addTexture(
        Texture(1, 128, 128, TexturePattern::Atlas, seed + 5));
    u32 panelTex = scene->addTexture(
        Texture(2, 64, 64, TexturePattern::Solid, seed + 6));

    addBackground(*scene, bgTex, ShaderKind::Textured);

    // Swinging candy on a rope (small animated region).
    SceneObject candy;
    candy.name = "candy";
    candy.mesh = makeQuad(56, 56, 0.25f);
    candy.shader = ShaderKind::Textured;
    candy.textureId = static_cast<i32>(spriteTex);
    candy.blendMode = BlendMode::AlphaBlend;
    candy.depthTest = false;
    float cx = config.screenWidth * 0.5f;
    float cy = config.screenHeight * 0.65f;
    candy.animate = [cx, cy](u64 frame) {
        Pose p;
        float ang = 0.5f * std::sin(frame * 0.25f);
        p.position = {cx + 140.0f * std::sin(ang),
                      cy - 140.0f * std::cos(ang), 0.2f};
        p.rotationZ = ang;
        return p;
    };
    scene->addObject(std::move(candy));

    // Occluded animator: spins every frame *behind* the opaque panel
    // drawn after it (painter's order: panel drawn later overwrites).
    SceneObject hidden;
    hidden.name = "hiddenSpinner";
    hidden.mesh = makeQuad(80, 80, 0.25f);
    hidden.shader = ShaderKind::Textured;
    hidden.textureId = static_cast<i32>(spriteTex);
    hidden.depthTest = false;
    float hx = config.screenWidth * 0.82f;
    float hy = config.screenHeight * 0.2f;
    hidden.animate = [hx, hy](u64 frame) {
        Pose p;
        p.position = {hx, hy, 0.4f};
        p.rotationZ = frame * 0.3f;
        return p;
    };
    scene->addObject(std::move(hidden));

    SceneObject panel;
    panel.name = "hudPanel";
    panel.mesh = makeQuad(140, 140, 1.0f);
    panel.shader = ShaderKind::Textured;
    panel.textureId = static_cast<i32>(panelTex);
    panel.depthTest = false;
    panel.animate = [hx, hy](u64) { return staticPose({hx, hy, 0.1f}); };
    scene->addObject(std::move(panel));

    return scene;
}

/** Survival horror, static camera, dark scene with large plain-black
 *  regions: the paper notes this workload renders "a large portion of
 *  the screen with a small number of repeated fragments, most of them
 *  completely black". */
std::unique_ptr<Scene>
makeHorror(const GpuConfig &config, u64 seed)
{
    auto scene = std::make_unique<Scene>("hop", config);
    useOrthoCamera(*scene);
    scene->setClearColor({0, 0, 0, 255});

    u32 darkTex = scene->addTexture(
        Texture(0, 256, 256, TexturePattern::Solid, seed + 900));
    u32 heroTex = scene->addTexture(
        Texture(1, 128, 128, TexturePattern::Atlas, seed + 7));

    // A dim corridor strip across the middle; everything else stays
    // the clear color (plain black tiles - trivial fragments).
    SceneObject corridor;
    corridor.name = "corridor";
    corridor.mesh = makeSubdividedQuad(
        static_cast<float>(config.screenWidth),
        config.screenHeight * 0.3f, 10, 3, 2.0f);
    corridor.shader = ShaderKind::Textured;
    corridor.textureId = static_cast<i32>(darkTex);
    corridor.depthTest = false;
    float mx = config.screenWidth / 2.0f;
    float my = config.screenHeight / 2.0f;
    corridor.animate = [mx, my](u64) { return staticPose({mx, my, 0.5f}); };
    scene->addObject(std::move(corridor));

    // The survivor bobbing slightly: a small animated region.
    SceneObject hero;
    hero.name = "hero";
    hero.mesh = makeQuad(48, 64, 0.25f);
    hero.shader = ShaderKind::Textured;
    hero.textureId = static_cast<i32>(heroTex);
    hero.blendMode = BlendMode::AlphaBlend;
    hero.depthTest = false;
    hero.animate = [mx, my](u64 frame) {
        Pose p;
        p.position = {mx * 0.6f, my + 3.0f * std::sin(frame * 0.5f), 0.2f};
        return p;
    };
    scene->addObject(std::move(hero));

    return scene;
}

// ---------------------------------------------------------------------------
// 3D workloads.
// ---------------------------------------------------------------------------

/** MMO strategy village: 3D-projected static buildings, slow ambient
 *  animation on a couple of objects; camera static most of the time. */
std::unique_ptr<Scene>
makeStrategyVillage(const GpuConfig &config, u64 seed)
{
    auto scene = std::make_unique<Scene>("coc", config);
    Rng rng(seed * 0x77ff + 3);

    u32 groundTex = scene->addTexture(
        Texture(0, 256, 256, TexturePattern::Noise, seed + 8));
    u32 wallTex = scene->addTexture(
        Texture(1, 128, 128, TexturePattern::Checker, seed + 9));

    // Fixed isometric-style camera.
    float aspect = static_cast<float>(config.screenWidth)
        / config.screenHeight;
    Camera cam;
    cam.viewProj = [aspect](u64) {
        Mat4 proj = Mat4::perspective(pi / 4, aspect, 0.5f, 100.0f);
        Mat4 view = Mat4::lookAt({8, 10, 12}, {0, 0, 0}, {0, 1, 0});
        return proj * view;
    };
    scene->setCamera(cam);

    // Ground plane.
    SceneObject ground;
    ground.name = "ground";
    ground.mesh = makeSubdividedQuad(40, 40, 8, 8, 8.0f);
    ground.shader = ShaderKind::Textured;
    ground.textureId = static_cast<i32>(groundTex);
    ground.animate = [](u64) {
        Pose p;
        p.position = {0, 0, 0};
        return p;
    };
    // Rotate the ground quad into the XZ plane by baking positions.
    for (auto &v : ground.mesh.vertices) {
        float y = v.position.y;
        v.position.y = -0.01f;
        v.position.z = y;
        v.normal = {0, 1, 0};
    }
    scene->addObject(std::move(ground));

    // Static buildings.
    for (u32 i = 0; i < 9; i++) {
        SceneObject hut;
        hut.name = "hut" + std::to_string(i);
        hut.mesh = makeBox(1.6f, 1.2f + 0.3f * (i % 3), 1.6f);
        hut.shader = ShaderKind::TexLit;
        hut.textureId = static_cast<i32>(wallTex);
        float hx = -6.0f + 4.0f * (i % 3) + rng.nextFloatRange(-1, 1);
        float hz = -6.0f + 4.0f * (i / 3) + rng.nextFloatRange(-1, 1);
        hut.animate = [hx, hz](u64) {
            Pose p;
            p.position = {hx, 0.6f, hz};
            return p;
        };
        scene->addObject(std::move(hut));
    }

    // One villager circles a hut; one flag waves (scale pulse).
    SceneObject villager;
    villager.name = "villager";
    villager.mesh = makeBox(0.4f, 0.8f, 0.4f);
    villager.shader = ShaderKind::TexLit;
    villager.textureId = static_cast<i32>(wallTex);
    villager.animate = [](u64 frame) {
        Pose p;
        float a = frame * 0.12f;
        p.position = {2.0f + 1.5f * std::cos(a), 0.4f,
                      2.0f + 1.5f * std::sin(a)};
        return p;
    };
    scene->addObject(std::move(villager));

    return scene;
}

/** First-person shooter: continuous camera motion, everything moves
 *  on screen every frame -> essentially no redundant tiles. */
std::unique_ptr<Scene>
makeShooter(const GpuConfig &config, u64 seed)
{
    auto scene = std::make_unique<Scene>("mst", config);
    Rng rng(seed * 0xdead + 17);

    u32 groundTex = scene->addTexture(
        Texture(0, 256, 256, TexturePattern::Noise, seed + 10));
    u32 crateTex = scene->addTexture(
        Texture(1, 128, 128, TexturePattern::Checker, seed + 11));
    u32 skyTex = scene->addTexture(
        Texture(2, 256, 256, TexturePattern::Gradient, seed + 12));

    float aspect = static_cast<float>(config.screenWidth)
        / config.screenHeight;
    // The player strafes and turns continuously.
    Camera cam;
    cam.viewProj = [aspect](u64 frame) {
        Mat4 proj = Mat4::perspective(pi / 3, aspect, 0.3f, 200.0f);
        float t = frame * 0.15f;
        Vec3 eye{4.0f * std::sin(t * 0.7f), 1.7f, -0.8f * frame};
        Vec3 look = eye + Vec3{std::sin(t * 0.4f), -0.05f, -1.0f};
        Mat4 view = Mat4::lookAt(eye, look, {0, 1, 0});
        return proj * view;
    };
    scene->setCamera(cam);

    // Sky quad glued to the camera far plane region (still moves in
    // clip space because the camera turns).
    SceneObject sky;
    sky.name = "sky";
    sky.mesh = makeSubdividedQuad(400, 200, 8, 4, 1.0f);
    sky.shader = ShaderKind::Textured;
    sky.textureId = static_cast<i32>(skyTex);
    sky.depthWrite = false;
    sky.animate = [](u64 frame) {
        Pose p;
        p.position = {0, 40, -0.8f * frame - 150.0f};
        return p;
    };
    scene->addObject(std::move(sky));

    // Corridor of crates the player flies past.
    for (u32 i = 0; i < 30; i++) {
        SceneObject crate;
        crate.name = "crate" + std::to_string(i);
        crate.mesh = makeBox(2, 2, 2);
        crate.shader = ShaderKind::TexLit;
        crate.textureId = static_cast<i32>(crateTex);
        float cx = (i % 2 ? 6.0f : -6.0f) + rng.nextFloatRange(-1, 1);
        float cz = -6.0f * i;
        crate.animate = [cx, cz](u64) {
            Pose p;
            p.position = {cx, 1.0f, cz};
            return p;
        };
        scene->addObject(std::move(crate));
    }

    // Long ground strip.
    SceneObject ground;
    ground.name = "ground";
    ground.mesh = makeTerrain(12, 80, 4.0f, 0.0f, rng);
    ground.shader = ShaderKind::Textured;
    ground.textureId = static_cast<i32>(groundTex);
    ground.animate = [](u64) {
        Pose p;
        p.position = {0, 0, 20};
        return p;
    };
    scene->addObject(std::move(ground));

    return scene;
}

/** Arcade slingshot: phases of aiming (static) and flight (panning),
 *  mixing the two behaviours the paper's third class shows. */
std::unique_ptr<Scene>
makeSlingshot(const GpuConfig &config, u64 seed)
{
    auto scene = std::make_unique<Scene>("abi", config);
    Rng rng(seed * 0xabcd + 23);

    u32 skyTex = scene->addTexture(
        Texture(0, 256, 256, TexturePattern::Gradient, seed + 13));
    u32 groundTex = scene->addTexture(
        Texture(1, 256, 256, TexturePattern::Noise, seed + 14));
    u32 birdTex = scene->addTexture(
        Texture(2, 128, 128, TexturePattern::Atlas, seed + 15));

    // 2D side-scroller camera: static during aim (frames 0-11 of each
    // 30-frame volley), pans during flight (12-29).
    float w = static_cast<float>(config.screenWidth);
    float h = static_cast<float>(config.screenHeight);
    Camera cam;
    cam.viewProj = [w, h](u64 frame) {
        u64 phase = frame % 30;
        float panX = 0;
        if (phase >= 12)
            panX = (phase - 11) * w * 0.03f;
        return Mat4::ortho(panX, panX + w, 0, h, -1, 1);
    };
    scene->setCamera(cam);

    // Sky and ground strips spanning three screens.
    SceneObject sky;
    sky.name = "sky";
    sky.mesh = makeSubdividedQuad(3 * w, h * 0.7f, 18, 5, 3.0f);
    sky.shader = ShaderKind::Textured;
    sky.textureId = static_cast<i32>(skyTex);
    sky.depthTest = false;
    sky.animate = [w, h](u64) {
        return staticPose({1.5f * w, 0.65f * h, 0.9f});
    };
    scene->addObject(std::move(sky));

    SceneObject ground;
    ground.name = "ground";
    ground.mesh = makeSubdividedQuad(3 * w, h * 0.3f, 18, 3, 4.0f);
    ground.shader = ShaderKind::Textured;
    ground.textureId = static_cast<i32>(groundTex);
    ground.depthTest = false;
    ground.animate = [w, h](u64) {
        return staticPose({1.5f * w, 0.15f * h, 0.8f});
    };
    scene->addObject(std::move(ground));

    // Target stack at the far end.
    for (u32 i = 0; i < 5; i++) {
        SceneObject block;
        block.name = "block" + std::to_string(i);
        block.mesh = makeQuad(40, 40, 0.25f);
        block.shader = ShaderKind::Textured;
        block.textureId = static_cast<i32>(birdTex);
        block.depthTest = false;
        float bx = 2.4f * w + (i % 2) * 44.0f;
        float by = 0.3f * h + (i / 2) * 44.0f;
        block.animate = [bx, by](u64) {
            return staticPose({bx, by, 0.3f});
        };
        scene->addObject(std::move(block));
    }

    // The projectile: parked while aiming, flying across during pan.
    SceneObject bird;
    bird.name = "bird";
    bird.mesh = makeQuad(36, 36, 0.25f);
    bird.shader = ShaderKind::Textured;
    bird.textureId = static_cast<i32>(birdTex);
    bird.blendMode = BlendMode::AlphaBlend;
    bird.depthTest = false;
    bird.animate = [w, h](u64 frame) {
        Pose p;
        u64 phase = frame % 30;
        if (phase < 12) {
            p.position = {0.15f * w, 0.35f * h, 0.2f};
            p.scale = 1.0f + 0.05f * (phase % 3); // aim wobble
        } else {
            float t = (phase - 12) / 18.0f;
            p.position = {0.15f * w + t * 2.2f * w,
                          0.35f * h + 0.5f * h * std::sin(t * pi), 0.2f};
            p.rotationZ = t * 4.0f;
        }
        return p;
    };
    scene->addObject(std::move(bird));

    return scene;
}

/** Snowboard arcade: downhill camera with calm stretches. */
std::unique_ptr<Scene>
makeSnowboard(const GpuConfig &config, u64 seed)
{
    auto scene = std::make_unique<Scene>("csn", config);
    Rng rng(seed * 0x5117 + 31);

    u32 snowTex = scene->addTexture(
        Texture(0, 256, 256, TexturePattern::Solid, seed + 16));
    u32 treeTex = scene->addTexture(
        Texture(1, 128, 128, TexturePattern::Noise, seed + 17));

    float aspect = static_cast<float>(config.screenWidth)
        / config.screenHeight;
    // Alternates: 18 frames gliding straight (scene nearly static in
    // view space because the slope is uniform), 12 frames carving.
    Camera cam;
    cam.viewProj = [aspect](u64 frame) {
        Mat4 proj = Mat4::perspective(pi / 3.2f, aspect, 0.4f, 120.0f);
        u64 phase = frame % 30;
        float speed = phase < 18 ? 0.0f : 1.2f;
        float z = -speed * (phase < 18 ? 0 : (phase - 18));
        float x = phase < 18 ? 0.0f : 1.5f * std::sin((phase - 18) * 0.3f);
        Mat4 view = Mat4::lookAt({x, 2.2f, 4.0f + z},
                                 {x * 0.5f, 0.8f, z - 6.0f}, {0, 1, 0});
        return proj * view;
    };
    scene->setCamera(cam);

    // Uniform snow field (solid texture: plain-color false-negative
    // source under camera pan).
    SceneObject slope;
    slope.name = "slope";
    slope.mesh = makeTerrain(16, 40, 3.0f, 0.0f, rng);
    slope.shader = ShaderKind::Textured;
    slope.textureId = static_cast<i32>(snowTex);
    slope.animate = [](u64) {
        Pose p;
        p.position = {0, 0, 10};
        return p;
    };
    scene->addObject(std::move(slope));

    // Sparse trees.
    for (u32 i = 0; i < 10; i++) {
        SceneObject tree;
        tree.name = "tree" + std::to_string(i);
        tree.mesh = makeBox(0.8f, 2.4f, 0.8f);
        tree.shader = ShaderKind::TexLit;
        tree.textureId = static_cast<i32>(treeTex);
        float tx = rng.nextFloatRange(-12, 12);
        float tz = -4.0f * i - 6.0f;
        tree.animate = [tx, tz](u64) {
            Pose p;
            p.position = {tx, 1.2f, tz};
            return p;
        };
        scene->addObject(std::move(tree));
    }

    // The rider bobs in view.
    SceneObject rider;
    rider.name = "rider";
    rider.mesh = makeBox(0.5f, 1.0f, 0.5f);
    rider.shader = ShaderKind::TexLit;
    rider.textureId = static_cast<i32>(treeTex);
    rider.animate = [](u64 frame) {
        Pose p;
        u64 phase = frame % 30;
        float x = phase < 18 ? 0.0f : 1.5f * std::sin((phase - 18) * 0.3f);
        float z = phase < 18 ? 0.0f : -1.2f * (phase - 18);
        p.position = {x, 0.9f + 0.05f * std::sin(frame * 0.7f),
                      z - 1.5f};
        return p;
    };
    scene->addObject(std::move(rider));

    return scene;
}

/** Endless runner: forward motion with brief station stops. */
std::unique_ptr<Scene>
makeRunner(const GpuConfig &config, u64 seed)
{
    auto scene = std::make_unique<Scene>("ter", config);
    Rng rng(seed * 0x60d + 41);

    u32 stoneTex = scene->addTexture(
        Texture(0, 256, 256, TexturePattern::Checker, seed + 18));
    u32 wallTex = scene->addTexture(
        Texture(1, 256, 256, TexturePattern::Noise, seed + 19));
    u32 runnerTex = scene->addTexture(
        Texture(2, 128, 128, TexturePattern::Atlas, seed + 20));

    float aspect = static_cast<float>(config.screenWidth)
        / config.screenHeight;
    // Runs 22 frames of every 30; pauses 8 (collect/turn animation).
    Camera cam;
    cam.viewProj = [aspect](u64 frame) {
        Mat4 proj = Mat4::perspective(pi / 3, aspect, 0.4f, 150.0f);
        u64 cycle = frame / 30, phase = frame % 30;
        float base = -26.4f * cycle; // 22 frames * 1.2 units
        float z = phase < 22 ? base - 1.2f * phase : base - 26.4f;
        Mat4 view = Mat4::lookAt({0, 2.4f, 5.0f + z},
                                 {0, 1.0f, z - 8.0f}, {0, 1, 0});
        return proj * view;
    };
    scene->setCamera(cam);

    // Path and flanking walls.
    SceneObject path;
    path.name = "path";
    path.mesh = makeTerrain(6, 120, 2.0f, 0.0f, rng);
    path.shader = ShaderKind::Textured;
    path.textureId = static_cast<i32>(stoneTex);
    path.animate = [](u64) {
        Pose p;
        p.position = {0, 0, 10};
        return p;
    };
    scene->addObject(std::move(path));

    for (u32 side = 0; side < 2; side++) {
        for (u32 i = 0; i < 24; i++) {
            SceneObject wall;
            wall.name = "wall" + std::to_string(side * 24 + i);
            wall.mesh = makeBox(1.0f, 3.0f, 8.0f);
            wall.shader = ShaderKind::TexLit;
            wall.textureId = static_cast<i32>(wallTex);
            float wx = side ? 4.5f : -4.5f;
            float wz = -9.0f * i;
            wall.animate = [wx, wz](u64) {
                Pose p;
                p.position = {wx, 1.5f, wz};
                return p;
            };
            scene->addObject(std::move(wall));
        }
    }

    // The runner, always centre-screen.
    SceneObject runner;
    runner.name = "runner";
    runner.mesh = makeBox(0.5f, 1.1f, 0.5f);
    runner.shader = ShaderKind::TexLit;
    runner.textureId = static_cast<i32>(runnerTex);
    runner.animate = [](u64 frame) {
        Pose p;
        u64 cycle = frame / 30, phase = frame % 30;
        float base = -26.4f * cycle;
        float z = phase < 22 ? base - 1.2f * phase : base - 26.4f;
        p.position = {0, 0.8f + 0.12f * std::sin(frame * 0.9f), z - 3.0f};
        return p;
    };
    scene->addObject(std::move(runner));

    return scene;
}

/** Physics ball puzzle: mostly static table, ball rolls episodically. */
std::unique_ptr<Scene>
makeBallPuzzle(const GpuConfig &config, u64 seed)
{
    auto scene = std::make_unique<Scene>("tib", config);
    Rng rng(seed * 0x71b3 + 47);

    u32 feltTex = scene->addTexture(
        Texture(0, 256, 256, TexturePattern::Noise, seed + 21));
    u32 ballTex = scene->addTexture(
        Texture(1, 128, 128, TexturePattern::Checker, seed + 22));

    float aspect = static_cast<float>(config.screenWidth)
        / config.screenHeight;
    Camera cam;
    cam.viewProj = [aspect](u64) {
        Mat4 proj = Mat4::perspective(pi / 4, aspect, 0.5f, 60.0f);
        Mat4 view = Mat4::lookAt({0, 9, 9}, {0, 0, 0}, {0, 1, 0});
        return proj * view;
    };
    scene->setCamera(cam);

    // Table.
    SceneObject table;
    table.name = "table";
    table.mesh = makeSubdividedQuad(22, 16, 8, 6, 4.0f);
    table.shader = ShaderKind::Textured;
    table.textureId = static_cast<i32>(feltTex);
    for (auto &v : table.mesh.vertices) {
        float y = v.position.y;
        v.position.y = 0;
        v.position.z = y;
        v.normal = {0, 1, 0};
    }
    table.animate = [](u64) {
        Pose p;
        p.position = {0, 0, 0};
        return p;
    };
    scene->addObject(std::move(table));

    // Static obstacles.
    for (u32 i = 0; i < 6; i++) {
        SceneObject block;
        block.name = "obst" + std::to_string(i);
        block.mesh = makeBox(1.2f, 0.8f, 1.2f);
        block.shader = ShaderKind::TexLit;
        block.textureId = static_cast<i32>(ballTex);
        float bx = -6.0f + 2.5f * i;
        float bz = (i % 2) ? 2.5f : -2.5f;
        block.animate = [bx, bz](u64) {
            Pose p;
            p.position = {bx, 0.4f, bz};
            return p;
        };
        scene->addObject(std::move(block));
    }

    // The ball: rolls for 14 frames of each 40, rests otherwise.
    SceneObject ball;
    ball.name = "ball";
    ball.mesh = makeSphere(0.7f, 12, 8);
    ball.shader = ShaderKind::TexLit;
    ball.textureId = static_cast<i32>(ballTex);
    ball.animate = [](u64 frame) {
        Pose p;
        u64 cycle = frame / 40, phase = frame % 40;
        float restX = -7.0f + 2.0f * (cycle % 7);
        if (phase < 14) {
            float t = phase / 14.0f;
            p.position = {restX + 2.0f * t, 0.7f,
                          4.0f - 8.0f * t};
            p.rotationZ = t * 6.0f;
        } else {
            p.position = {restX + 2.0f, 0.7f, -4.0f};
            p.rotationZ = 6.0f;
        }
        return p;
    };
    scene->addObject(std::move(ball));

    return scene;
}

} // namespace

const std::vector<BenchmarkInfo> &
benchmarkSuite()
{
    static const std::vector<BenchmarkInfo> suite = {
        {"ccs", "match-3 puzzle board", "Puzzle", false},
        {"cde", "tower defense map", "Tower Defense", false},
        {"coc", "strategy village", "MMO Strategy", true},
        {"ctr", "rope-cut physics puzzle", "Puzzle", false},
        {"hop", "survival horror corridor", "Survival Horror", false},
        {"mst", "first-person shooter", "FPS", true},
        {"abi", "slingshot arcade", "Arcade", false},
        {"csn", "snowboard downhill", "Arcade", true},
        {"ter", "endless runner", "Platform", true},
        {"tib", "physics ball puzzle", "Physics Puzzle", true},
    };
    return suite;
}

bool
isBenchmarkAlias(const std::string &alias)
{
    for (const BenchmarkInfo &b : benchmarkSuite())
        if (b.alias == alias)
            return true;
    return false;
}

const std::string &
benchmarkAliasList()
{
    static const std::string list = [] {
        std::string s;
        for (const BenchmarkInfo &b : benchmarkSuite()) {
            if (!s.empty())
                s += ", ";
            s += b.alias;
        }
        return s;
    }();
    return list;
}

void
fatalUnknownAlias(const std::string &alias)
{
    fatal("unknown benchmark alias: ", alias,
          " (valid aliases: ", benchmarkAliasList(), ")");
}

std::unique_ptr<Scene>
makeBenchmark(const std::string &alias, const GpuConfig &config, u64 seed)
{
    if (alias == "ccs")
        return makeMatch3(config, seed);
    if (alias == "cde")
        return makeTowerDefense(config, seed);
    if (alias == "coc")
        return makeStrategyVillage(config, seed);
    if (alias == "ctr")
        return makeRopePuzzle(config, seed);
    if (alias == "hop")
        return makeHorror(config, seed);
    if (alias == "mst")
        return makeShooter(config, seed);
    if (alias == "abi")
        return makeSlingshot(config, seed);
    if (alias == "csn")
        return makeSnowboard(config, seed);
    if (alias == "ter")
        return makeRunner(config, seed);
    if (alias == "tib")
        return makeBallPuzzle(config, seed);
    fatalUnknownAlias(alias);
}

std::unique_ptr<Scene>
makeDesktopScene(const GpuConfig &config, u64 seed)
{
    auto scene = std::make_unique<Scene>("desktop", config);
    useOrthoCamera(*scene);
    u32 wallTex = scene->addTexture(
        Texture(0, 256, 256, TexturePattern::Gradient, seed + 100));
    u32 iconTex = scene->addTexture(
        Texture(1, 128, 128, TexturePattern::Atlas, seed + 101));
    addBackground(*scene, wallTex, ShaderKind::Textured);
    for (u32 i = 0; i < 12; i++) {
        SceneObject icon;
        icon.name = "icon" + std::to_string(i);
        icon.mesh = makeQuad(64, 64, 0.25f);
        icon.shader = ShaderKind::Textured;
        icon.textureId = static_cast<i32>(iconTex);
        icon.blendMode = BlendMode::AlphaBlend;
        icon.depthTest = false;
        float ix = config.screenWidth * (0.15f + 0.18f * (i % 4));
        float iy = config.screenHeight * (0.25f + 0.22f * (i / 4));
        icon.animate = [ix, iy](u64) {
            return staticPose({ix, iy, 0.2f});
        };
        scene->addObject(std::move(icon));
    }
    return scene;
}

} // namespace regpu
