/**
 * @file
 * The benchmark suite of Table II as synthetic scenes.
 *
 * We cannot ship traces of the commercial games, so each benchmark is
 * a deterministic synthetic scene engineered to reproduce the
 * *workload properties* RE is sensitive to:
 *
 *  - coherence class (Fig. 2 / Fig. 15a): fraction of tiles whose
 *    inputs repeat frame-to-frame, governed by how much of the screen
 *    is covered by static versus animated geometry and by camera
 *    dynamics;
 *  - false-negative sources: geometry animating behind opaque covers
 *    (z-culled, so colors repeat while inputs change) and plain-color
 *    regions under panning (uv scroll over solid texture areas);
 *  - scene complexity: drawcall / triangle / texture volume in the
 *    ballpark of each genre (2D puzzle boards vs full-3D shooters).
 *
 * Class assignment follows the paper:
 *   ccs cde coc ctr hop -> mostly-static camera, >90% redundant tiles
 *   mst                 -> continuous camera motion, ~no redundancy
 *   abi csn ter tib     -> mixed phases
 */

#ifndef REGPU_WORKLOADS_WORKLOADS_HH
#define REGPU_WORKLOADS_WORKLOADS_HH

#include <memory>
#include <string>
#include <vector>

#include "scene/scene.hh"

namespace regpu
{

/** Static description of one benchmark (Table II). */
struct BenchmarkInfo
{
    std::string alias;   //!< e.g. "ccs"
    std::string title;   //!< e.g. "match-3 puzzle (CandyCrush-class)"
    std::string genre;
    bool is3D = false;
};

/** All ten benchmarks, in the paper's presentation order. */
const std::vector<BenchmarkInfo> &benchmarkSuite();

/** True iff @p alias names a suite benchmark. */
bool isBenchmarkAlias(const std::string &alias);

/** Comma-separated valid aliases, for "unknown alias" diagnostics. */
const std::string &benchmarkAliasList();

/**
 * Shared rejection path for unknown aliases: fatal() naming the bad
 * alias and listing every valid one. Used by makeBenchmark and by the
 * parallel runner's pre-flight job validation.
 */
[[noreturn]] void fatalUnknownAlias(const std::string &alias);

/**
 * Build the scene for a benchmark.
 * @param alias   one of the suite aliases
 * @param config  GPU config (screen size drives layout)
 * @param seed    content seed (fixed across techniques for fairness)
 */
std::unique_ptr<Scene> makeBenchmark(const std::string &alias,
                                     const GpuConfig &config,
                                     u64 seed = 1);

/**
 * An "Android desktop" style idle scene for the Fig. 1 power profile:
 * a static wallpaper and a handful of static icons; nothing animates.
 */
std::unique_ptr<Scene> makeDesktopScene(const GpuConfig &config,
                                        u64 seed = 1);

} // namespace regpu

#endif // REGPU_WORKLOADS_WORKLOADS_HH
