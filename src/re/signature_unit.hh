/**
 * @file
 * The Signature Unit (paper Fig. 7): on-the-fly, incremental
 * computation of per-tile input signatures during binning.
 *
 * Data path per paper §III-F:
 *  - constants blocks arrive from the Command Processor, are signed by
 *    the Compute CRC unit into the Constants CRC register (with their
 *    length in Shift Amount C), and the per-tile constants bitmap is
 *    cleared;
 *  - primitive attribute blocks arrive from the Polygon List Builder,
 *    are signed into the Primitive CRC register (length in Shift
 *    Amount P) while the PLB pushes the overlapped-tile ids into the
 *    OT Queue;
 *  - the unit then drains the OT Queue: for each tile it reads the
 *    running CRC from the Signature Buffer, folds in the constants CRC
 *    first if this tile has not yet seen this drawcall's constants
 *    (bitmap check), then folds in the primitive CRC, and writes the
 *    result back.
 */

#ifndef REGPU_RE_SIGNATURE_UNIT_HH
#define REGPU_RE_SIGNATURE_UNIT_HH

#include <span>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "crc/hashes.hh"
#include "crc/units.hh"
#include "re/signature_buffer.hh"

namespace regpu
{

/** Cycle/energy activity of the Signature Unit for one frame. */
struct SignatureUnitActivity
{
    Cycles computeCycles = 0;    //!< Compute CRC unit busy cycles
    Cycles accumulateCycles = 0; //!< Accumulate CRC unit busy cycles
    Cycles stallCycles = 0;      //!< geometry stalls from OT overflow
    u64 lutAccesses = 0;
    u64 sigBufferAccesses = 0;
    u64 otPushes = 0;
    u64 bitmapAccesses = 0;
};

/**
 * Functional + overhead model of the Signature Unit.
 *
 * The hash function is pluggable (HashKind) so the Section V ablation
 * can swap CRC32 for weaker XOR/ADD schemes; cycle accounting always
 * follows the CRC datapath shape (64-bit sub-block per cycle).
 */
class SignatureUnit
{
  public:
    SignatureUnit(const GpuConfig &_config, SignatureBuffer &_buffer,
                  HashKind hashKind = HashKind::Crc32)
        : config(_config), buffer(_buffer), kind(hashKind)
    {}

    /** Frame start: reset per-frame activity. */
    void
    frameBegin()
    {
        activity_ = SignatureUnitActivity{};
        bitmap.assign(config.numTiles(), 0);
        constantsCrc = 0;
        constantsBytes = 0;
        suBusy = 0;
        geomBusy = 0;
    }

    /**
     * Command Processor path: a drawcall's constants arrive.
     * Signs the serialized constants and clears the bitmap.
     */
    void
    onConstants(std::span<const u8> constantBytes)
    {
        BlockSignature sig = signBlock(constantBytes);
        constantsCrc = sig.crc;
        constantsBytes = sig.lengthBytes;
        std::fill(bitmap.begin(), bitmap.end(), u8{0});
        activity_.bitmapAccesses += 1; // flash clear
    }

    /**
     * Polygon List Builder path: a primitive and its overlapped tiles.
     *
     * Overhead model: the Signature Unit runs decoupled behind the
     * 16-entry OT Queue. Each primitive adds work (compute cycles +
     * one accumulate pass per overlapped tile); the Geometry Pipeline
     * meanwhile advances by the primitive's inter-arrival time (vertex
     * shading / PLB bound, whichever is slower - passed by the
     * caller). The queue lets the SU lag by up to its capacity worth
     * of tile updates; only backlog beyond that stalls geometry
     * (paper Section V: overflow happens for primitives covering a
     * large amount of tiles).
     *
     * @param attributeBytes serialized vertex attributes (3 vertices)
     * @param tiles          overlapped tile ids
     * @param interArrival   cycles the Geometry Pipeline takes to
     *                       deliver this primitive to the PLB
     */
    void
    onPrimitive(std::span<const u8> attributeBytes,
                const std::vector<TileId> &tiles, Cycles interArrival)
    {
        // Compute CRC unit signs the attribute block (Algorithm 2).
        BlockSignature prim = signBlock(attributeBytes);
        const u32 primSub = prim.subBlocks();
        const u32 constSub =
            static_cast<u32>((constantsBytes + 7) / 8);
        Cycles work = primSub; // compute pipeline slot

        activity_.otPushes += tiles.size();

        for (TileId t : tiles) {
            u32 running = buffer.read(t);
            activity_.sigBufferAccesses++;

            // Constants folded once per tile per constants-set.
            activity_.bitmapAccesses++;
            if (!bitmap[t]) {
                bitmap[t] = 1;
                activity_.bitmapAccesses++;
                running = hashCombine(kind, running, constantsCrc,
                                      constantsBytes);
                work += constSub; // Accumulate unit iterations
                activity_.accumulateCycles += constSub;
                activity_.lutAccesses += 4ull * constSub;
            }

            // Fold the primitive CRC (Accumulate + XOR, Algorithm 1).
            running = hashCombine(kind, running, prim.crc,
                                  prim.lengthBytes);
            work += primSub;
            activity_.accumulateCycles += primSub;
            activity_.lutAccesses += 4ull * primSub;

            buffer.write(t, running);
            activity_.sigBufferAccesses++;
        }

        // Decoupled-queue timing: geometry advances, SU accumulates.
        suBusy += work;
        geomBusy += interArrival;
        const Cycles slack = otQueueSlackCycles();
        if (suBusy > geomBusy + slack) {
            Cycles stall = suBusy - geomBusy - slack;
            activity_.stallCycles += stall;
            geomBusy += stall; // the PLB waited
        }
    }

    /** Per-frame activity (cycles, accesses) for timing/energy. */
    const SignatureUnitActivity &activity() const { return activity_; }

    HashKind hashKind() const { return kind; }

  private:
    /** Sign a block through the Compute CRC unit model (byte-exact). */
    BlockSignature
    signBlock(std::span<const u8> bytes)
    {
        const u32 blocks = static_cast<u32>((bytes.size() + 7) / 8);
        activity_.computeCycles += blocks;
        activity_.lutAccesses += 12ull * blocks;
        u32 crc = hashBlock(kind, bytes);
        return {crc, bytes.size()};
    }

    /** Lag the OT queue can absorb: its entries times the typical
     *  accumulate pass of one tile update (~16 cycles). */
    Cycles
    otQueueSlackCycles() const
    {
        return config.otQueueEntries * 16ull;
    }

    const GpuConfig &config;
    SignatureBuffer &buffer;
    HashKind kind;
    std::vector<u8> bitmap;
    u32 constantsCrc = 0;
    u64 constantsBytes = 0;
    Cycles suBusy = 0;
    Cycles geomBusy = 0;
    SignatureUnitActivity activity_;
};

} // namespace regpu

#endif // REGPU_RE_SIGNATURE_UNIT_HH
