/**
 * @file
 * The Signature Buffer: an on-chip SRAM holding one 32-bit signature
 * per tile for the frames spanned by the swap chain (two with double
 * buffering, paper §IV-C).
 *
 * Slot-rotation / validity protocol
 * ---------------------------------
 * The buffer holds `frameSpan` slots in a ring. Exactly one, the
 * "current" slot, accumulates signatures while the Geometry Pipeline
 * bins the frame; the "comparison" slot - the next one in ring order,
 * i.e. the slot that will be recycled last, `frameSpan - 1` rotations
 * ago - holds the frame the Back Buffer's contents were rendered from.
 *
 * Per frame, a controller must:
 *  1. rotate()        - recycle the oldest slot as the new current one
 *                       (its signatures and validity are cleared);
 *  2. setAllValid(v)  - publish the frame's validity wholesale: true
 *                       when the technique is active (tiles with no
 *                       geometry keep the defined signature 0 and must
 *                       still compare equal), false when the frame is
 *                       untrustworthy (RE disabled for the frame).
 *                       Calling setAllValid(false) subsumes
 *                       invalidateCurrent(): there is no need for both.
 *  3. write()/read()  - accumulate per-tile running signatures;
 *  4. compare()/readComparison() - consult the comparison slot. Both
 *                       fail (return false) when either side is
 *                       invalid, so frames after a disabled or
 *                       invalidated frame can never match against it.
 *
 * invalidateAll()/invalidateCurrent() remain for mid-frame events
 * (e.g. a technique deciding its accumulated state is unusable).
 */

#ifndef REGPU_RE_SIGNATURE_BUFFER_HH
#define REGPU_RE_SIGNATURE_BUFFER_HH

#include <vector>

#include "common/config.hh"
#include "common/types.hh"

namespace regpu
{

/**
 * Multi-frame tile-signature storage with validity tracking (the
 * first frame, or a frame after an RE-disable, has no valid previous
 * signature to compare with).
 */
class SignatureBuffer
{
  public:
    /**
     * @param numTiles tiles per frame
     * @param frameSpan number of frame slots (2 for double buffering:
     *        the set for the Back Buffer and the set for the Front)
     */
    SignatureBuffer(u32 numTiles, u32 frameSpan)
        : numTiles_(numTiles), span(frameSpan),
          slots(frameSpan, Slot{std::vector<u32>(numTiles, 0),
                                std::vector<u8>(numTiles, 0)})
    {}

    /** Begin accumulating a new frame: rotate to the oldest slot and
     *  clear it. @return index of the now-current slot. */
    u32
    rotate()
    {
        current = (current + 1) % span;
        auto &slot = slots[current];
        std::fill(slot.sig.begin(), slot.sig.end(), 0u);
        std::fill(slot.valid.begin(), slot.valid.end(), u8{0});
        return current;
    }

    /** Read the current frame's running signature for a tile. */
    u32
    read(TileId tile)
    {
        reads_++;
        return slots[current].sig[tile];
    }

    /** Write back a tile's updated running signature. */
    void
    write(TileId tile, u32 sig)
    {
        writes_++;
        slots[current].sig[tile] = sig;
        slots[current].valid[tile] = 1;
    }

    /** Mark every tile of the current frame valid/invalid wholesale
     *  (tiles with no geometry still have a defined signature: 0). */
    void
    setAllValid(bool v)
    {
        std::fill(slots[current].valid.begin(),
                  slots[current].valid.end(), v ? u8{1} : u8{0});
    }

    /**
     * Compare the current frame's signature with the comparison
     * frame's (the slot `span-1` rotations ago, i.e. the Back Buffer
     * frame under double buffering).
     *
     * @param tile tile id
     * @param matched out: signatures equal and both valid
     * @return true when a valid comparison was possible
     */
    bool
    compare(TileId tile, bool &matched)
    {
        reads_ += 2;
        return peekCompare(tile, matched);
    }

    /**
     * compare() without the access accounting: same validity check and
     * equality answer, but reads_ stays untouched and the object is
     * const. This is the tile worker pool's phase-1 prediction path
     * (PipelineHooks::queryRenderTile): workers may peek concurrently
     * while the serial merge phase issues the one *counted* compare()
     * per tile, keeping re.sigBufferAccesses bit-identical to the
     * serial pipeline for any worker count.
     */
    bool
    peekCompare(TileId tile, bool &matched) const
    {
        const u32 prev = (current + 1) % span;
        const Slot &cur = slots[current];
        const Slot &old = slots[prev];
        if (!cur.valid[tile] || !old.valid[tile]) {
            matched = false;
            return false;
        }
        matched = cur.sig[tile] == old.sig[tile];
        return true;
    }

    /**
     * Read the comparison slot's signature for @p tile without
     * touching the current slot (one SRAM read). Lets a consumer that
     * computes its own candidate signature - Transaction Elimination
     * hashing a tile's output colors - compare and then write() the
     * new signature exactly once.
     *
     * @param sig out: the comparison slot's signature (valid entries)
     * @return true when the comparison slot's entry is valid
     */
    bool
    readComparison(TileId tile, u32 &sig)
    {
        reads_++;
        const Slot &old = slots[(current + 1) % span];
        if (!old.valid[tile])
            return false;
        sig = old.sig[tile];
        return true;
    }

    /** Invalidate every slot (RE disabled for a frame: downstream
     *  comparisons against this frame must fail). */
    void
    invalidateAll()
    {
        for (auto &slot : slots)
            std::fill(slot.valid.begin(), slot.valid.end(), u8{0});
    }

    /** Invalidate only the current frame's entries. */
    void
    invalidateCurrent()
    {
        std::fill(slots[current].valid.begin(),
                  slots[current].valid.end(), u8{0});
    }

    u32 numTiles() const { return numTiles_; }
    u64 accesses() const { return reads_ + writes_; }
    u64 sizeBytes() const { return static_cast<u64>(span) * numTiles_ * 4; }

    /** Raw signature of the current slot (tests/debug). */
    u32 peek(TileId tile) const { return slots[current].sig[tile]; }

  private:
    struct Slot
    {
        std::vector<u32> sig;
        std::vector<u8> valid;
    };

    u32 numTiles_;
    u32 span;
    std::vector<Slot> slots;
    u32 current = 0;
    u64 reads_ = 0;
    u64 writes_ = 0;
};

} // namespace regpu

#endif // REGPU_RE_SIGNATURE_BUFFER_HH
