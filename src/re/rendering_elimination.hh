/**
 * @file
 * Rendering Elimination controller: wires the Signature Unit and
 * Signature Buffer into the pipeline hook points and decides, per
 * tile, whether the Raster Pipeline can be bypassed.
 *
 * Driver-visible behaviour per paper §III-E:
 *  - RE is disabled for a frame when shaders/textures were uploaded
 *    (glShaderSource / glTexImage2D class API calls);
 *  - RE can be disabled one frame out of every refreshPeriodFrames to
 *    guarantee Frame Buffer refresh;
 *  - a disabled frame also invalidates its own signatures so later
 *    frames never match against it.
 */

#ifndef REGPU_RE_RENDERING_ELIMINATION_HH
#define REGPU_RE_RENDERING_ELIMINATION_HH

#include <vector>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "gpu/pipeline.hh"
#include "obs/obs.hh"
#include "re/signature_buffer.hh"
#include "re/signature_unit.hh"

namespace regpu
{

/**
 * PipelineHooks implementation for Rendering Elimination.
 */
class RenderingElimination : public PipelineHooks
{
  public:
    /**
     * Slot count: while frame N accumulates we must still hold frame
     * N-1 (needed for frame N+1's comparison under double buffering)
     * and frame N-2 (the Back Buffer frame N compares against), hence
     * 3 rotation slots; single buffering compares N vs N-1 and needs 2.
     * The hardware cost reported by the paper (2 frames of signatures)
     * corresponds to the steady-state live sets.
     */
    RenderingElimination(const GpuConfig &_config, StatRegistry &_stats,
                         HashKind hashKind = HashKind::Crc32)
        : config(_config), stats(_stats),
          buffer(_config.numTiles(), _config.doubleBuffered ? 3 : 2),
          unit(_config, buffer, hashKind)
    {}

    // ---- PipelineHooks ---------------------------------------------------

    void
    frameBegin(u64 frameIndex, bool reSafe) override
    {
        // Slot-rotation/validity protocol (see signature_buffer.hh):
        // rotate() clears the oldest slot for this frame's accumulation;
        // setAllValid() then marks the whole frame valid (RE enabled,
        // empty tiles compare equal by their defined 0 signature) or
        // invalid (RE disabled: this frame's tiles render under
        // potentially new global state, so later frames must never
        // match against it).
        buffer.rotate();
        unit.frameBegin();
        frame = frameIndex;
        enabled = reSafe;
        if (config.refreshPeriodFrames
            && frameIndex % config.refreshPeriodFrames
               == config.refreshPeriodFrames - 1)
            enabled = false;
        if (!enabled)
            stats.inc("re.framesDisabled");
        buffer.setAllValid(enabled);
    }

    void
    onDrawcallConstants(u32 drawIndex, const DrawCall &draw) override
    {
        if (!enabled)
            return;
        ObsScope span("re", "constants", "draw",
                      static_cast<i64>(drawIndex));
        // Shader kind, texture binding and blend state are part of the
        // tile's rendering inputs even though the paper keeps shader
        // *code* and texture *contents* out of the signature: binding
        // a different texture/shader must change the signature. The
        // texture id is serialized at its full 32-bit width (the +1
        // maps the -1 "no texture" sentinel to 0, matching the
        // rasterizer's input-signature encoding): a 16-bit truncation
        // would alias ids differing only above bit 15 — and wrap
        // id 0xFFFF onto the no-texture encoding — producing
        // signature false-matches for genuinely different bindings.
        constexpr std::size_t stateBytes = 8;
        u8 bytes[UniformSet::maxSerializedBytes + stateBytes];
        std::size_t len = draw.state.uniforms.serializeInto(
            {bytes, UniformSet::maxSerializedBytes});
        const u32 texEncoding =
            static_cast<u32>(draw.state.textureId + 1);
        bytes[len++] = static_cast<u8>(draw.state.shader);
        bytes[len++] = static_cast<u8>(draw.state.blendMode);
        bytes[len++] = static_cast<u8>(texEncoding);
        bytes[len++] = static_cast<u8>(texEncoding >> 8);
        bytes[len++] = static_cast<u8>(texEncoding >> 16);
        bytes[len++] = static_cast<u8>(texEncoding >> 24);
        bytes[len++] = draw.state.depthTest ? 1 : 0;
        bytes[len++] = draw.state.depthWrite ? 1 : 0;
        REGPU_ASSERT(len <= sizeof(bytes));
        unit.onConstants({bytes, len});
        stats.inc("re.constantBlocksSigned");
    }

    void
    onPrimitiveBinned(const Primitive &prim, const DrawCall &draw,
                      const std::vector<TileId> &tiles) override
    {
        if (!enabled)
            return;
        u8 attrs[maxTriangleAttributeBytes];
        const std::size_t attrLen =
            serializeTriangleAttributesInto(draw, prim.firstVertex,
                                            attrs);
        // Inter-arrival of primitives at the PLB: the slowest of the
        // PLB's own sorting work and the upstream vertex-shading rate
        // (3 vertices per triangle through the vertex processors).
        Cycles plbCycles = tiles.size() * 2 + (attrLen + 16) / 16;
        Cycles shadeCycles = 3ull
            * vertexShaderInstructions(draw.state.shader)
            / config.numVertexProcessors;
        unit.onPrimitive({attrs, attrLen}, tiles,
                         std::max(plbCycles, shadeCycles));
        stats.inc("re.primitiveBlocksSigned");
    }

    /**
     * Tile-pool opt-in: during the raster phase RE's state is
     * read-only (signatures were accumulated at geometry time), the
     * query below is pure, and RE attaches no memo client.
     */
    bool tileWorkersSafe() const override { return true; }

    /** Phase-1 prediction: compare()'s answer without its counted
     *  SRAM reads or stats - those stay with shouldRenderTile in the
     *  serial merge phase, so stats match the serial pipeline
     *  bit-for-bit under any --tile-jobs. */
    bool
    queryRenderTile(TileId tile) override
    {
        if (!enabled)
            return true;
        bool matched = false;
        const bool comparable = buffer.peekCompare(tile, matched);
        return !(comparable && matched);
    }

    bool
    shouldRenderTile(TileId tile) override
    {
        if (!enabled)
            return true;
        bool matched = false;
        bool comparable = buffer.compare(tile, matched);
        stats.inc("re.signatureCompares");
        if (comparable && matched) {
            stats.inc("re.tilesSkipped");
            if (obsTileDetail())
                obsInstant("re", "tileSkipped", "tile",
                           static_cast<i64>(tile));
            return false;
        }
        return true;
    }

    void
    frameEnd() override
    {
        const SignatureUnitActivity &a = unit.activity();
        stats.inc("re.computeCycles", a.computeCycles);
        stats.inc("re.accumulateCycles", a.accumulateCycles);
        stats.inc("re.stallCycles", a.stallCycles);
        stats.inc("re.lutAccesses", a.lutAccesses);
        stats.inc("re.sigBufferAccesses", a.sigBufferAccesses);
        stats.inc("re.otPushes", a.otPushes);
        stats.inc("re.bitmapAccesses", a.bitmapAccesses);
    }

    /** Geometry-stall cycles of the current frame (timing model). */
    Cycles frameStallCycles() const { return unit.activity().stallCycles; }

    /** Whether RE is active this frame. */
    bool active() const { return enabled; }

    SignatureBuffer &signatureBuffer() { return buffer; }
    const SignatureUnit &signatureUnit() const { return unit; }

  private:
    const GpuConfig &config;
    StatRegistry &stats;
    SignatureBuffer buffer;
    SignatureUnit unit;
    u64 frame = 0;
    bool enabled = true;
};

} // namespace regpu

#endif // REGPU_RE_RENDERING_ELIMINATION_HH
