#include "sim/report.hh"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <iomanip>

namespace regpu
{

namespace
{

double
pct(u64 part, u64 whole)
{
    return whole ? 100.0 * part / whole : 0.0;
}

/**
 * RFC 4180 quoting for one CSV field: fields containing a comma,
 * quote, CR or LF are wrapped in double quotes with embedded quotes
 * doubled. Plain fields (every suite alias) pass through unchanged,
 * so existing artifacts are byte-identical.
 */
std::string
csvEscape(const std::string &s)
{
    if (s.find_first_of(",\"\r\n") == std::string::npos)
        return s;
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::ostream &
writeRoundTripDouble(std::ostream &os, double v)
{
    if (!std::isfinite(v))
        v = 0.0;
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    os.write(buf, res.ptr - buf);
    return os;
}

void
printRunSummary(std::ostream &os, const SimResult &r,
                const GpuConfig &config)
{
    StreamFormatGuard guard(os);
    os << "== " << r.workload << " / " << techniqueName(r.technique)
       << " (" << r.frames << " frames, " << config.screenWidth << "x"
       << config.screenHeight << ") ==\n";

    os << "cycles      : total " << r.totalCycles() << " (geometry "
       << r.geometryCycles << ", raster " << r.rasterCycles << ")\n";
    double fps = r.totalCycles()
        ? static_cast<double>(config.frequencyHz) * r.frames
            / r.totalCycles()
        : 0.0;
    os << "throughput  : " << std::fixed << std::setprecision(1) << fps
       << " simulated fps at " << config.frequencyHz / 1e6 << " MHz\n";

    os << "energy      : total " << std::setprecision(3)
       << r.energy.total() * 1e-9 << " mJ (GPU "
       << r.energy.gpu() * 1e-9 << ", memory "
       << r.energy.memory() * 1e-9 << ")\n";

    os << "dram        : total " << r.traffic.total() / 1e6
       << " MB (geometry "
       << r.traffic[TrafficClass::Geometry] / 1e6 << ", primitives "
       << r.traffic[TrafficClass::Primitives] / 1e6 << ", texels "
       << r.traffic[TrafficClass::Texels] / 1e6 << ", colors "
       << r.traffic[TrafficClass::Colors] / 1e6 << ")\n";
    os << "dram dirs   : reads " << r.traffic.totalReads() / 1e6
       << " MB, writes " << r.traffic.totalWrites() / 1e6
       << " MB, writebacks " << r.traffic.totalWritebacks() / 1e6
       << " MB\n";

    os << "tiles       : " << r.tilesTotal << " processed, "
       << r.tilesRendered << " rendered, " << r.tilesSkippedByRe
       << " eliminated (" << std::setprecision(1)
       << pct(r.tilesSkippedByRe, r.tilesTotal) << "%), "
       << r.tileFlushesEliminated << " flushes elided\n";

    const TileClassCounts &tc = r.tileClasses;
    if (tc.comparedTiles) {
        os << "tile classes: eqC&eqI "
           << pct(tc.equalColorsEqualInputs, tc.comparedTiles)
           << "%, eqC&diffI "
           << pct(tc.equalColorsDiffInputs, tc.comparedTiles)
           << "%, diffC&diffI "
           << pct(tc.diffColorsDiffInputs, tc.comparedTiles)
           << "%, diffC&eqI "
           << pct(tc.diffColorsEqualInputs, tc.comparedTiles) << "%\n";
    }

    os << "fragments   : " << r.fragmentsShaded << " shaded, "
       << r.fragmentsMemoReused << " memo-reused\n";
    os << "overheads   : " << r.signatureStallCycles
       << " signature-stall cycles, " << r.reFalsePositives
       << " false positives\n";
    os << "fig2 metric : " << std::setprecision(1)
       << r.equalTilesConsecutivePct
       << "% tiles equal to the preceding frame\n";
}

void
printComparison(std::ostream &os, const std::vector<SimResult> &results)
{
    if (results.empty())
        return;
    StreamFormatGuard guard(os);
    const SimResult &base = results.front();
    os << "comparison for '" << base.workload << "' (normalized to "
       << techniqueName(base.technique) << ")\n";
    os << std::left << std::setw(10) << "technique" << std::right
       << std::setw(12) << "cycles" << std::setw(12) << "energy"
       << std::setw(12) << "dram" << std::setw(14) << "fragsShaded"
       << "\n";
    for (const SimResult &r : results) {
        auto norm = [](u64 v, u64 b) {
            return b ? static_cast<double>(v) / b : 0.0;
        };
        os << std::left << std::setw(10) << techniqueName(r.technique)
           << std::right << std::fixed << std::setprecision(3)
           << std::setw(12) << norm(r.totalCycles(), base.totalCycles())
           << std::setw(12)
           << (base.energy.total()
                   ? r.energy.total() / base.energy.total() : 0.0)
           << std::setw(12)
           << norm(r.traffic.total(), base.traffic.total())
           << std::setw(14)
           << norm(r.fragmentsShaded, base.fragmentsShaded) << "\n";
    }
}

const std::vector<std::string> &
csvColumns()
{
    static const std::vector<std::string> columns = {
        "workload", "technique", "frames", "geometryCycles",
        "rasterCycles", "totalCycles", "energyGpuPj", "energyMemPj",
        "energyTotalPj", "dramGeometryB", "dramPrimitivesB",
        "dramTexelsB", "dramColorsB", "dramReadB", "dramWriteB",
        "dramWritebackB", "tilesTotal", "tilesRendered",
        "tilesSkipped", "flushesElided", "eqColorsEqInputs",
        "eqColorsDiffInputs", "diffColorsDiffInputs",
        "diffColorsEqInputs", "fragmentsShaded", "fragmentsMemoReused",
        "signatureStallCycles", "falsePositives",
        "equalTilesConsecutivePct",
    };
    return columns;
}

void
writeJsonRun(std::ostream &os, const SimResult &r,
             const GpuConfig &config, u64 sceneSeed)
{
    os << "{";
    os << "\"workload\":\"" << jsonEscape(r.workload) << "\"";
    os << ",\"technique\":\"" << techniqueName(r.technique) << "\"";
    os << ",\"seed\":" << sceneSeed;
    os << ",\"frames\":" << r.frames;
    os << ",\"screenWidth\":" << config.screenWidth;
    os << ",\"screenHeight\":" << config.screenHeight;
    os << ",\"tileWidth\":" << config.tileWidth;
    os << ",\"tileHeight\":" << config.tileHeight;
    os << ",\"geometryCycles\":" << r.geometryCycles;
    os << ",\"rasterCycles\":" << r.rasterCycles;
    os << ",\"totalCycles\":" << r.totalCycles();
    writeRoundTripDouble(os << ",\"energyGpuPj\":", r.energy.gpu());
    writeRoundTripDouble(os << ",\"energyMemPj\":", r.energy.memory());
    writeRoundTripDouble(os << ",\"energyTotalPj\":",
                         r.energy.total());
    os << ",\"dramGeometryB\":" << r.traffic[TrafficClass::Geometry];
    os << ",\"dramPrimitivesB\":" << r.traffic[TrafficClass::Primitives];
    os << ",\"dramTexelsB\":" << r.traffic[TrafficClass::Texels];
    os << ",\"dramColorsB\":" << r.traffic[TrafficClass::Colors];
    os << ",\"dramReadB\":" << r.traffic.totalReads();
    os << ",\"dramWriteB\":" << r.traffic.totalWrites();
    os << ",\"dramWritebackB\":" << r.traffic.totalWritebacks();
    os << ",\"tilesTotal\":" << r.tilesTotal;
    os << ",\"tilesRendered\":" << r.tilesRendered;
    os << ",\"tilesSkipped\":" << r.tilesSkippedByRe;
    os << ",\"flushesElided\":" << r.tileFlushesEliminated;
    os << ",\"eqColorsEqInputs\":"
       << r.tileClasses.equalColorsEqualInputs;
    os << ",\"eqColorsDiffInputs\":"
       << r.tileClasses.equalColorsDiffInputs;
    os << ",\"diffColorsDiffInputs\":"
       << r.tileClasses.diffColorsDiffInputs;
    os << ",\"diffColorsEqInputs\":"
       << r.tileClasses.diffColorsEqualInputs;
    os << ",\"fragmentsShaded\":" << r.fragmentsShaded;
    os << ",\"fragmentsMemoReused\":" << r.fragmentsMemoReused;
    os << ",\"signatureStallCycles\":" << r.signatureStallCycles;
    os << ",\"falsePositives\":" << r.reFalsePositives;
    writeRoundTripDouble(os << ",\"equalTilesConsecutivePct\":",
                         r.equalTilesConsecutivePct);
    os << "}\n";
}

void
writeCsvRow(std::ostream &os, const SimResult &r, bool header)
{
    if (header) {
        const auto &cols = csvColumns();
        for (std::size_t i = 0; i < cols.size(); i++)
            os << cols[i] << (i + 1 < cols.size() ? "," : "\n");
    }
    os << csvEscape(r.workload) << "," << techniqueName(r.technique)
       << "," << r.frames << "," << r.geometryCycles << ","
       << r.rasterCycles << "," << r.totalCycles() << ",";
    writeRoundTripDouble(os, r.energy.gpu()) << ",";
    writeRoundTripDouble(os, r.energy.memory()) << ",";
    writeRoundTripDouble(os, r.energy.total()) << ","
       << r.traffic[TrafficClass::Geometry] << ","
       << r.traffic[TrafficClass::Primitives] << ","
       << r.traffic[TrafficClass::Texels] << ","
       << r.traffic[TrafficClass::Colors] << ","
       << r.traffic.totalReads() << "," << r.traffic.totalWrites()
       << "," << r.traffic.totalWritebacks() << ","
       << r.tilesTotal << ","
       << r.tilesRendered << "," << r.tilesSkippedByRe << ","
       << r.tileFlushesEliminated << ","
       << r.tileClasses.equalColorsEqualInputs << ","
       << r.tileClasses.equalColorsDiffInputs << ","
       << r.tileClasses.diffColorsDiffInputs << ","
       << r.tileClasses.diffColorsEqualInputs << ","
       << r.fragmentsShaded << "," << r.fragmentsMemoReused << ","
       << r.signatureStallCycles << "," << r.reFalsePositives << ",";
    writeRoundTripDouble(os, r.equalTilesConsecutivePct) << "\n";
}

} // namespace regpu
