/**
 * @file
 * Experiment helpers: run the benchmark suite across techniques and
 * print paper-style tables (one bench binary per table/figure builds
 * on these).
 */

#ifndef REGPU_SIM_EXPERIMENT_HH
#define REGPU_SIM_EXPERIMENT_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "workloads/workloads.hh"

namespace regpu
{

/** Scale factors for quick vs paper-fidelity runs. */
struct ExperimentScale
{
    u32 screenWidth = 1196;
    u32 screenHeight = 768;
    u64 frames = 30;
    unsigned jobs = 1;  //!< worker threads for the sweep (0 = all cores)
    unsigned tileJobs = 1;  //!< intra-frame tile workers per run
                            //!< (results identical for any value)

    /** When set, runSuite records one trace per workload here before
     *  simulating (file name `<alias>.rgputrace`). */
    std::string recordDir;
    /** When set, runSuite replays `<alias>.rgputrace` from here
     *  instead of generating scenes. */
    std::string replayDir;

    /**
     * Parse from argv: "--fast" shrinks, "--full" uses Table I with
     * 50 frames (Fig. 2 setting), "--frames N", "--jobs N" (results
     * are identical for any N), "--tile-jobs N" (intra-frame tile
     * workers, results identical for any N), "--record-dir D" /
     * "--replay-dir D" capture or replay frame traces. Default is
     * Table I resolution with a 30-frame single-threaded run.
     *
     * Parsing is strict: an unknown flag, a flag missing its value,
     * or a malformed number fatal()s with a usage message — a typo
     * like "--frmes 50" must not silently run the defaults.
     */
    static ExperimentScale fromArgs(int argc, char **argv);
};

/** Results of one workload under every requested technique. */
struct WorkloadResults
{
    std::string alias;
    std::map<Technique, SimResult> byTechnique;
};

/**
 * Run @p aliases under each technique in @p techniques with the given
 * scale. Scenes and seeds are identical across techniques. When
 * scale.jobs > 1, the (alias x technique) cells run concurrently on a
 * worker pool; results are bit-identical to the sequential order.
 */
std::vector<WorkloadResults>
runSuite(const std::vector<std::string> &aliases,
         const std::vector<Technique> &techniques,
         const ExperimentScale &scale,
         HashKind hashKind = HashKind::Crc32);

/** All ten paper aliases in presentation order. */
std::vector<std::string> allAliases();

/** Geometric mean helper used in the "AVG" columns. */
double geomean(const std::vector<double> &values);

/** Arithmetic mean helper. */
double mean(const std::vector<double> &values);

/** Fixed-width table-cell printing helpers shared by benches. */
void printTableHeader(const std::string &title,
                      const std::vector<std::string> &columns);
void printTableRow(const std::string &label,
                   const std::vector<double> &values, int precision = 3);

} // namespace regpu

#endif // REGPU_SIM_EXPERIMENT_HH
