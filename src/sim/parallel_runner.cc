#include "sim/parallel_runner.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <exception>
#include <limits>
#include <map>
#include <memory>
#include <thread>

#include "common/logging.hh"
#include "common/thread_annotations.hh"
#include "crc/hashes.hh"
#include "obs/obs.hh"
#include "trace/trace_scene.hh"
#include "trace/trace_writer.hh"
#include "trace/verified_cache.hh"
#include "workloads/workloads.hh"

namespace regpu
{

namespace
{

/** Progress fold shared by the worker pool: the tracker is guarded,
 *  and one critical section around fold + callback keeps delivered
 *  done counts monotone (order-stable) across workers. */
struct ProgressState
{
    ProgressState(std::size_t total, unsigned workers)
        : tracker(total, workers)
    {}

    Mutex mutex;
    ProgressTracker tracker REGPU_GUARDED_BY(mutex);
};

/** First-exception capture of the worker pool (rethrown on the caller
 *  thread after the pool drains). */
struct ErrorState
{
    Mutex mutex;
    std::exception_ptr first REGPU_GUARDED_BY(mutex);
};

} // namespace

u64
deriveJobSeed(u64 baseSeed, const std::string &alias, u64 salt)
{
    // FNV-1a over the alias, then a splitmix64 finalizer so that
    // single-bit differences in (base, alias, salt) flip about half
    // the output bits.
    u64 h = 14695981039346656037ull;
    for (char c : alias) {
        h ^= static_cast<u8>(c);
        h *= 1099511628211ull;
    }
    u64 z = baseSeed + 0x9e3779b97f4a7c15ull * (salt + 1) + h;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

u64
parseCountArg(const char *flag, const char *text)
{
    // strtoull accepts leading whitespace and a sign, silently
    // wrapping negatives modulo 2^64 — demand a plain digit first.
    if (text[0] < '0' || text[0] > '9')
        fatal(flag, " expects a number, got: ", text);
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE)
        fatal(flag, " expects a number, got: ", text);
    return v;
}

unsigned
parseJobsArg(const char *text)
{
    const u64 v = parseCountArg("--jobs", text);
    if (v > std::numeric_limits<unsigned>::max())
        fatal("--jobs expects a number, got: ", text);
    return static_cast<unsigned>(v);
}

unsigned
parseTileJobsArg(const char *text)
{
    const u64 v = parseCountArg("--tile-jobs", text);
    if (v == 0 || v > std::numeric_limits<unsigned>::max())
        fatal("--tile-jobs expects a worker count >= 1, got: ", text);
    return static_cast<unsigned>(v);
}

Technique
parseTechniqueArg(const std::string &name)
{
    if (name == "base" || name == "baseline")
        return Technique::Baseline;
    if (name == "re")
        return Technique::RenderingElimination;
    if (name == "te")
        return Technique::TransactionElimination;
    if (name == "memo")
        return Technique::FragmentMemoization;
    fatal("unknown technique: ", name,
          " (valid: base, re, te, memo)");
}

HashKind
parseHashArg(const std::string &name)
{
    if (name == "crc32")
        return HashKind::Crc32;
    if (name == "xor")
        return HashKind::XorFold;
    if (name == "add")
        return HashKind::AddFold;
    if (name == "fnv")
        return HashKind::Fnv1a;
    fatal("unknown hash kind: ", name, " (", hashKindUsage(), ")");
}

std::vector<SimJob>
buildSweepJobs(const std::vector<std::string> &aliases,
               const std::vector<Technique> &techniques,
               u32 screenWidth, u32 screenHeight, u64 frames,
               HashKind hashKind, u64 sceneSeed)
{
    std::vector<SimJob> jobs;
    jobs.reserve(aliases.size() * techniques.size());
    for (const std::string &alias : aliases) {
        for (Technique tech : techniques) {
            SimJob job;
            job.workload = alias;
            job.config.scaleResolution(screenWidth, screenHeight);
            job.config.technique = tech;
            job.options.frames = frames;
            job.options.hashKind = hashKind;
            job.sceneSeed = sceneSeed;
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

ParallelRunner::ParallelRunner(unsigned jobs)
    : workers(jobs)
{
    if (workers == 0) {
        workers = std::thread::hardware_concurrency();
        if (workers == 0)
            workers = 1;
    }
}

ProgressUpdate
ProgressTracker::cellDone(std::size_t jobIndex, double seconds)
{
    done_++;
    ewma_ = done_ == 1 ? seconds
                       : alpha * seconds + (1.0 - alpha) * ewma_;
    ProgressUpdate u;
    u.done = done_;
    u.total = total_;
    u.jobIndex = jobIndex;
    u.cellSeconds = seconds;
    u.ewmaCellSeconds = ewma_;
    const std::size_t remaining = total_ > done_ ? total_ - done_ : 0;
    const double lanes = static_cast<double>(
        std::min<std::size_t>(workers_, remaining ? remaining : 1));
    u.etaSeconds = static_cast<double>(remaining) * ewma_ / lanes;
    return u;
}

std::vector<SimResult>
ParallelRunner::run(const std::vector<SimJob> &jobs,
                    const ProgressFn &progress) const
{
    std::vector<SimResult> results(jobs.size());
    if (jobs.empty())
        return results;

    // Reject bad jobs on the calling thread: fatal() calls
    // std::exit(), which must never run on a worker while siblings
    // are mid-simulation. Live jobs must name a suite alias. Replay
    // jobs get their trace fully verified here (every chunk CRC, not
    // just the header/index a TraceReader open checks) via the
    // process-wide VerifiedTraceCache - TEXT/FRAM corruption is
    // otherwise only discovered lazily, which would put the fatal()
    // on a worker.
    for (const SimJob &job : jobs) {
        if (job.tracePath.empty()) {
            if (!isBenchmarkAlias(job.workload))
                fatalUnknownAlias(job.workload);
            continue;
        }
        const u64 traceFrames = VerifiedTraceCache::instance()
                                    .verifiedFrameCount(job.tracePath);
        if (job.traceFirstFrame + job.options.frames > traceFrames)
            fatal("trace: job wants frames [", job.traceFirstFrame,
                  ", ", job.traceFirstFrame + job.options.frames,
                  ") but ", job.tracePath, " has only ", traceFrames,
                  " frames");
    }

    const unsigned pool =
        static_cast<unsigned>(std::min<std::size_t>(workers, jobs.size()));

    ProgressState progressState(jobs.size(), pool);

    auto runOne = [&](std::size_t i) {
        const SimJob &job = jobs[i];
        const u64 startNs = obsNowNs();
        {
            // Job-lifecycle span named after the workload (interned:
            // the ring stores pointers, and job.workload outlives the
            // run but not necessarily the flush).
            const char *label = obsEnabled()
                ? ObsSink::instance().intern(job.workload) : "job";
            ObsScope jobSpan("runner", label, "job",
                             static_cast<i64>(i), "tech",
                             static_cast<i64>(job.config.technique));
            if (!job.tracePath.empty()) {
                TraceScene scene(job.tracePath, job.traceFirstFrame,
                                 job.options.frames);
                Simulator sim(scene, job.config, job.options);
                results[i] = sim.run();
            } else {
                auto scene = makeBenchmark(job.workload, job.config,
                                           job.sceneSeed);
                Simulator sim(*scene, job.config, job.options);
                results[i] = sim.run();
            }
        }
        if (progress) {
            const double secs =
                static_cast<double>(obsNowNs() - startNs) * 1e-9;
            MutexLock lock(progressState.mutex);
            progress(progressState.tracker.cellDone(i, secs));
        }
    };

    if (pool <= 1) {
        for (std::size_t i = 0; i < jobs.size(); i++)
            runOne(i);
        return results;
    }

    std::atomic<std::size_t> nextJob{0};
    ErrorState errorState;

    auto workerLoop = [&]() {
        while (true) {
            const std::size_t i =
                nextJob.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size())
                return;
            try {
                runOne(i);
            } catch (...) {
                MutexLock lock(errorState.mutex);
                if (!errorState.first)
                    errorState.first = std::current_exception();
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(pool);
    for (unsigned t = 0; t < pool; t++)
        threads.emplace_back(workerLoop);
    for (auto &t : threads)
        t.join();

    {
        MutexLock lock(errorState.mutex);
        if (errorState.first)
            std::rethrow_exception(errorState.first);
    }
    return results;
}

void
recordSweepTraces(const std::vector<SimJob> &jobs, const std::string &dir)
{
    // One trace per distinct workload: techniques of the same sweep
    // share scene content (same alias, seed, resolution, frames), so
    // the first job of each alias fully specifies its capture.
    std::vector<std::string> recorded;
    for (const SimJob &job : jobs) {
        if (std::find(recorded.begin(), recorded.end(), job.workload)
            != recorded.end())
            continue;
        auto scene = makeBenchmark(job.workload, job.config,
                                   job.sceneSeed);
        const std::string path = traceFilePath(dir, job.workload);
        captureTrace(*scene, job.config, job.options.frames,
                     job.sceneSeed, path);
        inform("recorded ", job.options.frames, " frames of ",
               job.workload, " to ", path);
        recorded.push_back(job.workload);
    }
}

void
retargetJobsToTraces(std::vector<SimJob> &jobs, const std::string &dir)
{
    // One reader per distinct trace; warnings fire once per path, not
    // once per (workload x technique) cell.
    std::map<std::string, std::unique_ptr<TraceReader>> readers;
    for (SimJob &job : jobs) {
        job.tracePath = traceFilePath(dir, job.workload);
        auto it = readers.find(job.tracePath);
        const bool firstVisit = it == readers.end();
        if (firstVisit)
            it = readers
                     .emplace(job.tracePath,
                              std::make_unique<TraceReader>(job.tracePath))
                     .first;
        const TraceReader &reader = *it->second;
        const TraceMeta &meta = reader.meta();
        if (meta.name != job.workload)
            fatal("trace ", job.tracePath, " records workload '",
                  meta.name, "', not '", job.workload,
                  "' (stale or renamed trace?)");
        if (firstVisit
            && (meta.screenWidth != job.config.screenWidth
                || meta.screenHeight != job.config.screenHeight))
            warn("trace ", job.tracePath, " was captured at ",
                 meta.screenWidth, "x", meta.screenHeight,
                 "; replaying at that resolution (requested ",
                 job.config.screenWidth, "x", job.config.screenHeight,
                 ")");
        if (firstVisit && meta.seed != job.sceneSeed)
            warn("trace ", job.tracePath, " was captured with seed ",
                 meta.seed, "; replaying that content (requested seed ",
                 job.sceneSeed, ")");
        job.config.scaleResolution(meta.screenWidth, meta.screenHeight);
        if (meta.tileWidth != 0) {
            job.config.tileWidth = meta.tileWidth;
            job.config.tileHeight = meta.tileHeight;
        }
        if (job.options.frames > reader.frameCount())
            fatal("trace: replay wants ", job.options.frames,
                  " frames but ", job.tracePath, " holds only ",
                  reader.frameCount());
        job.sceneSeed = meta.seed;
    }
}

void
applyTraceFlags(std::vector<SimJob> &jobs, const std::string &recordDir,
                const std::string &replayDir)
{
    if (!recordDir.empty())
        recordSweepTraces(jobs, recordDir);
    if (!replayDir.empty())
        retargetJobsToTraces(jobs, replayDir);
}

std::vector<SimJob>
buildReplayShards(const std::string &tracePath, const GpuConfig &config,
                  const SimOptions &options, unsigned shards)
{
    if (shards == 0)
        fatal("buildReplayShards: shard count must be positive");
    TraceReader reader(tracePath);
    const TraceMeta &meta = reader.meta();
    if (options.frames > reader.frameCount())
        fatal("trace: replay wants ", options.frames, " frames but ",
              tracePath, " holds only ", reader.frameCount());
    const u64 frames =
        options.frames == 0 ? reader.frameCount() : options.frames;
    if (frames == 0)
        fatal("trace: nothing to replay in ", tracePath);
    const u64 shardCount = std::min<u64>(shards, frames);

    std::vector<SimJob> jobs;
    jobs.reserve(shardCount);
    u64 start = 0;
    for (u64 s = 0; s < shardCount; s++) {
        // Distribute remainder frames over the leading shards.
        const u64 len = frames / shardCount
            + (s < frames % shardCount ? 1 : 0);
        SimJob job;
        job.workload = meta.name;
        job.config = config;
        job.config.scaleResolution(meta.screenWidth, meta.screenHeight);
        if (meta.tileWidth != 0) {
            job.config.tileWidth = meta.tileWidth;
            job.config.tileHeight = meta.tileHeight;
        }
        job.options = options;
        job.options.frames = len;
        job.sceneSeed = meta.seed;
        job.tracePath = tracePath;
        job.traceFirstFrame = start;
        jobs.push_back(std::move(job));
        start += len;
    }
    return jobs;
}

SimResult
mergeResults(const std::vector<SimResult> &results)
{
    SimResult merged;
    if (results.empty())
        return merged;

    merged.workload = results.front().workload;
    merged.technique = results.front().technique;

    bool mixedTechniques = false;
    double equalPctWeighted = 0;
    for (const SimResult &r : results) {
        if (r.workload != merged.workload)
            merged.workload = "merged";
        if (r.technique != merged.technique)
            mixedTechniques = true;

        merged.frames += r.frames;
        merged.geometryCycles += r.geometryCycles;
        merged.rasterCycles += r.rasterCycles;

        merged.energy.gpuDynamic += r.energy.gpuDynamic;
        merged.energy.gpuStatic += r.energy.gpuStatic;
        merged.energy.memDynamic += r.energy.memDynamic;
        merged.energy.memStatic += r.energy.memStatic;

        merged.traffic.merge(r.traffic);

        merged.tileClasses.comparedTiles += r.tileClasses.comparedTiles;
        merged.tileClasses.equalColorsEqualInputs +=
            r.tileClasses.equalColorsEqualInputs;
        merged.tileClasses.equalColorsDiffInputs +=
            r.tileClasses.equalColorsDiffInputs;
        merged.tileClasses.diffColorsDiffInputs +=
            r.tileClasses.diffColorsDiffInputs;
        merged.tileClasses.diffColorsEqualInputs +=
            r.tileClasses.diffColorsEqualInputs;

        merged.tilesTotal += r.tilesTotal;
        merged.tilesRendered += r.tilesRendered;
        merged.tilesSkippedByRe += r.tilesSkippedByRe;
        merged.tileFlushesEliminated += r.tileFlushesEliminated;
        merged.fragmentsShaded += r.fragmentsShaded;
        merged.fragmentsMemoReused += r.fragmentsMemoReused;
        merged.signatureStallCycles += r.signatureStallCycles;
        merged.reFalsePositives += r.reFalsePositives;

        equalPctWeighted +=
            r.equalTilesConsecutivePct * static_cast<double>(r.frames);

        r.stats.forEachCounter([&merged](std::string_view name, u64 val) {
            merged.stats.inc(name, val);
        });
        r.stats.forEachScalar(
            [&merged](std::string_view name, double val) {
                merged.stats.add(name, val);
            });
    }
    if (merged.frames > 0)
        merged.equalTilesConsecutivePct =
            equalPctWeighted / static_cast<double>(merged.frames);
    // Technique is an enum with no "mixed" value; flag the span in
    // the label so no report row attributes the aggregate to the
    // first technique alone.
    if (mixedTechniques)
        merged.workload += " (mixed techniques)";
    return merged;
}

} // namespace regpu
