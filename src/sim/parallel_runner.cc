#include "sim/parallel_runner.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>

#include "common/logging.hh"
#include "workloads/workloads.hh"

namespace regpu
{

u64
deriveJobSeed(u64 baseSeed, const std::string &alias, u64 salt)
{
    // FNV-1a over the alias, then a splitmix64 finalizer so that
    // single-bit differences in (base, alias, salt) flip about half
    // the output bits.
    u64 h = 14695981039346656037ull;
    for (char c : alias) {
        h ^= static_cast<u8>(c);
        h *= 1099511628211ull;
    }
    u64 z = baseSeed + 0x9e3779b97f4a7c15ull * (salt + 1) + h;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

u64
parseCountArg(const char *flag, const char *text)
{
    // strtoull accepts leading whitespace and a sign, silently
    // wrapping negatives modulo 2^64 — demand a plain digit first.
    if (text[0] < '0' || text[0] > '9')
        fatal(flag, " expects a number, got: ", text);
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE)
        fatal(flag, " expects a number, got: ", text);
    return v;
}

unsigned
parseJobsArg(const char *text)
{
    const u64 v = parseCountArg("--jobs", text);
    if (v > std::numeric_limits<unsigned>::max())
        fatal("--jobs expects a number, got: ", text);
    return static_cast<unsigned>(v);
}

std::vector<SimJob>
buildSweepJobs(const std::vector<std::string> &aliases,
               const std::vector<Technique> &techniques,
               u32 screenWidth, u32 screenHeight, u64 frames,
               HashKind hashKind, u64 sceneSeed)
{
    std::vector<SimJob> jobs;
    jobs.reserve(aliases.size() * techniques.size());
    for (const std::string &alias : aliases) {
        for (Technique tech : techniques) {
            SimJob job;
            job.workload = alias;
            job.config.scaleResolution(screenWidth, screenHeight);
            job.config.technique = tech;
            job.options.frames = frames;
            job.options.hashKind = hashKind;
            job.sceneSeed = sceneSeed;
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

ParallelRunner::ParallelRunner(unsigned jobs)
    : workers(jobs)
{
    if (workers == 0) {
        workers = std::thread::hardware_concurrency();
        if (workers == 0)
            workers = 1;
    }
}

std::vector<SimResult>
ParallelRunner::run(const std::vector<SimJob> &jobs) const
{
    std::vector<SimResult> results(jobs.size());
    if (jobs.empty())
        return results;

    // Reject unknown aliases on the calling thread: fatal() calls
    // std::exit(), which must never run on a worker while siblings
    // are mid-simulation.
    for (const SimJob &job : jobs) {
        const auto &suite = benchmarkSuite();
        if (std::none_of(suite.begin(), suite.end(),
                         [&](const BenchmarkInfo &b)
                         { return b.alias == job.workload; }))
            fatal("unknown benchmark alias: ", job.workload);
    }

    auto runOne = [&](std::size_t i) {
        const SimJob &job = jobs[i];
        auto scene = makeBenchmark(job.workload, job.config,
                                   job.sceneSeed);
        Simulator sim(*scene, job.config, job.options);
        results[i] = sim.run();
    };

    const unsigned pool =
        static_cast<unsigned>(std::min<std::size_t>(workers, jobs.size()));
    if (pool <= 1) {
        for (std::size_t i = 0; i < jobs.size(); i++)
            runOne(i);
        return results;
    }

    std::atomic<std::size_t> nextJob{0};
    std::exception_ptr firstError;
    std::mutex errorMutex;

    auto workerLoop = [&]() {
        while (true) {
            const std::size_t i =
                nextJob.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size())
                return;
            try {
                runOne(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(errorMutex);
                if (!firstError)
                    firstError = std::current_exception();
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(pool);
    for (unsigned t = 0; t < pool; t++)
        threads.emplace_back(workerLoop);
    for (auto &t : threads)
        t.join();

    if (firstError)
        std::rethrow_exception(firstError);
    return results;
}

SimResult
mergeResults(const std::vector<SimResult> &results)
{
    SimResult merged;
    if (results.empty())
        return merged;

    merged.workload = results.front().workload;
    merged.technique = results.front().technique;

    bool mixedTechniques = false;
    double equalPctWeighted = 0;
    for (const SimResult &r : results) {
        if (r.workload != merged.workload)
            merged.workload = "merged";
        if (r.technique != merged.technique)
            mixedTechniques = true;

        merged.frames += r.frames;
        merged.geometryCycles += r.geometryCycles;
        merged.rasterCycles += r.rasterCycles;

        merged.energy.gpuDynamic += r.energy.gpuDynamic;
        merged.energy.gpuStatic += r.energy.gpuStatic;
        merged.energy.memDynamic += r.energy.memDynamic;
        merged.energy.memStatic += r.energy.memStatic;

        for (int c = 0; c < 4; c++)
            merged.traffic.bytes[c] += r.traffic.bytes[c];

        merged.tileClasses.comparedTiles += r.tileClasses.comparedTiles;
        merged.tileClasses.equalColorsEqualInputs +=
            r.tileClasses.equalColorsEqualInputs;
        merged.tileClasses.equalColorsDiffInputs +=
            r.tileClasses.equalColorsDiffInputs;
        merged.tileClasses.diffColorsDiffInputs +=
            r.tileClasses.diffColorsDiffInputs;
        merged.tileClasses.diffColorsEqualInputs +=
            r.tileClasses.diffColorsEqualInputs;

        merged.tilesTotal += r.tilesTotal;
        merged.tilesRendered += r.tilesRendered;
        merged.tilesSkippedByRe += r.tilesSkippedByRe;
        merged.tileFlushesEliminated += r.tileFlushesEliminated;
        merged.fragmentsShaded += r.fragmentsShaded;
        merged.fragmentsMemoReused += r.fragmentsMemoReused;
        merged.signatureStallCycles += r.signatureStallCycles;
        merged.reFalsePositives += r.reFalsePositives;

        equalPctWeighted +=
            r.equalTilesConsecutivePct * static_cast<double>(r.frames);

        for (const auto &[name, val] : r.stats.allCounters())
            merged.stats.inc(name, val);
        for (const auto &[name, val] : r.stats.allScalars())
            merged.stats.add(name, val);
    }
    if (merged.frames > 0)
        merged.equalTilesConsecutivePct =
            equalPctWeighted / static_cast<double>(merged.frames);
    // Technique is an enum with no "mixed" value; flag the span in
    // the label so no report row attributes the aggregate to the
    // first technique alone.
    if (mixedTechniques)
        merged.workload += " (mixed techniques)";
    return merged;
}

} // namespace regpu
