/**
 * @file
 * Result reporting: detailed per-run summaries, cross-technique
 * comparison tables, and CSV export for downstream plotting.
 */

#ifndef REGPU_SIM_REPORT_HH
#define REGPU_SIM_REPORT_HH

#include <ios>
#include <ostream>
#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace regpu
{

/**
 * RAII guard restoring a stream's formatting state (flags, precision,
 * fill) on scope exit, so printers can set std::fixed /
 * std::setprecision freely without leaking that state into the
 * caller's later writes (the PR 6 bug class: a leaked
 * std::setprecision(1) truncated every CSV energy column).
 * scripts/lint.py enforces that every std::fixed/std::setprecision
 * user pairs with one of these.
 */
class StreamFormatGuard
{
  public:
    explicit StreamFormatGuard(std::ostream &_os)
        : os(_os), flags(_os.flags()), precision(_os.precision()),
          fill(_os.fill())
    {}
    ~StreamFormatGuard()
    {
        os.flags(flags);
        os.precision(precision);
        os.fill(fill);
    }
    StreamFormatGuard(const StreamFormatGuard &) = delete;
    StreamFormatGuard &operator=(const StreamFormatGuard &) = delete;

  private:
    std::ostream &os;
    std::ios_base::fmtflags flags;
    std::streamsize precision;
    char fill;
};

/**
 * Append @p v to @p os as the shortest decimal string that parses
 * back to exactly the same double (std::to_chars round-trip
 * semantics). Locale-independent and immune to whatever
 * std::fixed/precision state the stream carries — the contract every
 * persisted artifact (CSV, JSON, BENCH_*.json) relies on. Non-finite
 * values are clamped to 0 ("inf"/"nan" are not valid JSON or CSV
 * numbers).
 */
std::ostream &writeRoundTripDouble(std::ostream &os, double v);

/**
 * Minimal JSON string escaping (quotes, backslashes, control chars).
 * Shared by every JSON-emitting frontend (writeJsonRun, the bench
 * machine-readable outputs).
 */
std::string jsonEscape(const std::string &s);

/**
 * Print a human-readable summary of one run: cycles (split), energy
 * (split), DRAM traffic (per class), tile and fragment accounting,
 * overheads.
 */
void printRunSummary(std::ostream &os, const SimResult &result,
                     const GpuConfig &config);

/**
 * Print a side-by-side comparison of several runs of the *same*
 * workload under different techniques, normalized to the first run.
 */
void printComparison(std::ostream &os,
                     const std::vector<SimResult> &results);

/**
 * Append one run as a CSV row.
 * @param header when true, writes the column-name row first
 */
void writeCsvRow(std::ostream &os, const SimResult &result,
                 bool header = false);

/** Machine-readable column names of the CSV schema (stable order). */
const std::vector<std::string> &csvColumns();

/**
 * Append one run as a self-describing JSON object on a single line
 * (JSON-Lines: one object per run, no enclosing array). Carries the
 * run's identity (workload, technique, seed, frames, resolution) next
 * to every metric of the CSV schema, so downstream plotting keys on
 * names instead of parsing CSV headers.
 */
void writeJsonRun(std::ostream &os, const SimResult &result,
                  const GpuConfig &config, u64 sceneSeed);

} // namespace regpu

#endif // REGPU_SIM_REPORT_HH
