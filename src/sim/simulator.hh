/**
 * @file
 * Top-level simulator: runs a Scene for N frames under a chosen
 * technique (Baseline / RE / TE / Memo), producing the cycle, energy,
 * traffic and tile-classification statistics every experiment in the
 * paper's evaluation consumes.
 */

#ifndef REGPU_SIM_SIMULATOR_HH
#define REGPU_SIM_SIMULATOR_HH

#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "gpu/pipeline.hh"
#include "memo/fragment_memo.hh"
#include "obs/run_artifacts.hh"
#include "power/energy_model.hh"
#include "re/rendering_elimination.hh"
#include "scene/frame_source.hh"
#include "scene/scene.hh"
#include "te/transaction_elimination.hh"
#include "timing/cycle_model.hh"
#include "timing/memsystem.hh"

namespace regpu
{

/** Tile classification counts accumulated over a run (Fig. 15a). */
struct TileClassCounts
{
    u64 comparedTiles = 0;       //!< tiles with a valid previous frame
    u64 equalColorsEqualInputs = 0;
    u64 equalColorsDiffInputs = 0;  //!< false negatives
    u64 diffColorsDiffInputs = 0;
    u64 diffColorsEqualInputs = 0;  //!< false positives (should be 0)
};

/** Aggregated results of one simulation run. */
struct SimResult
{
    std::string workload;
    Technique technique = Technique::Baseline;
    u64 frames = 0;

    // Cycles (Fig. 14a / 17a).
    Cycles geometryCycles = 0;
    Cycles rasterCycles = 0;
    Cycles totalCycles() const { return geometryCycles + rasterCycles; }

    // Energy (Fig. 14b / 17b).
    EnergyBreakdown energy;

    // Memory traffic (Fig. 15b), raster-pipeline classes.
    DramTraffic traffic;

    // Tile accounting (Fig. 2 / 15a).
    TileClassCounts tileClasses;
    u64 tilesTotal = 0;
    u64 tilesRendered = 0;
    u64 tilesSkippedByRe = 0;
    u64 tileFlushesEliminated = 0;

    // Fragment accounting (Fig. 16).
    u64 fragmentsShaded = 0;
    u64 fragmentsMemoReused = 0;

    // Per-frame color-equality vs the immediately preceding frame
    // (Fig. 2 definition: consecutive frames, regardless of the swap
    // chain), averaged over the run.
    double equalTilesConsecutivePct = 0;

    // Overheads.
    Cycles signatureStallCycles = 0;
    u64 reFalsePositives = 0;

    // Raw stat registry snapshot for detailed inspection.
    StatRegistry stats;
};

/** Options controlling a run. */
struct SimOptions
{
    u64 frames = 30;
    u64 warmupFrames = 2;  //!< excluded from per-frame averages? kept
                           //!< simple: all frames accounted, warmup
                           //!< only seeds the signature history
    bool groundTruth = true;
    HashKind hashKind = HashKind::Crc32;

    /** Intra-frame tile worker count (--tile-jobs). Execution knob
     *  only: results are bit-identical for every value (the tile
     *  pool's phase-1/merge split, docs/ARCHITECTURE.md), so unlike
     *  everything in GpuConfig it does not identify an experiment. */
    unsigned tileJobs = 1;

    /** When non-empty, write per-run observability artifacts (frame
     *  time-series JSONL + tile heatmaps, obs/run_artifacts.hh) into
     *  this directory. Artifacts only *read* simulator state: results
     *  are bit-identical with or without them. */
    std::string obsDir;
    /** Artifact filename prefix; defaults to
     *  "<workload>.<technique>". Frontends running several cells into
     *  one directory must make it unique per cell. */
    std::string obsTag;
};

/**
 * Runs one (frame source, technique) pair. The source is either a
 * live Scene or a TraceScene replaying a recorded capture; the two
 * produce bit-identical results for identical command streams.
 */
class Simulator
{
  public:
    Simulator(const FrameSource &scene, const GpuConfig &config,
              const SimOptions &options = {});

    /** Execute the configured number of frames. */
    SimResult run();

    /** Access the pipeline (tests drive frames manually). */
    GraphicsPipeline &pipeline() { return *pipe; }

    /** Render a single frame and return its functional result. */
    FrameResult stepFrame(u64 frameIndex);

  private:
    const FrameSource &scene;
    GpuConfig config;  //!< local copy (technique-specific tweaks)
    SimOptions options;

    StatRegistry statsReg;
    std::unique_ptr<MemSystem> mem;
    std::unique_ptr<GraphicsPipeline> pipe;
    std::unique_ptr<RenderingElimination> re;
    std::unique_ptr<TransactionElimination> te;
    std::unique_ptr<FragmentMemoization> memo;
    CycleModel cycles;
    EnergyModel energy;
    std::unique_ptr<RunObsWriter> obsWriter;  //!< only with obsDir set

    // Previous-frame back-buffer copy for the Fig. 2 metric.
    std::vector<Color> prevFrameColors;
    u64 equalConsecutiveTiles = 0;
    u64 comparedConsecutiveTiles = 0;
};

} // namespace regpu

#endif // REGPU_SIM_SIMULATOR_HH
