#include "sim/bench_json.hh"

#include <algorithm>
#include <fstream>

#include "common/logging.hh"
#include "sim/report.hh"

namespace regpu
{

void
BenchJsonWriter::add(const std::string &name, const std::string &unit,
                     bool higherIsBetter, double value)
{
    records.push_back({name, unit, higherIsBetter, value});
}

void
BenchJsonWriter::writeTo(std::ostream &os) const
{
    std::vector<const Record *> sorted;
    sorted.reserve(records.size());
    for (const Record &r : records)
        sorted.push_back(&r);
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Record *a, const Record *b) {
                         return a->name < b->name;
                     });

    os << "{\"benchmarks\":[";
    for (std::size_t i = 0; i < sorted.size(); i++) {
        const Record &r = *sorted[i];
        if (i)
            os << ",";
        os << "\n  {\"name\":\"" << jsonEscape(r.name) << "\","
           << "\"unit\":\"" << jsonEscape(r.unit) << "\","
           << "\"better\":\"" << (r.higherIsBetter ? "higher" : "lower")
           << "\",\"value\":";
        writeRoundTripDouble(os, r.value);
        os << "}";
    }
    os << "\n]}\n";
}

void
BenchJsonWriter::writeFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open bench json file: ", path);
    writeTo(os);
    if (!os)
        fatal("write failed for bench json file: ", path);
}

} // namespace regpu
