/**
 * @file
 * Multithreaded experiment driver.
 *
 * A simulation sweep is embarrassingly parallel: every
 * (workload x technique x config) cell is an independent Simulator
 * run with its own Scene, MemSystem and StatRegistry. The runner
 * schedules those cells on a fixed worker pool and writes each result
 * into the slot matching its job index, so the output — and any
 * aggregation folded over it — is bit-identical for every worker
 * count, including 1.
 *
 * Determinism contract:
 *  - scene content is generated from SimJob::sceneSeed only (use
 *    deriveJobSeed() to give sweep cells distinct but reproducible
 *    content);
 *  - the Simulator itself is single-threaded and owns all its state;
 *  - results are stored by job index, never by completion order.
 */

#ifndef REGPU_SIM_PARALLEL_RUNNER_HH
#define REGPU_SIM_PARALLEL_RUNNER_HH

#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace regpu
{

/** One independent simulation cell of a sweep. */
struct SimJob
{
    std::string workload;  //!< benchmark alias for makeBenchmark()
    GpuConfig config;      //!< resolution and technique fully set
    SimOptions options;
    u64 sceneSeed = 1;     //!< content seed; keep fixed across
                           //!< techniques so comparisons are fair

    /** When set, replay this trace file (trace/trace_scene.hh)
     *  instead of generating the scene from `workload`. */
    std::string tracePath;
    /** First trace frame of this job's replay window (frame-range
     *  sharding); options.frames is the window length. */
    u64 traceFirstFrame = 0;
};

/**
 * Mix @p baseSeed with a workload alias (and an optional salt such as
 * a repetition index) into a per-job scene seed. splitmix64-style
 * finalization keeps nearby inputs decorrelated while staying
 * bit-reproducible across platforms.
 */
u64 deriveJobSeed(u64 baseSeed, const std::string &alias, u64 salt = 0);

/**
 * Strict decimal parse of a numeric CLI flag value. A typo must not
 * silently become 0 or a partial prefix — anything that is not a
 * plain in-range decimal calls fatal() naming @p flag.
 */
u64 parseCountArg(const char *flag, const char *text);

/** parseCountArg specialised for --jobs (must also fit unsigned). */
unsigned parseJobsArg(const char *text);

/** parseCountArg specialised for --tile-jobs: a positive intra-frame
 *  worker count. 0 is rejected — unlike --jobs there is no "all
 *  cores" convention here, and a silently-accepted 0 would read as
 *  "disable the pool" to some users and "auto" to others. */
unsigned parseTileJobsArg(const char *text);

/** Parse a technique name ("base"/"baseline", "re", "te", "memo");
 *  fatal() on anything else. Shared by the CLI frontends. */
Technique parseTechniqueArg(const std::string &name);

/** Parse a hash-kind name ("crc32", "xor", "add", "fnv"); fatal() on
 *  anything else. Shared by the CLI frontends. */
HashKind parseHashArg(const std::string &name);

/**
 * Flatten a (workload x technique) sweep into a job vector, outer
 * loop over aliases, inner over techniques. Every cell shares the
 * same scene seed so techniques see identical content.
 */
std::vector<SimJob>
buildSweepJobs(const std::vector<std::string> &aliases,
               const std::vector<Technique> &techniques,
               u32 screenWidth, u32 screenHeight, u64 frames,
               HashKind hashKind = HashKind::Crc32, u64 sceneSeed = 1);

/**
 * Record one trace per distinct workload of @p jobs into @p dir (file
 * name: `<alias>.rgputrace`), each at that job's resolution, frame
 * count and scene seed. Replaying these traces reproduces the jobs'
 * SimResults bit-for-bit. Techniques share one trace: the command
 * stream does not depend on the technique.
 */
void recordSweepTraces(const std::vector<SimJob> &jobs,
                       const std::string &dir);

/**
 * Point every job of @p jobs at `dir/<alias>.rgputrace` instead of
 * live generation. Each job adopts the trace's recorded resolution
 * and tile grid (warn() when that differs from the job's request —
 * bit-identical replay requires simulating what was captured);
 * fatal() when a trace is missing or holds fewer frames than the job
 * needs.
 */
void retargetJobsToTraces(std::vector<SimJob> &jobs,
                          const std::string &dir);

/**
 * Apply the ExperimentScale-style trace flags to a job vector:
 * recordSweepTraces into @p recordDir when set, then
 * retargetJobsToTraces from @p replayDir when set (record-then-replay
 * of the same directory round-trips). Empty strings are no-ops. The
 * single entry point every sweep frontend (runSuite, suite_cli, the
 * custom-loop benches) shares.
 */
void applyTraceFlags(std::vector<SimJob> &jobs,
                     const std::string &recordDir,
                     const std::string &replayDir);

/**
 * Shard one trace replay into @p shards jobs over contiguous,
 * disjoint frame ranges (the trace's index table makes each shard's
 * first-frame seek O(1)). All shards share @p config's technique and
 * @p options; resolution and tile grid are adopted from the trace.
 * Useful for throughput-oriented scans of long captures; note the
 * per-shard signature history restarts at each range boundary, so a
 * merged shard run matches a contiguous run only on frame counts,
 * not on every redundancy metric.
 */
std::vector<SimJob>
buildReplayShards(const std::string &tracePath, const GpuConfig &config,
                  const SimOptions &options, unsigned shards);

/** One live-progress sample: cell @p jobIndex just finished. */
struct ProgressUpdate
{
    std::size_t done = 0;      //!< cells finished so far (monotone)
    std::size_t total = 0;     //!< cells in the sweep
    std::size_t jobIndex = 0;  //!< index of the cell that finished
    double cellSeconds = 0;    //!< wall time of that cell
    double ewmaCellSeconds = 0;//!< smoothed per-cell time
    double etaSeconds = 0;     //!< remaining / effective parallelism
};

/** Invoked after each finished cell. ParallelRunner serializes the
 *  calls and delivers monotonically increasing `done` counts
 *  (order-stable), from worker threads — keep the body short. */
using ProgressFn = std::function<void(const ProgressUpdate &)>;

/**
 * Folds per-cell wall times into EWMA + ETA progress samples. Not
 * thread-safe by itself: callers serialise cellDone() (ParallelRunner
 * guards it with a mutex; single-threaded streaming loops need
 * nothing).
 */
class ProgressTracker
{
  public:
    /** @param workers effective parallelism for the ETA estimate. */
    explicit ProgressTracker(std::size_t total, unsigned workers = 1)
        : total_(total), workers_(workers == 0 ? 1 : workers)
    {}

    /** Fold one finished cell and return the sample to render. */
    ProgressUpdate cellDone(std::size_t jobIndex, double seconds);

  private:
    std::size_t total_;
    unsigned workers_;
    std::size_t done_ = 0;
    double ewma_ = 0;
    static constexpr double alpha = 0.3;  //!< EWMA smoothing factor
};

/**
 * Fixed-size worker pool over a job vector.
 */
class ParallelRunner
{
  public:
    /** @param jobs worker threads; 0 means hardware concurrency. */
    explicit ParallelRunner(unsigned jobs = 1);

    /** Worker threads the pool will actually spawn. */
    unsigned workerCount() const { return workers; }

    /**
     * Run every job and return results in job order. Unknown workload
     * aliases are rejected with fatal() on the calling thread before
     * any worker starts; any exception thrown by a running job is
     * captured and rethrown on the caller thread after the pool
     * drains.
     *
     * @p progress, when set, is invoked once per finished cell
     * (serialized, monotone done counts); it observes execution order
     * only — results stay bit-identical for any worker count.
     */
    std::vector<SimResult> run(const std::vector<SimJob> &jobs,
                               const ProgressFn &progress) const;
    std::vector<SimResult> run(const std::vector<SimJob> &jobs) const
    { return run(jobs, ProgressFn{}); }

  private:
    unsigned workers;
};

/**
 * Fold a result vector into one aggregate SimResult (left fold in
 * vector order, so the merge is independent of how the results were
 * produced). Counters, cycles, energy, traffic and the raw stat
 * registries are summed; equalTilesConsecutivePct is re-averaged
 * weighted by frame count. The workload field becomes the common
 * alias, or "merged" when the inputs span several workloads; when the
 * inputs span several techniques the label gains a " (mixed
 * techniques)" suffix (the technique field keeps the first input's
 * value — the enum has no mixed state).
 */
SimResult mergeResults(const std::vector<SimResult> &results);

} // namespace regpu

#endif // REGPU_SIM_PARALLEL_RUNNER_HH
