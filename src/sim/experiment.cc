#include "sim/experiment.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"
#include "sim/parallel_runner.hh"

namespace regpu
{

namespace
{

constexpr const char *scaleUsage =
    R"(valid flags: --fast | --full | --frames N | --jobs N)"
    R"( | --tile-jobs N | --record-dir DIR | --replay-dir DIR)";

} // namespace

ExperimentScale
ExperimentScale::fromArgs(int argc, char **argv)
{
    ExperimentScale s;
    auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            fatal(argv[i], " expects a value; ", scaleUsage);
        return argv[++i];
    };
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--fast") == 0) {
            s.screenWidth = 400;
            s.screenHeight = 256;
            s.frames = 12;
        } else if (std::strcmp(argv[i], "--full") == 0) {
            s.screenWidth = 1196;
            s.screenHeight = 768;
            s.frames = 50;
        } else if (std::strcmp(argv[i], "--frames") == 0) {
            s.frames = parseCountArg("--frames", value(i));
        } else if (std::strcmp(argv[i], "--jobs") == 0) {
            s.jobs = parseJobsArg(value(i));
        } else if (std::strcmp(argv[i], "--tile-jobs") == 0) {
            s.tileJobs = parseTileJobsArg(value(i));
        } else if (std::strcmp(argv[i], "--record-dir") == 0) {
            s.recordDir = value(i);
        } else if (std::strcmp(argv[i], "--replay-dir") == 0) {
            s.replayDir = value(i);
        } else {
            fatal("unknown flag: ", argv[i], "; ", scaleUsage);
        }
    }
    return s;
}

std::vector<std::string>
allAliases()
{
    std::vector<std::string> v;
    for (const auto &b : benchmarkSuite())
        v.push_back(b.alias);
    return v;
}

std::vector<WorkloadResults>
runSuite(const std::vector<std::string> &aliases,
         const std::vector<Technique> &techniques,
         const ExperimentScale &scale, HashKind hashKind)
{
    std::vector<SimJob> jobs =
        buildSweepJobs(aliases, techniques, scale.screenWidth,
                       scale.screenHeight, scale.frames, hashKind);
    applyTraceFlags(jobs, scale.recordDir, scale.replayDir);
    for (SimJob &job : jobs)
        job.options.tileJobs = scale.tileJobs;

    ParallelRunner runner(scale.jobs);
    std::vector<SimResult> results = runner.run(jobs);

    std::vector<WorkloadResults> out;
    std::size_t idx = 0;
    for (const std::string &alias : aliases) {
        WorkloadResults wr;
        wr.alias = alias;
        for (Technique tech : techniques)
            wr.byTechnique.emplace(tech, std::move(results[idx++]));
        out.push_back(std::move(wr));
    }
    return out;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double logSum = 0;
    for (double v : values) {
        REGPU_ASSERT(v > 0, "geomean needs positive values");
        logSum += std::log(v);
    }
    return std::exp(logSum / values.size());
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0;
    for (double v : values)
        sum += v;
    return sum / values.size();
}

void
printTableHeader(const std::string &title,
                 const std::vector<std::string> &columns)
{
    std::printf("\n== %s ==\n", title.c_str());
    std::printf("%-10s", "workload");
    for (const auto &c : columns)
        std::printf(" %12s", c.c_str());
    std::printf("\n");
}

void
printTableRow(const std::string &label, const std::vector<double> &values,
              int precision)
{
    std::printf("%-10s", label.c_str());
    for (double v : values)
        std::printf(" %12.*f", precision, v);
    std::printf("\n");
}

} // namespace regpu
