#include "sim/simulator.hh"

#include "common/logging.hh"
#include "obs/obs.hh"

namespace regpu
{

Simulator::Simulator(const FrameSource &scene_, const GpuConfig &config_,
                     const SimOptions &options_)
    : scene(scene_), config(config_), options(options_), cycles(config)
{
    config.validate();
    mem = std::make_unique<MemSystem>(config);
    pipe = std::make_unique<GraphicsPipeline>(config, statsReg, mem.get(),
                                              scene.textures());
    if (options.tileJobs > 1)
        pipe->setTileJobs(options.tileJobs);
    switch (config.technique) {
      case Technique::Baseline:
        break;
      case Technique::RenderingElimination:
        re = std::make_unique<RenderingElimination>(config, statsReg,
                                                    options.hashKind);
        pipe->setHooks(re.get());
        break;
      case Technique::TransactionElimination:
        te = std::make_unique<TransactionElimination>(config, statsReg);
        pipe->setHooks(te.get());
        break;
      case Technique::FragmentMemoization:
        memo = std::make_unique<FragmentMemoization>(config, statsReg);
        pipe->setHooks(memo.get());
        break;
    }

    if (!options.obsDir.empty()) {
        std::string tag = options.obsTag;
        if (tag.empty())
            tag = scene.name() + "."
                + techniqueName(config.technique);
        obsWriter = std::make_unique<RunObsWriter>(options.obsDir, tag,
                                                   config);
    }
}

FrameResult
Simulator::stepFrame(u64 frameIndex)
{
    FrameCommands cmds = scene.emitFrame(frameIndex);
    return pipe->renderFrame(cmds, options.groundTruth);
}

SimResult
Simulator::run()
{
    SimResult result;
    result.workload = scene.name();
    result.technique = config.technique;
    result.frames = options.frames;

    // Memoization hooks into the renderer itself.
    if (memo) {
        // GraphicsPipeline consults hooks->memoClient() indirectly via
        // the TileRenderer; wire it here through the pipeline.
    }

    const u32 numTiles = config.numTiles();

    ObsScope runSpan("sim", "run", "frames",
                     static_cast<i64>(options.frames), "tech",
                     static_cast<i64>(config.technique));

    for (u64 f = 0; f < options.frames; f++) {
        ObsScope frameSpan("sim", "frame", "frame",
                           static_cast<i64>(f), "tech",
                           static_cast<i64>(config.technique));
        if (obsWriter)
            obsWriter->beginFrame(f);
        // Per-frame aggregates for the obs counter tracks (cheap to
        // fold alongside the classification the loop already does).
        u64 frameTilesSkipped = 0;
        u64 frameFlushesElided = 0;
        u64 frameFragmentsShaded = 0;

        // Snapshot the current back buffer (it will be overwritten
        // this frame) so consecutive-frame equality can be measured
        // against frame f-1's displayed output.
        const std::vector<Color> *prevBack = nullptr;
        std::vector<Color> frontCopy;
        if (f > 0)
            frontCopy = prevFrameColors;

        FrameResult fr = stepFrame(f);

        // ---- Tile classification (vs the swap-chain comparison frame).
        const bool haveComparison = config.doubleBuffered ? f >= 2 : f >= 1;
        for (TileId t = 0; t < numTiles; t++) {
            const TileOutcome &out = fr.tiles[t];
            result.tilesTotal++;
            if (out.rendered)
                result.tilesRendered++;
            else {
                result.tilesSkippedByRe++;
                frameTilesSkipped++;
            }
            if (out.rendered && !out.flushed) {
                result.tileFlushesEliminated++;
                frameFlushesElided++;
            }

            if (haveComparison) {
                result.tileClasses.comparedTiles++;
                bool equalInputs = !out.rendered; // RE's decision
                if (re == nullptr) {
                    // Baseline/TE/Memo runs have no input signatures;
                    // classification of inputs is only meaningful
                    // under RE.
                    equalInputs = false;
                }
                if (out.equalColors && equalInputs)
                    result.tileClasses.equalColorsEqualInputs++;
                else if (out.equalColors && !equalInputs)
                    result.tileClasses.equalColorsDiffInputs++;
                else if (!out.equalColors && !equalInputs)
                    result.tileClasses.diffColorsDiffInputs++;
                else
                    result.tileClasses.diffColorsEqualInputs++;
            }

            result.fragmentsShaded += out.stats.fragmentsShaded;
            result.fragmentsMemoReused += out.stats.fragmentsMemoReused;
            frameFragmentsShaded += out.stats.fragmentsShaded;
        }

        // ---- Fig. 2 metric: equality vs the immediately previous
        // frame's rendered output (the buffer just swapped to front).
        {
            const auto &surfNow = pipe->frameBuffer().backSurface();
            // After swap, "back" is the older surface; the frame just
            // rendered is the front. Compare front vs saved previous.
            // Simpler: reconstruct the just-rendered surface by
            // reading the front buffer through frontPixel.
            const GpuConfig &cfg = config;
            if (f > 0 && !frontCopy.empty()) {
                for (TileId t = 0; t < numTiles; t++) {
                    const u32 tx = (t % cfg.tilesX()) * cfg.tileWidth;
                    const u32 ty = (t / cfg.tilesX()) * cfg.tileHeight;
                    bool equal = true;
                    for (u32 dy = 0; dy < cfg.tileHeight && equal; dy++) {
                        u32 y = ty + dy;
                        if (y >= cfg.screenHeight)
                            break;
                        for (u32 dx = 0; dx < cfg.tileWidth; dx++) {
                            u32 x = tx + dx;
                            if (x >= cfg.screenWidth)
                                break;
                            std::size_t idx =
                                static_cast<std::size_t>(y)
                                * cfg.screenWidth + x;
                            if (!(pipe->frameBuffer().frontPixel(x, y)
                                  == frontCopy[idx])) {
                                equal = false;
                                break;
                            }
                        }
                    }
                    comparedConsecutiveTiles++;
                    if (equal)
                        equalConsecutiveTiles++;
                }
            }
            (void)surfNow;
            (void)prevBack;
            // Save the just-rendered frame (now the front buffer).
            prevFrameColors.resize(pipe->frameBuffer().pixelCount());
            for (u32 y = 0; y < cfg.screenHeight; y++)
                for (u32 x = 0; x < cfg.screenWidth; x++)
                    prevFrameColors[static_cast<std::size_t>(y)
                                    * cfg.screenWidth + x] =
                        pipe->frameBuffer().frontPixel(x, y);
        }

        // ---- Timing ------------------------------------------------------
        MemFrameSummary memSum = mem->endFrame();
        // Vertex misses are charged at the uncontended row latency:
        // queueing delay is bandwidth contention, which the per-tile
        // compute-vs-bandwidth max already models.
        Cycles geo = cycles.geometryCycles(
            fr, memSum.vertexMisses, mem->dram().averageRowLatency());
        Cycles stall = re ? re->frameStallCycles() : 0;
        result.signatureStallCycles += stall;
        result.geometryCycles += geo + stall;

        // Raster: per-tile compute/bandwidth max. Approximate the
        // per-tile DRAM share by splitting the frame's raster traffic
        // over rendered tiles proportionally to their activity.
        // Geometry-class *writebacks* (Parameter Buffer evictions)
        // belong here too: they occupy the bus while tiles render,
        // unlike the geometry-stage vertex fills that stay excluded.
        const u64 rasterBytes =
            memSum.dramDelta[TrafficClass::Primitives]
            + memSum.dramDelta[TrafficClass::Texels]
            + memSum.dramDelta[TrafficClass::Colors]
            + memSum.dramDelta.writebacks(TrafficClass::Geometry);
        u64 frameFragWork = 0;
        for (const TileOutcome &out : fr.tiles)
            frameFragWork += out.stats.fragmentsGenerated + 1;
        Cycles raster = 0;
        Cycles texStallBudget = memSum.texelStallCycles;
        for (TileId t = 0; t < numTiles; t++) {
            const TileOutcome &out = fr.tiles[t];
            if (!out.rendered) {
                raster += cycles.skippedTileCycles();
                if (obsWriter)
                    obsWriter->tileOutcome(t, false, false, 0);
                continue;
            }
            u64 share = frameFragWork
                ? rasterBytes * (out.stats.fragmentsGenerated + 1)
                  / frameFragWork
                : 0;
            Cycles texStall = frameFragWork
                ? texStallBudget * (out.stats.fragmentsGenerated + 1)
                  / frameFragWork
                : 0;
            raster += cycles.tileCycles(out.stats, share, texStall);
            // The heatmap shares the cycle model's per-tile DRAM
            // attribution, so the picture matches what timing charges.
            if (obsWriter)
                obsWriter->tileOutcome(t, true, out.flushed, share);
        }
        result.rasterCycles += raster;

        // Per-frame counter tracks (Perfetto graphs these over time).
        obsCounter("re", "tilesSkippedPerFrame",
                   static_cast<double>(frameTilesSkipped));
        obsCounter("te", "flushesElidedPerFrame",
                   static_cast<double>(frameFlushesElided));
        obsCounter("gpu", "fragmentsShadedPerFrame",
                   static_cast<double>(frameFragmentsShaded));
        obsCounter("mem", "dramBytesPerFrame",
                   static_cast<double>(memSum.dramDelta.total()));

        if (obsWriter)
            obsWriter->endFrame(f, statsReg, geo + stall, raster,
                                memSum.dramDelta.total());
    }

    // ---- End-of-run flush --------------------------------------------
    // Dirty Parameter Buffer lines still resident in the L2 are real
    // DRAM-bound bytes; flush them so short runs report the same
    // writeback accounting per byte produced as long ones.
    mem->flushResident();

    // ---- Energy ------------------------------------------------------
    {
        const DramModel &dram = mem->dram();
        energy.chargeDram(dram.accesses(), dram.traffic().total(),
                          dram.rowMisses());
        energy.chargeCaches(mem->vertexCacheRef().accesses(),
                            mem->textureCacheAccesses(),
                            mem->tileCacheRef().accesses(),
                            mem->l2Ref().accesses());
        energy.chargeDatapath(
            statsReg.counter("geometry.verticesFetched"),
            statsReg.counter("geometry.vertexShaderInstrs"),
            statsReg.counter("geometry.primitivesOut"),
            statsReg.counter("binning.tileOverlaps"),
            statsReg.counter("raster.fragmentsGenerated"),
            statsReg.counter("raster.fragmentsGenerated"),
            statsReg.counter("raster.shaderInstructions"),
            statsReg.counter("raster.blendOps"),
            statsReg.counter("raster.blendOps")
                + statsReg.counter("raster.fragmentsGenerated"));
        // Technique hardware energy.
        energy.chargeSignatureHw(
            statsReg.counter("re.lutAccesses")
                + statsReg.counter("te.lutAccesses"),
            statsReg.counter("re.sigBufferAccesses")
                + statsReg.counter("te.sigBufferAccesses"),
            statsReg.counter("re.otPushes"),
            statsReg.counter("re.bitmapAccesses"));
        energy.chargeStatic(result.totalCycles());
        result.energy = energy.breakdown();
        result.traffic = dram.traffic();
    }

    // ---- Traffic conservation ----------------------------------------
    // Every byte the pipeline pushed into the hierarchy must be
    // accounted for exactly once at each level boundary; a non-zero
    // violation count means a routing path double-charges or drops
    // bytes. Exported as a stat so CI can assert on it.
    {
        ConservationReport cons = mem->checkConservation();
        statsReg.inc("mem.conservationViolations", cons.violations);
        // Once per process, not once per run: a sweep with a broken
        // routing path would otherwise repeat this for every cell
        // (the violation count stays exported per run regardless).
        if (!cons.ok())
            warnOnce("memory-hierarchy conservation violated:\n",
                     cons.detail);
        statsReg.inc("mem.dramReadBytes",
                     mem->dram().traffic().totalReads());
        statsReg.inc("mem.dramWriteBytes",
                     mem->dram().traffic().totalWrites());
        statsReg.inc("mem.dramWritebackBytes",
                     mem->dram().traffic().totalWritebacks());
    }

    result.reFalsePositives = statsReg.counter("re.falsePositives");
    result.equalTilesConsecutivePct = comparedConsecutiveTiles
        ? 100.0 * equalConsecutiveTiles / comparedConsecutiveTiles
        : 0.0;
    result.stats = statsReg;
    return result;
}

} // namespace regpu
