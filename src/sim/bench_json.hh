/**
 * @file
 * Machine-readable benchmark output shared by the perf frontends
 * (micro_pipeline, micro_trace, micro_memsystem, suite_cli
 * --timing-json).
 *
 * One run of one binary produces one JSON document:
 *
 *   {"benchmarks":[
 *     {"name":"...","unit":"...","better":"lower|higher","value":N},
 *     ...]}
 *
 * sorted by name, doubles in round-trip form (writeRoundTripDouble),
 * strings escaped (jsonEscape). scripts/bench.py runs each binary
 * --repeat times, collects these documents, and aggregates medians
 * into the canonical BENCH_<area>.json artifacts — so the contract
 * here is deliberately minimal: raw single-run values only, no
 * aggregation, no environment metadata (the harness owns both).
 */

#ifndef REGPU_SIM_BENCH_JSON_HH
#define REGPU_SIM_BENCH_JSON_HH

#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace regpu
{

/**
 * Collects (name, unit, direction, value) records and serializes them
 * as the canonical single-run benchmark document.
 */
class BenchJsonWriter
{
  public:
    /**
     * Record one measurement. @p higherIsBetter declares the
     * regression direction ("frames/s" is higher-is-better, "s" and
     * "bytes" are lower-is-better); the comparison harness refuses to
     * guess from the unit.
     */
    void add(const std::string &name, const std::string &unit,
             bool higherIsBetter, double value);

    /** Serialize all records, sorted by name, to @p os. */
    void writeTo(std::ostream &os) const;

    /** Serialize to @p path; fatal() when the file cannot be opened. */
    void writeFile(const std::string &path) const;

    /** Number of records collected so far. */
    std::size_t size() const { return records.size(); }

  private:
    struct Record
    {
        std::string name;
        std::string unit;
        bool higherIsBetter = false;
        double value = 0;
    };
    std::vector<Record> records;
};

} // namespace regpu

#endif // REGPU_SIM_BENCH_JSON_HH
