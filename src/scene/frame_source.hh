/**
 * @file
 * The Simulator's input abstraction: anything that can feed it frames.
 *
 * A FrameSource models what the driver hands the GPU: the complete
 * texture set (bound before frame 0 and stable for the run) and, per
 * frame, the fully-resolved command stream the application submitted.
 * Two implementations exist:
 *
 *  - Scene (scene/scene.hh): generates frames procedurally from a
 *    scene graph + animators — the live path;
 *  - TraceScene (trace/trace_scene.hh): replays frames recorded into
 *    the binary trace format — the capture/replay path.
 *
 * Determinism contract: emitFrame(N) called twice yields byte-identical
 * drawcalls, so a Simulator run is a pure function of (source, config,
 * options) and record→replay reproduces SimResult bit-for-bit.
 */

#ifndef REGPU_SCENE_FRAME_SOURCE_HH
#define REGPU_SCENE_FRAME_SOURCE_HH

#include <string>
#include <vector>

#include "gpu/texture.hh"
#include "gpu/vertex.hh"

namespace regpu
{

/** Abstract provider of per-frame command streams. */
class FrameSource
{
  public:
    virtual ~FrameSource() = default;

    /** Workload name (becomes SimResult::workload). */
    virtual const std::string &name() const = 0;

    /** The texture set, indexed by DrawCall textureId. */
    virtual const std::vector<Texture> &textures() const = 0;

    /** Emit the command stream for one frame (deterministic). */
    virtual FrameCommands emitFrame(u64 frame) const = 0;
};

} // namespace regpu

#endif // REGPU_SCENE_FRAME_SOURCE_HH
