/**
 * @file
 * Scene graph and per-frame command-trace generation.
 *
 * A Scene is a list of objects (2D sprites or 3D meshes), a camera and
 * an animation script. Each frame, the scene emits the FrameCommands
 * the application would have submitted through OpenGL ES: one drawcall
 * per object (with its constants), in a stable order.
 *
 * Determinism: all randomness is seeded; emitting frame N twice yields
 * byte-identical drawcalls.
 */

#ifndef REGPU_SCENE_SCENE_HH
#define REGPU_SCENE_SCENE_HH

#include <functional>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/rng.hh"
#include "gpu/texture.hh"
#include "gpu/vertex.hh"
#include "scene/frame_source.hh"

namespace regpu
{

/** Geometry payload of an object (object-space triangle list). */
struct Mesh
{
    std::vector<Vertex> vertices;  //!< triangle list
    VertexLayout layout;

    u32 triangleCount() const
    { return static_cast<u32>(vertices.size() / 3); }
};

/**
 * Per-frame pose of an object, produced by its animator.
 */
struct Pose
{
    Vec3 position;
    float rotationZ = 0;  //!< 2D spin
    float rotationY = 0;  //!< 3D yaw
    float scale = 1;
    Vec4 tint{1, 1, 1, 1};
    Vec2 uvScroll;
    bool visible = true;
};

/**
 * A scene object: mesh + material + animator.
 */
struct SceneObject
{
    std::string name;
    Mesh mesh;
    ShaderKind shader = ShaderKind::Textured;
    i32 textureId = -1;
    BlendMode blendMode = BlendMode::Replace;
    bool depthTest = true;
    bool depthWrite = true;
    u32 vertexBufferId = 0;

    /**
     * Animator: frame index -> pose. An object whose animator returns
     * the same pose every frame produces byte-identical drawcalls,
     * which is what makes its covered tiles' inputs redundant.
     */
    std::function<Pose(u64 frame)> animate;
};

/** Camera: produces the view-projection matrix per frame. */
struct Camera
{
    std::function<Mat4(u64 frame)> viewProj;
};

/**
 * The scene: objects + camera + global events.
 */
class Scene : public FrameSource
{
  public:
    Scene(std::string name, const GpuConfig &_config)
        : name_(std::move(name)), config(_config)
    {
        // Default: identity ortho camera covering the screen in
        // pixel units.
        float w = static_cast<float>(config.screenWidth);
        float h = static_cast<float>(config.screenHeight);
        camera.viewProj = [w, h](u64) {
            return Mat4::ortho(0, w, 0, h, -1, 1);
        };
    }

    const std::string &name() const override { return name_; }

    /** Register a texture; @return its id. */
    u32
    addTexture(Texture tex)
    {
        textures_.push_back(std::move(tex));
        return static_cast<u32>(textures_.size() - 1);
    }

    /** Add an object; @return its index. */
    u32
    addObject(SceneObject obj)
    {
        obj.vertexBufferId = static_cast<u32>(objects_.size());
        objects_.push_back(std::move(obj));
        return static_cast<u32>(objects_.size() - 1);
    }

    void setCamera(Camera cam) { camera = std::move(cam); }

    /** Frames on which the app uploads new shaders/textures (disables
     *  RE for that frame, paper §III-E). */
    void
    markGlobalStateChange(u64 frame)
    {
        stateChangeFrames.push_back(frame);
    }

    void setClearColor(Color c) { clearColor = c; }

    /** Emit the command trace for one frame. */
    FrameCommands emitFrame(u64 frame) const override;

    const std::vector<Texture> &textures() const override
    { return textures_; }
    const std::vector<SceneObject> &objects() const { return objects_; }
    const GpuConfig &gpuConfig() const { return config; }

  private:
    std::string name_;
    const GpuConfig &config;
    std::vector<Texture> textures_;
    std::vector<SceneObject> objects_;
    Camera camera;
    std::vector<u64> stateChangeFrames;
    Color clearColor{12, 12, 24, 255};
};

} // namespace regpu

#endif // REGPU_SCENE_SCENE_HH
