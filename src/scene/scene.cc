#include "scene/scene.hh"

#include <algorithm>

namespace regpu
{

FrameCommands
Scene::emitFrame(u64 frame) const
{
    FrameCommands cmds;
    cmds.clearColor = clearColor;
    cmds.globalStateChanged =
        std::find(stateChangeFrames.begin(), stateChangeFrames.end(),
                  frame) != stateChangeFrames.end();

    const Mat4 vp = camera.viewProj(frame);

    for (const SceneObject &obj : objects_) {
        Pose pose = obj.animate ? obj.animate(frame) : Pose{};
        if (!pose.visible)
            continue;

        DrawCall draw;
        draw.layout = obj.mesh.layout;
        draw.vertices = obj.mesh.vertices;
        draw.vertexBufferId = obj.vertexBufferId;
        draw.state.shader = obj.shader;
        draw.state.textureId = obj.textureId;
        draw.state.blendMode = obj.blendMode;
        draw.state.depthTest = obj.depthTest;
        draw.state.depthWrite = obj.depthWrite;

        Mat4 model = Mat4::translate(pose.position.x, pose.position.y,
                                     pose.position.z);
        if (pose.rotationY != 0)
            model = model * Mat4::rotateY(pose.rotationY);
        if (pose.rotationZ != 0)
            model = model * Mat4::rotateZ(pose.rotationZ);
        if (pose.scale != 1)
            model = model * Mat4::scale(pose.scale, pose.scale,
                                        pose.scale);
        draw.state.uniforms.mvp = vp * model;
        draw.state.uniforms.tint = pose.tint;
        draw.state.uniforms.uvOffsetS = pose.uvScroll.x;
        draw.state.uniforms.uvOffsetT = pose.uvScroll.y;

        cmds.draws.push_back(std::move(draw));
    }
    return cmds;
}

} // namespace regpu
