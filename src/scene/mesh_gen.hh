/**
 * @file
 * Procedural mesh generators for the synthetic workloads: screen-space
 * quads (2D sprites), grids, boxes, spheres and terrain strips.
 */

#ifndef REGPU_SCENE_MESH_GEN_HH
#define REGPU_SCENE_MESH_GEN_HH

#include "common/rng.hh"
#include "scene/scene.hh"

namespace regpu
{

/**
 * Axis-aligned quad in the XY plane, two triangles, CCW winding.
 * @param w,h size; centred at the origin
 * @param uvScale texture-coordinate extent
 */
Mesh makeQuad(float w, float h, float uvScale = 1.0f);

/**
 * Quad subdivided into cols x rows cells (centred at the origin,
 * continuous texture coordinates). Large surfaces - backdrops, skies,
 * grounds - are meshed this way, as real game content is: it bounds
 * the number of tiles any single primitive overlaps, which matters to
 * the Signature Unit's OT-queue behaviour.
 */
Mesh makeSubdividedQuad(float w, float h, u32 cols, u32 rows,
                        float uvScale = 1.0f);

/**
 * Regular grid of quads in the XY plane (backgrounds, puzzle boards).
 * @param cols,rows grid dimensions
 * @param cellW,cellH cell size
 * @param atlasCells when > 0, each cell maps to a distinct atlas cell
 *        chosen deterministically from @p rng
 */
Mesh makeGrid(u32 cols, u32 rows, float cellW, float cellH,
              u32 atlasCells, Rng &rng);

/** Unit cube centred at the origin, 12 triangles, per-face normals. */
Mesh makeBox(float sx, float sy, float sz);

/** UV sphere, CCW winding, per-vertex normals. */
Mesh makeSphere(float radius, u32 slices, u32 stacks);

/**
 * Terrain strip: (cols x rows) height-field mesh extending along -Z,
 * with value-noise heights (endless-runner ground).
 */
Mesh makeTerrain(u32 cols, u32 rows, float cellSize, float heightAmp,
                 Rng &rng);

} // namespace regpu

#endif // REGPU_SCENE_MESH_GEN_HH
