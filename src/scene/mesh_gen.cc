#include "scene/mesh_gen.hh"

#include <cmath>

namespace regpu
{

namespace
{

void
pushTri(Mesh &mesh, Vertex a, Vertex b, Vertex c)
{
    mesh.vertices.push_back(a);
    mesh.vertices.push_back(b);
    mesh.vertices.push_back(c);
}

Vertex
vert(float x, float y, float z, float s, float t,
     Vec4 color = {1, 1, 1, 1}, Vec3 n = {0, 0, 1})
{
    Vertex v;
    v.position = {x, y, z};
    v.texcoord = {s, t};
    v.color = color;
    v.normal = n;
    return v;
}

} // namespace

Mesh
makeQuad(float w, float h, float uvScale)
{
    Mesh mesh;
    mesh.layout.hasTexcoord = true;
    float hw = w / 2, hh = h / 2, u = uvScale;
    Vertex v00 = vert(-hw, -hh, 0, 0, 0);
    Vertex v10 = vert(hw, -hh, 0, u, 0);
    Vertex v11 = vert(hw, hh, 0, u, u);
    Vertex v01 = vert(-hw, hh, 0, 0, u);
    pushTri(mesh, v00, v10, v11);
    pushTri(mesh, v00, v11, v01);
    return mesh;
}

Mesh
makeSubdividedQuad(float w, float h, u32 cols, u32 rows, float uvScale)
{
    Mesh mesh;
    mesh.layout.hasTexcoord = true;
    const float cw = w / cols, ch = h / rows;
    for (u32 r = 0; r < rows; r++) {
        for (u32 c = 0; c < cols; c++) {
            float x0 = -w / 2 + c * cw, y0 = -h / 2 + r * ch;
            float x1 = x0 + cw, y1 = y0 + ch;
            float u0 = uvScale * c / cols, v0 = uvScale * r / rows;
            float u1 = uvScale * (c + 1) / cols;
            float v1 = uvScale * (r + 1) / rows;
            Vertex a = vert(x0, y0, 0, u0, v0);
            Vertex b = vert(x1, y0, 0, u1, v0);
            Vertex cc = vert(x1, y1, 0, u1, v1);
            Vertex d = vert(x0, y1, 0, u0, v1);
            pushTri(mesh, a, b, cc);
            pushTri(mesh, a, cc, d);
        }
    }
    return mesh;
}

Mesh
makeGrid(u32 cols, u32 rows, float cellW, float cellH, u32 atlasCells,
         Rng &rng)
{
    Mesh mesh;
    mesh.layout.hasTexcoord = true;
    for (u32 r = 0; r < rows; r++) {
        for (u32 c = 0; c < cols; c++) {
            float x0 = c * cellW, y0 = r * cellH;
            float x1 = x0 + cellW, y1 = y0 + cellH;
            float u0 = 0, v0 = 0, u1 = 1, v1 = 1;
            if (atlasCells > 0) {
                u32 cell = static_cast<u32>(rng.nextBounded(atlasCells));
                u32 ac = cell % 4, ar = (cell / 4) % 4;
                u0 = ac * 0.25f;
                v0 = ar * 0.25f;
                u1 = u0 + 0.25f;
                v1 = v0 + 0.25f;
            }
            Vertex a = vert(x0, y0, 0, u0, v0);
            Vertex b = vert(x1, y0, 0, u1, v0);
            Vertex cc = vert(x1, y1, 0, u1, v1);
            Vertex d = vert(x0, y1, 0, u0, v1);
            pushTri(mesh, a, b, cc);
            pushTri(mesh, a, cc, d);
        }
    }
    return mesh;
}

Mesh
makeBox(float sx, float sy, float sz)
{
    Mesh mesh;
    mesh.layout.hasTexcoord = true;
    mesh.layout.hasNormal = true;
    float hx = sx / 2, hy = sy / 2, hz = sz / 2;

    struct Face
    {
        Vec3 origin, du, dv, n;
    };
    const Face faces[6] = {
        {{-hx, -hy, hz}, {sx, 0, 0}, {0, sy, 0}, {0, 0, 1}},    // front
        {{hx, -hy, -hz}, {-sx, 0, 0}, {0, sy, 0}, {0, 0, -1}},  // back
        {{hx, -hy, hz}, {0, 0, -sz}, {0, sy, 0}, {1, 0, 0}},    // right
        {{-hx, -hy, -hz}, {0, 0, sz}, {0, sy, 0}, {-1, 0, 0}},  // left
        {{-hx, hy, hz}, {sx, 0, 0}, {0, 0, -sz}, {0, 1, 0}},    // top
        {{-hx, -hy, -hz}, {sx, 0, 0}, {0, 0, sz}, {0, -1, 0}},  // bottom
    };
    for (const Face &f : faces) {
        Vec3 p00 = f.origin;
        Vec3 p10 = f.origin + f.du;
        Vec3 p11 = f.origin + f.du + f.dv;
        Vec3 p01 = f.origin + f.dv;
        Vertex a = vert(p00.x, p00.y, p00.z, 0, 0, {1, 1, 1, 1}, f.n);
        Vertex b = vert(p10.x, p10.y, p10.z, 1, 0, {1, 1, 1, 1}, f.n);
        Vertex c = vert(p11.x, p11.y, p11.z, 1, 1, {1, 1, 1, 1}, f.n);
        Vertex d = vert(p01.x, p01.y, p01.z, 0, 1, {1, 1, 1, 1}, f.n);
        pushTri(mesh, a, b, c);
        pushTri(mesh, a, c, d);
    }
    return mesh;
}

Mesh
makeSphere(float radius, u32 slices, u32 stacks)
{
    Mesh mesh;
    mesh.layout.hasTexcoord = true;
    mesh.layout.hasNormal = true;
    auto point = [&](u32 sl, u32 st) {
        float phi = 3.14159265f * st / stacks;       // 0..pi
        float theta = 6.28318531f * sl / slices;     // 0..2pi
        Vec3 n{std::sin(phi) * std::cos(theta), std::cos(phi),
               std::sin(phi) * std::sin(theta)};
        Vertex v;
        v.position = n * radius;
        v.normal = n;
        v.texcoord = {static_cast<float>(sl) / slices,
                      static_cast<float>(st) / stacks};
        return v;
    };
    for (u32 st = 0; st < stacks; st++) {
        for (u32 sl = 0; sl < slices; sl++) {
            Vertex a = point(sl, st);
            Vertex b = point(sl + 1, st);
            Vertex c = point(sl + 1, st + 1);
            Vertex d = point(sl, st + 1);
            if (st != 0)
                pushTri(mesh, a, c, b);
            if (st + 1 != stacks)
                pushTri(mesh, a, d, c);
        }
    }
    return mesh;
}

Mesh
makeTerrain(u32 cols, u32 rows, float cellSize, float heightAmp, Rng &rng)
{
    Mesh mesh;
    mesh.layout.hasTexcoord = true;
    mesh.layout.hasNormal = true;
    // Height field from the shared deterministic RNG.
    std::vector<float> heights((cols + 1) * (rows + 1));
    for (auto &h : heights)
        h = rng.nextFloatRange(-heightAmp, heightAmp);
    auto at = [&](u32 c, u32 r) {
        Vertex v;
        float x = (static_cast<float>(c) - cols / 2.0f) * cellSize;
        float z = -static_cast<float>(r) * cellSize;
        v.position = {x, heights[r * (cols + 1) + c], z};
        v.texcoord = {static_cast<float>(c) / 2.0f,
                      static_cast<float>(r) / 2.0f};
        v.normal = {0, 1, 0};
        return v;
    };
    for (u32 r = 0; r < rows; r++) {
        for (u32 c = 0; c < cols; c++) {
            Vertex a = at(c, r);
            Vertex b = at(c + 1, r);
            Vertex cc = at(c + 1, r + 1);
            Vertex d = at(c, r + 1);
            pushTri(mesh, a, cc, b);
            pushTri(mesh, a, d, cc);
        }
    }
    return mesh;
}

} // namespace regpu
