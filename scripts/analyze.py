#!/usr/bin/env python3
"""Whole-repo architecture analyzer: cross-file invariants lint.py
cannot see.

scripts/lint.py polices single-file bug classes; this tool holds the
*relationships* between files — the layering DAG of src/, header
hygiene, and the name-level contracts between the simulator, its
tests, the bench harness and the README. It is stdlib-only (it
imports the C++ lexer from lint.py, nothing else) and runs in a bare
container, so it is part of the *unconditional* tier-1 gate in
scripts/check.sh.

Rules (ids are stable; see --list-rules):

  layer-dag     Every src/ directory declares the layers it may
                include (ALLOWED_DEPS below, mirrored in README.md).
                An #include crossing a forbidden edge — say crc/
                reaching into sim/ — is a violation at the include
                line. Keeps the dependency structure an explicit,
                reviewed artifact instead of an accident.
  layer-cycle   The *measured* directory-level include graph must be
                acyclic, independently of layer-dag: if ALLOWED_DEPS
                itself is ever relaxed into a cycle, this still fires.
  header-guard  Every src/ header carries #pragma once or the
                canonical REGPU_<DIR>_<FILE>_HH guard pair (scanned
                whole-file: a guard below a long doc comment is fine;
                a misspelled or missing one is not).
  include-cc    #include of a .cc file compiles a TU into another TU:
                double-definition landmine, breaks the one-TU-per-
                source CMake model.
  stat-name     Stat names referenced by tests (counter("x.y") /
                scalar("x.y")), README backticks and scripts/bench.py
                must exist in src/ — either a stats registration
                (.inc/.add/.set) or an obs cat.name composition
                (ObsScope/obsCounter/obsInstant). Catches phantom
                stats left behind by renames. Only dotted names whose
                prefix is an actual src/ stat/obs prefix are gated, so
                unrelated dotted tokens (file names, bench record ids)
                never false-positive; test files may also register
                their own names locally.
  csv-schema    The CSV/JSON run schema is written in three places:
                csvColumns() and writeJsonRun() in src/sim/report.cc,
                and the column-reference table in README.md (between
                the analyze:csv-schema:begin/end markers). All three
                must agree: every CSV column is a JSON key, JSON adds
                only the declared identity extras (seed + geometry),
                and the README documents exactly the CSV columns.
  raw-mutex     src/ synchronizes through regpu::Mutex/MutexLock
                (common/thread_annotations.hh) so clang -Wthread-
                safety can check lock discipline; a naked std::mutex/
                std::lock_guard carries no capability annotations and
                silently opts its file out of the analysis.

Suppression syntax is lint.py's, with the analyze marker (each use
needs a non-empty reason; unused suppressions are violations):

  code();  // analyze:allow(rule-id): reason       same line
  // analyze:allow(rule-id): reason                line above
  // analyze:allow-file(rule-id): reason           whole file, first
                                                   40 lines only
  <!-- analyze:allow(rule-id): reason -->          markdown, same line

To add a rule: append a TreeRule to RULES with a findings function
over Tree (path -> FileText for C++/markdown/python sources), and
fixture trees in FIXTURES proving it fires and stays quiet —
--self-test runs every rule against its fixtures, including the
acceptance injections (a layering cycle, a crc -> sim edge, a phantom
stat name).
"""

import argparse
import dataclasses
import os
import re
import sys
from typing import Callable, Dict, List, Tuple

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from lint import (FileText, Suppressions, Violation,  # noqa: E402
                  strip_code)

Tree = Dict[str, FileText]

CXX_EXTENSIONS = (".cc", ".cpp", ".hh", ".h")

# --- The declared layering DAG ----------------------------------------------
#
# Per-directory allowed #include targets inside src/ (transitively
# closed by hand; sim is the integration layer and may see everything).
# Mirrored prose lives in README.md ("Layering"); change both together.
ALLOWED_DEPS: Dict[str, Tuple[str, ...]] = {
    "common": (),
    "crc": ("common",),
    "obs": ("common",),            # leaf: importable by anyone
    "power": ("common",),
    "gpu": ("common", "crc", "obs"),
    "scene": ("common", "gpu"),
    "workloads": ("common", "scene"),
    "timing": ("common", "gpu", "obs"),
    "memo": ("common", "gpu"),
    "re": ("common", "crc", "gpu", "obs"),
    "te": ("common", "crc", "gpu", "obs", "re"),
    "trace": ("common", "crc", "gpu", "scene"),
    "sim": ("common", "crc", "gpu", "memo", "obs", "power", "re",
            "scene", "te", "timing", "trace", "workloads"),
}

# writeJsonRun() may add these identity keys beyond the CSV columns
# (run provenance: which scene/screen produced the numbers).
JSON_IDENTITY_EXTRAS = ("seed", "screenWidth", "screenHeight",
                        "tileWidth", "tileHeight")

CSV_TABLE_BEGIN = "analyze:csv-schema:begin"
CSV_TABLE_END = "analyze:csv-schema:end"

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*(")', re.M)


@dataclasses.dataclass
class TreeRule:
    rule_id: str
    summary: str
    findings: Callable[[Tree], List[Violation]]


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def quoted_arg_at(raw: str, offset: int) -> str:
    """The string literal starting at raw[offset] (offset points at
    an opening quote located in the code view; contents live in
    raw, where strip_code left them intact)."""
    m = re.match(r'"([^"\\]*)"', raw[offset:])
    return m.group(1) if m else ""


def cxx_files(tree: Tree, prefix: str = "") -> List[FileText]:
    return [ft for path, ft in sorted(tree.items())
            if path.startswith(prefix)
            and path.endswith(CXX_EXTENSIONS)]


def src_includes(ft: FileText) -> List[Tuple[int, str]]:
    """(line, include-path) pairs of quoted includes. The directive is
    matched in the code view (commented-out includes never count) but
    the path is read from raw, where literal contents survive."""
    out = []
    for m in INCLUDE_RE.finditer(ft.code):
        inc = quoted_arg_at(ft.raw, m.start(1))
        if inc:
            out.append((line_of(ft.code, m.start()), inc))
    return out


def include_edges(tree: Tree) -> List[Tuple[str, int, str, str]]:
    """All cross-directory include edges inside src/:
    (path, line, from-dir, to-dir)."""
    edges = []
    for ft in cxx_files(tree, "src/"):
        src_dir = ft.path.split("/")[1]
        for line, inc in src_includes(ft):
            if "/" not in inc:
                continue
            to_dir = inc.split("/")[0]
            if to_dir in ALLOWED_DEPS and to_dir != src_dir:
                edges.append((ft.path, line, src_dir, to_dir))
    return edges


# --- layer-dag / layer-cycle ------------------------------------------------

def find_layer_dag(tree: Tree) -> List[Violation]:
    out = []
    for ft in cxx_files(tree, "src/"):
        src_dir = ft.path.split("/")[1]
        allowed = ALLOWED_DEPS.get(src_dir)
        if allowed is None:
            out.append(Violation(
                ft.path, 1, "layer-dag",
                f"src/{src_dir}/ is not a declared layer; add it to "
                "ALLOWED_DEPS in scripts/analyze.py (and the README "
                "layering section) before including from it"))
            continue
        for line, inc in src_includes(ft):
            if "/" not in inc:
                continue
            to_dir = inc.split("/")[0]
            if to_dir == src_dir or to_dir not in ALLOWED_DEPS:
                continue
            if to_dir not in allowed:
                out.append(Violation(
                    ft.path, line, "layer-dag",
                    f"forbidden layer edge {src_dir} -> {to_dir}: "
                    f"src/{src_dir}/ may only include "
                    f"{{{', '.join(allowed) or 'nothing'}}} "
                    "(ALLOWED_DEPS in scripts/analyze.py)"))
    return out


def find_layer_cycle(tree: Tree) -> List[Violation]:
    edges = include_edges(tree)
    graph: Dict[str, set] = {}
    for _path, _line, frm, to in edges:
        graph.setdefault(frm, set()).add(to)

    # Iterative DFS cycle detection over the measured graph.
    WHITE, GREY, BLACK = 0, 1, 2
    color = {d: WHITE for d in graph}
    cycle_edges = set()

    def visit(start):
        stack = [(start, iter(sorted(graph.get(start, ()))))]
        color[start] = GREY
        path = [start]
        while stack:
            node, it = stack[-1]
            advanced = False
            for nbr in it:
                state = color.get(nbr, BLACK if nbr not in graph
                                  else WHITE)
                if nbr not in graph:
                    continue
                if color[nbr] == GREY:
                    # Back edge: everything from nbr around to node.
                    tail = path[path.index(nbr):] + [nbr]
                    for a, b in zip(tail, tail[1:]):
                        cycle_edges.add((a, b))
                elif color[nbr] == WHITE:
                    color[nbr] = GREY
                    path.append(nbr)
                    stack.append((nbr, iter(sorted(graph[nbr]))))
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                path.pop()
                color[node] = BLACK

    for d in sorted(graph):
        if color[d] == WHITE:
            visit(d)

    out = []
    for path, line, frm, to in edges:
        if (frm, to) in cycle_edges:
            out.append(Violation(
                path, line, "layer-cycle",
                f"include edge {frm} -> {to} participates in a "
                "directory-level include cycle; the src/ layer graph "
                "must stay a DAG"))
    return out


# --- header-guard / include-cc ----------------------------------------------

def find_header_guard(tree: Tree) -> List[Violation]:
    out = []
    for ft in cxx_files(tree, "src/"):
        if not ft.path.endswith((".hh", ".h")):
            continue
        if re.search(r"^\s*#\s*pragma\s+once\b", ft.code, re.M):
            continue
        stem = ft.path[len("src/"):].rsplit(".", 1)[0]
        want = "REGPU_" + re.sub(r"\W", "_", stem).upper() + "_HH"
        has_ifndef = re.search(r"^\s*#\s*ifndef\s+" + want + r"\b",
                               ft.code, re.M)
        has_define = re.search(r"^\s*#\s*define\s+" + want + r"\b",
                               ft.code, re.M)
        if has_ifndef and has_define:
            continue
        got = re.search(r"^\s*#\s*ifndef\s+(\w+)", ft.code, re.M)
        detail = (f"found guard {got.group(1)}" if got
                  else "no guard found")
        out.append(Violation(
            ft.path, got and line_of(ft.code, got.start()) or 1,
            "header-guard",
            f"header needs #pragma once or the canonical "
            f"#ifndef/#define {want} pair ({detail})"))
    return out


def find_include_cc(tree: Tree) -> List[Violation]:
    out = []
    for ft in cxx_files(tree):
        for line, inc in src_includes(ft):
            if inc.endswith(".cc"):
                out.append(Violation(
                    ft.path, line, "include-cc",
                    f'#include "{inc}": including a .cc compiles its '
                    "definitions into this TU too (ODR landmine); "
                    "include the header and link the library"))
    return out


# --- stat-name --------------------------------------------------------------

def stat_definitions(tree: Tree, prefix: str) -> set:
    """Names registered via .inc/.add/.set("...") in files under
    @p prefix. Call shape matched in the code view, name read from
    raw, so comments can't define and literals can't hide."""
    names = set()
    for ft in cxx_files(tree, prefix):
        for m in re.finditer(r'\.(?:inc|add|set)\s*\(\s*(")',
                             ft.code):
            name = quoted_arg_at(ft.raw, m.start(1))
            if name:
                names.add(name)
    return names


def obs_compositions(tree: Tree) -> set:
    """cat.name pairs emitted by the observability layer: ObsScope
    construction (direct or optional.emplace) and the obsCounter /
    obsInstant helpers."""
    names = set()
    pat = re.compile(
        r'(?:\bObsScope\s+\w+\s*\(|\bObsScope\s*\(|\.emplace\s*\(|'
        r'\bobsCounter\s*\(|\bobsInstant\s*\()\s*(")(\s*,\s*)?')
    for ft in cxx_files(tree, "src/"):
        for m in pat.finditer(ft.code):
            cat = quoted_arg_at(ft.raw, m.start(1))
            rest = ft.code[m.start(1):]
            second = re.match(r'"[^"\n]*"\s*,\s*(")', rest)
            if not (cat and second):
                continue
            name = quoted_arg_at(ft.raw,
                                 m.start(1) + second.start(1))
            if name:
                names.add(f"{cat}.{name}")
    return names


def find_stat_name(tree: Tree) -> List[Violation]:
    defined = stat_definitions(tree, "src/")
    comps = obs_compositions(tree)
    known = defined | comps
    prefixes = {n.split(".")[0] for n in known if "." in n}

    def gated(name: str) -> bool:
        return "." in name and name.split(".")[0] in prefixes

    out = []

    # Tests: counter("x.y") / scalar("x.y") reads, minus names the
    # test registers itself (stats registries are test-local there).
    for ft in cxx_files(tree, "tests/"):
        local = stat_definitions({ft.path: ft}, "")
        for m in re.finditer(r'\b(?:counter|scalar)\s*\(\s*(")',
                             ft.code):
            name = quoted_arg_at(ft.raw, m.start(1))
            if (gated(name) and name not in known
                    and name not in local):
                out.append(Violation(
                    ft.path, line_of(ft.code, m.start()), "stat-name",
                    f'stat "{name}" is read here but registered '
                    "nowhere in src/ (and not in this test); phantom "
                    "stat reads return 0 and silently pass"))

    # README: backticked dotted tokens with a known stat/obs prefix.
    readme = tree.get("README.md")
    if readme is not None:
        for m in re.finditer(r"`([A-Za-z_]\w*(?:\.[\w.]+)+)`",
                             readme.raw):
            name = m.group(1)
            if gated(name) and name not in known:
                out.append(Violation(
                    readme.path, line_of(readme.raw, m.start()),
                    "stat-name",
                    f"README documents stat `{name}`, which exists "
                    "nowhere in src/ (renamed or removed?)"))

    # bench.py: dotted string literals with a known prefix.
    bench = tree.get("scripts/bench.py")
    if bench is not None:
        for m in re.finditer(r"""["']([A-Za-z_]\w*(?:\.[\w.]+)+)["']""",
                             bench.raw):
            name = m.group(1)
            if gated(name) and name not in known:
                out.append(Violation(
                    bench.path, line_of(bench.raw, m.start()),
                    "stat-name",
                    f'bench.py names stat "{name}", which exists '
                    "nowhere in src/ (renamed or removed?)"))
    return out


# --- csv-schema -------------------------------------------------------------

def parse_csv_columns(report: FileText) -> Tuple[int, List[str]]:
    """csvColumns()'s initializer list: (line of the function, names).
    Parsed from raw (string contents are the data here)."""
    m = re.search(r"csvColumns\(\)\s*\{", report.raw)
    if not m:
        return 0, []
    body = report.raw[m.end():]
    brace = body.find("};")
    init = body[:brace if brace != -1 else len(body)]
    return (line_of(report.raw, m.start()),
            re.findall(r'"([^"]+)"', init))


def parse_json_keys(report: FileText) -> List[str]:
    """Keys emitted by writeJsonRun(): every \\"key\\": fragment in
    the file (only the JSON writer produces that shape)."""
    return re.findall(r'\\"(\w+)\\":', report.raw)


def parse_readme_csv_table(readme: FileText) -> Tuple[int, Dict[str, int]]:
    """(marker line, {column name -> line}) from the README block
    between the analyze:csv-schema markers; (0, {}) when absent."""
    begin = readme.raw.find(CSV_TABLE_BEGIN)
    end = readme.raw.find(CSV_TABLE_END)
    if begin == -1 or end == -1 or end < begin:
        return 0, {}
    cols = {}
    for m in re.finditer(r"^\|\s*`([^`]+)`", readme.raw[begin:end],
                         re.M):
        cols.setdefault(m.group(1),
                        line_of(readme.raw, begin + m.start()))
    return line_of(readme.raw, begin), cols


def find_csv_schema(tree: Tree) -> List[Violation]:
    report = tree.get("src/sim/report.cc")
    readme = tree.get("README.md")
    if report is None:
        return []
    out = []
    cols_line, cols = parse_csv_columns(report)
    json_keys = parse_json_keys(report)
    if not cols or not json_keys:
        out.append(Violation(
            report.path, 1, "csv-schema",
            "could not parse csvColumns() initializer and "
            "writeJsonRun() keys; keep both in src/sim/report.cc in "
            "their declarative shapes (or update scripts/analyze.py "
            "alongside a refactor)"))
        return out

    for col in cols:
        if col not in json_keys:
            out.append(Violation(
                report.path, cols_line, "csv-schema",
                f'CSV column "{col}" is missing from writeJsonRun(); '
                "the CSV and JSON run schemas must carry the same "
                "result fields"))
    for key in json_keys:
        if key not in cols and key not in JSON_IDENTITY_EXTRAS:
            out.append(Violation(
                report.path, cols_line, "csv-schema",
                f'JSON key "{key}" is neither a CSV column nor a '
                "declared identity extra (JSON_IDENTITY_EXTRAS in "
                "scripts/analyze.py)"))

    if readme is None:
        return out
    table_line, documented = parse_readme_csv_table(readme)
    if not documented:
        out.append(Violation(
            readme.path, 1, "csv-schema",
            f"README.md lacks the CSV column-reference table "
            f"(between {CSV_TABLE_BEGIN} / {CSV_TABLE_END} markers)"))
        return out
    for col in cols:
        if col not in documented:
            out.append(Violation(
                readme.path, table_line, "csv-schema",
                f'CSV column "{col}" is undocumented in the README '
                "column-reference table"))
    for col, line in sorted(documented.items()):
        if col not in cols:
            out.append(Violation(
                readme.path, line, "csv-schema",
                f"README documents CSV column `{col}`, which "
                "csvColumns() does not emit (renamed or removed?)"))
    return out


# --- raw-mutex --------------------------------------------------------------

RAW_MUTEX_RE = re.compile(
    r"std::(mutex|timed_mutex|recursive_mutex|shared_mutex|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|^\s*#\s*include\s*<mutex>", re.M)


def find_raw_mutex(tree: Tree) -> List[Violation]:
    out = []
    for ft in cxx_files(tree, "src/"):
        if ft.path == "src/common/thread_annotations.hh":
            continue  # the one sanctioned std::mutex wrapper
        for m in RAW_MUTEX_RE.finditer(ft.code):
            what = m.group(1) or "<mutex> include"
            out.append(Violation(
                ft.path, line_of(ft.code, m.start()), "raw-mutex",
                f"raw std:: synchronization ({what}) in src/: use "
                "regpu::Mutex/MutexLock "
                "(common/thread_annotations.hh) so clang "
                "-Wthread-safety can check the lock discipline"))
    return out


# --- cli-flag-doc -----------------------------------------------------------

# A whole string literal that is exactly a CLI flag ("--tile-jobs",
# not a usage blurb that merely contains one): the shape every
# frontend's argv comparison uses.
CLI_FLAG_RE = re.compile(r'"(--[a-z][a-z0-9-]*)"')


def cli_flags_parsed(tree: Tree) -> List[Tuple[str, int, str]]:
    """(path, line, flag) for every flag literal in the CLI frontends
    (examples/) and bench drivers (bench/). Matched on raw so the
    literal's content is visible, then cross-checked against the code
    view so flags quoted inside comments never count."""
    out = []
    for prefix in ("examples/", "bench/"):
        for ft in cxx_files(tree, prefix):
            for m in CLI_FLAG_RE.finditer(ft.raw):
                if ft.code[m.start()] != '"':
                    continue  # the quote was blanked: comment text
                out.append((ft.path, line_of(ft.raw, m.start()),
                            m.group(1)))
    return out


def find_cli_flag_doc(tree: Tree) -> List[Violation]:
    readme = tree.get("README.md")
    if readme is None:
        return []
    out = []
    seen = set()
    for path, line, flag in cli_flags_parsed(tree):
        if flag in seen:
            continue
        seen.add(flag)
        # Boundary guard: "--tile" must not be satisfied by the
        # README mentioning "--tile-jobs".
        if not re.search(re.escape(flag) + r"(?![a-z0-9-])",
                         readme.raw):
            out.append(Violation(
                path, line, "cli-flag-doc",
                f"CLI flag {flag} is parsed here but never mentioned "
                "in README.md; every user-facing flag of the "
                "examples/ and bench/ binaries must be documented"))
    return out


RULES: List[TreeRule] = [
    TreeRule("layer-dag",
             "src/ include edges stay inside the declared layer DAG",
             find_layer_dag),
    TreeRule("layer-cycle",
             "the measured directory include graph is acyclic",
             find_layer_cycle),
    TreeRule("header-guard",
             "src/ headers carry #pragma once or canonical guards",
             find_header_guard),
    TreeRule("include-cc",
             "no #include of .cc files",
             find_include_cc),
    TreeRule("stat-name",
             "stat names in tests/README/bench.py exist in src/",
             find_stat_name),
    TreeRule("csv-schema",
             "CSV columns == JSON keys (mod identity) == README table",
             find_csv_schema),
    TreeRule("raw-mutex",
             "src/ locks through annotated regpu::Mutex only",
             find_raw_mutex),
    TreeRule("cli-flag-doc",
             "every --flag parsed by examples/+bench/ is in README.md",
             find_cli_flag_doc),
]


# --- Scanning ---------------------------------------------------------------

SCAN_DIRS = ("src", "bench", "examples", "tests")
EXTRA_FILES = ("README.md", "scripts/bench.py")


def make_file(path: str, raw: str) -> FileText:
    # Only C++ gets the lexer; markdown/python rules scan raw and the
    # suppression machinery needs code == raw there.
    code = strip_code(raw) if path.endswith(CXX_EXTENSIONS) else raw
    return FileText(path, raw, code)


def load_tree(root: str) -> Tree:
    tree: Tree = {}
    for top in SCAN_DIRS:
        for dirpath, _dirnames, filenames in os.walk(
                os.path.join(root, top)):
            for name in sorted(filenames):
                if not name.endswith(CXX_EXTENSIONS):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, root).replace(os.sep, "/")
                with open(path, encoding="utf-8") as f:
                    tree[rel] = make_file(rel, f.read())
    for rel in EXTRA_FILES:
        path = os.path.join(root, rel)
        if os.path.exists(path):
            with open(path, encoding="utf-8") as f:
                tree[rel] = make_file(rel, f.read())
    return tree


def analyze_tree(tree: Tree) -> List[Violation]:
    sups = {path: Suppressions(ft, marker="analyze")
            for path, ft in tree.items()}
    violations = []
    for sup in sups.values():
        violations.extend(sup.errors)
    for rule in RULES:
        for v in rule.findings(tree):
            sup = sups.get(v.path)
            if sup and sup.allows(v.line, v.rule):
                continue
            violations.append(v)
    for path, sup in sorted(sups.items()):
        violations.extend(sup.unused(path))
    return sorted(violations, key=lambda v: (v.path, v.line, v.rule))


# --- Self test --------------------------------------------------------------

# A minimal consistent repo the fixtures perturb: parsed schemas, one
# stat of each flavor, clean layering.
BASE_REPORT = (
    'const std::vector<std::string> &\n'
    'csvColumns()\n{\n'
    '    static const std::vector<std::string> columns = {\n'
    '        "workload", "frames",\n    };\n'
    '    return columns;\n}\n'
    'void writeJsonRun(std::ostream &os)\n{\n'
    '    os << "\\"workload\\":\\"" << w;\n'
    '    os << ",\\"seed\\":" << seed;\n'
    '    os << ",\\"frames\\":" << r.frames;\n}\n')
BASE_README = (
    "## Output schema\n\n"
    "<!-- analyze:csv-schema:begin -->\n"
    "| column | meaning |\n|---|---|\n"
    "| `workload` | scene name |\n"
    "| `frames` | frames simulated |\n"
    "<!-- analyze:csv-schema:end -->\n")
BASE_TREE = {
    "src/sim/report.cc": BASE_REPORT,
    "src/gpu/raster.cc": ('#include "common/types.hh"\n'
                          'void f() { stats.inc("raster.tiles"); }\n'),
    "README.md": BASE_README,
}

# Per rule: (tree overlay that MUST fire, overlay that MUST stay
# clean). Files map to content; None deletes the base file.
FIXTURES = {
    # Acceptance injection: the forbidden crc -> sim edge.
    "layer-dag": (
        {"src/crc/crc32.cc": '#include "sim/report.hh"\n'},
        {"src/crc/crc32.cc": '#include "common/types.hh"\n'},
    ),
    # Acceptance injection: a common <-> crc include cycle.
    "layer-cycle": (
        {"src/common/types.hh": ('#ifndef REGPU_COMMON_TYPES_HH\n'
                                 '#define REGPU_COMMON_TYPES_HH\n'
                                 '#include "crc/crc32.hh"\n#endif\n'),
         "src/crc/crc32.hh": ('#ifndef REGPU_CRC_CRC32_HH\n'
                              '#define REGPU_CRC_CRC32_HH\n'
                              '#include "common/types.hh"\n#endif\n')},
        {"src/crc/crc32.hh": ('#ifndef REGPU_CRC_CRC32_HH\n'
                              '#define REGPU_CRC_CRC32_HH\n'
                              '#include "common/types.hh"\n#endif\n')},
    ),
    "header-guard": (
        {"src/gpu/foo.hh": "struct Foo {};\n"},
        {"src/gpu/foo.hh": ("/** Long doc comment\n * spanning\n"
                            " * several lines.\n */\n"
                            "#ifndef REGPU_GPU_FOO_HH\n"
                            "#define REGPU_GPU_FOO_HH\n"
                            "struct Foo {};\n#endif\n"),
         "src/gpu/bar.hh": "#pragma once\nstruct Bar {};\n"},
    ),
    "include-cc": (
        {"tests/test_x.cc": '#include "gpu/raster.cc"\n'},
        {"tests/test_x.cc": '#include "gpu/raster.hh"\n'},
    ),
    # Acceptance injection: a phantom stat name.
    "stat-name": (
        {"tests/test_stats.cc":
         'TEST(S, X) { EXPECT_EQ(counter("raster.phantom"), 1u); }\n',
         "README.md": BASE_README.replace(
             "| `frames` | frames simulated |\n",
             "| `frames` | frames simulated |\n\n") +
         "\nSee `raster.ghostStat` for details.\n"},
        {"tests/test_stats.cc":
         ('TEST(S, X) {\n'
          '    s.inc("raster.local");\n'
          '    EXPECT_EQ(counter("raster.tiles"), 1u);\n'
          '    EXPECT_EQ(counter("raster.local"), 1u);\n'
          '    EXPECT_EQ(counter("unrelated.dotted.name"), 0u);\n}\n'),
         "scripts/bench.py":
         'NAME = "pipeline.total.framesPerSecond"\n'},
    ),
    "csv-schema": (
        {"src/sim/report.cc": BASE_REPORT.replace(
            '    os << ",\\"frames\\":" << r.frames;\n', ''),
         "README.md": BASE_README.replace(
             "| `workload` | scene name |\n",
             "| `workload` | scene name |\n"
             "| `ghostColumn` | no longer emitted |\n")},
        {},
    ),
    "raw-mutex": (
        {"src/timing/pool.cc":
         "#include <mutex>\nstd::mutex m;\n"
         "void f() { std::lock_guard<std::mutex> lock(m); }\n"},
        {"src/timing/pool.cc":
         '#include "common/thread_annotations.hh"\n'
         "regpu::Mutex m;\nvoid f() { regpu::MutexLock lock(m); }\n",
         "tests/test_pool.cc":
         "#include <mutex>\nstd::mutex m;  // tests may lock freely\n"},
    ),
    # Acceptance injection: a parsed flag the README never mentions.
    "cli-flag-doc": (
        {"examples/suite_cli.cpp":
         'void f(const std::string &arg) {\n'
         '    if (arg == "--ghost-flag") {}\n}\n'},
        {"examples/suite_cli.cpp":
         ('void f(const std::string &arg) {\n'
          '    if (arg == "--frames") {}\n'
          '    // "--phantom" only lives in this comment\n'
          '    usage("usage: [--embedded N] text");\n}\n'),
         "README.md": BASE_README +
         "\nFlags: `--frames N` selects the frame count.\n"},
    ),
}


def fixture_tree(overlay: Dict[str, str]) -> Tree:
    merged = dict(BASE_TREE)
    for path, content in overlay.items():
        if content is None:
            merged.pop(path, None)
        else:
            merged[path] = content
    return {path: make_file(path, raw)
            for path, raw in merged.items()}


def self_test() -> int:
    failures = []

    def check(cond: bool, what: str):
        (failures.append(what) if not cond else None)

    base_noise = {v.rule for v in analyze_tree(fixture_tree({}))}
    check(not base_noise, f"base fixture tree not clean: {base_noise}")

    for rule in RULES:
        check(rule.rule_id in FIXTURES,
              f"{rule.rule_id}: missing fixture")
    for rule_id, (bad, good) in FIXTURES.items():
        bad_hits = [v for v in analyze_tree(fixture_tree(bad))
                    if v.rule == rule_id]
        check(len(bad_hits) >= 1,
              f"{rule_id}: violating fixture did not fire")
        good_hits = [v for v in analyze_tree(fixture_tree(good))
                     if v.rule == rule_id]
        check(not good_hits,
              f"{rule_id}: clean fixture fired: {good_hits}")

    # The layer-cycle injection fires BOTH rules: the edge is
    # forbidden and cyclic. Pin that so the two rules stay
    # independent.
    cyc = analyze_tree(fixture_tree(FIXTURES["layer-cycle"][0]))
    check(any(v.rule == "layer-dag" for v in cyc),
          "cycle injection should also violate layer-dag")

    # Commented-out includes never make edges.
    quiet = {"src/crc/crc32.cc":
             '// #include "sim/report.hh"\n'
             '/* #include "sim/report.hh" */\n'}
    check(not [v for v in analyze_tree(fixture_tree(quiet))
               if v.rule in ("layer-dag", "layer-cycle")],
          "commented-out include made a layer edge")

    # Suppressions: same-line allow with reason, policed when stale.
    allowed = {"src/crc/crc32.cc":
               '#include "sim/report.hh"  '
               '// analyze:allow(layer-dag): fixture exception\n'}
    got = analyze_tree(fixture_tree(allowed))
    check(not [v for v in got if v.rule == "layer-dag"],
          "analyze:allow ignored")
    stale = {"src/crc/crc32.cc":
             '#include "common/types.hh"  '
             '// analyze:allow(layer-dag): stale\n'}
    check(any(v.rule == "analyze-suppression"
              for v in analyze_tree(fixture_tree(stale))),
          "stale analyze:allow not reported")
    # Markdown same-line suppression (HTML comment).
    md_allowed = {"README.md": BASE_README +
                  "\nSee `raster.ghostStat` "
                  "<!-- analyze:allow(stat-name): historical name "
                  "kept for papers --> for details.\n"}
    check(not [v for v in analyze_tree(fixture_tree(md_allowed))
               if v.rule == "stat-name"],
          "markdown analyze:allow ignored")

    # csv-schema direction 2: a JSON key outside columns + identity
    # extras fires on report.cc.
    extra_key = {"src/sim/report.cc": BASE_REPORT.replace(
        '    os << ",\\"frames\\":" << r.frames;\n',
        '    os << ",\\"frames\\":" << r.frames;\n'
        '    os << ",\\"bonusKey\\":" << 1;\n')}
    check(any(v.rule == "csv-schema" and "bonusKey" in v.message
              for v in analyze_tree(fixture_tree(extra_key))),
          "undeclared JSON key not caught")
    # ...and a missing README table is itself a violation.
    no_table = {"README.md": "## Output schema\n\nprose only\n"}
    check(any(v.rule == "csv-schema" and "lacks" in v.message
              for v in analyze_tree(fixture_tree(no_table))),
          "missing README csv table not caught")

    if failures:
        for f in failures:
            print(f"SELF-TEST FAIL: {f}", file=sys.stderr)
        return 1
    print(f"analyze.py self-test OK ({len(RULES)} rules, "
          f"{len(FIXTURES)} fixture pairs)")
    return 0


# --- CLI --------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="regpu whole-repo architecture analyzer "
                    "(stdlib-only)")
    parser.add_argument("--root", default=None,
                        help="repo root (default: the script's parent)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded rule fixtures and exit")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if args.list_rules:
        for rule in RULES:
            print(f"{rule.rule_id:24} {rule.summary}")
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    violations = analyze_tree(load_tree(root))
    for v in violations:
        print(v)
    if violations:
        print(f"analyze.py: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    print("analyze.py: tree clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
