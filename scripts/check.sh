#!/usr/bin/env bash
#
# Tier-1 verification — the CI entry point.
#
# Configures, builds (-Wall -Wextra, warnings are the build's problem
# to stay clean of), runs every registered ctest suite, and finishes
# with two smokes: a suite_cli determinism pass (a parallel sweep must
# emit a CSV bit-identical to the sequential one) and a trace
# record->verify->replay pass (replaying a recorded trace must emit a
# CSV bit-identical to the live run, and trace_cli verify must hold).
#
# A second configuration builds the library and tests with
# ASan + UBSan (-DREGPU_SANITIZE=ON) and re-runs the unit suites, so
# the MemoLut-style UB class (zero-division in set-index math, OOB
# reads) is caught mechanically, not by review.
#
# Usage:
#   scripts/check.sh             # full tier-1 verify (incl. sanitize pass)
#   scripts/check.sh --unit      # configure + build + unit-label tests only
#   scripts/check.sh --sanitize  # only the ASan+UBSan build + unit tests
#   scripts/check.sh --bench     # bench-harness smoke: one S-profile pass,
#                                # schema-validate the four BENCH_*.json,
#                                # prove --compare fails on a synthetic
#                                # regression (timing values are NOT gated)
#
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build
SANITIZE_DIR=build-sanitize

run_bench_smoke() {
    echo "== bench harness smoke (S profile, 1 repeat; timings non-gating) =="
    local bench_dir
    bench_dir=$(mktemp -d)
    trap 'rm -rf "$bench_dir"' RETURN
    python3 scripts/bench.py --profile S --repeat 1 --warmup 0 \
        --build-dir "$BUILD_DIR" --no-build --out-dir "$bench_dir"
    python3 scripts/bench.py --validate \
        "$bench_dir"/BENCH_crc.json "$bench_dir"/BENCH_trace.json \
        "$bench_dir"/BENCH_memsystem.json "$bench_dir"/BENCH_e2e.json

    echo "== bench --compare regression gate smoke =="
    # Inject a synthetic 2x slowdown; --compare must exit non-zero.
    python3 - "$bench_dir"/BENCH_e2e.json "$bench_dir"/BENCH_e2e_bad.json \
        <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
for b in doc["benchmarks"]:
    b["median"] *= 0.5 if b["better"] == "higher" else 2.0
    b["samples"] = [b["median"]]
json.dump(doc, open(sys.argv[2], "w"), indent=2)
EOF
    if python3 scripts/bench.py --compare "$bench_dir"/BENCH_e2e.json \
        "$bench_dir"/BENCH_e2e_bad.json --fail-threshold 10 \
        > /dev/null; then
        echo "ERROR: --compare did not flag a 2x synthetic regression" >&2
        exit 1
    fi
    echo "synthetic regression correctly rejected"
    # And the identity comparison must pass.
    python3 scripts/bench.py --compare "$bench_dir"/BENCH_e2e.json \
        "$bench_dir"/BENCH_e2e.json > /dev/null
    echo "identity comparison correctly accepted"
}

run_sanitize_pass() {
    echo "== sanitize configure (ASan + UBSan) =="
    cmake -B "$SANITIZE_DIR" -S . -DREGPU_SANITIZE=ON \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DREGPU_BUILD_BENCHES=OFF -DREGPU_BUILD_EXAMPLES=OFF

    echo "== sanitize build =="
    cmake --build "$SANITIZE_DIR" -j"$(nproc)"

    echo "== sanitize ctest (unit) =="
    (cd "$SANITIZE_DIR" && ctest --output-on-failure -j"$(nproc)" -L unit)
}

if [[ "${1:-}" == "--sanitize" ]]; then
    run_sanitize_pass
    echo "== OK =="
    exit 0
fi

if [[ "${1:-}" == "--bench" ]]; then
    echo "== configure =="
    cmake -B "$BUILD_DIR" -S .
    echo "== build =="
    cmake --build "$BUILD_DIR" -j"$(nproc)"
    run_bench_smoke
    echo "== OK =="
    exit 0
fi

LABEL_ARGS=()
if [[ "${1:-}" == "--unit" ]]; then
    LABEL_ARGS=(-L unit)
fi

echo "== configure =="
cmake -B "$BUILD_DIR" -S .

echo "== build =="
cmake --build "$BUILD_DIR" -j"$(nproc)"

echo "== ctest =="
(cd "$BUILD_DIR" && ctest --output-on-failure -j"$(nproc)" "${LABEL_ARGS[@]}")

if [[ "${1:-}" != "--unit" ]]; then
    echo "== suite_cli parallel determinism + traffic-conservation smoke =="
    # --assert-conservation makes every run verify the memory
    # hierarchy's byte accounting (bytes-in == L1 hits + L2 fills +
    # DRAM traffic at every level boundary) and exit non-zero on any
    # violation.
    seq_csv=$(mktemp)
    par_csv=$(mktemp)
    replay_csv=$(mktemp)
    trace_dir=$(mktemp -d)
    trap 'rm -f "$seq_csv" "$par_csv" "$replay_csv"; rm -rf "$trace_dir"' EXIT
    "$BUILD_DIR"/suite_cli --workload all --tech base,re --frames 6 \
        --width 256 --height 160 --quiet --csv "$seq_csv" --jobs 1 \
        --record-dir "$trace_dir" --assert-conservation
    "$BUILD_DIR"/suite_cli --workload all --tech base,re --frames 6 \
        --width 256 --height 160 --quiet --csv "$par_csv" --jobs 4 \
        --assert-conservation
    cmp "$seq_csv" "$par_csv"
    echo "parallel sweep CSV is bit-identical to sequential"

    echo "== trace record->verify->replay smoke =="
    "$BUILD_DIR"/trace_cli verify "$trace_dir"/*.rgputrace
    "$BUILD_DIR"/suite_cli --workload all --tech base,re --frames 6 \
        --width 256 --height 160 --quiet --csv "$replay_csv" --jobs 4 \
        --replay-dir "$trace_dir" --assert-conservation
    cmp "$seq_csv" "$replay_csv"
    echo "trace replay CSV is bit-identical to the live run"

    echo "== micro_memsystem hierarchy-walk smoke =="
    "$BUILD_DIR"/micro_memsystem --accesses 200000 --mix-frames 4

    run_sanitize_pass
fi

echo "== OK =="
