#!/usr/bin/env bash
#
# Tier-1 verification — the CI entry point.
#
# Configures, builds (-Wall -Wextra -Wshadow -Wnon-virtual-dtor,
# warnings are the build's problem to stay clean of), runs every
# registered ctest suite, and finishes with three smokes: a suite_cli
# determinism pass (a parallel sweep must emit a CSV bit-identical to
# the sequential one), a tile worker pool determinism pass (the same
# sweep must be bit-identical across --tile-jobs 1/4/8, with the
# observability sink off and on) and a trace record->verify->replay
# pass (replaying a recorded trace must emit a CSV bit-identical to
# the live run, and trace_cli verify must hold).
#
# Static & concurrency analysis gates:
#  - scripts/lint.py (repo-invariant linter) and scripts/analyze.py
#    (whole-repo architecture analyzer: layering DAG, header hygiene,
#    stat-name and CSV/JSON schema cross-checks) are stdlib-only and
#    run UNCONDITIONALLY in every pass, --self-tests first — they
#    need no toolchain and catch the PR 2/4/6 bug classes plus
#    cross-file drift (phantom stats, schema/README divergence,
#    forbidden layer edges) mechanically.
#  - clang-tidy (--tidy) is a ZERO-warning gate over src/, bench/,
#    examples/ and tests/ using the committed .clang-tidy (plus the
#    narrowing-conversion overlays on the serialization paths). When
#    clang-tidy is not installed it SKIPS with a loud warning instead
#    of failing, so bare containers still get the rest of tier-1.
#  - clang -Werror=thread-safety (--tsa) compiles the annotated tree
#    (common/thread_annotations.hh capability annotations on every
#    mutex-guarded structure) with -DREGPU_THREAD_SAFETY=ON, proving
#    the lock discipline at compile time. Same loud-skip policy when
#    clang++ is absent.
#  - ASan+UBSan (-DREGPU_SANITIZE=address) re-runs the unit suites;
#    TSan (-DREGPU_SANITIZE=thread) runs the ParallelRunner
#    determinism + contention-stress suites plus the observability
#    suite (per-thread ring attach/park under an 8-worker pool).
#    test_parallel_stress includes the TilePoolStress suites, so the
#    intra-frame tile worker pool — including outer sweep workers
#    crossed with inner tile workers — is TSan-checked automatically.
#
# Every run ends with a gate summary table: per gate, whether it ran,
# was skipped (and why), failed, or was not part of the invoked flow.
#
# Usage:
#   scripts/check.sh             # full tier-1 (lint, analyze, build,
#                                # ctest, smokes, tidy, tsa, sanitize
#                                # + tsan passes)
#   scripts/check.sh --unit      # configure + build + unit tests only
#   scripts/check.sh --lint      # repo-invariant linter only
#   scripts/check.sh --analyze   # architecture analyzer only
#   scripts/check.sh --tidy      # clang-tidy zero-warning gate only
#   scripts/check.sh --tsa       # clang thread-safety analysis only
#   scripts/check.sh --tsan      # TSan build + parallel suites only
#   scripts/check.sh --sanitize  # ASan+UBSan build + unit tests only
#   scripts/check.sh --bench     # bench-harness smoke: one S-profile
#                                # pass, schema-validate BENCH_*.json,
#                                # prove --compare fails on a synthetic
#                                # regression (timings NOT gated)
#   scripts/check.sh --obs       # observability smoke: sweep with
#                                # --obs-dir, validate the timeline
#                                # JSON / per-frame JSONL / heatmap
#                                # artifacts, and prove stdout+CSV are
#                                # byte-identical with obs on/off for
#                                # --jobs 1 and 8
#
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build
SANITIZE_DIR=build-sanitize
TSAN_DIR=build-tsan
TSA_DIR=build-tsa

# --- gate summary -----------------------------------------------------------
#
# Every pass function marks its gate: FAILED on entry, ran on clean
# completion, skipped(reason) when a tool is absent. Because set -e
# aborts the script inside a failing pass, whatever gate is still
# marked FAILED at EXIT is the one that sank the run. The table prints
# from the EXIT trap, after tmpfile cleanup, success or not.
GATE_ORDER=(lint analyze build ctest smokes obs tidy tsa asan tsan bench)
declare -A GATE_STATUS
for g in "${GATE_ORDER[@]}"; do GATE_STATUS[$g]="not run"; done

gate_begin() { GATE_STATUS[$1]="FAILED"; }
gate_end()   { GATE_STATUS[$1]="ran"; }
gate_skip()  { GATE_STATUS[$1]="skipped ($2)"; }

CLEANUP_PATHS=()

print_gate_summary() {
    local g touched=0
    for g in "${GATE_ORDER[@]}"; do
        [[ "${GATE_STATUS[$g]}" != "not run" ]] && touched=1
    done
    # Nothing started (e.g. usage error): no table.
    [[ $touched -eq 1 ]] || return 0
    echo
    echo "== gate summary =="
    printf '  %-9s %s\n' "gate" "status"
    printf '  %-9s %s\n' "----" "------"
    for g in "${GATE_ORDER[@]}"; do
        printf '  %-9s %s\n' "$g" "${GATE_STATUS[$g]}"
    done
}

on_exit() {
    rm -rf ${CLEANUP_PATHS[@]+"${CLEANUP_PATHS[@]}"}
    print_gate_summary
}
trap on_exit EXIT

run_lint_pass() {
    gate_begin lint
    echo "== lint.py self-test + repo-invariant lint =="
    python3 scripts/lint.py --self-test
    python3 scripts/lint.py
    gate_end lint
}

run_analyze_pass() {
    gate_begin analyze
    echo "== analyze.py self-test + whole-repo architecture analysis =="
    python3 scripts/analyze.py --self-test
    python3 scripts/analyze.py
    gate_end analyze
}

run_tidy_pass() {
    gate_begin tidy
    echo "== clang-tidy zero-warning gate =="
    local tidy=""
    for cand in clang-tidy clang-tidy-21 clang-tidy-20 clang-tidy-19 \
                clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                clang-tidy-15; do
        if command -v "$cand" > /dev/null 2>&1; then
            tidy=$cand
            break
        fi
    done
    if [[ -z "$tidy" ]]; then
        echo "#########################################################" >&2
        echo "## WARNING: clang-tidy is NOT installed — SKIPPING the ##" >&2
        echo "## zero-warning tidy gate. Install clang-tidy to run   ##" >&2
        echo "## the full static-analysis tier.                      ##" >&2
        echo "#########################################################" >&2
        gate_skip tidy "clang-tidy not installed"
        return 0
    fi

    # The gate runs over every TU the build actually compiles (the
    # compilation database is exported unconditionally), filtered to
    # repo sources so fetched third-party TUs are never linted.
    cmake -B "$BUILD_DIR" -S . > /dev/null
    local tu_list
    tu_list=$(python3 - "$PWD" "$BUILD_DIR/compile_commands.json" <<'EOF'
import json, os, sys
root, db = sys.argv[1], sys.argv[2]
dirs = tuple(os.path.join(root, d) + os.sep
             for d in ("src", "bench", "examples", "tests"))
files = sorted({e["file"] for e in json.load(open(db))})
print("\n".join(f for f in files if f.startswith(dirs)))
EOF
)
    if [[ -z "$tu_list" ]]; then
        echo "ERROR: no repo TUs found in compile_commands.json" >&2
        exit 1
    fi
    # .clang-tidy sets WarningsAsErrors: '*', so any diagnostic makes
    # clang-tidy (and thus xargs) exit non-zero.
    echo "$tu_list" | xargs -P "$(nproc)" -n 4 \
        "$tidy" -p "$BUILD_DIR" --quiet
    echo "clang-tidy: zero warnings over $(echo "$tu_list" | wc -l) TUs"
    gate_end tidy
}

run_tsa_pass() {
    gate_begin tsa
    echo "== clang -Werror=thread-safety lock-discipline gate =="
    local clangxx=""
    for cand in clang++ clang++-21 clang++-20 clang++-19 clang++-18 \
                clang++-17 clang++-16 clang++-15; do
        if command -v "$cand" > /dev/null 2>&1; then
            clangxx=$cand
            break
        fi
    done
    if [[ -z "$clangxx" ]]; then
        echo "#########################################################" >&2
        echo "## WARNING: clang++ is NOT installed — SKIPPING the    ##" >&2
        echo "## -Werror=thread-safety gate. The REGPU_GUARDED_BY /  ##" >&2
        echo "## REGPU_EXCLUDES annotations compile as no-ops under  ##" >&2
        echo "## gcc; install clang++ to verify the lock discipline. ##" >&2
        echo "#########################################################" >&2
        gate_skip tsa "clang++ not installed"
        return 0
    fi

    # Library + benches + examples cover every annotated TU; tests
    # stay off so the gate never depends on gtest building under a
    # second toolchain.
    echo "== thread-safety configure ($clangxx, REGPU_THREAD_SAFETY=ON) =="
    cmake -B "$TSA_DIR" -S . -DCMAKE_CXX_COMPILER="$clangxx" \
        -DREGPU_THREAD_SAFETY=ON -DREGPU_BUILD_TESTS=OFF

    echo "== thread-safety build (-Werror=thread-safety) =="
    cmake --build "$TSA_DIR" -j"$(nproc)"
    echo "thread-safety analysis: zero warnings"
    gate_end tsa
}

run_tsan_pass() {
    gate_begin tsan
    echo "== TSan configure (-DREGPU_SANITIZE=thread) =="
    cmake -B "$TSAN_DIR" -S . -DREGPU_SANITIZE=thread \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DREGPU_BUILD_BENCHES=OFF -DREGPU_BUILD_EXAMPLES=OFF

    echo "== TSan build (parallel runner + stress + obs suites) =="
    cmake --build "$TSAN_DIR" -j"$(nproc)" \
        --target test_parallel_runner test_parallel_stress test_obs

    echo "== TSan ctest (determinism + contention stress + obs rings) =="
    (cd "$TSAN_DIR" \
         && ctest --output-on-failure \
                  -R '^(test_parallel_runner|test_parallel_stress|test_obs)$')
    gate_end tsan
}

run_sanitize_pass() {
    gate_begin asan
    echo "== sanitize configure (ASan + UBSan) =="
    cmake -B "$SANITIZE_DIR" -S . -DREGPU_SANITIZE=address \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DREGPU_BUILD_BENCHES=OFF -DREGPU_BUILD_EXAMPLES=OFF

    echo "== sanitize build =="
    cmake --build "$SANITIZE_DIR" -j"$(nproc)"

    echo "== sanitize ctest (unit) =="
    (cd "$SANITIZE_DIR" && ctest --output-on-failure -j"$(nproc)" -L unit)
    gate_end asan
}

run_bench_smoke() {
    gate_begin bench
    echo "== bench harness smoke (S profile, 1 repeat; timings non-gating) =="
    local bench_dir
    bench_dir=$(mktemp -d)
    trap 'rm -rf "$bench_dir"' RETURN
    python3 scripts/bench.py --profile S --repeat 1 --warmup 0 \
        --build-dir "$BUILD_DIR" --no-build --out-dir "$bench_dir"
    python3 scripts/bench.py --validate \
        "$bench_dir"/BENCH_crc.json "$bench_dir"/BENCH_trace.json \
        "$bench_dir"/BENCH_memsystem.json "$bench_dir"/BENCH_e2e.json

    echo "== bench --compare regression gate smoke =="
    # Inject a synthetic 2x slowdown; --compare must exit non-zero.
    python3 - "$bench_dir"/BENCH_e2e.json "$bench_dir"/BENCH_e2e_bad.json \
        <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
for b in doc["benchmarks"]:
    b["median"] *= 0.5 if b["better"] == "higher" else 2.0
    b["samples"] = [b["median"]]
json.dump(doc, open(sys.argv[2], "w"), indent=2)
EOF
    if python3 scripts/bench.py --compare "$bench_dir"/BENCH_e2e.json \
        "$bench_dir"/BENCH_e2e_bad.json --fail-threshold 10 \
        > /dev/null; then
        echo "ERROR: --compare did not flag a 2x synthetic regression" >&2
        exit 1
    fi
    echo "synthetic regression correctly rejected"
    # And the identity comparison must pass.
    python3 scripts/bench.py --compare "$bench_dir"/BENCH_e2e.json \
        "$bench_dir"/BENCH_e2e.json > /dev/null
    echo "identity comparison correctly accepted"
    gate_end bench
}

run_obs_smoke() {
    gate_begin obs
    echo "== observability smoke (--obs-dir artifacts + byte-identity) =="
    local obs_tmp
    obs_tmp=$(mktemp -d)
    trap 'rm -rf "$obs_tmp"' RETURN

    # Same CSV path for every run so the "wrote ..." stdout lines
    # match; the determinism contract is that enabling observability
    # (timeline + tile detail + artifacts) changes NEITHER stdout nor
    # the CSV, at any worker count.
    "$BUILD_DIR"/suite_cli --workload ccs --tech base,re --frames 4 \
        --width 256 --height 160 --csv "$obs_tmp/out.csv" \
        > "$obs_tmp/base.stdout" 2> /dev/null
    cp "$obs_tmp/out.csv" "$obs_tmp/base.csv"
    "$BUILD_DIR"/suite_cli --workload ccs --tech base,re --frames 4 \
        --width 256 --height 160 --csv "$obs_tmp/out.csv" \
        --obs-dir "$obs_tmp/obs1" --obs-tiles --progress \
        > "$obs_tmp/obs1.stdout" 2> /dev/null
    cmp "$obs_tmp/base.stdout" "$obs_tmp/obs1.stdout"
    cmp "$obs_tmp/base.csv" "$obs_tmp/out.csv"
    "$BUILD_DIR"/suite_cli --workload ccs --tech base,re --frames 4 \
        --width 256 --height 160 --csv "$obs_tmp/out.csv" \
        --obs-dir "$obs_tmp/obs8" --jobs 8 \
        > "$obs_tmp/obs8.stdout" 2> /dev/null
    cmp "$obs_tmp/base.stdout" "$obs_tmp/obs8.stdout"
    cmp "$obs_tmp/base.csv" "$obs_tmp/out.csv"
    echo "stdout+CSV byte-identical with obs off/on, --jobs 1 and 8"

    # Artifact validation: the timeline must be loadable JSON in
    # trace-event form, the JSONL must carry one object per frame,
    # and heatmap dimensions must match the 256x160/16 => 16x10 grid.
    python3 - "$obs_tmp/obs1" <<'EOF'
import json, sys
d = sys.argv[1]

t = json.load(open(d + "/timeline.trace.json"))
events = t["traceEvents"]
assert events, "empty timeline"
for e in events:
    for field in ("name", "ph", "pid", "tid", "ts"):
        assert field in e, f"event missing {field}: {e}"
phases = {e["ph"] for e in events}
assert "X" in phases and "C" in phases and "M" in phases, phases
spans = {e["name"] for e in events if e["ph"] == "X"}
for expected in ("run", "frame", "geometry", "raster", "tile"):
    assert expected in spans, f"no '{expected}' span: {sorted(spans)}"

for tag in ("ccs.Baseline", "ccs.RE"):
    lines = open(f"{d}/{tag}.frames.jsonl").read().splitlines()
    assert len(lines) == 4, f"{tag}: {len(lines)} JSONL lines, want 4"
    for i, line in enumerate(lines):
        obj = json.loads(line)
        assert obj["frame"] == i and obj["tag"] == tag
        assert obj["counters"]["frames"] == 1, "not delta-valued"
    for metric in ("re", "te", "dram"):
        rows = open(f"{d}/{tag}.heat.{metric}.csv").read().splitlines()
        assert rows[0] == "frame,tileX,tileY,value"
        assert len(rows) == 1 + 4 * 16 * 10, f"{tag}.{metric}: {len(rows)}"
        header = open(f"{d}/{tag}.{metric}.total.ppm", "rb").read(20)
        assert header.startswith(b"P6\n16 10\n255\n"), header
print("obs artifacts validated: timeline, JSONL, heatmaps")
EOF
    gate_end obs
}

run_build_pass() {
    gate_begin build
    echo "== configure =="
    cmake -B "$BUILD_DIR" -S .
    echo "== build =="
    cmake --build "$BUILD_DIR" -j"$(nproc)"
    gate_end build
}

case "${1:-}" in
  --lint)
    run_lint_pass
    echo "== OK =="
    exit 0
    ;;
  --analyze)
    run_analyze_pass
    echo "== OK =="
    exit 0
    ;;
  --tidy)
    run_tidy_pass
    echo "== OK =="
    exit 0
    ;;
  --tsa)
    run_tsa_pass
    echo "== OK =="
    exit 0
    ;;
  --tsan)
    run_tsan_pass
    echo "== OK =="
    exit 0
    ;;
  --sanitize)
    run_sanitize_pass
    echo "== OK =="
    exit 0
    ;;
  --bench)
    run_lint_pass
    run_analyze_pass
    run_build_pass
    run_bench_smoke
    echo "== OK =="
    exit 0
    ;;
  --obs)
    run_lint_pass
    run_analyze_pass
    run_build_pass
    run_obs_smoke
    echo "== OK =="
    exit 0
    ;;
esac

LABEL_ARGS=()
if [[ "${1:-}" == "--unit" ]]; then
    LABEL_ARGS=(-L unit)
fi

# The linter and analyzer need no toolchain: they gate every pass,
# before the build.
run_lint_pass
run_analyze_pass

run_build_pass

gate_begin ctest
echo "== ctest =="
(cd "$BUILD_DIR" && ctest --output-on-failure -j"$(nproc)" "${LABEL_ARGS[@]}")
gate_end ctest

if [[ "${1:-}" != "--unit" ]]; then
    gate_begin smokes
    echo "== suite_cli parallel determinism + traffic-conservation smoke =="
    # --assert-conservation makes every run verify the memory
    # hierarchy's byte accounting (bytes-in == L1 hits + L2 fills +
    # DRAM traffic at every level boundary) and exit non-zero on any
    # violation.
    seq_csv=$(mktemp)
    par_csv=$(mktemp)
    replay_csv=$(mktemp)
    trace_dir=$(mktemp -d)
    CLEANUP_PATHS+=("$seq_csv" "$par_csv" "$replay_csv" "$trace_dir")
    "$BUILD_DIR"/suite_cli --workload all --tech base,re --frames 6 \
        --width 256 --height 160 --quiet --csv "$seq_csv" --jobs 1 \
        --record-dir "$trace_dir" --assert-conservation
    "$BUILD_DIR"/suite_cli --workload all --tech base,re --frames 6 \
        --width 256 --height 160 --quiet --csv "$par_csv" --jobs 4 \
        --assert-conservation
    cmp "$seq_csv" "$par_csv"
    echo "parallel sweep CSV is bit-identical to sequential"

    echo "== tile worker pool determinism smoke (--tile-jobs 1/4/8, obs on/off) =="
    # The intra-frame pool's contract: tile-parallel rendering is
    # byte-identical to the serial pipeline for any worker count,
    # with observability both off and on (the obs run also exercises
    # the per-worker gpu.tileWorker spans).
    tile1_csv=$(mktemp)
    tile4_csv=$(mktemp)
    tile8_csv=$(mktemp)
    tile_obs_dir=$(mktemp -d)
    CLEANUP_PATHS+=("$tile1_csv" "$tile4_csv" "$tile8_csv" "$tile_obs_dir")
    "$BUILD_DIR"/suite_cli --workload ccs --tech base,re,te --frames 4 \
        --width 256 --height 160 --quiet --csv "$tile1_csv" \
        --tile-jobs 1
    "$BUILD_DIR"/suite_cli --workload ccs --tech base,re,te --frames 4 \
        --width 256 --height 160 --quiet --csv "$tile4_csv" \
        --tile-jobs 4 2> /dev/null
    "$BUILD_DIR"/suite_cli --workload ccs --tech base,re,te --frames 4 \
        --width 256 --height 160 --quiet --csv "$tile8_csv" \
        --tile-jobs 8 --obs-dir "$tile_obs_dir" 2> /dev/null
    cmp "$tile1_csv" "$tile4_csv"
    cmp "$tile1_csv" "$tile8_csv"
    grep -q '"tileWorker"' "$tile_obs_dir"/timeline.trace.json
    echo "tile-pool CSV is bit-identical across --tile-jobs 1/4/8 (obs on/off)"

    echo "== trace record->verify->replay smoke =="
    "$BUILD_DIR"/trace_cli verify "$trace_dir"/*.rgputrace
    "$BUILD_DIR"/suite_cli --workload all --tech base,re --frames 6 \
        --width 256 --height 160 --quiet --csv "$replay_csv" --jobs 4 \
        --replay-dir "$trace_dir" --assert-conservation
    cmp "$seq_csv" "$replay_csv"
    echo "trace replay CSV is bit-identical to the live run"

    echo "== micro_memsystem hierarchy-walk smoke =="
    "$BUILD_DIR"/micro_memsystem --accesses 200000 --mix-frames 4
    gate_end smokes

    run_obs_smoke
    run_tidy_pass
    run_tsa_pass
    run_sanitize_pass
    run_tsan_pass
fi

echo "== OK =="
