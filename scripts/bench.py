#!/usr/bin/env python3
"""One-command benchmark harness for the regpu repo.

Runs every perf surface under a size profile, aggregates repeated runs
into medians with spreads, captures environment metadata, and writes
canonical ``BENCH_<area>.json`` artifacts at the repo root — the
persisted perf trajectory every "make it faster" PR is judged against.

Areas:
  crc        micro_crc via google-benchmark ``--benchmark_format=json``
             (gracefully skipped when google-benchmark isn't built)
  trace      micro_trace --json   (generate vs replay frames/s)
  memsystem  micro_memsystem --json (hierarchy-walk accesses/s)
  e2e        micro_pipeline --json (end-to-end frames/s) plus a
             suite_cli sweep timed by this harness (works for any
             revision, even ones predating --timing-json)

Usage:
  scripts/bench.py --profile S --repeat 3          # measure + write
  scripts/bench.py --compare OLD.json NEW.json     # leaderboard
  scripts/bench.py --git-commit v1.0 --repeat 3    # old rev worktree
  scripts/bench.py --validate BENCH_*.json         # schema check
  scripts/bench.py --self-test                     # harness unit tests

Exit codes: 0 ok; 1 regression beyond --fail-threshold or validation
failure; 2 usage/environment error.
"""

import argparse
import json
import math
import os
import re
import shutil
import statistics
import subprocess
import sys
import tempfile
import time

SCHEMA_VERSION = 1
AREAS = ["crc", "trace", "memsystem", "e2e"]

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

PROFILES = {
    "S": {
        "width": 256, "height": 160, "frames": 4,
        "accesses": 400_000, "mix_frames": 4,
        "trace_frames": 4, "techs": "base,re",
        "crc_min_time": "0.05",
    },
    "M": {
        "width": 598, "height": 384, "frames": 10,
        "accesses": 2_000_000, "mix_frames": 8,
        "trace_frames": 10, "techs": "base,re,te,memo",
        "crc_min_time": "0.2",
    },
    "L": {
        "width": 1196, "height": 768, "frames": 30,
        "accesses": 8_000_000, "mix_frames": 8,
        "trace_frames": 30, "techs": "base,re,te,memo",
        "crc_min_time": "0.5",
    },
}


def log(msg):
    print(f"[bench] {msg}", flush=True)


def die(msg, code=2):
    print(f"[bench] error: {msg}", file=sys.stderr, flush=True)
    sys.exit(code)


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------

def aggregate_samples(samples):
    """Median and relative spread of a non-empty sample list.

    spreadPct is (max - min) / |median| * 100 — a plain, scale-free
    dispersion number that flags noisy measurements in the committed
    artifact (0 when the median is 0).
    """
    if not samples:
        raise ValueError("aggregate_samples needs at least one sample")
    med = statistics.median(samples)
    spread = 0.0
    if med != 0:
        spread = (max(samples) - min(samples)) / abs(med) * 100.0
    return med, spread


def aggregate_runs(runs):
    """Fold per-run benchmark dicts into canonical benchmark entries.

    ``runs`` is a list of dicts name -> {"unit", "better", "value"};
    a benchmark missing from some runs keeps the samples it has.
    Returns a name-sorted list of canonical entries.
    """
    by_name = {}
    for run in runs:
        for name, rec in run.items():
            slot = by_name.setdefault(
                name, {"unit": rec["unit"], "better": rec["better"],
                       "samples": []})
            if slot["unit"] != rec["unit"] or slot["better"] != rec["better"]:
                raise ValueError(
                    f"benchmark '{name}' changed unit/direction across runs")
            slot["samples"].append(float(rec["value"]))
    out = []
    for name in sorted(by_name):
        slot = by_name[name]
        median, spread = aggregate_samples(slot["samples"])
        out.append({
            "name": name,
            "unit": slot["unit"],
            "better": slot["better"],
            "median": median,
            "spreadPct": spread,
            "samples": slot["samples"],
        })
    return out


# ---------------------------------------------------------------------------
# Schema
# ---------------------------------------------------------------------------

def validate_doc(doc, path="<doc>"):
    """Validate one canonical BENCH document. Returns a list of
    problems (empty when valid)."""
    problems = []

    def check(cond, msg):
        if not cond:
            problems.append(f"{path}: {msg}")
        return cond

    if not check(isinstance(doc, dict), "top level is not an object"):
        return problems
    required = ["schemaVersion", "area", "profile", "repeat", "warmup",
                "environment", "benchmarks"]
    for key in required:
        check(key in doc, f"missing key '{key}'")
    if problems:
        return problems

    check(doc["schemaVersion"] == SCHEMA_VERSION,
          f"schemaVersion {doc['schemaVersion']} != {SCHEMA_VERSION}")
    check(doc["area"] in AREAS, f"unknown area '{doc['area']}'")
    check(doc["profile"] in PROFILES,
          f"unknown profile '{doc['profile']}'")
    check(isinstance(doc["repeat"], int) and doc["repeat"] >= 1,
          "repeat must be an int >= 1")
    check(isinstance(doc["warmup"], int) and doc["warmup"] >= 0,
          "warmup must be an int >= 0")
    if "skipped" in doc:
        check(isinstance(doc["skipped"], str) and doc["skipped"],
              "skipped must be a non-empty string")

    env = doc["environment"]
    if check(isinstance(env, dict), "environment is not an object"):
        for key in ["commit", "compiler", "flags", "cpuModel",
                    "coreCount", "governor"]:
            check(key in env, f"environment missing '{key}'")
        if "coreCount" in env:
            check(isinstance(env["coreCount"], int)
                  and env["coreCount"] >= 1,
                  "coreCount must be an int >= 1")

    benches = doc["benchmarks"]
    if not check(isinstance(benches, list), "benchmarks is not a list"):
        return problems
    if "skipped" not in doc:
        check(len(benches) >= 1,
              "non-skipped document has no benchmarks")
    names = []
    for i, b in enumerate(benches):
        where = f"benchmarks[{i}]"
        if not check(isinstance(b, dict), f"{where} is not an object"):
            continue
        for key in ["name", "unit", "better", "median", "spreadPct",
                    "samples"]:
            check(key in b, f"{where} missing '{key}'")
        if any(key not in b for key in
               ["name", "unit", "better", "median", "spreadPct",
                "samples"]):
            continue
        names.append(b["name"])
        check(b["better"] in ("lower", "higher"),
              f"{where} bad better '{b['better']}'")
        check(isinstance(b["median"], (int, float))
              and math.isfinite(b["median"]),
              f"{where} median not a finite number")
        check(isinstance(b["samples"], list) and b["samples"]
              and all(isinstance(s, (int, float)) and math.isfinite(s)
                      for s in b["samples"]),
              f"{where} samples not a non-empty finite-number list")
    check(names == sorted(names), "benchmarks not sorted by name")
    check(len(names) == len(set(names)), "duplicate benchmark names")
    return problems


def canonical_doc(area, profile, repeat, warmup, environment,
                  benchmarks, skipped=None):
    """Assemble a canonical document with stable key order."""
    doc = {
        "schemaVersion": SCHEMA_VERSION,
        "area": area,
        "profile": profile,
        "repeat": repeat,
        "warmup": warmup,
    }
    if skipped:
        doc["skipped"] = skipped
    doc["environment"] = environment
    doc["benchmarks"] = sorted(benchmarks, key=lambda b: b["name"])
    return doc


def write_doc(doc, path):
    problems = validate_doc(doc, path)
    if problems:
        die("refusing to write invalid document:\n  "
            + "\n  ".join(problems), 1)
    with open(path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    log(f"wrote {os.path.relpath(path, REPO_ROOT)} "
        f"({len(doc['benchmarks'])} benchmarks"
        + (f", skipped: {doc['skipped']}" if "skipped" in doc else "")
        + ")")


# ---------------------------------------------------------------------------
# Environment metadata
# ---------------------------------------------------------------------------

def read_first_match(path, pattern):
    try:
        with open(path) as f:
            for line in f:
                m = re.match(pattern, line)
                if m:
                    return m.group(1).strip()
    except OSError:
        pass
    return None


def git_output(args, cwd=REPO_ROOT):
    try:
        return subprocess.run(
            ["git"] + args, cwd=cwd, capture_output=True, text=True,
            check=True).stdout.strip()
    except (subprocess.CalledProcessError, FileNotFoundError):
        return None


def collect_environment(build_dir, source_dir=REPO_ROOT):
    commit = git_output(["rev-parse", "--short=12", "HEAD"],
                        cwd=source_dir) or "unknown"
    dirty = git_output(["status", "--porcelain"], cwd=source_dir)
    if dirty:
        commit += " (dirty)"

    compiler = "unknown"
    flags = "unknown"
    cache = os.path.join(build_dir, "CMakeCache.txt")
    cxx = read_first_match(cache, r"CMAKE_CXX_COMPILER:\w+=(.*)")
    if cxx:
        try:
            version = subprocess.run(
                [cxx, "--version"], capture_output=True, text=True,
                check=True).stdout.splitlines()[0]
            compiler = version
        except (subprocess.CalledProcessError, FileNotFoundError,
                IndexError):
            compiler = cxx
    build_type = read_first_match(
        cache, r"CMAKE_BUILD_TYPE:\w+=(.*)") or "unknown"
    release_flags = read_first_match(
        cache, r"CMAKE_CXX_FLAGS_RELEASE:\w+=(.*)") or ""
    flags = f"{build_type} {release_flags}".strip()

    cpu_model = read_first_match(
        "/proc/cpuinfo", r"model name\s*:\s*(.*)") or "unknown"
    governor = read_first_match(
        "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor",
        r"(.*)") or "unknown"

    return {
        "commit": commit,
        "compiler": compiler,
        "flags": flags,
        "cpuModel": cpu_model,
        "coreCount": os.cpu_count() or 1,
        "governor": governor,
    }


# ---------------------------------------------------------------------------
# Running the perf surfaces
# ---------------------------------------------------------------------------

def pin_prefix(pin):
    if pin and shutil.which("taskset"):
        return ["taskset", "-c", "0"]
    return []


def run_command(cmd, timeout=1800):
    """Run a measurement command; return (ok, seconds, stdout+stderr)."""
    t0 = time.monotonic()
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=timeout)
    except FileNotFoundError:
        return False, 0.0, f"binary not found: {cmd[0]}"
    except subprocess.TimeoutExpired:
        return False, 0.0, f"timed out after {timeout}s"
    seconds = time.monotonic() - t0
    output = proc.stdout + proc.stderr
    return proc.returncode == 0, seconds, output


def load_single_run_doc(path):
    """Parse one bench_json.hh document into name -> record."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc["benchmarks"]:
        out[b["name"]] = {"unit": b["unit"], "better": b["better"],
                          "value": float(b["value"])}
    return out


def parse_google_benchmark(text):
    """google-benchmark --benchmark_format=json -> name -> record."""
    doc = json.loads(text)
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b["name"]
        unit = b.get("time_unit", "ns")
        out[f"crc.{name}.realTime"] = {
            "unit": unit, "better": "lower",
            "value": float(b["real_time"])}
        if "bytes_per_second" in b:
            out[f"crc.{name}.bytesPerSecond"] = {
                "unit": "bytes/s", "better": "higher",
                "value": float(b["bytes_per_second"])}
    return out


class AreaRunner:
    """Runs one area's measurement commands against one build dir."""

    def __init__(self, build_dir, profile_name, pin, scratch):
        self.build_dir = build_dir
        self.profile = PROFILES[profile_name]
        self.profile_name = profile_name
        self.pin = pin
        self.scratch = scratch

    def binary(self, name):
        return os.path.join(self.build_dir, name)

    def _tmp(self, name):
        return os.path.join(self.scratch, name)

    def run_crc(self):
        bin_path = self.binary("micro_crc")
        if not os.path.exists(bin_path):
            return None, "google-benchmark not built (micro_crc missing)"
        cmd = pin_prefix(self.pin) + [
            bin_path, "--benchmark_format=json",
            f"--benchmark_min_time={self.profile['crc_min_time']}"]
        ok, _, output = run_command(cmd)
        if not ok:
            return None, f"micro_crc failed: {output[-300:]}"
        try:
            return parse_google_benchmark(output), None
        except (json.JSONDecodeError, KeyError) as e:
            return None, f"micro_crc output unparseable: {e}"

    def run_trace(self):
        out = self._tmp("trace.json")
        cmd = pin_prefix(self.pin) + [
            self.binary("micro_trace"),
            "--frames", str(self.profile["trace_frames"]),
            "--json", out]
        ok, _, output = run_command(cmd)
        if not ok:
            return None, f"micro_trace failed: {output[-300:]}"
        try:
            return load_single_run_doc(out), None
        except (OSError, json.JSONDecodeError, KeyError) as e:
            return None, f"micro_trace --json unsupported: {e}"

    def run_memsystem(self):
        out = self._tmp("memsystem.json")
        cmd = pin_prefix(self.pin) + [
            self.binary("micro_memsystem"),
            "--accesses", str(self.profile["accesses"]),
            "--mix-frames", str(self.profile["mix_frames"]),
            "--json", out]
        ok, _, output = run_command(cmd)
        if not ok:
            return None, f"micro_memsystem failed: {output[-300:]}"
        try:
            return load_single_run_doc(out), None
        except (OSError, json.JSONDecodeError, KeyError) as e:
            return None, f"micro_memsystem --json unsupported: {e}"

    def run_e2e(self):
        p = self.profile
        records = {}

        # micro_pipeline: per-cell and total frames/s (new in this
        # harness's revision; degrade without it).
        out = self._tmp("pipeline.json")
        cmd = pin_prefix(self.pin) + [
            self.binary("micro_pipeline"),
            "--workload", "all", "--tech", p["techs"],
            "--frames", str(p["frames"]),
            "--width", str(p["width"]), "--height", str(p["height"]),
            "--json", out]
        ok, _, output = run_command(cmd)
        if ok:
            try:
                records.update(load_single_run_doc(out))
            except (OSError, json.JSONDecodeError, KeyError):
                pass

        # micro_pipeline with the observability layer on (timeline +
        # per-frame artifacts): quantifies the tracing-enabled cost
        # next to the default-off pipeline.* numbers. Only the total
        # is kept — per-cell obs numbers add noise, not signal. New
        # in this harness's revision; degrade without --obs-dir.
        out_obs = self._tmp("pipeline_obs.json")
        cmd = pin_prefix(self.pin) + [
            self.binary("micro_pipeline"),
            "--workload", "all", "--tech", p["techs"],
            "--frames", str(p["frames"]),
            "--width", str(p["width"]), "--height", str(p["height"]),
            "--json", out_obs, "--obs-dir", self._tmp("obs_artifacts")]
        ok, _, output = run_command(cmd)
        if ok:
            try:
                doc = load_single_run_doc(out_obs)
                total = doc.get("pipeline.total.framesPerSecond")
                if total:
                    records["pipelineObs.total.framesPerSecond"] = total
            except (OSError, json.JSONDecodeError, KeyError):
                pass

        # suite_cli sweep timed from outside: measures the whole
        # binary (scene gen + sim + report) and works for any
        # revision, including ones predating --timing-json.
        csv_tmp = self._tmp("sweep.csv")
        cmd = pin_prefix(self.pin) + [
            self.binary("suite_cli"),
            "--workload", "all", "--tech", p["techs"],
            "--frames", str(p["frames"]),
            "--width", str(p["width"]), "--height", str(p["height"]),
            "--quiet", "--csv", csv_tmp, "--jobs", "1"]
        ok, seconds, output = run_command(cmd)
        if not ok:
            return None, f"suite_cli failed: {output[-300:]}"
        records["sweep.wallSeconds"] = {
            "unit": "s", "better": "lower", "value": seconds}
        if not records:
            return None, "no e2e records collected"
        return records, None

    def run_area(self, area):
        return {
            "crc": self.run_crc,
            "trace": self.run_trace,
            "memsystem": self.run_memsystem,
            "e2e": self.run_e2e,
        }[area]()


def measure(build_dir, areas, profile_name, repeat, warmup, pin,
            environment, out_dir):
    """Run all areas repeat+warmup times, aggregate, write artifacts.

    Returns {area: doc}.
    """
    docs = {}
    with tempfile.TemporaryDirectory(prefix="regpu-bench-") as scratch:
        runner = AreaRunner(build_dir, profile_name, pin, scratch)
        for area in areas:
            runs = []
            skipped = None
            total = warmup + repeat
            for i in range(total):
                phase = "warmup" if i < warmup else "measure"
                records, why = runner.run_area(area)
                if records is None:
                    skipped = why
                    log(f"area {area}: skipped ({why})")
                    break
                log(f"area {area}: {phase} run {i + 1}/{total} "
                    f"({len(records)} benchmarks)")
                if i >= warmup:
                    runs.append(records)
            benches = aggregate_runs(runs) if not skipped else []
            docs[area] = canonical_doc(
                area, profile_name, repeat, warmup, environment,
                benches, skipped=skipped)
            if out_dir:
                write_doc(docs[area],
                          os.path.join(out_dir, f"BENCH_{area}.json"))
    return docs


# ---------------------------------------------------------------------------
# Compare / leaderboard
# ---------------------------------------------------------------------------

def compare_docs(old_doc, new_doc, threshold_pct):
    """Compare two canonical documents benchmark-by-benchmark.

    Returns (rows, regressions): rows are dicts sorted by severity
    (worst regression first); regressions is the subset whose
    regression exceeds threshold_pct.
    """
    old = {b["name"]: b for b in old_doc.get("benchmarks", [])}
    new = {b["name"]: b for b in new_doc.get("benchmarks", [])}
    rows = []
    for name in sorted(set(old) | set(new)):
        if name not in old or name not in new:
            rows.append({"name": name, "status": "only-in-"
                         + ("new" if name in new else "old"),
                         "regressionPct": 0.0, "deltaPct": 0.0})
            continue
        o, n = old[name], new[name]
        if o["median"] == 0:
            rows.append({"name": name, "status": "old-median-zero",
                         "regressionPct": 0.0, "deltaPct": 0.0})
            continue
        delta_pct = (n["median"] - o["median"]) / abs(o["median"]) * 100
        # Normalize to "positive == got worse" using the declared
        # direction.
        regression_pct = (-delta_pct if n.get("better") == "higher"
                          else delta_pct)
        rows.append({
            "name": name, "status": "ok",
            "unit": n.get("unit", ""),
            "oldMedian": o["median"], "newMedian": n["median"],
            "deltaPct": delta_pct, "regressionPct": regression_pct,
        })
    rows.sort(key=lambda r: -r["regressionPct"])
    regressions = [r for r in rows
                   if r["status"] == "ok"
                   and r["regressionPct"] > threshold_pct]
    return rows, regressions


def print_leaderboard(rows, regressions, threshold_pct, label_old,
                      label_new):
    print(f"\n== regression leaderboard: {label_old} -> {label_new} "
          f"(fail threshold {threshold_pct:.1f}%) ==")
    print(f"{'benchmark':<48} {'old':>14} {'new':>14} "
          f"{'delta%':>8} {'worse%':>8}")
    for r in rows:
        if r["status"] != "ok":
            print(f"{r['name']:<48} {'-':>14} {'-':>14} "
                  f"{'-':>8} {'-':>8}  [{r['status']}]")
            continue
        marker = ""
        if r["regressionPct"] > threshold_pct:
            marker = "  << REGRESSION"
        elif r["regressionPct"] < -threshold_pct:
            marker = "  (improved)"
        print(f"{r['name']:<48} {r['oldMedian']:>14.4g} "
              f"{r['newMedian']:>14.4g} {r['deltaPct']:>+8.2f} "
              f"{r['regressionPct']:>+8.2f}{marker}")
    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed beyond "
              f"{threshold_pct:.1f}%")
    else:
        print("\nno regressions beyond threshold")


def load_doc(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"cannot load {path}: {e}")
    problems = validate_doc(doc, path)
    if problems:
        die("invalid document:\n  " + "\n  ".join(problems), 1)
    return doc


# ---------------------------------------------------------------------------
# Build / worktree
# ---------------------------------------------------------------------------

def build_tree(source_dir, build_dir, targets=None, minimal=False):
    """Configure + build. ``minimal`` (scratch worktrees only) skips
    the test suites; the user's main build dir keeps its own cached
    options untouched."""
    log(f"configure {os.path.relpath(build_dir, REPO_ROOT)}")
    cmake_cmd = ["cmake", "-B", build_dir, "-S", source_dir]
    if minimal:
        cmake_cmd.append("-DREGPU_BUILD_TESTS=OFF")
    run = subprocess.run(cmake_cmd, capture_output=True, text=True)
    if run.returncode != 0:
        die(f"cmake configure failed:\n{run.stdout}\n{run.stderr}")
    cmd = ["cmake", "--build", build_dir,
           f"-j{os.cpu_count() or 1}"]
    for t in targets or []:
        cmd += ["--target", t]
    log("build" + (f" targets: {' '.join(targets)}" if targets else ""))
    run = subprocess.run(cmd, capture_output=True, text=True)
    if run.returncode != 0:
        # Older revisions may not know a requested target (e.g.
        # micro_pipeline); fall back to a full build.
        if targets:
            return build_tree(source_dir, build_dir, targets=None,
                              minimal=minimal)
        die(f"build failed:\n{run.stdout[-2000:]}\n{run.stderr[-2000:]}")


BENCH_TARGETS = ["suite_cli", "micro_trace", "micro_memsystem",
                 "micro_pipeline", "micro_crc"]


def measure_git_revision(rev, areas, profile_name, repeat, warmup, pin,
                         keep_worktree):
    """Build `rev` in a scratch git worktree and measure it there."""
    worktree = tempfile.mkdtemp(prefix="regpu-bench-worktree-")
    # mkdtemp creates the directory; git worktree add wants to own it.
    os.rmdir(worktree)
    log(f"adding worktree for {rev} at {worktree}")
    run = subprocess.run(
        ["git", "worktree", "add", "--detach", worktree, rev],
        cwd=REPO_ROOT, capture_output=True, text=True)
    if run.returncode != 0:
        die(f"git worktree add failed: {run.stderr.strip()}")
    try:
        build_dir = os.path.join(worktree, "build-bench")
        build_tree(worktree, build_dir, targets=BENCH_TARGETS,
                   minimal=True)
        env = collect_environment(build_dir, source_dir=worktree)
        docs = measure(build_dir, areas, profile_name, repeat, warmup,
                       pin, env, out_dir=None)
        return docs
    finally:
        if keep_worktree:
            log(f"keeping worktree at {worktree}")
        else:
            subprocess.run(
                ["git", "worktree", "remove", "--force", worktree],
                cwd=REPO_ROOT, capture_output=True, text=True)


# ---------------------------------------------------------------------------
# Self-test
# ---------------------------------------------------------------------------

def self_test():
    failures = []

    def check(cond, what):
        if cond:
            print(f"  ok: {what}")
        else:
            failures.append(what)
            print(f"  FAIL: {what}")

    print("== bench.py self-test ==")

    # Median aggregation.
    med, spread = aggregate_samples([3.0, 1.0, 2.0])
    check(med == 2.0, "median of [3,1,2] is 2")
    check(abs(spread - 100.0) < 1e-9, "spread of [3,1,2] is 100%")
    med, spread = aggregate_samples([5.0])
    check(med == 5.0 and spread == 0.0, "single sample: spread 0")
    med, spread = aggregate_samples([0.0, 0.0])
    check(med == 0.0 and spread == 0.0, "zero median: spread 0")

    runs = [
        {"a": {"unit": "s", "better": "lower", "value": 2.0}},
        {"a": {"unit": "s", "better": "lower", "value": 4.0},
         "b": {"unit": "frames/s", "better": "higher", "value": 1.0}},
        {"a": {"unit": "s", "better": "lower", "value": 3.0}},
    ]
    agg = aggregate_runs(runs)
    check([b["name"] for b in agg] == ["a", "b"],
          "aggregate_runs sorts by name")
    check(agg[0]["median"] == 3.0 and agg[0]["samples"] == [2, 4, 3],
          "aggregate_runs keeps samples, medians them")
    check(agg[1]["median"] == 1.0,
          "benchmark present in one run still aggregates")
    try:
        aggregate_runs([
            {"a": {"unit": "s", "better": "lower", "value": 1.0}},
            {"a": {"unit": "ns", "better": "lower", "value": 1.0}}])
        check(False, "unit change across runs rejected")
    except ValueError:
        check(True, "unit change across runs rejected")

    # Schema validation.
    env = {"commit": "abc", "compiler": "g++", "flags": "Release",
           "cpuModel": "test", "coreCount": 1, "governor": "unknown"}
    good = canonical_doc(
        "e2e", "S", 3, 1, env,
        [{"name": "x", "unit": "s", "better": "lower", "median": 1.0,
          "spreadPct": 0.0, "samples": [1.0, 1.0, 1.0]}])
    check(validate_doc(good) == [], "valid document validates")
    check(json.loads(json.dumps(good)) == good,
          "document JSON round-trips")
    check(list(good.keys())[0] == "schemaVersion"
          and list(good.keys())[-1] == "benchmarks",
          "canonical key order is stable")

    bad = dict(good)
    bad["area"] = "nope"
    check(validate_doc(bad) != [], "unknown area rejected")
    bad = dict(good)
    bad["benchmarks"] = [dict(good["benchmarks"][0],
                              median=float("nan"))]
    check(validate_doc(bad) != [], "NaN median rejected")
    bad = dict(good)
    bad["benchmarks"] = [
        dict(good["benchmarks"][0], name="z"),
        dict(good["benchmarks"][0], name="a")]
    check(validate_doc(bad) != [], "unsorted benchmarks rejected")
    bad = dict(good)
    bad["benchmarks"] = []
    check(validate_doc(bad) != [],
          "empty benchmarks without skipped rejected")
    skipped = canonical_doc("crc", "S", 3, 1, env, [],
                            skipped="google-benchmark not built")
    check(validate_doc(skipped) == [],
          "skipped document with empty benchmarks validates")

    # Missing-google-benchmark degradation.
    with tempfile.TemporaryDirectory() as tmp:
        runner = AreaRunner(tmp, "S", pin=False, scratch=tmp)
        records, why = runner.run_crc()
        check(records is None and "micro_crc missing" in why,
              "missing micro_crc degrades to a skip reason")

    # Compare threshold logic, both directions.
    def doc_with(value, better, name="bench.x"):
        return canonical_doc(
            "e2e", "S", 1, 0, env,
            [{"name": name, "unit": "s", "better": better,
              "median": value, "spreadPct": 0.0, "samples": [value]}])

    rows, regs = compare_docs(doc_with(1.0, "lower"),
                              doc_with(1.3, "lower"), 10.0)
    check(len(regs) == 1 and abs(regs[0]["regressionPct"] - 30) < 1e-9,
          "lower-is-better: +30% time beyond 10% threshold fails")
    rows, regs = compare_docs(doc_with(1.0, "lower"),
                              doc_with(1.05, "lower"), 10.0)
    check(regs == [], "lower-is-better: +5% within 10% threshold passes")
    rows, regs = compare_docs(doc_with(100.0, "higher"),
                              doc_with(70.0, "higher"), 10.0)
    check(len(regs) == 1 and abs(regs[0]["regressionPct"] - 30) < 1e-9,
          "higher-is-better: -30% throughput is a regression")
    rows, regs = compare_docs(doc_with(100.0, "higher"),
                              doc_with(130.0, "higher"), 10.0)
    check(regs == [], "higher-is-better: +30% throughput passes")
    rows, regs = compare_docs(doc_with(1.0, "lower", "only.old"),
                              doc_with(1.0, "lower", "only.new"), 10.0)
    check(regs == [] and {r["status"] for r in rows}
          == {"only-in-old", "only-in-new"},
          "disjoint benchmark sets compare without failing")

    print(f"\nself-test: {'FAIL' if failures else 'PASS'} "
          f"({len(failures)} failure(s))")
    return 1 if failures else 0


# ---------------------------------------------------------------------------
# Main
# ---------------------------------------------------------------------------

def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--profile", choices=sorted(PROFILES),
                        default="S")
    parser.add_argument("--repeat", type=int, default=3,
                        help="measured runs per area (median-aggregated)")
    parser.add_argument("--warmup", type=int, default=1,
                        help="discarded warmup runs per area")
    parser.add_argument("--areas", default=",".join(AREAS),
                        help=f"comma list of {','.join(AREAS)}")
    parser.add_argument("--build-dir",
                        default=os.path.join(REPO_ROOT, "build"))
    parser.add_argument("--out-dir", default=REPO_ROOT,
                        help="where BENCH_*.json are written")
    parser.add_argument("--no-build", action="store_true",
                        help="reuse existing binaries")
    parser.add_argument("--no-pin", action="store_true",
                        help="disable taskset CPU pinning")
    parser.add_argument("--fail-threshold", type=float, default=10.0,
                        help="compare fails when a benchmark regresses "
                             "beyond this percentage")
    parser.add_argument("--compare", nargs=2,
                        metavar=("OLD.json", "NEW.json"))
    parser.add_argument("--git-commit", metavar="REV",
                        help="rebuild REV in a scratch worktree and "
                             "compare against the current tree")
    parser.add_argument("--keep-worktree", action="store_true")
    parser.add_argument("--validate", nargs="+", metavar="FILE")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test())

    if args.validate:
        bad = 0
        for path in args.validate:
            try:
                with open(path) as f:
                    doc = json.load(f)
            except (OSError, json.JSONDecodeError) as e:
                print(f"{path}: unreadable: {e}")
                bad += 1
                continue
            problems = validate_doc(doc, path)
            for p in problems:
                print(p)
            bad += bool(problems)
            if not problems:
                print(f"{path}: ok")
        sys.exit(1 if bad else 0)

    if args.compare:
        old_doc = load_doc(args.compare[0])
        new_doc = load_doc(args.compare[1])
        rows, regressions = compare_docs(old_doc, new_doc,
                                         args.fail_threshold)
        print_leaderboard(rows, regressions, args.fail_threshold,
                          args.compare[0], args.compare[1])
        sys.exit(1 if regressions else 0)

    if args.repeat < 1:
        die("--repeat must be >= 1")
    if args.warmup < 0:
        die("--warmup must be >= 0")
    areas = [a.strip() for a in args.areas.split(",") if a.strip()]
    for a in areas:
        if a not in AREAS:
            die(f"unknown area '{a}' (valid: {', '.join(AREAS)})")
    pin = not args.no_pin

    if not args.no_build:
        build_tree(REPO_ROOT, args.build_dir)

    env = collect_environment(args.build_dir)
    log(f"profile {args.profile}, repeat {args.repeat} "
        f"(+{args.warmup} warmup), commit {env['commit']}")

    docs = measure(args.build_dir, areas, args.profile, args.repeat,
                   args.warmup, pin, env, args.out_dir)

    if args.git_commit:
        old_docs = measure_git_revision(
            args.git_commit, areas, args.profile, args.repeat,
            args.warmup, pin, args.keep_worktree)
        any_regressions = False
        for area in areas:
            rows, regressions = compare_docs(
                old_docs[area], docs[area], args.fail_threshold)
            print_leaderboard(rows, regressions, args.fail_threshold,
                              f"{args.git_commit}:{area}",
                              f"HEAD:{area}")
            any_regressions |= bool(regressions)
        sys.exit(1 if any_regressions else 0)


if __name__ == "__main__":
    main()
