#!/usr/bin/env python3
"""Repo-invariant linter: mechanical enforcement of regpu-specific rules.

Every rule here encodes a bug class that was found and fixed by hand in
an earlier PR; the linter keeps it from coming back. It is stdlib-only
and runs in a bare container (no compiler, no clang-tidy), so it is
part of the *unconditional* tier-1 gate in scripts/check.sh.

Rules (ids are stable; see --list-rules):

  narrow-cast-serialize  PR 6 found the RE constants signature
                         truncating a 32-bit texture id through
                         static_cast<u16>, silently aliasing ids above
                         bit 15. Serializer/signature files must not
                         narrow through u16 casts.
  stream-guard           PR 6 found printRunSummary leaking
                         std::fixed/setprecision(1) into the CSV
                         writer, truncating every energy column. Any
                         file setting stream float formatting must use
                         StreamFormatGuard (sim/report.hh).
  crc-alloc-free         PR 2 rebuilt src/crc as allocation-free
                         streaming (pinned by tests/test_alloc_free.cc
                         with a counting operator new). The CRC layer
                         must not even mention std::vector/std::string;
                         hot-path serializers use std::span and fixed
                         stack buffers.
  naked-new              Ownership is std::unique_ptr/containers
                         everywhere; raw new/malloc outside the
                         counting-allocator test would dodge both RAII
                         and the allocation accounting.
  fatal-message          fatal() is a user-facing diagnostic; an empty
                         message gives the user nothing to act on.
  csv-escape             PR 6 found writeCsvRow emitting the workload
                         name unescaped (RFC 4180 breakage on commas/
                         quotes). CSV-shaped streaming of workload
                         names must route through csvEscape().
  obs-scope              PR 8 added the observability layer (src/obs/):
                         simulator code that wants wall-clock timing
                         must instrument through ObsScope/obsNowNs()
                         so the work shows up on the timeline.
                         Hand-rolled steady_clock pairs inside src/
                         are invisible to tracing and drift from the
                         spans (frontends/benches/tests stay free to
                         use std::chrono directly).

Suppression syntax (each use needs a non-empty reason):

  code();  // lint:allow(rule-id): reason         same line
  // lint:allow(rule-id): reason                  line above
  // lint:allow-file(rule-id): reason             whole file, first 40
                                                  lines only

Unused suppressions are themselves violations, so stale allows cannot
accumulate. scripts/analyze.py (the whole-repo architecture analyzer)
imports strip_code/FileText from here, so both tools lex C++ — raw
strings, line splices and all — identically. To add a rule: append a Rule to RULES with a findings
function over FileText, and a fixture pair (violating snippet, clean
snippet) in FIXTURES proving it fires — --self-test runs every rule
against its fixtures and the suppression machinery.
"""

import argparse
import dataclasses
import os
import re
import sys
from typing import Callable, List, Optional, Tuple

ALLOW_FILE_WINDOW = 40  # file-level allows must sit near the top

CXX_EXTENSIONS = (".cc", ".cpp", ".hh", ".h")
SCAN_DIRS = ("src", "bench", "examples", "tests")


@dataclasses.dataclass
class FileText:
    """One scanned file in two views, line numbers preserved.

    `code` has comments and string/char literal *contents* blanked out
    (quotes kept), so rules never fire on prose or literal text.
    `raw` is the original, for rules that must see literals (and for
    reading the suppression comments themselves).
    """

    path: str          # repo-relative, forward slashes
    raw: str
    code: str
    raw_lines: List[str] = dataclasses.field(init=False)
    code_lines: List[str] = dataclasses.field(init=False)

    def __post_init__(self):
        self.raw_lines = self.raw.splitlines()
        self.code_lines = self.code.splitlines()


@dataclasses.dataclass
class Violation:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclasses.dataclass
class Rule:
    rule_id: str
    summary: str
    applies: Callable[[str], bool]              # path predicate
    findings: Callable[[FileText], List[Tuple[int, str]]]


RAW_STRING_OPEN_RE = re.compile(r'(?:u8|[uUL])?R"([^\s()\\"]{0,16})\(')


def strip_code(text: str) -> str:
    """Blank comments and literal contents, preserving layout.

    Small state machine over //, /* */, "..." and '...' with escape
    handling, plus the two lexer corners that defeat naive stripping:
    C++ raw strings R"delim(...)delim" (no escapes inside; the first
    plain `"` does NOT close them) and backslash-newline line splices,
    which keep a // comment alive onto the next physical line.
    Replaced characters become spaces (newlines survive), so offsets
    and line numbers in the stripped view match the original.
    """
    out = list(text)
    i, n = 0, len(text)
    NORMAL, LINE_COMMENT, BLOCK_COMMENT, STRING, CHAR = range(5)
    state = NORMAL
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE_COMMENT
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK_COMMENT
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c in "uULR":
                # Raw string? Only when the prefix starts a fresh
                # token (an identifier ending in R, like FOOR"x", is
                # not one).
                m = RAW_STRING_OPEN_RE.match(text, i)
                if m and not (i > 0 and (text[i - 1].isalnum()
                                         or text[i - 1] == "_")):
                    terminator = ')' + m.group(1) + '"'
                    found = text.find(terminator, m.end())
                    content_end = found if found != -1 else n
                    for j in range(m.end(), content_end):
                        if text[j] != "\n":
                            out[j] = " "
                    i = (content_end + len(terminator)
                         if found != -1 else n)
                    continue
            if c == '"':
                state = STRING
            elif c == "'":
                state = CHAR
        elif state == LINE_COMMENT:
            if c == "\\" and nxt == "\n":
                # Line splice: the comment continues on the next
                # physical line.
                out[i] = " "
                i += 2
                continue
            if c == "\n":
                state = NORMAL
            else:
                out[i] = " "
        elif state == BLOCK_COMMENT:
            if c == "*" and nxt == "/":
                state = NORMAL
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c != "\n":
                out[i] = " "
        elif state in (STRING, CHAR):
            quote = '"' if state == STRING else "'"
            if c == "\\" and nxt:
                out[i] = " "
                if nxt != "\n":
                    out[i + 1] = " "
                i += 2
                continue
            if c == quote:
                state = NORMAL
            elif c != "\n":
                out[i] = " "
        i += 1
    return "".join(out)


def regex_findings(pattern: str, message: str,
                   view: str = "code") -> Callable[[FileText],
                                                   List[Tuple[int, str]]]:
    """Findings function flagging every match of @p pattern."""
    compiled = re.compile(pattern)

    def find(ft: FileText) -> List[Tuple[int, str]]:
        text = ft.code if view == "code" else ft.raw
        hits = []
        for m in compiled.finditer(text):
            line = text.count("\n", 0, m.start()) + 1
            hits.append((line, message))
        return hits

    return find


# --- Rule implementations ---------------------------------------------------

def path_matches(*patterns: str) -> Callable[[str], bool]:
    compiled = [re.compile(p) for p in patterns]
    return lambda path: any(c.search(path) for c in compiled)


def find_stream_format(ft: FileText) -> List[Tuple[int, str]]:
    """std::fixed/setprecision/scientific without a StreamFormatGuard."""
    if re.search(r"\bStreamFormatGuard\b", ft.code):
        return []
    hits = []
    pat = re.compile(
        r"std::(fixed|setprecision|scientific|hexfloat)\b")
    for m in pat.finditer(ft.code):
        line = ft.code.count("\n", 0, m.start()) + 1
        hits.append((line, f"std::{m.group(1)} without a "
                           "StreamFormatGuard in this file; leaked "
                           "format state corrupts later CSV/JSON "
                           "writes (use sim/report.hh)"))
    return hits


def find_fatal_empty(ft: FileText) -> List[Tuple[int, str]]:
    """fatal() with no arguments or a leading empty string literal.

    Works on the code view for call shape (comments can't fake a
    call), but checks the raw view for the literal's emptiness since
    literal contents are blanked in the code view.
    """
    hits = []
    for m in re.finditer(r"\bfatal\s*\(", ft.code):
        rest = ft.code[m.end():m.end() + 200]
        line = ft.code.count("\n", 0, m.start()) + 1
        if re.match(r"\s*\)", rest):
            hits.append((line, "fatal() without a message gives the "
                               "user nothing to act on"))
            continue
        stripped = re.match(r"\s*\"", rest)
        if stripped:
            # First argument is a string literal: demand it non-empty
            # in the raw text ("" only passes when more args follow a
            # non-literal first... keep it strict: leading "" is dead
            # weight either way).
            raw_rest = ft.raw[m.end():m.end() + 200]
            if re.match(r"\s*\"\"", raw_rest):
                hits.append((line, "fatal(\"\"...) starts with an "
                                   "empty message literal"))
    return hits


def find_csv_unescaped(ft: FileText) -> List[Tuple[int, str]]:
    """Workload names streamed into a CSV row without csvEscape().

    A line is CSV-shaped when it also streams a "," separator literal
    (checked in the raw view — literals are blanked in the code view).
    """
    hits = []
    for idx, code_line in enumerate(ft.code_lines):
        if not re.search(r"<<\s*[\w.\[\]>-]*\bworkload\b", code_line):
            continue
        raw_line = ft.raw_lines[idx] if idx < len(ft.raw_lines) else ""
        if '","' not in raw_line and "','" not in raw_line:
            continue
        if "csvEscape" in code_line:
            continue
        hits.append((idx + 1, "workload name streamed into a CSV row "
                              "without csvEscape() (RFC 4180: commas/"
                              "quotes in the name corrupt the row)"))
    return hits


RULES: List[Rule] = [
    Rule(
        "narrow-cast-serialize",
        "no u16-narrowing casts in serializer/signature code",
        path_matches(r"^src/(re|crc)/", r"^src/trace/trace_format",
                     r"^src/gpu/shader\.", r"serialize"),
        regex_findings(
            r"(static_cast<\s*(u16|(std::)?uint16_t|unsigned short)\s*>"
            r"|\(\s*u16\s*\)\s*[A-Za-z_(])",
            "u16-narrowing cast in serializer/signature code: ids/"
            "lengths above bit 15 would silently alias (PR 6 bug "
            "class); serialize full-width little-endian instead"),
    ),
    Rule(
        "stream-guard",
        "std::fixed/std::setprecision require a StreamFormatGuard",
        lambda path: True,
        find_stream_format,
    ),
    Rule(
        "crc-alloc-free",
        "src/crc/ stays free of std::vector/std::string",
        path_matches(r"^src/crc/"),
        regex_findings(
            r"std::(vector|string)\b",
            "std::vector/std::string in the allocation-free CRC layer "
            "(pinned by tests/test_alloc_free.cc); use std::span and "
            "fixed stack buffers"),
    ),
    Rule(
        "naked-new",
        "no naked new/malloc outside the counting-allocator test",
        lambda path: path != "tests/test_alloc_free.cc",
        regex_findings(
            r"((?<![\w.])\bnew\b\s*[A-Za-z_:<(]"
            r"|\b(malloc|calloc|realloc)\s*\()",
            "naked allocation: ownership here is std::unique_ptr/"
            "containers, and raw allocations dodge "
            "tests/test_alloc_free.cc's counting allocator"),
    ),
    Rule(
        "fatal-message",
        "every fatal() carries a non-empty message",
        lambda path: True,
        find_fatal_empty,
    ),
    Rule(
        "csv-escape",
        "CSV-row streaming of workload names routes through csvEscape",
        lambda path: True,
        find_csv_unescaped,
    ),
    Rule(
        "obs-scope",
        "src/ timing instrumentation routes through ObsScope/obsNowNs",
        lambda path: (path.startswith("src/")
                      and not path.startswith("src/obs/")),
        regex_findings(
            r"std::chrono::(steady_clock|high_resolution_clock"
            r"|system_clock)\b",
            "raw clock read in simulator code: instrument with "
            "ObsScope/obsNowNs() (src/obs/obs.hh) so the measured "
            "work also appears on the trace-event timeline; "
            "hand-rolled clock pairs are invisible to tracing"),
    ),
]


# --- Suppression handling ---------------------------------------------------

class Suppressions:
    """<marker>:allow / <marker>:allow-file markers of one file.

    A line marker covers its own line and the first code line below
    its comment block, so a multi-line justification comment above the
    finding works naturally. The marker defaults to "lint";
    scripts/analyze.py reuses this machinery with marker="analyze" so
    both tools share one suppression dialect (including the
    unused-suppression policing).
    """

    def __init__(self, ft: FileText, marker: str = "lint"):
        self.ft = ft
        self.marker = marker
        self.errors: List[Violation] = []
        self.line_allows = {}   # (line, rule) -> [used]
        self.file_allows = {}   # rule -> [line, used]
        allow_re = re.compile(
            marker + r":allow\(([\w-]+)\)\s*(?::\s*(\S.*))?")
        allow_file_re = re.compile(
            marker + r":allow-file\(([\w-]+)\)\s*(?::\s*(\S.*))?")
        for idx, raw_line in enumerate(ft.raw_lines):
            line = idx + 1
            m = allow_file_re.search(raw_line)
            if m:
                rule, reason = m.group(1), m.group(2)
                if not reason:
                    self.errors.append(Violation(
                        ft.path, line, f"{marker}-suppression",
                        f"{marker}:allow-file({rule}) needs a reason "
                        f"(\"{marker}:allow-file(rule): why\")"))
                elif line > ALLOW_FILE_WINDOW:
                    self.errors.append(Violation(
                        ft.path, line, f"{marker}-suppression",
                        f"{marker}:allow-file({rule}) must appear in "
                        f"the first {ALLOW_FILE_WINDOW} lines"))
                else:
                    self.file_allows[rule] = [line, False]
                continue
            m = allow_re.search(raw_line)
            if m:
                rule, reason = m.group(1), m.group(2)
                if not reason:
                    self.errors.append(Violation(
                        ft.path, line, f"{marker}-suppression",
                        f"{marker}:allow({rule}) needs a reason "
                        f"(\"{marker}:allow(rule): why\")"))
                else:
                    self.line_allows[(line, rule)] = [False]

    def _comment_only(self, line: int) -> bool:
        idx = line - 1
        if idx < 0 or idx >= len(self.ft.code_lines):
            return False
        return (self.ft.code_lines[idx].strip() == ""
                and self.ft.raw_lines[idx].strip() != "")

    def allows(self, line: int, rule: str) -> bool:
        candidates = [line]
        above = line - 1
        while self._comment_only(above):
            candidates.append(above)
            above -= 1
        for cand in candidates:
            key = (cand, rule)
            if key in self.line_allows:
                self.line_allows[key][0] = True
                return True
        if rule in self.file_allows:
            self.file_allows[rule][1] = True
            return True
        return False

    def unused(self, path: str) -> List[Violation]:
        out = []
        for (line, rule), [used] in sorted(self.line_allows.items()):
            if not used:
                out.append(Violation(
                    path, line, f"{self.marker}-suppression",
                    f"unused {self.marker}:allow({rule}) — the rule "
                    "no longer fires here; delete the stale "
                    "suppression"))
        for rule, (line, used) in sorted(self.file_allows.items()):
            if not used:
                out.append(Violation(
                    path, line, f"{self.marker}-suppression",
                    f"unused {self.marker}:allow-file({rule}) — "
                    "delete the stale suppression"))
        return out


# --- Scanning ---------------------------------------------------------------

def lint_file(ft: FileText) -> List[Violation]:
    sup = Suppressions(ft)
    violations = list(sup.errors)
    for rule in RULES:
        if not rule.applies(ft.path):
            continue
        for line, message in rule.findings(ft):
            if sup.allows(line, rule.rule_id):
                continue
            violations.append(Violation(ft.path, line, rule.rule_id,
                                        message))
    violations.extend(sup.unused(ft.path))
    return violations


def collect_files(root: str) -> List[str]:
    paths = []
    for top in SCAN_DIRS:
        top_dir = os.path.join(root, top)
        for dirpath, _dirnames, filenames in os.walk(top_dir):
            for name in sorted(filenames):
                if name.endswith(CXX_EXTENSIONS):
                    paths.append(os.path.join(dirpath, name))
    return sorted(paths)


def lint_tree(root: str) -> List[Violation]:
    violations = []
    for path in collect_files(root):
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        violations.extend(
            lint_file(FileText(rel, raw, strip_code(raw))))
    return violations


# --- Self test --------------------------------------------------------------

# Per rule: (path the fixture pretends to live at,
#            snippet that MUST fire, snippet that MUST stay clean).
FIXTURES = {
    "narrow-cast-serialize": (
        "src/re/rendering_elimination.hh",
        "stream.putU32(static_cast<u16>(draw.state.textureId + 1));\n",
        "stream.putU32(static_cast<u32>(draw.state.textureId) + 1);\n",
    ),
    "stream-guard": (
        "src/sim/report.cc",
        "os << std::fixed << std::setprecision(1) << fps;\n",
        "StreamFormatGuard guard(os);\n"
        "os << std::fixed << std::setprecision(1) << fps;\n",
    ),
    "crc-alloc-free": (
        "src/crc/crc32.cc",
        "u32 crc32Tabular(const std::vector<u8> &bytes);\n",
        "u32 crc32Tabular(std::span<const u8> bytes);\n",
    ),
    "naked-new": (
        "src/sim/simulator.cc",
        "auto *scene = new Scene(\"x\", config);\n",
        "auto scene = std::make_unique<Scene>(\"x\", config);\n",
    ),
    "fatal-message": (
        "src/common/config.cc",
        "if (ways == 0)\n    fatal(\"\");\n",
        "if (ways == 0)\n    fatal(\"MemoLut: ways must be > 0\");\n",
    ),
    "csv-escape": (
        "src/sim/report.cc",
        "os << r.workload << \",\" << r.frames;\n",
        "os << csvEscape(r.workload) << \",\" << r.frames;\n",
    ),
    "obs-scope": (
        "src/sim/parallel_runner.cc",
        "const auto t0 = std::chrono::steady_clock::now();\n",
        "const u64 startNs = obsNowNs();\n"
        "ObsScope span(\"runner\", \"job\");\n",
    ),
}


def run_fixture(path: str, snippet: str) -> List[Violation]:
    return lint_file(FileText(path, snippet, strip_code(snippet)))


def self_test() -> int:
    failures = []

    def check(cond: bool, what: str):
        (failures.append(what) if not cond else None)

    for rule in RULES:
        check(rule.rule_id in FIXTURES,
              f"{rule.rule_id}: missing fixture")
    for rule_id, (path, bad, good) in FIXTURES.items():
        bad_hits = [v for v in run_fixture(path, bad)
                    if v.rule == rule_id]
        check(len(bad_hits) >= 1,
              f"{rule_id}: violating fixture did not fire")
        good_hits = [v for v in run_fixture(path, good)
                     if v.rule == rule_id]
        check(not good_hits,
              f"{rule_id}: clean fixture fired: {good_hits}")

    # Comment/string stripping: prose and literals never fire rules.
    quiet = ("// makes a new Scene every frame\n"
             "/* std::vector<u8> new malloc( */\n"
             "log(\"std::fixed new Foo malloc(\");\n")
    check(not run_fixture("src/gpu/raster.cc", quiet),
          f"comments/literals fired: {run_fixture('src/gpu/raster.cc', quiet)}")

    # Raw string literals: contents are literal text, no matter what
    # quotes or rule triggers they contain.
    raw_quiet = ('const char *usage = R"(new Scene "quoted" \n'
                 'std::vector<u8> malloc( std::fixed)";\n')
    check(not run_fixture("src/gpu/raster.cc", raw_quiet),
          f"raw-string contents fired: "
          f"{run_fixture('src/gpu/raster.cc', raw_quiet)}")
    # ...including the delimiter form, whose embedded )" must NOT
    # terminate the literal early.
    raw_delim = ('const char *s = R"x(ends with )" but not here)x";\n'
                 'const char *t = "done";\n')
    check(not run_fixture("src/gpu/raster.cc", raw_delim),
          "R\"x(...)x\" delimiter form mis-lexed")
    # Code AFTER a raw string is lexed normally again (a naive
    # stripper desyncs at the first inner quote and swallows it).
    raw_then_code = ('const char *u = R"(he said "hi")";\n'
                     'auto *p = new Scene();\n')
    check(any(v.rule == "naked-new"
              for v in run_fixture("src/sim/simulator.cc",
                                   raw_then_code)),
          "code after a raw string not lexed (stripper desynced)")
    # An identifier merely ending in R does not open a raw string.
    not_raw = 'callFOOR("x(new Scene())");\nauto *q = new Scene();\n'
    check(len([v for v in run_fixture("src/sim/simulator.cc", not_raw)
               if v.rule == "naked-new"]) == 1,
          "identifier ending in R mistaken for a raw-string prefix")

    # Backslash-newline splices a // comment onto the next physical
    # line; triggers there are still comment prose.
    spliced = ('// this comment continues \\\n'
               'auto *p = new Scene();\n'
               'int live = 1;\n')
    check(not run_fixture("src/sim/simulator.cc", spliced),
          "line-spliced // comment not honored")

    # Same-line and previous-line suppression, with reasons.
    path, bad, _good = FIXTURES["naked-new"]
    inline = bad.rstrip("\n") + "  // lint:allow(naked-new): perf test\n"
    check(not run_fixture(path, inline), "same-line allow ignored")
    above = "// lint:allow(naked-new): perf test\n" + bad
    check(not run_fixture(path, above), "previous-line allow ignored")
    block = ("// lint:allow(naked-new): a justification long enough\n"
             "// to span several comment lines above the finding\n"
             + bad)
    check(not run_fixture(path, block),
          "allow in a multi-line comment block ignored")

    # File-level suppression near the top.
    filetop = ("// lint:allow-file(naked-new): allocator benchmark\n"
               + bad)
    check(not run_fixture(path, filetop), "file-level allow ignored")

    # Reason-less suppressions are rejected...
    noreason = bad.rstrip("\n") + "  // lint:allow(naked-new)\n"
    got = run_fixture(path, noreason)
    check(any(v.rule == "lint-suppression" for v in got),
          "reason-less allow accepted")
    # ...and still do NOT suppress the finding.
    check(any(v.rule == "naked-new" for v in got),
          "reason-less allow suppressed the finding anyway")

    # Unused suppressions are violations.
    stale = "int x = 0;  // lint:allow(naked-new): stale\n"
    check(any(v.rule == "lint-suppression"
              for v in run_fixture(path, stale)),
          "stale suppression not reported")

    # Rule scoping: the u16 cast is fine outside serializer paths.
    check(not run_fixture("src/timing/dram.cc",
                          FIXTURES["narrow-cast-serialize"][1]),
          "narrow-cast-serialize fired outside its path scope")

    # obs-scope is src/-only and exempts the obs layer itself (the one
    # sanctioned steady_clock reader) and frontends/benches/tests.
    check(not run_fixture("src/obs/obs.cc", FIXTURES["obs-scope"][1]),
          "obs-scope fired inside src/obs/")
    for outside in ("bench/micro_pipeline.cc", "examples/suite_cli.cpp",
                    "tests/test_obs.cc"):
        check(not run_fixture(outside, FIXTURES["obs-scope"][1]),
              f"obs-scope fired outside src/ ({outside})")

    # fatal() with a genuine message and later-arg-only messages pass.
    ok_fatal = ("fatal(flag, \" expects a number, got: \", text);\n"
                "fatal(\"unknown technique: \", name);\n")
    check(not run_fixture("src/common/config.cc", ok_fatal),
          "fatal-message fired on non-empty messages")
    # Multi-line empty call still caught.
    check(any(v.rule == "fatal-message"
              for v in run_fixture("src/common/config.cc",
                                   "fatal(\n);\n")),
          "fatal-message missed a multi-line empty call")

    # csv-escape: human-readable (non-CSV) streaming stays clean.
    summary = "os << \"== \" << r.workload << \" / \" << name;\n"
    check(not run_fixture("src/sim/report.cc", summary),
          "csv-escape fired on a non-CSV summary line")

    if failures:
        for f in failures:
            print(f"SELF-TEST FAIL: {f}", file=sys.stderr)
        return 1
    print(f"lint.py self-test OK ({len(RULES)} rules, "
          f"{len(FIXTURES)} fixtures)")
    return 0


# --- CLI --------------------------------------------------------------------

def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="regpu repo-invariant linter (stdlib-only)")
    parser.add_argument("--root", default=None,
                        help="repo root (default: the script's parent)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded rule fixtures and exit")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if args.list_rules:
        for rule in RULES:
            print(f"{rule.rule_id:24} {rule.summary}")
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    violations = lint_tree(root)
    for v in violations:
        print(v)
    if violations:
        print(f"lint.py: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    print("lint.py: tree clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
