/**
 * @file
 * Minimal strict JSON parser for tests (RFC 8259 subset: objects,
 * arrays, strings, numbers, true/false/null; no extensions). parse()
 * returns false with a diagnostic instead of accepting sloppy input —
 * trailing commas, NaN/Infinity, unescaped control characters and
 * leading zeros are all rejected, so "parses here" really means
 * "parses everywhere".
 *
 * Shared by the serialization round-trip tests (writeJsonRun /
 * BenchJsonWriter documents) and the observability tests (timeline
 * trace-event JSON, per-frame JSONL). Header-only on purpose: the
 * tests/ tree has no library target.
 */

#ifndef REGPU_TESTS_STRICT_JSON_HH
#define REGPU_TESTS_STRICT_JSON_HH

#include <cctype>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace regpu::testutil
{

class StrictJsonParser
{
  public:
    explicit StrictJsonParser(std::string text) : s(std::move(text)) {}

    bool
    parse(std::string &error)
    {
        pos = 0;
        err.clear();
        skipWs();
        if (!parseValue() || !err.empty()) {
            error = err.empty() ? "parse failed" : err;
            return false;
        }
        skipWs();
        if (pos != s.size()) {
            error = "trailing garbage at offset "
                + std::to_string(pos);
            return false;
        }
        return true;
    }

    /** Top-level object keys seen, in document order. */
    const std::vector<std::string> &topLevelKeys() const
    {
        return keys;
    }

    /** Raw text of a top-level value (for numeric re-parsing). */
    std::string
    topLevelValueText(const std::string &key) const
    {
        auto it = values.find(key);
        return it == values.end() ? std::string() : it->second;
    }

  private:
    std::string s;
    std::size_t pos = 0;
    std::string err;
    std::vector<std::string> keys;
    std::map<std::string, std::string> values;
    int depth = 0;

    void
    fail(const std::string &what)
    {
        if (err.empty())
            err = what + " at offset " + std::to_string(pos);
    }

    void
    skipWs()
    {
        while (pos < s.size()
               && (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n'
                   || s[pos] == '\r'))
            pos++;
    }

    bool
    parseValue()
    {
        if (pos >= s.size())
            return fail("unexpected end"), false;
        switch (s[pos]) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': { std::string unused;
                      return parseString(unused); }
          case 't': return parseLiteral("true");
          case 'f': return parseLiteral("false");
          case 'n': return parseLiteral("null");
          default: return parseNumber();
        }
    }

    bool
    parseLiteral(const char *lit)
    {
        for (const char *p = lit; *p; p++, pos++)
            if (pos >= s.size() || s[pos] != *p)
                return fail(std::string("bad literal '") + lit + "'"),
                       false;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (s[pos] != '"')
            return fail("expected string"), false;
        pos++;
        out.clear();
        while (pos < s.size()) {
            const unsigned char c =
                static_cast<unsigned char>(s[pos]);
            if (c == '"') {
                pos++;
                return true;
            }
            if (c < 0x20)
                return fail("unescaped control char in string"),
                       false;
            if (c == '\\') {
                pos++;
                if (pos >= s.size())
                    return fail("truncated escape"), false;
                const char e = s[pos];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos + 4 >= s.size())
                        return fail("truncated \\u escape"), false;
                    unsigned code = 0;
                    for (int k = 0; k < 4; k++) {
                        const char h = s[pos + 1 + k];
                        if (!std::isxdigit(
                                static_cast<unsigned char>(h)))
                            return fail("bad \\u escape"), false;
                        code = code * 16
                            + (std::isdigit(
                                   static_cast<unsigned char>(h))
                                   ? h - '0'
                                   : (std::tolower(h) - 'a' + 10));
                    }
                    pos += 4;
                    out += static_cast<char>(code & 0xFF);
                    break;
                  }
                  default:
                    return fail("bad escape"), false;
                }
                pos++;
            } else {
                out += static_cast<char>(c);
                pos++;
            }
        }
        return fail("unterminated string"), false;
    }

    bool
    parseNumber()
    {
        const std::size_t start = pos;
        if (pos < s.size() && s[pos] == '-')
            pos++;
        if (pos >= s.size()
            || !std::isdigit(static_cast<unsigned char>(s[pos])))
            return fail("bad number"), false;
        if (s[pos] == '0') {
            pos++;
            // Strict: no leading zeros.
            if (pos < s.size()
                && std::isdigit(static_cast<unsigned char>(s[pos])))
                return fail("leading zero"), false;
        } else {
            while (pos < s.size()
                   && std::isdigit(
                       static_cast<unsigned char>(s[pos])))
                pos++;
        }
        if (pos < s.size() && s[pos] == '.') {
            pos++;
            if (pos >= s.size()
                || !std::isdigit(static_cast<unsigned char>(s[pos])))
                return fail("bad fraction"), false;
            while (pos < s.size()
                   && std::isdigit(
                       static_cast<unsigned char>(s[pos])))
                pos++;
        }
        if (pos < s.size() && (s[pos] == 'e' || s[pos] == 'E')) {
            pos++;
            if (pos < s.size() && (s[pos] == '+' || s[pos] == '-'))
                pos++;
            if (pos >= s.size()
                || !std::isdigit(static_cast<unsigned char>(s[pos])))
                return fail("bad exponent"), false;
            while (pos < s.size()
                   && std::isdigit(
                       static_cast<unsigned char>(s[pos])))
                pos++;
        }
        (void)start;
        return true;
    }

    bool
    parseObject()
    {
        const bool topLevel = depth == 0;
        depth++;
        pos++; // '{'
        skipWs();
        if (pos < s.size() && s[pos] == '}') {
            pos++;
            depth--;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (pos >= s.size() || s[pos] != ':')
                return fail("expected ':'"), false;
            pos++;
            skipWs();
            const std::size_t valueStart = pos;
            if (!parseValue())
                return false;
            if (topLevel) {
                keys.push_back(key);
                values[key] = s.substr(valueStart, pos - valueStart);
            }
            skipWs();
            if (pos < s.size() && s[pos] == ',') {
                pos++;
                continue;
            }
            if (pos < s.size() && s[pos] == '}') {
                pos++;
                depth--;
                return true;
            }
            return fail("expected ',' or '}'"), false;
        }
    }

    bool
    parseArray()
    {
        depth++;
        pos++; // '['
        skipWs();
        if (pos < s.size() && s[pos] == ']') {
            pos++;
            depth--;
            return true;
        }
        while (true) {
            skipWs();
            if (!parseValue())
                return false;
            skipWs();
            if (pos < s.size() && s[pos] == ',') {
                pos++;
                continue;
            }
            if (pos < s.size() && s[pos] == ']') {
                pos++;
                depth--;
                return true;
            }
            return fail("expected ',' or ']'"), false;
        }
    }
};

} // namespace regpu::testutil

#endif // REGPU_TESTS_STRICT_JSON_HH
