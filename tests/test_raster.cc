/**
 * @file
 * Raster Pipeline tests: coverage, early-Z, shading, blending and the
 * per-tile statistics the timing model consumes.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "gpu/binning.hh"
#include "gpu/memiface.hh"
#include "gpu/raster.hh"

using namespace regpu;

namespace
{

/**
 * Fixture with a 32x32 screen (2x2 tiles) and helpers to rasterize
 * hand-built primitives.
 */
struct RasterFixture : ::testing::Test
{
    GpuConfig config;
    StatRegistry stats;
    std::vector<Texture> textures;
    std::vector<DrawCall> draws;
    BinnedFrame frame;

    RasterFixture()
    {
        config.scaleResolution(32, 32);
        textures.emplace_back(0, 32, 32, TexturePattern::Solid, 7);
        frame.tileLists.assign(config.numTiles(), {});
    }

    /** Add a screen-space triangle bound to drawcall state @p state. */
    void
    addTriangle(float x0, float y0, float x1, float y1, float x2,
                float y2, PipelineState state, float z = 0.5f)
    {
        Primitive p;
        p.v[0].x = x0; p.v[0].y = y0;
        p.v[1].x = x1; p.v[1].y = y1;
        p.v[2].x = x2; p.v[2].y = y2;
        for (int i = 0; i < 3; i++) {
            p.v[i].z = z;
            p.v[i].invW = 1.0f;
            p.v[i].color = {1, 1, 1, 1};
        }
        p.drawIndex = static_cast<u32>(draws.size());
        DrawCall d;
        d.state = state;
        d.layout.hasTexcoord = true;
        draws.push_back(d);

        u32 primIdx = static_cast<u32>(frame.primitives.size());
        frame.primitives.push_back(p);
        StatRegistry tmp;
        PolygonListBuilder plb(config, tmp, nullptr);
        for (TileId t : plb.overlappedTiles(p))
            frame.tileLists[t].push_back({primIdx, 0x200000000ull, 64});
    }

    TileRenderStats
    render(TileId tile, std::vector<Color> &out)
    {
        TileRenderer r(config, stats, nullptr, textures);
        return r.renderTile(tile, frame, draws, Color(0, 0, 0), out);
    }
};

PipelineState
flatState(Vec4 tint = {1, 0, 0, 1})
{
    PipelineState s;
    s.shader = ShaderKind::Flat;
    s.uniforms.tint = tint;
    return s;
}

} // namespace

TEST_F(RasterFixture, EmptyTileIsClearColor)
{
    std::vector<Color> out;
    TileRenderStats ts = render(0, out);
    EXPECT_EQ(ts.fragmentsGenerated, 0u);
    for (Color c : out)
        EXPECT_EQ(c, Color(0, 0, 0));
}

TEST_F(RasterFixture, FullTileCoverage)
{
    addTriangle(0, 0, 64, 0, 0, 64, flatState());
    std::vector<Color> out;
    TileRenderStats ts = render(0, out);
    EXPECT_EQ(ts.fragmentsGenerated, 256u);
    for (Color c : out)
        EXPECT_EQ(c, Color(255, 0, 0));
}

TEST_F(RasterFixture, HalfTileDiagonalCoverage)
{
    addTriangle(0, 0, 16, 0, 0, 16, flatState());
    std::vector<Color> out;
    TileRenderStats ts = render(0, out);
    // Diagonal half of a 16x16 tile: 120 +- the edge rule band.
    EXPECT_GT(ts.fragmentsGenerated, 100u);
    EXPECT_LT(ts.fragmentsGenerated, 140u);
}

TEST_F(RasterFixture, SharedEdgeHasNoGapsOrDoubleHits)
{
    // Two triangles sharing the diagonal of the tile: every pixel
    // covered at least once; interior pixels never twice (watertight
    // within floating-point edge consistency).
    addTriangle(0, 0, 16, 0, 16, 16, flatState({1, 0, 0, 1}));
    addTriangle(0, 0, 16, 16, 0, 16, flatState({0, 1, 0, 1}));
    std::vector<Color> out;
    TileRenderStats ts = render(0, out);
    EXPECT_GE(ts.fragmentsGenerated, 256u);
    EXPECT_LE(ts.fragmentsGenerated, 256u + 16u); // shared edge overlap
    for (Color c : out)
        EXPECT_TRUE(c == Color(255, 0, 0) || c == Color(0, 255, 0));
}

TEST_F(RasterFixture, EarlyZKillsOccludedFragments)
{
    PipelineState nearState = flatState({1, 0, 0, 1});
    PipelineState farState = flatState({0, 0, 1, 1});
    addTriangle(0, 0, 64, 0, 0, 64, nearState, 0.2f); // drawn first, near
    addTriangle(0, 0, 64, 0, 0, 64, farState, 0.8f);  // behind
    std::vector<Color> out;
    TileRenderStats ts = render(0, out);
    EXPECT_EQ(ts.fragmentsEarlyZKilled, 256u);
    EXPECT_EQ(ts.fragmentsShaded, 256u);
    for (Color c : out)
        EXPECT_EQ(c, Color(255, 0, 0));
}

TEST_F(RasterFixture, DepthWriteOffDoesNotOcclude)
{
    PipelineState nearNoWrite = flatState({1, 0, 0, 1});
    nearNoWrite.depthWrite = false;
    PipelineState farState = flatState({0, 0, 1, 1});
    addTriangle(0, 0, 64, 0, 0, 64, nearNoWrite, 0.2f);
    addTriangle(0, 0, 64, 0, 0, 64, farState, 0.8f);
    std::vector<Color> out;
    render(0, out);
    for (Color c : out)
        EXPECT_EQ(c, Color(0, 0, 255));
}

TEST_F(RasterFixture, AlphaBlendComposites)
{
    PipelineState opaque = flatState({0, 0, 1, 1});
    opaque.depthTest = false;
    PipelineState translucent = flatState({1, 0, 0, 0.5f});
    translucent.depthTest = false;
    translucent.blendMode = BlendMode::AlphaBlend;
    addTriangle(0, 0, 64, 0, 0, 64, opaque);
    addTriangle(0, 0, 64, 0, 0, 64, translucent);
    std::vector<Color> out;
    render(0, out);
    // Half red over blue.
    EXPECT_NEAR(out[0].r, 128, 2);
    EXPECT_NEAR(out[0].b, 127, 2);
}

TEST_F(RasterFixture, TexturedShaderSamplesTexture)
{
    PipelineState s;
    s.shader = ShaderKind::Textured;
    s.textureId = 0;
    s.depthTest = false;
    addTriangle(0, 0, 64, 0, 0, 64, s);
    std::vector<Color> out;
    TileRenderStats ts = render(0, out);
    EXPECT_GT(ts.texelFetches, 0u);
    Color texColor = textures[0].texel(0, 0);
    EXPECT_EQ(out[5], texColor);
}

TEST_F(RasterFixture, ShaderInstructionAccounting)
{
    addTriangle(0, 0, 64, 0, 0, 64, flatState());
    std::vector<Color> out;
    TileRenderStats ts = render(0, out);
    EXPECT_EQ(ts.shaderInstructions,
              256u * fragmentShaderInstructions(ShaderKind::Flat));
}

TEST_F(RasterFixture, TileIsolation)
{
    // A triangle in tile 0 must not touch tile 3.
    addTriangle(0, 0, 12, 0, 0, 12, flatState());
    std::vector<Color> out;
    TileRenderStats ts = render(3, out);
    EXPECT_EQ(ts.fragmentsGenerated, 0u);
}

TEST_F(RasterFixture, ShadowRenderChargesNothing)
{
    addTriangle(0, 0, 64, 0, 0, 64, flatState());
    TileRenderer r(config, stats, nullptr, textures);
    std::vector<Color> out;
    r.renderTile(0, frame, draws, Color(0, 0, 0), out, false);
    EXPECT_EQ(stats.counter("raster.fragmentsShaded"), 0u);
    // ...but still produces the correct colors.
    EXPECT_EQ(out[0], Color(255, 0, 0));
}

TEST_F(RasterFixture, DeterministicColors)
{
    PipelineState s;
    s.shader = ShaderKind::Textured;
    s.textureId = 0;
    s.depthTest = false;
    addTriangle(0, 0, 64, 0, 0, 64, s);
    std::vector<Color> a, b;
    render(0, a);
    render(0, b);
    EXPECT_EQ(a, b);
}

TEST(FragmentSignature, ExcludesScreenCoordinates)
{
    // Same shader inputs at different screen positions must produce
    // the same memoization signature (paper §V-A).
    DrawCall d;
    d.state.shader = ShaderKind::Textured;
    d.state.textureId = 3;
    u32 a = TileRenderer::fragmentSignature(d, {1, 1, 1, 1},
                                            {0.25f, 0.5f}, 1.0f);
    u32 b = TileRenderer::fragmentSignature(d, {1, 1, 1, 1},
                                            {0.25f, 0.5f}, 1.0f);
    EXPECT_EQ(a, b);
}

TEST(FragmentSignature, SensitiveToInputs)
{
    DrawCall d;
    d.state.shader = ShaderKind::Textured;
    d.state.textureId = 3;
    u32 base = TileRenderer::fragmentSignature(d, {1, 1, 1, 1},
                                               {0.25f, 0.5f}, 1.0f);
    u32 uvChange = TileRenderer::fragmentSignature(d, {1, 1, 1, 1},
                                                   {0.30f, 0.5f}, 1.0f);
    EXPECT_NE(base, uvChange);
    d.state.textureId = 4;
    u32 texChange = TileRenderer::fragmentSignature(d, {1, 1, 1, 1},
                                                    {0.25f, 0.5f}, 1.0f);
    EXPECT_NE(base, texChange);
}

TEST(FragmentSignature, ExactBitsRequiredForConsumedVaryings)
{
    // Memoized reuse must be bit-exact: any difference in a consumed
    // varying changes the signature.
    DrawCall d;
    d.state.shader = ShaderKind::VertexColor;
    u32 a = TileRenderer::fragmentSignature(d, {0.5f, 0.5f, 0.5f, 1},
                                            {0, 0}, 1.0f);
    u32 b = TileRenderer::fragmentSignature(
        d, {0.5f + 1e-4f, 0.5f, 0.5f, 1}, {0, 0}, 1.0f);
    EXPECT_NE(a, b);
}

TEST(FragmentSignature, IgnoresVaryingsTheShaderDoesNotConsume)
{
    // A flat-shaded fragment's color is independent of vertex color
    // and texcoords; its signature must be too, or flat fills would
    // never find reuse.
    DrawCall d;
    d.state.shader = ShaderKind::Flat;
    u32 a = TileRenderer::fragmentSignature(d, {0.1f, 0.2f, 0.3f, 1},
                                            {0.4f, 0.5f}, 0.6f);
    u32 b = TileRenderer::fragmentSignature(d, {0.9f, 0.8f, 0.7f, 1},
                                            {0.6f, 0.5f}, 0.4f);
    EXPECT_EQ(a, b);
}

TEST(FragmentSignature, SensitiveToUniformTint)
{
    DrawCall d;
    d.state.shader = ShaderKind::Flat;
    u32 a = TileRenderer::fragmentSignature(d, {1, 1, 1, 1}, {0, 0}, 1);
    d.state.uniforms.tint = {0.5f, 1, 1, 1};
    u32 b = TileRenderer::fragmentSignature(d, {1, 1, 1, 1}, {0, 0}, 1);
    EXPECT_NE(a, b);
}
