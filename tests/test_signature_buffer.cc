/**
 * @file
 * Signature Buffer tests: rotation, validity, frame-span comparison.
 */

#include <gtest/gtest.h>

#include "re/signature_buffer.hh"

using namespace regpu;

TEST(SignatureBuffer, ReadAfterWrite)
{
    SignatureBuffer sb(16, 2);
    sb.rotate();
    sb.write(3, 0xabcd1234);
    EXPECT_EQ(sb.read(3), 0xabcd1234u);
}

TEST(SignatureBuffer, FreshSlotReadsZero)
{
    SignatureBuffer sb(16, 2);
    sb.rotate();
    EXPECT_EQ(sb.read(5), 0u);
}

TEST(SignatureBuffer, FirstFrameHasNoComparison)
{
    SignatureBuffer sb(16, 2);
    sb.rotate();
    sb.write(0, 42);
    bool matched = true;
    EXPECT_FALSE(sb.compare(0, matched));
    EXPECT_FALSE(matched);
}

TEST(SignatureBuffer, SpanTwoComparesAgainstPreviousFrame)
{
    SignatureBuffer sb(16, 2);
    sb.rotate();             // frame 0
    sb.write(7, 100);
    sb.rotate();             // frame 1
    sb.write(7, 100);
    bool matched = false;
    EXPECT_TRUE(sb.compare(7, matched));
    EXPECT_TRUE(matched);
}

TEST(SignatureBuffer, SpanTwoDetectsMismatch)
{
    SignatureBuffer sb(16, 2);
    sb.rotate();
    sb.write(7, 100);
    sb.rotate();
    sb.write(7, 101);
    bool matched = true;
    EXPECT_TRUE(sb.compare(7, matched));
    EXPECT_FALSE(matched);
}

TEST(SignatureBuffer, SpanThreeComparesTwoFramesBack)
{
    // Double buffering: frame N compares with N-2.
    SignatureBuffer sb(16, 3);
    sb.rotate();             // frame 0
    sb.write(2, 0xAAAA);
    sb.rotate();             // frame 1
    sb.write(2, 0xBBBB);
    sb.rotate();             // frame 2
    sb.write(2, 0xAAAA);
    bool matched = false;
    EXPECT_TRUE(sb.compare(2, matched));
    EXPECT_TRUE(matched);    // matches frame 0, not frame 1
}

TEST(SignatureBuffer, SpanThreeMismatchAgainstOlder)
{
    SignatureBuffer sb(16, 3);
    sb.rotate();
    sb.write(2, 0xAAAA);
    sb.rotate();
    sb.write(2, 0xBBBB);
    sb.rotate();
    sb.write(2, 0xBBBB);     // equals frame 1, but compare is frame 0
    bool matched = true;
    EXPECT_TRUE(sb.compare(2, matched));
    EXPECT_FALSE(matched);
}

TEST(SignatureBuffer, RotateClearsNewSlot)
{
    SignatureBuffer sb(8, 2);
    sb.rotate();
    sb.write(1, 99);
    sb.rotate();
    sb.rotate();             // back to the first slot
    EXPECT_EQ(sb.read(1), 0u);
}

TEST(SignatureBuffer, SetAllValidEnablesEmptyTileComparison)
{
    // Tiles with no geometry keep signature 0; they must still compare
    // equal across frames once marked valid.
    SignatureBuffer sb(8, 2);
    sb.rotate();
    sb.setAllValid(true);
    sb.rotate();
    sb.setAllValid(true);
    bool matched = false;
    EXPECT_TRUE(sb.compare(4, matched));
    EXPECT_TRUE(matched);
}

TEST(SignatureBuffer, InvalidateAllBlocksComparisons)
{
    SignatureBuffer sb(8, 2);
    sb.rotate();
    sb.setAllValid(true);
    sb.rotate();
    sb.setAllValid(true);
    sb.invalidateAll();
    bool matched = true;
    EXPECT_FALSE(sb.compare(0, matched));
}

TEST(SignatureBuffer, InvalidateCurrentOnlyAffectsCurrentFrame)
{
    SignatureBuffer sb(8, 2);
    sb.rotate();
    sb.setAllValid(true);    // frame 0 valid
    sb.rotate();
    sb.setAllValid(true);
    sb.invalidateCurrent();  // frame 1 invalid
    bool matched = true;
    EXPECT_FALSE(sb.compare(0, matched));
    // Next frame compares against frame 1 (invalid) -> blocked too.
    sb.rotate();
    sb.setAllValid(true);
    EXPECT_FALSE(sb.compare(0, matched));
}

TEST(SignatureBuffer, SizeMatchesConfiguredSpan)
{
    SignatureBuffer sb(3600, 2);
    EXPECT_EQ(sb.sizeBytes(), 2u * 3600 * 4);
}

TEST(SignatureBuffer, AccessCountingForEnergyModel)
{
    SignatureBuffer sb(8, 2);
    sb.rotate();
    u64 before = sb.accesses();
    sb.write(0, 1);
    sb.read(0);
    EXPECT_GT(sb.accesses(), before);
}

TEST(SignatureBuffer, RotatePreservesAccessCounter)
{
    // Regression: rotate() used to clobber reads_ with writes_,
    // corrupting accesses() (a write would count double forever
    // after, and reads since the last rotation vanished).
    SignatureBuffer sb(8, 2);
    sb.rotate();
    sb.write(0, 1);   // 1 access
    sb.read(0);       // 2
    sb.read(1);       // 3
    EXPECT_EQ(sb.accesses(), 3u);
    sb.rotate();
    EXPECT_EQ(sb.accesses(), 3u); // rotation is not an SRAM access
    sb.write(0, 2);
    EXPECT_EQ(sb.accesses(), 4u);
}

TEST(SignatureBuffer, ReadComparisonReturnsComparisonSlot)
{
    SignatureBuffer sb(8, 2);
    sb.rotate();
    sb.write(3, 0x1111);
    sb.rotate();
    sb.write(3, 0x2222);
    u32 sig = 0;
    EXPECT_TRUE(sb.readComparison(3, sig));
    EXPECT_EQ(sig, 0x1111u);
    // The current slot is untouched by the read.
    EXPECT_EQ(sb.peek(3), 0x2222u);
}

TEST(SignatureBuffer, ReadComparisonFailsOnInvalidEntry)
{
    SignatureBuffer sb(8, 2);
    sb.rotate();              // comparison slot never written/validated
    u32 sig = 0xdead;
    EXPECT_FALSE(sb.readComparison(0, sig));
    EXPECT_EQ(sig, 0xdeadu);  // out-param untouched on failure
}

TEST(SignatureBuffer, ReadComparisonCountsOneAccess)
{
    SignatureBuffer sb(8, 2);
    sb.rotate();
    sb.write(0, 7);
    sb.rotate();
    u64 before = sb.accesses();
    u32 sig = 0;
    sb.readComparison(0, sig);
    EXPECT_EQ(sb.accesses(), before + 1);
}

TEST(SignatureBuffer, ReadComparisonSpanThreeReadsTwoFramesBack)
{
    SignatureBuffer sb(8, 3);
    sb.rotate();
    sb.write(1, 0xAAAA);      // frame 0
    sb.rotate();
    sb.write(1, 0xBBBB);      // frame 1
    sb.rotate();              // frame 2: comparison is frame 0
    u32 sig = 0;
    EXPECT_TRUE(sb.readComparison(1, sig));
    EXPECT_EQ(sig, 0xAAAAu);
}
