/**
 * @file
 * DRAM model tests: bandwidth occupancy, latency envelope, traffic
 * classification.
 */

#include <gtest/gtest.h>

#include "timing/dram.hh"

using namespace regpu;

TEST(DramModel, TrafficClassifiedByClass)
{
    GpuConfig cfg;
    DramModel d(cfg);
    d.access(0x1000, 64, TrafficClass::Texels);
    d.access(0x2000, 128, TrafficClass::Colors);
    d.access(0x3000, 32, TrafficClass::Primitives);
    EXPECT_EQ(d.traffic()[TrafficClass::Texels], 64u);
    EXPECT_EQ(d.traffic()[TrafficClass::Colors], 128u);
    EXPECT_EQ(d.traffic()[TrafficClass::Primitives], 32u);
    EXPECT_EQ(d.traffic().total(), 224u);
}

TEST(DramModel, BusyCyclesFollowBandwidth)
{
    GpuConfig cfg; // 4 B/cycle
    DramModel d(cfg);
    d.access(0x0, 400, TrafficClass::Geometry);
    EXPECT_EQ(d.busyCycles(), 100u);
}

TEST(DramModel, BusyCyclesRoundUp)
{
    GpuConfig cfg;
    DramModel d(cfg);
    d.access(0x0, 5, TrafficClass::Geometry);
    EXPECT_EQ(d.busyCycles(), 2u);
}

TEST(DramModel, LatencyWithinTableOneEnvelope)
{
    GpuConfig cfg;
    DramModel d(cfg);
    for (int i = 0; i < 100; i++) {
        Cycles lat = d.access(static_cast<Addr>(i) * 4096, 64,
                              TrafficClass::Texels);
        EXPECT_GE(lat, cfg.dramMinLatency);
        EXPECT_LE(lat, cfg.dramMaxLatency);
    }
}

TEST(DramModel, OpenRowHitsAreFast)
{
    GpuConfig cfg;
    DramModel d(cfg);
    // Channels interleave at 64 B granularity: 0x10000 and 0x10080
    // land on the same channel and in the same 2 KB row.
    d.access(0x10000, 64, TrafficClass::Texels); // opens the row
    Cycles lat = d.access(0x10080, 64, TrafficClass::Texels);
    EXPECT_EQ(lat, cfg.dramMinLatency);
}

TEST(DramModel, RowSwitchPaysMaxLatency)
{
    GpuConfig cfg;
    DramModel d(cfg);
    d.access(0x10000, 64, TrafficClass::Texels);
    Cycles lat = d.access(0x90000, 64, TrafficClass::Texels);
    EXPECT_EQ(lat, cfg.dramMaxLatency);
    EXPECT_GE(d.rowMisses(), 1u);
}

TEST(DramModel, AverageLatencyBetweenBounds)
{
    GpuConfig cfg;
    DramModel d(cfg);
    for (int i = 0; i < 50; i++)
        d.access(static_cast<Addr>(i % 3) * 65536, 64,
                 TrafficClass::Colors);
    EXPECT_GE(d.averageLatency(), cfg.dramMinLatency);
    EXPECT_LE(d.averageLatency(), cfg.dramMaxLatency);
}

TEST(DramModel, ResetClearsEverything)
{
    GpuConfig cfg;
    DramModel d(cfg);
    d.access(0x0, 64, TrafficClass::Texels);
    d.resetStats();
    EXPECT_EQ(d.traffic().total(), 0u);
    EXPECT_EQ(d.busyCycles(), 0u);
    EXPECT_EQ(d.accesses(), 0u);
}
