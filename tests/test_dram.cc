/**
 * @file
 * DRAM model tests: bandwidth occupancy, latency envelope, queueing
 * contention, direction-aware traffic classification.
 */

#include <gtest/gtest.h>

#include "timing/dram.hh"

using namespace regpu;

TEST(DramModel, TrafficClassifiedByClass)
{
    GpuConfig cfg;
    DramModel d(cfg);
    d.access(0x1000, 64, TrafficClass::Texels);
    d.access(0x2000, 128, TrafficClass::Colors);
    d.access(0x3000, 32, TrafficClass::Primitives);
    EXPECT_EQ(d.traffic()[TrafficClass::Texels], 64u);
    EXPECT_EQ(d.traffic()[TrafficClass::Colors], 128u);
    EXPECT_EQ(d.traffic()[TrafficClass::Primitives], 32u);
    EXPECT_EQ(d.traffic().total(), 224u);
}

TEST(DramModel, TrafficSplitByDirection)
{
    GpuConfig cfg;
    DramModel d(cfg);
    d.access(0x1000, 64, TrafficClass::Texels, DramDir::Read);
    d.access(0x2000, 128, TrafficClass::Colors, DramDir::Write);
    d.access(0x3000, 64, TrafficClass::Geometry, DramDir::Writeback);
    EXPECT_EQ(d.traffic().reads(TrafficClass::Texels), 64u);
    EXPECT_EQ(d.traffic().writes(TrafficClass::Colors), 128u);
    EXPECT_EQ(d.traffic().writebacks(TrafficClass::Geometry), 64u);
    EXPECT_EQ(d.traffic().totalReads(), 64u);
    EXPECT_EQ(d.traffic().totalWrites(), 128u);
    EXPECT_EQ(d.traffic().totalWritebacks(), 64u);
    // operator[] keeps the per-class all-directions view.
    EXPECT_EQ(d.traffic()[TrafficClass::Colors], 128u);
    EXPECT_EQ(d.traffic().total(), 256u);
}

TEST(DramModel, TrafficMergeAndSince)
{
    GpuConfig cfg;
    DramModel d(cfg);
    d.access(0x1000, 64, TrafficClass::Texels, DramDir::Read);
    DramTraffic snapshot = d.traffic();
    d.access(0x2000, 32, TrafficClass::Colors, DramDir::Write);
    DramTraffic delta = d.traffic().since(snapshot);
    EXPECT_EQ(delta.total(), 32u);
    EXPECT_EQ(delta.writes(TrafficClass::Colors), 32u);
    EXPECT_EQ(delta.reads(TrafficClass::Texels), 0u);

    DramTraffic merged = snapshot;
    merged.merge(delta);
    EXPECT_EQ(merged.total(), d.traffic().total());
}

TEST(DramModel, ZeroByteAccessIsNoOp)
{
    GpuConfig cfg;
    DramModel d(cfg);
    EXPECT_EQ(d.access(0x1000, 0, TrafficClass::Texels), 0u);
    EXPECT_EQ(d.traffic().total(), 0u);
    EXPECT_EQ(d.accesses(), 0u);
    EXPECT_EQ(d.busyCycles(), 0u);
}

TEST(DramModel, BusyCyclesFollowBandwidth)
{
    GpuConfig cfg; // 4 B/cycle
    DramModel d(cfg);
    d.access(0x0, 400, TrafficClass::Geometry);
    EXPECT_EQ(d.busyCycles(), 100u);
}

TEST(DramModel, BusyCyclesRoundUp)
{
    GpuConfig cfg;
    DramModel d(cfg);
    d.access(0x0, 5, TrafficClass::Geometry);
    EXPECT_EQ(d.busyCycles(), 2u);
}

TEST(DramModel, IdleLatencyWithinTableOneEnvelope)
{
    GpuConfig cfg;
    DramModel d(cfg);
    for (int i = 0; i < 100; i++) {
        // Drain between accesses: an idle bus charges only the
        // row-access latency of Table I.
        d.drain();
        Cycles lat = d.access(static_cast<Addr>(i) * 4096, 64,
                              TrafficClass::Texels);
        EXPECT_GE(lat, cfg.dramMinLatency);
        EXPECT_LE(lat, cfg.dramMaxLatency);
    }
}

TEST(DramModel, OpenRowHitsAreFastWhenIdle)
{
    GpuConfig cfg;
    DramModel d(cfg);
    // Channels interleave at 64 B granularity: 0x10000 and 0x10080
    // land on the same channel and in the same 2 KB row.
    d.access(0x10000, 64, TrafficClass::Texels); // opens the row
    d.drain();
    Cycles lat = d.access(0x10080, 64, TrafficClass::Texels);
    EXPECT_EQ(lat, cfg.dramMinLatency);
}

TEST(DramModel, RowSwitchPaysMaxLatency)
{
    GpuConfig cfg;
    DramModel d(cfg);
    d.access(0x10000, 64, TrafficClass::Texels);
    d.drain();
    Cycles lat = d.access(0x90000, 64, TrafficClass::Texels);
    EXPECT_EQ(lat, cfg.dramMaxLatency);
    EXPECT_GE(d.rowMisses(), 1u);
}

TEST(DramModel, BackToBackBurstsQueueOnTheBus)
{
    GpuConfig cfg;
    DramModel d(cfg);
    // Same open row, so the row latency is constant: any growth is
    // pure queueing delay from bus occupancy.
    Cycles first = d.access(0x10000, 64, TrafficClass::Texels);
    Cycles second = d.access(0x10080, 64, TrafficClass::Texels);
    Cycles third = d.access(0x10100, 64, TrafficClass::Texels);
    EXPECT_GT(second, cfg.dramMinLatency);
    EXPECT_GT(third, second);
    (void)first;
}

TEST(DramModel, QueueDelayBoundedByQueueCapacity)
{
    GpuConfig cfg;
    DramModel d(cfg);
    const Cycles transfer = 64 / cfg.dramBytesPerCycle;
    const Cycles cap = cfg.dramQueueEntries * transfer;
    Cycles last = 0;
    for (int i = 0; i < 200; i++)
        last = d.access(0x10000 + static_cast<Addr>(i % 8) * 128, 64,
                        TrafficClass::Texels);
    // However long the burst, the queue holds dramQueueEntries
    // transfers: the exposed delay converges to a full queue's worth
    // of pending transfers (producer-throttled), never more.
    EXPECT_LE(last, cfg.dramMaxLatency + cap);
    EXPECT_GE(last, cfg.dramMinLatency + (cfg.dramQueueEntries - 2)
                                             * transfer);
}

TEST(DramModel, SmallReadBehindLargeWritesWaitsForRealBacklog)
{
    // A full queue of large streaming writes occupies the bus for
    // far longer than a line transfer: a small read arriving behind
    // them must see the *actual* backlog, not one scaled to its own
    // transfer size.
    GpuConfig cfg;
    DramModel d(cfg);
    for (u32 i = 0; i < cfg.dramQueueEntries; i++)
        d.access(0x4'0000'0000ull + i * 1024, 1024,
                 TrafficClass::Colors, DramDir::Write);
    Cycles lat = d.access(0x10000, 64, TrafficClass::Texels);
    // Backlog ~ entries x (1024 B / 4 B/cycle) = 16 x 256 cycles.
    const Cycles writeTransfer = 1024 / cfg.dramBytesPerCycle;
    EXPECT_GT(lat, writeTransfer); // far beyond one line's worth
    EXPECT_LE(lat, cfg.dramMaxLatency
                       + cfg.dramQueueEntries * writeTransfer);
}

TEST(DramModel, DrainResetsContention)
{
    GpuConfig cfg;
    DramModel d(cfg);
    for (int i = 0; i < 50; i++)
        d.access(0x10000, 64, TrafficClass::Texels);
    d.drain();
    Cycles lat = d.access(0x10080, 64, TrafficClass::Texels);
    EXPECT_EQ(lat, cfg.dramMinLatency); // same open row, idle bus
}

TEST(DramModel, AverageLatencyAtLeastRowMinimum)
{
    GpuConfig cfg;
    DramModel d(cfg);
    for (int i = 0; i < 50; i++)
        d.access(static_cast<Addr>(i % 3) * 65536, 64,
                 TrafficClass::Colors);
    EXPECT_GE(d.averageLatency(), cfg.dramMinLatency);
    // Queueing can exceed the row envelope, but not the queue bound.
    const Cycles cap =
        cfg.dramQueueEntries * (64 / cfg.dramBytesPerCycle);
    EXPECT_LE(d.averageLatency(), cfg.dramMaxLatency + cap);
}

TEST(DramModel, ResetClearsEverything)
{
    GpuConfig cfg;
    DramModel d(cfg);
    for (int i = 0; i < 50; i++)
        d.access(0x10000, 64, TrafficClass::Texels);
    d.resetStats();
    EXPECT_EQ(d.traffic().total(), 0u);
    EXPECT_EQ(d.busyCycles(), 0u);
    EXPECT_EQ(d.accesses(), 0u);
    // The contention clock restarts with the stats: the first access
    // of the new phase pays no queue delay from the discarded one
    // (the row stays open - that is device state, not a statistic).
    EXPECT_EQ(d.access(0x10080, 64, TrafficClass::Texels),
              cfg.dramMinLatency);
}
