/**
 * @file
 * Scene / command-trace generation tests: determinism and the exact
 * properties the signature path depends on.
 */

#include <gtest/gtest.h>

#include "scene/mesh_gen.hh"
#include "scene/scene.hh"

using namespace regpu;

namespace
{

struct SceneFixture : ::testing::Test
{
    GpuConfig config;
    std::unique_ptr<Scene> scene;

    SceneFixture()
    {
        config.scaleResolution(128, 128);
        scene = std::make_unique<Scene>("s", config);
    }

    void
    addStatic()
    {
        SceneObject o;
        o.name = "static";
        o.mesh = makeQuad(32, 32);
        o.shader = ShaderKind::Flat;
        o.animate = [](u64) {
            Pose p;
            p.position = {64, 64, 0.5f};
            return p;
        };
        scene->addObject(std::move(o));
    }

    void
    addMover()
    {
        SceneObject o;
        o.name = "mover";
        o.mesh = makeQuad(8, 8);
        o.shader = ShaderKind::Flat;
        o.animate = [](u64 frame) {
            Pose p;
            p.position = {10.0f + frame, 10, 0.2f};
            return p;
        };
        scene->addObject(std::move(o));
    }
};

} // namespace

TEST_F(SceneFixture, EmitIsDeterministic)
{
    addStatic();
    addMover();
    FrameCommands a = scene->emitFrame(7);
    FrameCommands b = scene->emitFrame(7);
    ASSERT_EQ(a.draws.size(), b.draws.size());
    for (std::size_t i = 0; i < a.draws.size(); i++) {
        EXPECT_EQ(a.draws[i].state.uniforms, b.draws[i].state.uniforms);
        EXPECT_EQ(a.draws[i].vertices.size(), b.draws[i].vertices.size());
    }
}

TEST_F(SceneFixture, StaticObjectHasIdenticalUniformsAcrossFrames)
{
    addStatic();
    FrameCommands f0 = scene->emitFrame(0);
    FrameCommands f5 = scene->emitFrame(5);
    // Byte-identical constants: the root cause of tile redundancy.
    EXPECT_EQ(f0.draws[0].state.uniforms.serialize(),
              f5.draws[0].state.uniforms.serialize());
}

TEST_F(SceneFixture, MovingObjectChangesUniforms)
{
    addMover();
    FrameCommands f0 = scene->emitFrame(0);
    FrameCommands f1 = scene->emitFrame(1);
    EXPECT_NE(f0.draws[0].state.uniforms.serialize(),
              f1.draws[0].state.uniforms.serialize());
}

TEST_F(SceneFixture, InvisibleObjectEmitsNoDraw)
{
    SceneObject o;
    o.name = "blinker";
    o.mesh = makeQuad(8, 8);
    o.animate = [](u64 frame) {
        Pose p;
        p.visible = frame % 2 == 0;
        return p;
    };
    scene->addObject(std::move(o));
    EXPECT_EQ(scene->emitFrame(0).draws.size(), 1u);
    EXPECT_EQ(scene->emitFrame(1).draws.size(), 0u);
}

TEST_F(SceneFixture, GlobalStateChangeMarksFrame)
{
    addStatic();
    scene->markGlobalStateChange(3);
    EXPECT_FALSE(scene->emitFrame(2).globalStateChanged);
    EXPECT_TRUE(scene->emitFrame(3).globalStateChanged);
    EXPECT_FALSE(scene->emitFrame(4).globalStateChanged);
}

TEST_F(SceneFixture, VertexBufferIdsAreStablePerObject)
{
    addStatic();
    addMover();
    FrameCommands f = scene->emitFrame(0);
    ASSERT_EQ(f.draws.size(), 2u);
    EXPECT_NE(f.draws[0].vertexBufferId, f.draws[1].vertexBufferId);
    FrameCommands g = scene->emitFrame(9);
    EXPECT_EQ(f.draws[0].vertexBufferId, g.draws[0].vertexBufferId);
}

TEST_F(SceneFixture, UvScrollFlowsIntoUniforms)
{
    SceneObject o;
    o.name = "scroller";
    o.mesh = makeQuad(8, 8);
    o.animate = [](u64 frame) {
        Pose p;
        p.uvScroll = {0.01f * frame, 0};
        return p;
    };
    scene->addObject(std::move(o));
    EXPECT_FLOAT_EQ(scene->emitFrame(3).draws[0].state.uniforms.uvOffsetS,
                    0.03f);
}

TEST(UniformSet, SerializeIsStable)
{
    UniformSet u;
    u.mvp = Mat4::translate(1, 2, 3);
    u.tint = {0.5f, 0.25f, 1.0f, 1.0f};
    EXPECT_EQ(u.serialize(), u.serialize());
    // Non-default tint: the full record is uploaded.
    EXPECT_EQ(u.serialize().size(), UniformSet::valueCount * 4);
}

TEST(UniformSet, DefaultExtrasSerializeToMvpOnly)
{
    // The common command updates just the MVP: 16 values = 64 B,
    // matching the paper's average constants upload (8 sub-blocks).
    UniformSet u;
    u.mvp = Mat4::translate(4, 5, 6);
    EXPECT_EQ(u.serialize().size(), 16u * 4);
}

TEST(UniformSet, ExtrasSectionCannotAliasMvpOnly)
{
    UniformSet plain;
    UniformSet tinted;
    tinted.tint = {0.5f, 1, 1, 1};
    EXPECT_NE(plain.serialize().size(), tinted.serialize().size());
}

TEST(UniformSet, SerializeSensitiveToEveryField)
{
    UniformSet base;
    auto ref = base.serialize();
    UniformSet m1 = base;
    m1.mvp.m[2][1] += 0.001f;
    EXPECT_NE(m1.serialize(), ref);
    UniformSet m2 = base;
    m2.tint.y += 0.001f;
    EXPECT_NE(m2.serialize(), ref);
    UniformSet m3 = base;
    m3.uvOffsetT += 0.001f;
    EXPECT_NE(m3.serialize(), ref);
    UniformSet m4 = base;
    m4.lightDir.x += 0.001f;
    EXPECT_NE(m4.serialize(), ref);
}
