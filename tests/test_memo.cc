/**
 * @file
 * Fragment Memoization tests: LUT behaviour and the PFR even/odd
 * frame-pair asymmetry.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "gpu/pipeline.hh"
#include "memo/fragment_memo.hh"
#include "scene/mesh_gen.hh"

using namespace regpu;

TEST(MemoLut, MissThenHit)
{
    MemoLut lut(16, 4);
    Color c;
    EXPECT_FALSE(lut.lookup(42, c));
    lut.insert(42, Color(1, 2, 3));
    EXPECT_TRUE(lut.lookup(42, c));
    EXPECT_EQ(c, Color(1, 2, 3));
}

TEST(MemoLut, DistinctSignaturesDistinctEntries)
{
    MemoLut lut(16, 4);
    lut.insert(1, Color(1, 0, 0));
    lut.insert(2, Color(0, 1, 0));
    Color c;
    ASSERT_TRUE(lut.lookup(1, c));
    EXPECT_EQ(c, Color(1, 0, 0));
    ASSERT_TRUE(lut.lookup(2, c));
    EXPECT_EQ(c, Color(0, 1, 0));
}

TEST(MemoLut, LruEvictionWithinSet)
{
    MemoLut lut(8, 2); // 4 sets, 2 ways
    // Signatures mapping to the same set: s % 4 equal.
    lut.insert(0, Color(1, 1, 1));
    lut.insert(4, Color(2, 2, 2));
    Color c;
    lut.lookup(0, c);      // 0 is MRU, 4 is LRU
    lut.insert(8, Color(3, 3, 3)); // evicts 4
    EXPECT_TRUE(lut.lookup(0, c));
    EXPECT_FALSE(lut.lookup(4, c));
    EXPECT_TRUE(lut.lookup(8, c));
}

TEST(MemoLut, ClearDropsEverything)
{
    MemoLut lut(16, 4);
    lut.insert(7, Color(9, 9, 9));
    lut.clear();
    Color c;
    EXPECT_FALSE(lut.lookup(7, c));
}

TEST(MemoLut, SizeBytesMatchesConfiguration)
{
    MemoLut lut(2048, 4);
    EXPECT_EQ(lut.sizeBytes(), 2048u * 8);
}

TEST(MemoLutDeathTest, ZeroWaysIsRejected)
{
    // Regression: entries/ways with ways == 0 used to make numSets 0
    // and every `sig % numSets` undefined behaviour.
    EXPECT_EXIT(MemoLut(16, 0), ::testing::ExitedWithCode(1),
                "MemoLut: memo LUT ways must be >= 1");
}

TEST(MemoLutDeathTest, FewerEntriesThanWaysIsRejected)
{
    EXPECT_EXIT(MemoLut(2, 4), ::testing::ExitedWithCode(1),
                "MemoLut: memo LUT entries .2. must be >= ways .4.");
}

TEST(MemoLutDeathTest, NonMultipleEntriesAreRejected)
{
    EXPECT_EXIT(MemoLut(10, 4), ::testing::ExitedWithCode(1),
                "MemoLut: memo LUT entries .10. must be a multiple of"
                " ways");
}

TEST(MemoLutDeathTest, GpuConfigValidateCatchesBadLutGeometry)
{
    GpuConfig bad;
    bad.memoLutWays = 0;
    EXPECT_EXIT(bad.validate(), ::testing::ExitedWithCode(1),
                "GpuConfig: memo LUT ways must be >= 1");
    GpuConfig bad2;
    bad2.memoLutEntries = 3;
    bad2.memoLutWays = 4;
    EXPECT_EXIT(bad2.validate(), ::testing::ExitedWithCode(1),
                "GpuConfig: memo LUT entries .3. must be >= ways");
}

TEST(MemoLut, ValidConfigPassesValidation)
{
    GpuConfig good;
    good.validate(); // must not exit
    SUCCEED();
}

namespace
{

struct MemoFixture : ::testing::Test
{
    GpuConfig config;
    StatRegistry stats;
    std::unique_ptr<Scene> scene;
    std::unique_ptr<GraphicsPipeline> pipe;
    std::unique_ptr<FragmentMemoization> memo;

    MemoFixture()
    {
        config.scaleResolution(64, 64);
        config.technique = Technique::FragmentMemoization;
        scene = std::make_unique<Scene>("memo-test", config);
        u32 tex = scene->addTexture(
            Texture(0, 64, 64, TexturePattern::Solid, 5));
        SceneObject bg;
        bg.name = "bg";
        bg.mesh = makeQuad(64, 64);
        bg.shader = ShaderKind::Textured;
        bg.textureId = static_cast<i32>(tex);
        bg.depthTest = false;
        bg.animate = [](u64) {
            Pose p;
            p.position = {32, 32, 0.5f};
            return p;
        };
        scene->addObject(std::move(bg));
        memo = std::make_unique<FragmentMemoization>(config, stats);
        pipe = std::make_unique<GraphicsPipeline>(config, stats, nullptr,
                                                  scene->textures());
        pipe->setHooks(memo.get());
    }

    FrameResult
    frame(u64 i)
    {
        return pipe->renderFrame(scene->emitFrame(i), true);
    }
};

u64
reused(const FrameResult &r)
{
    u64 n = 0;
    for (const TileOutcome &t : r.tiles)
        n += t.stats.fragmentsMemoReused;
    return n;
}

u64
shaded(const FrameResult &r)
{
    u64 n = 0;
    for (const TileOutcome &t : r.tiles)
        n += t.stats.fragmentsShaded;
    return n;
}

} // namespace

TEST_F(MemoFixture, FirstFrameOfPairShadesTexturedFragments)
{
    // Textured fragments carry per-pixel texcoords: within the pair's
    // first frame essentially nothing matches, so everything is
    // shaded. (The quad's two triangles share the diagonal; those few
    // double-covered pixels repeat their inputs and may reuse.)
    FrameResult f0 = frame(0);
    EXPECT_LE(reused(f0), 64u);
    EXPECT_GE(shaded(f0), 64u * 64);
}

TEST_F(MemoFixture, FlatFragmentsReuseWithinFrame)
{
    // A flat fill's fragments all share one input signature: after
    // the first fragment of a tile, the rest hit the LUT even within
    // the pair's first frame.
    GpuConfig cfg;
    cfg.scaleResolution(64, 64);
    cfg.technique = Technique::FragmentMemoization;
    Scene flatScene("flat", cfg);
    SceneObject quad;
    quad.name = "fill";
    quad.mesh = makeQuad(64, 64);
    quad.shader = ShaderKind::Flat;
    quad.depthTest = false;
    quad.animate = [](u64) {
        Pose p;
        p.position = {32, 32, 0.5f};
        return p;
    };
    flatScene.addObject(std::move(quad));
    StatRegistry flatStats;
    FragmentMemoization flatMemo(cfg, flatStats);
    GraphicsPipeline flatPipe(cfg, flatStats, nullptr,
                              flatScene.textures());
    flatPipe.setHooks(&flatMemo);
    FrameResult f0 = flatPipe.renderFrame(flatScene.emitFrame(0), true);
    u64 r = 0, s = 0, g = 0;
    for (const TileOutcome &t : f0.tiles) {
        r += t.stats.fragmentsMemoReused;
        s += t.stats.fragmentsShaded;
        g += t.stats.fragmentsGenerated;
    }
    // One shaded fragment per tile (16 tiles), the rest reused.
    EXPECT_EQ(s, 16u);
    EXPECT_EQ(r, g - 16u);
}

TEST_F(MemoFixture, OddFrameReusesEvenFramesEntries)
{
    frame(0);
    FrameResult f1 = frame(1); // same pair: LUT warm
    EXPECT_GT(reused(f1), shaded(f1));
}

TEST_F(MemoFixture, PairBoundaryClearsLut)
{
    frame(0);
    u64 hitsAfterF0 = stats.counter("memo.hits");
    frame(1);
    u64 hitsAfterF1 = stats.counter("memo.hits");
    FrameResult f2 = frame(2); // new pair: cleared, must re-shade
    // Frame 2 still reuses within itself (uniform fragments), but its
    // first fragment classes missed, so shading happened again.
    EXPECT_GT(shaded(f2), 0u);
    EXPECT_GT(hitsAfterF1, hitsAfterF0);
}

TEST_F(MemoFixture, ReusedColorsAreExact)
{
    // Memoized reuse must be bit-exact: rendered output equals the
    // ground truth every frame (equalColors path exercised by the
    // pipeline's shadow compare on unflushed... here just check the
    // frame matches a baseline run).
    GpuConfig baseCfg = config;
    baseCfg.technique = Technique::Baseline;
    StatRegistry baseStats;
    GraphicsPipeline basePipe(baseCfg, baseStats, nullptr,
                              scene->textures());
    for (u64 f = 0; f < 3; f++) {
        FrameResult a = frame(f);
        FrameResult b = basePipe.renderFrame(scene->emitFrame(f), false);
        (void)a;
        (void)b;
    }
    // Compare final front buffers pixel-by-pixel.
    for (u32 y = 0; y < config.screenHeight; y += 3)
        for (u32 x = 0; x < config.screenWidth; x += 3)
            EXPECT_EQ(pipe->frameBuffer().frontPixel(x, y),
                      basePipe.frameBuffer().frontPixel(x, y));
}

TEST_F(MemoFixture, LookupsCounted)
{
    frame(0);
    EXPECT_GT(stats.counter("memo.lookups"), 0u);
    EXPECT_EQ(stats.counter("memo.lookups"),
              stats.counter("memo.hits")
              + (stats.counter("memo.lookups")
                 - stats.counter("memo.hits")));
}
