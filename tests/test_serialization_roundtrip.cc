/**
 * @file
 * The persisted-artifact serialization contract:
 *
 *  - every double in a CSV row / JSON run round-trips exactly
 *    (shortest-form std::to_chars), independent of whatever
 *    std::fixed / precision state the caller's stream carries;
 *  - the human-readable printers restore the stream state they
 *    change;
 *  - hostile workload names are RFC-4180-quoted in CSV and escaped
 *    in JSON;
 *  - writeJsonRun output for all ten suite workloads parses under a
 *    strict JSON grammar (no trailing commas, no NaN/Infinity, no
 *    unescaped control characters).
 *
 * The strict parser itself lives in tests/strict_json.hh (shared with
 * the observability artifact tests).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "sim/bench_json.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

#include "strict_json.hh"

using namespace regpu;
using regpu::testutil::StrictJsonParser;

namespace
{

/** Split one CSV line into fields under RFC 4180 quoting rules. */
std::vector<std::string>
parseCsvLine(const std::string &line)
{
    std::vector<std::string> fields;
    std::string cur;
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); i++) {
        const char c = line[i];
        if (quoted) {
            if (c == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    cur += '"';
                    i++;
                } else {
                    quoted = false;
                }
            } else {
                cur += c;
            }
        } else if (c == '"') {
            quoted = true;
        } else if (c == ',') {
            fields.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    fields.push_back(cur);
    return fields;
}

SimResult
smallRun(Technique tech, const std::string &alias = "ccs")
{
    GpuConfig config;
    config.scaleResolution(128, 80);
    config.technique = tech;
    auto scene = makeBenchmark(alias, config);
    SimOptions opts;
    opts.frames = 2;
    Simulator sim(*scene, config, opts);
    return sim.run();
}

std::size_t
columnIndex(const std::string &name)
{
    const auto &cols = csvColumns();
    for (std::size_t i = 0; i < cols.size(); i++)
        if (cols[i] == name)
            return i;
    ADD_FAILURE() << "no such column: " << name;
    return 0;
}

double
parseExactDouble(const std::string &text)
{
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    EXPECT_EQ(end, text.c_str() + text.size())
        << "not a full double: '" << text << "'";
    return v;
}

} // namespace

TEST(SerializationRoundTrip, DoublesSurviveHostileStreamState)
{
    GpuConfig config;
    config.scaleResolution(128, 80);
    SimResult r = smallRun(Technique::RenderingElimination);
    // Values that need full round-trip precision: a 6-significant-
    // digit default print would destroy all of them.
    r.energy.gpuDynamic = 123456789.0 + 1.0 / 3.0;
    r.energy.gpuStatic = 0.1;
    r.energy.memDynamic = 3.141592653589793e7;
    r.energy.memStatic = 2.5e-3;
    r.equalTilesConsecutivePct = 100.0 / 3.0;

    // One stream for everything: the summary printer used to leave
    // std::fixed/setprecision(1) behind, which then truncated every
    // double the CSV/JSON writers emitted.
    std::ostringstream os;
    printRunSummary(os, r, config);
    os.str("");
    writeCsvRow(os, r, false);
    const std::string csvRow =
        os.str().substr(0, os.str().find('\n'));
    os.str("");
    writeJsonRun(os, r, config, 1);
    const std::string jsonLine = os.str();

    const std::vector<std::string> fields = parseCsvLine(csvRow);
    ASSERT_EQ(fields.size(), csvColumns().size());
    EXPECT_EQ(parseExactDouble(fields[columnIndex("energyGpuPj")]),
              r.energy.gpu());
    EXPECT_EQ(parseExactDouble(fields[columnIndex("energyMemPj")]),
              r.energy.memory());
    EXPECT_EQ(parseExactDouble(fields[columnIndex("energyTotalPj")]),
              r.energy.total());
    EXPECT_EQ(parseExactDouble(
                  fields[columnIndex("equalTilesConsecutivePct")]),
              r.equalTilesConsecutivePct);

    StrictJsonParser parser(jsonLine);
    std::string error;
    ASSERT_TRUE(parser.parse(error)) << error;
    EXPECT_EQ(parseExactDouble(
                  parser.topLevelValueText("energyGpuPj")),
              r.energy.gpu());
    EXPECT_EQ(parseExactDouble(
                  parser.topLevelValueText("energyMemPj")),
              r.energy.memory());
    EXPECT_EQ(parseExactDouble(
                  parser.topLevelValueText("energyTotalPj")),
              r.energy.total());
    EXPECT_EQ(parseExactDouble(parser.topLevelValueText(
                  "equalTilesConsecutivePct")),
              r.equalTilesConsecutivePct);
}

TEST(SerializationRoundTrip, PrintersRestoreStreamState)
{
    GpuConfig config;
    config.scaleResolution(128, 80);
    SimResult r = smallRun(Technique::Baseline);

    std::ostringstream os;
    // lint:allow(stream-guard): deliberately hostile pre-set state —
    // the test proves the printers survive it without a guard here
    os << std::scientific;
    os.precision(11);
    const auto flagsBefore = os.flags();

    printRunSummary(os, r, config);
    EXPECT_EQ(os.flags(), flagsBefore);
    EXPECT_EQ(os.precision(), 11);

    printComparison(os, {r, r});
    EXPECT_EQ(os.flags(), flagsBefore);
    EXPECT_EQ(os.precision(), 11);
}

TEST(SerializationRoundTrip, NonFiniteDoublesSerializeAsZero)
{
    GpuConfig config;
    config.scaleResolution(128, 80);
    SimResult r = smallRun(Technique::Baseline);
    r.equalTilesConsecutivePct =
        std::numeric_limits<double>::quiet_NaN();

    std::ostringstream os;
    writeJsonRun(os, r, config, 1);
    StrictJsonParser parser(os.str());
    std::string error;
    ASSERT_TRUE(parser.parse(error)) << error; // "nan" would not parse
    EXPECT_EQ(parser.topLevelValueText("equalTilesConsecutivePct"),
              "0");
}

TEST(SerializationRoundTrip, HostileWorkloadNameIsCsvQuoted)
{
    SimResult r = smallRun(Technique::Baseline);
    r.workload = "evil,\"alias\"\nsecond line";

    std::ostringstream os;
    writeCsvRow(os, r, true);
    const std::string text = os.str();
    const std::string header = text.substr(0, text.find('\n'));
    const std::string row = text.substr(text.find('\n') + 1,
                                        text.rfind('\n')
                                            - text.find('\n') - 1);

    const std::vector<std::string> fields = parseCsvLine(row);
    ASSERT_EQ(fields.size(), csvColumns().size())
        << "hostile name split the row";
    EXPECT_EQ(fields[0], r.workload);
    EXPECT_EQ(fields[1], "Baseline");

    // The quoted field must not add top-level commas: the unquoted
    // comma count of the row equals the header's.
    std::size_t topLevelCommas = 0;
    bool quoted = false;
    for (char c : row) {
        if (c == '"')
            quoted = !quoted;
        else if (c == ',' && !quoted)
            topLevelCommas++;
    }
    std::size_t headerCommas = 0;
    for (char c : header)
        headerCommas += c == ',';
    EXPECT_EQ(topLevelCommas, headerCommas);
}

TEST(SerializationRoundTrip, HostileWorkloadNameSurvivesJson)
{
    GpuConfig config;
    config.scaleResolution(128, 80);
    SimResult r = smallRun(Technique::Baseline);
    r.workload = "evil,\"alias\"\nsecond\tline\x01";

    std::ostringstream os;
    writeJsonRun(os, r, config, 1);
    StrictJsonParser parser(os.str());
    std::string error;
    ASSERT_TRUE(parser.parse(error)) << error;
    EXPECT_EQ(parser.topLevelValueText("workload"),
              "\"evil,\\\"alias\\\"\\nsecond\\tline\\u0001\"");
}

TEST(SerializationRoundTrip, AllWorkloadsEmitStrictJson)
{
    for (const auto &info : benchmarkSuite()) {
        GpuConfig config;
        config.scaleResolution(128, 80);
        config.technique = Technique::RenderingElimination;
        SimResult r =
            smallRun(Technique::RenderingElimination, info.alias);

        std::ostringstream os;
        // Poison the stream the way a preceding summary print would.
        printRunSummary(os, r, config);
        os.str("");
        writeJsonRun(os, r, config, 7);

        StrictJsonParser parser(os.str());
        std::string error;
        ASSERT_TRUE(parser.parse(error))
            << info.alias << ": " << error;
        // Key set matches the documented schema: identity + every
        // CSV metric that is not CSV-positional.
        const auto &keys = parser.topLevelKeys();
        EXPECT_EQ(keys.front(), "workload") << info.alias;
        for (const char *key :
             {"technique", "seed", "frames", "totalCycles",
              "energyTotalPj", "dramReadB", "dramWritebackB",
              "tilesSkipped", "fragmentsShaded",
              "equalTilesConsecutivePct"})
            EXPECT_NE(std::find(keys.begin(), keys.end(), key),
                      keys.end())
                << info.alias << " missing " << key;
    }
}

TEST(SerializationRoundTrip, BenchJsonWriterEmitsStrictSortedJson)
{
    BenchJsonWriter bench;
    bench.add("z.last", "s", false, 0.1);
    bench.add("a.first", "frames/s", true, 100.0 / 3.0);
    bench.add("m.mid \"quoted\"", "bytes", false, 1e-12);

    std::ostringstream os;
    // lint:allow(stream-guard): deliberately hostile pre-set state —
    // BenchJsonWriter must emit round-trip doubles regardless
    os << std::fixed;
    os.precision(1); // must not affect the output
    bench.writeTo(os);
    const std::string text = os.str();

    StrictJsonParser parser(text);
    std::string error;
    ASSERT_TRUE(parser.parse(error)) << error;
    // Sorted by name.
    EXPECT_LT(text.find("a.first"), text.find("m.mid"));
    EXPECT_LT(text.find("m.mid"), text.find("z.last"));
    // Round-trip value, not 33.3.
    EXPECT_NE(text.find("33.333333333333336"), std::string::npos);
}
