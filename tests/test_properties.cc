/**
 * @file
 * Parameterised property suites spanning modules: image equivalence
 * of every technique against the baseline, CRC segmentation
 * invariance, and RE safety across the whole workload suite.
 */

#include <gtest/gtest.h>

#include "crc/crc32.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace regpu;

namespace
{

/** Render @p frames of @p alias under @p tech; return the sequence of
 *  front-buffer hashes (one per displayed frame). */
std::vector<u32>
frameHashes(const std::string &alias, Technique tech, u64 frames)
{
    GpuConfig config;
    config.scaleResolution(160, 96);
    config.technique = tech;
    auto scene = makeBenchmark(alias, config);
    StatRegistry stats;
    SimOptions opts;
    opts.frames = frames;
    Simulator sim(*scene, config, opts);

    std::vector<u32> hashes;
    for (u64 f = 0; f < frames; f++) {
        sim.stepFrame(f);
        std::vector<u8> bytes;
        bytes.reserve(static_cast<std::size_t>(config.screenWidth)
                      * config.screenHeight * 4);
        for (u32 y = 0; y < config.screenHeight; y++) {
            for (u32 x = 0; x < config.screenWidth; x++) {
                u32 p = sim.pipeline().frameBuffer()
                    .frontPixel(x, y).packed();
                bytes.push_back(static_cast<u8>(p));
                bytes.push_back(static_cast<u8>(p >> 8));
                bytes.push_back(static_cast<u8>(p >> 16));
                bytes.push_back(static_cast<u8>(p >> 24));
            }
        }
        hashes.push_back(crc32Tabular(bytes));
    }
    return hashes;
}

} // namespace

/**
 * The central safety property of the paper: enabling RE (or TE, or
 * memoization) never changes any displayed pixel of any frame.
 */
class ImageEquivalence
    : public ::testing::TestWithParam<std::tuple<const char *, Technique>>
{
};

TEST_P(ImageEquivalence, TechniqueOutputMatchesBaseline)
{
    const char *alias = std::get<0>(GetParam());
    const Technique tech = std::get<1>(GetParam());
    auto base = frameHashes(alias, Technique::Baseline, 6);
    auto other = frameHashes(alias, tech, 6);
    ASSERT_EQ(base.size(), other.size());
    for (std::size_t f = 0; f < base.size(); f++)
        EXPECT_EQ(base[f], other[f]) << alias << " frame " << f;
}

INSTANTIATE_TEST_SUITE_P(
    Suite, ImageEquivalence,
    ::testing::Combine(
        ::testing::Values("ccs", "cde", "ctr", "hop", "mst", "abi",
                          "tib"),
        ::testing::Values(Technique::RenderingElimination,
                          Technique::TransactionElimination,
                          Technique::FragmentMemoization)),
    [](const ::testing::TestParamInfo<
           std::tuple<const char *, Technique>> &paramInfo) {
        return std::string(std::get<0>(paramInfo.param)) + "_"
            + techniqueName(std::get<1>(paramInfo.param));
    });

/**
 * CRC segmentation invariance across random segmentations: whatever
 * block structure the Signature Unit sees, the tile signature depends
 * only on the concatenated byte stream.
 */
class CrcSegmentation : public ::testing::TestWithParam<u64>
{
};

TEST_P(CrcSegmentation, AnySegmentationSameSignature)
{
    Rng rng(GetParam());
    // Arbitrary (not 64-bit-aligned) stream length: combining is
    // byte-exact.
    const std::size_t bytes = 16 + rng.nextBounded(160);
    std::vector<u8> stream(bytes);
    for (auto &b : stream)
        b = static_cast<u8>(rng.nextBounded(256));

    // Reference: one-shot CRC.
    u32 expected = crc32Tabular(stream);

    // Random segmentation into byte-granular chunks.
    u32 running = 0;
    std::size_t pos = 0;
    while (pos < stream.size()) {
        std::size_t take = 1 + rng.nextBounded(stream.size() - pos);
        std::span<const u8> chunk(stream.data() + pos, take);
        running = crc32Combine(running, crc32Tabular(chunk), take);
        pos += take;
    }
    EXPECT_EQ(running, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrcSegmentation,
                         ::testing::Range<u64>(1, 25));

/**
 * RE safety sweep: zero false positives and zero wrongly-colored
 * skipped tiles on every workload.
 */
class ReSafety : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ReSafety, NoFalsePositivesAnywhere)
{
    GpuConfig config;
    config.scaleResolution(160, 96);
    config.technique = Technique::RenderingElimination;
    auto scene = makeBenchmark(GetParam(), config);
    SimOptions opts;
    opts.frames = 8;
    Simulator sim(*scene, config, opts);
    SimResult r = sim.run();
    EXPECT_EQ(r.reFalsePositives, 0u);
    EXPECT_EQ(r.tileClasses.diffColorsEqualInputs, 0u);
}

INSTANTIATE_TEST_SUITE_P(Suite, ReSafety,
                         ::testing::Values("ccs", "cde", "coc", "ctr",
                                           "hop", "mst", "abi", "csn",
                                           "ter", "tib"));

/**
 * Weak-hash ablation property: the XOR scheme is *allowed* to produce
 * false positives, and the simulator must detect (not mask) them.
 * This guards the instrumentation the hash-quality bench relies on.
 */
TEST(WeakHash, SimulatorDetectsCollisionsWhenTheyHappen)
{
    GpuConfig config;
    config.scaleResolution(160, 96);
    config.technique = Technique::RenderingElimination;
    u64 totalFalsePositives = 0;
    for (const char *alias : {"ccs", "ctr", "abi", "tib"}) {
        auto scene = makeBenchmark(alias, config);
        SimOptions opts;
        opts.frames = 8;
        opts.hashKind = HashKind::XorFold;
        Simulator sim(*scene, config, opts);
        SimResult r = sim.run();
        totalFalsePositives += r.reFalsePositives;
        // Regardless of collisions, the classification must stay a
        // partition.
        const TileClassCounts &tc = r.tileClasses;
        EXPECT_EQ(tc.comparedTiles,
                  tc.equalColorsEqualInputs + tc.equalColorsDiffInputs
                  + tc.diffColorsDiffInputs + tc.diffColorsEqualInputs);
    }
    // Whether or not these scenes trigger XOR collisions, counting
    // must work; the bench asserts the comparison CRC-vs-XOR.
    SUCCEED() << "xor false positives: " << totalFalsePositives;
}
