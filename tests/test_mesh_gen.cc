/**
 * @file
 * Procedural mesh generator tests.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "scene/mesh_gen.hh"

using namespace regpu;

TEST(MeshGen, QuadHasTwoTriangles)
{
    Mesh m = makeQuad(10, 20);
    EXPECT_EQ(m.triangleCount(), 2u);
    EXPECT_TRUE(m.layout.hasTexcoord);
}

TEST(MeshGen, QuadCenteredAtOrigin)
{
    Mesh m = makeQuad(10, 20);
    float minX = 1e9f, maxX = -1e9f, minY = 1e9f, maxY = -1e9f;
    for (const Vertex &v : m.vertices) {
        minX = std::min(minX, v.position.x);
        maxX = std::max(maxX, v.position.x);
        minY = std::min(minY, v.position.y);
        maxY = std::max(maxY, v.position.y);
    }
    EXPECT_FLOAT_EQ(minX, -5);
    EXPECT_FLOAT_EQ(maxX, 5);
    EXPECT_FLOAT_EQ(minY, -10);
    EXPECT_FLOAT_EQ(maxY, 10);
}

TEST(MeshGen, QuadUvScale)
{
    Mesh m = makeQuad(10, 10, 4.0f);
    float maxU = 0;
    for (const Vertex &v : m.vertices)
        maxU = std::max(maxU, v.texcoord.x);
    EXPECT_FLOAT_EQ(maxU, 4.0f);
}

TEST(MeshGen, GridTriangleCount)
{
    Rng rng(1);
    Mesh m = makeGrid(4, 3, 8, 8, 0, rng);
    EXPECT_EQ(m.triangleCount(), 4u * 3 * 2);
}

TEST(MeshGen, GridAtlasCellsInUnitRange)
{
    Rng rng(2);
    Mesh m = makeGrid(8, 8, 4, 4, 16, rng);
    for (const Vertex &v : m.vertices) {
        EXPECT_GE(v.texcoord.x, 0.0f);
        EXPECT_LE(v.texcoord.x, 1.0f);
        EXPECT_GE(v.texcoord.y, 0.0f);
        EXPECT_LE(v.texcoord.y, 1.0f);
    }
}

TEST(MeshGen, GridDeterministicPerSeed)
{
    Rng a(3), b(3);
    Mesh ma = makeGrid(4, 4, 8, 8, 16, a);
    Mesh mb = makeGrid(4, 4, 8, 8, 16, b);
    ASSERT_EQ(ma.vertices.size(), mb.vertices.size());
    for (std::size_t i = 0; i < ma.vertices.size(); i++)
        EXPECT_EQ(ma.vertices[i], mb.vertices[i]);
}

TEST(MeshGen, BoxHasTwelveTriangles)
{
    Mesh m = makeBox(2, 2, 2);
    EXPECT_EQ(m.triangleCount(), 12u);
    EXPECT_TRUE(m.layout.hasNormal);
}

TEST(MeshGen, BoxNormalsAreUnitAxisAligned)
{
    Mesh m = makeBox(2, 4, 6);
    for (const Vertex &v : m.vertices) {
        float len = v.normal.length();
        EXPECT_NEAR(len, 1.0f, 1e-5);
        int axisCount = (v.normal.x != 0) + (v.normal.y != 0)
            + (v.normal.z != 0);
        EXPECT_EQ(axisCount, 1);
    }
}

TEST(MeshGen, BoxVerticesWithinExtents)
{
    Mesh m = makeBox(2, 4, 6);
    for (const Vertex &v : m.vertices) {
        EXPECT_LE(std::abs(v.position.x), 1.0f + 1e-5f);
        EXPECT_LE(std::abs(v.position.y), 2.0f + 1e-5f);
        EXPECT_LE(std::abs(v.position.z), 3.0f + 1e-5f);
    }
}

TEST(MeshGen, SphereVerticesOnRadius)
{
    Mesh m = makeSphere(2.0f, 12, 8);
    for (const Vertex &v : m.vertices)
        EXPECT_NEAR(v.position.length(), 2.0f, 1e-4);
}

TEST(MeshGen, SphereNormalsPointOutward)
{
    Mesh m = makeSphere(3.0f, 8, 6);
    for (const Vertex &v : m.vertices) {
        Vec3 radial = v.position.normalized();
        EXPECT_NEAR(radial.dot(v.normal), 1.0f, 1e-4);
    }
}

TEST(MeshGen, SphereTriangleCountMatchesTopology)
{
    u32 slices = 10, stacks = 6;
    Mesh m = makeSphere(1.0f, slices, stacks);
    // Poles contribute one triangle per slice; interior stacks two.
    EXPECT_EQ(m.triangleCount(), slices * (2 * stacks - 2));
}

TEST(MeshGen, TerrainGridSize)
{
    Rng rng(5);
    Mesh m = makeTerrain(4, 6, 2.0f, 1.0f, rng);
    EXPECT_EQ(m.triangleCount(), 4u * 6 * 2);
}

TEST(MeshGen, TerrainHeightsWithinAmplitude)
{
    Rng rng(6);
    Mesh m = makeTerrain(8, 8, 1.0f, 2.5f, rng);
    for (const Vertex &v : m.vertices)
        EXPECT_LE(std::abs(v.position.y), 2.5f);
}

TEST(MeshGen, FlatTerrainIsFlat)
{
    Rng rng(7);
    Mesh m = makeTerrain(4, 4, 1.0f, 0.0f, rng);
    for (const Vertex &v : m.vertices)
        EXPECT_FLOAT_EQ(v.position.y, 0.0f);
}
