/**
 * @file
 * Pins the tentpole's "allocation-free streaming" claim mechanically:
 * this binary replaces the global operator new/delete with counting
 * wrappers and asserts that the signature hot paths - CRC streaming,
 * the pluggable HashStream, the stack-buffer serializers, the fragment
 * signature and the RE/TE per-tile hooks - perform zero heap
 * allocations at steady state.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <new>
#include <vector>

#include "common/stats.hh"
#include "crc/hashes.hh"
#include "gpu/raster.hh"
#include "re/rendering_elimination.hh"
#include "te/transaction_elimination.hh"

namespace
{

std::size_t gAllocCount = 0;

/** Allocations observed since construction. */
struct AllocProbe
{
    std::size_t start = gAllocCount;
    std::size_t count() const { return gAllocCount - start; }
};

} // namespace

void *
operator new(std::size_t size)
{
    gAllocCount++;
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    gAllocCount++;
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

using namespace regpu;

TEST(AllocFree, CrcStreamAndCombine)
{
    u8 data[144];
    for (std::size_t i = 0; i < sizeof(data); i++)
        data[i] = static_cast<u8>(i * 37 + 11);

    CrcTables::instance(); // build the LUTs outside the probe

    AllocProbe probe;
    Crc32Stream stream;
    stream.update({data, 20});
    stream.update({data + 20, 124});
    stream.putU32(0x12345678u);
    stream.putF32(2.5f);
    u32 whole = crc32Tabular({data, 144});
    u32 combined = crc32Combine(crc32Tabular({data, 100}),
                                crc32Tabular({data + 100, 44}), 44);
    EXPECT_EQ(probe.count(), 0u);
    EXPECT_EQ(whole, combined);
    EXPECT_NE(stream.value(), 0u);
}

TEST(AllocFree, HashStreamAllKinds)
{
    u8 data[77];
    for (std::size_t i = 0; i < sizeof(data); i++)
        data[i] = static_cast<u8>(i * 13 + 5);

    CrcTables::instance();

    for (HashKind kind : {HashKind::Crc32, HashKind::XorFold,
                          HashKind::AddFold, HashKind::Fnv1a,
                          HashKind::Trunc4}) {
        AllocProbe probe;
        HashStream stream(kind);
        stream.update({data, 33});
        stream.update({data + 33, 44});
        u32 sig = stream.finalize();
        u32 folded = hashCombine(kind, 0x1111u, sig, 77);
        EXPECT_EQ(probe.count(), 0u) << hashKindName(kind);
        (void)folded;
    }
}

namespace
{

/** A textured drawcall with one triangle (built outside the probes). */
DrawCall
makeDraw()
{
    DrawCall draw;
    draw.state.shader = ShaderKind::Textured;
    draw.state.textureId = 0;
    draw.layout.hasTexcoord = true;
    draw.vertices.resize(3);
    draw.vertices[0].position = {0, 0, 0};
    draw.vertices[1].position = {8, 0, 0};
    draw.vertices[2].position = {0, 8, 0};
    return draw;
}

} // namespace

TEST(AllocFree, StackBufferSerializers)
{
    DrawCall draw = makeDraw();
    AllocProbe probe;
    u8 uniforms[UniformSet::maxSerializedBytes];
    std::size_t uLen = draw.state.uniforms.serializeInto(uniforms);
    u8 attrs[maxTriangleAttributeBytes];
    std::size_t aLen = serializeTriangleAttributesInto(draw, 0, attrs);
    EXPECT_EQ(probe.count(), 0u);
    EXPECT_EQ(uLen, 64u);       // MVP only
    EXPECT_EQ(aLen, 3u * 2 * 16); // position + texcoord per vertex
}

TEST(AllocFree, FragmentSignature)
{
    DrawCall draw = makeDraw();
    CrcTables::instance();
    AllocProbe probe;
    u32 sig = TileRenderer::fragmentSignature(
        draw, Vec4{1, 1, 1, 1}, Vec2{0.25f, 0.75f}, 1.0f);
    EXPECT_EQ(probe.count(), 0u);
    EXPECT_NE(sig, 0u);
}

TEST(AllocFree, TransactionEliminationTileHashSteadyState)
{
    GpuConfig config;
    config.scaleResolution(64, 64);
    StatRegistry stats;
    TransactionElimination te(config, stats);
    std::vector<Color> colors(
        static_cast<std::size_t>(config.tileWidth) * config.tileHeight,
        Color(10, 20, 30));
    // Warm up three frames: the first call of each stat creates its
    // registry entry, and te.flushesEliminated needs a valid
    // comparison frame (two frames back under double buffering).
    for (u64 f = 0; f < 3; f++) {
        te.frameBegin(f, true);
        te.shouldFlushTile(0, colors);
        te.shouldFlushTile(1, colors);
        te.frameEnd();
    }

    te.frameBegin(3, true);
    AllocProbe probe;
    te.shouldFlushTile(0, colors);
    te.shouldFlushTile(1, colors);
    EXPECT_EQ(probe.count(), 0u);
    te.frameEnd();
}

TEST(AllocFree, RenderingEliminationProducersSteadyState)
{
    GpuConfig config;
    config.scaleResolution(64, 64);
    StatRegistry stats;
    RenderingElimination re(config, stats);
    DrawCall draw = makeDraw();
    Primitive prim;
    prim.firstVertex = 0;
    std::vector<TileId> tiles = {0, 1, 2};
    // Warm up: stat entries, signature-unit bitmap capacity.
    re.frameBegin(0, true);
    re.onDrawcallConstants(0, draw);
    re.onPrimitiveBinned(prim, draw, tiles);
    re.frameEnd();

    re.frameBegin(1, true);
    AllocProbe probe;
    re.onDrawcallConstants(0, draw);
    re.onPrimitiveBinned(prim, draw, tiles);
    re.onPrimitiveBinned(prim, draw, tiles);
    EXPECT_EQ(probe.count(), 0u);
    re.frameEnd();
}
