/**
 * @file
 * GpuConfig (Table I) derived-value tests.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/config.hh"

using namespace regpu;

TEST(GpuConfig, TableOneDefaults)
{
    GpuConfig c;
    EXPECT_EQ(c.frequencyHz, 400'000'000u);
    EXPECT_EQ(c.screenWidth, 1196u);
    EXPECT_EQ(c.screenHeight, 768u);
    EXPECT_EQ(c.tileWidth, 16u);
    EXPECT_EQ(c.tileHeight, 16u);
    EXPECT_EQ(c.numVertexProcessors, 1u);
    EXPECT_EQ(c.numFragmentProcessors, 4u);
    EXPECT_EQ(c.l2Cache.sizeBytes, 256 * KiB);
    EXPECT_EQ(c.tileCache.sizeBytes, 128 * KiB);
    EXPECT_EQ(c.dramBytesPerCycle, 4u);
}

TEST(GpuConfig, TileGridCoversScreen)
{
    GpuConfig c;
    // 1196/16 = 74.75 -> 75 tiles; 768/16 = 48.
    EXPECT_EQ(c.tilesX(), 75u);
    EXPECT_EQ(c.tilesY(), 48u);
    EXPECT_EQ(c.numTiles(), 3600u);
}

TEST(GpuConfig, TileAtMapsPixelsToTiles)
{
    GpuConfig c;
    EXPECT_EQ(c.tileAt(0, 0), 0u);
    EXPECT_EQ(c.tileAt(15, 15), 0u);
    EXPECT_EQ(c.tileAt(16, 0), 1u);
    EXPECT_EQ(c.tileAt(0, 16), c.tilesX());
    EXPECT_EQ(c.tileAt(1195, 767), c.numTiles() - 1);
}

TEST(GpuConfig, SignatureBufferSizeMatchesPaper)
{
    GpuConfig c;
    // 2 frames x 3600 tiles x 4 B = 28.8 KB: small enough for on-chip
    // SRAM, the feasibility argument of Section III.
    EXPECT_EQ(c.signatureBufferBytes(), 2u * 3600 * 4);
    EXPECT_LT(c.signatureBufferBytes(), 32 * KiB);
}

TEST(GpuConfig, ScaleResolutionChangesGrid)
{
    GpuConfig c;
    c.scaleResolution(400, 256);
    EXPECT_EQ(c.tilesX(), 25u);
    EXPECT_EQ(c.tilesY(), 16u);
}

TEST(GpuConfig, PrintMentionsKeyParameters)
{
    GpuConfig c;
    std::ostringstream os;
    c.print(os);
    std::string text = os.str();
    EXPECT_NE(text.find("400 MHz"), std::string::npos);
    EXPECT_NE(text.find("1196x768"), std::string::npos);
}

TEST(GpuConfig, TechniqueNames)
{
    EXPECT_STREQ(techniqueName(Technique::Baseline), "Baseline");
    EXPECT_STREQ(techniqueName(Technique::RenderingElimination), "RE");
    EXPECT_STREQ(techniqueName(Technique::TransactionElimination), "TE");
    EXPECT_STREQ(techniqueName(Technique::FragmentMemoization), "Memo");
}

TEST(GpuConfig, EdgeTileFootprint)
{
    GpuConfig c; // 1196 = 74*16 + 12: last tile column is 12 px wide
    EXPECT_EQ(c.tilesX() * c.tileWidth, 1200u);
    EXPECT_GT(c.tilesX() * c.tileWidth, c.screenWidth);
}

// ---------------------------------------------------------------------------
// validate(): cache/DRAM knob guards (death tests, PR 2 precedent)
// ---------------------------------------------------------------------------

TEST(GpuConfigDeathTest, NonPowerOfTwoSetCountIsFatal)
{
    GpuConfig bad;
    // 3 sets: 384 B / (2 ways x 64 B lines).
    bad.vertexCache.sizeBytes = 384;
    bad.vertexCache.ways = 2;
    bad.vertexCache.lineBytes = 64;
    EXPECT_EXIT(bad.validate(), ::testing::ExitedWithCode(1),
                "set count must be a power of two");
}

TEST(GpuConfigDeathTest, ZeroLineBytesIsFatal)
{
    GpuConfig bad;
    bad.l2Cache.lineBytes = 0;
    EXPECT_EXIT(bad.validate(), ::testing::ExitedWithCode(1),
                "lineBytes must be >= 1");
}

TEST(GpuConfigDeathTest, ZeroWaysIsFatal)
{
    GpuConfig bad;
    bad.textureCache.ways = 0;
    EXPECT_EXIT(bad.validate(), ::testing::ExitedWithCode(1),
                "ways must be >= 1");
}

TEST(GpuConfigDeathTest, CacheSmallerThanOneSetIsFatal)
{
    GpuConfig bad;
    bad.tileCache.sizeBytes = 64; // one 8-way set needs 512 B
    EXPECT_EXIT(bad.validate(), ::testing::ExitedWithCode(1),
                "smaller than one set");
}

TEST(GpuConfigDeathTest, ZeroDramBytesPerCycleIsFatal)
{
    GpuConfig bad;
    bad.dramBytesPerCycle = 0;
    EXPECT_EXIT(bad.validate(), ::testing::ExitedWithCode(1),
                "dramBytesPerCycle must be >= 1");
}

TEST(GpuConfigDeathTest, ZeroDramQueueEntriesIsFatal)
{
    GpuConfig bad;
    bad.dramQueueEntries = 0;
    EXPECT_EXIT(bad.validate(), ::testing::ExitedWithCode(1),
                "dramQueueEntries must be >= 1");
}

TEST(GpuConfigDeathTest, ZeroTexelMlpIsFatal)
{
    GpuConfig bad;
    bad.texelMissesInFlight = 0;
    EXPECT_EXIT(bad.validate(), ::testing::ExitedWithCode(1),
                "texelMissesInFlight must be >= 1");
}

TEST(GpuConfigDeathTest, CacheModelConstructorGuardsGeometryToo)
{
    CacheParams bad;
    bad.name = "direct";
    bad.sizeBytes = 384; // 3 sets
    EXPECT_EXIT((void)validateCacheGeometry(bad),
                ::testing::ExitedWithCode(1),
                "set count must be a power of two");
}

TEST(GpuConfig, DefaultConfigValidates)
{
    GpuConfig c;
    c.validate(); // must not exit
    EXPECT_EQ(c.texelMissesInFlight, 4u);
    EXPECT_EQ(c.dramQueueEntries, 16u);
}

TEST(GpuConfigDeathTest, ZeroTextureCachesIsFatal)
{
    GpuConfig bad;
    bad.numTextureCaches = 0;
    EXPECT_EXIT(bad.validate(), ::testing::ExitedWithCode(1),
                "numTextureCaches must be >= 1");
}
