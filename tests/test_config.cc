/**
 * @file
 * GpuConfig (Table I) derived-value tests.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/config.hh"

using namespace regpu;

TEST(GpuConfig, TableOneDefaults)
{
    GpuConfig c;
    EXPECT_EQ(c.frequencyHz, 400'000'000u);
    EXPECT_EQ(c.screenWidth, 1196u);
    EXPECT_EQ(c.screenHeight, 768u);
    EXPECT_EQ(c.tileWidth, 16u);
    EXPECT_EQ(c.tileHeight, 16u);
    EXPECT_EQ(c.numVertexProcessors, 1u);
    EXPECT_EQ(c.numFragmentProcessors, 4u);
    EXPECT_EQ(c.l2Cache.sizeBytes, 256 * KiB);
    EXPECT_EQ(c.tileCache.sizeBytes, 128 * KiB);
    EXPECT_EQ(c.dramBytesPerCycle, 4u);
}

TEST(GpuConfig, TileGridCoversScreen)
{
    GpuConfig c;
    // 1196/16 = 74.75 -> 75 tiles; 768/16 = 48.
    EXPECT_EQ(c.tilesX(), 75u);
    EXPECT_EQ(c.tilesY(), 48u);
    EXPECT_EQ(c.numTiles(), 3600u);
}

TEST(GpuConfig, TileAtMapsPixelsToTiles)
{
    GpuConfig c;
    EXPECT_EQ(c.tileAt(0, 0), 0u);
    EXPECT_EQ(c.tileAt(15, 15), 0u);
    EXPECT_EQ(c.tileAt(16, 0), 1u);
    EXPECT_EQ(c.tileAt(0, 16), c.tilesX());
    EXPECT_EQ(c.tileAt(1195, 767), c.numTiles() - 1);
}

TEST(GpuConfig, SignatureBufferSizeMatchesPaper)
{
    GpuConfig c;
    // 2 frames x 3600 tiles x 4 B = 28.8 KB: small enough for on-chip
    // SRAM, the feasibility argument of Section III.
    EXPECT_EQ(c.signatureBufferBytes(), 2u * 3600 * 4);
    EXPECT_LT(c.signatureBufferBytes(), 32 * KiB);
}

TEST(GpuConfig, ScaleResolutionChangesGrid)
{
    GpuConfig c;
    c.scaleResolution(400, 256);
    EXPECT_EQ(c.tilesX(), 25u);
    EXPECT_EQ(c.tilesY(), 16u);
}

TEST(GpuConfig, PrintMentionsKeyParameters)
{
    GpuConfig c;
    std::ostringstream os;
    c.print(os);
    std::string text = os.str();
    EXPECT_NE(text.find("400 MHz"), std::string::npos);
    EXPECT_NE(text.find("1196x768"), std::string::npos);
}

TEST(GpuConfig, TechniqueNames)
{
    EXPECT_STREQ(techniqueName(Technique::Baseline), "Baseline");
    EXPECT_STREQ(techniqueName(Technique::RenderingElimination), "RE");
    EXPECT_STREQ(techniqueName(Technique::TransactionElimination), "TE");
    EXPECT_STREQ(techniqueName(Technique::FragmentMemoization), "Memo");
}

TEST(GpuConfig, EdgeTileFootprint)
{
    GpuConfig c; // 1196 = 74*16 + 12: last tile column is 12 px wide
    EXPECT_EQ(c.tilesX() * c.tileWidth, 1200u);
    EXPECT_GT(c.tilesX() * c.tileWidth, c.screenWidth);
}
