/**
 * @file
 * Procedural-texture and sampler tests.
 */

#include <gtest/gtest.h>

#include "gpu/texture.hh"

using namespace regpu;

TEST(Texture, DeterministicContent)
{
    Texture a(0, 64, 64, TexturePattern::Noise, 7);
    Texture b(0, 64, 64, TexturePattern::Noise, 7);
    for (u32 v = 0; v < 64; v += 5)
        for (u32 u = 0; u < 64; u += 5)
            EXPECT_EQ(a.texel(u, v), b.texel(u, v));
}

TEST(Texture, DifferentSeedsDiffer)
{
    Texture a(0, 64, 64, TexturePattern::Noise, 7);
    Texture b(0, 64, 64, TexturePattern::Noise, 8);
    int diff = 0;
    for (u32 v = 0; v < 64; v += 4)
        for (u32 u = 0; u < 64; u += 4)
            if (!(a.texel(u, v) == b.texel(u, v)))
                diff++;
    EXPECT_GT(diff, 10);
}

TEST(Texture, SolidIsUniform)
{
    Texture t(0, 32, 32, TexturePattern::Solid, 3);
    Color c0 = t.texel(0, 0);
    for (u32 v = 0; v < 32; v++)
        for (u32 u = 0; u < 32; u++)
            EXPECT_EQ(t.texel(u, v), c0);
}

TEST(Texture, CheckerAlternates)
{
    Texture t(0, 64, 64, TexturePattern::Checker, 5);
    EXPECT_NE(t.texel(0, 0), t.texel(16, 0));
    EXPECT_EQ(t.texel(0, 0), t.texel(32, 0));
}

TEST(Texture, WrapsCoordinates)
{
    Texture t(0, 32, 32, TexturePattern::Gradient, 9);
    EXPECT_EQ(t.texel(32, 0), t.texel(0, 0));
    EXPECT_EQ(t.texel(-1, 0), t.texel(31, 0));
    EXPECT_EQ(t.texel(0, 33), t.texel(0, 1));
}

TEST(Texture, AddressMapIsPerTexture)
{
    Texture a(1, 32, 32, TexturePattern::Solid, 1);
    Texture b(2, 32, 32, TexturePattern::Solid, 1);
    EXPECT_NE(a.baseAddr(), b.baseAddr());
    EXPECT_EQ(a.texelAddr(0, 0), a.baseAddr());
    EXPECT_EQ(a.texelAddr(1, 0), a.baseAddr() + 4);
    EXPECT_EQ(a.texelAddr(0, 1), a.baseAddr() + 32 * 4);
}

TEST(Texture, SetTexelOverwrites)
{
    Texture t(0, 32, 32, TexturePattern::Solid, 1);
    Color red(255, 0, 0);
    t.setTexel(3, 4, red);
    EXPECT_EQ(t.texel(3, 4), red);
}

TEST(Sampler, NearestPicksExactTexel)
{
    Texture t(0, 32, 32, TexturePattern::Checker, 5);
    // Sample dead-centre of texel (8, 8).
    Color c = Sampler::sample(t, (8 + 0.5f) / 32, (8 + 0.5f) / 32,
                              Sampler::Filter::Nearest, nullptr);
    EXPECT_EQ(c, t.texel(8, 8));
}

TEST(Sampler, NearestTouchesOneTexel)
{
    Texture t(0, 32, 32, TexturePattern::Solid, 5);
    std::vector<Addr> touched;
    Sampler::sample(t, 0.5f, 0.5f, Sampler::Filter::Nearest, &touched);
    EXPECT_EQ(touched.size(), 1u);
}

TEST(Sampler, BilinearTouchesFourTexels)
{
    Texture t(0, 32, 32, TexturePattern::Solid, 5);
    std::vector<Addr> touched;
    Sampler::sample(t, 0.37f, 0.61f, Sampler::Filter::Bilinear, &touched);
    EXPECT_EQ(touched.size(), 4u);
}

TEST(Sampler, BilinearOnSolidIsExact)
{
    Texture t(0, 32, 32, TexturePattern::Solid, 5);
    Color c = Sampler::sample(t, 0.123f, 0.456f,
                              Sampler::Filter::Bilinear, nullptr);
    EXPECT_EQ(c, t.texel(0, 0));
}

TEST(Sampler, BilinearInterpolatesBetweenTexels)
{
    Texture t(0, 32, 32, TexturePattern::Solid, 5);
    t.setTexel(0, 0, Color(0, 0, 0, 255));
    t.setTexel(1, 0, Color(255, 255, 255, 255));
    // Halfway between texel 0 and 1 centres on row 0.
    Color c = Sampler::sample(t, 1.0f / 32, 0.5f / 32,
                              Sampler::Filter::Bilinear, nullptr);
    EXPECT_NEAR(c.r, 128, 2);
}

TEST(Texture, SizeBytes)
{
    Texture t(0, 128, 64, TexturePattern::Solid, 1);
    EXPECT_EQ(t.sizeBytes(), 128u * 64 * 4);
}
