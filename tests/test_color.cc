/**
 * @file
 * Color packing and Blend-unit tests.
 */

#include <gtest/gtest.h>

#include "gpu/color.hh"

using namespace regpu;

TEST(Color, PackUnpackRoundTrip)
{
    Color c(10, 20, 30, 40);
    EXPECT_EQ(Color::fromPacked(c.packed()), c);
}

TEST(Color, DefaultIsOpaqueBlack)
{
    Color c;
    EXPECT_EQ(c, Color(0, 0, 0, 255));
}

TEST(Color, FromVec4ClampsAndRounds)
{
    EXPECT_EQ(Color::fromVec4({2.0f, -1.0f, 0.5f, 1.0f}),
              Color(255, 0, 128, 255));
}

TEST(Color, ToVec4RoundTripWithinQuantum)
{
    Color c(100, 150, 200, 250);
    Color back = Color::fromVec4(c.toVec4());
    EXPECT_EQ(back, c);
}

TEST(Blend, ReplaceIgnoresDestination)
{
    Color src(1, 2, 3, 4), dst(9, 9, 9, 9);
    EXPECT_EQ(blend(BlendMode::Replace, src, dst), src);
}

TEST(Blend, AlphaBlendOpaqueSourceWins)
{
    Color src(200, 100, 50, 255), dst(0, 0, 0, 255);
    EXPECT_EQ(blend(BlendMode::AlphaBlend, src, dst), src);
}

TEST(Blend, AlphaBlendTransparentSourceKeepsDestinationRgb)
{
    Color src(200, 100, 50, 0), dst(10, 20, 30, 255);
    Color out = blend(BlendMode::AlphaBlend, src, dst);
    EXPECT_EQ(out.r, 10);
    EXPECT_EQ(out.g, 20);
    EXPECT_EQ(out.b, 30);
}

TEST(Blend, AlphaBlendHalfMixes)
{
    Color src(255, 0, 0, 128), dst(0, 0, 255, 255);
    Color out = blend(BlendMode::AlphaBlend, src, dst);
    EXPECT_NEAR(out.r, 128, 1);
    EXPECT_NEAR(out.b, 127, 1);
}

TEST(Blend, AdditiveSaturates)
{
    Color src(200, 200, 10, 255), dst(100, 10, 10, 255);
    Color out = blend(BlendMode::Additive, src, dst);
    EXPECT_EQ(out.r, 255);
    EXPECT_EQ(out.g, 210);
    EXPECT_EQ(out.b, 20);
}

TEST(Blend, AlphaBlendIsDeterministicInteger)
{
    // Fixed-function integer blend: same inputs, same outputs, no
    // float wobble - a prerequisite for tile-color reproducibility.
    Color src(123, 45, 67, 89), dst(210, 98, 76, 255);
    Color a = blend(BlendMode::AlphaBlend, src, dst);
    Color b = blend(BlendMode::AlphaBlend, src, dst);
    EXPECT_EQ(a, b);
}
