/**
 * @file
 * Workload suite tests: construction, determinism and coherence-class
 * placement (static-camera games must show high tile redundancy, the
 * shooter almost none).
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace regpu;

TEST(Workloads, SuiteHasTenEntries)
{
    EXPECT_EQ(benchmarkSuite().size(), 10u);
}

TEST(Workloads, AliasesMatchPaperTable)
{
    const char *expected[] = {"ccs", "cde", "coc", "ctr", "hop",
                              "mst", "abi", "csn", "ter", "tib"};
    const auto &suite = benchmarkSuite();
    for (std::size_t i = 0; i < suite.size(); i++)
        EXPECT_EQ(suite[i].alias, expected[i]);
}

TEST(Workloads, AllBenchmarksConstruct)
{
    GpuConfig config;
    config.scaleResolution(160, 96);
    for (const auto &info : benchmarkSuite()) {
        auto scene = makeBenchmark(info.alias, config);
        ASSERT_NE(scene, nullptr) << info.alias;
        EXPECT_EQ(scene->name(), info.alias);
        EXPECT_FALSE(scene->objects().empty()) << info.alias;
        EXPECT_FALSE(scene->emitFrame(0).draws.empty()) << info.alias;
    }
}

TEST(Workloads, UnknownAliasDiesListingValidAliases)
{
    GpuConfig config;
    EXPECT_EXIT(makeBenchmark("nope", config),
                ::testing::ExitedWithCode(1),
                "unknown benchmark alias: nope.*valid aliases:.*ccs.*"
                "tib");
    EXPECT_TRUE(isBenchmarkAlias("ccs"));
    EXPECT_FALSE(isBenchmarkAlias("nope"));
    for (const auto &info : benchmarkSuite())
        EXPECT_NE(benchmarkAliasList().find(info.alias),
                  std::string::npos)
            << info.alias;
}

TEST(Workloads, ScenesAreDeterministicAcrossConstruction)
{
    GpuConfig config;
    config.scaleResolution(160, 96);
    auto a = makeBenchmark("ccs", config);
    auto b = makeBenchmark("ccs", config);
    FrameCommands fa = a->emitFrame(4);
    FrameCommands fb = b->emitFrame(4);
    ASSERT_EQ(fa.draws.size(), fb.draws.size());
    for (std::size_t i = 0; i < fa.draws.size(); i++)
        EXPECT_EQ(fa.draws[i].state.uniforms.serialize(),
                  fb.draws[i].state.uniforms.serialize());
}

TEST(Workloads, DesktopSceneIsFullyStatic)
{
    GpuConfig config;
    config.scaleResolution(160, 96);
    auto scene = makeDesktopScene(config);
    FrameCommands f0 = scene->emitFrame(0);
    FrameCommands f9 = scene->emitFrame(9);
    ASSERT_EQ(f0.draws.size(), f9.draws.size());
    for (std::size_t i = 0; i < f0.draws.size(); i++)
        EXPECT_EQ(f0.draws[i].state.uniforms.serialize(),
                  f9.draws[i].state.uniforms.serialize());
}

namespace
{

/** Fraction of tiles RE skips at small scale over a short run. */
double
skippedFraction(const std::string &alias)
{
    GpuConfig config;
    config.scaleResolution(208, 128);
    config.technique = Technique::RenderingElimination;
    auto scene = makeBenchmark(alias, config);
    SimOptions opts;
    opts.frames = 10;
    Simulator sim(*scene, config, opts);
    SimResult r = sim.run();
    return static_cast<double>(r.tilesSkippedByRe) / r.tilesTotal;
}

} // namespace

TEST(Workloads, StaticCameraGamesAreHighlyRedundant)
{
    // ccs/cde/hop: >60% of all tiles skipped even counting the warmup
    // frames that can never skip.
    EXPECT_GT(skippedFraction("ccs"), 0.6);
    EXPECT_GT(skippedFraction("cde"), 0.6);
    EXPECT_GT(skippedFraction("hop"), 0.6);
}

TEST(Workloads, ShooterHasAlmostNoRedundancy)
{
    EXPECT_LT(skippedFraction("mst"), 0.10);
}

TEST(Workloads, MixedGamesSitBetween)
{
    double abi = skippedFraction("abi");
    EXPECT_GT(abi, 0.05);
    EXPECT_LT(abi, 0.9);
}

TEST(Workloads, Use2DAnd3DPipelines)
{
    const auto &suite = benchmarkSuite();
    int threeD = 0;
    for (const auto &info : suite)
        threeD += info.is3D ? 1 : 0;
    EXPECT_GE(threeD, 3);
    EXPECT_LE(threeD, 7);
}
