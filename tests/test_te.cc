/**
 * @file
 * Transaction Elimination tests: flush elision on color match, no
 * elision on mismatch, independence from input changes.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "gpu/pipeline.hh"
#include "scene/mesh_gen.hh"
#include "te/transaction_elimination.hh"

using namespace regpu;

namespace
{

struct TeFixture : ::testing::Test
{
    GpuConfig config;
    StatRegistry stats;
    std::unique_ptr<Scene> scene;
    std::unique_ptr<GraphicsPipeline> pipe;
    std::unique_ptr<TransactionElimination> te;

    TeFixture()
    {
        config.scaleResolution(64, 64);
        config.technique = Technique::TransactionElimination;
    }

    void
    buildScene(bool withMover)
    {
        scene = std::make_unique<Scene>("te-test", config);
        u32 tex = scene->addTexture(
            Texture(0, 64, 64, TexturePattern::Checker, 5));
        SceneObject bg;
        bg.name = "bg";
        bg.mesh = makeQuad(64, 64);
        bg.shader = ShaderKind::Textured;
        bg.textureId = static_cast<i32>(tex);
        bg.depthTest = false;
        bg.animate = [](u64) {
            Pose p;
            p.position = {32, 32, 0.5f};
            return p;
        };
        scene->addObject(std::move(bg));
        if (withMover) {
            SceneObject mover;
            mover.name = "mover";
            mover.mesh = makeQuad(12, 12, 0.5f);
            mover.shader = ShaderKind::Textured;
            mover.textureId = static_cast<i32>(tex);
            mover.depthTest = false;
            mover.animate = [](u64 frame) {
                Pose p;
                p.position = {10.0f + 3.0f * frame, 10, 0.2f};
                return p;
            };
            scene->addObject(std::move(mover));
        }
        te = std::make_unique<TransactionElimination>(config, stats);
        pipe = std::make_unique<GraphicsPipeline>(config, stats, nullptr,
                                                  scene->textures());
        pipe->setHooks(te.get());
    }

    FrameResult
    frame(u64 i)
    {
        return pipe->renderFrame(scene->emitFrame(i), true);
    }
};

} // namespace

TEST_F(TeFixture, AllTilesStillRendered)
{
    // TE never skips rendering - only the flush.
    buildScene(false);
    for (u64 f = 0; f < 4; f++) {
        FrameResult r = frame(f);
        for (const TileOutcome &t : r.tiles)
            EXPECT_TRUE(t.rendered);
    }
}

TEST_F(TeFixture, StaticSceneFlushesEliminatedAtSteadyState)
{
    buildScene(false);
    frame(0);
    frame(1);
    FrameResult f2 = frame(2);
    for (const TileOutcome &t : f2.tiles)
        EXPECT_FALSE(t.flushed);
    EXPECT_EQ(stats.counter("te.flushesEliminated"),
              config.numTiles());
}

TEST_F(TeFixture, ChangedTilesStillFlushed)
{
    buildScene(true);
    frame(0);
    frame(1);
    FrameResult f2 = frame(2);
    u32 flushed = 0, elided = 0;
    for (const TileOutcome &t : f2.tiles)
        (t.flushed ? flushed : elided)++;
    EXPECT_GT(flushed, 0u);
    EXPECT_GT(elided, 0u);
}

TEST_F(TeFixture, ElidedTilesAreActuallyEqual)
{
    // TE must never elide a flush whose colors differ from what the
    // Frame Buffer holds (CRC32 collision would be the only cause).
    buildScene(true);
    for (u64 f = 0; f < 6; f++) {
        FrameResult r = frame(f);
        for (const TileOutcome &t : r.tiles) {
            if (t.rendered && !t.flushed) {
                EXPECT_TRUE(t.equalColors);
            }
        }
    }
}

TEST_F(TeFixture, CatchesColorRedundancyFromDifferentInputs)
{
    // An object moving behind an opaque cover changes tile *inputs*
    // but not colors: TE (output-hash) still elides the flush. This
    // is the paper's "TE may obtain savings where RE cannot".
    scene = std::make_unique<Scene>("te-occluded", config);
    scene->addTexture(Texture(0, 64, 64, TexturePattern::Solid, 5));
    // Opaque full-screen cover drawn last (painter's order).
    SceneObject spinner;
    spinner.name = "spinner";
    spinner.mesh = makeQuad(20, 20, 0.5f);
    spinner.shader = ShaderKind::Textured;
    spinner.textureId = 0;
    spinner.depthTest = false;
    spinner.animate = [](u64 frame) {
        Pose p;
        p.position = {32, 32, 0.8f};
        p.rotationZ = 0.3f * frame;
        return p;
    };
    scene->addObject(std::move(spinner));
    SceneObject cover;
    cover.name = "cover";
    cover.mesh = makeQuad(64, 64);
    cover.shader = ShaderKind::Textured;
    cover.textureId = 0;
    cover.depthTest = false;
    cover.animate = [](u64) {
        Pose p;
        p.position = {32, 32, 0.1f};
        return p;
    };
    scene->addObject(std::move(cover));

    te = std::make_unique<TransactionElimination>(config, stats);
    pipe = std::make_unique<GraphicsPipeline>(config, stats, nullptr,
                                              scene->textures());
    pipe->setHooks(te.get());

    frame(0);
    frame(1);
    FrameResult f2 = frame(2);
    for (const TileOutcome &t : f2.tiles)
        EXPECT_FALSE(t.flushed); // colors identical despite moving input
}

TEST_F(TeFixture, SignatureEnergyAccounted)
{
    buildScene(false);
    frame(0);
    EXPECT_GT(stats.counter("te.lutAccesses"), 0u);
    EXPECT_GT(stats.counter("te.sigBufferAccesses"), 0u);
}

TEST_F(TeFixture, SignatureBufferEnergyChargedPerFrameNotCumulative)
{
    // Regression: frameEnd used to charge the *cumulative*
    // buffer.accesses() every frame, so N frames billed
    // 1+2+...+N frames' worth of accesses (quadratic overcount).
    // On a static scene every frame performs the same accesses
    // (one comparison read + one write per tile), so N frames must
    // charge exactly N times one frame's energy.
    buildScene(false);
    frame(0);
    const u64 oneFrame = stats.counter("te.sigBufferAccesses");
    ASSERT_GT(oneFrame, 0u);
    for (u64 f = 1; f < 6; f++)
        frame(f);
    EXPECT_EQ(stats.counter("te.sigBufferAccesses"), 6 * oneFrame);
}

TEST_F(TeFixture, SignatureReadsAndWritesOncePerTile)
{
    // The comparison-slot read API removed the double-write of the
    // old peekComparison path: per tile per frame, TE now performs
    // exactly one comparison read and one signature write.
    buildScene(false);
    frame(0);
    EXPECT_EQ(stats.counter("te.sigBufferAccesses"),
              2ull * config.numTiles());
}
