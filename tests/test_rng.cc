/**
 * @file
 * Determinism and distribution sanity checks for the portable RNG.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"

using namespace regpu;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; i++)
        if (a.next() == b.next())
            same++;
    EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; i++)
        EXPECT_LT(r.nextBounded(17), 17u);
}

TEST(Rng, BoundedZeroReturnsZero)
{
    Rng r(7);
    EXPECT_EQ(r.nextBounded(0), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(11);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; i++) {
        i64 v = r.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        sawLo |= v == -3;
        sawHi |= v == 3;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, RangeDegenerate)
{
    Rng r(13);
    EXPECT_EQ(r.nextRange(5, 5), 5);
    EXPECT_EQ(r.nextRange(5, 3), 5);
}

TEST(Rng, FloatInUnitInterval)
{
    Rng r(17);
    for (int i = 0; i < 1000; i++) {
        float f = r.nextFloat();
        EXPECT_GE(f, 0.0f);
        EXPECT_LT(f, 1.0f);
    }
}

TEST(Rng, FloatMeanNearHalf)
{
    Rng r(19);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; i++)
        sum += r.nextFloat();
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BoundedUniformity)
{
    Rng r(23);
    int buckets[8] = {};
    const int n = 16000;
    for (int i = 0; i < n; i++)
        buckets[r.nextBounded(8)]++;
    for (int b = 0; b < 8; b++)
        EXPECT_NEAR(buckets[b], n / 8, n / 8 * 0.15);
}

TEST(Rng, FloatRangeRespectsBounds)
{
    Rng r(29);
    for (int i = 0; i < 500; i++) {
        float f = r.nextFloatRange(-2.0f, 3.0f);
        EXPECT_GE(f, -2.0f);
        EXPECT_LT(f, 3.0f);
    }
}

TEST(Rng, BoolProbabilityRoughlyHonored)
{
    Rng r(31);
    int trues = 0;
    const int n = 10000;
    for (int i = 0; i < n; i++)
        if (r.nextBool(0.25f))
            trues++;
    EXPECT_NEAR(trues, n / 4, n / 4 * 0.15);
}
