/**
 * @file
 * Simulator-level integration tests: the headline claims of the paper
 * must hold as relative shapes on the synthetic workloads.
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace regpu;

namespace
{

SimResult
runAlias(const std::string &alias, Technique tech, u64 frames = 10,
         u32 w = 208, u32 h = 128)
{
    GpuConfig config;
    config.scaleResolution(w, h);
    config.technique = tech;
    auto scene = makeBenchmark(alias, config);
    SimOptions opts;
    opts.frames = frames;
    Simulator sim(*scene, config, opts);
    return sim.run();
}

} // namespace

TEST(SimIntegration, ReSpeedsUpStaticWorkloads)
{
    SimResult base = runAlias("ccs", Technique::Baseline);
    SimResult re = runAlias("ccs", Technique::RenderingElimination);
    double speedup = static_cast<double>(base.totalCycles())
        / re.totalCycles();
    EXPECT_GT(speedup, 1.5);
}

TEST(SimIntegration, ReNearlyHarmlessOnShooter)
{
    SimResult base = runAlias("mst", Technique::Baseline);
    SimResult re = runAlias("mst", Technique::RenderingElimination);
    double ratio = static_cast<double>(re.totalCycles())
        / base.totalCycles();
    // Paper: below 1% on their traces. Our synthetic scenes are far
    // lower-poly than the commercial games (so the fixed signature
    // work of large background primitives is relatively bigger);
    // a few percent is the honest bound here - see EXPERIMENTS.md.
    EXPECT_LT(ratio, 1.05);
}

TEST(SimIntegration, ReSavesEnergyOnStaticWorkloads)
{
    SimResult base = runAlias("cde", Technique::Baseline);
    SimResult re = runAlias("cde", Technique::RenderingElimination);
    EXPECT_LT(re.energy.total(), base.energy.total() * 0.7);
}

TEST(SimIntegration, ReReducesDramTraffic)
{
    SimResult base = runAlias("ccs", Technique::Baseline);
    SimResult re = runAlias("ccs", Technique::RenderingElimination);
    EXPECT_LT(re.traffic.total(), base.traffic.total());
    EXPECT_LT(re.traffic[TrafficClass::Texels],
              base.traffic[TrafficClass::Texels]);
    EXPECT_LT(re.traffic[TrafficClass::Colors],
              base.traffic[TrafficClass::Colors]);
}

TEST(SimIntegration, ReNeverProducesWrongImages)
{
    // Zero false positives with CRC32 across the whole suite (small
    // scale): the paper found none either.
    for (const auto &info : benchmarkSuite()) {
        SimResult re = runAlias(info.alias,
                                Technique::RenderingElimination, 6,
                                160, 96);
        EXPECT_EQ(re.reFalsePositives, 0u) << info.alias;
    }
}

TEST(SimIntegration, TeEliminatesFlushesButKeepsRenderingCost)
{
    SimResult base = runAlias("ccs", Technique::Baseline);
    SimResult te = runAlias("ccs", Technique::TransactionElimination);
    // TE saves color traffic...
    EXPECT_LT(te.traffic[TrafficClass::Colors],
              base.traffic[TrafficClass::Colors]);
    // ...but still shades every fragment.
    EXPECT_EQ(te.fragmentsShaded, base.fragmentsShaded);
}

TEST(SimIntegration, ReBeatsTeOnEnergy)
{
    SimResult te = runAlias("cde", Technique::TransactionElimination);
    SimResult re = runAlias("cde", Technique::RenderingElimination);
    EXPECT_LT(re.energy.total(), te.energy.total());
}

TEST(SimIntegration, ReBeatsTeOnCycles)
{
    SimResult te = runAlias("ccs", Technique::TransactionElimination);
    SimResult re = runAlias("ccs", Technique::RenderingElimination);
    EXPECT_LT(re.totalCycles(), te.totalCycles());
}

TEST(SimIntegration, MemoizationReusesFragmentsButShadesMoreThanRe)
{
    SimResult base = runAlias("ccs", Technique::Baseline);
    SimResult memo = runAlias("ccs", Technique::FragmentMemoization);
    SimResult re = runAlias("ccs", Technique::RenderingElimination);
    EXPECT_LT(memo.fragmentsShaded, base.fragmentsShaded);
    EXPECT_LT(re.fragmentsShaded, memo.fragmentsShaded);
}

TEST(SimIntegration, TileClassesPartitionCompares)
{
    SimResult re = runAlias("ctr", Technique::RenderingElimination);
    const TileClassCounts &tc = re.tileClasses;
    EXPECT_EQ(tc.comparedTiles,
              tc.equalColorsEqualInputs + tc.equalColorsDiffInputs
              + tc.diffColorsDiffInputs + tc.diffColorsEqualInputs);
    // CRC32: no diff-colors-equal-inputs tiles.
    EXPECT_EQ(tc.diffColorsEqualInputs, 0u);
}

TEST(SimIntegration, FalseNegativeSourceProducesEqColorsDiffInputs)
{
    // ctr has the occluded spinner: some tiles have equal colors but
    // different inputs (the paper's 12% mid bar).
    SimResult re = runAlias("ctr", Technique::RenderingElimination);
    EXPECT_GT(re.tileClasses.equalColorsDiffInputs, 0u);
}

TEST(SimIntegration, GeometryWorkPreservedUnderRe)
{
    // RE skips raster work only: geometry cycles never shrink, and
    // grow only by the Signature Unit stalls. Low-poly synthetic
    // scenes with full-screen background primitives make that stall
    // a larger fraction of (small) geometry time than the paper's
    // 0.64% - the raster-side savings still dwarf it (checked by
    // ReSpeedsUpStaticWorkloads).
    SimResult base = runAlias("ccs", Technique::Baseline);
    SimResult re = runAlias("ccs", Technique::RenderingElimination);
    EXPECT_GE(re.geometryCycles, base.geometryCycles);
    EXPECT_EQ(re.geometryCycles - base.geometryCycles,
              re.signatureStallCycles);
    EXPECT_LT(re.signatureStallCycles, base.totalCycles() / 20);
}

TEST(SimIntegration, EqualTilesMetricMatchesCoherenceClass)
{
    SimResult ccs = runAlias("ccs", Technique::Baseline);
    SimResult mst = runAlias("mst", Technique::Baseline);
    EXPECT_GT(ccs.equalTilesConsecutivePct, 75.0);
    EXPECT_LT(mst.equalTilesConsecutivePct, 20.0);
}

TEST(SimIntegration, ResultsAreReproducible)
{
    SimResult a = runAlias("tib", Technique::RenderingElimination, 6);
    SimResult b = runAlias("tib", Technique::RenderingElimination, 6);
    EXPECT_EQ(a.totalCycles(), b.totalCycles());
    EXPECT_EQ(a.tilesSkippedByRe, b.tilesSkippedByRe);
    EXPECT_EQ(a.traffic.total(), b.traffic.total());
    EXPECT_DOUBLE_EQ(a.energy.total(), b.energy.total());
}
