/**
 * @file
 * ParallelRunner contention stress tests — the race-detection gate for
 * intra-frame tile parallelism (and any future concurrency).
 *
 * These suites are deliberately thread-heavy and run under
 * `scripts/check.sh --tsan` (-DREGPU_SANITIZE=thread) as well as in
 * the plain tier-1 pass: many small jobs racing for the worker pool,
 * worker counts far above the job count, the process-wide verified-
 * trace cache hammered from several runner threads at once, and
 * result merging validated against the sequential fold bit-for-bit.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hh"
#include "sim/parallel_runner.hh"
#include "sim/report.hh"
#include "trace/trace_writer.hh"
#include "workloads/workloads.hh"

using namespace regpu;

namespace
{

/** Tiny live job: cheap enough that dozens fit in a TSan run. */
SimJob
tinyJob(const char *alias, Technique tech, u64 seed, u64 frames = 2)
{
    SimJob job;
    job.workload = alias;
    job.config.scaleResolution(96, 64);
    job.config.technique = tech;
    job.options.frames = frames;
    job.sceneSeed = seed;
    return job;
}

/** Many small jobs spanning aliases, techniques and seeds. */
std::vector<SimJob>
smallJobFlood(std::size_t count)
{
    static const char *const aliases[] = {"ccs", "mst", "ctr", "abi"};
    std::vector<SimJob> jobs;
    jobs.reserve(count);
    for (std::size_t i = 0; i < count; i++) {
        const char *alias = aliases[i % std::size(aliases)];
        const Technique tech = (i / std::size(aliases)) % 2 == 0
            ? Technique::Baseline
            : Technique::RenderingElimination;
        jobs.push_back(
            tinyJob(alias, tech, deriveJobSeed(1, alias, i / 8)));
    }
    return jobs;
}

/** CSV row of a result — one string carrying every exported metric,
 *  so "bit-identical" means what check.sh's smoke means by it. */
std::string
csvOf(const SimResult &r)
{
    std::ostringstream os;
    writeCsvRow(os, r, false);
    return os.str();
}

/** Stat-registry-deep equality via the CSV row plus the raw maps. */
void
expectIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(csvOf(a), csvOf(b));
    EXPECT_EQ(a.stats.allCounters(), b.stats.allCounters());
    EXPECT_EQ(a.stats.allScalars(), b.stats.allScalars());
}

} // namespace

TEST(ParallelStress, WorkerCountExceedsJobCount)
{
    // 16 workers, 3 jobs: the surplus workers must park without
    // touching any result slot.
    std::vector<SimJob> jobs = {
        tinyJob("ccs", Technique::Baseline, 1),
        tinyJob("mst", Technique::RenderingElimination, 2),
        tinyJob("ctr", Technique::TransactionElimination, 3),
    };
    const std::vector<SimResult> seq = ParallelRunner(1).run(jobs);
    const std::vector<SimResult> par = ParallelRunner(16).run(jobs);
    ASSERT_EQ(par.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); i++) {
        SCOPED_TRACE("job " + std::to_string(i));
        expectIdentical(seq[i], par[i]);
    }
}

TEST(ParallelStress, ManySmallJobsBitIdenticalAcrossWorkerCounts)
{
    // Far more jobs than workers: the work-stealing counter is under
    // real contention and completion order is thoroughly shuffled.
    const std::vector<SimJob> jobs = smallJobFlood(32);
    const std::vector<SimResult> seq = ParallelRunner(1).run(jobs);
    const std::vector<SimResult> par = ParallelRunner(8).run(jobs);
    ASSERT_EQ(seq.size(), jobs.size());
    ASSERT_EQ(par.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); i++) {
        SCOPED_TRACE("job " + std::to_string(i));
        expectIdentical(seq[i], par[i]);
    }
    // The merge fold is position-based, so it must be oblivious to
    // which worker produced which slot.
    expectIdentical(mergeResults(seq), mergeResults(par));
}

TEST(ParallelStress, SharedReplayTraceCacheHammeredFromAllWorkers)
{
    // One trace file, every job replaying it: the process-wide
    // verified-trace cache takes its first miss and all subsequent
    // hits while several ParallelRunner::run() calls race on it from
    // distinct threads. TraceScene instances on every worker read the
    // same file concurrently through independent handles.
    const std::string path =
        testing::TempDir() + "regpu_stress_shared.rgputrace";
    GpuConfig config;
    config.scaleResolution(96, 64);
    const u64 frames = 4;
    {
        auto scene = makeBenchmark("ccs", config, 7);
        captureTrace(*scene, config, frames, 7, path);
    }

    auto replayJob = [&](Technique tech, u64 first, u64 len) {
        SimJob job = tinyJob("ccs", tech, 7, len);
        job.tracePath = path;
        job.traceFirstFrame = first;
        return job;
    };
    std::vector<SimJob> jobs;
    for (int rep = 0; rep < 4; rep++) {
        jobs.push_back(replayJob(Technique::Baseline, 0, frames));
        jobs.push_back(
            replayJob(Technique::RenderingElimination, 0, frames));
        jobs.push_back(replayJob(Technique::Baseline, 1, 2));
        jobs.push_back(
            replayJob(Technique::TransactionElimination, 2, 2));
    }

    const std::vector<SimResult> seq = ParallelRunner(1).run(jobs);

    // Hammer: four runner threads, each its own 4-worker pool over the
    // same job vector and the same trace file.
    std::vector<std::vector<SimResult>> results(4);
    std::vector<std::thread> runners;
    runners.reserve(results.size());
    for (std::size_t t = 0; t < results.size(); t++)
        runners.emplace_back([&, t] {
            results[t] = ParallelRunner(4).run(jobs);
        });
    for (auto &t : runners)
        t.join();

    for (std::size_t t = 0; t < results.size(); t++) {
        ASSERT_EQ(results[t].size(), jobs.size());
        for (std::size_t i = 0; i < jobs.size(); i++) {
            SCOPED_TRACE("runner " + std::to_string(t) + " job "
                         + std::to_string(i));
            expectIdentical(seq[i], results[t][i]);
        }
    }
    std::remove(path.c_str());
}

TEST(ParallelStress, ObsSinkEnabledWhileRunnersHammerSharedTraceCache)
{
    // The SharedReplayTraceCache scenario again, but with tracing ON:
    // every worker of every pool attaches a per-thread obs ring (the
    // parked-ring reuse path churns as pools spawn and join), records
    // spans/counters into it, and interns job labels through the sink
    // lock — all while the verified-trace cache takes its concurrent
    // first-miss. Pins two contracts at once under TSan: the ObsSink
    // registry/intern/ring lifecycle is race-free against
    // ParallelRunner, and enabling observability perturbs no result
    // bit.
    const std::string path =
        testing::TempDir() + "regpu_stress_obs.rgputrace";
    GpuConfig config;
    config.scaleResolution(96, 64);
    const u64 frames = 4;
    {
        auto scene = makeBenchmark("ccs", config, 7);
        captureTrace(*scene, config, frames, 7, path);
    }

    auto replayJob = [&](Technique tech, u64 first, u64 len) {
        SimJob job = tinyJob("ccs", tech, 7, len);
        job.tracePath = path;
        job.traceFirstFrame = first;
        return job;
    };
    std::vector<SimJob> jobs;
    for (int rep = 0; rep < 4; rep++) {
        jobs.push_back(replayJob(Technique::Baseline, 0, frames));
        jobs.push_back(
            replayJob(Technique::RenderingElimination, 0, frames));
        jobs.push_back(
            replayJob(Technique::TransactionElimination, 1, 2));
    }

    // Reference results with the sink off.
    const std::vector<SimResult> seq = ParallelRunner(1).run(jobs);

    ObsSink::instance().enable(/*eventsPerThread=*/1u << 12);

    std::vector<std::vector<SimResult>> results(4);
    std::vector<std::thread> runners;
    runners.reserve(results.size());
    for (std::size_t t = 0; t < results.size(); t++)
        runners.emplace_back([&, t] {
            results[t] = ParallelRunner(4).run(jobs);
        });
    for (auto &t : runners)
        t.join();

    ObsSink::instance().disable();

    // 4 runner threads x 4 workers attached rings (the runner threads
    // themselves also record), and nothing raced: the flush must
    // produce loadable trace JSON with the runner spans present.
    EXPECT_GE(ObsSink::instance().threadCount(), 16u);
    std::ostringstream trace;
    ObsSink::instance().writeTraceJson(trace);
    EXPECT_NE(trace.str().find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(trace.str().find("\"runner\""), std::string::npos);

    for (std::size_t t = 0; t < results.size(); t++) {
        ASSERT_EQ(results[t].size(), jobs.size());
        for (std::size_t i = 0; i < jobs.size(); i++) {
            SCOPED_TRACE("runner " + std::to_string(t) + " job "
                         + std::to_string(i));
            expectIdentical(seq[i], results[t][i]);
        }
    }
    std::remove(path.c_str());
}

TEST(TilePoolStress, BitIdenticalAcrossTileJobCounts)
{
    // The tentpole contract: rasterizing a frame's tiles on any
    // number of intra-frame workers produces the same bits as the
    // serial pipeline — per workload, per technique, with the obs
    // sink enabled (span recording must not perturb results either).
    ObsSink::instance().enable(/*eventsPerThread=*/1u << 12);
    const Technique techs[] = {Technique::Baseline,
                               Technique::RenderingElimination,
                               Technique::TransactionElimination};
    for (Technique tech : techs) {
        SCOPED_TRACE(techniqueName(tech));
        std::vector<SimResult> byJobs;
        for (unsigned tileJobs : {1u, 4u, 8u}) {
            SimJob job = tinyJob("ccs", tech, 11, /*frames=*/3);
            job.options.tileJobs = tileJobs;
            byJobs.push_back(
                std::move(ParallelRunner(1).run({job}).front()));
        }
        expectIdentical(byJobs[0], byJobs[1]);
        expectIdentical(byJobs[0], byJobs[2]);
    }
    ObsSink::instance().disable();
}

TEST(TilePoolStress, OuterSweepWorkersTimesInnerTileWorkers)
{
    // Both pools at once: the sweep-level ParallelRunner schedules
    // cells on 4 workers while every cell rasterizes its tiles on 4
    // more. Under TSan this is the densest thread population in the
    // repo — 16+ simultaneous tile workers sharing nothing but the
    // obs sink — and the results must still match the fully serial
    // run slot for slot.
    std::vector<SimJob> jobs = smallJobFlood(12);
    const std::vector<SimResult> seq = ParallelRunner(1).run(jobs);

    for (SimJob &job : jobs)
        job.options.tileJobs = 4;
    ObsSink::instance().enable(/*eventsPerThread=*/1u << 12);
    const std::vector<SimResult> par = ParallelRunner(4).run(jobs);
    ObsSink::instance().disable();

    ASSERT_EQ(par.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); i++) {
        SCOPED_TRACE("job " + std::to_string(i));
        expectIdentical(seq[i], par[i]);
    }
    expectIdentical(mergeResults(seq), mergeResults(par));
}

TEST(TilePoolStress, TileWorkerSpansReachTheTimeline)
{
    // Perfetto occupancy promise: with tracing on, every pool worker
    // emits a gpu.tileWorker span carrying its worker index, so the
    // timeline shows per-worker occupancy lanes rather than one
    // anonymous blob.
    ObsSink::instance().enable(/*eventsPerThread=*/1u << 12);
    SimJob job = tinyJob("ccs", Technique::RenderingElimination, 5,
                         /*frames=*/2);
    job.options.tileJobs = 4;
    (void)ParallelRunner(1).run({job});
    ObsSink::instance().disable();

    std::ostringstream trace;
    ObsSink::instance().writeTraceJson(trace);
    EXPECT_NE(trace.str().find("\"tileWorker\""), std::string::npos);
}

TEST(TilePoolStress, TileJobsArgParsingIsStrict)
{
    // parseJobsArg-style strictness for --tile-jobs: a typo'd or
    // nonsensical worker count must die with a usage message, not
    // silently render serially (0) or truncate (garbage).
    EXPECT_EQ(parseTileJobsArg("1"), 1u);
    EXPECT_EQ(parseTileJobsArg("8"), 8u);
    EXPECT_EXIT((void)parseTileJobsArg("0"),
                ::testing::ExitedWithCode(1), "--tile-jobs");
    EXPECT_EXIT((void)parseTileJobsArg("garbage"),
                ::testing::ExitedWithCode(1), "--tile-jobs");
    EXPECT_EXIT((void)parseTileJobsArg("-4"),
                ::testing::ExitedWithCode(1), "--tile-jobs");
    EXPECT_EXIT((void)parseTileJobsArg(""),
                ::testing::ExitedWithCode(1), "--tile-jobs");
    EXPECT_EXIT((void)parseTileJobsArg("99999999999999999999"),
                ::testing::ExitedWithCode(1), "--tile-jobs");
}

TEST(ParallelStress, MergeUnderContentionMatchesSequentialFold)
{
    // Merging while other pools are mid-flight must not perturb the
    // fold: mergeResults only reads its inputs, and each runner owns
    // its result vector.
    const std::vector<SimJob> jobs = smallJobFlood(12);
    const SimResult seqMerged = mergeResults(ParallelRunner(1).run(jobs));

    std::vector<SimResult> merged(3);
    std::vector<std::thread> runners;
    runners.reserve(merged.size());
    for (std::size_t t = 0; t < merged.size(); t++)
        runners.emplace_back([&, t] {
            merged[t] = mergeResults(ParallelRunner(3).run(jobs));
        });
    for (auto &t : runners)
        t.join();

    for (std::size_t t = 0; t < merged.size(); t++) {
        SCOPED_TRACE("runner " + std::to_string(t));
        expectIdentical(seqMerged, merged[t]);
    }
}
