/**
 * @file
 * Geometry Pipeline tests: transform, clipping, culling, viewport.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "gpu/geometry.hh"
#include "gpu/memiface.hh"

using namespace regpu;

namespace
{

/** A drawcall with one triangle at the given object-space positions. */
DrawCall
triangleDraw(Vec3 a, Vec3 b, Vec3 c, Mat4 mvp = Mat4::identity())
{
    DrawCall d;
    d.layout.hasTexcoord = true;
    Vertex va, vb, vc;
    va.position = a;
    vb.position = b;
    vc.position = c;
    d.vertices = {va, vb, vc};
    d.state.uniforms.mvp = mvp;
    return d;
}

struct GeoFixture : ::testing::Test
{
    GpuConfig config;
    StatRegistry stats;
    NullMemSink mem;

    GeoFixture()
    {
        config.scaleResolution(320, 240);
    }

    GeometryOutput
    run(const DrawCall &d)
    {
        GeometryPipeline geo(config, stats, &mem);
        return geo.process(d);
    }
};

} // namespace

TEST_F(GeoFixture, FullScreenTriangleSurvives)
{
    // NDC-space triangle covering the viewport (identity mvp).
    DrawCall d = triangleDraw({-1, -1, 0}, {3, -1, 0}, {-1, 3, 0});
    GeometryOutput out = run(d);
    ASSERT_EQ(out.primitives.size(), 1u);
    EXPECT_EQ(out.verticesShaded, 3u);
}

TEST_F(GeoFixture, ViewportTransformMapsNdcToPixels)
{
    DrawCall d = triangleDraw({-1, -1, 0}, {1, -1, 0}, {-1, 1, 0});
    GeometryOutput out = run(d);
    ASSERT_EQ(out.primitives.size(), 1u);
    const Primitive &p = out.primitives[0];
    EXPECT_NEAR(p.v[0].x, 0, 1e-3);
    EXPECT_NEAR(p.v[0].y, 0, 1e-3);
    EXPECT_NEAR(p.v[1].x, 320, 1e-3);
    EXPECT_NEAR(p.v[2].y, 240, 1e-3);
}

TEST_F(GeoFixture, OffscreenTriangleRejected)
{
    DrawCall d = triangleDraw({3, 3, 0}, {4, 3, 0}, {3, 4, 0});
    GeometryOutput out = run(d);
    EXPECT_TRUE(out.primitives.empty());
    EXPECT_EQ(out.trianglesCulled, 1u);
}

TEST_F(GeoFixture, BackFacingTriangleCulledWhenDepthTested)
{
    // Clockwise winding (swapped b/c), depth test on -> culled.
    DrawCall d = triangleDraw({-1, -1, 0}, {-1, 1, 0}, {1, -1, 0});
    d.state.depthTest = true;
    GeometryOutput out = run(d);
    EXPECT_TRUE(out.primitives.empty());
}

TEST_F(GeoFixture, BackFacingKeptFor2dDraws)
{
    // 2D sprite paths disable depth testing; winding must not cull.
    DrawCall d = triangleDraw({-1, -1, 0}, {-1, 1, 0}, {1, -1, 0});
    d.state.depthTest = false;
    GeometryOutput out = run(d);
    EXPECT_EQ(out.primitives.size(), 1u);
}

TEST_F(GeoFixture, DegenerateTriangleCulled)
{
    DrawCall d = triangleDraw({0, 0, 0}, {0.5, 0.5, 0}, {1, 1, 0});
    GeometryOutput out = run(d);
    EXPECT_TRUE(out.primitives.empty());
}

TEST_F(GeoFixture, NearPlaneClippingSplitsTriangle)
{
    // Perspective camera; one vertex behind the eye forces a clip.
    Mat4 proj = Mat4::perspective(1.0f, 4.0f / 3.0f, 0.5f, 100.0f);
    DrawCall d = triangleDraw({-2, -1, -5}, {2, -1, -5}, {0, 1, 2}, proj);
    GeometryOutput out = run(d);
    EXPECT_GE(out.trianglesClipped, 1u);
    // The visible part survives as one or more primitives.
    EXPECT_GE(out.primitives.size(), 1u);
    // All produced vertices must be in front of the near plane.
    for (const Primitive &p : out.primitives)
        for (int i = 0; i < 3; i++)
            EXPECT_GT(p.v[i].invW, 0.0f);
}

TEST_F(GeoFixture, FullyBehindCameraRejected)
{
    Mat4 proj = Mat4::perspective(1.0f, 1.0f, 0.5f, 100.0f);
    DrawCall d = triangleDraw({-1, -1, 5}, {1, -1, 5}, {0, 1, 5}, proj);
    GeometryOutput out = run(d);
    EXPECT_TRUE(out.primitives.empty());
}

TEST_F(GeoFixture, DepthMappedIntoUnitRange)
{
    Mat4 proj = Mat4::perspective(1.0f, 1.0f, 1.0f, 10.0f);
    DrawCall d = triangleDraw({-1, -1, -5}, {1, -1, -5}, {0, 1, -5}, proj);
    GeometryOutput out = run(d);
    ASSERT_EQ(out.primitives.size(), 1u);
    for (int i = 0; i < 3; i++) {
        EXPECT_GE(out.primitives[0].v[i].z, 0.0f);
        EXPECT_LE(out.primitives[0].v[i].z, 1.0f);
    }
}

TEST_F(GeoFixture, VaryingsCarriedThrough)
{
    DrawCall d = triangleDraw({-1, -1, 0}, {1, -1, 0}, {-1, 1, 0});
    d.layout.hasColor = true;
    d.vertices[0].color = {1, 0, 0, 1};
    d.vertices[1].color = {0, 1, 0, 1};
    d.vertices[2].texcoord = {0.25f, 0.75f};
    GeometryOutput out = run(d);
    ASSERT_EQ(out.primitives.size(), 1u);
    EXPECT_EQ(out.primitives[0].v[0].color, (Vec4{1, 0, 0, 1}));
    EXPECT_EQ(out.primitives[0].v[1].color, (Vec4{0, 1, 0, 1}));
    EXPECT_EQ(out.primitives[0].v[2].texcoord, (Vec2{0.25f, 0.75f}));
}

TEST_F(GeoFixture, UvScrollAppliedAtVertexStage)
{
    DrawCall d = triangleDraw({-1, -1, 0}, {1, -1, 0}, {-1, 1, 0});
    d.state.uniforms.uvOffsetS = 0.5f;
    d.state.uniforms.uvOffsetT = 0.25f;
    GeometryOutput out = run(d);
    ASSERT_EQ(out.primitives.size(), 1u);
    EXPECT_FLOAT_EQ(out.primitives[0].v[0].texcoord.x, 0.5f);
    EXPECT_FLOAT_EQ(out.primitives[0].v[0].texcoord.y, 0.25f);
}

TEST_F(GeoFixture, StatsCountVerticesAndTriangles)
{
    DrawCall d = triangleDraw({-1, -1, 0}, {1, -1, 0}, {-1, 1, 0});
    run(d);
    EXPECT_EQ(stats.counter("geometry.verticesShaded"), 3u);
    EXPECT_EQ(stats.counter("geometry.trianglesIn"), 1u);
}

TEST(TriangleSerialize, LayoutSizesMatchPaperAccounting)
{
    // 3 attributes (position + color + texcoord) x 3 vertices x 16 B
    // = 144 B = 18 sub-blocks: the paper's "average primitive".
    DrawCall d;
    d.layout.hasColor = true;
    d.layout.hasTexcoord = true;
    d.vertices.resize(3);
    auto bytes = serializeTriangleAttributes(d, 0);
    EXPECT_EQ(bytes.size(), 144u);
}

TEST(TriangleSerialize, ByteStableForEqualInputs)
{
    DrawCall d;
    d.layout.hasTexcoord = true;
    d.vertices.resize(6);
    d.vertices[0].position = {1, 2, 3};
    d.vertices[3].position = {1, 2, 3};
    auto a = serializeTriangleAttributes(d, 0);
    auto b = serializeTriangleAttributes(d, 0);
    EXPECT_EQ(a, b);
}

TEST(TriangleSerialize, SensitiveToAnyAttributeChange)
{
    DrawCall d;
    d.layout.hasTexcoord = true;
    d.vertices.resize(3);
    auto before = serializeTriangleAttributes(d, 0);
    d.vertices[2].texcoord.y += 1e-6f;
    auto after = serializeTriangleAttributes(d, 0);
    EXPECT_NE(before, after);
}
