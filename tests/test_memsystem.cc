/**
 * @file
 * Memory-hierarchy (MemSystem) suite: per-stream routing, writeback
 * correctness, the byte-conservation contract at every level
 * boundary, the texel-MLP knob, and a pinned Baseline-vs-RE DRAM
 * regression under the trace replayer.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "sim/simulator.hh"
#include "timing/memsystem.hh"
#include "trace/trace_scene.hh"
#include "trace/trace_writer.hh"
#include "workloads/workloads.hh"

using namespace regpu;

namespace
{

/** Assert the conservation report is clean, printing any detail. */
void
expectConserved(const MemSystem &mem)
{
    ConservationReport rep = mem.checkConservation();
    EXPECT_EQ(rep.violations, 0u) << rep.detail;
}

} // namespace

// ---------------------------------------------------------------------------
// Basic routing (moved from the old cycle-model suite)
// ---------------------------------------------------------------------------

TEST(MemSystem, TexelMissesFillCachesThenHit)
{
    GpuConfig cfg;
    MemSystem mem(cfg);
    mem.texelFetch(0, 0x3'0000'0000ull);
    mem.texelFetch(0, 0x3'0000'0000ull);
    EXPECT_EQ(mem.textureCacheRef(0).misses(), 1u);
    EXPECT_EQ(mem.textureCacheRef(0).hits(), 1u);
    // The miss reached DRAM as texel demand-read traffic.
    EXPECT_GT(mem.dram().traffic().reads(TrafficClass::Texels), 0u);
    expectConserved(mem);
}

TEST(MemSystem, TextureCachesAreIndependent)
{
    GpuConfig cfg;
    MemSystem mem(cfg);
    mem.texelFetch(0, 0x3'0000'0000ull);
    mem.texelFetch(1, 0x3'0000'0000ull);
    EXPECT_EQ(mem.textureCacheRef(0).misses(), 1u);
    EXPECT_EQ(mem.textureCacheRef(1).misses(), 1u);
    // ...but they share the L2: the second L1's fill hits there, so
    // DRAM sees the line exactly once.
    EXPECT_EQ(mem.dram().traffic().reads(TrafficClass::Texels),
              mem.l2Ref().params().lineBytes);
    expectConserved(mem);
}

TEST(MemSystem, ParameterReadMissesGoToDramAsPrimitives)
{
    GpuConfig cfg;
    MemSystem mem(cfg);
    mem.parameterRead(0x2'0000'0000ull, 256);
    EXPECT_GT(mem.dram().traffic()[TrafficClass::Primitives], 0u);
    // Second read of the same region hits the Tile Cache.
    u64 before = mem.dram().traffic()[TrafficClass::Primitives];
    mem.parameterRead(0x2'0000'0000ull, 256);
    EXPECT_EQ(mem.dram().traffic()[TrafficClass::Primitives], before);
    expectConserved(mem);
}

TEST(MemSystem, EndFrameInvalidatesTileCache)
{
    GpuConfig cfg;
    MemSystem mem(cfg);
    mem.parameterRead(0x2'0000'0000ull, 64);
    mem.endFrame();
    u64 before = mem.dram().traffic()[TrafficClass::Primitives];
    mem.parameterRead(0x2'0000'0000ull, 64);
    EXPECT_GT(mem.dram().traffic()[TrafficClass::Primitives], before);
}

TEST(MemSystem, FrameSummaryResetsEachFrame)
{
    GpuConfig cfg;
    MemSystem mem(cfg);
    mem.texelFetch(0, 0x3'0000'0000ull);
    MemFrameSummary s1 = mem.endFrame();
    EXPECT_EQ(s1.texelMisses, 1u);
    MemFrameSummary s2 = mem.endFrame();
    EXPECT_EQ(s2.texelMisses, 0u);
}

// ---------------------------------------------------------------------------
// The mischarging fixes
// ---------------------------------------------------------------------------

TEST(MemSystem, ZeroByteRangesAreNoOps)
{
    GpuConfig cfg;
    MemSystem mem(cfg);
    mem.vertexFetch(0x1000, 0);
    mem.parameterWrite(0x2000, 0);
    mem.parameterRead(0x3000, 0);
    mem.colorFlush(0x4000, 0);
    mem.colorRead(0x5000, 0);
    EXPECT_EQ(mem.totalCacheAccesses(), 0u);
    EXPECT_EQ(mem.dram().traffic().total(), 0u);
    EXPECT_EQ(mem.dram().accesses(), 0u);
    expectConserved(mem);
}

TEST(MemSystem, RefillChargesTheActualMissingLines)
{
    // Regression for refill(addr, misses) charging addr + m*64: warm
    // line A, then fetch [A, A+128) - only line B = A+64 misses, so
    // DRAM must see exactly one more line, at B, not a re-fetch of A.
    GpuConfig cfg;
    MemSystem mem(cfg);
    const Addr a = 0x1'0000'0000ull;
    mem.vertexFetch(a, 64);
    const u64 after1 = mem.dram().traffic().reads(TrafficClass::Geometry);
    EXPECT_EQ(after1, 64u); // L1 fill -> L2 fill -> one DRAM line
    mem.vertexFetch(a, 128);
    const u64 after2 = mem.dram().traffic().reads(TrafficClass::Geometry);
    EXPECT_EQ(after2 - after1, 64u); // only line B fetched
    // And the L2 really holds B now: a texel probe of B hits the L2.
    u64 texReads = mem.dram().traffic().reads(TrafficClass::Texels);
    mem.texelFetch(0, a + 64);
    EXPECT_EQ(mem.dram().traffic().reads(TrafficClass::Texels),
              texReads); // L2 hit: no DRAM
    expectConserved(mem);
}

TEST(MemSystem, ParameterWritesAreNotDoubleChargedToDram)
{
    // Regression: the old model computed L2 misses/writebacks for PB
    // writes and then *also* charged DRAM for every byte. Now a PB
    // working set that fits in the L2 generates no DRAM traffic at
    // all until eviction.
    GpuConfig cfg;
    MemSystem mem(cfg);
    for (Addr a = 0; a < 32 * KiB; a += 64)
        mem.parameterWrite(0x2'0000'0000ull + a, 64);
    EXPECT_EQ(mem.dram().traffic()[TrafficClass::Geometry], 0u);
    expectConserved(mem);
}

TEST(MemSystem, EvictedParameterBytesReachDramAsWritebacks)
{
    // Stream a PB working set much larger than the 256 KB L2: dirty
    // lines must be written back, and their bytes must show up in
    // DramTraffic (the old model dropped them entirely).
    GpuConfig cfg;
    MemSystem mem(cfg);
    const u64 streamBytes = 2 * cfg.l2Cache.sizeBytes;
    for (Addr a = 0; a < streamBytes; a += 64)
        mem.parameterWrite(0x2'0000'0000ull + a, 64);
    const DramTraffic &tr = mem.dram().traffic();
    EXPECT_GT(tr.writebacks(TrafficClass::Geometry), 0u);
    // Write misses allocate without a refill fetch, so no read
    // traffic either - only writebacks.
    EXPECT_EQ(tr.reads(TrafficClass::Geometry), 0u);
    EXPECT_EQ(tr.writes(TrafficClass::Geometry), 0u);
    // Exactly the overflow leaves: bytes written minus L2 capacity.
    EXPECT_EQ(tr.writebacks(TrafficClass::Geometry),
              streamBytes - cfg.l2Cache.sizeBytes);
    expectConserved(mem);
}

TEST(MemSystem, FlushResidentEmitsRetainedDirtyBytes)
{
    // A PB working set that fits in the L2 reaches DRAM only at the
    // end-of-run flush - but then *all* of it must, or short runs
    // under-report writeback bytes relative to long ones.
    GpuConfig cfg;
    MemSystem mem(cfg);
    for (Addr a = 0; a < 32 * KiB; a += 64)
        mem.parameterWrite(0x2'0000'0000ull + a, 64);
    EXPECT_EQ(mem.dram().traffic()[TrafficClass::Geometry], 0u);
    mem.flushResident();
    EXPECT_EQ(mem.dram().traffic().writebacks(TrafficClass::Geometry),
              32 * KiB);
    expectConserved(mem);
}

TEST(MemSystem, ColorReadGoesThroughTheHierarchy)
{
    // Regression: colorRead was charged identically to colorFlush
    // (a streaming DRAM write). Reads must go through the L2 and be
    // classified as reads.
    GpuConfig cfg;
    MemSystem mem(cfg);
    const Addr fb = 0x4'0000'0000ull;
    mem.colorRead(fb, 1024);
    const DramTraffic &tr = mem.dram().traffic();
    EXPECT_EQ(tr.reads(TrafficClass::Colors), 1024u);
    EXPECT_EQ(tr.writes(TrafficClass::Colors), 0u);
    // A second read of the same tile hits the L2: no new DRAM bytes.
    mem.colorRead(fb, 1024);
    EXPECT_EQ(tr.reads(TrafficClass::Colors), 1024u);
    expectConserved(mem);
}

TEST(MemSystem, ColorFlushStaysAStreamingWrite)
{
    GpuConfig cfg;
    MemSystem mem(cfg);
    mem.colorFlush(0x4'0000'0000ull, 1024);
    EXPECT_EQ(mem.dram().traffic().writes(TrafficClass::Colors), 1024u);
    EXPECT_EQ(mem.dram().traffic().reads(TrafficClass::Colors), 0u);
    // Flushes are non-allocating: the L2 saw nothing.
    EXPECT_EQ(mem.l2Ref().accesses(), 0u);
    expectConserved(mem);
}

TEST(MemSystem, TexelMlpKnobScalesExposedStalls)
{
    GpuConfig serial;
    serial.texelMissesInFlight = 1;
    GpuConfig deep;
    deep.texelMissesInFlight = 8;

    auto stallsFor = [](const GpuConfig &cfg) {
        MemSystem mem(cfg);
        for (u32 i = 0; i < 64; i++)
            mem.texelFetch(0, 0x3'0000'0000ull
                               + static_cast<Addr>(i) * 4096);
        return mem.endFrame().texelStallCycles;
    };
    Cycles exposed1 = stallsFor(serial);
    Cycles exposed8 = stallsFor(deep);
    EXPECT_GT(exposed1, exposed8);
    EXPECT_GE(exposed1, 8 * exposed8 / 2); // roughly 1/N scaling
}

TEST(MemSystem, FrameSummaryCarriesPerFrameDramDeltas)
{
    GpuConfig cfg;
    MemSystem mem(cfg);
    mem.colorFlush(0x4'0000'0000ull, 512);
    mem.texelFetch(0, 0x3'0000'0000ull);
    MemFrameSummary f1 = mem.endFrame();
    EXPECT_EQ(f1.dramDelta.writes(TrafficClass::Colors), 512u);
    EXPECT_GT(f1.dramDelta.reads(TrafficClass::Texels), 0u);

    // Second frame: only its own bytes, not the cumulative total.
    mem.colorFlush(0x4'0000'0000ull, 256);
    MemFrameSummary f2 = mem.endFrame();
    EXPECT_EQ(f2.dramDelta.writes(TrafficClass::Colors), 256u);
    EXPECT_EQ(f2.dramDelta.reads(TrafficClass::Texels), 0u);
}

// ---------------------------------------------------------------------------
// Conservation: bytes-in == hits + fills + DRAM traffic, per class
// ---------------------------------------------------------------------------

TEST(MemSystem, ConservationHoldsUnderRandomTrafficMix)
{
    GpuConfig cfg;
    MemSystem mem(cfg);
    Rng rng(0xC0FFEEu);
    for (int frame = 0; frame < 4; frame++) {
        for (int i = 0; i < 2000; i++) {
            const Addr addr = rng.nextBounded(64 * MiB);
            const u32 bytes = 1 + static_cast<u32>(rng.nextBounded(512));
            switch (rng.nextBounded(6)) {
              case 0: mem.vertexFetch(0x1'0000'0000ull + addr, bytes);
                break;
              case 1: mem.parameterWrite(0x2'0000'0000ull + addr, bytes);
                break;
              case 2: mem.parameterRead(0x2'0000'0000ull + addr, bytes);
                break;
              case 3: mem.texelFetch(static_cast<u32>(rng.nextBounded(4)),
                                     0x3'0000'0000ull + addr);
                break;
              case 4: mem.colorFlush(0x4'0000'0000ull + addr, bytes);
                break;
              case 5: mem.colorRead(0x4'0000'0000ull + addr, bytes);
                break;
            }
        }
        mem.endFrame();
        expectConserved(mem);
    }
}

TEST(MemSystem, ConservationSplitsPerClassExactly)
{
    // Drive each stream separately and check the L1-hits + L2-fills +
    // DRAM identity for its class by hand.
    GpuConfig cfg;
    MemSystem mem(cfg);
    for (Addr a = 0; a < 16 * KiB; a += 32)
        mem.vertexFetch(0x1'0000'0000ull + a, 32);

    const CacheModel &l1 = mem.vertexCacheRef();
    const CacheModel &l2 = mem.l2Ref();
    // Every L1 line processed is either a hit or a miss...
    EXPECT_EQ(l1.accesses(), l1.hits() + l1.misses());
    // ...every read miss became exactly one full-line fill...
    EXPECT_EQ(l1.fills() * l1.params().lineBytes,
              l1.fillBytes(TrafficClass::Geometry));
    // ...the L2 was asked for exactly those bytes...
    EXPECT_EQ(l2.demandBytes(TrafficClass::Geometry),
              l1.fillBytes(TrafficClass::Geometry));
    // ...and DRAM supplied exactly the L2's fills.
    EXPECT_EQ(mem.dram().traffic().reads(TrafficClass::Geometry),
              l2.fillBytes(TrafficClass::Geometry));
    expectConserved(mem);
}

TEST(MemSystem, ConservationCatchesDroppedBytes)
{
    // Sanity-check the checker itself: bypassing the accounting path
    // (an unrecorded direct DRAM access) must trip it.
    GpuConfig cfg;
    MemSystem mem(cfg);
    mem.vertexFetch(0x1'0000'0000ull, 64);
    expectConserved(mem);
    mem.dram().access(0x9'0000'0000ull, 64, TrafficClass::Texels,
                      DramDir::Read);
    EXPECT_GT(mem.checkConservation().violations, 0u);
}

// ---------------------------------------------------------------------------
// Pinned Baseline-vs-RE DRAM regression under the trace replayer
// ---------------------------------------------------------------------------

TEST(MemSystem, BaselineVsReDramBytesUnderTraceReplay)
{
    GpuConfig config;
    config.scaleResolution(160, 96);
    auto scene = makeBenchmark("ccs", config);
    const u64 frames = 8;
    const std::string path =
        testing::TempDir() + "regpu_memsys_pin.rgputrace";
    captureTrace(*scene, config, frames, 1, path);

    SimOptions opts;
    opts.frames = frames;
    auto runReplay = [&](Technique tech) {
        GpuConfig c = config;
        c.technique = tech;
        TraceScene replay(path);
        Simulator sim(replay, c, opts);
        return sim.run();
    };
    SimResult base = runReplay(Technique::Baseline);
    SimResult re = runReplay(Technique::RenderingElimination);

    // The headline claim, now writeback-correct: RE moves fewer DRAM
    // bytes than Baseline on a mostly-static workload, with zero
    // false positives and clean conservation in both runs.
    EXPECT_LT(re.traffic.total(), base.traffic.total());
    EXPECT_LT(re.traffic[TrafficClass::Texels],
              base.traffic[TrafficClass::Texels]);
    EXPECT_LT(re.traffic[TrafficClass::Colors],
              base.traffic[TrafficClass::Colors]);
    EXPECT_EQ(base.stats.counter("mem.conservationViolations"), 0u);
    EXPECT_EQ(re.stats.counter("mem.conservationViolations"), 0u);
    EXPECT_EQ(re.reFalsePositives, 0u);

    // Writeback bytes are part of the accounting in both runs (the
    // Parameter Buffer always overflows the L2 at this resolution),
    // and the split is self-consistent.
    EXPECT_GT(base.traffic.totalWritebacks(), 0u);
    EXPECT_GT(re.traffic.totalWritebacks(), 0u);
    EXPECT_EQ(base.traffic.total(),
              base.traffic.totalReads() + base.traffic.totalWrites()
                  + base.traffic.totalWritebacks());

    std::remove(path.c_str());
}
