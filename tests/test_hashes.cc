/**
 * @file
 * Tests of the alternative signature functions used in the Section V
 * hash-quality ablation, including demonstrations of the structural
 * weaknesses that motivate the paper's CRC32 choice.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "crc/hashes.hh"

using namespace regpu;

namespace
{

std::vector<u8>
randomBytes(Rng &rng, std::size_t n)
{
    std::vector<u8> v(n);
    for (auto &b : v)
        b = static_cast<u8>(rng.nextBounded(256));
    return v;
}

} // namespace

TEST(Hashes, NamesAreDistinct)
{
    EXPECT_STRNE(hashKindName(HashKind::Crc32),
                 hashKindName(HashKind::XorFold));
    EXPECT_STRNE(hashKindName(HashKind::AddFold),
                 hashKindName(HashKind::Fnv1a));
}

TEST(Hashes, AllKindsDeterministic)
{
    Rng rng(30);
    auto msg = randomBytes(rng, 48);
    for (HashKind k : {HashKind::Crc32, HashKind::XorFold,
                       HashKind::AddFold, HashKind::Fnv1a})
        EXPECT_EQ(hashBlock(k, msg), hashBlock(k, msg));
}

TEST(Hashes, CrcMatchesTabular)
{
    Rng rng(31);
    auto msg = randomBytes(rng, 80);
    EXPECT_EQ(hashBlock(HashKind::Crc32, msg), crc32Tabular(msg));
}

TEST(Hashes, XorFoldIsOrderInsensitiveWithinWord)
{
    // The structural weakness: XOR-folding two swapped 4-byte-aligned
    // words collides - exactly the failure mode the paper's ablation
    // quantifies.
    std::vector<u8> ab = {1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<u8> ba = {5, 6, 7, 8, 1, 2, 3, 4};
    EXPECT_EQ(hashBlock(HashKind::XorFold, ab),
              hashBlock(HashKind::XorFold, ba));
    // CRC32 distinguishes them.
    EXPECT_NE(hashBlock(HashKind::Crc32, ab),
              hashBlock(HashKind::Crc32, ba));
}

TEST(Hashes, XorFoldSelfCancels)
{
    // A block XORed with itself vanishes: two identical primitives
    // hash like zero primitives.
    std::vector<u8> a = {9, 9, 2, 7};
    u32 ha = hashBlock(HashKind::XorFold, a);
    u32 combined = hashCombine(HashKind::XorFold, ha, ha, a.size());
    EXPECT_EQ(combined, 0u);
    // CRC32 does not cancel: combine is length-aware.
    u32 ca = hashBlock(HashKind::Crc32, a);
    EXPECT_NE(hashCombine(HashKind::Crc32, ca, ca, a.size()), 0u);
}

TEST(Hashes, CombineCrcMatchesConcatenation)
{
    Rng rng(32);
    auto a = randomBytes(rng, 16);
    auto b = randomBytes(rng, 24);
    std::vector<u8> whole = a;
    whole.insert(whole.end(), b.begin(), b.end());
    u32 combined = hashCombine(HashKind::Crc32,
                               hashBlock(HashKind::Crc32, a),
                               hashBlock(HashKind::Crc32, b), b.size());
    EXPECT_EQ(combined, hashBlock(HashKind::Crc32, whole));
}

TEST(Hashes, CombineCrcMatchesConcatenationUnalignedBlocks)
{
    // The Signature Unit's real block sizes are not 64-bit aligned
    // (constants 70 B, lit attributes 196 B...); combine must stay
    // exact for any byte length.
    Rng rng(33);
    for (std::size_t lenB : {1u, 3u, 7u, 11u, 70u, 196u}) {
        auto a = randomBytes(rng, 13);
        auto b = randomBytes(rng, lenB);
        std::vector<u8> whole = a;
        whole.insert(whole.end(), b.begin(), b.end());
        u32 combined =
            hashCombine(HashKind::Crc32, hashBlock(HashKind::Crc32, a),
                        hashBlock(HashKind::Crc32, b), lenB);
        EXPECT_EQ(combined, hashBlock(HashKind::Crc32, whole))
            << "lenB " << lenB;
    }
}

TEST(Hashes, Fnv1aOrderSensitive)
{
    std::vector<u8> ab = {1, 2}, ba = {2, 1};
    EXPECT_NE(hashBlock(HashKind::Fnv1a, ab),
              hashBlock(HashKind::Fnv1a, ba));
}

TEST(Hashes, AddFoldCommutesAcrossBlocks)
{
    // Additive folding is commutative over blocks: combine(x, a) then
    // b equals combine(x, b) then a - another collision class.
    u32 a = 0x11111111, b = 0x22222222;
    u32 viaAb = hashCombine(HashKind::AddFold,
                            hashCombine(HashKind::AddFold, 7, a, 1), b, 1);
    u32 viaBa = hashCombine(HashKind::AddFold,
                            hashCombine(HashKind::AddFold, 7, b, 1), a, 1);
    EXPECT_EQ(viaAb, viaBa);
}

TEST(Hashes, CrcCombineIsOrderSensitiveAcrossBlocks)
{
    u32 a = hashBlock(HashKind::Crc32, std::vector<u8>{1, 0, 0, 0});
    u32 b = hashBlock(HashKind::Crc32, std::vector<u8>{2, 0, 0, 0});
    u32 viaAb = hashCombine(HashKind::Crc32,
                            hashCombine(HashKind::Crc32, 0, a, 4), b, 4);
    u32 viaBa = hashCombine(HashKind::Crc32,
                            hashCombine(HashKind::Crc32, 0, b, 4), a, 4);
    EXPECT_NE(viaAb, viaBa);
}

/**
 * HashStream: for every kind, streaming a message in any segmentation
 * must equal the one-shot hashBlock of the concatenation.
 */
class HashStreamKinds : public ::testing::TestWithParam<HashKind>
{
};

TEST_P(HashStreamKinds, StreamingEqualsOneShot)
{
    const HashKind kind = GetParam();
    Rng rng(50 + static_cast<u64>(kind));
    for (std::size_t len : {0u, 1u, 3u, 4u, 7u, 8u, 20u, 37u, 144u}) {
        auto msg = randomBytes(rng, len);
        const u32 expected = hashBlock(kind, msg);

        // Byte-at-a-time.
        HashStream serial(kind);
        for (u8 byte : msg)
            serial.update({&byte, 1});
        EXPECT_EQ(serial.finalize(), expected)
            << hashKindName(kind) << " len " << len;
        EXPECT_EQ(serial.lengthBytes(), len);

        // Random chunking.
        HashStream chunked(kind);
        std::size_t pos = 0;
        while (pos < msg.size()) {
            std::size_t take = 1 + rng.nextBounded(msg.size() - pos);
            chunked.update({msg.data() + pos, take});
            pos += take;
        }
        EXPECT_EQ(chunked.finalize(), expected)
            << hashKindName(kind) << " len " << len;
    }
}

TEST_P(HashStreamKinds, ResetRestartsTheMessage)
{
    const HashKind kind = GetParam();
    Rng rng(60 + static_cast<u64>(kind));
    auto junk = randomBytes(rng, 11);
    auto msg = randomBytes(rng, 24);
    HashStream s(kind);
    s.update(junk);
    s.reset();
    s.update(msg);
    EXPECT_EQ(s.finalize(), hashBlock(kind, msg));
}

TEST_P(HashStreamKinds, PutU32MatchesLittleEndianBytes)
{
    const HashKind kind = GetParam();
    HashStream viaPut(kind);
    viaPut.putU32(0xDDCCBBAAu);
    viaPut.putU32(0x44332211u);
    std::vector<u8> bytes = {0xAA, 0xBB, 0xCC, 0xDD,
                             0x11, 0x22, 0x33, 0x44};
    EXPECT_EQ(viaPut.finalize(), hashBlock(kind, bytes));
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, HashStreamKinds,
    ::testing::Values(HashKind::Crc32, HashKind::XorFold,
                      HashKind::AddFold, HashKind::Fnv1a,
                      HashKind::Trunc4),
    [](const ::testing::TestParamInfo<HashKind> &paramInfo) {
        return hashKindName(paramInfo.param);
    });

/** Avalanche sweep: flipping any input bit flips ~half the output bits
 *  for CRC32 (quality), but often very few for XOR-fold. */
class AvalancheSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(AvalancheSweep, CrcFlipsManyBits)
{
    Rng rng(40 + GetParam());
    std::vector<u8> msg(32);
    for (auto &byte : msg)
        byte = static_cast<u8>(rng.nextBounded(256));
    u32 base = hashBlock(HashKind::Crc32, msg);
    auto flipped = msg;
    flipped[GetParam() % 32] ^= 0x10;
    u32 after = hashBlock(HashKind::Crc32, flipped);
    int changed = __builtin_popcount(base ^ after);
    EXPECT_GE(changed, 6); // far from the single-bit change of XOR
}

INSTANTIATE_TEST_SUITE_P(Bytes, AvalancheSweep,
                         ::testing::Range(0, 16));
