/**
 * @file
 * Cross-module integration tests of the full functional pipeline:
 * golden-image checks, baseline invariants, hook plumbing.
 */

#include <gtest/gtest.h>

#include "crc/crc32.hh"
#include "gpu/pipeline.hh"
#include "scene/mesh_gen.hh"
#include "timing/memsystem.hh"

using namespace regpu;

namespace
{

struct PipeFixture : ::testing::Test
{
    GpuConfig config;
    StatRegistry stats;
    std::unique_ptr<Scene> scene;

    PipeFixture()
    {
        config.scaleResolution(96, 64);
        scene = std::make_unique<Scene>("pipe", config);
    }

    void
    addCheckerQuad()
    {
        u32 tex = scene->addTexture(
            Texture(0, 64, 64, TexturePattern::Checker, 5));
        SceneObject o;
        o.name = "quad";
        o.mesh = makeQuad(64, 48);
        o.shader = ShaderKind::Textured;
        o.textureId = static_cast<i32>(tex);
        o.depthTest = false;
        o.animate = [](u64) {
            Pose p;
            p.position = {48, 32, 0.5f};
            return p;
        };
        scene->addObject(std::move(o));
    }

    /** CRC of the whole front buffer (golden-image hash). */
    u32
    frontHash(GraphicsPipeline &pipe)
    {
        std::vector<u8> bytes;
        for (u32 y = 0; y < config.screenHeight; y++) {
            for (u32 x = 0; x < config.screenWidth; x++) {
                u32 p = pipe.frameBuffer().frontPixel(x, y).packed();
                bytes.push_back(static_cast<u8>(p));
                bytes.push_back(static_cast<u8>(p >> 8));
                bytes.push_back(static_cast<u8>(p >> 16));
                bytes.push_back(static_cast<u8>(p >> 24));
            }
        }
        return crc32Tabular(bytes);
    }
};

} // namespace

TEST_F(PipeFixture, RenderingIsReproducible)
{
    addCheckerQuad();
    GraphicsPipeline a(config, stats, nullptr, scene->textures());
    GraphicsPipeline b(config, stats, nullptr, scene->textures());
    a.renderFrame(scene->emitFrame(0));
    b.renderFrame(scene->emitFrame(0));
    EXPECT_EQ(frontHash(a), frontHash(b));
}

TEST_F(PipeFixture, ClearColorFillsUncoveredTiles)
{
    scene->setClearColor({10, 20, 30, 255});
    GraphicsPipeline pipe(config, stats, nullptr, scene->textures());
    pipe.renderFrame(scene->emitFrame(0));
    EXPECT_EQ(pipe.frameBuffer().frontPixel(0, 0), Color(10, 20, 30));
    EXPECT_EQ(pipe.frameBuffer().frontPixel(95, 63), Color(10, 20, 30));
}

TEST_F(PipeFixture, QuadLandsWhereExpected)
{
    addCheckerQuad();
    GraphicsPipeline pipe(config, stats, nullptr, scene->textures());
    pipe.renderFrame(scene->emitFrame(0));
    // Quad spans x in [16,80), y in [8,56): inside is textured,
    // outside is the clear color.
    Color inside = pipe.frameBuffer().frontPixel(48, 32);
    Color outside = pipe.frameBuffer().frontPixel(2, 2);
    EXPECT_NE(inside, outside);
    EXPECT_EQ(outside, Color(12, 12, 24)); // default clear color
}

TEST_F(PipeFixture, FrameResultCountsAreConsistent)
{
    addCheckerQuad();
    GraphicsPipeline pipe(config, stats, nullptr, scene->textures());
    FrameResult r = pipe.renderFrame(scene->emitFrame(0));
    EXPECT_EQ(r.tiles.size(), config.numTiles());
    EXPECT_EQ(r.verticesShaded, 6u);
    EXPECT_EQ(r.trianglesAssembled, 2u);
    u64 frags = 0;
    for (const TileOutcome &t : r.tiles)
        frags += t.stats.fragmentsGenerated;
    EXPECT_EQ(frags, 64u * 48); // exact quad coverage
}

TEST_F(PipeFixture, BaselineRendersAndFlushesEverything)
{
    addCheckerQuad();
    GraphicsPipeline pipe(config, stats, nullptr, scene->textures());
    FrameResult r = pipe.renderFrame(scene->emitFrame(0));
    for (const TileOutcome &t : r.tiles) {
        EXPECT_TRUE(t.rendered);
        EXPECT_TRUE(t.flushed);
    }
}

TEST_F(PipeFixture, MemTrafficFlowsThroughHierarchy)
{
    addCheckerQuad();
    MemSystem mem(config);
    GraphicsPipeline pipe(config, stats, &mem, scene->textures());
    pipe.renderFrame(scene->emitFrame(0));
    const DramTraffic &t = mem.dram().traffic();
    EXPECT_GT(t[TrafficClass::Colors], 0u);
    EXPECT_GT(t[TrafficClass::Texels], 0u);
    EXPECT_GT(t[TrafficClass::Primitives], 0u);
    EXPECT_GT(t[TrafficClass::Geometry], 0u);
    // Color flushes: every tile flushed once (full screen x 4 B).
    EXPECT_EQ(t[TrafficClass::Colors],
              static_cast<u64>(config.screenWidth)
              * config.screenHeight * 4);
}

TEST_F(PipeFixture, HooksObserveDrawcallsAndPrimitives)
{
    addCheckerQuad();

    struct CountingHooks : PipelineHooks
    {
        u32 frames = 0, draws = 0, prims = 0, tileQueries = 0;
        void frameBegin(u64, bool) override { frames++; }
        void onDrawcallConstants(u32, const DrawCall &) override
        { draws++; }
        void onPrimitiveBinned(const Primitive &, const DrawCall &,
                               const std::vector<TileId> &) override
        { prims++; }
        bool shouldRenderTile(TileId) override
        { tileQueries++; return true; }
    } hooks;

    GraphicsPipeline pipe(config, stats, nullptr, scene->textures());
    pipe.setHooks(&hooks);
    pipe.renderFrame(scene->emitFrame(0));
    EXPECT_EQ(hooks.frames, 1u);
    EXPECT_EQ(hooks.draws, 1u);
    EXPECT_EQ(hooks.prims, 2u);
    EXPECT_EQ(hooks.tileQueries, config.numTiles());
}

TEST_F(PipeFixture, SkippingTilePreservesOldBackBufferContent)
{
    addCheckerQuad();

    struct SkipAllAfterFirst : PipelineHooks
    {
        u64 frame = 0;
        void frameBegin(u64 f, bool) override { frame = f; }
        bool shouldRenderTile(TileId) override { return frame < 2; }
    } hooks;

    GraphicsPipeline pipe(config, stats, nullptr, scene->textures());
    pipe.setHooks(&hooks);
    pipe.renderFrame(scene->emitFrame(0));
    u32 golden = frontHash(pipe);
    pipe.renderFrame(scene->emitFrame(1));
    pipe.renderFrame(scene->emitFrame(2)); // all tiles skipped
    // Static scene: the skipped frame's displayed output must equal
    // the rendered frame 0 image.
    EXPECT_EQ(frontHash(pipe), golden);
}

TEST_F(PipeFixture, GroundTruthShadowRenderDetectsWrongSkips)
{
    // Skip a tile that actually changed: equalColors must be false
    // and the false-positive counter must fire.
    u32 tex = scene->addTexture(
        Texture(0, 64, 64, TexturePattern::Checker, 5));
    SceneObject mover;
    mover.name = "mover";
    mover.mesh = makeQuad(16, 16, 0.5f);
    mover.shader = ShaderKind::Textured;
    mover.textureId = static_cast<i32>(tex);
    mover.depthTest = false;
    mover.animate = [](u64 frame) {
        Pose p;
        p.position = {20.0f + 8.0f * frame, 20, 0.2f};
        return p;
    };
    scene->addObject(std::move(mover));

    struct SkipEverything : PipelineHooks
    {
        u64 frame = 0;
        void frameBegin(u64 f, bool) override { frame = f; }
        bool shouldRenderTile(TileId) override { return frame == 0; }
    } hooks;

    GraphicsPipeline pipe(config, stats, nullptr, scene->textures());
    pipe.setHooks(&hooks);
    pipe.renderFrame(scene->emitFrame(0));
    FrameResult r = pipe.renderFrame(scene->emitFrame(1), true);
    bool anyWrong = false;
    for (const TileOutcome &t : r.tiles)
        anyWrong |= !t.rendered && !t.equalColors;
    EXPECT_TRUE(anyWrong);
    EXPECT_GT(stats.counter("re.falsePositives"), 0u);
}
