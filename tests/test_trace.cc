/**
 * @file
 * Trace capture/replay subsystem tests.
 *
 * The headline contract: replaying a recorded trace through the
 * Simulator yields a SimResult bit-identical to the live-scene run it
 * was captured from — for every suite alias, under Baseline, RE and
 * TE. Plus: integrity (every flipped byte of a trace file must be
 * caught by verify), windowed replay, frame-range sharding, the
 * record/replay sweep helpers, and the strict ExperimentScale parser.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "scene/mesh_gen.hh"
#include "sim/experiment.hh"
#include "sim/parallel_runner.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "trace/trace_reader.hh"
#include "trace/trace_scene.hh"
#include "trace/trace_writer.hh"
#include "workloads/workloads.hh"

using namespace regpu;

namespace
{

/** Temp file path unique to this test binary run. */
std::string
tmpTracePath(const std::string &tag)
{
    return testing::TempDir() + "regpu_" + tag + ".rgputrace";
}

/** Serialise a SimResult the way the CSV export sees it. */
std::string
csvOf(const SimResult &r)
{
    std::ostringstream os;
    writeCsvRow(os, r, false);
    return os.str();
}

/** Bit-exact FrameCommands comparison via the wire serializer. */
std::vector<u8>
frameBytes(const FrameCommands &cmds)
{
    ByteBuffer buf;
    serializeFrame(buf, 0, cmds);
    return buf.data();
}

/** A deliberately tiny scene so corruption sweeps stay cheap. */
std::unique_ptr<Scene>
makeTinyScene(const GpuConfig &config)
{
    auto scene = std::make_unique<Scene>("tiny", config);
    u32 tex = scene->addTexture(
        Texture(0, 8, 8, TexturePattern::Checker, 7));
    SceneObject quad;
    quad.name = "quad";
    quad.mesh = makeQuad(40, 40, 1.0f);
    quad.shader = ShaderKind::Textured;
    quad.textureId = static_cast<i32>(tex);
    quad.depthTest = false;
    quad.animate = [](u64 frame) {
        Pose p;
        p.position = {24.0f + frame, 28.0f, 0.4f};
        return p;
    };
    scene->addObject(std::move(quad));
    return scene;
}

GpuConfig
tinyConfig()
{
    GpuConfig config;
    config.scaleResolution(64, 48);
    return config;
}

std::vector<u8>
readFileBytes(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    EXPECT_TRUE(f.good());
    return std::vector<u8>(std::istreambuf_iterator<char>(f),
                           std::istreambuf_iterator<char>());
}

void
writeFileBytes(const std::string &path, const std::vector<u8> &bytes)
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char *>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

} // namespace

// ---------------------------------------------------------------------------
// The headline claim: record -> verify -> replay is bit-identical to
// the live run, for every alias under Baseline / RE / TE.
// ---------------------------------------------------------------------------

TEST(TraceRoundTrip, BitIdenticalSimResultForAllAliasesAllTechniques)
{
    GpuConfig base;
    base.scaleResolution(192, 128);
    const u64 frames = 4;
    const u64 seed = 1;
    const Technique techniques[] = {Technique::Baseline,
                                    Technique::RenderingElimination,
                                    Technique::TransactionElimination};

    for (const auto &info : benchmarkSuite()) {
        auto live = makeBenchmark(info.alias, base, seed);
        const std::string path = tmpTracePath("rt_" + info.alias);
        captureTrace(*live, base, frames, seed, path);

        ASSERT_TRUE(verifyTraceFile(path).ok) << info.alias;

        TraceScene replay(path);
        EXPECT_EQ(replay.name(), info.alias);
        EXPECT_EQ(replay.replayFrames(), frames);

        for (Technique tech : techniques) {
            GpuConfig config = base;
            config.technique = tech;
            SimOptions options;
            options.frames = frames;

            Simulator liveSim(*live, config, options);
            SimResult liveResult = liveSim.run();
            Simulator replaySim(replay, config, options);
            SimResult replayResult = replaySim.run();

            EXPECT_EQ(csvOf(liveResult), csvOf(replayResult))
                << info.alias << " / " << techniqueName(tech);
            EXPECT_EQ(liveResult.stats.allCounters(),
                      replayResult.stats.allCounters())
                << info.alias << " / " << techniqueName(tech);
            EXPECT_EQ(liveResult.stats.allScalars(),
                      replayResult.stats.allScalars())
                << info.alias << " / " << techniqueName(tech);
        }
        std::remove(path.c_str());
    }
}

TEST(TraceRoundTrip, FrameStreamsSurviveTheWireExactly)
{
    GpuConfig config = tinyConfig();
    auto scene = makeTinyScene(config);
    const std::string path = tmpTracePath("wire");
    captureTrace(*scene, config, 3, 7, path);

    TraceScene replay(path);
    ASSERT_EQ(replay.textures().size(), scene->textures().size());
    EXPECT_EQ(replay.textures()[0].texelData(),
              scene->textures()[0].texelData());
    EXPECT_EQ(replay.textures()[0].id(), scene->textures()[0].id());
    for (u64 f = 0; f < 3; f++)
        EXPECT_EQ(frameBytes(scene->emitFrame(f)),
                  frameBytes(replay.emitFrame(f)))
            << "frame " << f;
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Integrity: every single flipped byte anywhere in the file must be
// detected by verify.
// ---------------------------------------------------------------------------

TEST(TraceIntegrity, VerifyCatchesEverySingleFlippedByte)
{
    GpuConfig config = tinyConfig();
    auto scene = makeTinyScene(config);
    const std::string path = tmpTracePath("flip");
    captureTrace(*scene, config, 2, 7, path);

    const std::vector<u8> original = readFileBytes(path);
    ASSERT_GT(original.size(), 0u);
    ASSERT_TRUE(verifyTraceFile(path).ok);

    std::vector<u8> mutated = original;
    u64 undetected = 0;
    for (std::size_t i = 0; i < original.size(); i++) {
        mutated[i] ^= 0x40;
        writeFileBytes(path, mutated);
        if (verifyTraceFile(path).ok)
            undetected++;
        mutated[i] = original[i];
    }
    EXPECT_EQ(undetected, 0u)
        << "some byte flips escaped verify in a "
        << original.size() << "-byte trace";

    writeFileBytes(path, original);
    EXPECT_TRUE(verifyTraceFile(path).ok);
    std::remove(path.c_str());
}

TEST(TraceIntegrity, ReaderFatalsOnCorruptFrameChunk)
{
    GpuConfig config = tinyConfig();
    auto scene = makeTinyScene(config);
    const std::string path = tmpTracePath("corrupt");
    captureTrace(*scene, config, 2, 7, path);

    // Flip one byte inside the first FRAM chunk's payload.
    TraceReader reader(path);
    const u64 target = reader.frameOffset(0) + traceChunkHeaderBytes + 9;
    std::vector<u8> bytes = readFileBytes(path);
    ASSERT_LT(target, bytes.size());
    bytes[target] ^= 0x01;
    writeFileBytes(path, bytes);

    EXPECT_FALSE(verifyTraceFile(path).ok);
    EXPECT_EXIT(
        {
            TraceScene broken(path);
            broken.emitFrame(0);
        },
        ::testing::ExitedWithCode(1), "CRC mismatch");

    // The runner pre-flight must reject the corrupt trace on the
    // caller thread (full-file verification), never on a worker.
    SimJob job;
    job.workload = "tiny";
    job.config = config;
    job.options.frames = 2;
    job.tracePath = path;
    EXPECT_EXIT(ParallelRunner(4).run({job, job}),
                ::testing::ExitedWithCode(1), "failed verification");
    std::remove(path.c_str());
}

TEST(TraceIntegrity, VerifySurvivesHugeCorruptChunkLength)
{
    GpuConfig config = tinyConfig();
    auto scene = makeTinyScene(config);
    const std::string path = tmpTracePath("hugelen");
    captureTrace(*scene, config, 2, 7, path);

    // Overwrite the first FRAM chunk's length field (8 bytes after the
    // u32 type) with ~0: the u64 bounds check must not wrap and the
    // walk must report corruption instead of throwing/aborting.
    TraceReader reader(path);
    const u64 lenOffset = reader.frameOffset(0) + 4;
    std::vector<u8> bytes = readFileBytes(path);
    ASSERT_LT(lenOffset + 8, bytes.size());
    for (int i = 0; i < 8; i++)
        bytes[lenOffset + i] = 0xff;
    writeFileBytes(path, bytes);

    const TraceVerifyReport report = verifyTraceFile(path);
    EXPECT_FALSE(report.ok);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Windowed replay + frame-range sharding.
// ---------------------------------------------------------------------------

TEST(TraceSharding, WindowViewRebasesFrames)
{
    GpuConfig config = tinyConfig();
    auto scene = makeTinyScene(config);
    const std::string path = tmpTracePath("window");
    captureTrace(*scene, config, 6, 7, path);

    TraceScene window(path, 2, 3);
    EXPECT_EQ(window.replayFrames(), 3u);
    EXPECT_EQ(window.firstFrame(), 2u);
    for (u64 f = 0; f < 3; f++)
        EXPECT_EQ(frameBytes(window.emitFrame(f)),
                  frameBytes(scene->emitFrame(2 + f)))
            << "window frame " << f;

    EXPECT_EXIT(window.emitFrame(3), ::testing::ExitedWithCode(1),
                "past the replay window");
    EXPECT_EXIT(TraceScene(path, 4, 5), ::testing::ExitedWithCode(1),
                "exceeds");
    std::remove(path.c_str());
}

TEST(TraceSharding, ShardsPartitionFramesAndMerge)
{
    GpuConfig config = tinyConfig();
    auto scene = makeTinyScene(config);
    const std::string path = tmpTracePath("shards");
    captureTrace(*scene, config, 7, 7, path);

    SimOptions options;
    options.frames = 0;  // all recorded frames
    std::vector<SimJob> jobs =
        buildReplayShards(path, config, options, 3);
    ASSERT_EQ(jobs.size(), 3u);
    u64 covered = 0, next = 0;
    for (const SimJob &job : jobs) {
        EXPECT_EQ(job.traceFirstFrame, next);
        EXPECT_EQ(job.tracePath, path);
        next += job.options.frames;
        covered += job.options.frames;
    }
    EXPECT_EQ(covered, 7u);

    std::vector<SimResult> results = ParallelRunner(3).run(jobs);
    SimResult merged = mergeResults(results);
    EXPECT_EQ(merged.frames, 7u);
    EXPECT_EQ(merged.tilesTotal, 7u * config.numTiles());

    // More shards than frames clamps to one frame per shard.
    EXPECT_EQ(buildReplayShards(path, config, options, 100).size(), 7u);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Sweep helpers: recordSweepTraces / retargetJobsToTraces.
// ---------------------------------------------------------------------------

TEST(TraceSweep, RetargetedJobsAdoptTraceMetaAndReplay)
{
    const std::string dir = testing::TempDir();
    std::vector<SimJob> jobs = buildSweepJobs(
        {"hop"}, {Technique::Baseline, Technique::RenderingElimination},
        160, 96, 3);
    recordSweepTraces(jobs, dir);

    // Retargeted jobs replay even when the request asks for another
    // resolution: the trace's recorded geometry wins.
    std::vector<SimJob> replayJobs = buildSweepJobs(
        {"hop"}, {Technique::Baseline, Technique::RenderingElimination},
        640, 480, 3);
    retargetJobsToTraces(replayJobs, dir);
    for (const SimJob &job : replayJobs) {
        EXPECT_EQ(job.config.screenWidth, 160u);
        EXPECT_EQ(job.config.screenHeight, 96u);
        EXPECT_EQ(job.tracePath, traceFilePath(dir, "hop"));
    }

    std::vector<SimResult> live = ParallelRunner(1).run(jobs);
    std::vector<SimResult> replayed = ParallelRunner(2).run(replayJobs);
    ASSERT_EQ(live.size(), replayed.size());
    for (std::size_t i = 0; i < live.size(); i++)
        EXPECT_EQ(csvOf(live[i]), csvOf(replayed[i])) << "job " << i;

    // Asking for more frames than the trace holds is fatal.
    std::vector<SimJob> tooMany = buildSweepJobs(
        {"hop"}, {Technique::Baseline}, 160, 96, 50);
    EXPECT_EXIT(retargetJobsToTraces(tooMany, dir),
                ::testing::ExitedWithCode(1), "holds only");
    std::remove(traceFilePath(dir, "hop").c_str());
}

// ---------------------------------------------------------------------------
// Satellites: unknown-alias guard and strict ExperimentScale parsing.
// ---------------------------------------------------------------------------

TEST(TraceSweep, UnknownAliasDiagnosticListsTheSuite)
{
    GpuConfig config;
    EXPECT_EXIT(makeBenchmark("frogger", config),
                ::testing::ExitedWithCode(1),
                "unknown benchmark alias: frogger.*valid aliases:.*"
                "ccs.*tib");
    SimJob bad;
    bad.workload = "frogger";
    EXPECT_EXIT(ParallelRunner(1).run({bad}),
                ::testing::ExitedWithCode(1), "valid aliases");
}

TEST(ExperimentScaleArgs, StrictParsingRejectsTypos)
{
    auto parse = [](std::vector<const char *> args) {
        args.insert(args.begin(), "bench");
        return ExperimentScale::fromArgs(
            static_cast<int>(args.size()),
            const_cast<char **>(args.data()));
    };

    ExperimentScale s = parse({"--fast", "--frames", "9", "--jobs", "2"});
    EXPECT_EQ(s.screenWidth, 400u);
    EXPECT_EQ(s.frames, 9u);
    EXPECT_EQ(s.jobs, 2u);
    EXPECT_EQ(parse({"--record-dir", "/tmp/t"}).recordDir, "/tmp/t");
    EXPECT_EQ(parse({"--replay-dir", "/tmp/t"}).replayDir, "/tmp/t");

    EXPECT_EXIT(parse({"--frmes", "50"}), ::testing::ExitedWithCode(1),
                "unknown flag: --frmes.*valid flags");
    EXPECT_EXIT(parse({"--frames"}), ::testing::ExitedWithCode(1),
                "expects a value");
    EXPECT_EXIT(parse({"--frames", "5x"}), ::testing::ExitedWithCode(1),
                "expects a number");
    EXPECT_EXIT(parse({"--record-dir"}), ::testing::ExitedWithCode(1),
                "expects a value");
}
