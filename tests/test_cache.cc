/**
 * @file
 * Set-associative cache model tests.
 */

#include <gtest/gtest.h>

#include "timing/cache.hh"

using namespace regpu;

namespace
{

CacheParams
smallCache(u32 sizeBytes = 1024, u32 ways = 2, u32 line = 64)
{
    CacheParams p;
    p.name = "test";
    p.lineBytes = line;
    p.ways = ways;
    p.sizeBytes = sizeBytes;
    return p;
}

} // namespace

TEST(CacheModel, ColdMissThenHit)
{
    CacheModel c(smallCache());
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_EQ(c.misses(), 1u);
    EXPECT_EQ(c.hits(), 1u);
}

TEST(CacheModel, SameLineDifferentOffsetsHit)
{
    CacheModel c(smallCache());
    c.access(0x1000, false);
    EXPECT_TRUE(c.access(0x103F, false).hit);
    EXPECT_FALSE(c.access(0x1040, false).hit); // next line
}

TEST(CacheModel, AssociativityHoldsConflictingLines)
{
    // 1 KB, 2-way, 64 B lines -> 8 sets; addresses 8*64 apart conflict.
    CacheModel c(smallCache());
    const Addr stride = 8 * 64;
    c.access(0x0, false);
    c.access(stride, false);
    EXPECT_TRUE(c.access(0x0, false).hit);
    EXPECT_TRUE(c.access(stride, false).hit);
}

TEST(CacheModel, LruEvictsLeastRecentlyUsed)
{
    CacheModel c(smallCache());
    const Addr stride = 8 * 64;
    c.access(0 * stride, false);
    c.access(1 * stride, false);
    c.access(0 * stride, false);      // touch A: B becomes LRU
    c.access(2 * stride, false);      // evicts B
    EXPECT_TRUE(c.access(0 * stride, false).hit);
    EXPECT_FALSE(c.access(1 * stride, false).hit);
}

TEST(CacheModel, DirtyEvictionReportsWriteback)
{
    CacheModel c(smallCache());
    const Addr stride = 8 * 64;
    c.access(0 * stride, true); // dirty
    c.access(1 * stride, false);
    c.access(2 * stride, false); // evicts the dirty line
    CacheAccessResult r = c.access(3 * stride, false); // evicts clean
    EXPECT_EQ(c.writebacks(), 1u);
    (void)r;
}

TEST(CacheModel, AccessRangeSplitsIntoLines)
{
    CacheModel c(smallCache());
    // 200 bytes from 0x10 crosses lines 0,1,2,3.
    u32 missing = c.accessRange(0x10, 200, false);
    EXPECT_EQ(missing, 4u);
    EXPECT_EQ(c.accessRange(0x10, 200, false), 0u);
}

TEST(CacheModel, AccessRangeZeroBytesTouchesOneLine)
{
    CacheModel c(smallCache());
    EXPECT_EQ(c.accessRange(0x0, 0, false), 1u);
}

TEST(CacheModel, InvalidateAllColdsTheCache)
{
    CacheModel c(smallCache());
    c.access(0x0, false);
    c.invalidateAll();
    EXPECT_FALSE(c.access(0x0, false).hit);
}

TEST(CacheModel, TableOneConfigsConstructible)
{
    GpuConfig cfg;
    CacheModel vertex(cfg.vertexCache);
    CacheModel texture(cfg.textureCache);
    CacheModel tile(cfg.tileCache);
    CacheModel l2(cfg.l2Cache);
    EXPECT_EQ(vertex.params().sizeBytes, 4 * KiB);
    EXPECT_EQ(l2.params().ways, 8u);
}

TEST(CacheModel, StreamingWorkingSetLargerThanCacheThrashes)
{
    CacheModel c(smallCache(1024, 2, 64)); // 16 lines capacity
    // Stream 64 distinct lines twice: second pass must still miss
    // (capacity misses), validating the reuse-distance behaviour the
    // paper leans on ("reuse distance of an entire frame").
    for (int pass = 0; pass < 2; pass++)
        for (Addr line = 0; line < 64; line++)
            c.access(line * 64, false);
    EXPECT_EQ(c.misses(), 128u);
}

TEST(CacheModel, ResetStatsKeepsContents)
{
    CacheModel c(smallCache());
    c.access(0x0, false);
    c.resetStats();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_TRUE(c.access(0x0, false).hit); // contents survived
}
