/**
 * @file
 * Set-associative cache model tests: LRU/writeback behaviour plus the
 * level-linking contract (misses and dirty evictions propagate at
 * their actual line addresses, in the evicting cache's lineBytes).
 */

#include <gtest/gtest.h>

#include "timing/cache.hh"
#include "timing/dram.hh"

using namespace regpu;

namespace
{

CacheParams
smallCache(u32 sizeBytes = 1024, u32 ways = 2, u32 line = 64,
           const char *name = "test")
{
    CacheParams p;
    p.name = name;
    p.lineBytes = line;
    p.ways = ways;
    p.sizeBytes = sizeBytes;
    return p;
}

} // namespace

TEST(CacheModel, ColdMissThenHit)
{
    CacheModel c(smallCache());
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_EQ(c.misses(), 1u);
    EXPECT_EQ(c.hits(), 1u);
}

TEST(CacheModel, SameLineDifferentOffsetsHit)
{
    CacheModel c(smallCache());
    c.access(0x1000, false);
    EXPECT_TRUE(c.access(0x103F, false).hit);
    EXPECT_FALSE(c.access(0x1040, false).hit); // next line
}

TEST(CacheModel, AssociativityHoldsConflictingLines)
{
    // 1 KB, 2-way, 64 B lines -> 8 sets; addresses 8*64 apart conflict.
    CacheModel c(smallCache());
    const Addr stride = 8 * 64;
    c.access(0x0, false);
    c.access(stride, false);
    EXPECT_TRUE(c.access(0x0, false).hit);
    EXPECT_TRUE(c.access(stride, false).hit);
}

TEST(CacheModel, LruEvictsLeastRecentlyUsed)
{
    CacheModel c(smallCache());
    const Addr stride = 8 * 64;
    c.access(0 * stride, false);
    c.access(1 * stride, false);
    c.access(0 * stride, false);      // touch A: B becomes LRU
    c.access(2 * stride, false);      // evicts B
    EXPECT_TRUE(c.access(0 * stride, false).hit);
    EXPECT_FALSE(c.access(1 * stride, false).hit);
}

TEST(CacheModel, DirtyEvictionReportsWritebackWithVictimAddress)
{
    CacheModel c(smallCache());
    const Addr stride = 8 * 64;
    c.access(0 * stride, true); // dirty
    c.access(1 * stride, false);
    CacheAccessResult r = c.access(2 * stride, false); // evicts dirty
    EXPECT_TRUE(r.writeback);
    // The dirty data leaves at *its* address, not the requester's.
    EXPECT_EQ(r.writebackAddr, 0u * stride);
    EXPECT_EQ(c.writebacks(), 1u);
    r = c.access(3 * stride, false); // evicts a clean line
    EXPECT_FALSE(r.writeback);
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(CacheModel, AccessRangeSplitsIntoLines)
{
    CacheModel c(smallCache());
    // 200 bytes from 0x10 crosses lines 0,1,2,3.
    EXPECT_EQ(c.accessRange(0x10, 200, false).missLines, 4u);
    EXPECT_EQ(c.accessRange(0x10, 200, false).missLines, 0u);
}

TEST(CacheModel, AccessRangeZeroBytesIsNoOp)
{
    // Regression: the old model still touched one line for a
    // zero-byte range, charging a full access that never happened.
    CacheModel c(smallCache());
    CacheModel::RangeOutcome r = c.accessRange(0x0, 0, false);
    EXPECT_EQ(r.missLines, 0u);
    EXPECT_EQ(r.writebacks, 0u);
    EXPECT_EQ(r.latency, 0u);
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_EQ(c.misses(), 0u);
    EXPECT_EQ(c.demandBytes(TrafficClass::Geometry), 0u);
}

TEST(CacheModel, InvalidateAllColdsTheCache)
{
    CacheModel c(smallCache());
    c.access(0x0, false);
    c.invalidateAll();
    EXPECT_FALSE(c.access(0x0, false).hit);
}

TEST(CacheModel, TableOneConfigsConstructible)
{
    GpuConfig cfg;
    CacheModel vertex(cfg.vertexCache);
    CacheModel texture(cfg.textureCache);
    CacheModel tile(cfg.tileCache);
    CacheModel l2(cfg.l2Cache);
    EXPECT_EQ(vertex.params().sizeBytes, 4 * KiB);
    EXPECT_EQ(l2.params().ways, 8u);
}

TEST(CacheModel, StreamingWorkingSetLargerThanCacheThrashes)
{
    CacheModel c(smallCache(1024, 2, 64)); // 16 lines capacity
    // Stream 64 distinct lines twice: second pass must still miss
    // (capacity misses), validating the reuse-distance behaviour the
    // paper leans on ("reuse distance of an entire frame").
    for (int pass = 0; pass < 2; pass++)
        for (Addr line = 0; line < 64; line++)
            c.access(line * 64, false);
    EXPECT_EQ(c.misses(), 128u);
}

TEST(CacheModel, ResetStatsKeepsContents)
{
    CacheModel c(smallCache());
    c.access(0x0, false);
    c.resetStats();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_TRUE(c.access(0x0, false).hit); // contents survived
}

// ---- Level-linking -------------------------------------------------------

TEST(CacheModel, ReadMissRefillsFromNextLevelAtLineAddress)
{
    CacheModel l1(smallCache(1024, 2, 64, "l1"));
    CacheModel l2(smallCache(4096, 4, 64, "l2"));
    l1.linkNextLevel(&l2);

    l1.access(0x1008, false);
    // The refill demanded the full aligned line from the L2.
    EXPECT_EQ(l2.accesses(), 1u);
    EXPECT_EQ(l1.fills(), 1u);
    EXPECT_EQ(l1.fillBytes(TrafficClass::Geometry), 64u);
    EXPECT_EQ(l2.demandBytes(TrafficClass::Geometry), 64u);
    // The L2 now holds the line (probe with a fresh class to spot it).
    EXPECT_TRUE(l2.access(0x1000, false).hit);
}

TEST(CacheModel, OnlyMissingLinesRefill)
{
    // Regression for the old MemSystem::refill(addr, misses) bug: a
    // range where only the *second* line misses must refill the
    // second line's address, not addr + 0.
    CacheModel l1(smallCache(1024, 2, 64, "l1"));
    CacheModel l2(smallCache(4096, 4, 64, "l2"));
    l1.linkNextLevel(&l2);

    l1.accessRange(0x0, 64, false);    // line 0 cached, L2 fills line 0
    EXPECT_EQ(l2.misses(), 1u);
    l1.accessRange(0x0, 128, false);   // line 0 hits, line 1 misses
    EXPECT_EQ(l1.fills(), 2u);
    EXPECT_EQ(l2.accesses(), 2u);      // only the missing line forwarded
    EXPECT_TRUE(l2.access(0x40, false).hit); // line 1, not line 0 again
}

TEST(CacheModel, DirtyEvictionWritesBackThroughLink)
{
    CacheModel l1(smallCache(1024, 2, 64, "l1"));
    CacheModel l2(smallCache(4096, 4, 64, "l2"));
    l1.linkNextLevel(&l2);
    const Addr stride = 8 * 64; // l1 set-conflict stride

    l1.access(0 * stride, true); // dirty in l1 (write-allocate, no fill)
    EXPECT_EQ(l2.accesses(), 0u); // write miss does not fetch
    l1.access(1 * stride, false);
    l1.access(2 * stride, false); // evicts the dirty line
    EXPECT_EQ(l1.writebacks(), 1u);
    EXPECT_EQ(l1.writebackBytes(TrafficClass::Geometry), 64u);
    // The victim line arrived in the L2 as a (dirty) write.
    EXPECT_TRUE(l2.access(0 * stride, false).hit);
}

TEST(CacheModel, WritebackReachesDramAsWritebackTraffic)
{
    GpuConfig cfg;
    DramModel dram(cfg);
    CacheModel l2(smallCache(1024, 2, 64, "l2"));
    l2.linkDram(&dram);
    const Addr stride = 8 * 64;

    l2.access(0 * stride, true, TrafficClass::Geometry);
    l2.access(1 * stride, false, TrafficClass::Texels);
    l2.access(2 * stride, false, TrafficClass::Texels); // evicts dirty
    EXPECT_EQ(dram.traffic().writebacks(TrafficClass::Geometry), 64u);
    // The writeback is charged to the class that *produced* the dirty
    // line (Geometry), not the Texels access that evicted it.
    EXPECT_EQ(dram.traffic().writebacks(TrafficClass::Texels), 0u);
    // Read fills show up as reads of the requester's class.
    EXPECT_EQ(dram.traffic().reads(TrafficClass::Texels), 128u);
}

TEST(CacheModel, InvalidateAllFlushesDirtyLinesDownstream)
{
    GpuConfig cfg;
    DramModel dram(cfg);
    CacheModel c(smallCache(1024, 2, 64, "flush"));
    c.linkDram(&dram);

    c.access(0x0, true);
    c.access(0x40, false);
    c.invalidateAll();
    // The dirty line's bytes were not silently dropped.
    EXPECT_EQ(dram.traffic().writebacks(TrafficClass::Geometry), 64u);
    EXPECT_EQ(c.writebacks(), 1u);
    EXPECT_FALSE(c.access(0x0, false).hit);
}

TEST(CacheModel, MissLatencyIncludesDownstreamFill)
{
    CacheModel l1(smallCache(1024, 2, 64, "l1"));
    CacheModel l2(smallCache(4096, 4, 64, "l2"));
    l1.linkNextLevel(&l2);

    CacheAccessResult miss = l1.access(0x0, false);
    // l1 hit latency + l2 fill (which itself missed into nothing).
    EXPECT_GE(miss.latency,
              l1.params().hitLatency + l2.params().hitLatency);
    CacheAccessResult hit = l1.access(0x0, false);
    EXPECT_EQ(hit.latency, l1.params().hitLatency);
}
