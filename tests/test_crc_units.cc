/**
 * @file
 * Tests of the hardware-unit models: Compute CRC unit (Algorithm 2),
 * Accumulate CRC unit (Algorithm 3) and their cycle accounting.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "crc/units.hh"

using namespace regpu;

namespace
{

std::vector<u8>
randomBytes(Rng &rng, std::size_t n)
{
    std::vector<u8> v(n);
    for (auto &b : v)
        b = static_cast<u8>(rng.nextBounded(256));
    return v;
}

} // namespace

TEST(ComputeCrcUnit, MatchesTabularCrc)
{
    Rng rng(20);
    ComputeCrcUnit unit;
    for (std::size_t blocks : {1u, 2u, 3u, 9u, 18u}) {
        auto msg = randomBytes(rng, blocks * 8);
        BlockSignature sig = unit.sign(msg);
        EXPECT_EQ(sig.crc, crc32Tabular(msg));
        EXPECT_EQ(sig.shiftAmount, blocks);
    }
}

TEST(ComputeCrcUnit, OneCyclePerSubblock)
{
    Rng rng(21);
    ComputeCrcUnit unit;
    auto msg = randomBytes(rng, 144); // 18 sub-blocks
    unit.resetStats();
    unit.sign(msg);
    // Paper Section III-G: "computing the signature for the average
    // primitive requires 18 cycles" (144 B = 3 attrs x 3 verts x 16 B).
    EXPECT_EQ(unit.busyCycles(), 18u);
}

TEST(ComputeCrcUnit, ConstantsTakeEightCycles)
{
    // Paper: the average constants command updates 16 values (64 B) ->
    // 8 cycles at 8 B per cycle.
    Rng rng(22);
    ComputeCrcUnit unit;
    auto msg = randomBytes(rng, 64);
    unit.resetStats();
    unit.sign(msg);
    EXPECT_EQ(unit.busyCycles(), 8u);
}

TEST(ComputeCrcUnit, PadsTailWithZeros)
{
    Rng rng(23);
    ComputeCrcUnit unit;
    auto msg = randomBytes(rng, 12); // 1.5 sub-blocks
    auto padded = msg;
    padded.resize(16, 0);
    BlockSignature a = unit.sign(msg);
    BlockSignature b = unit.sign(padded);
    EXPECT_EQ(a.crc, b.crc);
    EXPECT_EQ(a.shiftAmount, 2u);
}

TEST(ComputeCrcUnit, LutAccessesPerCycle)
{
    Rng rng(24);
    ComputeCrcUnit unit;
    unit.resetStats();
    unit.sign(randomBytes(rng, 80)); // 10 sub-blocks
    // 8 sign-LUT + 4 shift-LUT reads per sub-block.
    EXPECT_EQ(unit.lutAccesses(), 10u * 12);
}

TEST(AccumulateCrcUnit, EquivalentToRepeatedShift)
{
    Rng rng(25);
    AccumulateCrcUnit unit;
    const CrcTables &t = CrcTables::instance();
    for (int trial = 0; trial < 20; trial++) {
        u32 crc = static_cast<u32>(rng.next());
        u32 amount = 1 + static_cast<u32>(rng.nextBounded(20));
        u32 expected = crc;
        for (u32 k = 0; k < amount; k++)
            expected = t.shift64(expected);
        EXPECT_EQ(unit.accumulate(crc, amount), expected);
    }
}

TEST(AccumulateCrcUnit, OneCyclePerShift)
{
    AccumulateCrcUnit unit;
    unit.resetStats();
    unit.accumulate(0xdeadbeef, 18);
    EXPECT_EQ(unit.busyCycles(), 18u);
    EXPECT_EQ(unit.lutAccesses(), 18u * 4);
}

TEST(AccumulateCrcUnit, ZeroShiftIsIdentity)
{
    AccumulateCrcUnit unit;
    EXPECT_EQ(unit.accumulate(0x12345678, 0), 0x12345678u);
    EXPECT_EQ(unit.busyCycles(), 0u);
}

TEST(Units, ComputePlusAccumulateEqualsWholeMessage)
{
    // The full Signature Unit dataflow for one tile: sign block A,
    // then fold block B via accumulate+xor; must equal CRC(A||B).
    Rng rng(26);
    ComputeCrcUnit compute;
    AccumulateCrcUnit accumulate;
    for (int trial = 0; trial < 30; trial++) {
        auto a = randomBytes(rng, (1 + rng.nextBounded(6)) * 8);
        auto b = randomBytes(rng, (1 + rng.nextBounded(6)) * 8);
        BlockSignature sa = compute.sign(a);
        BlockSignature sb = compute.sign(b);
        u32 tileCrc = sa.crc;
        tileCrc = accumulate.accumulate(tileCrc, sb.shiftAmount) ^ sb.crc;

        std::vector<u8> whole = a;
        whole.insert(whole.end(), b.begin(), b.end());
        EXPECT_EQ(tileCrc, crc32Tabular(whole));
    }
}
