/**
 * @file
 * Tests of the hardware-unit models: Compute CRC unit (Algorithm 2),
 * Accumulate CRC unit (Algorithm 3) and their cycle accounting. Both
 * are byte-exact: a partial final sub-block is signed with per-byte
 * position factors, never zero-padded.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "crc/units.hh"

using namespace regpu;

namespace
{

std::vector<u8>
randomBytes(Rng &rng, std::size_t n)
{
    std::vector<u8> v(n);
    for (auto &b : v)
        b = static_cast<u8>(rng.nextBounded(256));
    return v;
}

} // namespace

TEST(ComputeCrcUnit, MatchesReferenceCrc)
{
    Rng rng(20);
    ComputeCrcUnit unit;
    for (std::size_t bytes : {8u, 16u, 24u, 72u, 144u, 7u, 20u, 143u}) {
        auto msg = randomBytes(rng, bytes);
        BlockSignature sig = unit.sign(msg);
        EXPECT_EQ(sig.crc, crc32Reference(msg)) << "bytes " << bytes;
        EXPECT_EQ(sig.lengthBytes, bytes);
        EXPECT_EQ(sig.subBlocks(), (bytes + 7) / 8);
    }
}

TEST(ComputeCrcUnit, OneCyclePerSubblock)
{
    Rng rng(21);
    ComputeCrcUnit unit;
    auto msg = randomBytes(rng, 144); // 18 sub-blocks
    unit.resetStats();
    unit.sign(msg);
    // Paper Section III-G: "computing the signature for the average
    // primitive requires 18 cycles" (144 B = 3 attrs x 3 verts x 16 B).
    EXPECT_EQ(unit.busyCycles(), 18u);
}

TEST(ComputeCrcUnit, ConstantsTakeEightCycles)
{
    // Paper: the average constants command updates 16 values (64 B) ->
    // 8 cycles at 8 B per cycle.
    Rng rng(22);
    ComputeCrcUnit unit;
    auto msg = randomBytes(rng, 64);
    unit.resetStats();
    unit.sign(msg);
    EXPECT_EQ(unit.busyCycles(), 8u);
}

TEST(ComputeCrcUnit, TailIsLengthExact)
{
    // Regression for the tail-padding defect: a 12-byte message and
    // its 16-byte zero-padded sibling must produce different CRCs
    // (under the old datapath they collided by construction); the
    // 12-byte CRC must equal the bitwise reference of the 12 bytes.
    Rng rng(23);
    ComputeCrcUnit unit;
    auto msg = randomBytes(rng, 12); // 1.5 sub-blocks
    auto padded = msg;
    padded.resize(16, 0);
    BlockSignature a = unit.sign(msg);
    BlockSignature b = unit.sign(padded);
    EXPECT_EQ(a.crc, crc32Reference(msg));
    EXPECT_EQ(b.crc, crc32Reference(padded));
    EXPECT_NE(a.crc, b.crc);
    EXPECT_EQ(a.lengthBytes, 12u);
    EXPECT_EQ(a.subBlocks(), 2u); // tail occupies a datapath cycle
    EXPECT_EQ(b.subBlocks(), 2u);
}

TEST(ComputeCrcUnit, TailStillCostsACycle)
{
    Rng rng(27);
    ComputeCrcUnit unit;
    unit.resetStats();
    unit.sign(randomBytes(rng, 12)); // 1 full sub-block + 4-byte tail
    EXPECT_EQ(unit.busyCycles(), 2u);
}

TEST(ComputeCrcUnit, LutAccessesPerCycle)
{
    Rng rng(24);
    ComputeCrcUnit unit;
    unit.resetStats();
    unit.sign(randomBytes(rng, 80)); // 10 sub-blocks
    // 8 sign-LUT + 4 shift-LUT reads per sub-block.
    EXPECT_EQ(unit.lutAccesses(), 10u * 12);
}

TEST(AccumulateCrcUnit, EquivalentToRepeatedShift)
{
    Rng rng(25);
    AccumulateCrcUnit unit;
    const CrcTables &t = CrcTables::instance();
    for (int trial = 0; trial < 20; trial++) {
        u32 crc = static_cast<u32>(rng.next());
        u32 blocks = 1 + static_cast<u32>(rng.nextBounded(20));
        u32 expected = crc;
        for (u32 k = 0; k < blocks; k++)
            expected = t.shift64(expected);
        EXPECT_EQ(unit.accumulate(crc, 8ull * blocks), expected);
    }
}

TEST(AccumulateCrcUnit, ByteGranularTailFactor)
{
    // accumulate(crc, n) must be crc * x^(8n) for any byte count.
    Rng rng(28);
    AccumulateCrcUnit unit;
    for (int trial = 0; trial < 30; trial++) {
        u32 crc = static_cast<u32>(rng.next());
        u64 bytes = rng.nextBounded(40);
        EXPECT_EQ(unit.accumulate(crc, bytes),
                  gf2MulMod(crc, gf2PowXMod(8 * bytes)))
            << "bytes " << bytes;
    }
}

TEST(AccumulateCrcUnit, OneCyclePerSubblock)
{
    AccumulateCrcUnit unit;
    unit.resetStats();
    unit.accumulate(0xdeadbeef, 144); // 18 sub-blocks, no tail
    EXPECT_EQ(unit.busyCycles(), 18u);
    EXPECT_EQ(unit.lutAccesses(), 18u * 4);

    unit.resetStats();
    unit.accumulate(0xdeadbeef, 20); // 2 sub-blocks + 4-byte tail
    EXPECT_EQ(unit.busyCycles(), 3u);
}

TEST(AccumulateCrcUnit, ZeroShiftIsIdentity)
{
    AccumulateCrcUnit unit;
    EXPECT_EQ(unit.accumulate(0x12345678, 0), 0x12345678u);
    EXPECT_EQ(unit.busyCycles(), 0u);
}

TEST(Units, ComputePlusAccumulateEqualsWholeMessage)
{
    // The full Signature Unit dataflow for one tile: sign block A,
    // then fold block B via accumulate+xor; must equal CRC(A||B).
    // Blocks of arbitrary byte length, tails included.
    Rng rng(26);
    ComputeCrcUnit compute;
    AccumulateCrcUnit accumulate;
    for (int trial = 0; trial < 30; trial++) {
        auto a = randomBytes(rng, 1 + rng.nextBounded(48));
        auto b = randomBytes(rng, 1 + rng.nextBounded(48));
        BlockSignature sa = compute.sign(a);
        BlockSignature sb = compute.sign(b);
        u32 tileCrc = sa.crc;
        tileCrc = accumulate.accumulate(tileCrc, sb.lengthBytes)
            ^ sb.crc;

        std::vector<u8> whole = a;
        whole.insert(whole.end(), b.begin(), b.end());
        EXPECT_EQ(tileCrc, crc32Reference(whole));
    }
}
