/**
 * @file
 * Failure-injection tests: drive Rendering Elimination with a
 * degenerate signature function (Trunc4) that collides by design, and
 * verify the simulator *detects* the resulting wrong skips instead of
 * masking them - the instrumentation the hash-quality ablation and
 * the paper's false-positive discussion rely on.
 */

#include <gtest/gtest.h>

#include "crc/hashes.hh"
#include "sim/simulator.hh"
#include "scene/mesh_gen.hh"
#include "workloads/workloads.hh"

using namespace regpu;

namespace
{

/**
 * Scene engineered so Trunc4 collides: one quad whose vertices only
 * differ beyond the first 4 bytes of the serialized attribute block.
 * The first serialized bytes are position.x of vertex 0, which stays
 * fixed while the quad's far corner moves.
 */
std::unique_ptr<Scene>
makeCollidingScene(const GpuConfig &config)
{
    auto scene = std::make_unique<Scene>("collide", config);
    SceneObject obj;
    obj.name = "morpher";
    obj.mesh = makeQuad(40, 40);
    obj.shader = ShaderKind::Flat;
    obj.depthTest = false;
    obj.animate = [](u64 frame) {
        Pose p;
        p.position = {32, 32, 0.5f};
        // Tint changes the output color every frame, but the tint sits
        // in the *constants* block beyond byte 4 and the attribute
        // blocks' leading bytes never change: Trunc4 cannot see it.
        p.tint = {1.0f, 0.1f * (frame % 8), 0.2f, 1.0f};
        return p;
    };
    scene->addObject(std::move(obj));
    return scene;
}

} // namespace

TEST(FailureInjection, Trunc4ProducesFalsePositives)
{
    GpuConfig config;
    config.scaleResolution(64, 64);
    config.technique = Technique::RenderingElimination;
    auto scene = makeCollidingScene(config);
    SimOptions opts;
    opts.frames = 8;
    opts.hashKind = HashKind::Trunc4;
    Simulator sim(*scene, config, opts);
    SimResult r = sim.run();
    // The colors change every frame but the degenerate signature says
    // "equal": tiles get skipped wrongly, and the ground-truth shadow
    // render must flag every one of them.
    EXPECT_GT(r.reFalsePositives, 0u);
    EXPECT_GT(r.tileClasses.diffColorsEqualInputs, 0u);
}

TEST(FailureInjection, Crc32SameSceneHasNone)
{
    GpuConfig config;
    config.scaleResolution(64, 64);
    config.technique = Technique::RenderingElimination;
    auto scene = makeCollidingScene(config);
    SimOptions opts;
    opts.frames = 8;
    opts.hashKind = HashKind::Crc32;
    Simulator sim(*scene, config, opts);
    SimResult r = sim.run();
    EXPECT_EQ(r.reFalsePositives, 0u);
    // CRC32 sees the tint change: the morphing tiles are rendered.
    EXPECT_GT(r.tilesRendered, 0u);
}

TEST(FailureInjection, FalsePositivesNeverCrashThePipeline)
{
    // With collisions firing constantly the simulation must still
    // complete, classify every tile, and keep counts consistent.
    GpuConfig config;
    config.scaleResolution(96, 64);
    config.technique = Technique::RenderingElimination;
    auto scene = makeBenchmark("ctr", config);
    SimOptions opts;
    opts.frames = 6;
    opts.hashKind = HashKind::Trunc4;
    Simulator sim(*scene, config, opts);
    SimResult r = sim.run();
    const TileClassCounts &tc = r.tileClasses;
    EXPECT_EQ(tc.comparedTiles,
              tc.equalColorsEqualInputs + tc.equalColorsDiffInputs
              + tc.diffColorsDiffInputs + tc.diffColorsEqualInputs);
    EXPECT_EQ(r.tilesTotal, r.tilesRendered + r.tilesSkippedByRe);
}

TEST(FailureInjection, WeakHashStillFindsTrueRedundancy)
{
    // Even a weak hash skips genuinely static tiles; the difference
    // is only the (now nonzero) false-positive risk.
    GpuConfig config;
    config.scaleResolution(96, 64);
    config.technique = Technique::RenderingElimination;
    auto scene = makeBenchmark("ccs", config);
    SimOptions opts;
    opts.frames = 6;
    opts.hashKind = HashKind::XorFold;
    Simulator sim(*scene, config, opts);
    SimResult r = sim.run();
    EXPECT_GT(r.tilesSkippedByRe, 0u);
}
