/**
 * @file
 * Cycle-model sanity and monotonicity tests (the MemSystem hierarchy
 * has its own suite in test_memsystem.cc).
 */

#include <gtest/gtest.h>

#include "timing/cycle_model.hh"

using namespace regpu;

namespace
{

TileRenderStats
tileWork(u32 frags, u32 prims = 4)
{
    TileRenderStats ts;
    ts.fragmentsGenerated = frags;
    ts.fragmentsShaded = frags;
    ts.shaderInstructions = static_cast<u64>(frags) * 12;
    ts.blendOps = frags;
    ts.primitivesFetched = prims;
    ts.parameterBytesRead = prims * 160ull;
    return ts;
}

} // namespace

TEST(CycleModel, EmptyTileCostsOnlySetup)
{
    GpuConfig cfg;
    CycleModel m(cfg);
    Cycles c = m.tileCycles(TileRenderStats{}, 0, 0);
    EXPECT_LE(c, 16u);
}

TEST(CycleModel, MoreFragmentsMoreCycles)
{
    GpuConfig cfg;
    CycleModel m(cfg);
    Cycles small = m.tileCycles(tileWork(64), 0, 0);
    Cycles large = m.tileCycles(tileWork(256), 0, 0);
    EXPECT_GT(large, small);
}

TEST(CycleModel, BandwidthBoundTileDominatedByDram)
{
    GpuConfig cfg;
    CycleModel m(cfg);
    TileRenderStats ts = tileWork(64);
    Cycles computeBound = m.tileCycles(ts, 0, 0);
    Cycles memBound = m.tileCycles(ts, 100000, 0);
    EXPECT_GT(memBound, computeBound);
    EXPECT_GE(memBound, 100000u / cfg.dramBytesPerCycle);
}

TEST(CycleModel, TexelStallsAddToShading)
{
    GpuConfig cfg;
    CycleModel m(cfg);
    TileRenderStats ts = tileWork(256);
    Cycles noStall = m.tileCycles(ts, 0, 0);
    Cycles stalled = m.tileCycles(ts, 0, 5000);
    EXPECT_GT(stalled, noStall);
}

TEST(CycleModel, SkippedTileIsCheap)
{
    GpuConfig cfg;
    CycleModel m(cfg);
    // Signature compare is a couple of cycles; rendering a full tile
    // is thousands - the asymmetry that powers RE's speedup.
    EXPECT_LE(m.skippedTileCycles(), 4u);
    EXPECT_GT(m.tileCycles(tileWork(256), 4096, 100),
              100 * m.skippedTileCycles());
}

TEST(CycleModel, GeometryScalesWithVertices)
{
    GpuConfig cfg;
    CycleModel m(cfg);
    FrameResult small, large;
    small.verticesShaded = 300;
    small.trianglesAssembled = 100;
    small.binned.tileLists.resize(cfg.numTiles());
    large.verticesShaded = 30000;
    large.trianglesAssembled = 10000;
    large.binned.tileLists.resize(cfg.numTiles());
    EXPECT_GT(m.geometryCycles(large, 0, 60.0),
              m.geometryCycles(small, 0, 60.0));
}

TEST(CycleModel, VertexMissesSlowGeometryWhenFetchBound)
{
    // Geometry stages are pipelined: small miss counts hide behind
    // vertex shading; once fetch becomes the bottleneck, misses show.
    GpuConfig cfg;
    CycleModel m(cfg);
    FrameResult fr;
    fr.verticesShaded = 3000;
    fr.trianglesAssembled = 1000;
    fr.binned.tileLists.resize(cfg.numTiles());
    Cycles clean = m.geometryCycles(fr, 0, 80.0);
    Cycles fewMisses = m.geometryCycles(fr, 100, 80.0);
    Cycles manyMisses = m.geometryCycles(fr, 20000, 80.0);
    EXPECT_EQ(fewMisses, clean);   // hidden behind shading
    EXPECT_GT(manyMisses, clean);  // fetch-bound
}
