/**
 * @file
 * Cycle-model sanity and monotonicity tests, plus the MemSystem
 * hierarchy behaviour.
 */

#include <gtest/gtest.h>

#include "timing/cycle_model.hh"
#include "timing/memsystem.hh"

using namespace regpu;

namespace
{

TileRenderStats
tileWork(u32 frags, u32 prims = 4)
{
    TileRenderStats ts;
    ts.fragmentsGenerated = frags;
    ts.fragmentsShaded = frags;
    ts.shaderInstructions = static_cast<u64>(frags) * 12;
    ts.blendOps = frags;
    ts.primitivesFetched = prims;
    ts.parameterBytesRead = prims * 160ull;
    return ts;
}

} // namespace

TEST(CycleModel, EmptyTileCostsOnlySetup)
{
    GpuConfig cfg;
    CycleModel m(cfg);
    Cycles c = m.tileCycles(TileRenderStats{}, 0, 0);
    EXPECT_LE(c, 16u);
}

TEST(CycleModel, MoreFragmentsMoreCycles)
{
    GpuConfig cfg;
    CycleModel m(cfg);
    Cycles small = m.tileCycles(tileWork(64), 0, 0);
    Cycles large = m.tileCycles(tileWork(256), 0, 0);
    EXPECT_GT(large, small);
}

TEST(CycleModel, BandwidthBoundTileDominatedByDram)
{
    GpuConfig cfg;
    CycleModel m(cfg);
    TileRenderStats ts = tileWork(64);
    Cycles computeBound = m.tileCycles(ts, 0, 0);
    Cycles memBound = m.tileCycles(ts, 100000, 0);
    EXPECT_GT(memBound, computeBound);
    EXPECT_GE(memBound, 100000u / cfg.dramBytesPerCycle);
}

TEST(CycleModel, TexelStallsAddToShading)
{
    GpuConfig cfg;
    CycleModel m(cfg);
    TileRenderStats ts = tileWork(256);
    Cycles noStall = m.tileCycles(ts, 0, 0);
    Cycles stalled = m.tileCycles(ts, 0, 5000);
    EXPECT_GT(stalled, noStall);
}

TEST(CycleModel, SkippedTileIsCheap)
{
    GpuConfig cfg;
    CycleModel m(cfg);
    // Signature compare is a couple of cycles; rendering a full tile
    // is thousands - the asymmetry that powers RE's speedup.
    EXPECT_LE(m.skippedTileCycles(), 4u);
    EXPECT_GT(m.tileCycles(tileWork(256), 4096, 100),
              100 * m.skippedTileCycles());
}

TEST(CycleModel, GeometryScalesWithVertices)
{
    GpuConfig cfg;
    CycleModel m(cfg);
    FrameResult small, large;
    small.verticesShaded = 300;
    small.trianglesAssembled = 100;
    small.binned.tileLists.resize(cfg.numTiles());
    large.verticesShaded = 30000;
    large.trianglesAssembled = 10000;
    large.binned.tileLists.resize(cfg.numTiles());
    EXPECT_GT(m.geometryCycles(large, 0, 60.0),
              m.geometryCycles(small, 0, 60.0));
}

TEST(CycleModel, VertexMissesSlowGeometryWhenFetchBound)
{
    // Geometry stages are pipelined: small miss counts hide behind
    // vertex shading; once fetch becomes the bottleneck, misses show.
    GpuConfig cfg;
    CycleModel m(cfg);
    FrameResult fr;
    fr.verticesShaded = 3000;
    fr.trianglesAssembled = 1000;
    fr.binned.tileLists.resize(cfg.numTiles());
    Cycles clean = m.geometryCycles(fr, 0, 80.0);
    Cycles fewMisses = m.geometryCycles(fr, 100, 80.0);
    Cycles manyMisses = m.geometryCycles(fr, 20000, 80.0);
    EXPECT_EQ(fewMisses, clean);   // hidden behind shading
    EXPECT_GT(manyMisses, clean);  // fetch-bound
}

TEST(MemSystem, TexelMissesFillCachesThenHit)
{
    GpuConfig cfg;
    MemSystem mem(cfg);
    mem.texelFetch(0, 0x3'0000'0000ull);
    mem.texelFetch(0, 0x3'0000'0000ull);
    EXPECT_EQ(mem.textureCachesRef()[0].misses(), 1u);
    EXPECT_EQ(mem.textureCachesRef()[0].hits(), 1u);
    // The miss reached DRAM as texel traffic.
    EXPECT_GT(mem.dram().traffic()[TrafficClass::Texels], 0u);
}

TEST(MemSystem, TextureCachesAreIndependent)
{
    GpuConfig cfg;
    MemSystem mem(cfg);
    mem.texelFetch(0, 0x3'0000'0000ull);
    mem.texelFetch(1, 0x3'0000'0000ull);
    EXPECT_EQ(mem.textureCachesRef()[0].misses(), 1u);
    EXPECT_EQ(mem.textureCachesRef()[1].misses(), 1u);
}

TEST(MemSystem, ColorFlushCountsAsColorTraffic)
{
    GpuConfig cfg;
    MemSystem mem(cfg);
    mem.colorFlush(0x4'0000'0000ull, 1024);
    EXPECT_EQ(mem.dram().traffic()[TrafficClass::Colors], 1024u);
}

TEST(MemSystem, ParameterReadMissesGoToDramAsPrimitives)
{
    GpuConfig cfg;
    MemSystem mem(cfg);
    mem.parameterRead(0x2'0000'0000ull, 256);
    EXPECT_GT(mem.dram().traffic()[TrafficClass::Primitives], 0u);
    // Second read of the same region hits the Tile Cache.
    u64 before = mem.dram().traffic()[TrafficClass::Primitives];
    mem.parameterRead(0x2'0000'0000ull, 256);
    EXPECT_EQ(mem.dram().traffic()[TrafficClass::Primitives], before);
}

TEST(MemSystem, EndFrameInvalidatesTileCache)
{
    GpuConfig cfg;
    MemSystem mem(cfg);
    mem.parameterRead(0x2'0000'0000ull, 64);
    mem.endFrame();
    u64 before = mem.dram().traffic()[TrafficClass::Primitives];
    mem.parameterRead(0x2'0000'0000ull, 64);
    EXPECT_GT(mem.dram().traffic()[TrafficClass::Primitives], before);
}

TEST(MemSystem, FrameSummaryResetsEachFrame)
{
    GpuConfig cfg;
    MemSystem mem(cfg);
    mem.texelFetch(0, 0x3'0000'0000ull);
    MemFrameSummary s1 = mem.endFrame();
    EXPECT_EQ(s1.texelMisses, 1u);
    MemFrameSummary s2 = mem.endFrame();
    EXPECT_EQ(s2.texelMisses, 0u);
}
