/**
 * @file
 * Signature Unit tests: the incremental per-tile signatures it builds
 * must equal the direct CRC of the paper's §III-E "tile inputs
 * bitstream" (constants once per drawcall per tile, then attribute
 * blocks of every overlapping primitive, in order).
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "crc/crc32.hh"
#include "re/signature_unit.hh"

using namespace regpu;

namespace
{

struct SigFixture : ::testing::Test
{
    GpuConfig config;
    std::unique_ptr<SignatureBuffer> buffer;
    std::unique_ptr<SignatureUnit> unit;
    Rng rng{77};

    SigFixture()
    {
        config.scaleResolution(64, 64); // 4x4 = 16 tiles
        buffer = std::make_unique<SignatureBuffer>(config.numTiles(), 2);
        unit = std::make_unique<SignatureUnit>(config, *buffer);
        buffer->rotate();
        unit->frameBegin();
    }

    std::vector<u8>
    randomBlock(std::size_t blocks64)
    {
        return randomBytes(blocks64 * 8);
    }

    std::vector<u8>
    randomBytes(std::size_t n)
    {
        std::vector<u8> v(n);
        for (auto &b : v)
            b = static_cast<u8>(rng.nextBounded(256));
        return v;
    }
};

} // namespace

TEST_F(SigFixture, SingleConstantsSinglePrimitive)
{
    auto constants = randomBlock(8);  // 64 B
    auto attrs = randomBlock(18);     // 144 B

    unit->onConstants(constants);
    unit->onPrimitive(attrs, {5}, 100);

    // Expected: CRC(constants || attrs).
    std::vector<u8> stream = constants;
    stream.insert(stream.end(), attrs.begin(), attrs.end());
    EXPECT_EQ(buffer->peek(5), crc32Tabular(stream));
}

TEST_F(SigFixture, ConstantsFoldedOncePerTile)
{
    // Two primitives of the same drawcall overlapping the same tile:
    // the constants block must appear exactly once in the stream
    // (Fig. 6's Tile 1/3 example).
    auto constants = randomBlock(8);
    auto primA = randomBlock(18);
    auto primB = randomBlock(18);

    unit->onConstants(constants);
    unit->onPrimitive(primA, {1}, 100);
    unit->onPrimitive(primB, {1}, 100);

    std::vector<u8> stream = constants;
    stream.insert(stream.end(), primA.begin(), primA.end());
    stream.insert(stream.end(), primB.begin(), primB.end());
    EXPECT_EQ(buffer->peek(1), crc32Tabular(stream));
}

TEST_F(SigFixture, NewDrawcallConstantsRefolded)
{
    // Fig. 6's Tile 2: primitive C of drawcall F then primitive A of
    // drawcall S -> constants F, attrs C, constants S, attrs A.
    auto constF = randomBlock(8);
    auto attrsC = randomBlock(18);
    auto constS = randomBlock(8);
    auto attrsA = randomBlock(18);

    unit->onConstants(constF);
    unit->onPrimitive(attrsC, {2}, 100);
    unit->onConstants(constS);
    unit->onPrimitive(attrsA, {2}, 100);

    std::vector<u8> stream;
    for (auto *part : {&constF, &attrsC, &constS, &attrsA})
        stream.insert(stream.end(), part->begin(), part->end());
    EXPECT_EQ(buffer->peek(2), crc32Tabular(stream));
}

TEST_F(SigFixture, UnalignedBlockLengthsAreByteExact)
{
    // The real pipeline feeds unaligned blocks (70-byte constants:
    // 64 B of uniforms plus 6 state bytes). The accumulated tile
    // signature must equal the bitwise-reference CRC of the exact
    // concatenated byte stream - under the old zero-padding datapath
    // this failed for every non-multiple-of-8 block.
    auto constants = randomBytes(70);
    auto primA = randomBytes(144);
    auto primB = randomBytes(20);

    unit->onConstants(constants);
    unit->onPrimitive(primA, {4}, 100);
    unit->onPrimitive(primB, {4}, 100);

    std::vector<u8> stream = constants;
    stream.insert(stream.end(), primA.begin(), primA.end());
    stream.insert(stream.end(), primB.begin(), primB.end());
    EXPECT_EQ(buffer->peek(4), crc32Reference(stream));
}

TEST_F(SigFixture, TrailingZeroBlockBytesChangeTheSignature)
{
    // Two primitives whose attribute blocks differ only by trailing
    // zero bytes must produce different tile signatures (the aliasing
    // class the length-aware subsystem eliminates). Same constants,
    // same fold sequence, two consecutive frames.
    auto constants = randomBytes(70);
    auto attrs = randomBytes(20);
    auto attrsPadded = attrs;
    attrsPadded.resize(24, 0);

    unit->onConstants(constants);
    unit->onPrimitive(attrs, {1}, 100);
    u32 sigShort = buffer->peek(1);

    buffer->rotate();
    unit->frameBegin();
    unit->onConstants(constants);
    unit->onPrimitive(attrsPadded, {1}, 100);
    EXPECT_NE(buffer->peek(1), sigShort);
}

TEST_F(SigFixture, TilesAccumulateIndependently)
{
    // One primitive overlapping tiles {1,2}; another only tile {2}.
    auto constants = randomBlock(8);
    auto primA = randomBlock(12);
    auto primB = randomBlock(6);

    unit->onConstants(constants);
    unit->onPrimitive(primA, {1, 2}, 100);
    unit->onPrimitive(primB, {2}, 100);

    std::vector<u8> s1 = constants;
    s1.insert(s1.end(), primA.begin(), primA.end());
    std::vector<u8> s2 = s1;
    s2.insert(s2.end(), primB.begin(), primB.end());
    EXPECT_EQ(buffer->peek(1), crc32Tabular(s1));
    EXPECT_EQ(buffer->peek(2), crc32Tabular(s2));
    EXPECT_EQ(buffer->peek(3), 0u); // untouched tile
}

TEST_F(SigFixture, IdenticalInputStreamsGiveIdenticalSignatures)
{
    auto constants = randomBlock(8);
    auto attrs = randomBlock(18);

    unit->onConstants(constants);
    unit->onPrimitive(attrs, {0}, 100);
    u32 sigFrame0 = buffer->peek(0);

    buffer->rotate();
    unit->frameBegin();
    unit->onConstants(constants);
    unit->onPrimitive(attrs, {0}, 100);
    EXPECT_EQ(buffer->peek(0), sigFrame0);
}

TEST_F(SigFixture, AnyInputBitChangeChangesSignature)
{
    auto constants = randomBlock(8);
    auto attrs = randomBlock(18);
    unit->onConstants(constants);
    unit->onPrimitive(attrs, {0}, 100);
    u32 orig = buffer->peek(0);

    buffer->rotate();
    unit->frameBegin();
    auto attrs2 = attrs;
    attrs2[100] ^= 0x01;
    unit->onConstants(constants);
    unit->onPrimitive(attrs2, {0}, 100);
    EXPECT_NE(buffer->peek(0), orig);
}

TEST_F(SigFixture, PrimitiveOrderMatters)
{
    auto constants = randomBlock(8);
    auto a = randomBlock(18);
    auto b = randomBlock(18);
    unit->onConstants(constants);
    unit->onPrimitive(a, {0}, 100);
    unit->onPrimitive(b, {0}, 100);
    u32 ab = buffer->peek(0);

    buffer->rotate();
    unit->frameBegin();
    unit->onConstants(constants);
    unit->onPrimitive(b, {0}, 100);
    unit->onPrimitive(a, {0}, 100);
    EXPECT_NE(buffer->peek(0), ab);
}

TEST_F(SigFixture, ActivityAccountsComputeAndAccumulate)
{
    auto constants = randomBlock(8);  // 8 sub-blocks
    auto attrs = randomBlock(18);     // 18 sub-blocks
    unit->onConstants(constants);
    unit->onPrimitive(attrs, {0, 1, 2}, 1000);
    const SignatureUnitActivity &a = unit->activity();
    // Compute: 8 (constants) + 18 (primitive) cycles.
    EXPECT_EQ(a.computeCycles, 26u);
    // Accumulate: per tile, constants fold (8) + primitive fold (18).
    EXPECT_EQ(a.accumulateCycles, 3u * 26);
    EXPECT_EQ(a.otPushes, 3u);
    EXPECT_EQ(a.sigBufferAccesses, 6u); // read+write per tile
}

TEST_F(SigFixture, LargeTileCountOverflowsOtQueueAndStalls)
{
    // A primitive covering far more tiles than the PLB work plus the
    // 16-entry queue can hide must stall geometry (paper: 0.64% avg).
    auto attrs = randomBlock(18);
    std::vector<TileId> many;
    for (TileId t = 0; t < 16; t++)
        many.push_back(t);
    unit->onConstants(randomBlock(8));
    // Tiny plbCycles: nothing to hide behind.
    unit->onPrimitive(attrs, many, 1);
    EXPECT_GT(unit->activity().stallCycles, 0u);
}

TEST_F(SigFixture, SmallPrimitivesDontStall)
{
    auto attrs = randomBlock(18);
    unit->onConstants(randomBlock(8));
    unit->onPrimitive(attrs, {0}, 200);
    EXPECT_EQ(unit->activity().stallCycles, 0u);
}

TEST_F(SigFixture, WeakHashStillDeterministic)
{
    SignatureUnit weak(config, *buffer, HashKind::XorFold);
    buffer->rotate();
    weak.frameBegin();
    auto constants = randomBlock(8);
    auto attrs = randomBlock(18);
    weak.onConstants(constants);
    weak.onPrimitive(attrs, {0}, 100);
    u32 first = buffer->peek(0);

    buffer->rotate();
    weak.frameBegin();
    weak.onConstants(constants);
    weak.onPrimitive(attrs, {0}, 100);
    EXPECT_EQ(buffer->peek(0), first);
}
