/**
 * @file
 * Parallel experiment driver tests: an N-thread sweep must produce
 * bit-identical per-job results and merged statistics to the
 * sequential run, per-job seeding must be deterministic, and the
 * merge fold must account for every counter exactly once.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/parallel_runner.hh"
#include "workloads/workloads.hh"

using namespace regpu;

namespace
{

/** Small sweep: 3 workloads x 2 techniques at reduced scale. */
std::vector<SimJob>
smallSweep()
{
    std::vector<SimJob> jobs;
    for (const char *alias : {"ccs", "mst", "ctr"}) {
        for (Technique tech : {Technique::Baseline,
                               Technique::RenderingElimination}) {
            SimJob job;
            job.workload = alias;
            job.config.scaleResolution(256, 160);
            job.config.technique = tech;
            job.options.frames = 6;
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

/** Field-by-field bit equality of two results (stats maps included). */
void
expectIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.technique, b.technique);
    EXPECT_EQ(a.frames, b.frames);
    EXPECT_EQ(a.geometryCycles, b.geometryCycles);
    EXPECT_EQ(a.rasterCycles, b.rasterCycles);
    EXPECT_EQ(a.energy.gpuDynamic, b.energy.gpuDynamic);
    EXPECT_EQ(a.energy.gpuStatic, b.energy.gpuStatic);
    EXPECT_EQ(a.energy.memDynamic, b.energy.memDynamic);
    EXPECT_EQ(a.energy.memStatic, b.energy.memStatic);
    for (int c = 0; c < 4; c++) {
        EXPECT_EQ(a.traffic.read[c], b.traffic.read[c]);
        EXPECT_EQ(a.traffic.write[c], b.traffic.write[c]);
        EXPECT_EQ(a.traffic.writeback[c], b.traffic.writeback[c]);
    }
    EXPECT_EQ(a.tileClasses.comparedTiles, b.tileClasses.comparedTiles);
    EXPECT_EQ(a.tileClasses.equalColorsEqualInputs,
              b.tileClasses.equalColorsEqualInputs);
    EXPECT_EQ(a.tileClasses.equalColorsDiffInputs,
              b.tileClasses.equalColorsDiffInputs);
    EXPECT_EQ(a.tileClasses.diffColorsDiffInputs,
              b.tileClasses.diffColorsDiffInputs);
    EXPECT_EQ(a.tileClasses.diffColorsEqualInputs,
              b.tileClasses.diffColorsEqualInputs);
    EXPECT_EQ(a.tilesTotal, b.tilesTotal);
    EXPECT_EQ(a.tilesRendered, b.tilesRendered);
    EXPECT_EQ(a.tilesSkippedByRe, b.tilesSkippedByRe);
    EXPECT_EQ(a.tileFlushesEliminated, b.tileFlushesEliminated);
    EXPECT_EQ(a.fragmentsShaded, b.fragmentsShaded);
    EXPECT_EQ(a.fragmentsMemoReused, b.fragmentsMemoReused);
    EXPECT_EQ(a.equalTilesConsecutivePct, b.equalTilesConsecutivePct);
    EXPECT_EQ(a.signatureStallCycles, b.signatureStallCycles);
    EXPECT_EQ(a.reFalsePositives, b.reFalsePositives);
    EXPECT_EQ(a.stats.allCounters(), b.stats.allCounters());
    EXPECT_EQ(a.stats.allScalars(), b.stats.allScalars());
}

} // namespace

TEST(ParallelRunner, WorkerCountClamping)
{
    EXPECT_EQ(ParallelRunner(1).workerCount(), 1u);
    EXPECT_EQ(ParallelRunner(7).workerCount(), 7u);
    // 0 resolves to the hardware concurrency (>= 1 always).
    EXPECT_GE(ParallelRunner(0).workerCount(), 1u);
}

TEST(ParallelRunner, EmptyJobVector)
{
    ParallelRunner runner(4);
    EXPECT_TRUE(runner.run({}).empty());
}

TEST(ParallelRunner, DeterministicAcrossWorkerCounts)
{
    const std::vector<SimJob> jobs = smallSweep();

    const std::vector<SimResult> seq = ParallelRunner(1).run(jobs);
    const std::vector<SimResult> par4 = ParallelRunner(4).run(jobs);
    const std::vector<SimResult> parN = ParallelRunner(0).run(jobs);

    ASSERT_EQ(seq.size(), jobs.size());
    ASSERT_EQ(par4.size(), jobs.size());
    ASSERT_EQ(parN.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); i++) {
        SCOPED_TRACE("job " + std::to_string(i));
        expectIdentical(seq[i], par4[i]);
        expectIdentical(seq[i], parN[i]);
    }

    // The merged aggregate is a deterministic fold, so it must also
    // match bit-for-bit.
    expectIdentical(mergeResults(seq), mergeResults(par4));
}

TEST(ParallelRunner, ResultsInJobOrderNotCompletionOrder)
{
    // Jobs of very different cost: big baseline first, tiny runs after.
    std::vector<SimJob> jobs;
    SimJob heavy;
    heavy.workload = "mst";
    heavy.config.scaleResolution(512, 320);
    heavy.options.frames = 8;
    jobs.push_back(heavy);
    for (int i = 0; i < 3; i++) {
        SimJob light;
        light.workload = "ccs";
        light.config.scaleResolution(128, 96);
        light.options.frames = 2;
        jobs.push_back(light);
    }

    const std::vector<SimResult> res = ParallelRunner(4).run(jobs);
    ASSERT_EQ(res.size(), 4u);
    EXPECT_EQ(res[0].workload, "mst");
    for (int i = 1; i < 4; i++)
        EXPECT_EQ(res[i].workload, "ccs");
}

TEST(ParallelRunner, MergeSumsEveryCounter)
{
    const std::vector<SimJob> jobs = smallSweep();
    const std::vector<SimResult> res = ParallelRunner(2).run(jobs);

    const SimResult merged = mergeResults(res);
    u64 frames = 0, tilesRendered = 0, fragmentsShaded = 0;
    Cycles raster = 0;
    for (const SimResult &r : res) {
        frames += r.frames;
        tilesRendered += r.tilesRendered;
        fragmentsShaded += r.fragmentsShaded;
        raster += r.rasterCycles;
    }
    EXPECT_EQ(merged.frames, frames);
    EXPECT_EQ(merged.tilesRendered, tilesRendered);
    EXPECT_EQ(merged.fragmentsShaded, fragmentsShaded);
    EXPECT_EQ(merged.rasterCycles, raster);
    // Inputs span several workloads AND several techniques.
    EXPECT_EQ(merged.workload, "merged (mixed techniques)");

    // Stat registries merge by name: pick one stat present in all runs
    // and check the sum.
    for (const auto &[name, val] : merged.stats.allCounters()) {
        u64 sum = 0;
        for (const SimResult &r : res)
            sum += r.stats.counter(name);
        EXPECT_EQ(val, sum) << "stat " << name;
    }
}

TEST(ParallelRunner, MergeLabelsTechniqueSpans)
{
    // Same workload, mixed techniques: the label must say so instead
    // of silently attributing the aggregate to the first technique.
    std::vector<SimJob> jobs;
    for (Technique tech : {Technique::Baseline,
                           Technique::RenderingElimination}) {
        SimJob job;
        job.workload = "ccs";
        job.config.scaleResolution(128, 96);
        job.config.technique = tech;
        job.options.frames = 2;
        jobs.push_back(std::move(job));
    }
    const SimResult merged = mergeResults(ParallelRunner(2).run(jobs));
    EXPECT_EQ(merged.workload, "ccs (mixed techniques)");

    // Uniform technique keeps the plain alias.
    jobs[1].config.technique = Technique::Baseline;
    const SimResult uniform = mergeResults(ParallelRunner(2).run(jobs));
    EXPECT_EQ(uniform.workload, "ccs");
    EXPECT_EQ(uniform.technique, Technique::Baseline);
}

TEST(ParallelRunner, UnknownAliasRejectedBeforeWorkersStart)
{
    // fatal() must fire on the calling thread (clean exit(1)), never
    // from inside a worker.
    SimJob bad;
    bad.workload = "nope";
    bad.config.scaleResolution(128, 96);
    bad.options.frames = 1;
    EXPECT_EXIT(ParallelRunner(4).run({bad, bad}),
                testing::ExitedWithCode(1), "unknown benchmark alias");
}

TEST(ParallelRunner, MergeOfEmptyAndSingle)
{
    EXPECT_EQ(mergeResults({}).frames, 0u);

    std::vector<SimJob> one = {smallSweep().front()};
    const std::vector<SimResult> res = ParallelRunner(1).run(one);
    const SimResult merged = mergeResults(res);
    expectIdentical(merged, res.front());
}

TEST(ParallelRunner, DeriveJobSeedDeterministicAndDistinct)
{
    // Same inputs -> same seed, forever.
    EXPECT_EQ(deriveJobSeed(1, "ccs", 0), deriveJobSeed(1, "ccs", 0));

    // Different alias / base / salt -> distinct seeds.
    std::set<u64> seeds;
    for (const char *alias : {"ccs", "mst", "ctr", "abi"})
        for (u64 base : {1ull, 2ull})
            for (u64 salt : {0ull, 1ull})
                seeds.insert(deriveJobSeed(base, alias, salt));
    EXPECT_EQ(seeds.size(), 16u);
}

TEST(ParallelRunner, SceneSeedFlowsIntoResults)
{
    // Identical jobs (same seed) must agree bit-for-bit even when
    // scheduled on different workers.
    SimJob a;
    a.workload = "ccs";
    a.config.scaleResolution(256, 160);
    a.options.frames = 4;
    const std::vector<SimResult> res = ParallelRunner(2).run({a, a});
    expectIdentical(res[0], res[1]);

    // The seed reaches scene generation: different seeds produce
    // different content. Aggregate counters are structural (the draw
    // list does not depend on the seed), so check at the framebuffer
    // level where texture content shows up.
    auto renderOnce = [](u64 seed) {
        GpuConfig config;
        config.scaleResolution(256, 160);
        auto scene = makeBenchmark("ccs", config, seed);
        Simulator sim(*scene, config, {});
        sim.stepFrame(0);
        // renderFrame swaps at frame end: frame 0's output is now the
        // front surface.
        const FrameBuffer &fb = sim.pipeline().frameBuffer();
        std::vector<Color> front;
        front.reserve(fb.pixelCount());
        for (u32 y = 0; y < config.screenHeight; y++)
            for (u32 x = 0; x < config.screenWidth; x++)
                front.push_back(fb.frontPixel(x, y));
        return front;
    };
    const u64 otherSeed = deriveJobSeed(1, "ccs", 7);
    ASSERT_NE(otherSeed, 1u);
    EXPECT_NE(renderOnce(1), renderOnce(otherSeed));
}
