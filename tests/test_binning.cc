/**
 * @file
 * Tiling Engine tests: exact tile overlap, Parameter Buffer
 * accounting, observer callbacks.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "gpu/binning.hh"
#include "gpu/memiface.hh"

using namespace regpu;

namespace
{

Primitive
screenTriangle(float x0, float y0, float x1, float y1, float x2, float y2)
{
    Primitive p;
    p.v[0].x = x0; p.v[0].y = y0;
    p.v[1].x = x1; p.v[1].y = y1;
    p.v[2].x = x2; p.v[2].y = y2;
    for (int i = 0; i < 3; i++) {
        p.v[i].z = 0.5f;
        p.v[i].invW = 1.0f;
    }
    return p;
}

struct BinFixture : ::testing::Test
{
    GpuConfig config;
    StatRegistry stats;

    BinFixture()
    {
        config.scaleResolution(128, 128); // 8x8 tiles of 16x16
    }

    std::vector<TileId>
    overlap(const Primitive &p)
    {
        PolygonListBuilder plb(config, stats, nullptr);
        return plb.overlappedTiles(p);
    }
};

} // namespace

TEST_F(BinFixture, SmallTriangleHitsOneTile)
{
    Primitive p = screenTriangle(2, 2, 10, 2, 2, 10);
    auto tiles = overlap(p);
    ASSERT_EQ(tiles.size(), 1u);
    EXPECT_EQ(tiles[0], 0u);
}

TEST_F(BinFixture, TriangleSpanningTwoTiles)
{
    Primitive p = screenTriangle(8, 4, 24, 4, 8, 12);
    auto tiles = overlap(p);
    ASSERT_EQ(tiles.size(), 2u);
    EXPECT_EQ(tiles[0], 0u);
    EXPECT_EQ(tiles[1], 1u);
}

TEST_F(BinFixture, FullScreenTriangleHitsManyTiles)
{
    Primitive p = screenTriangle(0, 0, 256, 0, 0, 256);
    auto tiles = overlap(p);
    // Covers the whole 8x8 grid (hypotenuse runs beyond the corner).
    EXPECT_EQ(tiles.size(), 64u);
}

TEST_F(BinFixture, EdgeTestPrunesBboxCorners)
{
    // A thin diagonal sliver: its bbox spans a 4x4 tile block but the
    // triangle itself only crosses the diagonal band.
    Primitive p = screenTriangle(0, 0, 64, 64, 0, 4);
    auto tiles = overlap(p);
    // Bbox would claim 5x5 = 25 tiles (x up to 64 enters tile col 4).
    EXPECT_LT(tiles.size(), 25u);
    // The top-right bbox tile (col 3, row 0) is far from the band.
    for (TileId t : tiles)
        EXPECT_NE(t, 3u);
}

TEST_F(BinFixture, OffscreenTriangleOverlapsNothing)
{
    Primitive p = screenTriangle(-50, -50, -10, -50, -50, -10);
    EXPECT_TRUE(overlap(p).empty());
}

TEST_F(BinFixture, PartiallyOffscreenClampsToGrid)
{
    Primitive p = screenTriangle(-20, -20, 20, -20, -20, 20);
    auto tiles = overlap(p);
    ASSERT_EQ(tiles.size(), 1u);
    EXPECT_EQ(tiles[0], 0u);
}

TEST_F(BinFixture, WindingDoesNotAffectOverlap)
{
    Primitive ccw = screenTriangle(4, 4, 40, 4, 4, 40);
    Primitive cw = screenTriangle(4, 4, 4, 40, 40, 4);
    EXPECT_EQ(overlap(ccw), overlap(cw));
}

TEST_F(BinFixture, RowMajorOrder)
{
    Primitive p = screenTriangle(0, 0, 48, 0, 0, 48);
    auto tiles = overlap(p);
    for (std::size_t i = 1; i < tiles.size(); i++)
        EXPECT_LT(tiles[i - 1], tiles[i]);
}

TEST_F(BinFixture, BinDrawcallFillsTileListsAndParameterBuffer)
{
    PolygonListBuilder plb(config, stats, nullptr);
    BinnedFrame frame;
    plb.beginFrame(frame);

    DrawCall draw;
    draw.layout.hasTexcoord = true;
    draw.vertices.resize(3);
    std::vector<Primitive> prims{screenTriangle(2, 2, 30, 2, 2, 30)};
    prims[0].firstVertex = 0;
    plb.binDrawcall(draw, prims, frame);

    EXPECT_EQ(frame.primitives.size(), 1u);
    u64 listed = 0;
    for (const auto &list : frame.tileLists)
        listed += list.size();
    EXPECT_GE(listed, 3u); // triangle covers several tiles
    EXPECT_GT(frame.parameterBytes, 0u);
}

TEST_F(BinFixture, ObserverSeesEveryBinnedPrimitive)
{
    PolygonListBuilder plb(config, stats, nullptr);
    BinnedFrame frame;
    plb.beginFrame(frame);

    u32 observed = 0;
    u64 observedTiles = 0;
    plb.setObserver([&](const Primitive &, const DrawCall &,
                        const std::vector<TileId> &tiles) {
        observed++;
        observedTiles += tiles.size();
    });

    DrawCall draw;
    draw.vertices.resize(6);
    std::vector<Primitive> prims{
        screenTriangle(2, 2, 30, 2, 2, 30),
        screenTriangle(100, 100, 120, 100, 100, 120),
    };
    plb.binDrawcall(draw, prims, frame);
    EXPECT_EQ(observed, 2u);
    EXPECT_EQ(observedTiles, stats.counter("binning.tileOverlaps"));
}

TEST_F(BinFixture, OffscreenPrimitiveNotObservedNotStored)
{
    PolygonListBuilder plb(config, stats, nullptr);
    BinnedFrame frame;
    plb.beginFrame(frame);
    u32 observed = 0;
    plb.setObserver([&](const Primitive &, const DrawCall &,
                        const std::vector<TileId> &) { observed++; });
    DrawCall draw;
    draw.vertices.resize(3);
    std::vector<Primitive> prims{
        screenTriangle(-90, -90, -50, -90, -90, -50)};
    plb.binDrawcall(draw, prims, frame);
    EXPECT_EQ(observed, 0u);
    EXPECT_EQ(frame.primitives.size(), 0u);
    EXPECT_EQ(stats.counter("binning.primitivesOffscreen"), 1u);
}

TEST_F(BinFixture, BeginFrameResetsState)
{
    PolygonListBuilder plb(config, stats, nullptr);
    BinnedFrame frame;
    plb.beginFrame(frame);
    DrawCall draw;
    draw.vertices.resize(3);
    std::vector<Primitive> prims{screenTriangle(2, 2, 30, 2, 2, 30)};
    plb.binDrawcall(draw, prims, frame);
    u64 firstBytes = frame.parameterBytes;

    plb.beginFrame(frame);
    EXPECT_EQ(frame.parameterBytes, 0u);
    EXPECT_TRUE(frame.primitives.empty());
    plb.binDrawcall(draw, prims, frame);
    EXPECT_EQ(frame.parameterBytes, firstBytes);
}
