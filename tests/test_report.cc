/**
 * @file
 * Reporting-module tests: summaries, comparisons, CSV schema.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/report.hh"
#include "workloads/workloads.hh"

using namespace regpu;

namespace
{

SimResult
smallRun(Technique tech)
{
    GpuConfig config;
    config.scaleResolution(160, 96);
    config.technique = tech;
    auto scene = makeBenchmark("ccs", config);
    SimOptions opts;
    opts.frames = 4;
    Simulator sim(*scene, config, opts);
    return sim.run();
}

} // namespace

TEST(Report, SummaryMentionsKeyNumbers)
{
    GpuConfig config;
    config.scaleResolution(160, 96);
    SimResult r = smallRun(Technique::RenderingElimination);
    std::ostringstream os;
    printRunSummary(os, r, config);
    std::string text = os.str();
    EXPECT_NE(text.find("ccs"), std::string::npos);
    EXPECT_NE(text.find("RE"), std::string::npos);
    EXPECT_NE(text.find("cycles"), std::string::npos);
    EXPECT_NE(text.find("tiles"), std::string::npos);
    EXPECT_NE(text.find("false positives"), std::string::npos);
}

TEST(Report, ComparisonNormalizesToFirst)
{
    std::vector<SimResult> results{smallRun(Technique::Baseline),
                                   smallRun(Technique::RenderingElimination)};
    std::ostringstream os;
    printComparison(os, results);
    std::string text = os.str();
    // The baseline row normalizes to exactly 1.000 everywhere.
    EXPECT_NE(text.find("1.000"), std::string::npos);
    EXPECT_NE(text.find("Baseline"), std::string::npos);
    EXPECT_NE(text.find("RE"), std::string::npos);
}

TEST(Report, ComparisonOnEmptyInputIsSilent)
{
    std::ostringstream os;
    printComparison(os, {});
    EXPECT_TRUE(os.str().empty());
}

TEST(Report, CsvHeaderMatchesSchema)
{
    SimResult r = smallRun(Technique::Baseline);
    std::ostringstream os;
    writeCsvRow(os, r, true);
    std::string text = os.str();
    // Two lines: header + row.
    auto firstNewline = text.find('\n');
    ASSERT_NE(firstNewline, std::string::npos);
    std::string header = text.substr(0, firstNewline);

    std::size_t commas = 0;
    for (char c : header)
        commas += c == ',';
    EXPECT_EQ(commas + 1, csvColumns().size());
    EXPECT_EQ(header.substr(0, 8), "workload");
}

TEST(Report, CsvRowFieldCountMatchesHeader)
{
    SimResult r = smallRun(Technique::Baseline);
    std::ostringstream os;
    writeCsvRow(os, r, false);
    std::string row = os.str();
    std::size_t commas = 0;
    for (char c : row)
        commas += c == ',';
    EXPECT_EQ(commas + 1, csvColumns().size());
}

TEST(Report, CsvRowStartsWithWorkloadAndTechnique)
{
    SimResult r = smallRun(Technique::TransactionElimination);
    std::ostringstream os;
    writeCsvRow(os, r, false);
    EXPECT_EQ(os.str().substr(0, 7), "ccs,TE,");
}

TEST(Report, JsonRunIsSelfDescribing)
{
    GpuConfig config;
    config.scaleResolution(160, 96);
    config.technique = Technique::RenderingElimination;
    SimResult r = smallRun(Technique::RenderingElimination);
    std::ostringstream os;
    writeJsonRun(os, r, config, 42);
    const std::string line = os.str();

    // One object per line, braces balanced, no raw newline inside.
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.substr(line.size() - 2), "}\n");
    EXPECT_EQ(line.find('\n'), line.size() - 1);

    // Identity metadata travels with the metrics.
    EXPECT_NE(line.find("\"workload\":\"ccs\""), std::string::npos);
    EXPECT_NE(line.find("\"technique\":\"RE\""), std::string::npos);
    EXPECT_NE(line.find("\"seed\":42"), std::string::npos);
    EXPECT_NE(line.find("\"frames\":4"), std::string::npos);
    EXPECT_NE(line.find("\"screenWidth\":160"), std::string::npos);
    EXPECT_NE(line.find("\"screenHeight\":96"), std::string::npos);

    // Every metric key of the CSV schema that is not a CSV-only
    // positional column appears by name.
    for (const char *key :
         {"totalCycles", "energyTotalPj", "dramTexelsB", "tilesTotal",
          "tilesSkipped", "fragmentsShaded", "signatureStallCycles",
          "falsePositives", "equalTilesConsecutivePct"})
        EXPECT_NE(line.find("\"" + std::string(key) + "\":"),
                  std::string::npos)
            << key;
}
