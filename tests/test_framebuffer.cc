/**
 * @file
 * Frame Buffer tests: tile addressing, double buffering, comparison.
 */

#include <gtest/gtest.h>

#include "gpu/framebuffer.hh"

using namespace regpu;

namespace
{

struct FbFixture : ::testing::Test
{
    GpuConfig config;

    FbFixture()
    {
        config.scaleResolution(64, 48); // 4x3 tiles
    }

    std::vector<Color>
    solidTile(Color c)
    {
        return std::vector<Color>(
            static_cast<std::size_t>(config.tileWidth)
            * config.tileHeight, c);
    }
};

} // namespace

TEST_F(FbFixture, WriteReadRoundTrip)
{
    FrameBuffer fb(config);
    auto tile = solidTile(Color(1, 2, 3));
    fb.writeTile(5, tile);
    EXPECT_EQ(fb.readTile(5), tile);
}

TEST_F(FbFixture, WritesLandAtCorrectPixels)
{
    FrameBuffer fb(config);
    auto tile = solidTile(Color(9, 9, 9));
    fb.writeTile(1, tile); // second tile of the first row
    EXPECT_EQ(fb.pixel(16, 0), Color(9, 9, 9));
    EXPECT_EQ(fb.pixel(15, 0), Color(0, 0, 0, 255));
    EXPECT_EQ(fb.pixel(31, 15), Color(9, 9, 9));
    EXPECT_EQ(fb.pixel(32, 0), Color(0, 0, 0, 255));
}

TEST_F(FbFixture, TileEqualsDetectsEquality)
{
    FrameBuffer fb(config);
    auto tile = solidTile(Color(7, 8, 9));
    fb.writeTile(2, tile);
    EXPECT_TRUE(fb.tileEquals(2, tile));
    tile[100] = Color(0, 0, 0);
    EXPECT_FALSE(fb.tileEquals(2, tile));
}

TEST_F(FbFixture, SwapExchangesSurfaces)
{
    FrameBuffer fb(config);
    fb.writeTile(0, solidTile(Color(1, 1, 1)));
    u32 backBefore = fb.backIndex();
    fb.swap();
    EXPECT_NE(fb.backIndex(), backBefore);
    // After the swap the back buffer is the other (still clear)
    // surface; the written tile is now on the front.
    EXPECT_EQ(fb.pixel(0, 0), Color(0, 0, 0, 255));
    EXPECT_EQ(fb.frontPixel(0, 0), Color(1, 1, 1));
    fb.swap();
    EXPECT_EQ(fb.pixel(0, 0), Color(1, 1, 1));
}

TEST_F(FbFixture, DoubleBufferPersistenceAcrossTwoFrames)
{
    // A tile written in frame N is still in the back buffer at frame
    // N+2: the property RE's reuse (and its N vs N-2 compare) relies
    // on.
    FrameBuffer fb(config);
    auto tile = solidTile(Color(4, 5, 6));
    fb.writeTile(3, tile);   // frame 0
    fb.swap();
    fb.swap();               // frame 2: same physical surface is back
    EXPECT_TRUE(fb.tileEquals(3, tile));
}

TEST_F(FbFixture, TileAddressesDisjointAndAligned)
{
    FrameBuffer fb(config);
    Addr a0 = fb.tileAddr(0);
    Addr a1 = fb.tileAddr(1);
    EXPECT_EQ(a1 - a0, static_cast<Addr>(config.tileWidth) * 4);
    fb.swap();
    EXPECT_NE(fb.tileAddr(0), a0); // other surface, other region
}

TEST_F(FbFixture, TileBytesFullAndEdgeTiles)
{
    GpuConfig odd;
    odd.scaleResolution(40, 20); // 3x2 tiles; last col 8 px, last row 4
    FrameBuffer fb(odd);
    EXPECT_EQ(fb.tileBytes(0), 16u * 16 * 4);
    EXPECT_EQ(fb.tileBytes(2), 8u * 16 * 4);   // right edge
    EXPECT_EQ(fb.tileBytes(3), 16u * 4 * 4);   // bottom edge
    EXPECT_EQ(fb.tileBytes(5), 8u * 4 * 4);    // corner
}

TEST_F(FbFixture, EdgeTileWriteDoesNotOverflow)
{
    GpuConfig odd;
    odd.scaleResolution(40, 20);
    FrameBuffer fb(odd);
    auto tile = std::vector<Color>(16 * 16, Color(3, 3, 3));
    fb.writeTile(5, tile); // corner tile, 8x4 visible
    EXPECT_EQ(fb.pixel(39, 19), Color(3, 3, 3));
    EXPECT_TRUE(fb.tileEquals(5, tile)); // only visible region compared
}
