/**
 * @file
 * StatRegistry behaviour tests.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.hh"

using namespace regpu;

TEST(StatRegistry, CountersStartAtZero)
{
    StatRegistry s;
    EXPECT_EQ(s.counter("anything"), 0u);
    EXPECT_DOUBLE_EQ(s.scalar("anything"), 0.0);
}

TEST(StatRegistry, IncAccumulates)
{
    StatRegistry s;
    s.inc("a");
    s.inc("a", 4);
    EXPECT_EQ(s.counter("a"), 5u);
}

TEST(StatRegistry, ScalarsAccumulate)
{
    StatRegistry s;
    s.add("x", 1.5);
    s.add("x", 2.5);
    EXPECT_DOUBLE_EQ(s.scalar("x"), 4.0);
}

TEST(StatRegistry, NamesAreIndependent)
{
    StatRegistry s;
    s.inc("a");
    s.inc("b", 2);
    EXPECT_EQ(s.counter("a"), 1u);
    EXPECT_EQ(s.counter("b"), 2u);
}

TEST(StatRegistry, ResetClearsEverything)
{
    StatRegistry s;
    s.inc("a", 10);
    s.add("b", 3.0);
    s.reset();
    EXPECT_EQ(s.counter("a"), 0u);
    EXPECT_DOUBLE_EQ(s.scalar("b"), 0.0);
}

TEST(StatRegistry, DumpSortedByName)
{
    StatRegistry s;
    s.inc("zeta", 1);
    s.inc("alpha", 2);
    std::ostringstream os;
    s.dump(os);
    std::string text = os.str();
    EXPECT_LT(text.find("alpha"), text.find("zeta"));
}

TEST(StatRegistry, CopySnapshotIsIndependent)
{
    StatRegistry s;
    s.inc("a", 1);
    StatRegistry snap = s;
    s.inc("a", 1);
    EXPECT_EQ(snap.counter("a"), 1u);
    EXPECT_EQ(s.counter("a"), 2u);
}

TEST(StatRegistry, AllCountersExposesEntries)
{
    StatRegistry s;
    s.inc("one");
    s.inc("two", 2);
    EXPECT_EQ(s.allCounters().size(), 2u);
}

TEST(StatRegistry, ForEachVisitsInNameOrder)
{
    StatRegistry s;
    s.inc("zeta", 3);
    s.inc("alpha", 1);
    s.inc("mid", 2);
    s.add("z.scalar", 2.5);
    s.add("a.scalar", 1.5);

    std::vector<std::string> names;
    u64 sum = 0;
    s.forEachCounter([&](std::string_view name, u64 value) {
        names.emplace_back(name);
        sum += value;
    });
    EXPECT_EQ(names,
              (std::vector<std::string>{"alpha", "mid", "zeta"}));
    EXPECT_EQ(sum, 6u);

    names.clear();
    double total = 0;
    s.forEachScalar([&](std::string_view name, double value) {
        names.emplace_back(name);
        total += value;
    });
    EXPECT_EQ(names,
              (std::vector<std::string>{"a.scalar", "z.scalar"}));
    EXPECT_DOUBLE_EQ(total, 4.0);
}

TEST(StatRegistry, ForEachPrefixedSelectsSubsystem)
{
    StatRegistry s;
    s.inc("re.tilesSkipped", 7);
    s.inc("re.signatureHits", 3);
    s.inc("ren.other", 1);   // shares a prefix of the prefix
    s.inc("te.flushes", 5);
    s.add("re.ratio", 0.5);

    std::vector<std::string> names;
    s.forEachCounterPrefixed(
        "re.", [&](std::string_view name, u64 value) {
            names.emplace_back(name);
            (void)value;
        });
    EXPECT_EQ(names, (std::vector<std::string>{"re.signatureHits",
                                               "re.tilesSkipped"}));

    names.clear();
    s.forEachScalarPrefixed(
        "re.", [&](std::string_view name, double value) {
            names.emplace_back(name);
            (void)value;
        });
    EXPECT_EQ(names, (std::vector<std::string>{"re.ratio"}));

    // A prefix past every name visits nothing (lower_bound seek).
    names.clear();
    s.forEachCounterPrefixed(
        "zz.", [&](std::string_view name, u64) {
            names.emplace_back(name);
        });
    EXPECT_TRUE(names.empty());
}
