/**
 * @file
 * StatRegistry behaviour tests.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"

using namespace regpu;

TEST(StatRegistry, CountersStartAtZero)
{
    StatRegistry s;
    EXPECT_EQ(s.counter("anything"), 0u);
    EXPECT_DOUBLE_EQ(s.scalar("anything"), 0.0);
}

TEST(StatRegistry, IncAccumulates)
{
    StatRegistry s;
    s.inc("a");
    s.inc("a", 4);
    EXPECT_EQ(s.counter("a"), 5u);
}

TEST(StatRegistry, ScalarsAccumulate)
{
    StatRegistry s;
    s.add("x", 1.5);
    s.add("x", 2.5);
    EXPECT_DOUBLE_EQ(s.scalar("x"), 4.0);
}

TEST(StatRegistry, NamesAreIndependent)
{
    StatRegistry s;
    s.inc("a");
    s.inc("b", 2);
    EXPECT_EQ(s.counter("a"), 1u);
    EXPECT_EQ(s.counter("b"), 2u);
}

TEST(StatRegistry, ResetClearsEverything)
{
    StatRegistry s;
    s.inc("a", 10);
    s.add("b", 3.0);
    s.reset();
    EXPECT_EQ(s.counter("a"), 0u);
    EXPECT_DOUBLE_EQ(s.scalar("b"), 0.0);
}

TEST(StatRegistry, DumpSortedByName)
{
    StatRegistry s;
    s.inc("zeta", 1);
    s.inc("alpha", 2);
    std::ostringstream os;
    s.dump(os);
    std::string text = os.str();
    EXPECT_LT(text.find("alpha"), text.find("zeta"));
}

TEST(StatRegistry, CopySnapshotIsIndependent)
{
    StatRegistry s;
    s.inc("a", 1);
    StatRegistry snap = s;
    s.inc("a", 1);
    EXPECT_EQ(snap.counter("a"), 1u);
    EXPECT_EQ(s.counter("a"), 2u);
}

TEST(StatRegistry, AllCountersExposesEntries)
{
    StatRegistry s;
    s.inc("one");
    s.inc("two", 2);
    EXPECT_EQ(s.allCounters().size(), 2u);
}
