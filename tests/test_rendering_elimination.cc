/**
 * @file
 * Rendering Elimination end-to-end behaviour on a controlled pipeline:
 * skip decisions, correctness of reused tiles, driver disable rules.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "gpu/pipeline.hh"
#include "re/rendering_elimination.hh"
#include "scene/mesh_gen.hh"

using namespace regpu;

namespace
{

/**
 * Fixture: 64x64 screen (16 tiles), a static background quad and an
 * optional mover whose drawcalls come from a Scene.
 */
struct ReFixture : ::testing::Test
{
    GpuConfig config;
    StatRegistry stats;
    std::unique_ptr<Scene> scene;
    std::unique_ptr<GraphicsPipeline> pipe;
    std::unique_ptr<RenderingElimination> re;

    ReFixture()
    {
        config.scaleResolution(64, 64);
        config.technique = Technique::RenderingElimination;
    }

    void
    buildScene(bool withMover, bool doubleBuffered = true)
    {
        config.doubleBuffered = doubleBuffered;
        scene = std::make_unique<Scene>("re-test", config);
        u32 tex = scene->addTexture(
            Texture(0, 64, 64, TexturePattern::Checker, 5));

        SceneObject bg;
        bg.name = "bg";
        bg.mesh = makeQuad(64, 64);
        bg.shader = ShaderKind::Textured;
        bg.textureId = static_cast<i32>(tex);
        bg.depthTest = false;
        bg.animate = [](u64) {
            Pose p;
            p.position = {32, 32, 0.5f};
            return p;
        };
        scene->addObject(std::move(bg));

        if (withMover) {
            SceneObject mover;
            mover.name = "mover";
            mover.mesh = makeQuad(12, 12, 0.5f);
            mover.shader = ShaderKind::Textured;
            mover.textureId = static_cast<i32>(tex);
            mover.depthTest = false;
            mover.animate = [](u64 frame) {
                Pose p;
                p.position = {10.0f + 2.0f * frame, 10, 0.2f};
                return p;
            };
            scene->addObject(std::move(mover));
        }

        re = std::make_unique<RenderingElimination>(config, stats);
        pipe = std::make_unique<GraphicsPipeline>(config, stats, nullptr,
                                                  scene->textures());
        pipe->setHooks(re.get());
    }

    FrameResult
    frame(u64 i)
    {
        return pipe->renderFrame(scene->emitFrame(i), true);
    }
};

} // namespace

TEST_F(ReFixture, FirstFramesNeverSkipped)
{
    buildScene(false);
    FrameResult f0 = frame(0);
    FrameResult f1 = frame(1);
    for (const TileOutcome &t : f0.tiles)
        EXPECT_TRUE(t.rendered);
    for (const TileOutcome &t : f1.tiles)
        EXPECT_TRUE(t.rendered);
}

TEST_F(ReFixture, StaticSceneFullySkippedAtSteadyState)
{
    buildScene(false);
    frame(0);
    frame(1);
    FrameResult f2 = frame(2); // compares against frame 0
    for (const TileOutcome &t : f2.tiles)
        EXPECT_FALSE(t.rendered) << "tile should be eliminated";
    EXPECT_EQ(stats.counter("re.falsePositives"), 0u);
}

TEST_F(ReFixture, SkippedTilesHaveCorrectColors)
{
    buildScene(false);
    frame(0);
    frame(1);
    FrameResult f2 = frame(2);
    // Ground-truth shadow render marked every skipped tile equal.
    for (const TileOutcome &t : f2.tiles)
        EXPECT_TRUE(t.equalColors);
}

TEST_F(ReFixture, MovingObjectTilesRendered)
{
    buildScene(true);
    frame(0);
    frame(1);
    FrameResult f2 = frame(2);
    u32 rendered = 0, skipped = 0;
    for (const TileOutcome &t : f2.tiles)
        (t.rendered ? rendered : skipped)++;
    EXPECT_GT(rendered, 0u); // mover's tiles change inputs
    EXPECT_GT(skipped, 0u);  // background-only tiles skip
    EXPECT_EQ(stats.counter("re.falsePositives"), 0u);
}

TEST_F(ReFixture, SingleBufferComparesPreviousFrame)
{
    buildScene(false, /*doubleBuffered=*/false);
    frame(0);
    FrameResult f1 = frame(1); // N vs N-1
    for (const TileOutcome &t : f1.tiles)
        EXPECT_FALSE(t.rendered);
}

TEST_F(ReFixture, GlobalStateChangeDisablesReForTheFrame)
{
    buildScene(false);
    frame(0);
    frame(1);
    scene->markGlobalStateChange(2);
    FrameResult f2 = frame(2);
    for (const TileOutcome &t : f2.tiles)
        EXPECT_TRUE(t.rendered);
    EXPECT_EQ(stats.counter("re.framesDisabled"), 1u);
}

TEST_F(ReFixture, DisabledFramePoisonsLaterComparisons)
{
    buildScene(false);
    frame(0);
    frame(1);
    scene->markGlobalStateChange(2);
    frame(2); // disabled; its signatures are invalid
    frame(3); // compares vs frame 1: fine
    FrameResult f4 = frame(4); // compares vs frame 2: must render
    for (const TileOutcome &t : f4.tiles)
        EXPECT_TRUE(t.rendered);
}

TEST_F(ReFixture, RefreshPeriodForcesRender)
{
    config.refreshPeriodFrames = 3;
    buildScene(false);
    frame(0);
    frame(1);
    FrameResult f2 = frame(2); // refresh frame (2 % 3 == 2)
    for (const TileOutcome &t : f2.tiles)
        EXPECT_TRUE(t.rendered);
}

TEST_F(ReFixture, UniformChangeInvalidatesCoveredTiles)
{
    buildScene(false);
    // Manually emit frames where the background tint changes at f2.
    frame(0);
    frame(1);
    FrameCommands cmds = scene->emitFrame(2);
    cmds.draws[0].state.uniforms.tint = {0.5f, 0.5f, 0.5f, 1.0f};
    FrameResult f2 = pipe->renderFrame(cmds, true);
    for (const TileOutcome &t : f2.tiles)
        EXPECT_TRUE(t.rendered); // constants differ -> signatures differ
}

TEST_F(ReFixture, TextureIdsDifferingAboveBit15ChangeSignature)
{
    // Regression: the constants signature used to serialize
    // textureId + 1 truncated to 16 bits, so two draws whose ids
    // differ only above bit 15 produced identical signature bytes —
    // a silent false match. Flat shading keeps the rasterizer off the
    // texture array, so the id can take arbitrary values while still
    // being part of the signed state.
    buildScene(false);
    auto frameWithTex = [&](u64 f, i32 texId) {
        FrameCommands cmds = scene->emitFrame(f);
        for (DrawCall &d : cmds.draws) {
            d.state.shader = ShaderKind::Flat;
            d.state.textureId = texId;
        }
        return pipe->renderFrame(cmds, true);
    };
    frameWithTex(0, 5);
    frameWithTex(1, 5);
    FrameResult same = frameWithTex(2, 5); // steady state: eliminated
    for (const TileOutcome &t : same.tiles)
        EXPECT_FALSE(t.rendered);
    // Frame 3 compares against frame 1 (double buffering): the id
    // collides with 5 under the old 16-bit truncation but is a
    // different binding, so every covered tile must render.
    FrameResult diff = frameWithTex(3, 5 + 0x10000);
    for (const TileOutcome &t : diff.tiles)
        EXPECT_TRUE(t.rendered);
}

TEST_F(ReFixture, TextureId0xFFFFDoesNotAliasNoTexture)
{
    // The other collision of the truncated encoding: id 0xFFFF maps
    // to 0x10000, whose low 16 bits are 0 — the "no texture bound"
    // encoding. The two states must produce different signatures.
    buildScene(false);
    auto frameWithTex = [&](u64 f, i32 texId) {
        FrameCommands cmds = scene->emitFrame(f);
        for (DrawCall &d : cmds.draws) {
            d.state.shader = ShaderKind::Flat;
            d.state.textureId = texId;
        }
        return pipe->renderFrame(cmds, true);
    };
    frameWithTex(0, -1);
    frameWithTex(1, -1);
    FrameResult same = frameWithTex(2, -1);
    for (const TileOutcome &t : same.tiles)
        EXPECT_FALSE(t.rendered);
    FrameResult diff = frameWithTex(3, 0xFFFF);
    for (const TileOutcome &t : diff.tiles)
        EXPECT_TRUE(t.rendered);
}

TEST_F(ReFixture, SignatureComparesCountedPerTile)
{
    buildScene(false);
    frame(0);
    frame(1);
    frame(2);
    EXPECT_EQ(stats.counter("re.signatureCompares"),
              3ull * config.numTiles());
}

TEST_F(ReFixture, SkipDecisionsAreDeterministic)
{
    buildScene(true);
    std::vector<bool> firstRun;
    for (u64 f = 0; f < 5; f++) {
        FrameResult r = frame(f);
        for (const TileOutcome &t : r.tiles)
            firstRun.push_back(t.rendered);
    }

    // Rebuild everything and repeat.
    stats.reset();
    buildScene(true);
    std::size_t idx = 0;
    for (u64 f = 0; f < 5; f++) {
        FrameResult r = frame(f);
        for (const TileOutcome &t : r.tiles)
            EXPECT_EQ(t.rendered, firstRun[idx++]);
    }
}
