/**
 * @file
 * Headline-claim regression test (paper abstract): on a
 * static-camera workload, Rendering Elimination renders strictly
 * fewer tiles than Baseline, produces zero false positives (it never
 * skips a tile whose colors would have changed), and the final
 * framebuffer is pixel-identical to Baseline's — RE is a pure
 * optimization, not an approximation.
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace regpu;

namespace
{

struct RunOutput
{
    SimResult result;
    std::vector<Color> backSurface;
    std::vector<Color> frontSurface;
};

RunOutput
runWorkload(const std::string &alias, Technique tech, u64 frames = 8)
{
    GpuConfig config;
    config.scaleResolution(320, 224);
    config.technique = tech;
    auto scene = makeBenchmark(alias, config);
    SimOptions opts;
    opts.frames = frames;
    Simulator sim(*scene, config, opts);

    RunOutput out;
    out.result = sim.run();

    FrameBuffer &fb = sim.pipeline().frameBuffer();
    out.backSurface = fb.backSurface();
    out.frontSurface.reserve(fb.pixelCount());
    for (u32 y = 0; y < config.screenHeight; y++)
        for (u32 x = 0; x < config.screenWidth; x++)
            out.frontSurface.push_back(fb.frontPixel(x, y));
    return out;
}

} // namespace

TEST(HeadlineClaim, ReSkipsTilesWithoutChangingOutput)
{
    // ccs: the match-3 board, the paper's >90%-redundant class.
    const RunOutput base = runWorkload("ccs", Technique::Baseline);
    const RunOutput re =
        runWorkload("ccs", Technique::RenderingElimination);

    // RE actually eliminated rendering work.
    EXPECT_LT(re.result.tilesRendered, base.result.tilesRendered);
    EXPECT_GT(re.result.tilesSkippedByRe, 0u);

    // Zero false positives: no tile whose colors would have differed
    // was skipped.
    EXPECT_EQ(re.result.reFalsePositives, 0u);
    EXPECT_EQ(re.result.tileClasses.diffColorsEqualInputs, 0u);

    // The displayed output is bit-identical to Baseline's: both
    // surfaces of the double-buffered framebuffer match pixel-for-
    // pixel after the same number of frames.
    ASSERT_EQ(base.backSurface.size(), re.backSurface.size());
    EXPECT_EQ(base.backSurface, re.backSurface);
    EXPECT_EQ(base.frontSurface, re.frontSurface);
}

TEST(HeadlineClaim, HoldsAcrossTheStaticCameraClass)
{
    // All the mostly-static-camera benchmarks of Fig. 2's >90% class.
    for (const std::string alias : {"ccs", "cde", "coc", "ctr", "hop"}) {
        SCOPED_TRACE(alias);
        const RunOutput base = runWorkload(alias, Technique::Baseline, 6);
        const RunOutput re =
            runWorkload(alias, Technique::RenderingElimination, 6);
        EXPECT_LT(re.result.tilesRendered, base.result.tilesRendered);
        EXPECT_EQ(re.result.reFalsePositives, 0u);
        EXPECT_EQ(re.result.tileClasses.diffColorsEqualInputs, 0u);
        EXPECT_EQ(base.backSurface, re.backSurface);
    }
}

TEST(HeadlineClaim, DynamicCameraStillCorrectJustLessProfitable)
{
    // mst pans continuously: little redundancy to harvest, but RE must
    // still be lossless.
    const RunOutput base = runWorkload("mst", Technique::Baseline, 6);
    const RunOutput re =
        runWorkload("mst", Technique::RenderingElimination, 6);
    EXPECT_LE(re.result.tilesRendered, base.result.tilesRendered);
    EXPECT_EQ(re.result.reFalsePositives, 0u);
    EXPECT_EQ(base.backSurface, re.backSurface);
}
