/**
 * @file
 * Unit tests for the vector/matrix math substrate.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/vecmath.hh"

using namespace regpu;

TEST(Vec3, DotAndCross)
{
    Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
    EXPECT_FLOAT_EQ(x.dot(y), 0.0f);
    EXPECT_FLOAT_EQ(x.dot(x), 1.0f);
    EXPECT_EQ(x.cross(y), z);
    EXPECT_EQ(y.cross(z), x);
    EXPECT_EQ(z.cross(x), y);
}

TEST(Vec3, NormalizedHasUnitLength)
{
    Vec3 v{3, 4, 12};
    EXPECT_NEAR(v.normalized().length(), 1.0f, 1e-6f);
}

TEST(Vec3, NormalizedZeroVectorIsZero)
{
    Vec3 v{0, 0, 0};
    EXPECT_EQ(v.normalized(), Vec3{});
}

TEST(Vec4, ComponentAccess)
{
    Vec4 v{1, 2, 3, 4};
    EXPECT_FLOAT_EQ(v[0], 1);
    EXPECT_FLOAT_EQ(v[1], 2);
    EXPECT_FLOAT_EQ(v[2], 3);
    EXPECT_FLOAT_EQ(v[3], 4);
    EXPECT_EQ(v.xyz(), (Vec3{1, 2, 3}));
}

TEST(Lerp, EndpointsAndMidpoint)
{
    EXPECT_FLOAT_EQ(lerp(2.0f, 6.0f, 0.0f), 2.0f);
    EXPECT_FLOAT_EQ(lerp(2.0f, 6.0f, 1.0f), 6.0f);
    EXPECT_FLOAT_EQ(lerp(2.0f, 6.0f, 0.5f), 4.0f);
    EXPECT_EQ(lerp(Vec2{0, 0}, Vec2{2, 4}, 0.5f), (Vec2{1, 2}));
}

TEST(Mat4, IdentityLeavesVectorUnchanged)
{
    Vec4 v{1, 2, 3, 1};
    EXPECT_EQ(Mat4::identity() * v, v);
}

TEST(Mat4, TranslateMovesPoint)
{
    Vec4 p = Mat4::translate(5, -3, 2) * Vec4{1, 1, 1, 1};
    EXPECT_EQ(p, (Vec4{6, -2, 3, 1}));
}

TEST(Mat4, TranslateIgnoresDirection)
{
    // w=0 vectors are directions and must not be translated.
    Vec4 d = Mat4::translate(5, -3, 2) * Vec4{1, 0, 0, 0};
    EXPECT_EQ(d, (Vec4{1, 0, 0, 0}));
}

TEST(Mat4, ScaleScales)
{
    Vec4 p = Mat4::scale(2, 3, 4) * Vec4{1, 1, 1, 1};
    EXPECT_EQ(p, (Vec4{2, 3, 4, 1}));
}

TEST(Mat4, RotateZQuarterTurn)
{
    Vec4 p = Mat4::rotateZ(3.14159265f / 2) * Vec4{1, 0, 0, 1};
    EXPECT_NEAR(p.x, 0, 1e-6);
    EXPECT_NEAR(p.y, 1, 1e-6);
}

TEST(Mat4, RotateYQuarterTurn)
{
    Vec4 p = Mat4::rotateY(3.14159265f / 2) * Vec4{1, 0, 0, 1};
    EXPECT_NEAR(p.x, 0, 1e-6);
    EXPECT_NEAR(p.z, -1, 1e-6);
}

TEST(Mat4, ProductAssociatesWithVector)
{
    Mat4 a = Mat4::translate(1, 2, 3);
    Mat4 b = Mat4::scale(2, 2, 2);
    Vec4 v{1, 1, 1, 1};
    Vec4 lhs = (a * b) * v;
    Vec4 rhs = a * (b * v);
    EXPECT_NEAR(lhs.x, rhs.x, 1e-6);
    EXPECT_NEAR(lhs.y, rhs.y, 1e-6);
    EXPECT_NEAR(lhs.z, rhs.z, 1e-6);
    EXPECT_NEAR(lhs.w, rhs.w, 1e-6);
}

TEST(Mat4, OrthoMapsCornersToNdc)
{
    Mat4 m = Mat4::ortho(0, 100, 0, 50, -1, 1);
    Vec4 bl = m * Vec4{0, 0, 0, 1};
    Vec4 tr = m * Vec4{100, 50, 0, 1};
    EXPECT_NEAR(bl.x, -1, 1e-6);
    EXPECT_NEAR(bl.y, -1, 1e-6);
    EXPECT_NEAR(tr.x, 1, 1e-6);
    EXPECT_NEAR(tr.y, 1, 1e-6);
}

TEST(Mat4, PerspectiveProducesNegativeWBehindCamera)
{
    Mat4 m = Mat4::perspective(1.0f, 1.5f, 0.5f, 100.0f);
    Vec4 inFront = m * Vec4{0, 0, -10, 1};
    Vec4 behind = m * Vec4{0, 0, 10, 1};
    EXPECT_GT(inFront.w, 0);
    EXPECT_LT(behind.w, 0);
}

TEST(Mat4, PerspectiveDepthRange)
{
    Mat4 m = Mat4::perspective(1.0f, 1.0f, 1.0f, 100.0f);
    Vec4 nearP = m * Vec4{0, 0, -1, 1};
    Vec4 farP = m * Vec4{0, 0, -100, 1};
    EXPECT_NEAR(nearP.z / nearP.w, -1, 1e-4);
    EXPECT_NEAR(farP.z / farP.w, 1, 1e-4);
}

TEST(Mat4, LookAtPlacesEyeAtOrigin)
{
    Mat4 v = Mat4::lookAt({5, 5, 5}, {0, 0, 0}, {0, 1, 0});
    Vec4 eye = v * Vec4{5, 5, 5, 1};
    EXPECT_NEAR(eye.x, 0, 1e-5);
    EXPECT_NEAR(eye.y, 0, 1e-5);
    EXPECT_NEAR(eye.z, 0, 1e-5);
}

TEST(Mat4, LookAtLooksDownNegativeZ)
{
    Mat4 v = Mat4::lookAt({0, 0, 10}, {0, 0, 0}, {0, 1, 0});
    Vec4 target = v * Vec4{0, 0, 0, 1};
    EXPECT_LT(target.z, 0); // in front of the camera
}

TEST(Clampf, Bounds)
{
    EXPECT_FLOAT_EQ(clampf(5, 0, 1), 1);
    EXPECT_FLOAT_EQ(clampf(-5, 0, 1), 0);
    EXPECT_FLOAT_EQ(clampf(0.5f, 0, 1), 0.5f);
}
