/**
 * @file
 * CRC-32 polynomial-arithmetic tests: the table-based units must agree
 * with the bitwise reference **for every byte length** (the tail is
 * signed with per-byte position factors, never zero-padded), streaming
 * must equal one-shot under any segmentation, and the incremental
 * combine (Algorithm 1) must reproduce the whole-message CRC for any
 * byte-granular split.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.hh"
#include "crc/crc32.hh"
#include "crc/crc32_backend.hh"

using namespace regpu;

namespace
{

std::vector<u8>
randomBytes(Rng &rng, std::size_t n)
{
    std::vector<u8> v(n);
    for (auto &b : v)
        b = static_cast<u8>(rng.nextBounded(256));
    return v;
}

} // namespace

TEST(Gf2, MulModIdentity)
{
    // 1 is the multiplicative identity polynomial.
    Rng rng(1);
    for (int i = 0; i < 50; i++) {
        u32 a = static_cast<u32>(rng.next());
        EXPECT_EQ(gf2MulMod(a, 1), a);
        EXPECT_EQ(gf2MulMod(1, a), a);
    }
}

TEST(Gf2, MulModCommutative)
{
    Rng rng(2);
    for (int i = 0; i < 50; i++) {
        u32 a = static_cast<u32>(rng.next());
        u32 b = static_cast<u32>(rng.next());
        EXPECT_EQ(gf2MulMod(a, b), gf2MulMod(b, a));
    }
}

TEST(Gf2, MulModDistributesOverXor)
{
    Rng rng(3);
    for (int i = 0; i < 50; i++) {
        u32 a = static_cast<u32>(rng.next());
        u32 b = static_cast<u32>(rng.next());
        u32 c = static_cast<u32>(rng.next());
        EXPECT_EQ(gf2MulMod(a, b ^ c),
                  gf2MulMod(a, b) ^ gf2MulMod(a, c));
    }
}

TEST(Gf2, PowXExponentLaw)
{
    // x^a * x^b == x^(a+b) mod G.
    Rng rng(4);
    for (int i = 0; i < 30; i++) {
        u64 a = rng.nextBounded(1000);
        u64 b = rng.nextBounded(1000);
        EXPECT_EQ(gf2MulMod(gf2PowXMod(a), gf2PowXMod(b)),
                  gf2PowXMod(a + b));
    }
}

TEST(Gf2, PowXZeroIsOne)
{
    EXPECT_EQ(gf2PowXMod(0), 1u);
    EXPECT_EQ(gf2PowXMod(1), 2u); // the polynomial x
}

TEST(Crc32Reference, EmptyMessageIsZero)
{
    EXPECT_EQ(crc32Reference({}), 0u);
}

TEST(Crc32Reference, SingleBitMessage)
{
    // F(0x80...) for one byte 0x80: x^7 * x^32 mod G.
    u8 byte = 0x80;
    EXPECT_EQ(crc32Reference({&byte, 1}), gf2PowXMod(7 + 32));
}

TEST(Crc32Reference, LinearInMessage)
{
    // CRC of (A xor B) == CRC(A) xor CRC(B) for equal-length messages
    // (pure polynomial remainder with zero init is linear).
    Rng rng(5);
    for (int i = 0; i < 20; i++) {
        auto a = randomBytes(rng, 24);
        auto b = randomBytes(rng, 24);
        std::vector<u8> x(24);
        for (int k = 0; k < 24; k++)
            x[k] = a[k] ^ b[k];
        EXPECT_EQ(crc32Reference(x),
                  crc32Reference(a) ^ crc32Reference(b));
    }
}

TEST(CrcTables, SignBlockMatchesReference)
{
    Rng rng(6);
    const CrcTables &t = CrcTables::instance();
    for (int i = 0; i < 200; i++) {
        u64 block = rng.next();
        EXPECT_EQ(t.signBlock64(block), crc32ReferenceBlock64(block));
    }
}

TEST(CrcTables, ShiftIsMultiplicationByX64)
{
    Rng rng(7);
    const CrcTables &t = CrcTables::instance();
    u32 x64 = gf2PowXMod(64);
    for (int i = 0; i < 200; i++) {
        u32 c = static_cast<u32>(rng.next());
        EXPECT_EQ(t.shift64(c), gf2MulMod(c, x64));
    }
}

TEST(CrcTables, AppendBlockIsSliceBy8)
{
    // The slice-by-8 identity the streaming fast path relies on:
    // appendBlock64(crc, block) == shift64(crc) ^ signBlock64(block).
    Rng rng(14);
    const CrcTables &t = CrcTables::instance();
    for (int i = 0; i < 200; i++) {
        u32 crc = static_cast<u32>(rng.next());
        u64 block = rng.next();
        EXPECT_EQ(t.appendBlock64(crc, block),
                  t.shift64(crc) ^ t.signBlock64(block));
    }
}

TEST(CrcTables, AppendByteIsMultiplicationByX8PlusByte)
{
    // appendByte(crc, b) == crc * x^8 ^ b * x^32 mod G.
    Rng rng(15);
    const CrcTables &t = CrcTables::instance();
    u32 x8 = gf2PowXMod(8);
    u32 x32 = gf2PowXMod(32);
    for (int i = 0; i < 200; i++) {
        u32 crc = static_cast<u32>(rng.next());
        u8 byte = static_cast<u8>(rng.nextBounded(256));
        EXPECT_EQ(t.appendByte(crc, byte),
                  gf2MulMod(crc, x8) ^ gf2MulMod(byte, x32));
    }
}

TEST(CrcTables, ShiftBytesIsMultiplicationByX8n)
{
    Rng rng(16);
    const CrcTables &t = CrcTables::instance();
    for (int i = 0; i < 100; i++) {
        u32 crc = static_cast<u32>(rng.next());
        u64 bytes = rng.nextBounded(40);
        EXPECT_EQ(t.shiftBytes(crc, bytes),
                  gf2MulMod(crc, gf2PowXMod(8 * bytes)))
            << "bytes " << bytes;
    }
}

TEST(CrcTables, StorageBudgetMatchesPaper)
{
    // Twelve 1 KB LUTs (8 sign + 4 shift).
    EXPECT_EQ(CrcTables::storageBytes(), 12u * 1024);
}

TEST(Crc32Tabular, MatchesReferenceOnAlignedMessages)
{
    Rng rng(8);
    for (std::size_t len : {8u, 16u, 64u, 144u, 1024u}) {
        auto msg = randomBytes(rng, len);
        EXPECT_EQ(crc32Tabular(msg), crc32Reference(msg))
            << "length " << len;
    }
}

TEST(Crc32Tabular, UnalignedTailsAreLengthExact)
{
    // The tail-padding defect this pins: the tabular CRC of a message
    // whose length is not a multiple of 8 must equal the reference CRC
    // of exactly those bytes - NOT of the message zero-padded to a
    // 64-bit boundary.
    Rng rng(9);
    for (std::size_t len : {1u, 3u, 7u, 11u, 13u, 20u, 24u, 28u, 100u}) {
        auto msg = randomBytes(rng, len);
        EXPECT_EQ(crc32Tabular(msg), crc32Reference(msg))
            << "length " << len;
        auto padded = msg;
        padded.resize((len + 7) / 8 * 8, 0);
        if (padded.size() != msg.size()) {
            EXPECT_NE(crc32Tabular(msg), crc32Tabular(padded))
                << "length " << len
                << ": trailing zero bytes must change the signature";
        }
    }
}

TEST(Crc32Tabular, TrailingZeroBytesNeverAlias)
{
    // Fragment signatures feed 20/24/28-byte buffers; under the padded
    // scheme any of them aliased its zero-extended sibling. Exhaust
    // 1..7 appended zero bytes over a few base lengths.
    Rng rng(17);
    for (std::size_t len : {4u, 20u, 24u, 28u}) {
        auto msg = randomBytes(rng, len);
        u32 base = crc32Tabular(msg);
        auto extended = msg;
        for (int pad = 1; pad <= 7; pad++) {
            extended.push_back(0);
            EXPECT_NE(crc32Tabular(extended), base)
                << "length " << len << " + " << pad << " zero bytes";
        }
    }
}

TEST(Crc32Stream, EmptyStreamIsZero)
{
    Crc32Stream s;
    EXPECT_EQ(s.value(), 0u);
    EXPECT_EQ(s.lengthBytes(), 0u);
}

TEST(Crc32Stream, ByteAtATimeEqualsOneShot)
{
    Rng rng(18);
    auto msg = randomBytes(rng, 37);
    Crc32Stream s;
    for (u8 byte : msg)
        s.update({&byte, 1});
    EXPECT_EQ(s.value(), crc32Reference(msg));
    EXPECT_EQ(s.lengthBytes(), msg.size());
}

TEST(Crc32Stream, ResetRestartsTheMessage)
{
    Rng rng(19);
    auto msg = randomBytes(rng, 24);
    Crc32Stream s;
    s.update(randomBytes(rng, 13));
    s.reset();
    s.update(msg);
    EXPECT_EQ(s.value(), crc32Reference(msg));
}

TEST(Crc32Stream, PutHelpersMatchSerializedBytes)
{
    // putU32/putF32 must hash exactly the little-endian byte layout
    // the pipeline serializers emit.
    Crc32Stream s;
    s.putU32(0x04030201u);
    s.putF32(1.5f);
    u32 bits;
    float f = 1.5f;
    std::memcpy(&bits, &f, 4);
    std::vector<u8> expect = {1, 2, 3, 4,
                              static_cast<u8>(bits),
                              static_cast<u8>(bits >> 8),
                              static_cast<u8>(bits >> 16),
                              static_cast<u8>(bits >> 24)};
    EXPECT_EQ(s.value(), crc32Reference(expect));
}

TEST(Crc32Combine, ConcatenationIdentityAligned)
{
    // For any 64-bit-aligned split point, combining the halves' CRCs
    // equals the whole message's CRC (the Algorithm 1 property).
    Rng rng(10);
    for (int trial = 0; trial < 40; trial++) {
        std::size_t bytesA = (1 + rng.nextBounded(8)) * 8;
        std::size_t bytesB = (1 + rng.nextBounded(8)) * 8;
        auto a = randomBytes(rng, bytesA);
        auto b = randomBytes(rng, bytesB);
        std::vector<u8> whole = a;
        whole.insert(whole.end(), b.begin(), b.end());

        u32 combined =
            crc32Combine(crc32Tabular(a), crc32Tabular(b), bytesB);
        EXPECT_EQ(combined, crc32Reference(whole));
    }
}

TEST(Crc32Combine, ConcatenationIdentityArbitraryByteLengths)
{
    // Byte-exact combine: B's length need not be 64-bit aligned.
    Rng rng(11);
    for (int trial = 0; trial < 60; trial++) {
        std::size_t bytesA = rng.nextBounded(40);
        std::size_t bytesB = rng.nextBounded(40);
        auto a = randomBytes(rng, bytesA);
        auto b = randomBytes(rng, bytesB);
        std::vector<u8> whole = a;
        whole.insert(whole.end(), b.begin(), b.end());

        u32 combined =
            crc32Combine(crc32Tabular(a), crc32Tabular(b), bytesB);
        EXPECT_EQ(combined, crc32Reference(whole))
            << bytesA << " || " << bytesB;
    }
}

TEST(Crc32Combine, MultiWayConcatenation)
{
    // Fold N sub-messages of arbitrary byte length incrementally, as
    // the Signature Unit does.
    Rng rng(12);
    for (int trial = 0; trial < 20; trial++) {
        u32 running = 0;
        std::vector<u8> whole;
        int parts = 2 + static_cast<int>(rng.nextBounded(6));
        for (int pIdx = 0; pIdx < parts; pIdx++) {
            std::size_t bytes = 1 + rng.nextBounded(40);
            auto part = randomBytes(rng, bytes);
            running = crc32Combine(running, crc32Tabular(part), bytes);
            whole.insert(whole.end(), part.begin(), part.end());
        }
        EXPECT_EQ(running, crc32Reference(whole));
    }
}

TEST(Crc32, SensitiveToSingleBitFlips)
{
    Rng rng(13);
    auto msg = randomBytes(rng, 64);
    u32 orig = crc32Tabular(msg);
    for (int i = 0; i < 64; i++) {
        auto flipped = msg;
        flipped[i] ^= 1u << (i % 8);
        EXPECT_NE(crc32Tabular(flipped), orig) << "byte " << i;
    }
}

TEST(Crc32, SensitiveToBlockOrder)
{
    // Unlike XOR folding, CRC distinguishes permuted sub-messages.
    Rng rng(14);
    auto a = randomBytes(rng, 16);
    auto b = randomBytes(rng, 16);
    std::vector<u8> ab = a, ba = b;
    ab.insert(ab.end(), b.begin(), b.end());
    ba.insert(ba.end(), a.begin(), a.end());
    EXPECT_NE(crc32Tabular(ab), crc32Tabular(ba));
}

/**
 * Parameterised length sweep (satellite: every length 0..64 plus a few
 * large odd lengths): tabular == reference, and streaming under a
 * random segmentation == one-shot. These fail under the old
 * zero-padding implementation for every non-multiple-of-8 length.
 */
class CrcLengthSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(CrcLengthSweep, TabularMatchesReferenceExactly)
{
    Rng rng(100 + GetParam());
    auto msg = randomBytes(rng, GetParam());
    EXPECT_EQ(crc32Tabular(msg), crc32Reference(msg));
}

TEST_P(CrcLengthSweep, StreamingEqualsOneShotUnderAnySegmentation)
{
    Rng rng(200 + GetParam());
    auto msg = randomBytes(rng, GetParam());
    const u32 expected = crc32Reference(msg);
    for (int trial = 0; trial < 4; trial++) {
        Crc32Stream s;
        std::size_t pos = 0;
        while (pos < msg.size()) {
            std::size_t take =
                1 + rng.nextBounded(msg.size() - pos);
            s.update({msg.data() + pos, take});
            pos += take;
        }
        EXPECT_EQ(s.value(), expected) << "trial " << trial;
        EXPECT_EQ(s.lengthBytes(), msg.size());
    }
}

TEST_P(CrcLengthSweep, EveryAvailableBackendMatchesReference)
{
    // Dispatch property (hardware CRC satellite): every backend this
    // build + CPU can run must produce the exact same bits as the
    // portable slice-by-8 core AND the bitwise reference, for every
    // swept length and for nonzero incoming CRC states. A hardware
    // path that is "almost" the repo CRC (reflected variant, wrong
    // polynomial, zero-padded tail) fails here on the very first
    // length that exercises it.
    Rng rng(400 + GetParam());
    auto msg = randomBytes(rng, GetParam());
    const u32 seeds[] = {0u, 0xdeadbeefu,
                         static_cast<u32>(rng.next())};
    const CrcBackend backends[] = {CrcBackend::Portable,
                                   CrcBackend::Clmul,
                                   CrcBackend::ArmCrc};
    for (u32 seed : seeds) {
        const u32 expected = crc32AppendWith(
            CrcBackend::Portable, seed, msg.data(), msg.size());
        // Portable must itself agree with the reference: the
        // incoming state acts as a prefix CRC, so combine() gives
        // the ground truth for a seeded append.
        EXPECT_EQ(expected,
                  crc32Combine(seed, crc32Reference(msg), msg.size()))
            << "seed " << seed;
        for (CrcBackend b : backends) {
            if (!crcBackendAvailable(b))
                continue;
            EXPECT_EQ(crc32AppendWith(b, seed, msg.data(), msg.size()),
                      expected)
                << crcBackendName(b) << " diverged, seed " << seed;
        }
    }
}

TEST_P(CrcLengthSweep, CombineMatchesConcatenatedReference)
{
    // crc32Combine(F(A), F(B), |B|) == F(A || B) with B of the swept
    // length appended to a fixed-length unaligned prefix.
    Rng rng(300 + GetParam());
    auto a = randomBytes(rng, 13);
    auto b = randomBytes(rng, GetParam());
    std::vector<u8> whole = a;
    whole.insert(whole.end(), b.begin(), b.end());
    EXPECT_EQ(crc32Combine(crc32Tabular(a), crc32Tabular(b), b.size()),
              crc32Reference(whole));
}

INSTANTIATE_TEST_SUITE_P(Lengths0To64, CrcLengthSweep,
                         ::testing::Range<std::size_t>(0, 65));

INSTANTIATE_TEST_SUITE_P(LargeOddLengths, CrcLengthSweep,
                         ::testing::Values(127, 145, 255, 1001, 4097));

// ---------------------------------------------------------------------------
// Backend dispatch plumbing (crc/crc32_backend.hh)
// ---------------------------------------------------------------------------

TEST(CrcBackendDispatch, ActiveBackendIsAvailableAndNamed)
{
    const CrcBackend active = crcActiveBackend();
    EXPECT_TRUE(crcBackendAvailable(active));
    EXPECT_STRNE(crcBackendName(active), "");
    // Portable is compiled unconditionally: dispatch may pick a
    // hardware path, but the fallback must never disappear.
    EXPECT_TRUE(crcBackendAvailable(CrcBackend::Portable));
}

TEST(CrcBackendDispatch, StreamBulkPathMatchesByteAtATime)
{
    // Crc32Stream hands large updates to the active backend and keeps
    // small ones on the tabular core; both routes must agree for the
    // same message, whatever backend the dispatch picked.
    Rng rng(9001);
    for (std::size_t n : {64u, 65u, 100u, 4096u}) {
        auto msg = randomBytes(rng, n);
        Crc32Stream bulk;
        bulk.update(msg);
        Crc32Stream bytewise;
        for (u8 byte : msg)
            bytewise.update({&byte, 1});
        EXPECT_EQ(bulk.value(), bytewise.value()) << "length " << n;
        EXPECT_EQ(bulk.value(), crc32Reference(msg)) << "length " << n;
    }
}
