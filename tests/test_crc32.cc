/**
 * @file
 * CRC-32 polynomial-arithmetic tests: the table-based units must agree
 * with the bitwise reference, and the incremental combine (Algorithm 1)
 * must reproduce the whole-message CRC for any segmentation.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "crc/crc32.hh"

using namespace regpu;

namespace
{

std::vector<u8>
randomBytes(Rng &rng, std::size_t n)
{
    std::vector<u8> v(n);
    for (auto &b : v)
        b = static_cast<u8>(rng.nextBounded(256));
    return v;
}

} // namespace

TEST(Gf2, MulModIdentity)
{
    // 1 is the multiplicative identity polynomial.
    Rng rng(1);
    for (int i = 0; i < 50; i++) {
        u32 a = static_cast<u32>(rng.next());
        EXPECT_EQ(gf2MulMod(a, 1), a);
        EXPECT_EQ(gf2MulMod(1, a), a);
    }
}

TEST(Gf2, MulModCommutative)
{
    Rng rng(2);
    for (int i = 0; i < 50; i++) {
        u32 a = static_cast<u32>(rng.next());
        u32 b = static_cast<u32>(rng.next());
        EXPECT_EQ(gf2MulMod(a, b), gf2MulMod(b, a));
    }
}

TEST(Gf2, MulModDistributesOverXor)
{
    Rng rng(3);
    for (int i = 0; i < 50; i++) {
        u32 a = static_cast<u32>(rng.next());
        u32 b = static_cast<u32>(rng.next());
        u32 c = static_cast<u32>(rng.next());
        EXPECT_EQ(gf2MulMod(a, b ^ c),
                  gf2MulMod(a, b) ^ gf2MulMod(a, c));
    }
}

TEST(Gf2, PowXExponentLaw)
{
    // x^a * x^b == x^(a+b) mod G.
    Rng rng(4);
    for (int i = 0; i < 30; i++) {
        u64 a = rng.nextBounded(1000);
        u64 b = rng.nextBounded(1000);
        EXPECT_EQ(gf2MulMod(gf2PowXMod(a), gf2PowXMod(b)),
                  gf2PowXMod(a + b));
    }
}

TEST(Gf2, PowXZeroIsOne)
{
    EXPECT_EQ(gf2PowXMod(0), 1u);
    EXPECT_EQ(gf2PowXMod(1), 2u); // the polynomial x
}

TEST(Crc32Reference, EmptyMessageIsZero)
{
    EXPECT_EQ(crc32Reference({}), 0u);
}

TEST(Crc32Reference, SingleBitMessage)
{
    // F(0x80...) for one byte 0x80: x^7 * x^32 mod G.
    u8 byte = 0x80;
    EXPECT_EQ(crc32Reference({&byte, 1}), gf2PowXMod(7 + 32));
}

TEST(Crc32Reference, LinearInMessage)
{
    // CRC of (A xor B) == CRC(A) xor CRC(B) for equal-length messages
    // (pure polynomial remainder with zero init is linear).
    Rng rng(5);
    for (int i = 0; i < 20; i++) {
        auto a = randomBytes(rng, 24);
        auto b = randomBytes(rng, 24);
        std::vector<u8> x(24);
        for (int k = 0; k < 24; k++)
            x[k] = a[k] ^ b[k];
        EXPECT_EQ(crc32Reference(x),
                  crc32Reference(a) ^ crc32Reference(b));
    }
}

TEST(CrcTables, SignBlockMatchesReference)
{
    Rng rng(6);
    const CrcTables &t = CrcTables::instance();
    for (int i = 0; i < 200; i++) {
        u64 block = rng.next();
        EXPECT_EQ(t.signBlock64(block), crc32ReferenceBlock64(block));
    }
}

TEST(CrcTables, ShiftIsMultiplicationByX64)
{
    Rng rng(7);
    const CrcTables &t = CrcTables::instance();
    u32 x64 = gf2PowXMod(64);
    for (int i = 0; i < 200; i++) {
        u32 c = static_cast<u32>(rng.next());
        EXPECT_EQ(t.shift64(c), gf2MulMod(c, x64));
    }
}

TEST(CrcTables, StorageBudgetMatchesPaper)
{
    // Twelve 1 KB LUTs (8 sign + 4 shift).
    EXPECT_EQ(CrcTables::storageBytes(), 12u * 1024);
}

TEST(Crc32Tabular, MatchesReferenceOnAlignedMessages)
{
    Rng rng(8);
    for (std::size_t len : {8u, 16u, 64u, 144u, 1024u}) {
        auto msg = randomBytes(rng, len);
        EXPECT_EQ(crc32Tabular(msg), crc32Reference(msg))
            << "length " << len;
    }
}

TEST(Crc32Tabular, PadsUnalignedTails)
{
    // Tabular zero-pads to 64-bit boundaries; the reference over the
    // explicitly padded message must agree.
    Rng rng(9);
    for (std::size_t len : {1u, 7u, 13u, 100u}) {
        auto msg = randomBytes(rng, len);
        auto padded = msg;
        padded.resize((len + 7) / 8 * 8, 0);
        EXPECT_EQ(crc32Tabular(msg), crc32Reference(padded))
            << "length " << len;
    }
}

TEST(Crc32Combine, ConcatenationIdentity)
{
    // Property: for any split point (64-bit aligned), combining the
    // halves' CRCs equals the whole message's CRC - the exact property
    // Algorithm 1 relies on.
    Rng rng(10);
    for (int trial = 0; trial < 40; trial++) {
        std::size_t blocksA = 1 + rng.nextBounded(8);
        std::size_t blocksB = 1 + rng.nextBounded(8);
        auto a = randomBytes(rng, blocksA * 8);
        auto b = randomBytes(rng, blocksB * 8);
        std::vector<u8> whole = a;
        whole.insert(whole.end(), b.begin(), b.end());

        u32 combined = crc32Combine(crc32Tabular(a), crc32Tabular(b),
                                    static_cast<u32>(blocksB));
        EXPECT_EQ(combined, crc32Tabular(whole));
    }
}

TEST(Crc32Combine, MultiWayConcatenation)
{
    // Fold N sub-messages incrementally, as the Signature Unit does.
    Rng rng(11);
    for (int trial = 0; trial < 20; trial++) {
        u32 running = 0;
        std::vector<u8> whole;
        int parts = 2 + static_cast<int>(rng.nextBounded(6));
        for (int pIdx = 0; pIdx < parts; pIdx++) {
            std::size_t blocks = 1 + rng.nextBounded(5);
            auto part = randomBytes(rng, blocks * 8);
            running = crc32Combine(running, crc32Tabular(part),
                                   static_cast<u32>(blocks));
            whole.insert(whole.end(), part.begin(), part.end());
        }
        EXPECT_EQ(running, crc32Tabular(whole));
    }
}

TEST(Crc32, SensitiveToSingleBitFlips)
{
    Rng rng(12);
    auto msg = randomBytes(rng, 64);
    u32 orig = crc32Tabular(msg);
    for (int i = 0; i < 64; i++) {
        auto flipped = msg;
        flipped[i] ^= 1u << (i % 8);
        EXPECT_NE(crc32Tabular(flipped), orig) << "byte " << i;
    }
}

TEST(Crc32, SensitiveToBlockOrder)
{
    // Unlike XOR folding, CRC distinguishes permuted sub-messages.
    Rng rng(13);
    auto a = randomBytes(rng, 16);
    auto b = randomBytes(rng, 16);
    std::vector<u8> ab = a, ba = b;
    ab.insert(ab.end(), b.begin(), b.end());
    ba.insert(ba.end(), a.begin(), a.end());
    EXPECT_NE(crc32Tabular(ab), crc32Tabular(ba));
}

/** Parameterised sweep: tabular == reference across many lengths. */
class CrcLengthSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(CrcLengthSweep, TabularMatchesPaddedReference)
{
    Rng rng(100 + GetParam());
    std::vector<u8> msg(GetParam());
    for (auto &byte : msg)
        byte = static_cast<u8>(rng.nextBounded(256));
    auto padded = msg;
    padded.resize((msg.size() + 7) / 8 * 8, 0);
    EXPECT_EQ(crc32Tabular(msg), crc32Reference(padded));
}

INSTANTIATE_TEST_SUITE_P(Lengths, CrcLengthSweep,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7, 8, 9,
                                           15, 16, 17, 31, 32, 33, 48,
                                           63, 64, 65, 127, 128, 144,
                                           255, 256, 1000));
