/**
 * @file
 * The observability-layer contract (src/obs/):
 *
 *  - the timeline flush is strict RFC 8259 JSON in Chrome trace-event
 *    form, one event per line, with dense thread ids and metadata
 *    naming every thread;
 *  - spans are properly nested per thread (a frame span lies inside
 *    the run span; no partial overlaps), and ParallelRunner job spans
 *    carry the job index and technique as args;
 *  - enabling observability never changes simulation results: the
 *    serialized CSV rows are byte-identical with the sink off, on,
 *    and on with 8 workers;
 *  - per-frame JSONL artifacts hold one strict-JSON line per frame
 *    with per-frame deltas (not running totals), and heatmap CSV/PPM
 *    dimensions match the configured tile grid;
 *  - rings drop (and count) on overflow instead of reallocating;
 *  - warnOnce() fires once per call site; ProgressTracker folds EWMA
 *    and ETA as documented.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "obs/obs.hh"
#include "sim/parallel_runner.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

#include "strict_json.hh"

using namespace regpu;
using regpu::testutil::StrictJsonParser;

namespace
{

/** One decoded trace event (numeric fields re-parsed from raw text). */
struct TraceEvent
{
    std::string name;
    std::string cat;
    std::string ph;
    long tid = -1;
    double ts = 0;
    double dur = 0;
    std::string rawArgs;
};

double
parseDouble(const std::string &text)
{
    return text.empty() ? 0.0 : std::strtod(text.c_str(), nullptr);
}

std::string
unquote(const std::string &text)
{
    if (text.size() >= 2 && text.front() == '"' && text.back() == '"')
        return text.substr(1, text.size() - 2);
    return text;
}

/**
 * Strict-parse a whole timeline document, then re-parse it line-wise:
 * the writer emits one event object per line, so every event can be
 * decoded as its own strict-JSON document.
 */
std::vector<TraceEvent>
parseTimeline(const std::string &doc)
{
    std::string error;
    StrictJsonParser whole(doc);
    EXPECT_TRUE(whole.parse(error)) << error;

    std::vector<TraceEvent> events;
    std::istringstream lines(doc);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.rfind("{\"name\":", 0) != 0)
            continue;
        if (!line.empty() && line.back() == ',')
            line.pop_back();
        StrictJsonParser one(line);
        EXPECT_TRUE(one.parse(error)) << error << " in: " << line;
        TraceEvent e;
        e.name = unquote(one.topLevelValueText("name"));
        e.cat = unquote(one.topLevelValueText("cat"));
        e.ph = unquote(one.topLevelValueText("ph"));
        e.tid = std::strtol(
            one.topLevelValueText("tid").c_str(), nullptr, 10);
        e.ts = parseDouble(one.topLevelValueText("ts"));
        e.dur = parseDouble(one.topLevelValueText("dur"));
        e.rawArgs = one.topLevelValueText("args");
        events.push_back(std::move(e));
    }
    return events;
}

std::vector<SimJob>
smallJobs()
{
    return buildSweepJobs({"ccs"},
                          {Technique::Baseline,
                           Technique::RenderingElimination},
                          128, 80, /*frames=*/2);
}

std::string
flushTimeline()
{
    std::ostringstream os;
    ObsSink::instance().writeTraceJson(os);
    return os.str();
}

std::string
csvRows(const std::vector<SimResult> &results)
{
    std::ostringstream os;
    bool header = true;
    for (const SimResult &r : results) {
        writeCsvRow(os, r, header);
        header = false;
    }
    return os.str();
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing artifact: " << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Fresh sink per test; never leak an enabled sink into the next. */
class ObsTest : public testing::Test
{
  protected:
    void TearDown() override { ObsSink::instance().disable(); }
};

} // namespace

TEST_F(ObsTest, DisabledSinkRecordsNothing)
{
    ObsSink::instance().disable();
    ParallelRunner runner(1);
    runner.run(smallJobs());
    const std::vector<TraceEvent> events =
        parseTimeline(flushTimeline());
    for (const TraceEvent &e : events)
        EXPECT_EQ(e.ph, "M") << "event recorded while disabled: "
                             << e.cat << "." << e.name;
}

TEST_F(ObsTest, TimelineParsesStrictlyAndSpansNest)
{
    ObsSink::instance().enable();
    ParallelRunner runner(1);
    runner.run(smallJobs());
    const std::vector<TraceEvent> events =
        parseTimeline(flushTimeline());

    std::map<long, std::vector<TraceEvent>> spansByTid;
    std::size_t runSpans = 0, frameSpans = 0, counterEvents = 0;
    for (const TraceEvent &e : events) {
        if (e.ph == "X")
            spansByTid[e.tid].push_back(e);
        if (e.ph == "X" && e.cat == "sim" && e.name == "run")
            runSpans++;
        if (e.ph == "X" && e.cat == "sim" && e.name == "frame")
            frameSpans++;
        if (e.ph == "C")
            counterEvents++;
    }
    EXPECT_EQ(runSpans, 2u);    // one per technique cell
    EXPECT_EQ(frameSpans, 4u);  // 2 cells x 2 frames
    EXPECT_GT(counterEvents, 0u);

    // Spans on one thread must nest like a call stack: any two are
    // either disjoint or one contains the other. The tolerance
    // absorbs the microsecond rounding of the ns clock.
    const double eps = 2e-3;
    for (const auto &[tid, spans] : spansByTid) {
        for (std::size_t i = 0; i < spans.size(); i++) {
            for (std::size_t j = i + 1; j < spans.size(); j++) {
                const TraceEvent &a = spans[i], &b = spans[j];
                const double aEnd = a.ts + a.dur, bEnd = b.ts + b.dur;
                const bool disjoint =
                    aEnd <= b.ts + eps || bEnd <= a.ts + eps;
                const bool aInB = a.ts >= b.ts - eps
                    && aEnd <= bEnd + eps;
                const bool bInA = b.ts >= a.ts - eps
                    && bEnd <= aEnd + eps;
                EXPECT_TRUE(disjoint || aInB || bInA)
                    << a.cat << "." << a.name << " [" << a.ts << ", "
                    << aEnd << ") partially overlaps " << b.cat << "."
                    << b.name << " [" << b.ts << ", " << bEnd
                    << ") on tid " << tid;
            }
        }
    }
}

TEST_F(ObsTest, ThreadIdsAreDenseAndNamed)
{
    ObsSink::instance().enable();
    ParallelRunner runner(4);
    runner.run(smallJobs());
    const std::vector<TraceEvent> events =
        parseTimeline(flushTimeline());

    std::set<long> eventTids, namedTids;
    for (const TraceEvent &e : events) {
        if (e.ph == "M" && e.name == "thread_name")
            namedTids.insert(e.tid);
        if (e.ph != "M")
            eventTids.insert(e.tid);
    }
    ASSERT_FALSE(eventTids.empty());
    // Dense: tids are exactly 0..N-1 (parked-ring reuse, no gaps).
    EXPECT_EQ(*eventTids.begin(), 0);
    EXPECT_EQ(*eventTids.rbegin(),
              static_cast<long>(eventTids.size()) - 1);
    for (long tid : eventTids)
        EXPECT_TRUE(namedTids.count(tid))
            << "tid " << tid << " has no thread_name metadata";
}

TEST_F(ObsTest, RunnerJobSpansCarryJobIndexAndTechnique)
{
    ObsSink::instance().enable();
    ParallelRunner runner(2);
    std::vector<ProgressUpdate> updates;
    runner.run(smallJobs(), [&](const ProgressUpdate &u) {
        updates.push_back(u);
    });

    const std::vector<TraceEvent> events =
        parseTimeline(flushTimeline());
    std::set<std::string> jobArgs;
    for (const TraceEvent &e : events) {
        if (e.ph != "X" || e.cat != "runner")
            continue;
        EXPECT_EQ(e.name, "ccs");  // interned workload alias
        EXPECT_NE(e.rawArgs.find("\"tech\":"), std::string::npos);
        const std::size_t at = e.rawArgs.find("\"job\":");
        ASSERT_NE(at, std::string::npos);
        jobArgs.insert(e.rawArgs.substr(at, 8));
    }
    EXPECT_EQ(jobArgs.size(), 2u);  // both cells traced distinctly

    // Progress delivery is order-stable: done counts 1..N, every job
    // index reported exactly once, ETA shrinking to zero.
    ASSERT_EQ(updates.size(), 2u);
    EXPECT_EQ(updates[0].done, 1u);
    EXPECT_EQ(updates[1].done, 2u);
    EXPECT_EQ(updates[1].etaSeconds, 0.0);
    std::set<std::size_t> seen{updates[0].jobIndex,
                               updates[1].jobIndex};
    EXPECT_EQ(seen, (std::set<std::size_t>{0, 1}));
}

TEST_F(ObsTest, ResultsByteIdenticalWithSinkOffOnAndParallel)
{
    const std::vector<SimJob> plain = smallJobs();

    ObsSink::instance().disable();
    const std::string off = csvRows(ParallelRunner(1).run(plain));

    // Full observability on: timeline, tile detail and artifacts.
    std::vector<SimJob> obsJobs = plain;
    for (SimJob &job : obsJobs)
        job.options.obsDir = testing::TempDir() + "regpu_obs_ident";
    ObsSink::instance().enable(ObsSink::defaultRingEvents,
                               /*tileDetail=*/true);
    const std::string on = csvRows(ParallelRunner(1).run(obsJobs));
    const std::string on8 = csvRows(ParallelRunner(8).run(obsJobs));

    EXPECT_EQ(off, on);
    EXPECT_EQ(off, on8);
}

TEST_F(ObsTest, PerFrameArtifactsMatchTileGridAndParse)
{
    const std::string dir = testing::TempDir() + "regpu_obs_art";
    const u64 frames = 3;

    GpuConfig config;
    config.scaleResolution(128, 80);  // 8x5 tiles of 16x16
    config.technique = Technique::RenderingElimination;
    {
        // Scoped: the artifact writer finalizes (totals, stream
        // close) when the simulator is destroyed.
        auto scene = makeBenchmark("ccs", config);
        SimOptions opts;
        opts.frames = frames;
        opts.obsDir = dir;
        opts.obsTag = "t";
        Simulator sim(*scene, config, opts);
        sim.run();
    }

    const u32 tilesX = config.tilesX(), tilesY = config.tilesY();
    ASSERT_EQ(tilesX, 8u);
    ASSERT_EQ(tilesY, 5u);

    // JSONL: one strict-JSON line per frame, delta-valued.
    std::ifstream jsonl(dir + "/t.frames.jsonl");
    ASSERT_TRUE(jsonl.good());
    std::string line, error;
    u64 lineNo = 0;
    while (std::getline(jsonl, line)) {
        StrictJsonParser parser(line);
        ASSERT_TRUE(parser.parse(error))
            << error << " in line " << lineNo;
        EXPECT_EQ(parser.topLevelValueText("frame"),
                  std::to_string(lineNo));
        EXPECT_EQ(parser.topLevelValueText("tag"), "\"t\"");
        // "frames" is a running total in the registry; the JSONL
        // stream must carry the per-frame delta, which is always 1.
        const std::string counters =
            parser.topLevelValueText("counters");
        EXPECT_NE(counters.find("\"frames\":1"), std::string::npos)
            << "not delta-valued: " << counters;
        lineNo++;
    }
    EXPECT_EQ(lineNo, frames);

    // Heatmap CSV (long format): frames x tiles rows, coordinates
    // exactly covering the tile grid.
    for (const char *metric : {"re", "te", "dram"}) {
        std::ifstream csv(dir + "/t.heat." + std::string(metric)
                          + ".csv");
        ASSERT_TRUE(csv.good()) << metric;
        std::string header;
        ASSERT_TRUE(std::getline(csv, header));
        EXPECT_EQ(header, "frame,tileX,tileY,value");
        u64 rows = 0;
        u32 maxX = 0, maxY = 0;
        while (std::getline(csv, line)) {
            unsigned long long frame, x, y;
            double value;
            ASSERT_EQ(std::sscanf(line.c_str(), "%llu,%llu,%llu,%lf",
                                  &frame, &x, &y, &value),
                      4)
                << line;
            (void)frame;
            maxX = std::max(maxX, static_cast<u32>(x));
            maxY = std::max(maxY, static_cast<u32>(y));
            rows++;
        }
        EXPECT_EQ(rows, frames * tilesX * tilesY) << metric;
        EXPECT_EQ(maxX, tilesX - 1) << metric;
        EXPECT_EQ(maxY, tilesY - 1) << metric;
    }

    // PPM: P6 header with the tile-grid dimensions and exactly one
    // RGB triplet per tile.
    for (const char *name :
         {"t.re.f0000.ppm", "t.re.total.ppm", "t.dram.f0002.ppm"}) {
        const std::string ppm = slurp(dir + "/" + name);
        const std::string header = "P6\n" + std::to_string(tilesX) + " "
            + std::to_string(tilesY) + "\n255\n";
        ASSERT_EQ(ppm.rfind(header, 0), 0u) << name;
        EXPECT_EQ(ppm.size(),
                  header.size() + 3ull * tilesX * tilesY) << name;
    }
}

TEST_F(ObsTest, RingOverflowDropsInsteadOfGrowing)
{
    ObsSink::instance().enable(/*eventsPerThread=*/64);
    for (int i = 0; i < 200; i++)
        ObsScope span("test", "overflow", "i", i);
    EXPECT_EQ(ObsSink::instance().droppedEvents(), 200u - 64u);

    // The flush must still be valid JSON and advertise the loss.
    const std::string doc = flushTimeline();
    std::string error;
    StrictJsonParser parser(doc);
    EXPECT_TRUE(parser.parse(error)) << error;
    EXPECT_NE(doc.find("\"droppedEvents\":\"136\""),
              std::string::npos);
}

TEST_F(ObsTest, WarnOnceFiresOncePerCallSite)
{
    testing::internal::CaptureStderr();
    for (int i = 0; i < 5; i++)
        warnOnce("obs-test warn-once probe ", i);
    const std::string err = testing::internal::GetCapturedStderr();
    std::size_t hits = 0, at = 0;
    while ((at = err.find("warn-once probe", at)) != std::string::npos) {
        hits++;
        at++;
    }
    EXPECT_EQ(hits, 1u) << err;
    // The surviving message is the first call's ("... 0").
    EXPECT_NE(err.find("warn-once probe 0"), std::string::npos);
}

TEST_F(ObsTest, ProgressTrackerFoldsEwmaAndEta)
{
    ProgressTracker tracker(4, /*workers=*/2);

    ProgressUpdate u = tracker.cellDone(0, 2.0);
    EXPECT_EQ(u.done, 1u);
    EXPECT_EQ(u.total, 4u);
    EXPECT_DOUBLE_EQ(u.cellSeconds, 2.0);
    EXPECT_DOUBLE_EQ(u.ewmaCellSeconds, 2.0);  // first sample seeds
    EXPECT_DOUBLE_EQ(u.etaSeconds, 3.0);       // 3 cells / 2 lanes

    u = tracker.cellDone(1, 4.0);
    EXPECT_DOUBLE_EQ(u.ewmaCellSeconds, 0.3 * 4.0 + 0.7 * 2.0);
    EXPECT_DOUBLE_EQ(u.etaSeconds, u.ewmaCellSeconds);  // 2 / 2 lanes

    tracker.cellDone(2, 1.0);
    u = tracker.cellDone(3, 1.0);
    EXPECT_EQ(u.done, 4u);
    EXPECT_DOUBLE_EQ(u.etaSeconds, 0.0);
}
