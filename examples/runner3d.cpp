/**
 * @file
 * Domain example 2: a 3D endless runner with phased camera motion.
 * Shows how RE's benefit tracks camera behaviour over time: during
 * forward motion almost nothing is redundant; during station pauses
 * the whole screen is.
 */

#include <cstdio>

#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace regpu;

int
main()
{
    setInformEnabled(false);
    GpuConfig config;
    config.scaleResolution(598, 384);
    config.technique = Technique::RenderingElimination;

    auto scene = makeBenchmark("ter", config);
    SimOptions opts;
    opts.frames = 64;
    Simulator sim(*scene, config, opts);

    std::printf("runner3d: RE on the endless-runner workload (ter)\n");
    std::printf("camera script: 22 frames running, 8 frames paused, "
                "repeating\n\n");
    std::printf("frame | skipped tiles | phase\n");
    for (u64 f = 0; f < opts.frames; f++) {
        FrameResult r = sim.stepFrame(f);
        u32 skipped = 0;
        for (const TileOutcome &t : r.tiles)
            skipped += t.rendered ? 0 : 1;
        const char *phase = (f % 30) < 22 ? "running" : "paused";
        int bar = static_cast<int>(
            40.0 * skipped / config.numTiles());
        std::printf("%5llu | %5u %-41.*s| %s\n",
                    static_cast<unsigned long long>(f), skipped, bar,
                    "########################################", phase);
    }
    std::printf("\nDuring pauses the tile inputs repeat and RE skips "
                "nearly the whole screen;\nwhile running, camera "
                "motion changes every tile's inputs (mst-like "
                "behaviour).\n");
    return 0;
}
