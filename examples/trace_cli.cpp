/**
 * @file
 * trace_cli: manage frame traces of the capture/replay subsystem.
 *
 * Subcommands:
 *   record <alias|all>  capture benchmark scenes into trace files
 *       --dir DIR (default ".") | --out FILE (single alias only)
 *       --frames N (default 30) --width W --height H (default Table I)
 *       --seed N (default 1)
 *   info <file>         print META, chunk census and size breakdown
 *   verify <file>...    walk the whole file checking every chunk CRC,
 *                       the index table and the footer; exit 1 on any
 *                       corruption
 *   replay <file>       simulate from a trace
 *       --tech base,re,te,memo (default base,re) --hash K --jobs N
 *       --tile-jobs N (intra-frame tile workers; results identical
 *       for any N, see docs/ARCHITECTURE.md)
 *       --frames N (default: all recorded) --shards N (frame-range
 *       sharding across the worker pool; merged summary) --csv FILE
 *       --json FILE --quiet --obs-dir DIR (timeline + per-frame
 *       artifacts, see src/obs/; shard tags gain a .shardN suffix so
 *       artifact files never collide)
 *   splice <out> <in>[@first:count]...
 *                       build a new trace from frame ranges of
 *                       existing traces (inputs must share resolution
 *                       and byte-identical texture sets)
 *
 * Examples:
 *   trace_cli record all --dir traces --frames 30
 *   trace_cli verify traces/ccs.rgputrace
 *   trace_cli replay traces/ccs.rgputrace --tech base,re --jobs 2
 *   trace_cli splice mix.rgputrace traces/ccs.rgputrace@0:10 \
 *       traces/ccs.rgputrace@20:10
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/obs.hh"
#include "sim/parallel_runner.hh"
#include "sim/report.hh"
#include "trace/trace_reader.hh"
#include "trace/trace_scene.hh"
#include "trace/trace_writer.hh"
#include "workloads/workloads.hh"

using namespace regpu;

namespace
{

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: trace_cli <subcommand> ...\n"
        "  record <alias|all> [--dir DIR | --out FILE] [--frames N]\n"
        "         [--width W --height H] [--seed N]\n"
        "  info <file>\n"
        "  verify <file>...\n"
        "  replay <file> [--tech base,re,te,memo] [--hash K] "
        "[--jobs N] [--tile-jobs N]\n"
        "         [--frames N] [--shards N] [--csv FILE] "
        "[--json FILE] [--quiet]\n"
        "         [--obs-dir DIR]\n"
        "  splice <out> <in>[@first:count]...\n");
    std::exit(2);
}

const char *
nextArg(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        usage();
    return argv[++i];
}

// ---------------------------------------------------------------------------
// record
// ---------------------------------------------------------------------------

int
cmdRecord(int argc, char **argv)
{
    if (argc < 3)
        usage();
    const std::string target = argv[2];
    std::string dir = ".";
    std::string outFile;
    u64 frames = 30;
    u64 seed = 1;
    GpuConfig config;
    for (int i = 3; i < argc; i++) {
        std::string arg = argv[i];
        if (arg == "--dir")
            dir = nextArg(argc, argv, i);
        else if (arg == "--out")
            outFile = nextArg(argc, argv, i);
        else if (arg == "--frames")
            frames = parseCountArg("--frames", nextArg(argc, argv, i));
        else if (arg == "--width")
            config.screenWidth = static_cast<u32>(
                parseCountArg("--width", nextArg(argc, argv, i)));
        else if (arg == "--height")
            config.screenHeight = static_cast<u32>(
                parseCountArg("--height", nextArg(argc, argv, i)));
        else if (arg == "--seed")
            seed = parseCountArg("--seed", nextArg(argc, argv, i));
        else
            usage();
    }

    std::vector<std::string> aliases;
    if (target == "all") {
        if (!outFile.empty())
            fatal("--out needs a single alias, not 'all'");
        for (const auto &b : benchmarkSuite())
            aliases.push_back(b.alias);
    } else {
        if (!isBenchmarkAlias(target))
            fatalUnknownAlias(target);
        aliases.push_back(target);
    }

    for (const std::string &alias : aliases) {
        auto scene = makeBenchmark(alias, config, seed);
        const std::string path =
            outFile.empty() ? traceFilePath(dir, alias) : outFile;
        captureTrace(*scene, config, frames, seed, path);
        TraceReader reader(path);
        std::printf("recorded %s: %llu frames, %u textures, %.2f MB\n",
                    path.c_str(),
                    static_cast<unsigned long long>(reader.frameCount()),
                    reader.meta().textureCount,
                    reader.fileBytes() / (1024.0 * 1024.0));
    }
    return 0;
}

// ---------------------------------------------------------------------------
// info
// ---------------------------------------------------------------------------

int
cmdInfo(int argc, char **argv)
{
    if (argc != 3)
        usage();
    TraceReader reader(argv[2]);
    const TraceMeta &meta = reader.meta();
    std::printf("trace      : %s\n", argv[2]);
    std::printf("workload   : %s\n", meta.name.c_str());
    std::printf("seed       : %llu\n",
                static_cast<unsigned long long>(meta.seed));
    std::printf("resolution : %ux%u (tiles %ux%u)\n", meta.screenWidth,
                meta.screenHeight, meta.tileWidth, meta.tileHeight);
    std::printf("frames     : %llu\n",
                static_cast<unsigned long long>(reader.frameCount()));
    std::printf("textures   : %u\n", meta.textureCount);
    std::printf("file size  : %llu bytes (%.2f MB)\n",
                static_cast<unsigned long long>(reader.fileBytes()),
                reader.fileBytes() / (1024.0 * 1024.0));
    if (reader.frameCount() > 0) {
        // Frame payload span: first frame offset .. index chunk.
        const u64 firstFrame = reader.frameOffset(0);
        const u64 frameBytes = reader.fileBytes() - firstFrame;
        std::printf("avg frame  : %.1f KB\n",
                    frameBytes / 1024.0
                        / static_cast<double>(reader.frameCount()));
        FrameCommands f0 = reader.readFrame(0);
        u64 verts = 0;
        for (const DrawCall &d : f0.draws)
            verts += d.vertices.size();
        std::printf("frame 0    : %zu draws, %llu vertices\n",
                    f0.draws.size(),
                    static_cast<unsigned long long>(verts));
    }
    return 0;
}

// ---------------------------------------------------------------------------
// verify
// ---------------------------------------------------------------------------

int
cmdVerify(int argc, char **argv)
{
    if (argc < 3)
        usage();
    bool allOk = true;
    for (int i = 2; i < argc; i++) {
        TraceVerifyReport report = verifyTraceFile(argv[i]);
        if (report.ok) {
            std::printf("%s: OK (%llu chunks, %llu frames, "
                        "%llu textures, %llu bytes)\n",
                        argv[i],
                        static_cast<unsigned long long>(report.chunks),
                        static_cast<unsigned long long>(report.frames),
                        static_cast<unsigned long long>(report.textures),
                        static_cast<unsigned long long>(report.fileBytes));
        } else {
            allOk = false;
            std::printf("%s: CORRUPT\n", argv[i]);
            for (const std::string &e : report.errors)
                std::printf("  - %s\n", e.c_str());
        }
    }
    return allOk ? 0 : 1;
}

// ---------------------------------------------------------------------------
// replay
// ---------------------------------------------------------------------------

int
cmdReplay(int argc, char **argv)
{
    if (argc < 3)
        usage();
    const std::string path = argv[2];
    std::vector<Technique> techniques{Technique::Baseline,
                                      Technique::RenderingElimination};
    HashKind hash = HashKind::Crc32;
    unsigned jobs = 1;
    unsigned tileJobs = 1;
    unsigned shards = 1;
    u64 frames = 0;  // 0: all recorded frames
    std::string csvPath, jsonPath, obsDir;
    bool quiet = false;
    for (int i = 3; i < argc; i++) {
        std::string arg = argv[i];
        if (arg == "--tech") {
            techniques.clear();
            std::stringstream ss(nextArg(argc, argv, i));
            std::string item;
            while (std::getline(ss, item, ','))
                techniques.push_back(parseTechniqueArg(item));
        } else if (arg == "--hash") {
            hash = parseHashArg(nextArg(argc, argv, i));
        } else if (arg == "--jobs") {
            jobs = parseJobsArg(nextArg(argc, argv, i));
        } else if (arg == "--tile-jobs") {
            tileJobs = parseTileJobsArg(nextArg(argc, argv, i));
        } else if (arg == "--shards") {
            const u64 v =
                parseCountArg("--shards", nextArg(argc, argv, i));
            if (v == 0 || v > 1u << 16)
                fatal("--shards expects a small positive count");
            shards = static_cast<unsigned>(v);
        } else if (arg == "--frames") {
            frames = parseCountArg("--frames", nextArg(argc, argv, i));
        } else if (arg == "--csv") {
            csvPath = nextArg(argc, argv, i);
        } else if (arg == "--json") {
            jsonPath = nextArg(argc, argv, i);
        } else if (arg == "--obs-dir") {
            obsDir = nextArg(argc, argv, i);
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            usage();
        }
    }

    if (!obsDir.empty())
        ObsSink::instance().enable();

    std::ofstream csv, json;
    bool csvHeader = true;
    if (!csvPath.empty()) {
        csv.open(csvPath);
        if (!csv)
            fatal("cannot open csv file: ", csvPath);
    }
    if (!jsonPath.empty()) {
        json.open(jsonPath);
        if (!json)
            fatal("cannot open json file: ", jsonPath);
    }

    ParallelRunner runner(jobs);
    for (Technique tech : techniques) {
        GpuConfig config;
        config.technique = tech;
        SimOptions options;
        options.frames = frames;
        options.hashKind = hash;
        options.tileJobs = tileJobs;

        std::vector<SimJob> shardJobs =
            buildReplayShards(path, config, options, shards);
        // Per-cell artifact tags: shards of the same technique would
        // otherwise write into the same files.
        if (!obsDir.empty()) {
            for (std::size_t s = 0; s < shardJobs.size(); s++) {
                shardJobs[s].options.obsDir = obsDir;
                std::string tag = shardJobs[s].workload + "."
                    + techniqueName(tech);
                if (shardJobs.size() > 1)
                    tag += ".shard" + std::to_string(s);
                shardJobs[s].options.obsTag = std::move(tag);
            }
        }
        std::vector<SimResult> results = runner.run(shardJobs);
        SimResult merged =
            shards == 1 ? std::move(results.front())
                        : mergeResults(results);
        if (!quiet) {
            if (shards > 1)
                std::cout << "(merged from " << shardJobs.size()
                          << " frame-range shards; per-shard history "
                             "resets at range boundaries)\n";
            printRunSummary(std::cout, merged, shardJobs.front().config);
            std::cout << "\n";
        }
        if (csv.is_open()) {
            writeCsvRow(csv, merged, csvHeader);
            csvHeader = false;
        }
        if (json.is_open())
            writeJsonRun(json, merged, shardJobs.front().config,
                         shardJobs.front().sceneSeed);
    }
    if (!obsDir.empty()) {
        const std::string timelinePath =
            obsDir + "/timeline.trace.json";
        if (ObsSink::instance().flushToFile(timelinePath))
            std::fprintf(stderr, "obs: wrote %s\n",
                         timelinePath.c_str());
        else
            warn("obs: cannot write timeline: ", timelinePath);
    }
    if (csv.is_open())
        std::cout << "wrote " << csvPath << "\n";
    if (json.is_open())
        std::cout << "wrote " << jsonPath << "\n";
    return 0;
}

// ---------------------------------------------------------------------------
// splice
// ---------------------------------------------------------------------------

/** One splice input: a trace path plus a frame window. */
struct SpliceInput
{
    std::string path;
    u64 first = 0;
    u64 count = 0;  //!< 0: to the end
};

SpliceInput
parseSpliceInput(const std::string &spec)
{
    SpliceInput in;
    const std::size_t at = spec.rfind('@');
    if (at == std::string::npos) {
        in.path = spec;
        return in;
    }
    in.path = spec.substr(0, at);
    const std::string window = spec.substr(at + 1);
    const std::size_t colon = window.find(':');
    if (colon == std::string::npos)
        fatal("splice window must be @first:count, got: ", spec);
    in.first =
        parseCountArg("splice first", window.substr(0, colon).c_str());
    in.count = parseCountArg("splice count",
                             window.substr(colon + 1).c_str());
    if (in.count == 0)
        fatal("splice count must be positive: ", spec);
    return in;
}

int
cmdSplice(int argc, char **argv)
{
    if (argc < 4)
        usage();
    const std::string outPath = argv[2];
    std::vector<SpliceInput> inputs;
    for (int i = 3; i < argc; i++)
        inputs.push_back(parseSpliceInput(argv[i]));

    // Resolve windows and cross-check compatibility against the first
    // input: splicing streams recorded over different texture sets or
    // resolutions would replay garbage.
    std::vector<TraceReader> readers;
    readers.reserve(inputs.size());
    u64 totalFrames = 0;
    for (SpliceInput &in : inputs) {
        readers.emplace_back(in.path);
        const TraceReader &r = readers.back();
        if (in.count == 0) {
            if (in.first > r.frameCount())
                fatal("splice window starts past the end of ", in.path);
            in.count = r.frameCount() - in.first;
        }
        if (in.first + in.count > r.frameCount())
            fatal("splice window [", in.first, ", ",
                  in.first + in.count, ") exceeds the ",
                  r.frameCount(), " frames of ", in.path);
        totalFrames += in.count;
    }
    const TraceMeta &base = readers.front().meta();
    std::vector<Texture> baseTextures = readers.front().readTextures();
    for (std::size_t i = 1; i < readers.size(); i++) {
        const TraceMeta &m = readers[i].meta();
        if (m.screenWidth != base.screenWidth
            || m.screenHeight != base.screenHeight
            || m.tileWidth != base.tileWidth
            || m.tileHeight != base.tileHeight)
            fatal("splice: ", inputs[i].path,
                  " resolution differs from ", inputs[0].path);
        std::vector<Texture> textures = readers[i].readTextures();
        bool same = textures.size() == baseTextures.size();
        for (std::size_t t = 0; same && t < textures.size(); t++)
            same = textures[t].id() == baseTextures[t].id()
                && textures[t].width() == baseTextures[t].width()
                && textures[t].height() == baseTextures[t].height()
                && textures[t].texelData()
                    == baseTextures[t].texelData();
        if (!same)
            fatal("splice: ", inputs[i].path,
                  " texture set differs from ", inputs[0].path,
                  " (splice inputs must share byte-identical "
                  "textures)");
    }

    TraceMeta meta = base;
    meta.frames = totalFrames;
    TraceWriter writer(outPath, meta);
    for (const Texture &tex : baseTextures)
        writer.addTexture(tex);
    for (std::size_t i = 0; i < inputs.size(); i++)
        for (u64 f = 0; f < inputs[i].count; f++)
            writer.addFrame(readers[i].readFrame(inputs[i].first + f));
    writer.finish();
    std::printf("spliced %llu frames from %zu input(s) into %s\n",
                static_cast<unsigned long long>(totalFrames),
                inputs.size(), outPath.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    if (argc < 2)
        usage();
    const std::string cmd = argv[1];
    if (cmd == "record")
        return cmdRecord(argc, argv);
    if (cmd == "info")
        return cmdInfo(argc, argv);
    if (cmd == "verify")
        return cmdVerify(argc, argv);
    if (cmd == "replay")
        return cmdReplay(argc, argv);
    if (cmd == "splice")
        return cmdSplice(argc, argv);
    usage();
}
