/**
 * @file
 * Quickstart: build a tiny animated scene, run it under the baseline
 * GPU and under Rendering Elimination, and print what RE saved.
 *
 * This is the 60-second tour of the public API:
 *   GpuConfig -> Scene -> Simulator -> SimResult.
 */

#include <cstdio>
#include <iostream>

#include "scene/mesh_gen.hh"
#include "sim/simulator.hh"

using namespace regpu;

namespace
{

/** A static backdrop plus one bouncing sprite. */
std::unique_ptr<Scene>
makeDemoScene(const GpuConfig &config)
{
    auto scene = std::make_unique<Scene>("quickstart", config);

    u32 bgTex = scene->addTexture(
        Texture(0, 256, 256, TexturePattern::Gradient, 42));
    u32 spriteTex = scene->addTexture(
        Texture(1, 128, 128, TexturePattern::Atlas, 43));

    float w = static_cast<float>(config.screenWidth);
    float h = static_cast<float>(config.screenHeight);

    SceneObject bg;
    bg.name = "backdrop";
    bg.mesh = makeQuad(w, h);
    bg.shader = ShaderKind::Textured;
    bg.textureId = static_cast<i32>(bgTex);
    bg.depthTest = false;
    bg.animate = [w, h](u64) {
        Pose p;
        p.position = {w / 2, h / 2, 0.5f};
        return p;
    };
    scene->addObject(std::move(bg));

    SceneObject ball;
    ball.name = "ball";
    ball.mesh = makeQuad(48, 48, 0.25f);
    ball.shader = ShaderKind::Textured;
    ball.textureId = static_cast<i32>(spriteTex);
    ball.blendMode = BlendMode::AlphaBlend;
    ball.depthTest = false;
    ball.animate = [w, h](u64 frame) {
        Pose p;
        p.position = {w * 0.2f + 4.0f * (frame % 20),
                      h * 0.3f + 10.0f * ((frame / 4) % 3), 0.2f};
        return p;
    };
    scene->addObject(std::move(ball));
    return scene;
}

SimResult
runWith(Technique tech, const GpuConfig &base)
{
    GpuConfig config = base;
    config.technique = tech;
    auto scene = makeDemoScene(config);
    SimOptions opts;
    opts.frames = 20;
    Simulator sim(*scene, config, opts);
    return sim.run();
}

} // namespace

int
main()
{
    GpuConfig config;
    config.scaleResolution(400, 256); // small demo screen
    config.print(std::cout);

    SimResult base = runWith(Technique::Baseline, config);
    SimResult re = runWith(Technique::RenderingElimination, config);

    std::printf("\n-- quickstart: baseline vs Rendering Elimination --\n");
    std::printf("tiles rendered      : %llu -> %llu (%.1f%% skipped)\n",
                static_cast<unsigned long long>(base.tilesRendered),
                static_cast<unsigned long long>(re.tilesRendered),
                100.0 * re.tilesSkippedByRe / re.tilesTotal);
    std::printf("fragments shaded    : %llu -> %llu\n",
                static_cast<unsigned long long>(base.fragmentsShaded),
                static_cast<unsigned long long>(re.fragmentsShaded));
    std::printf("total cycles        : %llu -> %llu (speedup %.2fx)\n",
                static_cast<unsigned long long>(base.totalCycles()),
                static_cast<unsigned long long>(re.totalCycles()),
                static_cast<double>(base.totalCycles())
                    / re.totalCycles());
    std::printf("energy (GPU+mem)    : %.2f mJ -> %.2f mJ (-%.1f%%)\n",
                base.energy.total() * 1e-9, re.energy.total() * 1e-9,
                100.0 * (1.0 - re.energy.total() / base.energy.total()));
    std::printf("DRAM traffic        : %.2f MB -> %.2f MB\n",
                base.traffic.total() / 1e6, re.traffic.total() / 1e6);
    std::printf("RE false positives  : %llu\n",
                static_cast<unsigned long long>(re.reFalsePositives));
    return 0;
}
