/**
 * @file
 * Domain example 3: redundancy inspector. Renders any suite workload
 * under RE and prints an ASCII heat map of the tile grid per frame:
 * '.' = skipped (redundant inputs), '#' = rendered, 'o' = rendered but
 * colors were equal anyway (RE false negative - TE's extra headroom).
 *
 * Usage: redundancy_inspector [alias] [frames]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace regpu;

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    std::string alias = argc > 1 ? argv[1] : "ctr";
    u64 frames = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 6;

    GpuConfig config;
    config.scaleResolution(400, 256); // 25x16 tile grid fits a terminal
    config.technique = Technique::RenderingElimination;

    auto scene = makeBenchmark(alias, config);
    SimOptions opts;
    opts.frames = frames;
    Simulator sim(*scene, config, opts);

    std::printf("redundancy_inspector: workload '%s', %ux%u tiles\n",
                alias.c_str(), config.tilesX(), config.tilesY());
    std::printf("legend: '.' skipped | '#' rendered (changed) | "
                "'o' rendered but same colors (false negative)\n");

    for (u64 f = 0; f < frames; f++) {
        FrameResult r = sim.stepFrame(f);
        u32 skipped = 0, falseNeg = 0;
        std::printf("\nframe %llu:\n",
                    static_cast<unsigned long long>(f));
        for (u32 ty = 0; ty < config.tilesY(); ty++) {
            std::printf("  ");
            for (u32 tx = 0; tx < config.tilesX(); tx++) {
                const TileOutcome &t =
                    r.tiles[ty * config.tilesX() + tx];
                char glyph;
                if (!t.rendered) {
                    glyph = '.';
                    skipped++;
                } else if (t.equalColors && f >= 2) {
                    glyph = 'o';
                    falseNeg++;
                } else {
                    glyph = '#';
                }
                std::putchar(glyph);
            }
            std::putchar('\n');
        }
        std::printf("  skipped %u / %u, false negatives %u\n", skipped,
                    config.numTiles(), falseNeg);
    }
    return 0;
}
