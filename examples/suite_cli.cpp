/**
 * @file
 * suite_cli: run any workload under any set of techniques from the
 * command line and emit a detailed report and/or CSV.
 *
 * Usage:
 *   suite_cli [--workload ALIAS|all] [--tech base,re,te,memo]
 *             [--frames N] [--width W --height H]
 *             [--hash crc32|xor|add|fnv] [--csv FILE] [--json FILE]
 *             [--timing-json FILE] [--quiet] [--jobs N]
 *             [--tile-jobs N] [--seed N]
 *             [--record-dir DIR] [--replay-dir DIR]
 *             [--assert-conservation] [--obs-dir DIR] [--obs-tiles]
 *             [--progress]
 *
 * Examples:
 *   suite_cli --workload ccs --tech base,re
 *   suite_cli --workload all --tech base,re,te,memo --csv out.csv
 *   suite_cli --workload all --tech base,re --jobs 4
 *   suite_cli --workload all --record-dir traces/
 *   suite_cli --workload all --replay-dir traces/ --csv replay.csv
 *
 * --jobs N runs the (workload x technique) sweep on N worker threads
 * (0 = all cores). Output and CSV are bit-identical for any N.
 * --tile-jobs N rasterizes each frame's tiles on N intra-frame
 * workers (N >= 1; docs/ARCHITECTURE.md has the threading model).
 * Output stays bit-identical for any N, and composes with --jobs:
 * every sweep worker gets its own tile pool.
 * --seed N derives a distinct content seed per workload (any N,
 * including 1); techniques of the same workload always share a seed
 * for fairness. Without the flag every workload uses the legacy
 * shared seed 1.
 * --record-dir captures one frame trace per workload before the runs;
 * --replay-dir feeds the runs from those traces instead of live scene
 * generation — results are bit-identical to the recorded live run.
 * --json appends one self-describing JSON object per run (JSON-Lines).
 * --timing-json writes host-side wall-clock timing of the sweep as a
 * machine-readable benchmark document (sim/bench_json.hh):
 * sweep.wallSeconds always, plus one cell.<alias>.<tech>.wallSeconds
 * per cell when the sweep streams on a single worker (per-cell wall
 * times of concurrent cells would measure scheduling, not work).
 * scripts/bench.py aggregates these into BENCH_e2e.json.
 * --assert-conservation exits fatally if any run reports a non-zero
 * mem.conservationViolations stat (a memory-hierarchy routing path
 * double-charged or dropped bytes) — the CI traffic-conservation
 * smoke.
 * --obs-dir DIR enables the observability layer (src/obs/): a Chrome
 * trace-event timeline (DIR/timeline.trace.json, load in
 * chrome://tracing or Perfetto), per-frame stat time-series JSONL and
 * RE/TE/DRAM tile heatmaps per sweep cell. Observability only reads
 * simulator state: stdout/CSV stay bit-identical with or without it,
 * for any --jobs. --obs-tiles additionally records per-tile spans
 * (numTiles events per frame — large).
 * --progress renders live sweep progress (cells done/total, EWMA cell
 * time, ETA) on stderr; stdout is untouched.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "obs/obs.hh"
#include "sim/bench_json.hh"
#include "sim/parallel_runner.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace regpu;

namespace
{

struct CliOptions
{
    std::vector<std::string> workloads{"ccs"};
    std::vector<Technique> techniques{Technique::Baseline,
                                      Technique::RenderingElimination};
    u64 frames = 20;
    u32 width = 598, height = 384;
    HashKind hash = HashKind::Crc32;
    std::string csvPath;
    std::string jsonPath;
    std::string timingJsonPath;
    std::string recordDir;
    std::string replayDir;
    std::string obsDir;
    bool obsTiles = false;
    bool progress = false;
    bool quiet = false;
    bool assertConservation = false;
    unsigned jobs = 1;
    unsigned tileJobs = 1;
    u64 seed = 1;        //!< base content seed
    bool seedSet = false;  //!< --seed given: derive per-workload seeds
                           //!< (fair across techniques); unset: legacy
                           //!< shared seed 1
};

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: suite_cli [--workload ALIAS|all] "
                 "[--tech base,re,te,memo] [--frames N]\n"
                 "                 [--width W --height H] "
                 "[--hash crc32|xor|add|fnv] [--csv FILE] "
                 "[--json FILE] [--timing-json FILE] [--quiet]\n"
                 "                 [--jobs N] [--tile-jobs N] [--seed N] "
                 "[--record-dir DIR] [--replay-dir DIR] "
                 "[--assert-conservation]\n"
                 "                 [--obs-dir DIR] [--obs-tiles] "
                 "[--progress]\n");
    std::exit(2);
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions opts;
    auto next = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage();
        return argv[++i];
    };
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        if (arg == "--workload") {
            std::string w = next(i);
            if (w == "all") {
                opts.workloads.clear();
                for (const auto &b : benchmarkSuite())
                    opts.workloads.push_back(b.alias);
            } else {
                opts.workloads = {w};
            }
        } else if (arg == "--tech") {
            opts.techniques.clear();
            std::stringstream ss(next(i));
            std::string item;
            while (std::getline(ss, item, ','))
                opts.techniques.push_back(parseTechniqueArg(item));
        } else if (arg == "--frames") {
            opts.frames = std::strtoull(next(i), nullptr, 10);
        } else if (arg == "--width") {
            opts.width = static_cast<u32>(
                std::strtoul(next(i), nullptr, 10));
        } else if (arg == "--height") {
            opts.height = static_cast<u32>(
                std::strtoul(next(i), nullptr, 10));
        } else if (arg == "--hash") {
            opts.hash = parseHashArg(next(i));
        } else if (arg == "--csv") {
            opts.csvPath = next(i);
        } else if (arg == "--json") {
            opts.jsonPath = next(i);
        } else if (arg == "--timing-json") {
            opts.timingJsonPath = next(i);
        } else if (arg == "--record-dir") {
            opts.recordDir = next(i);
        } else if (arg == "--replay-dir") {
            opts.replayDir = next(i);
        } else if (arg == "--obs-dir") {
            opts.obsDir = next(i);
        } else if (arg == "--obs-tiles") {
            opts.obsTiles = true;
        } else if (arg == "--progress") {
            opts.progress = true;
        } else if (arg == "--quiet") {
            opts.quiet = true;
        } else if (arg == "--assert-conservation") {
            opts.assertConservation = true;
        } else if (arg == "--jobs") {
            opts.jobs = parseJobsArg(next(i));
        } else if (arg == "--tile-jobs") {
            opts.tileJobs = parseTileJobsArg(next(i));
        } else if (arg == "--seed") {
            opts.seed = parseCountArg("--seed", next(i));
            opts.seedSet = true;
        } else {
            usage();
        }
    }
    return opts;
}

} // namespace

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    CliOptions opts = parseArgs(argc, argv);

    std::ofstream csv;
    bool csvHeader = true;
    if (!opts.csvPath.empty()) {
        csv.open(opts.csvPath);
        if (!csv)
            fatal("cannot open csv file: ", opts.csvPath);
    }
    std::ofstream json;
    if (!opts.jsonPath.empty()) {
        json.open(opts.jsonPath);
        if (!json)
            fatal("cannot open json file: ", opts.jsonPath);
    }

    // Flatten the sweep into jobs; reporting walks results in job
    // order, so the output is identical whatever --jobs is.
    std::vector<SimJob> jobs =
        buildSweepJobs(opts.workloads, opts.techniques, opts.width,
                       opts.height, opts.frames, opts.hash);
    if (opts.seedSet) {
        // Decorrelate content across workloads while keeping the seed
        // identical across techniques of the same workload (fairness).
        // Gated on the flag, not the value, so --seed 1 behaves like
        // every other base seed.
        for (SimJob &job : jobs)
            job.sceneSeed = deriveJobSeed(opts.seed, job.workload);
    }

    // Trace capture/replay: record before the sweep, then optionally
    // feed the sweep from traces instead of live generation.
    applyTraceFlags(jobs, opts.recordDir, opts.replayDir);

    for (SimJob &job : jobs)
        job.options.tileJobs = opts.tileJobs;

    // Observability: enable the process-wide timeline sink and point
    // every cell's artifact writer into --obs-dir. Tags are unique per
    // cell (workload x technique), so artifact files never collide.
    if (!opts.obsDir.empty()) {
        ObsSink::instance().enable(ObsSink::defaultRingEvents,
                                   opts.obsTiles);
        for (SimJob &job : jobs) {
            job.options.obsDir = opts.obsDir;
            job.options.obsTag =
                job.workload + "."
                + techniqueName(job.config.technique);
        }
    }

    auto reportRun = [&](SimResult &r, const SimJob &job) {
        if (!opts.quiet) {
            printRunSummary(std::cout, r, job.config);
            std::cout << "\n";
        }
        if (csv.is_open()) {
            writeCsvRow(csv, r, csvHeader);
            csvHeader = false;
        }
        if (json.is_open())
            writeJsonRun(json, r, job.config, job.sceneSeed);
    };
    auto reportComparison = [&](const std::vector<SimResult> &results) {
        if (!opts.quiet && results.size() > 1) {
            printComparison(std::cout, results);
            std::cout << "\n";
        }
    };

    ParallelRunner runner(opts.jobs);
    const bool streaming = runner.workerCount() <= 1;

    BenchJsonWriter timing;
    auto secondsSince =
        [](std::chrono::steady_clock::time_point t0) {
            return std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                .count();
        };
    const auto sweepStart = std::chrono::steady_clock::now();

    // Live progress renders on stderr only: stdout stays byte-identical
    // with or without --progress, for any --jobs.
    auto renderProgress = [&](const ProgressUpdate &u) {
        std::fprintf(
            stderr, "\r[%zu/%zu] %s.%s %.2fs | avg %.2fs | eta %.0fs   ",
            u.done, u.total, jobs[u.jobIndex].workload.c_str(),
            techniqueName(jobs[u.jobIndex].config.technique),
            u.cellSeconds, u.ewmaCellSeconds, u.etaSeconds);
        if (u.done == u.total)
            std::fputc('\n', stderr);
        std::fflush(stderr);
    };

    std::vector<SimResult> allResults;
    if (!streaming)
        allResults = runner.run(jobs, opts.progress
                                          ? ProgressFn(renderProgress)
                                          : ProgressFn{});
    ProgressTracker streamTracker(jobs.size(), /*workers=*/1);

    std::vector<SimResult> sweepResults;
    sweepResults.reserve(jobs.size());
    std::size_t idx = 0;
    for (std::size_t w = 0; w < opts.workloads.size(); w++) {
        std::vector<SimResult> results;
        for (std::size_t t = 0; t < opts.techniques.size(); t++) {
            // With a single worker, run cells one at a time so each
            // summary streams as soon as its run finishes.
            SimResult r;
            if (streaming) {
                const auto cellStart = std::chrono::steady_clock::now();
                r = std::move(runner.run({jobs[idx]}).front());
                const double cellSecs = secondsSince(cellStart);
                if (!opts.timingJsonPath.empty())
                    timing.add("cell." + jobs[idx].workload + "."
                                   + techniqueName(
                                         jobs[idx].config.technique)
                                   + ".wallSeconds",
                               "s", /*higherIsBetter=*/false,
                               cellSecs);
                if (opts.progress)
                    renderProgress(streamTracker.cellDone(idx, cellSecs));
            } else {
                r = std::move(allResults[idx]);
            }
            reportRun(r, jobs[idx]);
            results.push_back(std::move(r));
            idx++;
        }
        reportComparison(results);
        for (SimResult &r : results)
            sweepResults.push_back(std::move(r));
    }

    if (!opts.timingJsonPath.empty()) {
        timing.add("sweep.wallSeconds", "s", /*higherIsBetter=*/false,
                   secondsSince(sweepStart));
        timing.writeFile(opts.timingJsonPath);
        std::cout << "wrote " << opts.timingJsonPath << "\n";
    }

    if (!opts.quiet && sweepResults.size() > 1) {
        const SimResult agg = mergeResults(sweepResults);
        std::cout << "== sweep aggregate: " << agg.workload << " ("
                  << sweepResults.size() << " runs, " << agg.frames
                  << " frames) ==\n"
                  << "cycles " << agg.totalCycles() << ", energy "
                  << agg.energy.total() / 1e9 << " mJ, dram "
                  << agg.traffic.total() / (1024.0 * 1024.0)
                  << " MB, tiles " << agg.tilesRendered << "/"
                  << agg.tilesTotal << " rendered ("
                  << agg.tilesSkippedByRe << " eliminated), fragments "
                  << agg.fragmentsShaded << " shaded\n";
    }

    if (opts.assertConservation) {
        u64 violations = 0;
        for (const SimResult &r : sweepResults)
            violations += r.stats.counter("mem.conservationViolations");
        if (violations)
            fatal("traffic conservation violated: ", violations,
                  " boundary mismatches across ", sweepResults.size(),
                  " runs");
        std::cout << "traffic conservation: 0 violations across "
                  << sweepResults.size() << " runs\n";
    }

    // Flush the timeline last so it covers the whole sweep. The notice
    // goes to stderr: "wrote" lines on stdout are part of the
    // byte-identity contract checked by scripts/check.sh --obs.
    if (!opts.obsDir.empty()) {
        const std::string timelinePath =
            opts.obsDir + "/timeline.trace.json";
        if (ObsSink::instance().flushToFile(timelinePath))
            std::fprintf(stderr, "obs: wrote %s\n",
                         timelinePath.c_str());
        else
            warn("obs: cannot write timeline: ", timelinePath);
    }

    if (csv.is_open())
        std::cout << "wrote " << opts.csvPath << "\n";
    if (json.is_open())
        std::cout << "wrote " << opts.jsonPath << "\n";
    return 0;
}
